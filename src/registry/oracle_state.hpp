/// \file
/// Lifecycle states of a registered oracle, shared between the registry
/// and the wire protocol (REGISTER_ACK and LIST_ORACLES carry the state
/// as a u32, so the numeric values are part of protocol v2 and must never
/// be renumbered).
///
/// The state machine:
///
///           register_graph / register_snapshot
///                        |
///                  kRegistering          (admitted; build not started)
///                        |
///                   kBuilding            (solve/load running on the pool)
///                    |      |
///                kReady   kFailed        (terminal failure; the slot and
///                   |                     its reason stay listable until
///                   |                     the failed-TTL reap or an
///                   |                     explicit unregister)
///                   |
///               kExpiring                (unregistered with batches still
///                   |                     in flight; drains, then gone)
///             kUnregistered              (terminal; digest unknown again)
///
/// kUnknown is the protocol's "no such digest" answer, never a stored
/// state.
#pragma once

#include <cstdint>

namespace msrp::registry {

enum class OracleState : std::uint32_t {
  kUnknown = 0,
  kRegistering = 1,
  kBuilding = 2,
  kReady = 3,
  kFailed = 4,
  kExpiring = 5,
  kUnregistered = 6,
};

inline const char* to_string(OracleState s) {
  switch (s) {
    case OracleState::kUnknown: return "unknown";
    case OracleState::kRegistering: return "registering";
    case OracleState::kBuilding: return "building";
    case OracleState::kReady: return "ready";
    case OracleState::kFailed: return "failed";
    case OracleState::kExpiring: return "expiring";
    case OracleState::kUnregistered: return "unregistered";
  }
  return "invalid";
}

}  // namespace msrp::registry
