#include "registry/dispatch.hpp"

#include <utility>

#include "util/assert.hpp"

namespace msrp::registry {

FairDispatcher::FairDispatcher(Submit submit, DispatchOptions opts)
    : submit_(std::move(submit)), opts_(opts) {
  MSRP_REQUIRE(submit_ != nullptr, "dispatcher: null submit function");
  MSRP_REQUIRE(opts_.per_tenant_inflight >= 1, "dispatcher: per-tenant inflight cap must be >= 1");
  MSRP_REQUIRE(opts_.total_inflight >= 1, "dispatcher: total inflight cap must be >= 1");
}

DispatchVerdict FairDispatcher::submit(std::uint64_t digest,
                                       std::shared_ptr<const service::Snapshot> oracle,
                                       std::vector<service::Query> queries,
                                       service::BatchCallback done, std::uint32_t weight,
                                       Deadline deadline) {
  // Point-query batches are just one kind of task: wrap the constructor's
  // Submit function into a StartFn and share the admission machinery.
  return submit_task(
      digest,
      [this, oracle = std::move(oracle),
       queries = std::move(queries)](service::BatchCallback cb, Deadline dl) mutable {
        submit_(std::move(oracle), std::move(queries), std::move(cb), dl);
      },
      std::move(done), weight, deadline);
}

DispatchVerdict FairDispatcher::submit_task(std::uint64_t digest, StartFn start,
                                            service::BatchCallback done,
                                            std::uint32_t weight, Deadline deadline) {
  MSRP_REQUIRE(start != nullptr, "dispatcher: null start function");
  MSRP_REQUIRE(done != nullptr, "dispatcher: null callback");
  Pending batch{std::move(start), std::move(done), deadline};
  {
    std::lock_guard<std::mutex> lock(mu_);
    Tenant& t = tenants_[digest];
    t.weight = weight == 0 ? 1 : weight;
    // Fast path only when nothing of this tenant is queued — a batch must
    // never overtake its own tenant's parked predecessors (per-tenant FIFO
    // is part of the contract).
    if (t.queue.empty() && t.inflight < opts_.per_tenant_inflight &&
        total_inflight_ < opts_.total_inflight) {
      ++t.inflight;
      ++total_inflight_;
      ++dispatched_total_;
    } else if (t.queue.size() >= opts_.per_tenant_queue) {
      ++busy_rejections_;
      maybe_erase_locked(digest);
      return DispatchVerdict::kBusy;
    } else {
      t.queue.push_back(std::move(batch));
      ++total_queued_;
      if (deadline != kNoDeadline) ++queued_deadlines_;
      if (!t.in_ring) {
        t.in_ring = true;
        ring_.push_back(digest);
      }
      return DispatchVerdict::kQueued;
    }
  }
  dispatch(digest, std::move(batch));
  return DispatchVerdict::kDispatched;
}

void FairDispatcher::dispatch(std::uint64_t digest, Pending batch) {
  // The wrapper does the dispatcher's completion bookkeeping BEFORE the
  // caller's callback: the callback typically releases a server-side
  // inflight gate whose drain implies "the dispatcher is idle", so nothing
  // of ours may run after it.
  auto wrapper = [this, digest, done = std::move(batch.done)](service::BatchResult result) {
    on_complete(digest);
    done(std::move(result));
  };
  try {
    batch.start(wrapper, batch.deadline);
  } catch (...) {
    // start threw before enqueueing anything (allocation failure): the
    // service will never invoke the wrapper, so deliver the failure
    // ourselves — exactly once, with the bookkeeping the wrapper carries.
    wrapper(service::BatchResult{{}, nullptr, std::current_exception()});
  }
}

void FairDispatcher::on_complete(std::uint64_t digest) {
  std::vector<Ready> ready;
  std::vector<Pending> expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(digest);
    MSRP_CHECK(it != tenants_.end() && it->second.inflight > 0,
               "dispatcher: completion for an unknown batch");
    --it->second.inflight;
    --total_inflight_;
    pump_locked(ready, expired);
    maybe_erase_locked(digest);
  }
  // Expired batches never held an inflight slot, so their completion is
  // just the callback — no recursive on_complete.
  for (Pending& p : expired) {
    p.done(service::BatchResult{
        {}, nullptr,
        std::make_exception_ptr(DeadlineExceeded("batch expired in dispatch queue"))});
  }
  for (Ready& r : ready) dispatch(r.digest, std::move(r.batch));
}

void FairDispatcher::expire_queued_locked(std::vector<Pending>& expired) {
  if (queued_deadlines_ == 0) return;
  const auto now = std::chrono::steady_clock::now();
  for (std::uint64_t digest : ring_) {
    auto it = tenants_.find(digest);
    if (it == tenants_.end()) continue;
    auto& q = it->second.queue;
    for (auto pit = q.begin(); pit != q.end();) {
      if (pit->deadline == kNoDeadline || now < pit->deadline) {
        ++pit;
        continue;
      }
      expired.push_back(std::move(*pit));
      pit = q.erase(pit);
      --total_queued_;
      --queued_deadlines_;
      ++deadline_expirations_;
    }
  }
}

void FairDispatcher::pump_locked(std::vector<Ready>& out, std::vector<Pending>& expired) {
  expire_queued_locked(expired);
  // Weighted round robin over the digests with queued work: the front
  // tenant takes up to `weight` grants, then rotates to the back. A full
  // lap of rotations without a single grant means every queued tenant is
  // pinned by a cap — stop; the next completion pumps again. Queued work
  // always implies inflight work somewhere (batches only queue when a cap
  // binds), so the pump is always re-entered and queues cannot wedge.
  std::size_t stalled = 0;
  while (!ring_.empty() && total_inflight_ < opts_.total_inflight) {
    const std::uint64_t digest = ring_.front();
    Tenant& t = tenants_[digest];
    if (t.queue.empty()) {
      t.in_ring = false;
      t.credits = 0;
      ring_.pop_front();
      maybe_erase_locked(digest);
      continue;
    }
    if (t.inflight >= opts_.per_tenant_inflight) {
      t.credits = 0;
      ring_.push_back(digest);
      ring_.pop_front();
      if (++stalled >= ring_.size()) break;
      continue;
    }
    if (t.credits >= t.weight) {
      // Lap boundary, not a stall: the reset below makes this tenant
      // grantable on its next visit, so the rotation always progresses
      // (counting it as stalled would wedge a one-tenant ring with zero
      // batches inflight).
      t.credits = 0;
      ring_.push_back(digest);
      ring_.pop_front();
      continue;
    }
    ++t.credits;
    ++t.inflight;
    ++total_inflight_;
    ++dispatched_total_;
    --total_queued_;
    if (t.queue.front().deadline != kNoDeadline) --queued_deadlines_;
    stalled = 0;
    out.push_back(Ready{digest, std::move(t.queue.front())});
    t.queue.pop_front();
  }
}

void FairDispatcher::maybe_erase_locked(std::uint64_t digest) {
  auto it = tenants_.find(digest);
  if (it != tenants_.end() && it->second.inflight == 0 && it->second.queue.empty() &&
      !it->second.in_ring) {
    tenants_.erase(it);
  }
}

std::size_t FairDispatcher::inflight_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_inflight_;
}

std::size_t FairDispatcher::queued_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_queued_;
}

std::size_t FairDispatcher::tenant_inflight(std::uint64_t digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(digest);
  return it == tenants_.end() ? 0 : it->second.inflight;
}

std::uint64_t FairDispatcher::busy_rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_rejections_;
}

std::uint64_t FairDispatcher::dispatched_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dispatched_total_;
}

std::uint64_t FairDispatcher::deadline_expirations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deadline_expirations_;
}

}  // namespace msrp::registry
