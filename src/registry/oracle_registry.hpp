/// \file
/// The multi-tenant oracle table: digest -> {oracle, stats, lifecycle}.
///
/// One OracleRegistry turns a serving process from "one process = one
/// oracle" into a tenant directory. Registrations arrive over the wire
/// (REGISTER_GRAPH) or from the serve tool's own command line (adopt);
/// each one is admitted synchronously — tenant-count cap — then built or
/// loaded asynchronously on the QueryService pool, walking the state
/// machine in registry/oracle_state.hpp. The heavy work routes through
/// QueryService::build/load and therefore through the single-flight
/// OracleCache: two tenants registering the same graph share one solve,
/// and the registry's byte budget rides on top of the cache's.
///
/// Queries resolve a digest to a pinned shared_ptr<const Snapshot> only
/// in kReady; a building registration answers BUSY, an expiring one is
/// already invisible to new batches and drains through note_complete.
///
/// Threading: every public method is safe from any thread. Completion
/// callbacks run on pool workers; the destructor blocks until every
/// in-flight registration task has finished, so a callback can never
/// touch a dead registry. Destroy the registry AFTER the server that
/// feeds it (declare it first).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "registry/oracle_state.hpp"
#include "service/query_service.hpp"
#include "util/deadline.hpp"

namespace msrp::registry {

struct RegistryOptions {
  /// Registered oracles (any live state) the registry will admit.
  std::size_t max_tenants = 16;
  /// Summed Snapshot footprint across ready oracles (0 = unlimited). A
  /// registration whose finished oracle would break the budget fails at
  /// completion — admission cannot know the footprint before the solve.
  std::size_t max_bytes = 0;
  /// How long a FAILED tenant is retained (so LIST_ORACLES can surface the
  /// failure reason) before its slot is reaped; 0 = release immediately,
  /// the pre-deadline behavior. Reaping runs in poke() and at admission.
  std::chrono::milliseconds failed_ttl{60000};
  /// Budget for a registration to reach kReady; 0 = unbounded. When it
  /// passes, poke() moves the tenant to kFailed ("build timed out") and
  /// fires its callback, instead of the tenant wedging in
  /// REGISTERING/BUILDING forever. The build task itself keeps running
  /// (a pool task cannot be aborted) — its late result is discarded.
  std::chrono::milliseconds build_timeout{0};
};

/// Result of one asynchronous registration, delivered exactly once.
struct RegisterOutcome {
  std::uint64_t digest = 0;  ///< final content digest (0 when failed early)
  OracleState state = OracleState::kFailed;
  std::shared_ptr<const service::Snapshot> oracle;  ///< set when kReady
  std::string error;                                ///< set when kFailed
};

using RegisterCallback = std::function<void(RegisterOutcome)>;

/// One row of list().
struct OracleInfo {
  std::uint64_t digest = 0;
  OracleState state = OracleState::kUnknown;
  std::uint32_t num_vertices = 0;
  std::uint32_t num_edges = 0;
  std::vector<Vertex> sources;
  std::uint32_t inflight_batches = 0;
  std::uint64_t queries_answered = 0;
  std::uint64_t footprint_bytes = 0;
  /// Failure reason for kFailed entries (empty otherwise).
  std::string error;
};

class OracleRegistry {
 public:
  /// `svc` must outlive the registry; its pool runs the build tasks.
  OracleRegistry(service::QueryService& svc, RegistryOptions opts = {});

  /// Blocks until every pending registration task has delivered.
  ~OracleRegistry();

  OracleRegistry(const OracleRegistry&) = delete;
  OracleRegistry& operator=(const OracleRegistry&) = delete;

  /// Admits and starts an edge-list registration. Returns false (with
  /// `reason`) when admission rejects it — `done` will then never run.
  /// Otherwise `done` fires once on a pool worker with the outcome.
  bool register_graph(Vertex num_vertices, std::vector<std::pair<Vertex, Vertex>> edges,
                      std::vector<Vertex> sources, const Config& cfg, RegisterCallback done,
                      std::string* reason = nullptr);

  /// Same contract for a server-side snapshot file.
  bool register_snapshot(std::string path, RegisterCallback done,
                         std::string* reason = nullptr);

  /// Registers an already-built oracle as kReady (the serve tool's default
  /// oracle). Idempotent per digest; returns its content digest.
  std::uint64_t adopt(std::shared_ptr<const service::Snapshot> oracle);

  /// The oracle for `digest`, only while kReady; nullptr otherwise.
  std::shared_ptr<const service::Snapshot> resolve(std::uint64_t digest) const;

  /// kUnknown when the digest was never registered (or fully retired).
  OracleState state(std::uint64_t digest) const;

  /// Retires a digest. Returns the resulting state: kUnregistered (gone),
  /// kExpiring (drains when its in-flight batches complete), or the
  /// current state unchanged for an entry that is still registering or
  /// building (the caller reports that as an error); nullopt = unknown.
  std::optional<OracleState> unregister(std::uint64_t digest);

  /// Batch accounting, called by the serving layer around dispatch.
  /// note_batch marks one batch in flight; note_complete retires it and
  /// credits the queries it actually answered (0 for a failed batch).
  void note_batch(std::uint64_t digest);
  void note_complete(std::uint64_t digest, std::size_t answered);
  /// Rolls back a note_batch whose dispatch was refused (BUSY).
  void note_busy(std::uint64_t digest);

  std::vector<OracleInfo> list() const;

  /// Time-driven maintenance: reaps FAILED tenants past their TTL and
  /// times out registrations past the build budget (firing their callbacks
  /// with kFailed, outside the lock). The serving layer calls this from
  /// its event-loop tick; tests call it directly.
  void poke();

  std::size_t tenant_count() const;
  /// Summed footprint of ready/expiring oracles.
  std::size_t resident_bytes() const;

 private:
  struct Entry {
    OracleState state = OracleState::kRegistering;
    std::shared_ptr<const service::Snapshot> oracle;
    std::size_t inflight = 0;
    std::uint64_t queries_answered = 0;
    /// Failure reason while kFailed; surfaced through list().
    std::string error;
    /// When the entry became kFailed (TTL reap reference point).
    std::chrono::steady_clock::time_point failed_at{};
    /// Instant a registration must have reached kReady by; kNoDeadline
    /// when RegistryOptions::build_timeout is 0 or for adopted oracles.
    Deadline build_deadline = kNoDeadline;
    /// Registration callback, held here so a build timeout can fire it;
    /// finish() pulls it (null afterwards = already delivered).
    RegisterCallback done;
  };

  /// Admission + provisional entry under one lock; returns the provisional
  /// key or 0 when rejected. Reaps expired FAILED tenants first so their
  /// slots are reusable.
  std::uint64_t admit_locked(std::string* reason);
  /// Lands a finished build: budget check, provisional -> final re-key,
  /// then the registration callback (outside the lock). A build whose
  /// entry already timed out (kFailed, callback gone) is discarded.
  void finish(std::uint64_t provisional_key,
              std::shared_ptr<const service::Snapshot> oracle, std::string error);
  void reap_failed_locked(std::chrono::steady_clock::time_point now);
  std::size_t resident_bytes_locked() const;

  service::QueryService& svc_;
  RegistryOptions opts_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t nonce_ = 0;  // provisional-key generator

  // Registration tasks in flight on the pool; the destructor's gate.
  std::condition_variable pending_cv_;
  std::size_t pending_ = 0;
};

}  // namespace msrp::registry
