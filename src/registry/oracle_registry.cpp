#include "registry/oracle_registry.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "graph/graph.hpp"
#include "util/assert.hpp"
#include "util/failpoint.hpp"
#include "util/fnv.hpp"

namespace msrp::registry {

OracleRegistry::OracleRegistry(service::QueryService& svc, RegistryOptions opts)
    : svc_(svc), opts_(opts) {
  MSRP_REQUIRE(opts_.max_tenants >= 1, "registry: max_tenants must be >= 1");
}

OracleRegistry::~OracleRegistry() {
  // Every registration task decrements pending_ as its very last act, so
  // once this returns no task can touch the registry again. The serving
  // layer above guarantees the symmetric property for batch accounting
  // (its own inflight gate drains before the registry is destroyed).
  std::unique_lock<std::mutex> lock(mu_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

std::uint64_t OracleRegistry::admit_locked(std::string* reason) {
  // FAILED tenants must not block admission — their slots are only kept
  // for failure-reason visibility, not capacity. Reap the expired ones,
  // and when the registry is still full, displace the oldest failure:
  // a live registration outranks a stale error message.
  reap_failed_locked(std::chrono::steady_clock::now());
  while (entries_.size() >= opts_.max_tenants) {
    auto oldest = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.state != OracleState::kFailed) continue;
      if (oldest == entries_.end() || it->second.failed_at < oldest->second.failed_at) {
        oldest = it;
      }
    }
    if (oldest == entries_.end()) break;
    entries_.erase(oldest);
  }
  if (entries_.size() >= opts_.max_tenants) {
    if (reason) {
      *reason = "registry full (" + std::to_string(opts_.max_tenants) +
                " tenants); unregister one first";
    }
    return 0;
  }
  // Provisional entries hold the admission slot while the build runs; the
  // key is an internal nonce hash, re-keyed to the oracle's content digest
  // when the build lands. fnv of a counter never returns 0 in practice.
  const std::uint64_t key = fnv::mix_u64(fnv::kOffset, ++nonce_);
  Entry e;
  if (opts_.build_timeout.count() > 0) {
    e.build_deadline = std::chrono::steady_clock::now() + opts_.build_timeout;
  }
  entries_.emplace(key, std::move(e));
  return key;
}

bool OracleRegistry::register_graph(Vertex num_vertices,
                                    std::vector<std::pair<Vertex, Vertex>> edges,
                                    std::vector<Vertex> sources, const Config& cfg,
                                    RegisterCallback done, std::string* reason) {
  MSRP_REQUIRE(done != nullptr, "registry: null callback");
  std::uint64_t key = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    key = admit_locked(reason);
    if (key == 0) return false;
    entries_[key].done = std::move(done);
    ++pending_;
  }
  svc_.run_async([this, key, num_vertices, edges = std::move(edges),
                  sources = std::move(sources), cfg]() mutable {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(key);
      // A build timeout may already have failed the entry (or reaped it)
      // before this task even started; leave that verdict alone.
      if (it != entries_.end() && it->second.state == OracleState::kRegistering) {
        it->second.state = OracleState::kBuilding;
      }
    }
    std::shared_ptr<const service::Snapshot> built;
    std::string error;
    try {
      if (MSRP_FAILPOINT("registry.build")) {
        throw std::runtime_error("injected registry build failure");
      }
      if (sources.empty()) throw std::invalid_argument("registration has no sources");
      std::vector<Vertex> sorted = sources;
      std::sort(sorted.begin(), sorted.end());
      for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (sorted[i] >= num_vertices) throw std::invalid_argument("source out of range");
        if (i > 0 && sorted[i] == sorted[i - 1]) {
          throw std::invalid_argument("duplicate source vertex");
        }
      }
      const Graph g(num_vertices, edges);  // validates the edge list
      built = svc_.build(g, sources, cfg);
    } catch (const std::exception& ex) {
      error = ex.what();
    }
    finish(key, std::move(built), std::move(error));
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    pending_cv_.notify_all();
  });
  return true;
}

bool OracleRegistry::register_snapshot(std::string path, RegisterCallback done,
                                       std::string* reason) {
  MSRP_REQUIRE(done != nullptr, "registry: null callback");
  std::uint64_t key = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    key = admit_locked(reason);
    if (key == 0) return false;
    entries_[key].done = std::move(done);
    ++pending_;
  }
  svc_.run_async([this, key, path = std::move(path)] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second.state == OracleState::kRegistering) {
        it->second.state = OracleState::kBuilding;
      }
    }
    std::shared_ptr<const service::Snapshot> loaded;
    std::string error;
    try {
      if (MSRP_FAILPOINT("registry.build")) {
        throw std::runtime_error("injected registry build failure");
      }
      loaded = svc_.load(path);
    } catch (const std::exception& ex) {
      error = ex.what();
    }
    finish(key, std::move(loaded), std::move(error));
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    pending_cv_.notify_all();
  });
  return true;
}

void OracleRegistry::finish(std::uint64_t provisional_key,
                            std::shared_ptr<const service::Snapshot> oracle,
                            std::string error) {
  RegisterOutcome outcome;
  RegisterCallback done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto prov = entries_.find(provisional_key);
    // The entry can be gone (timed out, reaped) or already kFailed with its
    // callback delivered by poke(): either way this build's result arrives
    // too late and is discarded — the timeout verdict stands.
    if (prov == entries_.end()) return;
    done = std::move(prov->second.done);
    prov->second.done = nullptr;
    if (done == nullptr) return;
    if (error.empty() && oracle != nullptr) {
      const std::uint64_t digest = oracle->content_digest();
      const bool already = entries_.count(digest) != 0;
      if (!already && opts_.max_bytes != 0 &&
          resident_bytes_locked() + oracle->footprint_bytes() > opts_.max_bytes) {
        error = "registry byte budget exceeded (" +
                std::to_string(resident_bytes_locked() + oracle->footprint_bytes()) + " > " +
                std::to_string(opts_.max_bytes) + " bytes)";
      } else {
        entries_.erase(prov);
        // Re-registering a digest that is already resident (even one
        // draining as kExpiring) revives it — registration is idempotent.
        Entry& fin = entries_[digest];
        fin.state = OracleState::kReady;
        fin.oracle = oracle;
        outcome.digest = digest;
        outcome.state = OracleState::kReady;
        outcome.oracle = std::move(oracle);
      }
    } else if (error.empty()) {
      error = "registration produced no oracle";
    }
    if (!error.empty()) {
      // Keep the slot as kFailed so LIST_ORACLES can surface the reason;
      // reaped after failed_ttl (immediately when the TTL is zero).
      Entry& f = prov->second;
      f.state = OracleState::kFailed;
      f.error = error;
      f.failed_at = std::chrono::steady_clock::now();
      f.build_deadline = kNoDeadline;
      if (opts_.failed_ttl.count() == 0) entries_.erase(prov);
      outcome.state = OracleState::kFailed;
      outcome.error = std::move(error);
    }
  }
  done(std::move(outcome));
}

void OracleRegistry::poke() {
  struct Fired {
    RegisterCallback done;
    std::string error;
  };
  std::vector<Fired> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    reap_failed_locked(now);
    for (auto& [key, e] : entries_) {
      if (e.build_deadline == kNoDeadline || now < e.build_deadline) continue;
      if (e.state != OracleState::kRegistering && e.state != OracleState::kBuilding) continue;
      e.state = OracleState::kFailed;
      e.error =
          "build timed out after " + std::to_string(opts_.build_timeout.count()) + " ms";
      e.failed_at = now;
      e.build_deadline = kNoDeadline;
      // The pool task keeps running; finish() will see done == nullptr and
      // discard its late result.
      if (e.done) fired.push_back({std::move(e.done), e.error});
      e.done = nullptr;
    }
  }
  for (Fired& f : fired) {
    RegisterOutcome outcome;
    outcome.state = OracleState::kFailed;
    outcome.error = std::move(f.error);
    f.done(std::move(outcome));
  }
}

void OracleRegistry::reap_failed_locked(std::chrono::steady_clock::time_point now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& e = it->second;
    if (e.state == OracleState::kFailed && now - e.failed_at >= opts_.failed_ttl) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t OracleRegistry::adopt(std::shared_ptr<const service::Snapshot> oracle) {
  MSRP_REQUIRE(oracle != nullptr, "registry: adopt(null)");
  const std::uint64_t digest = oracle->content_digest();
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[digest];
  e.state = OracleState::kReady;
  e.oracle = std::move(oracle);
  return digest;
}

std::shared_ptr<const service::Snapshot> OracleRegistry::resolve(std::uint64_t digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(digest);
  if (it == entries_.end() || it->second.state != OracleState::kReady) return nullptr;
  return it->second.oracle;
}

OracleState OracleRegistry::state(std::uint64_t digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(digest);
  return it == entries_.end() ? OracleState::kUnknown : it->second.state;
}

std::optional<OracleState> OracleRegistry::unregister(std::uint64_t digest) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) return std::nullopt;
  Entry& e = it->second;
  switch (e.state) {
    case OracleState::kReady:
      if (e.inflight == 0) {
        entries_.erase(it);
        return OracleState::kUnregistered;
      }
      e.state = OracleState::kExpiring;  // drains via note_complete
      return OracleState::kExpiring;
    case OracleState::kExpiring:
      return OracleState::kExpiring;  // idempotent
    case OracleState::kFailed:
      // An operator may clear a failed slot before its TTL reap.
      entries_.erase(it);
      return OracleState::kUnregistered;
    default:
      // Still registering/building: the slot cannot be retired mid-build;
      // the caller reports the unchanged state as an error.
      return e.state;
  }
}

void OracleRegistry::note_batch(std::uint64_t digest) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) return;
  ++it->second.inflight;
}

void OracleRegistry::note_complete(std::uint64_t digest, std::size_t answered) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  MSRP_CHECK(e.inflight > 0, "registry: completion without an in-flight batch");
  --e.inflight;
  e.queries_answered += answered;
  if (e.state == OracleState::kExpiring && e.inflight == 0) entries_.erase(it);
}

void OracleRegistry::note_busy(std::uint64_t digest) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  MSRP_CHECK(e.inflight > 0, "registry: busy rollback without an in-flight batch");
  --e.inflight;
  if (e.state == OracleState::kExpiring && e.inflight == 0) entries_.erase(it);
}

std::vector<OracleInfo> OracleRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<OracleInfo> out;
  out.reserve(entries_.size());
  for (const auto& [digest, e] : entries_) {
    OracleInfo info;
    info.digest = digest;
    info.state = e.state;
    info.inflight_batches = static_cast<std::uint32_t>(e.inflight);
    info.queries_answered = e.queries_answered;
    info.error = e.error;
    if (e.oracle) {
      info.num_vertices = e.oracle->num_vertices();
      info.num_edges = e.oracle->num_edges();
      info.sources = e.oracle->sources();
      info.footprint_bytes = e.oracle->footprint_bytes();
    }
    out.push_back(std::move(info));
  }
  // Deterministic order for the wire and the tests.
  std::sort(out.begin(), out.end(),
            [](const OracleInfo& a, const OracleInfo& b) { return a.digest < b.digest; });
  return out;
}

std::size_t OracleRegistry::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t OracleRegistry::resident_bytes_locked() const {
  std::size_t total = 0;
  for (const auto& [digest, e] : entries_) {
    if (e.oracle) total += e.oracle->footprint_bytes();
  }
  return total;
}

std::size_t OracleRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_locked();
}

}  // namespace msrp::registry
