/// \file
/// Weighted round-robin admission control in front of the query service.
///
/// The QueryService pool is a shared resource: without a gate, one tenant
/// streaming huge batches at one digest occupies every worker and every
/// other tenant's batches queue behind its backlog. The dispatcher sits
/// between the server's frame handler and QueryService::submit_batch and
/// enforces three limits:
///
///   * per-tenant inflight cap — at most `per_tenant_inflight` batches of
///     one digest inside the service at once; excess arrivals queue;
///   * per-tenant queue cap — at most `per_tenant_queue` batches parked
///     per digest; beyond that the verdict is kBusy and the caller sends a
///     BUSY frame (the batch is never silently dropped);
///   * total inflight cap — the sum across tenants, so the pool's task
///     queue stays bounded no matter how many tenants are registered.
///
/// Queued batches drain in weighted round-robin order: each completion
/// pumps the ring, granting up to `weight` consecutive batches per tenant
/// per lap. A saturating tenant therefore cannot starve another — the
/// starved tenant's first queued batch is at most one ring lap away from
/// dispatch, and the fairness test in tests/registry_test.cpp pins exactly
/// that property.
///
/// Thread safety: submit() and the internal completion hook may run
/// concurrently from any threads. The underlying submit function is always
/// invoked OUTSIDE the dispatcher lock (it may do real work), and the
/// completion bookkeeping runs BEFORE the caller's callback — so by the
/// time a server's inflight gate releases its last batch, the dispatcher
/// is quiescent and safe to destroy.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "service/query_service.hpp"
#include "util/deadline.hpp"

namespace msrp::registry {

struct DispatchOptions {
  /// Batches one digest may have inside the QueryService at once (>= 1).
  std::size_t per_tenant_inflight = 16;
  /// Batches parked per digest beyond the inflight cap; 0 = never queue,
  /// reject with kBusy as soon as the inflight cap binds.
  std::size_t per_tenant_queue = 256;
  /// Summed inflight cap across all tenants (>= 1).
  std::size_t total_inflight = 128;
};

enum class DispatchVerdict {
  kDispatched,  ///< handed to the service immediately
  kQueued,      ///< parked; dispatches when a completion frees capacity
  kBusy,        ///< rejected — queue full; the callback will never run
};

class FairDispatcher {
 public:
  /// The downstream submit — QueryService::submit_batch in production, a
  /// manually-completed stub in the fairness tests. The Deadline is the
  /// batch's end-to-end budget (kNoDeadline = none), already spent in part
  /// by any time the batch sat in the dispatch queue.
  using Submit = std::function<void(std::shared_ptr<const service::Snapshot>,
                                    std::vector<service::Query>, service::BatchCallback,
                                    Deadline)>;

  /// A deferred batch of ANY workload: invoked (at most once, outside the
  /// dispatcher lock) when the batch wins an inflight slot, with the
  /// dispatcher's bookkeeping wrapped into the callback it must hand to the
  /// service. Admission control does not care what the batch computes —
  /// only that exactly one completion comes back — so the v3 opcodes
  /// (vitality, Vickrey, k-fail) ride the same WRR ring as point-query
  /// batches via submit_task().
  using StartFn = std::function<void(service::BatchCallback, Deadline)>;

  FairDispatcher(Submit submit, DispatchOptions opts);

  FairDispatcher(const FairDispatcher&) = delete;
  FairDispatcher& operator=(const FairDispatcher&) = delete;

  /// Admits one batch for `digest`. On kDispatched/kQueued the callback
  /// fires exactly once when the batch completes (bookkeeping already
  /// done); on kBusy it never fires. `weight` is the tenant's WRR share —
  /// grants per ring lap; later submits may revise it. A batch whose
  /// `deadline` passes while parked in the queue is completed with
  /// DeadlineExceeded at the next pump instead of dispatching stale work.
  DispatchVerdict submit(std::uint64_t digest,
                         std::shared_ptr<const service::Snapshot> oracle,
                         std::vector<service::Query> queries, service::BatchCallback done,
                         std::uint32_t weight = 1, Deadline deadline = kNoDeadline);

  /// Like submit(), for a batch that starts through an arbitrary closure
  /// instead of the constructor's Submit function. `start` receives the
  /// bookkeeping-wrapped callback and the deadline; it must hand them to
  /// exactly one service submit. A batch whose deadline expires while
  /// queued completes with DeadlineExceeded and `start` is never invoked.
  DispatchVerdict submit_task(std::uint64_t digest, StartFn start,
                              service::BatchCallback done, std::uint32_t weight = 1,
                              Deadline deadline = kNoDeadline);

  // Observability (tests assert against these).
  std::size_t inflight_batches() const;
  std::size_t queued_batches() const;
  std::size_t tenant_inflight(std::uint64_t digest) const;
  std::uint64_t busy_rejections() const;
  std::uint64_t dispatched_total() const;
  /// Queued batches completed with DeadlineExceeded before dispatch.
  std::uint64_t deadline_expirations() const;

 private:
  struct Pending {
    StartFn start;  ///< hands the batch to the service when dispatched
    service::BatchCallback done;
    Deadline deadline = kNoDeadline;
  };
  struct Tenant {
    std::deque<Pending> queue;
    std::size_t inflight = 0;
    std::uint32_t weight = 1;
    std::uint32_t credits = 0;  // grants taken this ring turn
    bool in_ring = false;
  };
  /// One batch popped by the pump, dispatched outside the lock.
  struct Ready {
    std::uint64_t digest = 0;
    Pending batch;
  };

  void on_complete(std::uint64_t digest);
  /// Drains the ring as far as the caps allow; fills `out` for the caller
  /// to dispatch after unlocking, and `expired` with queued batches whose
  /// deadline passed (their callbacks fire outside the lock, with
  /// DeadlineExceeded — they never took an inflight slot).
  void pump_locked(std::vector<Ready>& out, std::vector<Pending>& expired);
  /// Moves expired entries of every queued tenant into `expired`. Gated on
  /// queued_deadlines_ so deadline-free workloads pay nothing.
  void expire_queued_locked(std::vector<Pending>& expired);
  void dispatch(std::uint64_t digest, Pending batch);
  /// Drops a tenant with no queued or inflight work (keeps the map bounded
  /// under digest churn).
  void maybe_erase_locked(std::uint64_t digest);

  Submit submit_;
  DispatchOptions opts_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Tenant> tenants_;
  std::deque<std::uint64_t> ring_;  // digests with queued work, RR order
  std::size_t total_inflight_ = 0;
  std::size_t total_queued_ = 0;
  std::size_t queued_deadlines_ = 0;  // queued batches with a real deadline
  std::uint64_t busy_rejections_ = 0;
  std::uint64_t dispatched_total_ = 0;
  std::uint64_t deadline_expirations_ = 0;
};

}  // namespace msrp::registry
