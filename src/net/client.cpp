#include "net/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "core/config.hpp"
#include "util/assert.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MSRP_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define MSRP_HAVE_SOCKETS 0
#endif

namespace msrp::net {

std::chrono::milliseconds RetryPolicy::backoff_for(unsigned attempt) const {
  if (attempt == 0) return std::chrono::milliseconds(0);
  double ms = static_cast<double>(initial_backoff_ms);
  for (unsigned i = 1; i < attempt; ++i) ms *= multiplier;
  ms = std::min(ms, static_cast<double>(max_backoff_ms));
  if (jitter > 0.0) {
    // splitmix64-style hash of (seed, attempt): deterministic jitter, so a
    // pinned seed gives a reproducible schedule while distinct clients
    // (distinct seeds) still decorrelate their retries.
    std::uint64_t h = seed + 0x9e3779b97f4a7c15ull * (attempt + 1);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    const double unit = static_cast<double>(h % 10000) / 10000.0;  // [0, 1)
    ms *= 1.0 + jitter * (2.0 * unit - 1.0);
  }
  if (ms < 0.0) ms = 0.0;
  return std::chrono::milliseconds(static_cast<long long>(ms));
}

#if MSRP_HAVE_SOCKETS

// Sends to a server that closed on us must fail with EPIPE, not SIGPIPE.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace {

/// connect() with a timeout: non-blocking dial, poll for writability, then
/// back to blocking mode for the plain read/write loops.
int dial_once(const std::string& host, std::uint16_t port, unsigned timeout_ms) {
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net client: bad host address " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("net client: socket() failed");
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno == EINPROGRESS) {
    ::pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc == 1) {
      int err = 0;
      ::socklen_t len = sizeof err;
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      rc = err == 0 ? 0 : -1;
    } else {
      rc = -1;  // timeout or poll failure
    }
  }
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
#ifdef SO_NOSIGPIPE
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof one);  // macOS
#endif
  return fd;
}

}  // namespace

Client::Client(ClientOptions opts)
    : opts_(std::move(opts)), decoder_(opts_.max_frame_bytes) {
  dial();
}

Client::~Client() { close_socket(); }

void Client::close_socket() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::dial() {
  dialing_ = true;
  recv_bound_ = kNoDeadline;  // the handshake reads are not batch waits
  for (unsigned attempt = 0;; ++attempt) {
    fd_ = dial_once(opts_.host, opts_.port, opts_.connect_timeout_ms);
    if (fd_ >= 0) break;
    if (attempt >= opts_.connect_retries) {
      dialing_ = false;
      throw std::runtime_error("net client: cannot connect to " + opts_.host + ":" +
                               std::to_string(opts_.port));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(opts_.retry_delay_ms));
  }
  decoder_ = FrameDecoder(opts_.max_frame_bytes);
  ready_.clear();
  ready_vitality_.clear();
  ready_vickrey_.clear();
  ready_kfail_.clear();
  failed_.clear();
  busy_.clear();
  inflight_.clear();
  pending_frames_.clear();
  wire_deadlines_.clear();

  // The handshake: the first frame on the wire must be a HELLO we can
  // speak. The version is checked from the leading u32 BEFORE the payload
  // is decoded — a future version is allowed to change the HELLO layout,
  // so a mismatch must surface as the version diagnostic, not as a decode
  // error. Versions back to kMinProtocolVersion are accepted: a v2 frame
  // with zero flags IS a v1 frame, so against an old server this client
  // works until a registry call is made. Every failure path closes the
  // socket (the constructor may be about to propagate, with no destructor
  // coming).
  try {
    Frame frame = read_frame();
    if (frame.type != FrameType::kHello) {
      close_socket();
      throw std::runtime_error("net client: server did not start with HELLO");
    }
    if (frame.payload.size() < 4) {
      close_socket();
      throw std::runtime_error("net client: HELLO frame too short");
    }
    const std::uint32_t version = std::uint32_t{frame.payload[0]} |
                                  (std::uint32_t{frame.payload[1]} << 8) |
                                  (std::uint32_t{frame.payload[2]} << 16) |
                                  (std::uint32_t{frame.payload[3]} << 24);
    if (version < kMinProtocolVersion || version > kProtocolVersion) {
      close_socket();
      throw std::runtime_error("net client: server speaks protocol version " +
                               std::to_string(version) + ", this client speaks " +
                               std::to_string(kMinProtocolVersion) + ".." +
                               std::to_string(kProtocolVersion));
    }
    try {
      hello_ = decode_hello(frame.payload);
    } catch (const ProtocolError& ex) {
      close_socket();
      throw std::runtime_error(std::string("net client: malformed HELLO: ") + ex.what());
    }
  } catch (...) {
    dialing_ = false;
    throw;
  }
  dialing_ = false;
}

void Client::reconnect() {
  close_socket();
  dial();
}

bool Client::try_resend() {
  // Only idempotent batch traffic (QUERY_BATCH and the v3 workload frames)
  // can be replayed: every in-flight id must have its frame bytes stored,
  // and no control call may be pending (REGISTER_GRAPH replayed twice
  // would build twice — and worse, a replay that half-succeeded is
  // unobservable).
  if (!opts_.resend_on_reconnect || control_pending_ || dialing_) return false;
  if (pending_frames_.size() != inflight_.size()) return false;
  // dial() resets every per-connection map — save the batch state across
  // it. Buffered answers survive too: reconnecting must never destroy
  // results the caller has yet to wait() for.
  auto frames = std::move(pending_frames_);
  auto inflight = std::move(inflight_);
  auto ready = std::move(ready_);
  auto ready_vitality = std::move(ready_vitality_);
  auto ready_vickrey = std::move(ready_vickrey_);
  auto ready_kfail = std::move(ready_kfail_);
  auto failed = std::move(failed_);
  auto busy = std::move(busy_);
  auto deadlines = std::move(wire_deadlines_);
  try {
    dial();
  } catch (...) {
    return false;  // the caller reports the original connection loss
  }
  pending_frames_ = std::move(frames);
  inflight_ = std::move(inflight);
  ready_ = std::move(ready);
  ready_vitality_ = std::move(ready_vitality);
  ready_vickrey_ = std::move(ready_vickrey);
  ready_kfail_ = std::move(ready_kfail);
  failed_ = std::move(failed);
  busy_ = std::move(busy);
  wire_deadlines_ = std::move(deadlines);  // absolute instants survive a re-dial
  // Replay in send order (the map is id-ordered and ids are monotonic).
  // A loss during the replay recurses — bounded by connect_retries per
  // dial, and each recursion starts from a fresh socket.
  for (const auto& [id, bytes] : pending_frames_) {
    write_all(bytes);
    if (fd_ < 0) return false;
  }
  return true;
}

void Client::write_all(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ::ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close_socket();
      // A successful resend already rewrote these bytes from
      // pending_frames_ (the caller registered them before writing), so
      // this call's job is done.
      if (try_resend()) return;
      throw std::runtime_error("net client: connection lost during send");
    }
    off += static_cast<std::size_t>(n);
  }
}

Frame Client::read_frame() {
  // Capture the wait's bound: dial() (inside a mid-read resend) resets the
  // member, but this read must stay bounded across the reconnect too.
  const Deadline bound = recv_bound_;
  for (;;) {
    try {
      if (auto frame = decoder_.next()) return std::move(*frame);
    } catch (const ProtocolError&) {
      close_socket();  // a corrupt stream cannot be resynchronized
      throw;
    }
    if (bound != kNoDeadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          bound - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        // No reply inside the batch's budget plus grace. The server may
        // still answer on this socket eventually, but the wait is over and
        // the reply could never be reconciled — the connection goes too.
        close_socket();
        throw DeadlineError("net client: " + std::string(kDeadlineExceededPrefix) +
                            ": no reply within the batch deadline");
      }
      ::pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (pr == 0) continue;  // timed out: re-check the clock above
      if (pr < 0) {
        if (errno == EINTR) continue;
        close_socket();
        if (try_resend()) continue;
        throw std::runtime_error("net client: connection lost during receive");
      }
    }
    std::uint8_t buf[65536];
    const ::ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n == 0) {
      close_socket();
      if (try_resend()) continue;  // fresh socket, batches replayed
      throw std::runtime_error("net client: server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      close_socket();
      if (try_resend()) continue;
      throw std::runtime_error("net client: connection lost during receive");
    }
    if (MSRP_FAILPOINT("client.recv_truncate")) {
      // Drop these bytes and the socket: the connection dies mid-frame,
      // exactly as a peer reset between two reads would look.
      close_socket();
      if (try_resend()) continue;
      throw std::runtime_error("net client: connection lost during receive");
    }
    decoder_.feed({buf, static_cast<std::size_t>(n)});
  }
}

void Client::ensure_connected() {
  if (fd_ >= 0) return;
  // inflight() (not inflight_) on purpose: dial() clears the buffered
  // ready_/failed_/busy_ results too, and reconnecting must never destroy
  // answers the caller has yet to wait() for.
  if (!opts_.auto_reconnect || inflight() != 0) {
    throw std::runtime_error("net client: not connected");
  }
  dial();
}

std::uint64_t Client::track_and_write(std::uint64_t id, std::vector<std::uint8_t> bytes,
                                      FrameType expect, std::size_t count,
                                      std::optional<std::uint32_t> deadline_ms) {
  // Reject a frame the server's decoder would refuse anyway — before
  // shipping tens of megabytes just to learn that.
  if (bytes.size() > kFrameHeaderBytes + opts_.max_frame_bytes) {
    throw std::runtime_error("net client: batch exceeds the maximum frame size (" +
                             std::to_string(bytes.size() - kFrameHeaderBytes) + " > " +
                             std::to_string(opts_.max_frame_bytes) + " payload bytes)");
  }
  // Register before writing: a connection loss inside write_all resends
  // from pending_frames_, and this frame must be part of that replay.
  inflight_.emplace(id, Inflight{expect, count});
  if (opts_.resend_on_reconnect) pending_frames_.emplace(id, bytes);
  if (deadline_ms) {
    wire_deadlines_[id] =
        deadline_after_ms(*deadline_ms) + std::chrono::milliseconds(opts_.deadline_grace_ms);
  }
  try {
    write_all(bytes);
  } catch (...) {
    inflight_.erase(id);
    pending_frames_.erase(id);
    wire_deadlines_.erase(id);
    throw;
  }
  return id;
}

void Client::require_v3(const char* opcode) const {
  if (hello_.version >= 3) return;
  throw std::runtime_error("net client: " + std::string(opcode) +
                           " needs protocol version 3, but the server speaks version " +
                           std::to_string(hello_.version));
}

void Client::require_v4(const char* opcode) const {
  if (hello_.version >= 4) return;
  throw std::runtime_error("net client: " + std::string(opcode) +
                           " needs protocol version 4, but the server speaks version " +
                           std::to_string(hello_.version));
}

std::uint64_t Client::send(std::span<const service::Query> queries,
                           std::optional<std::uint64_t> digest,
                           std::optional<std::uint32_t> deadline_ms) {
  ensure_connected();
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  append_query_batch(bytes, id, queries, digest, deadline_ms);
  return track_and_write(id, std::move(bytes), FrameType::kAnswerBatch, queries.size(),
                         deadline_ms);
}

std::uint64_t Client::send_vitality(std::span<const service::VitalityQuery> queries,
                                    std::optional<std::uint64_t> digest,
                                    std::optional<std::uint32_t> deadline_ms) {
  ensure_connected();
  require_v3("VITALITY_BATCH");
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  append_vitality_batch(bytes, id, queries, digest, deadline_ms);
  return track_and_write(id, std::move(bytes), FrameType::kVitalityAnswer, queries.size(),
                         deadline_ms);
}

std::uint64_t Client::send_vickrey(std::span<const service::VickreyQuery> queries,
                                   std::optional<std::uint64_t> digest,
                                   std::optional<std::uint32_t> deadline_ms) {
  ensure_connected();
  require_v3("VICKREY_BATCH");
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  append_vickrey_batch(bytes, id, queries, digest, deadline_ms);
  return track_and_write(id, std::move(bytes), FrameType::kVickreyAnswer, queries.size(),
                         deadline_ms);
}

std::uint64_t Client::send_kfail(std::span<const service::KFailQuery> queries,
                                 std::optional<std::uint64_t> digest,
                                 std::optional<std::uint32_t> deadline_ms) {
  ensure_connected();
  require_v3("KFAIL_BATCH");
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  append_kfail_batch(bytes, id, queries, digest, deadline_ms);
  return track_and_write(id, std::move(bytes), FrameType::kKFailAnswer, queries.size(),
                         deadline_ms);
}

void Client::settle_inflight(std::uint64_t request_id, FrameType got, std::size_t answered) {
  // The reply must answer a batch we actually sent, with the frame kind
  // that batch's opcode owes us, in full — an unknown id, a reply of the
  // wrong kind, or a short answer vector is a server defect the caller
  // must never index into.
  const auto it = inflight_.find(request_id);
  if (it == inflight_.end()) {
    close_socket();
    throw std::runtime_error("net client: answer for a request that is not in flight");
  }
  if (it->second.expect != got) {
    close_socket();
    throw std::runtime_error("net client: answer kind does not match the request's opcode");
  }
  if (it->second.count != answered) {
    close_socket();
    throw std::runtime_error("net client: answer count does not match the batch");
  }
  inflight_.erase(it);
  pending_frames_.erase(request_id);
  wire_deadlines_.erase(request_id);
}

std::optional<Frame> Client::route_one(std::uint64_t control_id) {
  Frame frame = read_frame();
  switch (frame.type) {
    case FrameType::kAnswerBatch: {
      AnswerBatchFrame ab = decode_answer_batch(frame.payload);
      settle_inflight(ab.request_id, FrameType::kAnswerBatch, ab.answers.size());
      ready_.emplace(ab.request_id, BatchAnswer{ab.request_id, std::move(ab.answers)});
      return std::nullopt;
    }
    case FrameType::kVitalityAnswer: {
      VitalityAnswerFrame va = decode_vitality_answer(frame.payload);
      settle_inflight(va.request_id, FrameType::kVitalityAnswer, va.results.size());
      ready_vitality_.emplace(va.request_id, std::move(va.results));
      return std::nullopt;
    }
    case FrameType::kVickreyAnswer: {
      VickreyAnswerFrame va = decode_vickrey_answer(frame.payload);
      settle_inflight(va.request_id, FrameType::kVickreyAnswer, va.results.size());
      ready_vickrey_.emplace(va.request_id, std::move(va.results));
      return std::nullopt;
    }
    case FrameType::kKFailAnswer: {
      KFailAnswerFrame ka = decode_kfail_answer(frame.payload);
      settle_inflight(ka.request_id, FrameType::kKFailAnswer, ka.answers.size());
      ready_kfail_.emplace(ka.request_id, std::move(ka.answers));
      return std::nullopt;
    }
    case FrameType::kError: {
      ErrorFrame err = decode_error(frame.payload);
      if (err.request_id == 0) {
        // Connection-level: the server is about to close on us.
        close_socket();
        throw std::runtime_error("net client: server error: " + err.message);
      }
      if (err.request_id == control_id) return frame;
      const auto it = inflight_.find(err.request_id);
      if (it == inflight_.end()) {
        close_socket();
        throw std::runtime_error("net client: error for a request that is not in flight");
      }
      inflight_.erase(it);
      pending_frames_.erase(err.request_id);
      wire_deadlines_.erase(err.request_id);
      failed_.emplace(err.request_id, std::move(err.message));
      return std::nullopt;
    }
    case FrameType::kBusy: {
      ErrorFrame busy = decode_error(frame.payload);  // BUSY shares the shape
      if (busy.request_id == control_id && control_id != 0) return frame;
      const auto it = inflight_.find(busy.request_id);
      if (it == inflight_.end()) {
        close_socket();
        throw std::runtime_error("net client: BUSY for a request that is not in flight");
      }
      inflight_.erase(it);
      pending_frames_.erase(busy.request_id);
      wire_deadlines_.erase(busy.request_id);
      busy_.emplace(busy.request_id, std::move(busy.message));
      return std::nullopt;
    }
    case FrameType::kRegisterAck: {
      const RegisterAckFrame ack = decode_register_ack(frame.payload);
      if (control_id != 0 && ack.request_id == control_id) return frame;
      close_socket();
      throw std::runtime_error("net client: REGISTER_ACK with no registration in flight");
    }
    case FrameType::kOracleList: {
      const OracleListFrame list = decode_oracle_list(frame.payload);
      if (control_id != 0 && list.request_id == control_id) return frame;
      close_socket();
      throw std::runtime_error("net client: ORACLE_LIST with no list request in flight");
    }
    case FrameType::kStatsSnapshot: {
      const StatsSnapshotFrame stats = decode_stats_snapshot(frame.payload);
      if (control_id != 0 && stats.request_id == control_id) return frame;
      close_socket();
      throw std::runtime_error("net client: STATS_SNAPSHOT with no stats request in flight");
    }
    default:
      close_socket();
      throw std::runtime_error("net client: unexpected frame type from server");
  }
}

BatchAnswer Client::wait_any() {
  for (;;) {
    if (!ready_.empty()) {
      auto it = ready_.begin();
      BatchAnswer out = std::move(it->second);
      ready_.erase(it);
      return out;
    }
    if (!failed_.empty()) {
      auto it = failed_.begin();
      const std::string message = std::move(it->second);
      failed_.erase(it);
      if (is_deadline_exceeded_message(message)) {
        throw DeadlineError("net client: batch failed: " + message);
      }
      throw std::runtime_error("net client: batch failed: " + message);
    }
    if (!busy_.empty()) {
      auto it = busy_.begin();
      const std::string message = std::move(it->second);
      busy_.erase(it);
      throw BusyError("net client: batch rejected: " + message);
    }
    MSRP_REQUIRE(!inflight_.empty(), "net client: wait_any with nothing in flight");
    // The earliest give-up instant across the deadlined batches bounds the
    // read: once it passes, that batch can never complete acceptably.
    Deadline bound = kNoDeadline;
    for (const auto& [id, d] : wire_deadlines_) bound = std::min(bound, d);
    recv_bound_ = bound;
    route_one(0);
  }
}

void Client::wait_step(std::uint64_t request_id) {
  if (const auto it = failed_.find(request_id); it != failed_.end()) {
    const std::string message = std::move(it->second);
    failed_.erase(it);
    if (is_deadline_exceeded_message(message)) {
      throw DeadlineError("net client: batch failed: " + message);
    }
    throw std::runtime_error("net client: batch failed: " + message);
  }
  if (const auto it = busy_.find(request_id); it != busy_.end()) {
    const std::string message = std::move(it->second);
    busy_.erase(it);
    throw BusyError("net client: batch rejected: " + message);
  }
  MSRP_REQUIRE(inflight_.count(request_id) != 0,
               "net client: waiting for an id that is not in flight");
  const auto dl = wire_deadlines_.find(request_id);
  recv_bound_ = dl == wire_deadlines_.end() ? kNoDeadline : dl->second;
  route_one(0);
}

std::vector<Dist> Client::wait(std::uint64_t request_id) {
  for (;;) {
    if (const auto it = ready_.find(request_id); it != ready_.end()) {
      std::vector<Dist> out = std::move(it->second.answers);
      ready_.erase(it);
      return out;
    }
    wait_step(request_id);
  }
}

std::vector<service::VitalityResult> Client::wait_vitality(std::uint64_t request_id) {
  for (;;) {
    if (const auto it = ready_vitality_.find(request_id); it != ready_vitality_.end()) {
      std::vector<service::VitalityResult> out = std::move(it->second);
      ready_vitality_.erase(it);
      return out;
    }
    wait_step(request_id);
  }
}

std::vector<service::VickreyResult> Client::wait_vickrey(std::uint64_t request_id) {
  for (;;) {
    if (const auto it = ready_vickrey_.find(request_id); it != ready_vickrey_.end()) {
      std::vector<service::VickreyResult> out = std::move(it->second);
      ready_vickrey_.erase(it);
      return out;
    }
    wait_step(request_id);
  }
}

std::vector<Dist> Client::wait_kfail(std::uint64_t request_id) {
  for (;;) {
    if (const auto it = ready_kfail_.find(request_id); it != ready_kfail_.end()) {
      std::vector<Dist> out = std::move(it->second);
      ready_kfail_.erase(it);
      return out;
    }
    wait_step(request_id);
  }
}

std::vector<Dist> Client::query_batch(std::span<const service::Query> queries,
                                      std::optional<std::uint64_t> digest,
                                      std::optional<std::uint32_t> deadline_ms) {
  return wait(send(queries, digest, deadline_ms));
}

std::vector<service::VitalityResult> Client::vitality_batch(
    std::span<const service::VitalityQuery> queries, std::optional<std::uint64_t> digest,
    std::optional<std::uint32_t> deadline_ms) {
  return wait_vitality(send_vitality(queries, digest, deadline_ms));
}

std::vector<service::VickreyResult> Client::vickrey_batch(
    std::span<const service::VickreyQuery> queries, std::optional<std::uint64_t> digest,
    std::optional<std::uint32_t> deadline_ms) {
  return wait_vickrey(send_vickrey(queries, digest, deadline_ms));
}

std::vector<Dist> Client::kfail_batch(std::span<const service::KFailQuery> queries,
                                      std::optional<std::uint64_t> digest,
                                      std::optional<std::uint32_t> deadline_ms) {
  return wait_kfail(send_kfail(queries, digest, deadline_ms));
}

namespace {

/// The retry loop shared by every idempotent round trip: BUSY rejections,
/// connection loss, and DEADLINE_EXCEEDED replies retry on the policy's
/// backoff schedule; any other server-reported failure rethrows. `attempt`
/// runs one synchronous round trip with the remaining wire budget.
template <class Attempt>
auto run_with_retry(Client& client, const RetryPolicy& policy, Attempt attempt)
    -> decltype(attempt(std::optional<std::uint32_t>{})) {
  const Deadline overall =
      policy.deadline_ms != 0 ? deadline_after_ms(policy.deadline_ms) : kNoDeadline;
  const unsigned attempts = std::max(1u, policy.max_attempts);
  for (unsigned round = 0;; ++round) {
    // Each attempt carries whatever budget remains, so the server stops
    // working on an attempt the client has already given up on.
    std::optional<std::uint32_t> wire_ms;
    if (overall != kNoDeadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          overall - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        throw DeadlineError("net client: " + std::string(kDeadlineExceededPrefix) +
                            ": retry budget exhausted after " + std::to_string(round) +
                            " attempts");
      }
      wire_ms = static_cast<std::uint32_t>(left.count());
    }
    try {
      if (!client.connected()) client.reconnect();
      return attempt(wire_ms);
    } catch (const BusyError&) {
      if (round + 1 >= attempts) throw;
    } catch (const DeadlineError&) {
      if (round + 1 >= attempts) throw;
    } catch (const std::runtime_error&) {
      // Connection loss closes the socket; a server-reported batch error
      // leaves it open and is never retried (same bytes, same verdict).
      if (client.connected() || round + 1 >= attempts) throw;
    }
    auto pause = policy.backoff_for(round + 1);
    if (overall != kNoDeadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          overall - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        throw DeadlineError("net client: " + std::string(kDeadlineExceededPrefix) +
                            ": retry budget exhausted after " + std::to_string(round + 1) +
                            " attempts");
      }
      pause = std::min(pause, std::chrono::milliseconds(left.count()));
    }
    if (pause.count() > 0) std::this_thread::sleep_for(pause);
  }
}

}  // namespace

std::vector<Dist> Client::query_batch_retry(std::span<const service::Query> queries,
                                            const RetryPolicy& policy,
                                            std::optional<std::uint64_t> digest) {
  return run_with_retry(*this, policy, [&](std::optional<std::uint32_t> wire_ms) {
    return query_batch(queries, digest, wire_ms);
  });
}

std::vector<service::VitalityResult> Client::vitality_batch_retry(
    std::span<const service::VitalityQuery> queries, const RetryPolicy& policy,
    std::optional<std::uint64_t> digest) {
  return run_with_retry(*this, policy, [&](std::optional<std::uint32_t> wire_ms) {
    return vitality_batch(queries, digest, wire_ms);
  });
}

std::vector<service::VickreyResult> Client::vickrey_batch_retry(
    std::span<const service::VickreyQuery> queries, const RetryPolicy& policy,
    std::optional<std::uint64_t> digest) {
  return run_with_retry(*this, policy, [&](std::optional<std::uint32_t> wire_ms) {
    return vickrey_batch(queries, digest, wire_ms);
  });
}

std::vector<Dist> Client::kfail_batch_retry(std::span<const service::KFailQuery> queries,
                                            const RetryPolicy& policy,
                                            std::optional<std::uint64_t> digest) {
  return run_with_retry(*this, policy, [&](std::optional<std::uint32_t> wire_ms) {
    return kfail_batch(queries, digest, wire_ms);
  });
}

Frame Client::control_round_trip(std::uint64_t control_id, std::vector<std::uint8_t> bytes) {
  ensure_connected();
  recv_bound_ = kNoDeadline;  // control calls keep the unbounded wait
  MSRP_REQUIRE(!control_pending_, "net client: nested control call");
  control_pending_ = true;
  try {
    write_all(bytes);
    for (;;) {
      if (auto reply = route_one(control_id)) {
        control_pending_ = false;
        return std::move(*reply);
      }
    }
  } catch (...) {
    control_pending_ = false;
    throw;
  }
}

RegisterAckFrame Client::register_graph(std::uint32_t num_vertices,
                                        std::span<const std::pair<Vertex, Vertex>> edges,
                                        std::span<const Vertex> sources,
                                        std::optional<std::uint64_t> seed) {
  RegisterGraphFrame reg;
  reg.request_id = next_id_++;
  reg.mode = RegisterMode::kEdgeList;
  reg.seed = seed ? *seed : Config{}.seed;
  reg.num_vertices = num_vertices;
  reg.sources.assign(sources.begin(), sources.end());
  reg.edges.assign(edges.begin(), edges.end());
  std::vector<std::uint8_t> bytes;
  append_register_graph(bytes, reg);
  Frame reply = control_round_trip(reg.request_id, std::move(bytes));
  if (reply.type == FrameType::kError) {
    throw std::runtime_error("net client: registration failed: " +
                             decode_error(reply.payload).message);
  }
  if (reply.type == FrameType::kBusy) {
    throw BusyError("net client: registration rejected: " +
                    decode_error(reply.payload).message);
  }
  return decode_register_ack(reply.payload);
}

RegisterAckFrame Client::register_snapshot_path(const std::string& path) {
  RegisterGraphFrame reg;
  reg.request_id = next_id_++;
  reg.mode = RegisterMode::kSnapshotPath;
  reg.snapshot_path = path;
  std::vector<std::uint8_t> bytes;
  append_register_graph(bytes, reg);
  Frame reply = control_round_trip(reg.request_id, std::move(bytes));
  if (reply.type == FrameType::kError) {
    throw std::runtime_error("net client: registration failed: " +
                             decode_error(reply.payload).message);
  }
  if (reply.type == FrameType::kBusy) {
    throw BusyError("net client: registration rejected: " +
                    decode_error(reply.payload).message);
  }
  return decode_register_ack(reply.payload);
}

std::vector<OracleListEntry> Client::list_oracles() {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  append_list_oracles(bytes, id);
  Frame reply = control_round_trip(id, std::move(bytes));
  if (reply.type == FrameType::kError) {
    throw std::runtime_error("net client: list failed: " +
                             decode_error(reply.payload).message);
  }
  return decode_oracle_list(reply.payload).oracles;
}

RegisterAckFrame Client::unregister(std::uint64_t digest) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  append_unregister(bytes, id, digest);
  Frame reply = control_round_trip(id, std::move(bytes));
  if (reply.type == FrameType::kError) {
    throw std::runtime_error("net client: unregister failed: " +
                             decode_error(reply.payload).message);
  }
  return decode_register_ack(reply.payload);
}

StatsSnapshotFrame Client::stats() {
  require_v4("STATS_REQUEST");
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  append_stats_request(bytes, id);
  Frame reply = control_round_trip(id, std::move(bytes));
  if (reply.type == FrameType::kError) {
    throw std::runtime_error("net client: stats failed: " +
                             decode_error(reply.payload).message);
  }
  return decode_stats_snapshot(reply.payload);
}

#else  // !MSRP_HAVE_SOCKETS

Client::Client(ClientOptions opts) : opts_(std::move(opts)) {
  throw std::runtime_error("net client: sockets are unavailable on this platform");
}
Client::~Client() = default;
void Client::dial() {}
void Client::close_socket() {}
bool Client::try_resend() { return false; }
void Client::reconnect() {}
void Client::ensure_connected() {}
void Client::write_all(std::span<const std::uint8_t>) {}
Frame Client::read_frame() { return {}; }
std::optional<Frame> Client::route_one(std::uint64_t) { return std::nullopt; }
Frame Client::control_round_trip(std::uint64_t, std::vector<std::uint8_t>) { return {}; }
std::uint64_t Client::send(std::span<const service::Query>, std::optional<std::uint64_t>,
                           std::optional<std::uint32_t>) {
  return 0;
}
std::uint64_t Client::track_and_write(std::uint64_t, std::vector<std::uint8_t>, FrameType,
                                      std::size_t, std::optional<std::uint32_t>) {
  return 0;
}
void Client::require_v3(const char*) const {}
void Client::require_v4(const char*) const {}
void Client::wait_step(std::uint64_t) {}
void Client::settle_inflight(std::uint64_t, FrameType, std::size_t) {}
std::uint64_t Client::send_vitality(std::span<const service::VitalityQuery>,
                                    std::optional<std::uint64_t>,
                                    std::optional<std::uint32_t>) {
  return 0;
}
std::uint64_t Client::send_vickrey(std::span<const service::VickreyQuery>,
                                   std::optional<std::uint64_t>,
                                   std::optional<std::uint32_t>) {
  return 0;
}
std::uint64_t Client::send_kfail(std::span<const service::KFailQuery>,
                                 std::optional<std::uint64_t>,
                                 std::optional<std::uint32_t>) {
  return 0;
}
BatchAnswer Client::wait_any() { return {}; }
std::vector<Dist> Client::wait(std::uint64_t) { return {}; }
std::vector<service::VitalityResult> Client::wait_vitality(std::uint64_t) { return {}; }
std::vector<service::VickreyResult> Client::wait_vickrey(std::uint64_t) { return {}; }
std::vector<Dist> Client::wait_kfail(std::uint64_t) { return {}; }
std::vector<Dist> Client::query_batch(std::span<const service::Query>,
                                      std::optional<std::uint64_t>,
                                      std::optional<std::uint32_t>) {
  return {};
}
std::vector<service::VitalityResult> Client::vitality_batch(
    std::span<const service::VitalityQuery>, std::optional<std::uint64_t>,
    std::optional<std::uint32_t>) {
  return {};
}
std::vector<service::VickreyResult> Client::vickrey_batch(std::span<const service::VickreyQuery>,
                                                          std::optional<std::uint64_t>,
                                                          std::optional<std::uint32_t>) {
  return {};
}
std::vector<Dist> Client::kfail_batch(std::span<const service::KFailQuery>,
                                      std::optional<std::uint64_t>,
                                      std::optional<std::uint32_t>) {
  return {};
}
std::vector<Dist> Client::query_batch_retry(std::span<const service::Query>,
                                            const RetryPolicy&,
                                            std::optional<std::uint64_t>) {
  return {};
}
std::vector<service::VitalityResult> Client::vitality_batch_retry(
    std::span<const service::VitalityQuery>, const RetryPolicy&, std::optional<std::uint64_t>) {
  return {};
}
std::vector<service::VickreyResult> Client::vickrey_batch_retry(
    std::span<const service::VickreyQuery>, const RetryPolicy&, std::optional<std::uint64_t>) {
  return {};
}
std::vector<Dist> Client::kfail_batch_retry(std::span<const service::KFailQuery>,
                                            const RetryPolicy&, std::optional<std::uint64_t>) {
  return {};
}
RegisterAckFrame Client::register_graph(std::uint32_t,
                                        std::span<const std::pair<Vertex, Vertex>>,
                                        std::span<const Vertex>,
                                        std::optional<std::uint64_t>) {
  return {};
}
RegisterAckFrame Client::register_snapshot_path(const std::string&) { return {}; }
std::vector<OracleListEntry> Client::list_oracles() { return {}; }
RegisterAckFrame Client::unregister(std::uint64_t) { return {}; }
StatsSnapshotFrame Client::stats() { return {}; }

#endif

}  // namespace msrp::net
