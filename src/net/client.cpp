#include "net/client.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MSRP_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define MSRP_HAVE_SOCKETS 0
#endif

namespace msrp::net {

#if MSRP_HAVE_SOCKETS

// Sends to a server that closed on us must fail with EPIPE, not SIGPIPE.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace {

/// connect() with a timeout: non-blocking dial, poll for writability, then
/// back to blocking mode for the plain read/write loops.
int dial_once(const std::string& host, std::uint16_t port, unsigned timeout_ms) {
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("net client: bad host address " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("net client: socket() failed");
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno == EINPROGRESS) {
    ::pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc == 1) {
      int err = 0;
      ::socklen_t len = sizeof err;
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      rc = err == 0 ? 0 : -1;
    } else {
      rc = -1;  // timeout or poll failure
    }
  }
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
#ifdef SO_NOSIGPIPE
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof one);  // macOS
#endif
  return fd;
}

}  // namespace

Client::Client(ClientOptions opts)
    : opts_(std::move(opts)), decoder_(opts_.max_frame_bytes) {
  dial();
}

Client::~Client() { close_socket(); }

void Client::close_socket() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::dial() {
  for (unsigned attempt = 0;; ++attempt) {
    fd_ = dial_once(opts_.host, opts_.port, opts_.connect_timeout_ms);
    if (fd_ >= 0) break;
    if (attempt >= opts_.connect_retries) {
      throw std::runtime_error("net client: cannot connect to " + opts_.host + ":" +
                               std::to_string(opts_.port));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(opts_.retry_delay_ms));
  }
  decoder_ = FrameDecoder(opts_.max_frame_bytes);
  ready_.clear();
  failed_.clear();
  inflight_.clear();

  // The handshake: the first frame on the wire must be a HELLO we can
  // speak. The version is checked from the leading u32 BEFORE the payload
  // is decoded — a future version is allowed to change the HELLO layout,
  // so a mismatch must surface as the version diagnostic, not as a decode
  // error. Every failure path closes the socket (the constructor may be
  // about to propagate, with no destructor coming).
  Frame frame = read_frame();
  if (frame.type != FrameType::kHello) {
    close_socket();
    throw std::runtime_error("net client: server did not start with HELLO");
  }
  if (frame.payload.size() < 4) {
    close_socket();
    throw std::runtime_error("net client: HELLO frame too short");
  }
  const std::uint32_t version = std::uint32_t{frame.payload[0]} |
                                (std::uint32_t{frame.payload[1]} << 8) |
                                (std::uint32_t{frame.payload[2]} << 16) |
                                (std::uint32_t{frame.payload[3]} << 24);
  if (version != kProtocolVersion) {
    close_socket();
    throw std::runtime_error("net client: server speaks protocol version " +
                             std::to_string(version) + ", this client speaks " +
                             std::to_string(kProtocolVersion));
  }
  try {
    hello_ = decode_hello(frame.payload);
  } catch (const ProtocolError& ex) {
    close_socket();
    throw std::runtime_error(std::string("net client: malformed HELLO: ") + ex.what());
  }
}

void Client::reconnect() {
  close_socket();
  dial();
}

void Client::write_all(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ::ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close_socket();
      throw std::runtime_error("net client: connection lost during send");
    }
    off += static_cast<std::size_t>(n);
  }
}

Frame Client::read_frame() {
  for (;;) {
    try {
      if (auto frame = decoder_.next()) return std::move(*frame);
    } catch (const ProtocolError&) {
      close_socket();  // a corrupt stream cannot be resynchronized
      throw;
    }
    std::uint8_t buf[65536];
    const ::ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n == 0) {
      close_socket();
      throw std::runtime_error("net client: server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      close_socket();
      throw std::runtime_error("net client: connection lost during receive");
    }
    decoder_.feed({buf, static_cast<std::size_t>(n)});
  }
}

std::uint64_t Client::send(std::span<const service::Query> queries) {
  if (fd_ < 0) {
    // inflight() (not inflight_) on purpose: dial() clears the buffered
    // ready_/failed_ results too, and reconnecting must never destroy
    // answers the caller has yet to wait() for.
    if (!opts_.auto_reconnect || inflight() != 0) {
      throw std::runtime_error("net client: not connected");
    }
    dial();
  }
  // Reject a batch the server's decoder would refuse anyway — before
  // shipping tens of megabytes just to learn that.
  const std::size_t payload_bytes = 16 + 12 * queries.size();
  if (payload_bytes > opts_.max_frame_bytes) {
    throw std::runtime_error("net client: batch exceeds the maximum frame size (" +
                             std::to_string(payload_bytes) + " > " +
                             std::to_string(opts_.max_frame_bytes) + " payload bytes)");
  }
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> bytes;
  append_query_batch(bytes, id, queries);
  write_all(bytes);
  inflight_.emplace(id, queries.size());
  return id;
}

BatchAnswer Client::collect_next() {
  for (;;) {
    Frame frame = read_frame();
    switch (frame.type) {
      case FrameType::kAnswerBatch: {
        AnswerBatchFrame ab = decode_answer_batch(frame.payload);
        // The reply must answer a batch we actually sent, in full — an
        // unknown id or a short answer vector is a server defect the
        // caller must never index into.
        const auto it = inflight_.find(ab.request_id);
        if (it == inflight_.end() || ab.answers.size() != it->second) {
          close_socket();
          throw std::runtime_error(
              it == inflight_.end()
                  ? "net client: answer for a request that is not in flight"
                  : "net client: answer count does not match the batch");
        }
        inflight_.erase(it);
        return BatchAnswer{ab.request_id, std::move(ab.answers)};
      }
      case FrameType::kError: {
        const ErrorFrame err = decode_error(frame.payload);
        if (err.request_id == 0) {
          // Connection-level: the server is about to close on us.
          close_socket();
          throw std::runtime_error("net client: server error: " + err.message);
        }
        const auto it = inflight_.find(err.request_id);
        if (it == inflight_.end()) {
          close_socket();
          throw std::runtime_error("net client: error for a request that is not in flight");
        }
        inflight_.erase(it);
        failed_.emplace(err.request_id, err.message);
        // Surface through wait()/wait_any() below so the caller can match
        // the failure to its id.
        return BatchAnswer{err.request_id, {}};
      }
      default:
        close_socket();
        throw std::runtime_error("net client: unexpected frame type from server");
    }
  }
}

BatchAnswer Client::wait_any() {
  if (!ready_.empty()) {
    auto it = ready_.begin();
    BatchAnswer out = std::move(it->second);
    ready_.erase(it);
    return out;
  }
  if (!failed_.empty()) {
    auto it = failed_.begin();
    const std::string message = std::move(it->second);
    failed_.erase(it);
    throw std::runtime_error("net client: batch failed: " + message);
  }
  MSRP_REQUIRE(!inflight_.empty(), "net client: wait_any with nothing in flight");
  BatchAnswer got = collect_next();
  if (const auto it = failed_.find(got.request_id); it != failed_.end()) {
    const std::string message = std::move(it->second);
    failed_.erase(it);
    throw std::runtime_error("net client: batch failed: " + message);
  }
  return got;
}

std::vector<Dist> Client::wait(std::uint64_t request_id) {
  if (const auto it = ready_.find(request_id); it != ready_.end()) {
    std::vector<Dist> out = std::move(it->second.answers);
    ready_.erase(it);
    return out;
  }
  for (;;) {
    if (const auto it = failed_.find(request_id); it != failed_.end()) {
      const std::string message = std::move(it->second);
      failed_.erase(it);
      throw std::runtime_error("net client: batch failed: " + message);
    }
    MSRP_REQUIRE(inflight_.count(request_id) != 0,
                 "net client: waiting for an id that is not in flight");
    BatchAnswer got = collect_next();
    if (got.request_id == request_id) {
      if (const auto it = failed_.find(request_id); it != failed_.end()) {
        const std::string message = std::move(it->second);
        failed_.erase(it);
        throw std::runtime_error("net client: batch failed: " + message);
      }
      return std::move(got.answers);
    }
    if (failed_.find(got.request_id) == failed_.end()) {
      ready_.emplace(got.request_id, std::move(got));
    }
  }
}

std::vector<Dist> Client::query_batch(std::span<const service::Query> queries) {
  return wait(send(queries));
}

#else  // !MSRP_HAVE_SOCKETS

Client::Client(ClientOptions opts) : opts_(std::move(opts)) {
  throw std::runtime_error("net client: sockets are unavailable on this platform");
}
Client::~Client() = default;
void Client::dial() {}
void Client::close_socket() {}
void Client::reconnect() {}
void Client::write_all(std::span<const std::uint8_t>) {}
Frame Client::read_frame() { return {}; }
BatchAnswer Client::collect_next() { return {}; }
std::uint64_t Client::send(std::span<const service::Query>) { return 0; }
BatchAnswer Client::wait_any() { return {}; }
std::vector<Dist> Client::wait(std::uint64_t) { return {}; }
std::vector<Dist> Client::query_batch(std::span<const service::Query>) { return {}; }

#endif

}  // namespace msrp::net
