/// \file
/// TCP front end over the query service: the deployable server.
///
/// One Server serves one oracle (or a registry of them) through a
/// QueryService, across ServerOptions::loops event-loop threads. The
/// threading split mirrors the async API it sits on (submit on accept,
/// reply on completion — the handler shape PR 2's future/callback API was
/// designed for):
///
///   * each LOOP THREAD (an epoll EventLoop; run() starts loops-1 extra
///     threads and serves loop 0 on the caller) owns its accepted sockets
///     and all their per-connection state outright: it reads and
///     frame-decodes request bytes, writes reply bytes, and enforces
///     backpressure. No frame decode or reply write ever crosses loops,
///     so there are no locks anywhere on this path. With SO_REUSEPORT
///     every loop has its own listener on the shared port and the kernel
///     spreads accepts; where REUSEPORT is unavailable (or the test hook
///     forces it), loop 0 accepts and hands connections off round-robin
///     through the target loop's doorbell;
///   * the POOL THREADS (QueryService's workers) answer batches. A decoded
///     QUERY_BATCH is handed to QueryService::submit_batch with a callback;
///     the callback fires on a worker and posts the encoded reply back to
///     the connection's OWN loop through that loop's eventfd doorbell. The
///     worker never touches a socket, loop threads never wait on a
///     batch — each side stays at its own latency scale.
///
/// Registry, dispatcher, and QueryService state stay shared across loops
/// behind their existing locks; only connection state is per-loop.
///
/// Pipelining falls out of the request ids: a connection may have up to
/// max_inflight_batches batches in the service at once, and replies go out
/// in *completion* order, tagged with the request id they answer.
///
/// Backpressure is per connection and two-sided. Reads pause (the fd drops
/// out of the epoll interest set) while the connection has
/// max_inflight_batches batches in flight or more than output_high_water
/// reply bytes queued; they resume when both clear. Combined with the
/// frame-size cap this bounds the memory a connection can hold:
/// inflight * max_frame + queued output, no matter how fast it writes or
/// how slowly it reads.
///
/// shutdown() drains instead of dropping: the listener closes immediately,
/// reads stop, but every batch already in the service completes and its
/// reply is flushed before the connection closes (bounded by
/// drain_timeout_ms, then force-closed). A client that disconnects
/// mid-batch just has its replies dropped on completion — the service is
/// never cancelled, the server never blocks.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "registry/dispatch.hpp"
#include "registry/oracle_registry.hpp"
#include "service/query_service.hpp"

namespace msrp::net {

struct ServerOptions {
  /// Address to bind (dotted IPv4). Loopback by default: exposing an
  /// unauthenticated oracle on a public interface is an explicit decision.
  std::string bind_addr = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Per-frame payload cap, both directions.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Batches one connection may have inside the QueryService at once;
  /// reads pause beyond this (pipelining window).
  std::size_t max_inflight_batches = 64;
  /// Queued unsent reply bytes per connection beyond which reads pause
  /// until the client drains its socket.
  std::size_t output_high_water = 8u << 20;
  /// Register sockets edge-triggered (EPOLLET) instead of level-triggered.
  /// Identical behaviour (handlers drain to EAGAIN either way); exposed so
  /// the loopback tests exercise both registration modes.
  bool edge_triggered = false;
  /// Event-loop threads. Each loop gets its own SO_REUSEPORT listener on
  /// the shared port and owns its accepted connections outright; when
  /// REUSEPORT is unavailable, loop 0 keeps the single listener and hands
  /// accepted sockets off round-robin. 0 is treated as 1.
  unsigned loops = 1;
  /// Pin loop thread i to CPU (i mod hardware_concurrency). Linux-only;
  /// a no-op elsewhere. Note run()'s calling thread (loop 0) is pinned
  /// too.
  bool pin_loops = false;
  /// Test hook: skip SO_REUSEPORT and exercise the single-listener
  /// accept-hand-off fallback even where REUSEPORT works.
  bool force_accept_handoff = false;
  /// How long shutdown() waits for in-flight batches to complete and their
  /// replies to flush before force-closing connections.
  unsigned drain_timeout_ms = 10000;
  /// Evict a connection with no batches in flight, no queued output, and
  /// no bytes read for this long (0 = never). Bounds the sockets a silent
  /// peer can pin; swept on the ~100 ms loop tick.
  unsigned idle_timeout_ms = 0;
  /// Evict a connection whose queued output has made no write progress for
  /// this long (0 = never) — a reader stuck below the high-water mark
  /// would otherwise hold its replies (and their memory) forever.
  unsigned write_stall_timeout_ms = 0;
  /// Admission-control caps for the fair dispatcher every batch routes
  /// through (per-tenant inflight/queue, total inflight; see
  /// registry/dispatch.hpp). A batch the dispatcher refuses is answered
  /// with a BUSY frame instead of queueing without bound.
  registry::DispatchOptions dispatch;
  /// Optional trace ring (obs/trace.hpp): one batch in N gets its per-stage
  /// span published here. Not owned; must outlive the server. Null = no
  /// sampling (stage histograms still record unconditionally).
  obs::TraceRing* trace_ring = nullptr;
};

/// Monotonic counters, readable from any thread while the server runs.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t batches_received = 0;  ///< all batch kinds, point queries included
  std::uint64_t queries_answered = 0;
  std::uint64_t vitality_batches = 0;  ///< TOP_K_VITAL batches received
  std::uint64_t vickrey_batches = 0;   ///< VICKREY_PRICES batches received
  std::uint64_t kfail_batches = 0;     ///< K_FAIL batches received
  std::uint64_t batch_errors = 0;     ///< batches answered with an ERROR frame
  std::uint64_t protocol_errors = 0;  ///< connections dropped for bad framing
  std::uint64_t replies_dropped = 0;  ///< completions whose connection was gone
  std::uint64_t busy_rejected = 0;    ///< batches answered with a BUSY frame
  std::uint64_t oracles_registered = 0;     ///< successful wire registrations
  std::uint64_t registrations_failed = 0;   ///< rejected or failed registrations
  std::uint64_t deadline_exceeded = 0;      ///< batches answered DEADLINE_EXCEEDED
  std::uint64_t connections_evicted = 0;    ///< idle / write-stall evictions
};

class Server {
 public:
  /// Binds and listens immediately (throws std::runtime_error on failure);
  /// serving starts when run() is called. `svc` and `oracle` must outlive
  /// the server; the oracle shared_ptr pins the snapshot for its lifetime.
  Server(service::QueryService& svc, std::shared_ptr<const service::Snapshot> oracle,
         ServerOptions opts = {});

  /// Multi-tenant flavour: batches may target any oracle `registry` has
  /// ready (protocol v2), and REGISTER_GRAPH / LIST_ORACLES / UNREGISTER
  /// are served. `oracle` is the HELLO default for v1 clients and may be
  /// null (clients must then name a digest per batch). The registry must
  /// outlive the server — declare it first.
  Server(service::QueryService& svc, std::shared_ptr<const service::Snapshot> oracle,
         registry::OracleRegistry* registry, ServerOptions opts = {});

  /// Calls shutdown() and waits for in-flight batch callbacks to finish
  /// delivering. Destroy only after run() has returned (or was never
  /// called) — the loop must not be executing.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The port actually bound (resolves port 0).
  std::uint16_t port() const { return port_; }

  /// Serves until shutdown() completes a drain: starts loops-1 extra
  /// threads and runs loop 0 on the calling thread, joining the others
  /// before returning.
  void run();

  /// Initiates graceful shutdown from any thread: stop accepting, let
  /// in-flight batches complete and flush, then stop the loop. Idempotent.
  void shutdown();

  ServerStats stats() const;

  /// True on platforms with epoll (the client side works everywhere).
  static bool supported() { return event_loop_supported(); }

 private:
  struct Conn;
  struct LoopShard;
  struct WorkloadReply;

  void on_accept(LoopShard& ls, std::uint32_t events);
  /// Registers an accepted socket with `ls` (its home loop from then on);
  /// runs on ls's loop thread. The handoff path posts into it.
  void adopt_conn(LoopShard& ls, int fd);
  void on_conn_event(const std::shared_ptr<Conn>& conn, std::uint32_t events);
  void on_readable(const std::shared_ptr<Conn>& conn);
  void on_writable(const std::shared_ptr<Conn>& conn);
  /// True while the connection may start another batch (pipelining window
  /// open, output below the high-water mark, not draining).
  bool has_capacity(const Conn& conn) const;
  /// Processes frames already buffered in the decoder as far as
  /// has_capacity allows, then re-syncs the epoll read interest.
  void pump(const std::shared_ptr<Conn>& conn);
  void handle_frame(const std::shared_ptr<Conn>& conn, Frame frame);
  /// `recv_ns` is the obs::now_ns() stamp taken when the frame surfaced on
  /// the loop thread — the zero point of the batch's decode stage.
  void handle_query_batch(const std::shared_ptr<Conn>& conn, QueryBatchFrame qb,
                          std::uint64_t recv_ns);
  void handle_vitality_batch(const std::shared_ptr<Conn>& conn, VitalityBatchFrame fb,
                             std::uint64_t recv_ns);
  void handle_vickrey_batch(const std::shared_ptr<Conn>& conn, VickreyBatchFrame fb,
                            std::uint64_t recv_ns);
  void handle_kfail_batch(const std::shared_ptr<Conn>& conn, KFailBatchFrame fb,
                          std::uint64_t recv_ns);
  /// Answers STATS_REQUEST with a typed dump of the process metrics
  /// registry (counters, gauges, sparse histogram buckets).
  void handle_stats(const std::shared_ptr<Conn>& conn, std::uint64_t request_id);
  /// Starts a trace span for a sampled batch (null when unsampled or no
  /// ring is configured) with the decode stage already stamped.
  std::shared_ptr<obs::TraceSpan> begin_span(std::uint64_t request_id,
                                             std::uint32_t frame_type, std::uint32_t queries,
                                             std::uint64_t recv_ns, std::uint64_t submit_ns);
  /// Resolves a batch's target oracle (frame digest, else the HELLO
  /// default) and reports it via `digest_out`. On failure the reply —
  /// batch ERROR or BUSY — is already sent and nullptr comes back; shared
  /// by every batch opcode.
  std::shared_ptr<const service::Snapshot> resolve_oracle(
      const std::shared_ptr<Conn>& conn, std::uint64_t request_id,
      const std::optional<std::uint64_t>& digest_opt, std::uint64_t* digest_out);
  /// Admits one typed workload batch through the dispatcher with the
  /// standard accounting (conn inflight, destructor gate, registry notes,
  /// BUSY rollback). `start` submits to the service; its completion must
  /// fill `reply` on success before invoking the dispatcher-wrapped
  /// callback.
  /// `submit_ns` is the dispatcher hand-off stamp: queue time runs from it
  /// to the dispatcher invoking `start`, execute from `start` to the service
  /// completion. `span` (may be null) collects the same stamps for tracing.
  void submit_workload(const std::shared_ptr<Conn>& conn, std::uint64_t request_id,
                       std::uint64_t digest, registry::FairDispatcher::StartFn start,
                       std::shared_ptr<WorkloadReply> reply, Deadline deadline,
                       std::uint64_t submit_ns, std::shared_ptr<obs::TraceSpan> span);
  void on_workload_done(const std::shared_ptr<Conn>& conn, std::uint64_t request_id,
                        const std::shared_ptr<WorkloadReply>& reply,
                        std::exception_ptr error,
                        const std::shared_ptr<obs::TraceSpan>& span);
  void handle_register(const std::shared_ptr<Conn>& conn, RegisterGraphFrame reg);
  void handle_list_oracles(const std::shared_ptr<Conn>& conn, std::uint64_t request_id);
  void handle_unregister(const std::shared_ptr<Conn>& conn, const UnregisterFrame& un);
  void on_batch_done(const std::shared_ptr<Conn>& conn, std::uint64_t request_id,
                     service::BatchResult result,
                     const std::shared_ptr<obs::TraceSpan>& span);
  void on_register_done(const std::shared_ptr<Conn>& conn, std::uint64_t request_id,
                        registry::RegisterOutcome outcome);
  /// Answers one batch-level error without touching the connection state.
  void send_batch_error(const std::shared_ptr<Conn>& conn, std::uint64_t request_id,
                        const std::string& message);
  /// Appends bytes to the connection's output queue and flushes what the
  /// socket will take now.
  void send_bytes(const std::shared_ptr<Conn>& conn, std::vector<std::uint8_t> bytes);
  void flush(const std::shared_ptr<Conn>& conn);
  /// Sends a connection-level ERROR frame and closes once it is flushed.
  void fail_conn(const std::shared_ptr<Conn>& conn, const std::string& message);
  void close_conn(const std::shared_ptr<Conn>& conn);
  void update_read_interest(const std::shared_ptr<Conn>& conn);
  void update_epoll(const std::shared_ptr<Conn>& conn);
  /// Close-if-drained check used by the drain path.
  void maybe_finish_conn(const std::shared_ptr<Conn>& conn);
  /// Periodic work: re-arm a paused listener, police the drain deadline,
  /// evict idle / write-stalled connections, poke the registry's timers.
  void on_tick(LoopShard& ls);
  void check_drain_done(LoopShard& ls);
  /// Loop-thread half of shutdown(): close the listener, stop reads,
  /// flush-and-close what is idle.
  void drain_loop(LoopShard& ls);
  std::uint32_t base_events() const;

  service::QueryService& svc_;
  std::shared_ptr<const service::Snapshot> oracle_;
  registry::OracleRegistry* registry_ = nullptr;  ///< optional; not owned
  std::uint64_t default_digest_ = 0;              ///< HELLO oracle; 0 = none
  /// Every batch routes through this WRR gate (even single-oracle servers:
  /// the caps then act as a global inflight bound).
  std::unique_ptr<registry::FairDispatcher> dispatcher_;
  ServerOptions opts_;
  /// One per event loop; unique_ptr keeps addresses stable (Conns point at
  /// their home shard). Sized and wired in the constructor, before any
  /// thread exists.
  std::vector<std::unique_ptr<LoopShard>> loops_;
  /// Accept-hand-off fallback active (no SO_REUSEPORT): only loop 0
  /// listens, and hands sockets off round-robin.
  bool handoff_mode_ = false;
  std::uint16_t port_ = 0;
  std::vector<std::uint8_t> hello_bytes_;  // encoded once, sent per accept

  std::atomic<bool> draining_{false};
  // Written once by the shutdown() call that wins the draining_ CAS,
  // before any loop observes draining_ == true.
  std::chrono::steady_clock::time_point drain_deadline_{};

  // Batches inside the QueryService whose callback has not yet returned;
  // the destructor waits for this to hit zero so no callback can touch a
  // dead server.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::size_t inflight_total_ = 0;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> batches_received_{0};
  std::atomic<std::uint64_t> queries_answered_{0};
  std::atomic<std::uint64_t> vitality_batches_{0};
  std::atomic<std::uint64_t> vickrey_batches_{0};
  std::atomic<std::uint64_t> kfail_batches_{0};
  std::atomic<std::uint64_t> batch_errors_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> replies_dropped_{0};
  std::atomic<std::uint64_t> busy_rejected_{0};
  std::atomic<std::uint64_t> oracles_registered_{0};
  std::atomic<std::uint64_t> registrations_failed_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> connections_evicted_{0};

  // Per-stage latency histograms ("query_latency" in the process registry),
  // recorded for every batch. Raw registry handles — stable for process
  // lifetime, wait-free to record into.
  obs::Histogram* stage_decode_ = nullptr;
  obs::Histogram* stage_queue_ = nullptr;
  obs::Histogram* stage_execute_ = nullptr;
  obs::Histogram* stage_flush_ = nullptr;
  obs::TraceRing* trace_ = nullptr;  ///< opts_.trace_ring; null = no sampling
  // Exports the atomics above plus dispatcher and failpoint counters into
  // the registry. Declared last: destroyed first, so no snapshot can call
  // into a half-destroyed server.
  obs::MetricsRegistry::CollectorHandle collector_;
};

}  // namespace msrp::net
