#include "net/server.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/assert.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"

#if defined(__linux__)
#define MSRP_HAVE_NET_SERVER 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sched.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace msrp::net {

#if MSRP_HAVE_NET_SERVER

/// One event loop plus everything it owns: its listener (every loop has
/// one under SO_REUSEPORT; only loop 0 in hand-off mode), its accepted
/// connections, and its drain progress. All fields are touched exclusively
/// on this shard's loop thread (other threads reach it via loop.post).
struct Server::LoopShard {
  EventLoop loop;
  unsigned index = 0;
  int listen_fd = -1;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  // Listener unwatched after EMFILE/ENFILE; the tick re-arms it.
  bool accept_paused = false;
  bool drain_started = false;
  // Hand-off round-robin cursor (only used by the accepting loop).
  std::size_t next_handoff = 0;
};

/// Per-connection state; touched exclusively on its home loop's thread.
/// Pool callbacks reach a Conn only through the shared_ptr their closure
/// captured via home->loop.post, and a closure arriving after the
/// connection died sees closed == true and drops its reply.
struct Server::Conn {
  int fd = -1;
  LoopShard* home = nullptr;  // the one loop allowed to touch this Conn
  FrameDecoder decoder;
  // Output queue: encoded reply frames in write order; out_off is the
  // partially-written prefix of the front buffer.
  std::deque<std::vector<std::uint8_t>> outq;
  std::size_t out_off = 0;
  std::size_t out_bytes = 0;
  std::size_t inflight = 0;   // batches inside the QueryService
  bool reading = true;        // EPOLLIN currently wanted
  bool want_write = false;    // EPOLLOUT currently wanted
  bool closing = false;       // close as soon as outq flushes
  bool closed = false;
  // Eviction stamps, swept on the loop tick: last bytes read off the
  // socket, and last time queued output made write progress.
  std::chrono::steady_clock::time_point last_read;
  std::chrono::steady_clock::time_point last_write_progress;

  explicit Conn(std::size_t max_frame_bytes) : decoder(max_frame_bytes) {}
};

/// Success reply of one typed workload batch (vitality / Vickrey / k-fail).
/// The typed service callback encodes it on a pool worker — each workload
/// has its own answer frame — and the shared completion path on the loop
/// thread only ships bytes; on error the bytes stay empty and an ERROR
/// frame is sent instead.
struct Server::WorkloadReply {
  std::vector<std::uint8_t> bytes;
  std::size_t answered = 0;  ///< queries answered (stats + registry notes)
};

// A client may vanish with replies still queued; writing then must fail
// with EPIPE, not kill the process with SIGPIPE.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  MSRP_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
             "net server: cannot make socket non-blocking");
}

/// Binds + listens one non-blocking listener. Returns -1 with `why` set on
/// failure (REUSEPORT probing treats that as "fall back", not fatal).
int make_listener(const std::string& bind_addr, std::uint16_t port, bool reuseport,
                  std::string* why) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *why = "socket() failed";
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuseport &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
    *why = "SO_REUSEPORT unavailable";
    ::close(fd);
    return -1;
  }
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    *why = "bad bind address " + bind_addr;
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    *why = std::strerror(errno);
    ::close(fd);
    return -1;
  }
  set_nonblocking(fd);
  return fd;
}

std::uint16_t bound_port(int fd) {
  ::sockaddr_in addr{};
  ::socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<::sockaddr*>(&addr), &len);
  return ntohs(addr.sin_port);
}

void pin_loop_thread(unsigned slot) {
  unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) ncpu = 1;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(slot % ncpu, &set);
  ::sched_setaffinity(0, sizeof(set), &set);
}

}  // namespace

Server::Server(service::QueryService& svc, std::shared_ptr<const service::Snapshot> oracle,
               ServerOptions opts)
    : Server(svc, std::move(oracle), nullptr, std::move(opts)) {}

Server::Server(service::QueryService& svc, std::shared_ptr<const service::Snapshot> oracle,
               registry::OracleRegistry* registry, ServerOptions opts)
    : svc_(svc), oracle_(std::move(oracle)), registry_(registry), opts_(std::move(opts)) {
  MSRP_REQUIRE(oracle_ != nullptr || registry_ != nullptr,
               "net server: need an oracle or a registry");

  // Every batch funnels through the fair dispatcher; with a single oracle
  // its caps simply act as a global inflight bound.
  dispatcher_ = std::make_unique<registry::FairDispatcher>(
      [this](std::shared_ptr<const service::Snapshot> o, std::vector<service::Query> q,
             service::BatchCallback done, Deadline deadline) {
        svc_.submit_batch(std::move(o), std::move(q), std::move(done), deadline);
      },
      opts_.dispatch);

  // Per-stage latency histograms plus the registry export of everything the
  // server already counts. The histogram handles are process-global, so
  // several servers in one process (tests) merge into the same series.
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::instance();
  stage_decode_ = metrics.histogram("query_latency", "decode");
  stage_queue_ = metrics.histogram("query_latency", "queue");
  stage_execute_ = metrics.histogram("query_latency", "execute");
  stage_flush_ = metrics.histogram("query_latency", "flush");
  trace_ = opts_.trace_ring;
  collector_ = metrics.register_collector([this](obs::MetricsSnapshot& out) {
    const auto counter = [&out](const char* name, std::uint64_t v) {
      out.counters.push_back({name, v});
    };
    counter("server.connections_accepted",
            connections_accepted_.load(std::memory_order_relaxed));
    counter("server.connections_closed", connections_closed_.load(std::memory_order_relaxed));
    counter("server.batches_received", batches_received_.load(std::memory_order_relaxed));
    counter("server.queries_answered", queries_answered_.load(std::memory_order_relaxed));
    counter("server.vitality_batches", vitality_batches_.load(std::memory_order_relaxed));
    counter("server.vickrey_batches", vickrey_batches_.load(std::memory_order_relaxed));
    counter("server.kfail_batches", kfail_batches_.load(std::memory_order_relaxed));
    counter("server.batch_errors", batch_errors_.load(std::memory_order_relaxed));
    counter("server.protocol_errors", protocol_errors_.load(std::memory_order_relaxed));
    counter("server.replies_dropped", replies_dropped_.load(std::memory_order_relaxed));
    counter("server.busy_rejected", busy_rejected_.load(std::memory_order_relaxed));
    counter("server.oracles_registered",
            oracles_registered_.load(std::memory_order_relaxed));
    counter("server.registrations_failed",
            registrations_failed_.load(std::memory_order_relaxed));
    counter("server.deadline_exceeded", deadline_exceeded_.load(std::memory_order_relaxed));
    counter("server.connections_evicted",
            connections_evicted_.load(std::memory_order_relaxed));
    out.gauges.push_back({"dispatch.inflight_batches",
                          static_cast<std::int64_t>(dispatcher_->inflight_batches())});
    out.gauges.push_back({"dispatch.queued_batches",
                          static_cast<std::int64_t>(dispatcher_->queued_batches())});
    counter("dispatch.busy_rejections", dispatcher_->busy_rejections());
    counter("dispatch.dispatched_total", dispatcher_->dispatched_total());
    counter("dispatch.deadline_expirations", dispatcher_->deadline_expirations());
    for (const fail::SiteStats& s : fail::all_sites()) {
      out.counters.push_back({std::string("failpoint.") + s.name + ".hits", s.hits});
      out.counters.push_back({std::string("failpoint.") + s.name + ".fires", s.fires});
    }
  });

  HelloInfo hello;
  if (registry_ != nullptr) hello.flags |= kHelloRegistryEnabled;
  if (oracle_ != nullptr) {
    default_digest_ = oracle_->content_digest();
    // The default oracle is a first-class tenant: v2 clients can LIST it,
    // target it by digest, and its batch stats are tracked like any other.
    if (registry_ != nullptr) registry_->adopt(oracle_);
    hello.oracle_digest = default_digest_;
    hello.num_vertices = oracle_->num_vertices();
    hello.num_edges = oracle_->num_edges();
    hello.sources = oracle_->sources();
  }
  append_hello(hello_bytes_, hello);

  const unsigned nloops = std::max(1u, opts_.loops);
  loops_.reserve(nloops);
  for (unsigned i = 0; i < nloops; ++i) {
    loops_.push_back(std::make_unique<LoopShard>());
    loops_[i]->index = i;
  }

  // One SO_REUSEPORT listener per loop on the shared port (the kernel then
  // spreads accepts across them); any REUSEPORT failure falls back to a
  // single plain listener on loop 0 with round-robin hand-off.
  std::string why;
  if (nloops > 1 && !opts_.force_accept_handoff) {
    const int fd0 = make_listener(opts_.bind_addr, opts_.port, /*reuseport=*/true, &why);
    if (fd0 >= 0) {
      loops_[0]->listen_fd = fd0;
      port_ = bound_port(fd0);  // resolves port 0 for the remaining binds
      bool ok = true;
      for (unsigned i = 1; i < nloops; ++i) {
        const int fd = make_listener(opts_.bind_addr, port_, /*reuseport=*/true, &why);
        if (fd < 0) {
          ok = false;
          break;
        }
        loops_[i]->listen_fd = fd;
      }
      if (!ok) {
        for (auto& ls : loops_) {
          if (ls->listen_fd >= 0) ::close(ls->listen_fd);
          ls->listen_fd = -1;
        }
        port_ = 0;
      }
    }
  }
  if (loops_[0]->listen_fd < 0) {
    handoff_mode_ = nloops > 1;
    const int fd = make_listener(opts_.bind_addr, opts_.port, /*reuseport=*/false, &why);
    if (fd < 0) {
      throw std::runtime_error("net server: cannot listen on " + opts_.bind_addr + ":" +
                               std::to_string(opts_.port) + " (" + why + ")");
    }
    loops_[0]->listen_fd = fd;
    port_ = bound_port(fd);
  }
  for (auto& lsp : loops_) {
    LoopShard* ls = lsp.get();
    if (ls->listen_fd < 0) continue;
    ls->loop.add_fd(ls->listen_fd, EPOLLIN,
                    [this, ls](std::uint32_t ev) { on_accept(*ls, ev); });
  }
}

Server::~Server() {
  shutdown();
  // No callback may outlive the server: each submit_batch callback posts
  // its reply and only then decrements the count, so once it reaches zero
  // nothing can touch any loop or the counters again.
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return inflight_total_ == 0; });
  for (auto& ls : loops_) {
    if (ls->listen_fd >= 0) ::close(ls->listen_fd);
    for (auto& [fd, conn] : ls->conns) {
      if (!conn->closed) ::close(conn->fd);
    }
  }
}

std::uint32_t Server::base_events() const {
  return opts_.edge_triggered ? EPOLLET : 0u;
}

void Server::run() {
  // Loops 1..N-1 on their own threads, loop 0 on the caller; every loop
  // stops itself once its own shard finishes draining.
  std::vector<std::thread> threads;
  threads.reserve(loops_.size() - 1);
  for (std::size_t i = 1; i < loops_.size(); ++i) {
    LoopShard* ls = loops_[i].get();
    const bool pin = opts_.pin_loops;
    threads.emplace_back([this, ls, pin] {
      if (pin) pin_loop_thread(ls->index);
      ls->loop.set_tick([this, ls] { on_tick(*ls); }, 100);
      ls->loop.run();
    });
  }
  if (opts_.pin_loops) pin_loop_thread(0);
  loops_[0]->loop.set_tick([this] { on_tick(*loops_[0]); }, 100);
  loops_[0]->loop.run();
  for (auto& t : threads) t.join();
}

void Server::shutdown() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
    return;  // idempotent: the winner already posted the drain everywhere
  }
  // Written before any loop can observe draining_ == true via its posted
  // closure below.
  drain_deadline_ =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(opts_.drain_timeout_ms);
  for (auto& lsp : loops_) {
    LoopShard* ls = lsp.get();
    ls->loop.post([this, ls] { drain_loop(*ls); });
  }
}

void Server::drain_loop(LoopShard& ls) {
  if (ls.drain_started) return;
  ls.drain_started = true;
  if (ls.listen_fd >= 0) {
    ls.loop.remove_fd(ls.listen_fd);
    ::close(ls.listen_fd);
    ls.listen_fd = -1;
  }
  // Stop reading new requests everywhere; flush + close what is idle.
  // Collect first: maybe_finish_conn mutates conns.
  std::vector<std::shared_ptr<Conn>> all;
  all.reserve(ls.conns.size());
  for (auto& [fd, conn] : ls.conns) all.push_back(conn);
  for (auto& conn : all) {
    if (conn->reading) {
      conn->reading = false;
      update_epoll(conn);
    }
    maybe_finish_conn(conn);
  }
  check_drain_done(ls);  // stops this loop once its last connection drains
}

void Server::on_tick(LoopShard& ls) {
  if (ls.accept_paused && !draining_.load(std::memory_order_acquire) &&
      ls.listen_fd >= 0) {
    ls.loop.modify_fd(ls.listen_fd, EPOLLIN);  // retry accepting after fd pressure
    ls.accept_paused = false;
  }
  // Registry timers (build timeouts, FAILED-tenant reaping) ride the tick
  // of one loop so the sweep is not multiplied by the loop count.
  if (registry_ != nullptr && ls.index == 0) registry_->poke();
  const bool idle_on = opts_.idle_timeout_ms > 0;
  const bool stall_on = opts_.write_stall_timeout_ms > 0;
  if ((idle_on || stall_on) && !draining_.load(std::memory_order_acquire)) {
    const auto now = std::chrono::steady_clock::now();
    // Collect first: close_conn mutates ls.conns.
    std::vector<std::shared_ptr<Conn>> victims;
    for (auto& [fd, conn] : ls.conns) {
      if (conn->closed) continue;
      const bool idle =
          idle_on && conn->inflight == 0 && conn->outq.empty() &&
          now - conn->last_read >= std::chrono::milliseconds(opts_.idle_timeout_ms);
      const bool stalled =
          stall_on && !conn->outq.empty() &&
          now - conn->last_write_progress >=
              std::chrono::milliseconds(opts_.write_stall_timeout_ms);
      if (idle || stalled) victims.push_back(conn);
    }
    for (auto& conn : victims) {
      connections_evicted_.fetch_add(1, std::memory_order_relaxed);
      close_conn(conn);
    }
  }
  // shutdown() posts drain_loop, but a loop that was already stopped when
  // shutdown ran (or raced the post) still drains off its tick.
  if (draining_.load(std::memory_order_acquire) && !ls.drain_started) drain_loop(ls);
  check_drain_done(ls);
}

void Server::check_drain_done(LoopShard& ls) {
  if (!draining_.load(std::memory_order_acquire) || !ls.drain_started) return;
  if (!ls.conns.empty() && std::chrono::steady_clock::now() >= drain_deadline_) {
    std::vector<std::shared_ptr<Conn>> all;
    all.reserve(ls.conns.size());
    for (auto& [fd, conn] : ls.conns) all.push_back(conn);
    for (auto& conn : all) close_conn(conn);  // force: replies are lost
  }
  if (ls.conns.empty()) ls.loop.stop();
}

void Server::on_accept(LoopShard& ls, std::uint32_t) {
  for (;;) {
    const int fd = ::accept4(ls.listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors with the backlog still pending: a level-
        // triggered listener would re-fire every epoll_wait and peg the
        // loop. Stop watching it; the tick re-arms it (~100 ms) and we
        // retry once something has closed.
        ls.loop.modify_fd(ls.listen_fd, 0);
        ls.accept_paused = true;
        return;
      }
      return;  // transient accept failures (ECONNABORTED, ...) — keep serving
    }
    if (handoff_mode_) {
      // Single listener: spread connections across loops round-robin. The
      // target loop adopts the socket on its own thread, so per-loop
      // connection ownership holds in this mode too.
      LoopShard* target = loops_[ls.next_handoff++ % loops_.size()].get();
      if (target != &ls) {
        target->loop.post([this, target, fd] { adopt_conn(*target, fd); });
        continue;
      }
    }
    adopt_conn(ls, fd);
  }
}

void Server::adopt_conn(LoopShard& ls, int fd) {
  if (draining_.load(std::memory_order_acquire)) {
    // A handed-off socket can arrive after this loop started draining;
    // nothing may adopt it now.
    ::close(fd);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  auto conn = std::make_shared<Conn>(opts_.max_frame_bytes);
  conn->fd = fd;
  conn->home = &ls;
  conn->last_read = conn->last_write_progress = std::chrono::steady_clock::now();
  ls.conns.emplace(fd, conn);
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  ls.loop.add_fd(fd, EPOLLIN | base_events(),
                 [this, conn](std::uint32_t ev) { on_conn_event(conn, ev); });
  send_bytes(conn, hello_bytes_);  // copy; the template outlives everything
}

void Server::on_conn_event(const std::shared_ptr<Conn>& conn, std::uint32_t events) {
  if (conn->closed) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(conn);
    return;
  }
  if (events & EPOLLOUT) on_writable(conn);
  if (conn->closed) return;
  if (events & EPOLLIN) on_readable(conn);
}

void Server::on_readable(const std::shared_ptr<Conn>& conn) {
  std::uint8_t buf[65536];
  for (;;) {
    if (!conn->reading) return;  // backpressure kicked in mid-drain
    const ::ssize_t n = ::read(conn->fd, buf, sizeof buf);
    if (n == 0) {
      // Peer closed. Any batches still in flight will complete and find
      // closed == true; their replies are dropped, nothing blocks.
      close_conn(conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(conn);
      return;
    }
    conn->last_read = std::chrono::steady_clock::now();
    conn->decoder.feed({buf, static_cast<std::size_t>(n)});
    pump(conn);
    if (conn->closed || conn->closing) return;
  }
  pump(conn);
}

bool Server::has_capacity(const Conn& conn) const {
  return !draining_.load(std::memory_order_acquire) &&
         conn.inflight < opts_.max_inflight_batches &&
         conn.out_bytes <= opts_.output_high_water;
}

void Server::pump(const std::shared_ptr<Conn>& conn) {
  // Process frames the decoder already holds, as far as the pipelining
  // window and output backpressure allow. Called whenever capacity may
  // have been created (bytes read, a batch completed, output drained) —
  // a client that sent its whole pipeline in one burst makes progress
  // even when no new bytes ever arrive.
  try {
    while (!conn->closed && !conn->closing && has_capacity(*conn)) {
      auto frame = conn->decoder.next();
      if (!frame) break;
      handle_frame(conn, std::move(*frame));
    }
  } catch (const ProtocolError& ex) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    fail_conn(conn, ex.what());
    return;
  }
  update_read_interest(conn);
}

void Server::handle_frame(const std::shared_ptr<Conn>& conn, Frame frame) {
  // Decode errors and a reserved request id are connection-fatal; anything
  // per-request is answered on the request's own id and the connection
  // keeps serving.
  // One stamp per frame, taken before any payload decode: the zero point
  // of the decode stage for every batch opcode.
  const std::uint64_t recv_ns = obs::now_ns();
  try {
    switch (frame.type) {
      case FrameType::kQueryBatch:
        handle_query_batch(conn, decode_query_batch(frame.payload), recv_ns);
        return;
      case FrameType::kVitalityBatch:
        handle_vitality_batch(conn, decode_vitality_batch(frame.payload), recv_ns);
        return;
      case FrameType::kVickreyBatch:
        handle_vickrey_batch(conn, decode_vickrey_batch(frame.payload), recv_ns);
        return;
      case FrameType::kKFailBatch:
        handle_kfail_batch(conn, decode_kfail_batch(frame.payload), recv_ns);
        return;
      case FrameType::kRegisterGraph:
        handle_register(conn, decode_register_graph(frame.payload));
        return;
      case FrameType::kListOracles:
        handle_list_oracles(conn, decode_list_oracles(frame.payload));
        return;
      case FrameType::kUnregister:
        handle_unregister(conn, decode_unregister(frame.payload));
        return;
      case FrameType::kStatsRequest:
        handle_stats(conn, decode_stats_request(frame.payload));
        return;
      default:
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        fail_conn(conn, "unexpected frame type " +
                            std::to_string(static_cast<std::uint32_t>(frame.type)) +
                            " (client may only send QUERY_BATCH, VITALITY_BATCH, "
                            "VICKREY_BATCH, KFAIL_BATCH, REGISTER_GRAPH, LIST_ORACLES, "
                            "UNREGISTER or STATS_REQUEST)");
        return;
    }
  } catch (const ProtocolError& ex) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    fail_conn(conn, ex.what());
  }
}

void Server::send_batch_error(const std::shared_ptr<Conn>& conn, std::uint64_t request_id,
                              const std::string& message) {
  std::vector<std::uint8_t> reply;
  append_error(reply, request_id, message);
  send_bytes(conn, std::move(reply));
}

namespace {

std::string hex_digest(std::uint64_t digest) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace

std::shared_ptr<const service::Snapshot> Server::resolve_oracle(
    const std::shared_ptr<Conn>& conn, std::uint64_t request_id,
    const std::optional<std::uint64_t>& digest_opt, std::uint64_t* digest_out) {
  // Resolve the target oracle: the frame's digest (v2), else the HELLO
  // default. Unknown digests are batch errors; a digest still building is
  // BUSY (retryable) — the registration will land, the batch's data won't
  // change.
  const std::uint64_t digest = digest_opt ? *digest_opt : default_digest_;
  *digest_out = digest;
  if (registry_ != nullptr) {
    if (digest == 0) {
      batch_errors_.fetch_add(1, std::memory_order_relaxed);
      send_batch_error(conn, request_id,
                       "this server has no default oracle; send a target digest "
                       "(REGISTER_GRAPH first, or LIST_ORACLES)");
      return nullptr;
    }
    std::shared_ptr<const service::Snapshot> oracle = registry_->resolve(digest);
    if (oracle == nullptr) {
      const registry::OracleState st = registry_->state(digest);
      if (st == registry::OracleState::kRegistering ||
          st == registry::OracleState::kBuilding) {
        busy_rejected_.fetch_add(1, std::memory_order_relaxed);
        std::vector<std::uint8_t> reply;
        append_busy(reply, request_id,
                    "oracle " + hex_digest(digest) + " is still building; retry");
        send_bytes(conn, std::move(reply));
        return nullptr;
      }
      batch_errors_.fetch_add(1, std::memory_order_relaxed);
      if (st == registry::OracleState::kFailed) {
        send_batch_error(conn, request_id,
                         "oracle " + hex_digest(digest) +
                             " failed to build (LIST_ORACLES carries the reason)");
        return nullptr;
      }
      send_batch_error(conn, request_id, "unknown oracle digest " + hex_digest(digest));
      return nullptr;
    }
    return oracle;
  }
  if (digest_opt && *digest_opt != default_digest_) {
    batch_errors_.fetch_add(1, std::memory_order_relaxed);
    send_batch_error(conn, request_id,
                     "unknown oracle digest " + hex_digest(digest) +
                         " (single-oracle server)");
    return nullptr;
  }
  return oracle_;
}

void Server::handle_query_batch(const std::shared_ptr<Conn>& conn, QueryBatchFrame qb,
                                std::uint64_t recv_ns) {
  if (qb.request_id == 0) {
    // Id 0 is reserved for connection-level errors; echoing it back for a
    // failed batch would read as "connection dead" to a conformant client.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    fail_conn(conn, "request id 0 is reserved (batch ids must be nonzero)");
    return;
  }
  batches_received_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = qb.request_id;
  // The relative budget on the wire becomes an absolute instant here, at
  // decode — every later stage (dispatcher queue, service, shard router)
  // compares against this same instant.
  const Deadline deadline =
      qb.deadline_ms ? deadline_after_ms(*qb.deadline_ms) : kNoDeadline;

  std::uint64_t digest = 0;
  std::shared_ptr<const service::Snapshot> oracle =
      resolve_oracle(conn, id, qb.digest, &digest);
  if (oracle == nullptr) return;

  // Decode stage ends here: frame parsed, oracle resolved, dispatcher next.
  const std::uint64_t submit_ns = obs::now_ns();
  stage_decode_->record(submit_ns - recv_ns);
  std::shared_ptr<obs::TraceSpan> span =
      begin_span(id, static_cast<std::uint32_t>(FrameType::kQueryBatch),
                 static_cast<std::uint32_t>(qb.queries.size()), recv_ns, submit_ns);

  ++conn->inflight;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_total_;
  }
  if (registry_ != nullptr) registry_->note_batch(digest);
  // The callback fires on a pool worker: registry bookkeeping first, then
  // hop back to the loop thread with the result, then release the
  // destructor's inflight gate. Order matters twice over — post first,
  // decrement after, so a destructor waiting on the gate cannot miss a
  // reply still being posted; and notify WHILE holding the mutex, so the
  // destructor cannot wake, see zero, and destroy the condition variable
  // out from under notify_all. (The registry outlives the server by the
  // same gate: note_complete runs before the decrement.)
  const registry::DispatchVerdict verdict = dispatcher_->submit_task(
      digest,
      [this, oracle = std::move(oracle), queries = std::move(qb.queries), submit_ns,
       span](service::BatchCallback cb, Deadline dl) mutable {
        // Queue stage ends when the dispatcher grants the inflight slot;
        // execute runs from here to the service completion callback.
        const std::uint64_t start_ns = obs::now_ns();
        stage_queue_->record(start_ns - submit_ns);
        if (span != nullptr) span->queue_ns = start_ns - submit_ns;
        svc_.submit_batch(
            std::move(oracle), std::move(queries),
            [this, cb = std::move(cb), start_ns, span](service::BatchResult r) {
              const std::uint64_t done_ns = obs::now_ns();
              stage_execute_->record(done_ns - start_ns);
              if (span != nullptr) span->execute_ns = done_ns - start_ns;
              cb(std::move(r));
            },
            dl);
      },
      [this, conn, id, digest, span](service::BatchResult result) {
        if (registry_ != nullptr) registry_->note_complete(digest, result.answers.size());
        conn->home->loop.post([this, conn, id, span, result = std::move(result)]() mutable {
          on_batch_done(conn, id, std::move(result), span);
        });
        std::lock_guard<std::mutex> lock(inflight_mu_);
        --inflight_total_;
        inflight_cv_.notify_all();
      },
      /*weight=*/1, deadline);
  if (verdict == registry::DispatchVerdict::kBusy) {
    // Rejected without queueing: the callback will never fire, so roll
    // every piece of accounting back and tell the client to retry.
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_total_;
    }
    --conn->inflight;
    if (registry_ != nullptr) registry_->note_busy(digest);
    busy_rejected_.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::uint8_t> reply;
    append_busy(reply, id,
                "server busy: tenant " + hex_digest(digest) + " queue is full; retry");
    send_bytes(conn, std::move(reply));
  }
}

void Server::submit_workload(const std::shared_ptr<Conn>& conn, std::uint64_t request_id,
                             std::uint64_t digest, registry::FairDispatcher::StartFn start,
                             std::shared_ptr<WorkloadReply> reply, Deadline deadline,
                             std::uint64_t submit_ns, std::shared_ptr<obs::TraceSpan> span) {
  // Same admission discipline as point-query batches: the typed batch takes
  // a dispatcher slot under the SAME tenant digest, so a vitality flood
  // fights a point-query flood for exactly one WRR share.
  ++conn->inflight;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_total_;
  }
  if (registry_ != nullptr) registry_->note_batch(digest);
  // Wrap the typed start so queue and execute are stamped exactly like
  // point batches: queue ends when the dispatcher invokes the wrapper,
  // execute spans the service round trip inside `start`.
  registry::FairDispatcher::StartFn timed_start =
      [this, start = std::move(start), submit_ns, span](service::BatchCallback cb,
                                                        Deadline dl) {
        const std::uint64_t start_ns = obs::now_ns();
        stage_queue_->record(start_ns - submit_ns);
        if (span != nullptr) span->queue_ns = start_ns - submit_ns;
        start(
            [this, cb = std::move(cb), start_ns, span](service::BatchResult r) {
              const std::uint64_t done_ns = obs::now_ns();
              stage_execute_->record(done_ns - start_ns);
              if (span != nullptr) span->execute_ns = done_ns - start_ns;
              cb(std::move(r));
            },
            dl);
      };
  const registry::DispatchVerdict verdict = dispatcher_->submit_task(
      digest, std::move(timed_start),
      [this, conn, request_id, digest, reply, span](service::BatchResult result) {
        // The typed callback inside `start` already encoded the reply (or
        // left it empty and set the error); this wrapper is the shared
        // delivery tail — post to the home loop, then release the gate.
        if (registry_ != nullptr) registry_->note_complete(digest, reply->answered);
        conn->home->loop.post([this, conn, request_id, reply, span,
                               error = result.error]() mutable {
          on_workload_done(conn, request_id, reply, std::move(error), span);
        });
        std::lock_guard<std::mutex> lock(inflight_mu_);
        --inflight_total_;
        inflight_cv_.notify_all();
      },
      /*weight=*/1, deadline);
  if (verdict == registry::DispatchVerdict::kBusy) {
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_total_;
    }
    --conn->inflight;
    if (registry_ != nullptr) registry_->note_busy(digest);
    busy_rejected_.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::uint8_t> busy;
    append_busy(busy, request_id,
                "server busy: tenant " + hex_digest(digest) + " queue is full; retry");
    send_bytes(conn, std::move(busy));
  }
}

void Server::on_workload_done(const std::shared_ptr<Conn>& conn, std::uint64_t request_id,
                              const std::shared_ptr<WorkloadReply>& reply,
                              std::exception_ptr error,
                              const std::shared_ptr<obs::TraceSpan>& span) {
  if (conn->closed || conn->closing) {
    replies_dropped_.fetch_add(1, std::memory_order_relaxed);
    if (!conn->closed) --conn->inflight;
    return;
  }
  MSRP_CHECK(conn->inflight > 0, "net server: completion without an in-flight batch");
  --conn->inflight;
  // Flush stage: completion back on the loop thread -> reply bytes pushed
  // into the connection's send path.
  const std::uint64_t flush_start_ns = obs::now_ns();
  const bool failed = error != nullptr;
  std::vector<std::uint8_t> bytes;
  if (failed) {
    std::string message = "batch failed";
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& ex) {
      message = ex.what();
    } catch (...) {
    }
    if (is_deadline_exceeded_message(message)) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    } else {
      batch_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    append_error(bytes, request_id, message);
  } else {
    queries_answered_.fetch_add(reply->answered, std::memory_order_relaxed);
    bytes = std::move(reply->bytes);
  }
  send_bytes(conn, std::move(bytes));
  const std::uint64_t flush_ns = obs::now_ns() - flush_start_ns;
  stage_flush_->record(flush_ns);
  if (span != nullptr) {
    span->flush_ns = flush_ns;
    span->error = failed;
    trace_->publish(*span);
  }
  if (conn->closed) return;
  pump(conn);
  maybe_finish_conn(conn);
}

void Server::handle_vitality_batch(const std::shared_ptr<Conn>& conn, VitalityBatchFrame fb,
                                   std::uint64_t recv_ns) {
  if (fb.request_id == 0) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    fail_conn(conn, "request id 0 is reserved (batch ids must be nonzero)");
    return;
  }
  batches_received_.fetch_add(1, std::memory_order_relaxed);
  vitality_batches_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = fb.request_id;
  const Deadline deadline =
      fb.deadline_ms ? deadline_after_ms(*fb.deadline_ms) : kNoDeadline;
  std::uint64_t digest = 0;
  std::shared_ptr<const service::Snapshot> oracle =
      resolve_oracle(conn, id, fb.digest, &digest);
  if (oracle == nullptr) return;
  auto reply = std::make_shared<WorkloadReply>();
  auto queries =
      std::make_shared<std::vector<service::VitalityQuery>>(std::move(fb.queries));
  const std::uint64_t submit_ns = obs::now_ns();
  stage_decode_->record(submit_ns - recv_ns);
  std::shared_ptr<obs::TraceSpan> span =
      begin_span(id, static_cast<std::uint32_t>(FrameType::kVitalityBatch),
                 static_cast<std::uint32_t>(queries->size()), recv_ns, submit_ns);
  submit_workload(
      conn, id, digest,
      [this, oracle = std::move(oracle), queries, id,
       reply](service::BatchCallback cb, Deadline dl) {
        // `dl` is the same absolute instant decoded above — the dispatcher
        // hands it back so queue time burns the batch's own budget.
        svc_.submit_vitality(
            oracle, std::move(*queries),
            [cb = std::move(cb), id, reply](service::VitalityBatchResult r) {
              if (r.error == nullptr) {
                reply->answered = r.results.size();
                append_vitality_answer(reply->bytes, id, r.results);
              }
              cb(service::BatchResult{{}, std::move(r.oracle), r.error});
            },
            dl);
      },
      reply, deadline, submit_ns, span);
}

void Server::handle_vickrey_batch(const std::shared_ptr<Conn>& conn, VickreyBatchFrame fb,
                                  std::uint64_t recv_ns) {
  if (fb.request_id == 0) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    fail_conn(conn, "request id 0 is reserved (batch ids must be nonzero)");
    return;
  }
  batches_received_.fetch_add(1, std::memory_order_relaxed);
  vickrey_batches_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = fb.request_id;
  const Deadline deadline =
      fb.deadline_ms ? deadline_after_ms(*fb.deadline_ms) : kNoDeadline;
  std::uint64_t digest = 0;
  std::shared_ptr<const service::Snapshot> oracle =
      resolve_oracle(conn, id, fb.digest, &digest);
  if (oracle == nullptr) return;
  auto reply = std::make_shared<WorkloadReply>();
  auto queries =
      std::make_shared<std::vector<service::VickreyQuery>>(std::move(fb.queries));
  const std::uint64_t submit_ns = obs::now_ns();
  stage_decode_->record(submit_ns - recv_ns);
  std::shared_ptr<obs::TraceSpan> span =
      begin_span(id, static_cast<std::uint32_t>(FrameType::kVickreyBatch),
                 static_cast<std::uint32_t>(queries->size()), recv_ns, submit_ns);
  submit_workload(
      conn, id, digest,
      [this, oracle = std::move(oracle), queries, id,
       reply](service::BatchCallback cb, Deadline dl) {
        svc_.submit_vickrey(
            oracle, std::move(*queries),
            [cb = std::move(cb), id, reply](service::VickreyBatchResult r) {
              if (r.error == nullptr) {
                reply->answered = r.results.size();
                append_vickrey_answer(reply->bytes, id, r.results);
              }
              cb(service::BatchResult{{}, std::move(r.oracle), r.error});
            },
            dl);
      },
      reply, deadline, submit_ns, span);
}

void Server::handle_kfail_batch(const std::shared_ptr<Conn>& conn, KFailBatchFrame fb,
                                std::uint64_t recv_ns) {
  if (fb.request_id == 0) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    fail_conn(conn, "request id 0 is reserved (batch ids must be nonzero)");
    return;
  }
  batches_received_.fetch_add(1, std::memory_order_relaxed);
  kfail_batches_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = fb.request_id;
  const Deadline deadline =
      fb.deadline_ms ? deadline_after_ms(*fb.deadline_ms) : kNoDeadline;
  std::uint64_t digest = 0;
  std::shared_ptr<const service::Snapshot> oracle =
      resolve_oracle(conn, id, fb.digest, &digest);
  if (oracle == nullptr) return;
  auto reply = std::make_shared<WorkloadReply>();
  auto queries = std::make_shared<std::vector<service::KFailQuery>>(std::move(fb.queries));
  const std::uint64_t submit_ns = obs::now_ns();
  stage_decode_->record(submit_ns - recv_ns);
  std::shared_ptr<obs::TraceSpan> span =
      begin_span(id, static_cast<std::uint32_t>(FrameType::kKFailBatch),
                 static_cast<std::uint32_t>(queries->size()), recv_ns, submit_ns);
  submit_workload(
      conn, id, digest,
      [this, oracle = std::move(oracle), queries, id,
       reply](service::BatchCallback cb, Deadline dl) {
        svc_.submit_kfail(
            oracle, std::move(*queries),
            [cb = std::move(cb), id, reply](service::BatchResult r) {
              if (r.error == nullptr) {
                reply->answered = r.answers.size();
                append_kfail_answer(reply->bytes, id, r.answers);
              }
              cb(service::BatchResult{{}, std::move(r.oracle), r.error});
            },
            dl);
      },
      reply, deadline, submit_ns, span);
}

void Server::handle_register(const std::shared_ptr<Conn>& conn, RegisterGraphFrame reg) {
  if (reg.request_id == 0) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    fail_conn(conn, "request id 0 is reserved (request ids must be nonzero)");
    return;
  }
  const std::uint64_t id = reg.request_id;
  if (registry_ == nullptr) {
    registrations_failed_.fetch_add(1, std::memory_order_relaxed);
    send_batch_error(conn, id,
                     "registry is disabled on this server (start with --registry)");
    return;
  }
  ++conn->inflight;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_total_;
  }
  // Same delivery discipline as batches: the outcome posts to the loop
  // thread, then the gate releases.
  auto done = [this, conn, id](registry::RegisterOutcome outcome) {
    conn->home->loop.post([this, conn, id, outcome = std::move(outcome)]() mutable {
      on_register_done(conn, id, std::move(outcome));
    });
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --inflight_total_;
    inflight_cv_.notify_all();
  };
  bool admitted = false;
  std::string reason;
  if (reg.mode == RegisterMode::kEdgeList) {
    Config cfg;
    cfg.seed = reg.seed;
    admitted = registry_->register_graph(reg.num_vertices, std::move(reg.edges),
                                         std::move(reg.sources), cfg, done, &reason);
  } else {
    admitted = registry_->register_snapshot(std::move(reg.snapshot_path), done, &reason);
  }
  if (!admitted) {
    // Admission rejected synchronously: `done` never runs; roll back.
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_total_;
    }
    --conn->inflight;
    registrations_failed_.fetch_add(1, std::memory_order_relaxed);
    send_batch_error(conn, id, reason);
  }
}

void Server::on_register_done(const std::shared_ptr<Conn>& conn, std::uint64_t request_id,
                              registry::RegisterOutcome outcome) {
  if (outcome.state == registry::OracleState::kReady) {
    oracles_registered_.fetch_add(1, std::memory_order_relaxed);
  } else {
    registrations_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (conn->closed || conn->closing) {
    replies_dropped_.fetch_add(1, std::memory_order_relaxed);
    if (!conn->closed) --conn->inflight;
    return;
  }
  MSRP_CHECK(conn->inflight > 0, "net server: registration done without an in-flight slot");
  --conn->inflight;
  std::vector<std::uint8_t> reply;
  if (outcome.state == registry::OracleState::kReady) {
    RegisterAckFrame ack;
    ack.request_id = request_id;
    ack.digest = outcome.digest;
    ack.state = outcome.state;
    ack.num_vertices = outcome.oracle->num_vertices();
    ack.num_edges = outcome.oracle->num_edges();
    ack.sources = outcome.oracle->sources();
    append_register_ack(reply, ack);
  } else {
    append_error(reply, request_id, outcome.error);
  }
  send_bytes(conn, std::move(reply));
  if (conn->closed) return;
  pump(conn);
  maybe_finish_conn(conn);
}

void Server::handle_list_oracles(const std::shared_ptr<Conn>& conn,
                                 std::uint64_t request_id) {
  if (request_id == 0) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    fail_conn(conn, "request id 0 is reserved (request ids must be nonzero)");
    return;
  }
  OracleListFrame reply;
  reply.request_id = request_id;
  if (registry_ != nullptr) {
    for (const registry::OracleInfo& info : registry_->list()) {
      OracleListEntry e;
      e.digest = info.digest;
      e.state = info.state;
      e.num_vertices = info.num_vertices;
      e.num_edges = info.num_edges;
      e.sources = info.sources;
      e.inflight_batches = info.inflight_batches;
      e.queries_answered = info.queries_answered;
      e.footprint_bytes = info.footprint_bytes;
      e.error = info.error;
      reply.oracles.push_back(std::move(e));
    }
  } else {
    OracleListEntry e;
    e.digest = default_digest_;
    e.state = registry::OracleState::kReady;
    e.num_vertices = oracle_->num_vertices();
    e.num_edges = oracle_->num_edges();
    e.sources = oracle_->sources();
    e.queries_answered = svc_.queries_served();
    e.footprint_bytes = oracle_->footprint_bytes();
    reply.oracles.push_back(std::move(e));
  }
  std::vector<std::uint8_t> bytes;
  append_oracle_list(bytes, reply);
  send_bytes(conn, std::move(bytes));
}

void Server::handle_unregister(const std::shared_ptr<Conn>& conn, const UnregisterFrame& un) {
  if (un.request_id == 0) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    fail_conn(conn, "request id 0 is reserved (request ids must be nonzero)");
    return;
  }
  if (registry_ == nullptr) {
    send_batch_error(conn, un.request_id,
                     "registry is disabled on this server (start with --registry)");
    return;
  }
  const std::optional<registry::OracleState> result = registry_->unregister(un.digest);
  if (!result) {
    send_batch_error(conn, un.request_id, "unknown oracle digest " + hex_digest(un.digest));
    return;
  }
  if (*result != registry::OracleState::kUnregistered &&
      *result != registry::OracleState::kExpiring) {
    send_batch_error(conn, un.request_id,
                     "oracle " + hex_digest(un.digest) + " is still " +
                         registry::to_string(*result) + "; cannot unregister");
    return;
  }
  // ACK with the resulting state (kUnregistered = gone now, kExpiring =
  // draining its in-flight batches) reusing the REGISTER_ACK shape.
  RegisterAckFrame ack;
  ack.request_id = un.request_id;
  ack.digest = un.digest;
  ack.state = *result;
  std::vector<std::uint8_t> reply;
  append_register_ack(reply, ack);
  send_bytes(conn, std::move(reply));
}

void Server::on_batch_done(const std::shared_ptr<Conn>& conn, std::uint64_t request_id,
                           service::BatchResult result,
                           const std::shared_ptr<obs::TraceSpan>& span) {
  if (conn->closed || conn->closing) {
    // Gone, or already told "fatal error, closing" — nothing may follow a
    // connection-level ERROR on the wire.
    replies_dropped_.fetch_add(1, std::memory_order_relaxed);
    if (!conn->closed) --conn->inflight;
    return;
  }
  MSRP_CHECK(conn->inflight > 0, "net server: completion without an in-flight batch");
  --conn->inflight;
  // Flush stage: completion back on the loop thread -> reply encoded and
  // pushed into the connection's send path.
  const std::uint64_t flush_start_ns = obs::now_ns();
  const bool failed = result.error != nullptr;
  std::vector<std::uint8_t> reply;
  if (failed) {
    std::string message = "batch failed";
    try {
      std::rethrow_exception(result.error);
    } catch (const std::exception& ex) {
      message = ex.what();
    } catch (...) {
    }
    if (is_deadline_exceeded_message(message)) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    } else {
      batch_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    append_error(reply, request_id, message);
  } else {
    queries_answered_.fetch_add(result.answers.size(), std::memory_order_relaxed);
    append_answer_batch(reply, request_id, result.answers);
  }
  send_bytes(conn, std::move(reply));
  const std::uint64_t flush_ns = obs::now_ns() - flush_start_ns;
  stage_flush_->record(flush_ns);
  if (span != nullptr) {
    span->flush_ns = flush_ns;
    span->error = failed;
    trace_->publish(*span);
  }
  if (conn->closed) return;  // send_bytes may close on a write error
  pump(conn);                // the completion freed pipelining capacity
  maybe_finish_conn(conn);
}

void Server::send_bytes(const std::shared_ptr<Conn>& conn, std::vector<std::uint8_t> bytes) {
  // Closing means a connection-level ERROR is the last frame this peer
  // gets; anything queued after it would contradict the protocol.
  if (conn->closed || conn->closing || bytes.empty()) return;
  // A fresh backlog starts its stall clock now, not at the last write of
  // some long-idle exchange.
  if (conn->outq.empty()) conn->last_write_progress = std::chrono::steady_clock::now();
  conn->out_bytes += bytes.size();
  conn->outq.push_back(std::move(bytes));
  flush(conn);
}

void Server::flush(const std::shared_ptr<Conn>& conn) {
  // error action: pretend the socket took nothing this round (a stuck
  // write); the stall-eviction timer is what recovers the connection.
  if (MSRP_FAILPOINT("server.flush")) return;
  while (!conn->outq.empty()) {
    const std::vector<std::uint8_t>& front = conn->outq.front();
    const ::ssize_t n = ::send(conn->fd, front.data() + conn->out_off,
                               front.size() - conn->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn);
      return;
    }
    conn->out_off += static_cast<std::size_t>(n);
    conn->out_bytes -= static_cast<std::size_t>(n);
    if (n > 0) conn->last_write_progress = std::chrono::steady_clock::now();
    if (conn->out_off == front.size()) {
      conn->outq.pop_front();
      conn->out_off = 0;
    }
  }
  const bool want_write = !conn->outq.empty();
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    update_epoll(conn);
  }
  if (conn->outq.empty() && conn->closing) {
    close_conn(conn);
    return;
  }
  update_read_interest(conn);
  // A draining connection whose last queued reply just left via EPOLLOUT
  // must close now, not at the drain deadline.
  maybe_finish_conn(conn);
}

void Server::on_writable(const std::shared_ptr<Conn>& conn) {
  flush(conn);
  if (!conn->closed) pump(conn);  // drained output may have freed capacity
}

void Server::update_read_interest(const std::shared_ptr<Conn>& conn) {
  if (conn->closed || conn->closing) return;
  const bool want = has_capacity(*conn);
  if (want != conn->reading) {
    conn->reading = want;
    update_epoll(conn);
  }
}

void Server::update_epoll(const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  std::uint32_t events = base_events();
  if (conn->reading) events |= EPOLLIN;
  if (conn->want_write) events |= EPOLLOUT;
  conn->home->loop.modify_fd(conn->fd, events);
}

void Server::fail_conn(const std::shared_ptr<Conn>& conn, const std::string& message) {
  if (conn->closed || conn->closing) return;
  std::vector<std::uint8_t> frame;
  append_error(frame, 0, message);
  if (conn->reading) {
    conn->reading = false;
    update_epoll(conn);
  }
  // Queue the ERROR before raising closing (send_bytes refuses frames on a
  // closing connection), then close — now if already flushed, otherwise
  // when flush() empties the queue.
  send_bytes(conn, std::move(frame));
  if (conn->closed) return;
  conn->closing = true;
  if (conn->outq.empty()) close_conn(conn);
}

void Server::close_conn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  conn->home->loop.remove_fd(conn->fd);
  ::close(conn->fd);
  conn->home->conns.erase(conn->fd);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  if (draining_.load(std::memory_order_acquire)) check_drain_done(*conn->home);
}

void Server::maybe_finish_conn(const std::shared_ptr<Conn>& conn) {
  if (draining_.load(std::memory_order_acquire) && conn->home->drain_started &&
      !conn->closed && conn->inflight == 0 && conn->outq.empty()) {
    close_conn(conn);
  }
}

std::shared_ptr<obs::TraceSpan> Server::begin_span(std::uint64_t request_id,
                                                   std::uint32_t frame_type,
                                                   std::uint32_t queries,
                                                   std::uint64_t recv_ns,
                                                   std::uint64_t submit_ns) {
  if (trace_ == nullptr || !trace_->sample()) return nullptr;
  auto span = std::make_shared<obs::TraceSpan>();
  span->request_id = request_id;
  span->frame_type = frame_type;
  span->queries = queries;
  span->start_ns = recv_ns;
  span->decode_ns = submit_ns - recv_ns;
  return span;
}

void Server::handle_stats(const std::shared_ptr<Conn>& conn, std::uint64_t request_id) {
  if (request_id == 0) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    fail_conn(conn, "request id 0 is reserved (request ids must be nonzero)");
    return;
  }
  // snapshot() takes the registry mutex and runs every collector — fine for
  // an operator opcode, never on the batch path.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  StatsSnapshotFrame out;
  out.request_id = request_id;
  out.counters.reserve(snap.counters.size());
  for (const obs::CounterSample& c : snap.counters) out.counters.push_back({c.name, c.value});
  out.gauges.reserve(snap.gauges.size());
  for (const obs::GaugeSample& g : snap.gauges) out.gauges.push_back({g.name, g.value});
  out.histograms.reserve(snap.histograms.size());
  for (const obs::HistogramSample& h : snap.histograms) {
    StatsHistogram sh;
    sh.name = h.name;
    sh.label = h.label;
    sh.count = h.count;
    sh.sum_ns = h.sum_ns;
    for (std::uint32_t i = 0; i < obs::kHistogramBuckets; ++i) {
      if (h.buckets[i] != 0) sh.buckets.emplace_back(i, h.buckets[i]);
    }
    out.histograms.push_back(std::move(sh));
  }
  std::vector<std::uint8_t> bytes;
  append_stats_snapshot(bytes, out);
  send_bytes(conn, std::move(bytes));
}

ServerStats Server::stats() const {
  ServerStats st;
  st.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  st.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  st.batches_received = batches_received_.load(std::memory_order_relaxed);
  st.queries_answered = queries_answered_.load(std::memory_order_relaxed);
  st.vitality_batches = vitality_batches_.load(std::memory_order_relaxed);
  st.vickrey_batches = vickrey_batches_.load(std::memory_order_relaxed);
  st.kfail_batches = kfail_batches_.load(std::memory_order_relaxed);
  st.batch_errors = batch_errors_.load(std::memory_order_relaxed);
  st.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  st.replies_dropped = replies_dropped_.load(std::memory_order_relaxed);
  st.busy_rejected = busy_rejected_.load(std::memory_order_relaxed);
  st.oracles_registered = oracles_registered_.load(std::memory_order_relaxed);
  st.registrations_failed = registrations_failed_.load(std::memory_order_relaxed);
  st.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  st.connections_evicted = connections_evicted_.load(std::memory_order_relaxed);
  return st;
}

#else  // !MSRP_HAVE_NET_SERVER

struct Server::Conn {};
struct Server::LoopShard {};
struct Server::WorkloadReply {};

Server::Server(service::QueryService&, std::shared_ptr<const service::Snapshot>,
               ServerOptions) {
  throw std::runtime_error("net server: epoll serving is unavailable on this platform");
}
Server::Server(service::QueryService&, std::shared_ptr<const service::Snapshot>,
               registry::OracleRegistry*, ServerOptions) {
  throw std::runtime_error("net server: epoll serving is unavailable on this platform");
}
Server::~Server() = default;
void Server::run() {}
void Server::shutdown() {}
ServerStats Server::stats() const { return {}; }
void Server::on_accept(LoopShard&, std::uint32_t) {}
void Server::adopt_conn(LoopShard&, int) {}
void Server::on_conn_event(const std::shared_ptr<Conn>&, std::uint32_t) {}
void Server::on_readable(const std::shared_ptr<Conn>&) {}
void Server::on_writable(const std::shared_ptr<Conn>&) {}
bool Server::has_capacity(const Conn&) const { return false; }
void Server::pump(const std::shared_ptr<Conn>&) {}
void Server::handle_frame(const std::shared_ptr<Conn>&, Frame) {}
void Server::handle_query_batch(const std::shared_ptr<Conn>&, QueryBatchFrame,
                                std::uint64_t) {}
void Server::handle_vitality_batch(const std::shared_ptr<Conn>&, VitalityBatchFrame,
                                   std::uint64_t) {}
void Server::handle_vickrey_batch(const std::shared_ptr<Conn>&, VickreyBatchFrame,
                                  std::uint64_t) {}
void Server::handle_kfail_batch(const std::shared_ptr<Conn>&, KFailBatchFrame,
                                std::uint64_t) {}
void Server::handle_stats(const std::shared_ptr<Conn>&, std::uint64_t) {}
std::shared_ptr<obs::TraceSpan> Server::begin_span(std::uint64_t, std::uint32_t,
                                                   std::uint32_t, std::uint64_t,
                                                   std::uint64_t) {
  return nullptr;
}
std::shared_ptr<const service::Snapshot> Server::resolve_oracle(
    const std::shared_ptr<Conn>&, std::uint64_t, const std::optional<std::uint64_t>&,
    std::uint64_t*) {
  return nullptr;
}
void Server::submit_workload(const std::shared_ptr<Conn>&, std::uint64_t, std::uint64_t,
                             registry::FairDispatcher::StartFn,
                             std::shared_ptr<WorkloadReply>, Deadline, std::uint64_t,
                             std::shared_ptr<obs::TraceSpan>) {}
void Server::on_workload_done(const std::shared_ptr<Conn>&, std::uint64_t,
                              const std::shared_ptr<WorkloadReply>&, std::exception_ptr,
                              const std::shared_ptr<obs::TraceSpan>&) {}
void Server::handle_register(const std::shared_ptr<Conn>&, RegisterGraphFrame) {}
void Server::handle_list_oracles(const std::shared_ptr<Conn>&, std::uint64_t) {}
void Server::handle_unregister(const std::shared_ptr<Conn>&, const UnregisterFrame&) {}
void Server::on_batch_done(const std::shared_ptr<Conn>&, std::uint64_t,
                           service::BatchResult, const std::shared_ptr<obs::TraceSpan>&) {}
void Server::on_register_done(const std::shared_ptr<Conn>&, std::uint64_t,
                              registry::RegisterOutcome) {}
void Server::send_batch_error(const std::shared_ptr<Conn>&, std::uint64_t,
                              const std::string&) {}
void Server::send_bytes(const std::shared_ptr<Conn>&, std::vector<std::uint8_t>) {}
void Server::flush(const std::shared_ptr<Conn>&) {}
void Server::fail_conn(const std::shared_ptr<Conn>&, const std::string&) {}
void Server::close_conn(const std::shared_ptr<Conn>&) {}
void Server::update_read_interest(const std::shared_ptr<Conn>&) {}
void Server::update_epoll(const std::shared_ptr<Conn>&) {}
void Server::maybe_finish_conn(const std::shared_ptr<Conn>&) {}
void Server::on_tick(LoopShard&) {}
void Server::check_drain_done(LoopShard&) {}
void Server::drain_loop(LoopShard&) {}
std::uint32_t Server::base_events() const { return 0; }

#endif

}  // namespace msrp::net
