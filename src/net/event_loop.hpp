/// \file
/// Minimal epoll reactor for the network serving layer.
///
/// One EventLoop owns one epoll instance and runs on exactly one thread
/// (the thread that calls run()). File-descriptor handlers fire on that
/// thread, which is what lets the Server keep all per-connection state
/// lock-free: every mutation happens on the loop thread.
///
/// The bridge from other threads is post(): enqueue a closure under a
/// mutex and ring an eventfd doorbell registered with the epoll set —
/// epoll_wait wakes immediately and the loop runs the closure on its own
/// thread. This is how QueryService batch completions (which fire on pool
/// workers) hand replies back to the connection that asked. stop() is
/// post()-based too, so it is safe from any thread and from handlers.
///
/// Registration supports level-triggered (default) and edge-triggered
/// (pass EPOLLET in `events`) modes; handlers written to drain until
/// EAGAIN — as the Server's are — work identically under both.
///
/// add_fd/modify_fd/remove_fd are loop-thread-only (or before run()):
/// the handler table is deliberately unsynchronized. Removing an fd whose
/// events are already harvested is safe — dispatch re-checks the table per
/// event and skips entries removed by an earlier handler in the round.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace msrp::net {

/// Whether this platform provides epoll + eventfd (Linux). Construction
/// throws elsewhere; callers gate with this (tests GTEST_SKIP on it).
bool event_loop_supported();

class EventLoop {
 public:
  /// Called with the ready epoll event mask (EPOLLIN | EPOLLOUT | ...).
  using FdHandler = std::function<void(std::uint32_t)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void add_fd(int fd, std::uint32_t events, FdHandler handler);
  void modify_fd(int fd, std::uint32_t events);
  void remove_fd(int fd);

  /// Runs until stop(); dispatches fd events, posted closures, and the
  /// periodic tick (if set). Call from exactly one thread.
  void run();

  /// Requests run() to return after the current dispatch round. Safe from
  /// any thread, including handlers and posted closures.
  void stop();

  /// Runs `fn` on the loop thread during the next dispatch round, waking
  /// the loop via the eventfd doorbell. Safe from any thread. Closures
  /// posted after stop() are destroyed unrun when the loop is destroyed.
  void post(std::function<void()> fn);

  /// Installs a callback invoked at least every `interval_ms` while the
  /// loop runs (epoll_wait timeout) — the Server's drain-deadline check.
  /// Loop-thread-only (or before run()).
  void set_tick(std::function<void()> fn, int interval_ms);

  bool in_loop_thread() const { return std::this_thread::get_id() == loop_thread_; }

 private:
  void drain_wakeup();
  void run_posted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread::id loop_thread_;
  // Loop-thread-only. shared_ptr so a handler that removes (or replaces)
  // an fd mid-dispatch cannot free the std::function currently executing.
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;
  std::function<void()> tick_;
  int tick_interval_ms_ = -1;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  bool stop_requested_ = false;  // under post_mu_
};

}  // namespace msrp::net
