#include "net/protocol.hpp"

#include "util/fnv.hpp"

namespace msrp::net {

namespace {

// Little-endian scalar I/O, independent of host byte order.

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_u32_at(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64_at(std::uint8_t* p, std::uint64_t v) {
  put_u32_at(p, static_cast<std::uint32_t>(v));
  put_u32_at(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return std::uint64_t{get_u32(p)} | (std::uint64_t{get_u32(p + 4)} << 32);
}

/// A payload reader that throws ProtocolError instead of reading past the
/// end — every decoder below funnels through it, so a lying count field
/// can never cause an out-of-bounds read.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> payload) : p_(payload) {}

  std::uint32_t u32() { return get_u32(take(4)); }
  std::uint64_t u64() { return get_u64(take(8)); }

  const std::uint8_t* take(std::size_t n) {
    if (p_.size() - pos_ < n) throw ProtocolError("frame payload truncated");
    const std::uint8_t* at = p_.data() + pos_;
    pos_ += n;
    return at;
  }

  /// Guards a count field before it sizes any allocation: the payload must
  /// actually hold `count` records of `record_bytes` each. Without this, a
  /// 40-byte frame claiming 2^32 queries would drive a multi-gigabyte
  /// reserve() whose bad_alloc is not a ProtocolError.
  void expect_records(std::uint64_t count, std::size_t record_bytes) const {
    if ((p_.size() - pos_) / record_bytes < count) {
      throw ProtocolError("frame payload truncated (count exceeds payload)");
    }
  }

  void expect_end() const {
    if (pos_ != p_.size()) throw ProtocolError("frame payload has trailing bytes");
  }

 private:
  std::span<const std::uint8_t> p_;
  std::size_t pos_ = 0;
};

/// Encodes payload via `fill`, then patches the header in place: the
/// payload is built directly in `out` after a 24-byte gap, and the header
/// (whose checksum needs the final payload) is written straight into the
/// gap — no temporary buffer on the per-frame path.
template <typename Fill>
void append_frame(std::vector<std::uint8_t>& out, FrameType type, Fill&& fill) {
  const std::size_t header_at = out.size();
  out.resize(out.size() + kFrameHeaderBytes);
  fill(out);
  std::uint8_t* h = out.data() + header_at;
  const std::uint8_t* payload = h + kFrameHeaderBytes;
  const std::size_t payload_len = out.size() - header_at - kFrameHeaderBytes;
  put_u32_at(h, kFrameMagic);
  put_u32_at(h + 4, static_cast<std::uint32_t>(payload_len));
  put_u32_at(h + 8, static_cast<std::uint32_t>(type));
  put_u32_at(h + 12, 0);  // reserved
  put_u64_at(h + 16, fnv::mix_bytes(fnv::kOffset, payload, payload_len));
}

}  // namespace

void append_hello(std::vector<std::uint8_t>& out, const HelloInfo& hello) {
  append_frame(out, FrameType::kHello, [&](std::vector<std::uint8_t>& buf) {
    put_u32(buf, hello.version);
    put_u32(buf, hello.flags);  // reserved (always 0) before v2
    put_u64(buf, hello.oracle_digest);
    put_u32(buf, hello.num_vertices);
    put_u32(buf, hello.num_edges);
    put_u32(buf, static_cast<std::uint32_t>(hello.sources.size()));
    put_u32(buf, 0);  // reserved
    for (const Vertex s : hello.sources) put_u32(buf, s);
  });
}

void append_query_batch(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                        std::span<const service::Query> queries,
                        std::optional<std::uint64_t> digest,
                        std::optional<std::uint32_t> deadline_ms) {
  append_frame(out, FrameType::kQueryBatch, [&](std::vector<std::uint8_t>& buf) {
    put_u64(buf, request_id);
    put_u32(buf, static_cast<std::uint32_t>(queries.size()));
    const std::uint32_t flags = (digest ? kQueryBatchHasDigest : 0) |
                                (deadline_ms ? kQueryBatchHasDeadline : 0);
    put_u32(buf, flags);  // v1: reserved 0
    if (digest) put_u64(buf, *digest);
    if (deadline_ms) put_u32(buf, *deadline_ms);
    for (const service::Query& q : queries) {
      put_u32(buf, q.s);
      put_u32(buf, q.t);
      put_u32(buf, q.e);
    }
  });
}

void append_answer_batch(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                         std::span<const Dist> answers) {
  append_frame(out, FrameType::kAnswerBatch, [&](std::vector<std::uint8_t>& buf) {
    put_u64(buf, request_id);
    put_u32(buf, static_cast<std::uint32_t>(answers.size()));
    put_u32(buf, 0);  // reserved
    for (const Dist d : answers) put_u32(buf, d);
  });
}

void append_error(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                  std::string_view message) {
  append_frame(out, FrameType::kError, [&](std::vector<std::uint8_t>& buf) {
    put_u64(buf, request_id);
    put_u32(buf, static_cast<std::uint32_t>(message.size()));
    put_u32(buf, 0);  // reserved
    buf.insert(buf.end(), message.begin(), message.end());
  });
}

void append_busy(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                 std::string_view message) {
  append_frame(out, FrameType::kBusy, [&](std::vector<std::uint8_t>& buf) {
    put_u64(buf, request_id);
    put_u32(buf, static_cast<std::uint32_t>(message.size()));
    put_u32(buf, 0);  // reserved
    buf.insert(buf.end(), message.begin(), message.end());
  });
}

void append_register_graph(std::vector<std::uint8_t>& out, const RegisterGraphFrame& reg) {
  append_frame(out, FrameType::kRegisterGraph, [&](std::vector<std::uint8_t>& buf) {
    put_u64(buf, reg.request_id);
    put_u32(buf, static_cast<std::uint32_t>(reg.mode));
    put_u32(buf, 0);  // reserved
    if (reg.mode == RegisterMode::kEdgeList) {
      put_u64(buf, reg.seed);
      put_u32(buf, reg.num_vertices);
      put_u32(buf, static_cast<std::uint32_t>(reg.edges.size()));
      put_u32(buf, static_cast<std::uint32_t>(reg.sources.size()));
      put_u32(buf, 0);  // reserved
      for (const Vertex s : reg.sources) put_u32(buf, s);
      for (const auto& [u, v] : reg.edges) {
        put_u32(buf, u);
        put_u32(buf, v);
      }
    } else {
      put_u32(buf, static_cast<std::uint32_t>(reg.snapshot_path.size()));
      put_u32(buf, 0);  // reserved
      buf.insert(buf.end(), reg.snapshot_path.begin(), reg.snapshot_path.end());
    }
  });
}

void append_register_ack(std::vector<std::uint8_t>& out, const RegisterAckFrame& ack) {
  append_frame(out, FrameType::kRegisterAck, [&](std::vector<std::uint8_t>& buf) {
    put_u64(buf, ack.request_id);
    put_u64(buf, ack.digest);
    put_u32(buf, static_cast<std::uint32_t>(ack.state));
    put_u32(buf, 0);  // reserved
    put_u32(buf, ack.num_vertices);
    put_u32(buf, ack.num_edges);
    put_u32(buf, static_cast<std::uint32_t>(ack.sources.size()));
    put_u32(buf, 0);  // reserved
    for (const Vertex s : ack.sources) put_u32(buf, s);
  });
}

void append_list_oracles(std::vector<std::uint8_t>& out, std::uint64_t request_id) {
  append_frame(out, FrameType::kListOracles,
               [&](std::vector<std::uint8_t>& buf) { put_u64(buf, request_id); });
}

void append_oracle_list(std::vector<std::uint8_t>& out, const OracleListFrame& list) {
  append_frame(out, FrameType::kOracleList, [&](std::vector<std::uint8_t>& buf) {
    put_u64(buf, list.request_id);
    put_u32(buf, static_cast<std::uint32_t>(list.oracles.size()));
    put_u32(buf, 0);  // reserved
    for (const OracleListEntry& e : list.oracles) {
      put_u64(buf, e.digest);
      put_u32(buf, static_cast<std::uint32_t>(e.state));
      put_u32(buf, e.num_vertices);
      put_u32(buf, e.num_edges);
      put_u32(buf, static_cast<std::uint32_t>(e.sources.size()));
      put_u32(buf, e.inflight_batches);
      // Previously reserved-zero: length of the failure-reason string that
      // follows the source list. FAILED entries are the only producers, so
      // pre-deadline streams are byte-identical.
      put_u32(buf, static_cast<std::uint32_t>(e.error.size()));
      put_u64(buf, e.queries_answered);
      put_u64(buf, e.footprint_bytes);
      for (const Vertex s : e.sources) put_u32(buf, s);
      buf.insert(buf.end(), e.error.begin(), e.error.end());
    }
  });
}

void append_unregister(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                       std::uint64_t digest) {
  append_frame(out, FrameType::kUnregister, [&](std::vector<std::uint8_t>& buf) {
    put_u64(buf, request_id);
    put_u64(buf, digest);
  });
}

namespace {

/// The envelope every batch request shares (QUERY_BATCH and the three v3
/// workload batches): request id, record count, flag word, optional digest
/// and deadline. One writer/reader pair keeps the layouts identical.
void put_batch_envelope(std::vector<std::uint8_t>& buf, std::uint64_t request_id,
                        std::size_t count, const std::optional<std::uint64_t>& digest,
                        const std::optional<std::uint32_t>& deadline_ms) {
  put_u64(buf, request_id);
  put_u32(buf, static_cast<std::uint32_t>(count));
  const std::uint32_t flags = (digest ? kQueryBatchHasDigest : 0) |
                              (deadline_ms ? kQueryBatchHasDeadline : 0);
  put_u32(buf, flags);
  if (digest) put_u64(buf, *digest);
  if (deadline_ms) put_u32(buf, *deadline_ms);
}

struct BatchEnvelope {
  std::uint64_t request_id = 0;
  std::uint32_t count = 0;
  std::optional<std::uint64_t> digest;
  std::optional<std::uint32_t> deadline_ms;
};

BatchEnvelope read_batch_envelope(Reader& r, const char* frame_name) {
  BatchEnvelope env;
  env.request_id = r.u64();
  env.count = r.u32();
  const std::uint32_t flags = r.u32();
  if ((flags & ~(kQueryBatchHasDigest | kQueryBatchHasDeadline)) != 0) {
    throw ProtocolError(std::string("unknown ") + frame_name + " flags");
  }
  if (flags & kQueryBatchHasDigest) env.digest = r.u64();
  if (flags & kQueryBatchHasDeadline) env.deadline_ms = r.u32();
  return env;
}

}  // namespace

void append_vitality_batch(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                           std::span<const service::VitalityQuery> queries,
                           std::optional<std::uint64_t> digest,
                           std::optional<std::uint32_t> deadline_ms) {
  append_frame(out, FrameType::kVitalityBatch, [&](std::vector<std::uint8_t>& buf) {
    put_batch_envelope(buf, request_id, queries.size(), digest, deadline_ms);
    for (const service::VitalityQuery& q : queries) {
      put_u32(buf, q.s);
      put_u32(buf, q.t);
      put_u32(buf, q.k);
    }
  });
}

void append_vitality_answer(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                            std::span<const service::VitalityResult> results) {
  append_frame(out, FrameType::kVitalityAnswer, [&](std::vector<std::uint8_t>& buf) {
    put_u64(buf, request_id);
    put_u32(buf, static_cast<std::uint32_t>(results.size()));
    put_u32(buf, 0);  // reserved
    for (const service::VitalityResult& res : results) {
      put_u32(buf, res.base);
      put_u32(buf, static_cast<std::uint32_t>(res.edges.size()));
      for (const service::VitalityEntry& e : res.edges) {
        put_u32(buf, e.edge);
        put_u32(buf, e.position);
        put_u32(buf, e.replacement);
      }
    }
  });
}

void append_vickrey_batch(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                          std::span<const service::VickreyQuery> queries,
                          std::optional<std::uint64_t> digest,
                          std::optional<std::uint32_t> deadline_ms) {
  append_frame(out, FrameType::kVickreyBatch, [&](std::vector<std::uint8_t>& buf) {
    put_batch_envelope(buf, request_id, queries.size(), digest, deadline_ms);
    for (const service::VickreyQuery& q : queries) {
      put_u32(buf, q.s);
      put_u32(buf, q.t);
    }
  });
}

void append_vickrey_answer(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                           std::span<const service::VickreyResult> results) {
  append_frame(out, FrameType::kVickreyAnswer, [&](std::vector<std::uint8_t>& buf) {
    put_u64(buf, request_id);
    put_u32(buf, static_cast<std::uint32_t>(results.size()));
    put_u32(buf, 0);  // reserved
    for (const service::VickreyResult& res : results) {
      put_u32(buf, res.base);
      put_u32(buf, static_cast<std::uint32_t>(res.prices.size()));
      for (const service::VickreyCharge& c : res.prices) {
        put_u32(buf, c.edge);
        put_u32(buf, c.price);
      }
    }
  });
}

void append_kfail_batch(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                        std::span<const service::KFailQuery> queries,
                        std::optional<std::uint64_t> digest,
                        std::optional<std::uint32_t> deadline_ms) {
  append_frame(out, FrameType::kKFailBatch, [&](std::vector<std::uint8_t>& buf) {
    put_batch_envelope(buf, request_id, queries.size(), digest, deadline_ms);
    for (const service::KFailQuery& q : queries) {
      put_u32(buf, q.s);
      put_u32(buf, q.t);
      put_u32(buf, static_cast<std::uint32_t>(q.fails.size()));
      for (const EdgeId e : q.fails) put_u32(buf, e);
    }
  });
}

void append_kfail_answer(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                         std::span<const Dist> answers) {
  append_frame(out, FrameType::kKFailAnswer, [&](std::vector<std::uint8_t>& buf) {
    put_u64(buf, request_id);
    put_u32(buf, static_cast<std::uint32_t>(answers.size()));
    put_u32(buf, 0);  // reserved
    for (const Dist d : answers) put_u32(buf, d);
  });
}

HelloInfo decode_hello(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  HelloInfo hello;
  hello.version = r.u32();
  hello.flags = r.u32();
  hello.oracle_digest = r.u64();
  hello.num_vertices = r.u32();
  hello.num_edges = r.u32();
  const std::uint32_t sigma = r.u32();
  r.u32();  // reserved
  r.expect_records(sigma, 4);
  hello.sources.reserve(sigma);
  for (std::uint32_t i = 0; i < sigma; ++i) hello.sources.push_back(r.u32());
  r.expect_end();
  return hello;
}

QueryBatchFrame decode_query_batch(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  QueryBatchFrame qb;
  qb.request_id = r.u64();
  const std::uint32_t count = r.u32();
  // v1 wrote this word as reserved-zero; v2 uses it as a flag field, so
  // every v1 frame decodes here unchanged (flags == 0, no digest).
  const std::uint32_t flags = r.u32();
  if ((flags & ~(kQueryBatchHasDigest | kQueryBatchHasDeadline)) != 0) {
    throw ProtocolError("unknown QUERY_BATCH flags");
  }
  if (flags & kQueryBatchHasDigest) qb.digest = r.u64();
  if (flags & kQueryBatchHasDeadline) qb.deadline_ms = r.u32();
  r.expect_records(count, 12);
  qb.queries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t s = r.u32();
    const std::uint32_t t = r.u32();
    const std::uint32_t e = r.u32();
    qb.queries.push_back({s, t, e});
  }
  r.expect_end();
  return qb;
}

AnswerBatchFrame decode_answer_batch(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  AnswerBatchFrame ab;
  ab.request_id = r.u64();
  const std::uint32_t count = r.u32();
  r.u32();  // reserved
  r.expect_records(count, 4);
  ab.answers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) ab.answers.push_back(r.u32());
  r.expect_end();
  return ab;
}

ErrorFrame decode_error(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ErrorFrame err;
  err.request_id = r.u64();
  const std::uint32_t len = r.u32();
  r.u32();  // reserved
  const std::uint8_t* bytes = r.take(len);
  err.message.assign(reinterpret_cast<const char*>(bytes), len);
  r.expect_end();
  return err;
}

namespace {

/// A state u32 from the wire; out-of-range values decode as kUnknown
/// rather than faulting — the set may grow in later protocol revisions.
registry::OracleState decode_state(std::uint32_t raw) {
  return raw <= static_cast<std::uint32_t>(registry::OracleState::kUnregistered)
             ? static_cast<registry::OracleState>(raw)
             : registry::OracleState::kUnknown;
}

}  // namespace

RegisterGraphFrame decode_register_graph(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  RegisterGraphFrame reg;
  reg.request_id = r.u64();
  const std::uint32_t mode = r.u32();
  r.u32();  // reserved
  if (mode == static_cast<std::uint32_t>(RegisterMode::kEdgeList)) {
    reg.mode = RegisterMode::kEdgeList;
    reg.seed = r.u64();
    reg.num_vertices = r.u32();
    const std::uint32_t m = r.u32();
    const std::uint32_t sigma = r.u32();
    r.u32();  // reserved
    // Both counts guard their allocations: sources first (they precede the
    // edges in the payload), then edges against what remains.
    r.expect_records(std::uint64_t{sigma} + 2 * std::uint64_t{m}, 4);
    reg.sources.reserve(sigma);
    for (std::uint32_t i = 0; i < sigma; ++i) reg.sources.push_back(r.u32());
    reg.edges.reserve(m);
    for (std::uint32_t i = 0; i < m; ++i) {
      const Vertex u = r.u32();
      const Vertex v = r.u32();
      reg.edges.emplace_back(u, v);
    }
  } else if (mode == static_cast<std::uint32_t>(RegisterMode::kSnapshotPath)) {
    reg.mode = RegisterMode::kSnapshotPath;
    const std::uint32_t len = r.u32();
    r.u32();  // reserved
    const std::uint8_t* bytes = r.take(len);
    reg.snapshot_path.assign(reinterpret_cast<const char*>(bytes), len);
  } else {
    throw ProtocolError("unknown REGISTER_GRAPH mode " + std::to_string(mode));
  }
  r.expect_end();
  return reg;
}

RegisterAckFrame decode_register_ack(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  RegisterAckFrame ack;
  ack.request_id = r.u64();
  ack.digest = r.u64();
  ack.state = decode_state(r.u32());
  r.u32();  // reserved
  ack.num_vertices = r.u32();
  ack.num_edges = r.u32();
  const std::uint32_t sigma = r.u32();
  r.u32();  // reserved
  r.expect_records(sigma, 4);
  ack.sources.reserve(sigma);
  for (std::uint32_t i = 0; i < sigma; ++i) ack.sources.push_back(r.u32());
  r.expect_end();
  return ack;
}

std::uint64_t decode_list_oracles(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const std::uint64_t request_id = r.u64();
  r.expect_end();
  return request_id;
}

OracleListFrame decode_oracle_list(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  OracleListFrame list;
  list.request_id = r.u64();
  const std::uint32_t count = r.u32();
  r.u32();  // reserved
  r.expect_records(count, 48);  // fixed bytes per entry, sources excluded
  list.oracles.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    OracleListEntry e;
    e.digest = r.u64();
    e.state = decode_state(r.u32());
    e.num_vertices = r.u32();
    e.num_edges = r.u32();
    const std::uint32_t sigma = r.u32();
    e.inflight_batches = r.u32();
    const std::uint32_t error_len = r.u32();  // reserved-zero before deadlines
    e.queries_answered = r.u64();
    e.footprint_bytes = r.u64();
    r.expect_records(sigma, 4);
    e.sources.reserve(sigma);
    for (std::uint32_t j = 0; j < sigma; ++j) e.sources.push_back(r.u32());
    const std::uint8_t* err = r.take(error_len);
    e.error.assign(reinterpret_cast<const char*>(err), error_len);
    list.oracles.push_back(std::move(e));
  }
  r.expect_end();
  return list;
}

UnregisterFrame decode_unregister(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  UnregisterFrame un;
  un.request_id = r.u64();
  un.digest = r.u64();
  r.expect_end();
  return un;
}

VitalityBatchFrame decode_vitality_batch(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const BatchEnvelope env = read_batch_envelope(r, "VITALITY_BATCH");
  VitalityBatchFrame vb;
  vb.request_id = env.request_id;
  vb.digest = env.digest;
  vb.deadline_ms = env.deadline_ms;
  r.expect_records(env.count, 12);
  vb.queries.reserve(env.count);
  for (std::uint32_t i = 0; i < env.count; ++i) {
    service::VitalityQuery q;
    q.s = r.u32();
    q.t = r.u32();
    q.k = r.u32();
    if (q.k == 0) throw ProtocolError("VITALITY_BATCH k must be positive");
    if (q.k > service::kMaxTopKVital) {
      throw ProtocolError("VITALITY_BATCH k " + std::to_string(q.k) + " exceeds cap " +
                          std::to_string(service::kMaxTopKVital));
    }
    vb.queries.push_back(q);
  }
  r.expect_end();
  return vb;
}

VitalityAnswerFrame decode_vitality_answer(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  VitalityAnswerFrame va;
  va.request_id = r.u64();
  const std::uint32_t count = r.u32();
  r.u32();  // reserved
  r.expect_records(count, 8);  // fixed bytes per result, entries excluded
  va.results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    service::VitalityResult res;
    res.base = r.u32();
    const std::uint32_t entries = r.u32();
    r.expect_records(entries, 12);
    res.edges.reserve(entries);
    for (std::uint32_t j = 0; j < entries; ++j) {
      service::VitalityEntry e;
      e.edge = r.u32();
      e.position = r.u32();
      e.replacement = r.u32();
      res.edges.push_back(e);
    }
    va.results.push_back(std::move(res));
  }
  r.expect_end();
  return va;
}

VickreyBatchFrame decode_vickrey_batch(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const BatchEnvelope env = read_batch_envelope(r, "VICKREY_BATCH");
  VickreyBatchFrame vb;
  vb.request_id = env.request_id;
  vb.digest = env.digest;
  vb.deadline_ms = env.deadline_ms;
  r.expect_records(env.count, 8);
  vb.queries.reserve(env.count);
  for (std::uint32_t i = 0; i < env.count; ++i) {
    service::VickreyQuery q;
    q.s = r.u32();
    q.t = r.u32();
    vb.queries.push_back(q);
  }
  r.expect_end();
  return vb;
}

VickreyAnswerFrame decode_vickrey_answer(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  VickreyAnswerFrame va;
  va.request_id = r.u64();
  const std::uint32_t count = r.u32();
  r.u32();  // reserved
  r.expect_records(count, 8);  // fixed bytes per result, charges excluded
  va.results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    service::VickreyResult res;
    res.base = r.u32();
    const std::uint32_t charges = r.u32();
    r.expect_records(charges, 8);
    res.prices.reserve(charges);
    for (std::uint32_t j = 0; j < charges; ++j) {
      service::VickreyCharge c;
      c.edge = r.u32();
      c.price = r.u32();
      res.prices.push_back(c);
    }
    va.results.push_back(std::move(res));
  }
  r.expect_end();
  return va;
}

KFailBatchFrame decode_kfail_batch(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const BatchEnvelope env = read_batch_envelope(r, "KFAIL_BATCH");
  KFailBatchFrame kb;
  kb.request_id = env.request_id;
  kb.digest = env.digest;
  kb.deadline_ms = env.deadline_ms;
  r.expect_records(env.count, 12);  // minimum record size (empty failure set)
  kb.queries.reserve(env.count);
  for (std::uint32_t i = 0; i < env.count; ++i) {
    service::KFailQuery q;
    q.s = r.u32();
    q.t = r.u32();
    const std::uint32_t fails = r.u32();
    if (fails > service::kMaxKFailEdges) {
      throw ProtocolError("KFAIL_BATCH failure set of " + std::to_string(fails) +
                          " edges exceeds cap " + std::to_string(service::kMaxKFailEdges));
    }
    q.fails.reserve(fails);
    for (std::uint32_t j = 0; j < fails; ++j) {
      const EdgeId e = r.u32();
      for (const EdgeId seen : q.fails) {
        if (seen == e) throw ProtocolError("KFAIL_BATCH duplicate edge in failure set");
      }
      q.fails.push_back(e);
    }
    kb.queries.push_back(std::move(q));
  }
  r.expect_end();
  return kb;
}

KFailAnswerFrame decode_kfail_answer(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  KFailAnswerFrame ka;
  ka.request_id = r.u64();
  const std::uint32_t count = r.u32();
  r.u32();  // reserved
  r.expect_records(count, 4);
  ka.answers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) ka.answers.push_back(r.u32());
  r.expect_end();
  return ka;
}

void append_stats_request(std::vector<std::uint8_t>& out, std::uint64_t request_id) {
  append_frame(out, FrameType::kStatsRequest,
               [&](std::vector<std::uint8_t>& buf) { put_u64(buf, request_id); });
}

namespace {

void put_name(std::vector<std::uint8_t>& buf, const std::string& name) {
  put_u32(buf, static_cast<std::uint32_t>(name.size()));
  buf.insert(buf.end(), name.begin(), name.end());
}

std::string read_name(Reader& r) {
  const std::uint32_t len = r.u32();
  const std::uint8_t* bytes = r.take(len);
  return std::string(reinterpret_cast<const char*>(bytes), len);
}

}  // namespace

void append_stats_snapshot(std::vector<std::uint8_t>& out, const StatsSnapshotFrame& stats) {
  append_frame(out, FrameType::kStatsSnapshot, [&](std::vector<std::uint8_t>& buf) {
    put_u64(buf, stats.request_id);
    put_u32(buf, static_cast<std::uint32_t>(stats.counters.size()));
    put_u32(buf, static_cast<std::uint32_t>(stats.gauges.size()));
    put_u32(buf, static_cast<std::uint32_t>(stats.histograms.size()));
    put_u32(buf, 0);  // reserved
    for (const StatsCounter& c : stats.counters) {
      put_name(buf, c.name);
      put_u64(buf, c.value);
    }
    for (const StatsGauge& g : stats.gauges) {
      put_name(buf, g.name);
      put_u64(buf, static_cast<std::uint64_t>(g.value));
    }
    for (const StatsHistogram& h : stats.histograms) {
      put_name(buf, h.name);
      put_name(buf, h.label);
      put_u64(buf, h.count);
      put_u64(buf, h.sum_ns);
      put_u32(buf, static_cast<std::uint32_t>(h.buckets.size()));
      put_u32(buf, 0);  // reserved
      for (const auto& [idx, cnt] : h.buckets) {
        put_u32(buf, idx);
        put_u64(buf, cnt);
      }
    }
  });
}

std::uint64_t decode_stats_request(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  const std::uint64_t request_id = r.u64();
  r.expect_end();
  return request_id;
}

StatsSnapshotFrame decode_stats_snapshot(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  StatsSnapshotFrame stats;
  stats.request_id = r.u64();
  const std::uint32_t n_counters = r.u32();
  const std::uint32_t n_gauges = r.u32();
  const std::uint32_t n_hists = r.u32();
  r.u32();  // reserved
  // Minimum record sizes guard the reserves (names add to the minimum).
  r.expect_records(std::uint64_t{n_counters} + n_gauges, 12);
  stats.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    StatsCounter c;
    c.name = read_name(r);
    c.value = r.u64();
    stats.counters.push_back(std::move(c));
  }
  stats.gauges.reserve(n_gauges);
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    StatsGauge g;
    g.name = read_name(r);
    g.value = static_cast<std::int64_t>(r.u64());
    stats.gauges.push_back(std::move(g));
  }
  r.expect_records(n_hists, 32);
  stats.histograms.reserve(n_hists);
  for (std::uint32_t i = 0; i < n_hists; ++i) {
    StatsHistogram h;
    h.name = read_name(r);
    h.label = read_name(r);
    h.count = r.u64();
    h.sum_ns = r.u64();
    const std::uint32_t pairs = r.u32();
    r.u32();  // reserved
    r.expect_records(pairs, 12);
    h.buckets.reserve(pairs);
    for (std::uint32_t j = 0; j < pairs; ++j) {
      const std::uint32_t idx = r.u32();
      const std::uint64_t cnt = r.u64();
      if (!h.buckets.empty() && idx <= h.buckets.back().first) {
        throw ProtocolError("STATS_SNAPSHOT bucket indices not ascending");
      }
      h.buckets.emplace_back(idx, cnt);
    }
    stats.histograms.push_back(std::move(h));
  }
  r.expect_end();
  return stats;
}

void FrameDecoder::feed(std::span<const std::uint8_t> data) {
  // Compact before growing: once the consumed prefix dominates the buffer
  // (and is past trivial size), shift the tail down so a long-lived
  // connection's buffer stays proportional to its unread bytes.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<Frame> FrameDecoder::next() {
  if (buffered_bytes() < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* h = buf_.data() + pos_;
  if (get_u32(h) != kFrameMagic) throw ProtocolError("bad frame magic");
  const std::uint32_t payload_len = get_u32(h + 4);
  if (payload_len > max_frame_bytes_) {
    throw ProtocolError("frame exceeds maximum size (" + std::to_string(payload_len) +
                        " > " + std::to_string(max_frame_bytes_) + " bytes)");
  }
  if (buffered_bytes() < kFrameHeaderBytes + payload_len) return std::nullopt;

  const std::uint32_t type = get_u32(h + 8);
  const std::uint64_t checksum = get_u64(h + 16);
  const std::uint8_t* payload = h + kFrameHeaderBytes;
  if (fnv::mix_bytes(fnv::kOffset, payload, payload_len) != checksum) {
    throw ProtocolError("frame checksum mismatch");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(payload, payload + payload_len);
  pos_ += kFrameHeaderBytes + payload_len;
  return frame;
}

}  // namespace msrp::net
