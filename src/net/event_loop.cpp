#include "net/event_loop.hpp"

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"

#if defined(__linux__)
#define MSRP_HAVE_EPOLL 1
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#else
#define MSRP_HAVE_EPOLL 0
#endif

namespace msrp::net {

bool event_loop_supported() { return MSRP_HAVE_EPOLL != 0; }

#if MSRP_HAVE_EPOLL

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("event loop: epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error("event loop: eventfd failed");
  }
  ::epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw std::runtime_error("event loop: cannot register wakeup fd");
  }
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  MSRP_CHECK(fd >= 0 && fd != wake_fd_, "event loop: bad fd");
  ::epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error("event loop: epoll_ctl(ADD) failed");
  }
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  ::epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw std::runtime_error("event loop: epoll_ctl(MOD) failed");
  }
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);  // fd may already be closed
  handlers_.erase(fd);
}

void EventLoop::drain_wakeup() {
  std::uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof count) == sizeof count) {
  }
}

void EventLoop::run_posted() {
  // Swap the queue out under the lock, run outside it: a posted closure may
  // itself post (or stop) without deadlocking.
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::run() {
  loop_thread_ = std::this_thread::get_id();
  std::vector<::epoll_event> events(64);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      if (stop_requested_) {
        stop_requested_ = false;  // a later run() starts fresh
        return;
      }
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                               tick_interval_ms_);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("event loop: epoll_wait failed");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_) {
        drain_wakeup();
        continue;
      }
      // Re-check per event: an earlier handler this round may have removed
      // this fd (e.g. closing a connection that was also writable).
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      const std::shared_ptr<FdHandler> handler = it->second;
      (*handler)(events[static_cast<std::size_t>(i)].events);
    }
    run_posted();
    if (tick_) tick_();
    if (n == static_cast<int>(events.size())) events.resize(events.size() * 2);
  }
}

void EventLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    stop_requested_ = true;
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto r = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto r = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::set_tick(std::function<void()> fn, int interval_ms) {
  tick_ = std::move(fn);
  tick_interval_ms_ = tick_ ? interval_ms : -1;
}

#else  // !MSRP_HAVE_EPOLL — stubs so the library still links; Server and
       // tests gate on event_loop_supported().

EventLoop::EventLoop() {
  throw std::runtime_error("event loop: epoll is unavailable on this platform");
}
EventLoop::~EventLoop() = default;
void EventLoop::add_fd(int, std::uint32_t, FdHandler) {}
void EventLoop::modify_fd(int, std::uint32_t) {}
void EventLoop::remove_fd(int) {}
void EventLoop::drain_wakeup() {}
void EventLoop::run_posted() {}
void EventLoop::run() {}
void EventLoop::stop() {}
void EventLoop::post(std::function<void()>) {}
void EventLoop::set_tick(std::function<void()>, int) {}

#endif

}  // namespace msrp::net
