/// \file
/// Binary wire protocol for remote replacement-path serving.
///
/// Everything on the socket is a *frame*: a fixed 24-byte header (magic,
/// payload length, type, checksum) followed by the payload. Frames are
/// self-delimiting, so a TCP stream of them can be cut anywhere — the
/// incremental FrameDecoder reassembles frames across arbitrary read
/// boundaries — and every payload travels under an FNV-1a checksum, so a
/// corrupted or desynchronized stream is detected at the first bad frame
/// instead of being served as garbage answers.
///
/// The conversation (byte-exact layouts in docs/NETWORK_PROTOCOL.md):
///
///   * on accept the server sends one HELLO frame: protocol version,
///     oracle identity (content digest, n, m) and the source vertex list.
///     A client that sees an unknown version (or no HELLO as the first
///     frame) must disconnect — version negotiation is "take it or leave
///     it", which keeps old clients from silently mis-decoding new frames;
///   * the client then sends QUERY_BATCH frames, each carrying a caller-
///     chosen request id and a run of (s, t, e) queries. Ids exist for
///     pipelining: a client may have any number of batches in flight, and
///     the server answers each batch as its QueryService completion fires
///     — NOT necessarily in submission order;
///   * the server replies per batch with ANSWER_BATCH (same request id,
///     one u32 distance per query, kInfDist = unreachable) or ERROR (same
///     request id, human-readable message) when the batch failed
///     validation. An ERROR with request id 0 is connection-level — a
///     protocol violation — and is followed by the server closing.
///
/// Protocol v2 (docs/NETWORK_PROTOCOL.md §v2) adds the multi-tenant
/// registry conversation on top of v1:
///
///   * REGISTER_GRAPH uploads an edge list (or names a server-side
///     snapshot path); the server answers REGISTER_ACK with the oracle's
///     digest and build state, or ERROR with the same request id when the
///     registration was rejected;
///   * LIST_ORACLES / ORACLE_LIST enumerate the registered oracles with
///     state and per-tenant counters; UNREGISTER retires a digest;
///   * QUERY_BATCH grows an optional target digest (flag bit 0): a v2
///     client can aim any batch at any registered oracle. A v1-shaped
///     batch (flags == 0, no digest) still decodes and targets the HELLO
///     default — the frame layouts of v1 are a strict subset of v2, which
///     is why updated clients accept either announced version;
///   * BUSY (same payload shape as ERROR) rejects a batch that admission
///     control will not queue; the connection stays healthy and the
///     client may retry.
///
/// Protocol v3 (docs/NETWORK_PROTOCOL.md §v3) promotes the dormant
/// workloads to first-class opcodes, one request/reply frame pair each:
///
///   * VITALITY_BATCH / VITALITY_ANSWER — top-k most-vital edges of the
///     canonical s->t path, per query (s, t, k);
///   * VICKREY_BATCH / VICKREY_ANSWER — per-edge Vickrey payments along
///     the canonical s->t path, per query (s, t);
///   * KFAIL_BATCH / KFAIL_ANSWER — d(s, t) avoiding an explicit edge set
///     F with |F| <= kMaxKFailEdges, per query (s, t, F).
///
/// The three request frames share QUERY_BATCH's envelope — request id,
/// count, flag word with the same digest (bit 0) and deadline (bit 1)
/// meanings — so digest targeting, admission control, deadlines, BUSY,
/// and the ERROR path all apply unchanged; only the per-query record
/// differs. The v1/v2 frame layouts are untouched: a v2 client's bytes
/// decode identically against a v3 server, and the new decoders reject
/// malformed requests (k == 0 or k > kMaxTopKVital, |F| > kMaxKFailEdges,
/// duplicate edges in F) as ProtocolError before any allocation.
///
/// Protocol v4 (docs/NETWORK_PROTOCOL.md §v4) adds the observability
/// conversation:
///
///   * STATS_REQUEST / STATS_SNAPSHOT — a typed dump of the server's
///     metrics registry (src/obs/): named monotonic counters, gauges, and
///     log-linear latency histograms with sparse nonzero buckets, so
///     `msrp_client --stats` sees exactly the series a Prometheus scrape
///     of `--metrics-addr` sees. The frame carries registry names
///     ("server.batches_received"); exposition naming ("msrp_..._total")
///     is a renderer concern, not a wire concern.
///
/// Every v1–v3 frame layout is untouched; v3 clients' bytes decode
/// identically against a v4 server.
///
/// All integers are little-endian. A frame's payload is capped
/// (max_frame_bytes, default 64 MiB); an oversized length in the header is
/// a protocol error — the decoder refuses it *before* buffering, so a
/// malicious or corrupt length cannot balloon memory.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "registry/oracle_state.hpp"
#include "service/query.hpp"
#include "service/workloads.hpp"
#include "util/distance.hpp"

namespace msrp::net {

/// First bytes of every frame, little-endian "MRPC".
inline constexpr std::uint32_t kFrameMagic = 0x4350524du;
/// Wire protocol version announced in the server HELLO.
inline constexpr std::uint32_t kProtocolVersion = 4;
/// Lowest announced version an updated client still speaks (the v1–v3
/// frame layouts are strict subsets of v4).
inline constexpr std::uint32_t kMinProtocolVersion = 1;
/// Fixed byte size of the frame header.
inline constexpr std::size_t kFrameHeaderBytes = 24;
/// Default payload cap; both sides reject frames claiming more.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

enum class FrameType : std::uint32_t {
  kHello = 1,        ///< server -> client, once, first frame on the wire
  kQueryBatch = 2,   ///< client -> server, pipelined
  kAnswerBatch = 3,  ///< server -> client, one per QUERY_BATCH
  kError = 4,        ///< server -> client; id 0 = fatal protocol error
  // ----- v2 (registry) -----
  kRegisterGraph = 5,  ///< client -> server: upload edge list / name a snapshot
  kRegisterAck = 6,    ///< server -> client: digest + build state
  kListOracles = 7,    ///< client -> server: enumerate registered oracles
  kOracleList = 8,     ///< server -> client: reply to LIST_ORACLES
  kUnregister = 9,     ///< client -> server: retire a digest
  kBusy = 10,          ///< server -> client: batch rejected by admission control
  // ----- v3 (workload opcodes) -----
  kVitalityBatch = 11,   ///< client -> server: top-k most-vital-edge queries
  kVitalityAnswer = 12,  ///< server -> client: one per VITALITY_BATCH
  kVickreyBatch = 13,    ///< client -> server: Vickrey pricing queries
  kVickreyAnswer = 14,   ///< server -> client: one per VICKREY_BATCH
  kKFailBatch = 15,      ///< client -> server: k-edge-failure queries
  kKFailAnswer = 16,     ///< server -> client: one per KFAIL_BATCH
  // ----- v4 (observability) -----
  kStatsRequest = 17,   ///< client -> server: dump the metrics registry
  kStatsSnapshot = 18,  ///< server -> client: one per STATS_REQUEST
};

/// QUERY_BATCH flag bits (v2; a v1 frame always carries flags == 0).
inline constexpr std::uint32_t kQueryBatchHasDigest = 1u << 0;
/// Bit 1: the frame carries a u32 relative deadline in milliseconds (after
/// the optional digest). Absent = wait forever — the pre-deadline shape,
/// byte-identical to what older clients emit. A batch whose deadline passes
/// anywhere in the pipeline is answered with an ERROR frame whose message
/// starts with "DEADLINE_EXCEEDED" (util/deadline.hpp) rather than a new
/// frame type, so deadline-unaware peers still parse the reply.
inline constexpr std::uint32_t kQueryBatchHasDeadline = 1u << 1;

/// HELLO flag bits.
inline constexpr std::uint32_t kHelloRegistryEnabled = 1u << 0;

/// A malformed byte stream (bad magic, oversized length, checksum
/// mismatch, truncated or inconsistent payload). Connection-fatal: the
/// stream cannot be resynchronized past it.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Frame {
  FrameType type{};
  std::vector<std::uint8_t> payload;
};

/// Server identity sent on accept. A registry server with no default
/// oracle announces digest 0, n = m = 0 and an empty source list; clients
/// must then name a digest per batch.
struct HelloInfo {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t flags = 0;          ///< kHelloRegistryEnabled, ...
  std::uint64_t oracle_digest = 0;  ///< Snapshot::content_digest(); 0 = none
  std::uint32_t num_vertices = 0;
  std::uint32_t num_edges = 0;
  std::vector<Vertex> sources;  ///< valid query sources, in oracle order
};

struct QueryBatchFrame {
  std::uint64_t request_id = 0;
  /// v2 target oracle; nullopt = the connection's HELLO default (the only
  /// shape a v1 client can produce).
  std::optional<std::uint64_t> digest;
  /// Relative deadline budget in ms; nullopt = no deadline. The receiver
  /// pins it to an absolute instant at decode time.
  std::optional<std::uint32_t> deadline_ms;
  std::vector<service::Query> queries;
};

/// How REGISTER_GRAPH names the graph to build.
enum class RegisterMode : std::uint32_t {
  kEdgeList = 1,      ///< inline upload: n, m, sources, edge endpoints
  kSnapshotPath = 2,  ///< path to a v1/v2 snapshot readable by the server
};

struct RegisterGraphFrame {
  std::uint64_t request_id = 0;
  RegisterMode mode = RegisterMode::kEdgeList;
  // kEdgeList payload:
  std::uint64_t seed = 0;  ///< solver Config::seed for the build
  std::uint32_t num_vertices = 0;
  std::vector<Vertex> sources;
  std::vector<std::pair<Vertex, Vertex>> edges;
  // kSnapshotPath payload:
  std::string snapshot_path;
};

struct RegisterAckFrame {
  std::uint64_t request_id = 0;
  std::uint64_t digest = 0;
  registry::OracleState state = registry::OracleState::kUnknown;
  std::uint32_t num_vertices = 0;
  std::uint32_t num_edges = 0;
  std::vector<Vertex> sources;
};

/// One oracle in an ORACLE_LIST reply.
struct OracleListEntry {
  std::uint64_t digest = 0;
  registry::OracleState state = registry::OracleState::kUnknown;
  std::uint32_t num_vertices = 0;
  std::uint32_t num_edges = 0;
  std::uint32_t inflight_batches = 0;
  std::uint64_t queries_answered = 0;
  std::uint64_t footprint_bytes = 0;
  std::vector<Vertex> sources;
  /// Failure reason for kFailed entries ("" otherwise); travels after the
  /// source list, length in the entry's previously-reserved u32.
  std::string error;
};

struct OracleListFrame {
  std::uint64_t request_id = 0;
  std::vector<OracleListEntry> oracles;
};

struct UnregisterFrame {
  std::uint64_t request_id = 0;
  std::uint64_t digest = 0;
};

struct AnswerBatchFrame {
  std::uint64_t request_id = 0;
  std::vector<Dist> answers;
};

// ----- v3 workload frames ---------------------------------------------------
// The three request frames reuse QUERY_BATCH's envelope (request id, count,
// flag word, optional digest, optional deadline); only the per-query record
// differs. Their reply frames carry one result per query, in query order.

struct VitalityBatchFrame {
  std::uint64_t request_id = 0;
  std::optional<std::uint64_t> digest;
  std::optional<std::uint32_t> deadline_ms;
  std::vector<service::VitalityQuery> queries;
};

struct VitalityAnswerFrame {
  std::uint64_t request_id = 0;
  std::vector<service::VitalityResult> results;
};

struct VickreyBatchFrame {
  std::uint64_t request_id = 0;
  std::optional<std::uint64_t> digest;
  std::optional<std::uint32_t> deadline_ms;
  std::vector<service::VickreyQuery> queries;
};

struct VickreyAnswerFrame {
  std::uint64_t request_id = 0;
  std::vector<service::VickreyResult> results;
};

struct KFailBatchFrame {
  std::uint64_t request_id = 0;
  std::optional<std::uint64_t> digest;
  std::optional<std::uint32_t> deadline_ms;
  std::vector<service::KFailQuery> queries;
};

/// One u32 distance per query — ANSWER_BATCH's payload shape under its own
/// frame type, so a pipelined client can pair replies to request kinds.
struct KFailAnswerFrame {
  std::uint64_t request_id = 0;
  std::vector<Dist> answers;
};

struct ErrorFrame {
  std::uint64_t request_id = 0;  ///< 0 = connection-level, close follows
  std::string message;
};

// ----- v4 observability frames ---------------------------------------------
// STATS_SNAPSHOT is a typed dump of an obs::MetricsSnapshot: counter and
// gauge samples by registry name, histograms by (name, stage label) with
// only the nonzero buckets on the wire (bucket geometry is fixed — see
// obs/metrics.hpp bucket_index/bucket_upper_ns — so indices suffice).

struct StatsCounter {
  std::string name;
  std::uint64_t value = 0;
};

struct StatsGauge {
  std::string name;
  std::int64_t value = 0;
};

struct StatsHistogram {
  std::string name;   ///< registry base name, e.g. "query_latency"
  std::string label;  ///< stage label value; "" = unlabelled
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  /// (bucket index, count) for every nonzero bucket, ascending index.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
};

struct StatsSnapshotFrame {
  std::uint64_t request_id = 0;
  std::vector<StatsCounter> counters;
  std::vector<StatsGauge> gauges;
  std::vector<StatsHistogram> histograms;
};

// ----- encoding ------------------------------------------------------------
// Each encoder appends one complete frame (header + payload) to `out`, so
// several frames can be gathered into one write.

void append_hello(std::vector<std::uint8_t>& out, const HelloInfo& hello);
/// `digest` targets a specific registered oracle; nullopt emits the
/// v1-compatible shape (flags == 0, no digest field). `deadline_ms` adds a
/// relative deadline (flag bit 1); nullopt keeps the legacy layout.
void append_query_batch(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                        std::span<const service::Query> queries,
                        std::optional<std::uint64_t> digest = std::nullopt,
                        std::optional<std::uint32_t> deadline_ms = std::nullopt);
void append_answer_batch(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                         std::span<const Dist> answers);
void append_error(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                  std::string_view message);
void append_register_graph(std::vector<std::uint8_t>& out, const RegisterGraphFrame& reg);
void append_register_ack(std::vector<std::uint8_t>& out, const RegisterAckFrame& ack);
void append_list_oracles(std::vector<std::uint8_t>& out, std::uint64_t request_id);
void append_oracle_list(std::vector<std::uint8_t>& out, const OracleListFrame& list);
void append_unregister(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                       std::uint64_t digest);
/// BUSY shares the ERROR payload shape (request id + message).
void append_busy(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                 std::string_view message);
// v3 workload frames. The batch encoders take the same optional digest /
// deadline pair as append_query_batch and set the same flag bits.
void append_vitality_batch(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                           std::span<const service::VitalityQuery> queries,
                           std::optional<std::uint64_t> digest = std::nullopt,
                           std::optional<std::uint32_t> deadline_ms = std::nullopt);
void append_vitality_answer(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                            std::span<const service::VitalityResult> results);
void append_vickrey_batch(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                          std::span<const service::VickreyQuery> queries,
                          std::optional<std::uint64_t> digest = std::nullopt,
                          std::optional<std::uint32_t> deadline_ms = std::nullopt);
void append_vickrey_answer(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                           std::span<const service::VickreyResult> results);
void append_kfail_batch(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                        std::span<const service::KFailQuery> queries,
                        std::optional<std::uint64_t> digest = std::nullopt,
                        std::optional<std::uint32_t> deadline_ms = std::nullopt);
void append_kfail_answer(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                         std::span<const Dist> answers);
// v4 observability frames. STATS_REQUEST carries just the request id.
void append_stats_request(std::vector<std::uint8_t>& out, std::uint64_t request_id);
void append_stats_snapshot(std::vector<std::uint8_t>& out, const StatsSnapshotFrame& stats);

// ----- payload decoding ----------------------------------------------------
// Throw ProtocolError when the payload size does not match its own counts.

HelloInfo decode_hello(std::span<const std::uint8_t> payload);
QueryBatchFrame decode_query_batch(std::span<const std::uint8_t> payload);
AnswerBatchFrame decode_answer_batch(std::span<const std::uint8_t> payload);
ErrorFrame decode_error(std::span<const std::uint8_t> payload);
RegisterGraphFrame decode_register_graph(std::span<const std::uint8_t> payload);
RegisterAckFrame decode_register_ack(std::span<const std::uint8_t> payload);
/// LIST_ORACLES carries just the request id.
std::uint64_t decode_list_oracles(std::span<const std::uint8_t> payload);
OracleListFrame decode_oracle_list(std::span<const std::uint8_t> payload);
UnregisterFrame decode_unregister(std::span<const std::uint8_t> payload);
// v3 workload decoders. Beyond size consistency these validate the
// requests themselves: k == 0 or k > service::kMaxTopKVital, a failure set
// larger than service::kMaxKFailEdges, and duplicate edges within one
// failure set are all ProtocolError — rejected before any allocation.
VitalityBatchFrame decode_vitality_batch(std::span<const std::uint8_t> payload);
VitalityAnswerFrame decode_vitality_answer(std::span<const std::uint8_t> payload);
VickreyBatchFrame decode_vickrey_batch(std::span<const std::uint8_t> payload);
VickreyAnswerFrame decode_vickrey_answer(std::span<const std::uint8_t> payload);
KFailBatchFrame decode_kfail_batch(std::span<const std::uint8_t> payload);
KFailAnswerFrame decode_kfail_answer(std::span<const std::uint8_t> payload);
/// STATS_REQUEST carries just the request id.
std::uint64_t decode_stats_request(std::span<const std::uint8_t> payload);
StatsSnapshotFrame decode_stats_snapshot(std::span<const std::uint8_t> payload);

/// Incremental frame reassembly over a byte stream.
///
/// feed() whatever the socket produced — any split, down to one byte at a
/// time — then call next() until it returns nullopt. Validation order per
/// frame: magic, length cap, completeness, checksum; the first violation
/// throws ProtocolError and the decoder must be discarded with its
/// connection (a checksummed stream cannot be re-synchronized reliably).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::span<const std::uint8_t> data);

  /// Next complete frame, or nullopt until more bytes arrive.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
};

}  // namespace msrp::net
