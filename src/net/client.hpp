/// \file
/// Client side of the wire protocol: a blocking-socket library for callers
/// and load generators.
///
/// One Client owns one TCP connection: connect() dials, performs the HELLO
/// handshake (version check, oracle identity capture), and then batches
/// flow. Two call shapes share the connection:
///
///   * query_batch() — the synchronous round trip: send one batch, block
///     until its answer arrives;
///   * send() / wait_any() / wait(id) — explicit pipelining: send() writes a
///     batch and returns its request id immediately, any number may be in
///     flight, and the waits collect completed batches in whatever order
///     the server finishes them (answers for other ids are buffered, never
///     lost). This is the shape the msrp_client load generator drives.
///
/// Protocol v2 adds registry control: register_graph() /
/// register_snapshot_path() upload or name a graph and block until the
/// server's oracle is built (minutes for big graphs — size the socket's
/// patience accordingly), list_oracles() enumerates what is resident, and
/// unregister() retires a digest. Batches may target any registered oracle
/// by passing its digest to send()/query_batch(); without one the
/// connection's HELLO default answers, exactly as in v1. Control calls
/// interleave freely with pipelined batches — answers arriving during a
/// control wait are buffered for their own wait() to find. A v1 server
/// (HELLO version 1) works unchanged as long as no v2 feature is used.
///
/// A server-reported batch failure (ERROR frame with our id) surfaces as a
/// thrown std::runtime_error from the wait that collects it; an
/// admission-control rejection (BUSY frame) surfaces as BusyError — the
/// batch did not run and an identical resend is safe after backing off. A
/// connection-level ERROR (id 0) or any framing violation additionally
/// marks the connection dead. reconnect() re-dials and re-handshakes —
/// in-flight ids are lost (their batches die with the old socket) — and
/// with ClientOptions::auto_reconnect a send() on a dead connection does
/// this transparently when nothing is in flight.
///
/// ClientOptions::resend_on_reconnect goes further: QUERY_BATCH is
/// idempotent (same oracle, same queries, same answers), so when the
/// connection drops with batches in flight the client re-dials and replays
/// every uncollected batch frame verbatim — same ids — and the waits
/// proceed as if nothing happened. Control frames are never replayed
/// (REGISTER_GRAPH is not idempotent); a drop during a control call is an
/// error.
///
/// Protocol v3 adds the typed workload opcodes: send_vitality() /
/// send_vickrey() / send_kfail() pipeline exactly like send() — same ids,
/// same digest targeting, same wire deadlines, same BUSY/ERROR surface —
/// and their waits return typed results instead of raw distances. Every
/// workload frame is idempotent, so resend_on_reconnect replays them
/// verbatim alongside point batches. The typed sends throw when the server
/// announced a version below 3 (its dispatcher would fail the connection
/// on the unknown opcode); everything else on this class works against a
/// v1/v2 server unchanged.
///
/// Protocol v4 adds observability: stats() performs a STATS_REQUEST /
/// STATS_SNAPSHOT control round trip and returns the server's typed
/// metrics dump — every counter, gauge, and latency histogram in its
/// process registry, histograms as sparse (bucket index, count) pairs over
/// the fixed obs/metrics.hpp geometry, so percentiles are derivable
/// client-side without shipping 136 buckets per series. Like the other
/// control calls it interleaves freely with pipelined batches and throws
/// against a server that announced a version below 4.
///
/// Instances are not thread-safe; give each thread its own Client (the
/// load generator opens one per connection by design).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/protocol.hpp"
#include "service/query.hpp"
#include "util/deadline.hpp"
#include "util/distance.hpp"

namespace msrp::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-dial connect timeout.
  unsigned connect_timeout_ms = 5000;
  /// Extra dial attempts before connect() gives up — lets a client start
  /// before its server finishes binding (CI does exactly this).
  unsigned connect_retries = 0;
  unsigned retry_delay_ms = 200;
  /// Re-dial transparently when send() finds the connection dead and no
  /// batches are in flight.
  bool auto_reconnect = false;
  /// On connection loss with batches in flight: re-dial and replay every
  /// uncollected QUERY_BATCH with its original id (idempotent, so answers
  /// are identical). Implies nothing for control calls — those fail.
  bool resend_on_reconnect = false;
  /// Local wait bound for batches sent with a deadline: a wait gives up
  /// (DeadlineError, socket closed — the orphaned reply could never be
  /// reconciled) this many ms after the batch's own deadline passes with
  /// no reply, so a dead or wedged server cannot park the client forever.
  /// Batches sent without a deadline keep the unbounded legacy wait.
  unsigned deadline_grace_ms = 500;
};

/// One completed batch collected by wait_any().
struct BatchAnswer {
  std::uint64_t request_id = 0;
  std::vector<Dist> answers;
};

/// The server refused a batch or a registration under admission control
/// (BUSY frame). Nothing ran; retry after a backoff.
class BusyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The server answered DEADLINE_EXCEEDED: the batch's end-to-end budget
/// ran out somewhere in the pipeline (dispatch queue, service, or shard
/// router). The batch produced no answers; a resend with a fresh budget is
/// safe.
class DeadlineError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Retry schedule for query_batch_retry(): exponential backoff with
/// deterministic jitter, bounded by attempts and an overall deadline.
struct RetryPolicy {
  /// Overall budget for the call, across every attempt and backoff
  /// (0 = unbounded). Each attempt's wire deadline is the time remaining.
  std::uint32_t deadline_ms = 0;
  /// Total attempts, first try included (clamped up to 1).
  unsigned max_attempts = 3;
  unsigned initial_backoff_ms = 10;
  double multiplier = 2.0;
  unsigned max_backoff_ms = 1000;
  /// +/- fraction applied to each backoff, derived deterministically from
  /// (seed, attempt) — no global RNG, so tests can pin exact schedules.
  double jitter = 0.2;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;

  /// The pause before attempt `attempt` (1-based; attempt 0 is the first
  /// try and never waits). Pure function of the policy fields.
  std::chrono::milliseconds backoff_for(unsigned attempt) const;
};

class Client {
 public:
  /// Dials and handshakes; throws std::runtime_error when the server is
  /// unreachable (after retries) or speaks a protocol version outside
  /// [kMinProtocolVersion, kProtocolVersion].
  explicit Client(ClientOptions opts);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Server identity from the handshake (oracle digest, n, m, sources).
  const HelloInfo& hello() const { return hello_; }

  /// The protocol version the server announced (may be lower than ours).
  std::uint32_t server_version() const { return hello_.version; }

  /// True when the server advertises registry support (HELLO flag).
  bool registry_enabled() const { return (hello_.flags & kHelloRegistryEnabled) != 0; }

  bool connected() const { return fd_ >= 0; }

  /// Batches sent but not yet collected by a wait.
  std::size_t inflight() const {
    return inflight_.size() + ready_.size() + ready_vitality_.size() + ready_vickrey_.size() +
           ready_kfail_.size() + failed_.size() + busy_.size();
  }

  /// Drops the current socket (in-flight ids are lost) and dials fresh.
  void reconnect();

  /// Writes one QUERY_BATCH and returns its request id without waiting.
  /// `digest` targets a registered oracle (v2); nullopt sends the
  /// v1-compatible shape answered by the HELLO default oracle.
  /// `deadline_ms` is the batch's end-to-end budget, carried on the wire;
  /// the server answers DEADLINE_EXCEEDED instead of running past it.
  std::uint64_t send(std::span<const service::Query> queries,
                     std::optional<std::uint64_t> digest = std::nullopt,
                     std::optional<std::uint32_t> deadline_ms = std::nullopt);

  /// Blocks for the next completed batch, in server-completion order.
  /// Throws std::runtime_error if the server reported that batch failed
  /// (DeadlineError when it reported DEADLINE_EXCEEDED), BusyError if it
  /// was rejected by admission control.
  BatchAnswer wait_any();

  /// Blocks until the batch with this id completes (others are buffered).
  std::vector<Dist> wait(std::uint64_t request_id);

  /// send() + wait(): the synchronous round trip.
  std::vector<Dist> query_batch(std::span<const service::Query> queries,
                                std::optional<std::uint64_t> digest = std::nullopt,
                                std::optional<std::uint32_t> deadline_ms = std::nullopt);

  /// query_batch with a retry loop: BUSY rejections, connection loss, and
  /// DEADLINE_EXCEEDED replies are retried on the policy's backoff
  /// schedule (QUERY_BATCH is idempotent, so a resend is always safe);
  /// any other server-reported failure rethrows immediately. The policy's
  /// deadline bounds the whole call, backoffs included, and each attempt
  /// carries the remaining budget on the wire.
  std::vector<Dist> query_batch_retry(std::span<const service::Query> queries,
                                      const RetryPolicy& policy,
                                      std::optional<std::uint64_t> digest = std::nullopt);

  // ----- workload opcodes (protocol v3) -----------------------------------
  // Same pipelining contract as send()/wait(): any mix of point and typed
  // batches may be in flight at once, replies pair by request id AND frame
  // type (a reply of the wrong kind for an id is a protocol violation), and
  // wait_any() keeps returning point batches only — typed batches are
  // collected by their own waits. All typed sends throw std::runtime_error
  // against a server that announced a version below 3.

  /// Writes one VITALITY_BATCH (top-k most-vital edges per query) and
  /// returns its request id without waiting.
  std::uint64_t send_vitality(std::span<const service::VitalityQuery> queries,
                              std::optional<std::uint64_t> digest = std::nullopt,
                              std::optional<std::uint32_t> deadline_ms = std::nullopt);

  /// Writes one VICKREY_BATCH (per-edge Vickrey payments per query).
  std::uint64_t send_vickrey(std::span<const service::VickreyQuery> queries,
                             std::optional<std::uint64_t> digest = std::nullopt,
                             std::optional<std::uint32_t> deadline_ms = std::nullopt);

  /// Writes one KFAIL_BATCH (d(s, t) avoiding an explicit edge set per
  /// query, |F| <= service::kMaxKFailEdges).
  std::uint64_t send_kfail(std::span<const service::KFailQuery> queries,
                           std::optional<std::uint64_t> digest = std::nullopt,
                           std::optional<std::uint32_t> deadline_ms = std::nullopt);

  /// Blocks until the vitality batch with this id completes; one result per
  /// query, in query order. Same throw surface as wait().
  std::vector<service::VitalityResult> wait_vitality(std::uint64_t request_id);

  /// Blocks until the Vickrey batch with this id completes.
  std::vector<service::VickreyResult> wait_vickrey(std::uint64_t request_id);

  /// Blocks until the k-fail batch with this id completes; one distance per
  /// query (kInfDist = unreachable once F is removed).
  std::vector<Dist> wait_kfail(std::uint64_t request_id);

  /// send_vitality() + wait_vitality(): the synchronous round trip.
  std::vector<service::VitalityResult> vitality_batch(
      std::span<const service::VitalityQuery> queries,
      std::optional<std::uint64_t> digest = std::nullopt,
      std::optional<std::uint32_t> deadline_ms = std::nullopt);

  std::vector<service::VickreyResult> vickrey_batch(
      std::span<const service::VickreyQuery> queries,
      std::optional<std::uint64_t> digest = std::nullopt,
      std::optional<std::uint32_t> deadline_ms = std::nullopt);

  std::vector<Dist> kfail_batch(std::span<const service::KFailQuery> queries,
                                std::optional<std::uint64_t> digest = std::nullopt,
                                std::optional<std::uint32_t> deadline_ms = std::nullopt);

  /// Retry wrappers with query_batch_retry's exact contract — the typed
  /// frames are just as idempotent, so the same verdicts are retried.
  std::vector<service::VitalityResult> vitality_batch_retry(
      std::span<const service::VitalityQuery> queries, const RetryPolicy& policy,
      std::optional<std::uint64_t> digest = std::nullopt);

  std::vector<service::VickreyResult> vickrey_batch_retry(
      std::span<const service::VickreyQuery> queries, const RetryPolicy& policy,
      std::optional<std::uint64_t> digest = std::nullopt);

  std::vector<Dist> kfail_batch_retry(std::span<const service::KFailQuery> queries,
                                      const RetryPolicy& policy,
                                      std::optional<std::uint64_t> digest = std::nullopt);

  // ----- registry control (protocol v2) -----------------------------------

  /// Uploads an edge list and blocks until the server's oracle is ready.
  /// `seed` is the solver Config::seed for the build; nullopt uses the
  /// library default, which is what local differential tests build with.
  /// Returns the ack carrying the oracle's content digest — the handle
  /// every subsequent batch targets. Throws std::runtime_error when the
  /// server rejects or the build fails, BusyError when admission says no.
  RegisterAckFrame register_graph(std::uint32_t num_vertices,
                                  std::span<const std::pair<Vertex, Vertex>> edges,
                                  std::span<const Vertex> sources,
                                  std::optional<std::uint64_t> seed = std::nullopt);

  /// Asks the server to load a snapshot from its own filesystem (the path
  /// is resolved server-side). Same blocking contract as register_graph.
  RegisterAckFrame register_snapshot_path(const std::string& path);

  /// Enumerates the server's resident oracles (sorted by digest).
  std::vector<OracleListEntry> list_oracles();

  /// Retires a digest. The returned state is kUnregistered (gone now) or
  /// kExpiring (draining in-flight batches, gone when they finish).
  RegisterAckFrame unregister(std::uint64_t digest);

  // ----- observability (protocol v4) ---------------------------------------

  /// Dumps the server's metrics registry: a STATS_REQUEST / STATS_SNAPSHOT
  /// round trip. Counters and gauges carry their registry names verbatim
  /// ("server.batches_received"); histogram buckets are sparse over the
  /// shared obs geometry. Throws std::runtime_error against a server that
  /// announced a version below 4.
  StatsSnapshotFrame stats();

 private:
  void dial();
  void close_socket();
  /// True when a dropped connection was successfully re-dialed and every
  /// uncollected batch replayed; the caller restarts its read/write.
  bool try_resend();
  void write_all(std::span<const std::uint8_t> bytes);
  /// Reads socket bytes into the decoder until one frame is complete.
  Frame read_frame();
  /// Reads one frame and routes it. Batch traffic (ANSWER_BATCH, per-id
  /// ERROR/BUSY for an in-flight batch) lands in ready_/failed_/busy_ and
  /// returns nullopt; a control reply carrying `control_id` (nonzero) is
  /// returned to the caller. Control-shaped frames with no control call
  /// pending are protocol violations.
  std::optional<Frame> route_one(std::uint64_t control_id);
  /// Performs one control round trip: writes `bytes`, blocks for the reply
  /// to `control_id`, decodes ERROR/BUSY into the documented throws.
  Frame control_round_trip(std::uint64_t control_id, std::vector<std::uint8_t> bytes);
  /// Shared auto_reconnect gate used by send() and the control calls.
  void ensure_connected();
  /// Shared tail of every send: registers the already-encoded frame under
  /// `id` (expecting `count` replies of `expect`'s kind), arms the wire
  /// deadline, writes — rolling all of it back when the write fails.
  std::uint64_t track_and_write(std::uint64_t id, std::vector<std::uint8_t> bytes,
                                FrameType expect, std::size_t count,
                                std::optional<std::uint32_t> deadline_ms);
  /// Throws std::runtime_error unless the server announced protocol >= 3.
  void require_v3(const char* opcode) const;
  /// Throws std::runtime_error unless the server announced protocol >= 4.
  void require_v4(const char* opcode) const;
  /// Common per-pass body of the typed waits: throws the buffered failure
  /// for `request_id` if one arrived, else blocks for one more frame.
  void wait_step(std::uint64_t request_id);
  /// On a reply frame: looks up `request_id` expecting `got`-typed replies
  /// owing `answered` entries; erases the in-flight record on match, fails
  /// the connection on any mismatch.
  void settle_inflight(std::uint64_t request_id, FrameType got, std::size_t answered);

  ClientOptions opts_;
  int fd_ = -1;
  FrameDecoder decoder_;
  HelloInfo hello_;
  std::uint64_t next_id_ = 1;
  bool control_pending_ = false;  // a control round trip is on the wire
  bool dialing_ = false;          // inside dial(); resend must not recurse
  /// One batch on the wire: which reply frame kind must answer it and how
  /// many entries that reply owes us.
  struct Inflight {
    FrameType expect = FrameType::kAnswerBatch;
    std::size_t count = 0;
  };
  // Ids on the wire — a reply whose id, frame kind, or size does not match
  // something we sent is treated as a protocol violation, never returned
  // to the caller.
  std::unordered_map<std::uint64_t, Inflight> inflight_;
  // Verbatim frame bytes of in-flight batches, kept only when
  // resend_on_reconnect is set; ordered so a replay preserves send order.
  std::map<std::uint64_t, std::vector<std::uint8_t>> pending_frames_;
  // Answers (or server-reported errors / busy rejections) that arrived
  // while waiting for a different id. Typed replies buffer in their own
  // maps so a wait can never hand back the wrong result kind.
  std::unordered_map<std::uint64_t, BatchAnswer> ready_;
  std::unordered_map<std::uint64_t, std::vector<service::VitalityResult>> ready_vitality_;
  std::unordered_map<std::uint64_t, std::vector<service::VickreyResult>> ready_vickrey_;
  std::unordered_map<std::uint64_t, std::vector<Dist>> ready_kfail_;
  std::unordered_map<std::uint64_t, std::string> failed_;
  std::unordered_map<std::uint64_t, std::string> busy_;
  // Local give-up instant (wire deadline + grace) per in-flight batch that
  // was sent with a deadline; bounds the waits via recv_bound_.
  std::unordered_map<std::uint64_t, Deadline> wire_deadlines_;
  // The bound the current wait imposes on read_frame (kNoDeadline = wait
  // forever); set by wait()/wait_any() per pass, cleared for control calls.
  Deadline recv_bound_ = kNoDeadline;
};

}  // namespace msrp::net
