/// \file
/// Client side of the wire protocol: a blocking-socket library for callers
/// and load generators.
///
/// One Client owns one TCP connection: connect() dials, performs the HELLO
/// handshake (version check, oracle identity capture), and then batches
/// flow. Two call shapes share the connection:
///
///   * query_batch() — the synchronous round trip: send one batch, block
///     until its answer arrives;
///   * send() / wait_any() / wait(id) — explicit pipelining: send() writes a
///     batch and returns its request id immediately, any number may be in
///     flight, and the waits collect completed batches in whatever order
///     the server finishes them (answers for other ids are buffered, never
///     lost). This is the shape the msrp_client load generator drives.
///
/// A server-reported batch failure (ERROR frame with our id) surfaces as a
/// thrown std::runtime_error from the wait that collects it; a
/// connection-level ERROR (id 0) or any framing violation additionally
/// marks the connection dead. reconnect() re-dials and re-handshakes —
/// in-flight ids are lost (their batches die with the old socket) — and
/// with ClientOptions::auto_reconnect a send() on a dead connection does
/// this transparently when nothing is in flight.
///
/// Instances are not thread-safe; give each thread its own Client (the
/// load generator opens one per connection by design).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "service/query.hpp"
#include "util/distance.hpp"

namespace msrp::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-dial connect timeout.
  unsigned connect_timeout_ms = 5000;
  /// Extra dial attempts before connect() gives up — lets a client start
  /// before its server finishes binding (CI does exactly this).
  unsigned connect_retries = 0;
  unsigned retry_delay_ms = 200;
  /// Re-dial transparently when send() finds the connection dead and no
  /// batches are in flight.
  bool auto_reconnect = false;
};

/// One completed batch collected by wait_any().
struct BatchAnswer {
  std::uint64_t request_id = 0;
  std::vector<Dist> answers;
};

class Client {
 public:
  /// Dials and handshakes; throws std::runtime_error when the server is
  /// unreachable (after retries) or speaks an unknown protocol version.
  explicit Client(ClientOptions opts);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Server identity from the handshake (oracle digest, n, m, sources).
  const HelloInfo& hello() const { return hello_; }

  bool connected() const { return fd_ >= 0; }

  /// Batches sent but not yet collected by a wait.
  std::size_t inflight() const { return inflight_.size() + ready_.size() + failed_.size(); }

  /// Drops the current socket (in-flight ids are lost) and dials fresh.
  void reconnect();

  /// Writes one QUERY_BATCH and returns its request id without waiting.
  std::uint64_t send(std::span<const service::Query> queries);

  /// Blocks for the next completed batch, in server-completion order.
  /// Throws std::runtime_error if the server reported that batch failed.
  BatchAnswer wait_any();

  /// Blocks until the batch with this id completes (others are buffered).
  std::vector<Dist> wait(std::uint64_t request_id);

  /// send() + wait(): the synchronous round trip.
  std::vector<Dist> query_batch(std::span<const service::Query> queries);

 private:
  void dial();
  void close_socket();
  void write_all(std::span<const std::uint8_t> bytes);
  /// Reads socket bytes into the decoder until one frame is complete.
  Frame read_frame();
  /// Reads frames until some batch completes; returns it.
  BatchAnswer collect_next();

  ClientOptions opts_;
  int fd_ = -1;
  FrameDecoder decoder_;
  HelloInfo hello_;
  std::uint64_t next_id_ = 1;
  // Ids on the wire, with the answer count each one owes us — a reply
  // whose id or size does not match something we sent is treated as a
  // protocol violation, never returned to the caller.
  std::unordered_map<std::uint64_t, std::size_t> inflight_;
  // Answers (or server-reported errors) that arrived while waiting for a
  // different id.
  std::unordered_map<std::uint64_t, BatchAnswer> ready_;
  std::unordered_map<std::uint64_t, std::string> failed_;
};

}  // namespace msrp::net
