// Synthetic graph generators.
//
// The paper is evaluated on abstract undirected unweighted graphs; these
// families exercise the regimes its analysis distinguishes (see DESIGN.md,
// "Substitutions"): dense/sparse random graphs, high-diameter grids and
// paths (many far edges), chorded paths (long detours -> long SUFFIX(P)),
// and the Section 9 BMM gadget.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace msrp::gen {

/// Erdos–Renyi G(n, p). May be disconnected.
Graph erdos_renyi(Vertex n, double p, Rng& rng);

/// Erdos–Renyi with a random Hamiltonian-path backbone, guaranteeing
/// connectivity while keeping edge density ~ p. This is the workhorse
/// family for the benchmarks (replacement paths are only interesting when
/// most of them exist).
Graph connected_gnp(Vertex n, double p, Rng& rng);

/// Random graph with expected average degree `avg_deg` plus backbone.
Graph connected_avg_degree(Vertex n, double avg_deg, Rng& rng);

/// rows x cols grid; vertex (r, c) is r*cols + c. Diameter rows+cols-2.
Graph grid(Vertex rows, Vertex cols);

/// Simple path 0-1-...-n-1.
Graph path(Vertex n);

/// Cycle 0-1-...-n-1-0.
Graph cycle(Vertex n);

/// Path 0..n-1 plus `chords` random long-range chords. High diameter with
/// occasional shortcuts: produces replacement paths with very long suffixes
/// (the far-edge / scaling-trick regime of Section 6).
Graph path_with_chords(Vertex n, std::uint32_t chords, Rng& rng);

/// Two cliques of size k joined by a path of length `bridge`. Every bridge
/// edge is a cut edge: replacement paths across it do not exist
/// (d = infinity), exercising unreachability handling.
Graph barbell(Vertex clique, Vertex bridge);

/// Complete graph K_n.
Graph complete(Vertex n);

/// Star with `rays` paths of length `ray_len` glued at a hub; replacement
/// paths between rays must re-cross the hub.
Graph star_of_paths(Vertex rays, Vertex ray_len);

/// Uniform random spanning tree on n vertices (random parent attachment).
Graph random_tree(Vertex n, Rng& rng);

/// d-dimensional hypercube: 2^d vertices, adjacency = Hamming distance 1.
/// Diameter d; every edge has exponentially many replacements — the
/// best-case topology for replacement paths.
Graph hypercube(std::uint32_t dim);

/// Random d-regular-ish graph via the configuration model with rejection of
/// self-loops/multi-edges (residual stubs may lower a few degrees by one).
/// n * d must be even. Expander-like: constant diameter whp — the extreme
/// "every edge is near" regime.
Graph random_regular(Vertex n, std::uint32_t d, Rng& rng);

/// Complete bipartite-ish random graph: parts of size a and b, each cross
/// edge present with probability p. Bipartite, so replacement distances
/// preserve parity (see property tests).
Graph random_bipartite(Vertex a, Vertex b, double p, Rng& rng);

}  // namespace msrp::gen
