// Plain-text edge-list serialization.
//
// Format: first line "n m", then m lines "u v". Lines starting with '#' are
// comments. This is the common denominator for importing external graphs
// into the benchmark harness and for golden-file tests.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace msrp::io {

/// Writes the graph; inverse of read_edge_list.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses a graph; throws std::invalid_argument on malformed input.
Graph read_edge_list(std::istream& is);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);

/// Stable 64-bit digest of the graph structure (n, m, edge list in id
/// order). Two graphs digest equal iff they have identical vertex counts
/// and identically-numbered edges — the identity key for the service
/// layer's oracle cache.
std::uint64_t graph_digest(const Graph& g);

}  // namespace msrp::io
