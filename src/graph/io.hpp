// Plain-text edge-list serialization.
//
// Format: first line "n m", then m lines "u v". Lines starting with '#' are
// comments. This is the common denominator for importing external graphs
// into the benchmark harness and for golden-file tests.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace msrp::io {

/// Writes the graph; inverse of read_edge_list.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses a graph; throws std::invalid_argument on malformed input.
Graph read_edge_list(std::istream& is);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);

}  // namespace msrp::io
