#include "graph/properties.hpp"

#include <algorithm>
#include <queue>

namespace msrp {

std::vector<std::uint32_t> connected_components(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<std::uint32_t> comp(n, static_cast<std::uint32_t>(-1));
  std::uint32_t next = 0;
  std::vector<Vertex> stack;
  for (Vertex s = 0; s < n; ++s) {
    if (comp[s] != static_cast<std::uint32_t>(-1)) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (const Arc& a : g.neighbors(v)) {
        if (comp[a.to] == static_cast<std::uint32_t>(-1)) {
          comp[a.to] = next;
          stack.push_back(a.to);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::uint32_t num_components(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  const auto comp = connected_components(g);
  return *std::max_element(comp.begin(), comp.end()) + 1;
}

bool is_connected(const Graph& g) { return g.num_vertices() <= 1 || num_components(g) == 1; }

Dist eccentricity(const Graph& g, Vertex v) {
  const Vertex n = g.num_vertices();
  MSRP_REQUIRE(v < n, "vertex out of range");
  std::vector<Dist> dist(n, kInfDist);
  std::queue<Vertex> q;
  dist[v] = 0;
  q.push(v);
  Dist ecc = 0;
  Vertex seen = 1;
  while (!q.empty()) {
    const Vertex u = q.front();
    q.pop();
    ecc = std::max(ecc, dist[u]);
    for (const Arc& a : g.neighbors(u)) {
      if (dist[a.to] == kInfDist) {
        dist[a.to] = dist[u] + 1;
        q.push(a.to);
        ++seen;
      }
    }
  }
  return seen == n ? ecc : kInfDist;
}

Dist diameter(const Graph& g) {
  const Vertex n = g.num_vertices();
  if (n == 0) return 0;
  Dist best = 0;
  for (Vertex v = 0; v < n; ++v) {
    const Dist e = eccentricity(g, v);
    if (e == kInfDist) return kInfDist;
    best = std::max(best, e);
  }
  return best;
}

std::vector<EdgeId> bridges(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<EdgeId> out;
  std::vector<std::uint32_t> disc(n, 0), low(n, 0);
  std::uint32_t timer = 0;

  // Iterative DFS; each frame remembers the arc used to enter the vertex so
  // we skip that single edge (not all parallel paths) when updating low.
  struct Frame {
    Vertex v;
    EdgeId in_edge;
    std::size_t next;  // index into neighbors(v)
  };
  std::vector<Frame> stack;
  for (Vertex s = 0; s < n; ++s) {
    if (disc[s] != 0) continue;
    disc[s] = low[s] = ++timer;
    stack.push_back({s, kNoEdge, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto adj = g.neighbors(f.v);
      if (f.next < adj.size()) {
        const Arc a = adj[f.next++];
        if (a.edge == f.in_edge) continue;
        if (disc[a.to] == 0) {
          disc[a.to] = low[a.to] = ++timer;
          stack.push_back({a.to, a.edge, 0});
        } else {
          low[f.v] = std::min(low[f.v], disc[a.to]);
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent = stack.back();
          low[parent.v] = std::min(low[parent.v], low[done.v]);
          if (low[done.v] > disc[parent.v]) out.push_back(done.in_edge);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace msrp
