// Immutable undirected, unweighted graph in CSR (compressed sparse row) form.
//
// This is the substrate every algorithm in the library runs on. Design
// points that the rest of the code relies on:
//
//  * Vertices are 0..n-1 (Vertex = uint32_t). Edges have stable ids
//    0..m-1 (EdgeId); both endpoints' adjacency entries carry the same id,
//    so "remove edge e" and "is this tree edge e?" are O(1) id compares.
//  * Neighbour lists are sorted by (neighbour, edge id). BFS visits them in
//    that order, which makes shortest-path trees canonical: algorithm and
//    brute-force oracle agree on *the* st path for every pair (the paper
//    fixes a shortest-path tree T_s the same way).
//  * Parallel edges and self-loops are rejected at build time: the paper's
//    model is a simple graph and replacement paths around one of two
//    parallel edges are degenerate.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace msrp {

using Vertex = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr Vertex kNoVertex = static_cast<Vertex>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// One adjacency entry: the neighbour and the id of the connecting edge.
struct Arc {
  Vertex to;
  EdgeId edge;

  friend bool operator==(const Arc&, const Arc&) = default;
};

class Graph {
 public:
  /// Builds a graph from an edge list. Duplicate edges (in either
  /// orientation) and self-loops throw std::invalid_argument.
  Graph(Vertex n, const std::vector<std::pair<Vertex, Vertex>>& edges);

  /// Empty graph on n vertices.
  explicit Graph(Vertex n = 0) : Graph(n, {}) {}

  Vertex num_vertices() const { return n_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(endpoints_.size()); }

  /// Sorted adjacency of v.
  std::span<const Arc> neighbors(Vertex v) const {
    MSRP_DCHECK(v < n_, "vertex out of range");
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  std::uint32_t degree(Vertex v) const {
    MSRP_DCHECK(v < n_, "vertex out of range");
    return offsets_[v + 1] - offsets_[v];
  }

  /// Endpoints of edge e as (min, max).
  std::pair<Vertex, Vertex> endpoints(EdgeId e) const {
    MSRP_DCHECK(e < num_edges(), "edge out of range");
    return endpoints_[e];
  }

  /// Edge id joining u and v, or kNoEdge. O(log deg(u)).
  EdgeId find_edge(Vertex u, Vertex v) const;

  bool has_edge(Vertex u, Vertex v) const { return find_edge(u, v) != kNoEdge; }

  /// All edges as (u, v) with u < v, indexed by EdgeId.
  const std::vector<std::pair<Vertex, Vertex>>& edges() const { return endpoints_; }

 private:
  Vertex n_ = 0;
  std::vector<std::uint32_t> offsets_;  // n_+1 entries
  std::vector<Arc> arcs_;               // 2m entries
  std::vector<std::pair<Vertex, Vertex>> endpoints_;
};

/// Incremental edge-list accumulator; produces a Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(Vertex n) : n_(n) {}

  /// Adds undirected edge {u, v}; duplicates are detected at build().
  GraphBuilder& add_edge(Vertex u, Vertex v) {
    MSRP_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
    edges_.emplace_back(u, v);
    return *this;
  }

  /// Appends a fresh vertex and returns its id.
  Vertex add_vertex() { return n_++; }

  Vertex num_vertices() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }

  Graph build() const { return Graph(n_, edges_); }

 private:
  Vertex n_;
  std::vector<std::pair<Vertex, Vertex>> edges_;
};

}  // namespace msrp
