#include "graph/graph.hpp"

#include <algorithm>

namespace msrp {

Graph::Graph(Vertex n, const std::vector<std::pair<Vertex, Vertex>>& edges) : n_(n) {
  endpoints_.reserve(edges.size());
  for (auto [u, v] : edges) {
    MSRP_REQUIRE(u < n && v < n, "edge endpoint out of range");
    MSRP_REQUIRE(u != v, "self-loops are not allowed");
    if (u > v) std::swap(u, v);
    endpoints_.emplace_back(u, v);
  }
  // Detect duplicates via a sorted copy (keeps EdgeId = input order).
  {
    auto sorted = endpoints_;
    std::sort(sorted.begin(), sorted.end());
    MSRP_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                 "parallel edges are not allowed");
  }

  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : endpoints_) {
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  for (Vertex v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];

  arcs_.resize(2 * endpoints_.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < endpoints_.size(); ++e) {
    const auto [u, v] = endpoints_[e];
    arcs_[cursor[u]++] = Arc{v, e};
    arcs_[cursor[v]++] = Arc{u, e};
  }
  for (Vertex v = 0; v < n; ++v) {
    std::sort(arcs_.begin() + offsets_[v], arcs_.begin() + offsets_[v + 1],
              [](const Arc& a, const Arc& b) {
                return a.to != b.to ? a.to < b.to : a.edge < b.edge;
              });
  }
}

EdgeId Graph::find_edge(Vertex u, Vertex v) const {
  MSRP_REQUIRE(u < n_ && v < n_, "vertex out of range");
  const auto adj = neighbors(u);
  const auto it = std::lower_bound(adj.begin(), adj.end(), v,
                                   [](const Arc& a, Vertex x) { return a.to < x; });
  if (it != adj.end() && it->to == v) return it->edge;
  return kNoEdge;
}

}  // namespace msrp
