#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/fnv.hpp"

namespace msrp::io {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges()) os << u << ' ' << v << '\n';
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  auto next_content_line = [&]() -> bool {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  MSRP_REQUIRE(next_content_line(), "edge list: missing header line");
  std::istringstream header(line);
  std::uint64_t n = 0, m = 0;
  MSRP_REQUIRE(static_cast<bool>(header >> n >> m), "edge list: malformed header");
  MSRP_REQUIRE(n <= kNoVertex, "edge list: vertex count too large");

  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    MSRP_REQUIRE(next_content_line(), "edge list: truncated edge section");
    std::istringstream es(line);
    std::uint64_t u = 0, v = 0;
    MSRP_REQUIRE(static_cast<bool>(es >> u >> v), "edge list: malformed edge line");
    MSRP_REQUIRE(u < n && v < n, "edge list: endpoint out of range");
    edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return Graph(static_cast<Vertex>(n), edges);
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  write_edge_list(f, g);
  if (!f) throw std::runtime_error("write failed: " + path);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  return read_edge_list(f);
}

std::uint64_t graph_digest(const Graph& g) {
  std::uint64_t h = fnv::kOffset;
  h = fnv::mix_u64(h, g.num_vertices());
  h = fnv::mix_u64(h, g.num_edges());
  for (const auto& [u, v] : g.edges()) h = fnv::mix_u64(h, (std::uint64_t{u} << 32) | v);
  return h;
}

}  // namespace msrp::io
