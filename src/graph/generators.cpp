#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace msrp::gen {
namespace {

/// Adds G(n,p) edges to `edges`, skipping pairs already in `present`.
void add_gnp_edges(Vertex n, double p, Rng& rng,
                   std::set<std::pair<Vertex, Vertex>>& present,
                   std::vector<std::pair<Vertex, Vertex>>& edges) {
  if (p <= 0.0 || n < 2) return;
  if (p >= 1.0) {
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = u + 1; v < n; ++v) {
        if (present.emplace(u, v).second) edges.emplace_back(u, v);
      }
    }
    return;
  }
  // Geometric skipping (Batagelj–Brandes): O(m) expected, exact G(n,p).
  const double log1mp = std::log1p(-p);
  std::int64_t v = 1, w = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (v < nn) {
    const double r = rng.next_double();
    w += 1 + static_cast<std::int64_t>(std::floor(std::log1p(-r) / log1mp));
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn) {
      auto key = std::make_pair(static_cast<Vertex>(w), static_cast<Vertex>(v));
      if (present.insert(key).second) edges.push_back(key);
    }
  }
}

}  // namespace

Graph erdos_renyi(Vertex n, double p, Rng& rng) {
  std::set<std::pair<Vertex, Vertex>> present;
  std::vector<std::pair<Vertex, Vertex>> edges;
  add_gnp_edges(n, p, rng, present, edges);
  return Graph(n, edges);
}

Graph connected_gnp(Vertex n, double p, Rng& rng) {
  MSRP_REQUIRE(n >= 1, "graph needs at least one vertex");
  // Random Hamiltonian path backbone under a random permutation.
  std::vector<Vertex> perm(n);
  for (Vertex v = 0; v < n; ++v) perm[v] = v;
  rng.shuffle(perm);

  std::set<std::pair<Vertex, Vertex>> present;
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex i = 0; i + 1 < n; ++i) {
    Vertex u = perm[i], v = perm[i + 1];
    if (u > v) std::swap(u, v);
    present.emplace(u, v);
    edges.emplace_back(u, v);
  }
  add_gnp_edges(n, p, rng, present, edges);
  return Graph(n, edges);
}

Graph connected_avg_degree(Vertex n, double avg_deg, Rng& rng) {
  MSRP_REQUIRE(n >= 2, "need at least two vertices");
  const double p = std::min(1.0, avg_deg / static_cast<double>(n - 1));
  return connected_gnp(n, p, rng);
}

Graph grid(Vertex rows, Vertex cols) {
  MSRP_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  GraphBuilder b(rows * cols);
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      const Vertex v = r * cols + c;
      if (c + 1 < cols) b.add_edge(v, v + 1);
      if (r + 1 < rows) b.add_edge(v, v + cols);
    }
  }
  return b.build();
}

Graph path(Vertex n) {
  MSRP_REQUIRE(n >= 1, "path needs at least one vertex");
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle(Vertex n) {
  MSRP_REQUIRE(n >= 3, "cycle needs at least three vertices");
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

Graph path_with_chords(Vertex n, std::uint32_t chords, Rng& rng) {
  MSRP_REQUIRE(n >= 2, "need at least two vertices");
  std::set<std::pair<Vertex, Vertex>> present;
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex v = 0; v + 1 < n; ++v) {
    present.emplace(v, v + 1);
    edges.emplace_back(v, v + 1);
  }
  std::uint32_t added = 0, attempts = 0;
  while (added < chords && attempts < 50 * chords + 100) {
    ++attempts;
    Vertex u = static_cast<Vertex>(rng.next_below(n));
    Vertex v = static_cast<Vertex>(rng.next_below(n));
    if (u > v) std::swap(u, v);
    if (v - u < 2) continue;  // would duplicate a path edge or self-loop
    if (present.emplace(u, v).second) {
      edges.emplace_back(u, v);
      ++added;
    }
  }
  return Graph(n, edges);
}

Graph barbell(Vertex clique, Vertex bridge) {
  MSRP_REQUIRE(clique >= 2, "cliques need at least two vertices");
  const Vertex n = 2 * clique + bridge;
  GraphBuilder b(n);
  const auto add_clique = [&](Vertex base) {
    for (Vertex i = 0; i < clique; ++i) {
      for (Vertex j = i + 1; j < clique; ++j) b.add_edge(base + i, base + j);
    }
  };
  add_clique(0);
  add_clique(clique + bridge);
  // Bridge path: last vertex of clique 1 — bridge vertices — first of clique 2.
  Vertex prev = clique - 1;
  for (Vertex i = 0; i < bridge; ++i) {
    b.add_edge(prev, clique + i);
    prev = clique + i;
  }
  b.add_edge(prev, clique + bridge);
  return b.build();
}

Graph complete(Vertex n) {
  MSRP_REQUIRE(n >= 1, "need at least one vertex");
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph star_of_paths(Vertex rays, Vertex ray_len) {
  MSRP_REQUIRE(rays >= 1 && ray_len >= 1, "need at least one ray of length one");
  GraphBuilder b(1 + rays * ray_len);
  for (Vertex r = 0; r < rays; ++r) {
    Vertex prev = 0;  // hub
    for (Vertex i = 0; i < ray_len; ++i) {
      const Vertex v = 1 + r * ray_len + i;
      b.add_edge(prev, v);
      prev = v;
    }
  }
  return b.build();
}

Graph random_tree(Vertex n, Rng& rng) {
  MSRP_REQUIRE(n >= 1, "tree needs at least one vertex");
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) {
    b.add_edge(v, static_cast<Vertex>(rng.next_below(v)));
  }
  return b.build();
}

Graph hypercube(std::uint32_t dim) {
  MSRP_REQUIRE(dim >= 1 && dim <= 24, "hypercube dimension must be in [1, 24]");
  const Vertex n = Vertex{1} << dim;
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint32_t bit = 0; bit < dim; ++bit) {
      const Vertex u = v ^ (Vertex{1} << bit);
      if (v < u) b.add_edge(v, u);
    }
  }
  return b.build();
}

Graph random_regular(Vertex n, std::uint32_t d, Rng& rng) {
  MSRP_REQUIRE(n >= d + 1, "degree too large for vertex count");
  MSRP_REQUIRE((static_cast<std::uint64_t>(n) * d) % 2 == 0, "n * d must be even");
  // Configuration model: pair up stubs uniformly; drop self-loops and
  // duplicates (a vanishing fraction for constant d).
  std::vector<Vertex> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  rng.shuffle(stubs);
  std::set<std::pair<Vertex, Vertex>> present;
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    Vertex u = stubs[i], v = stubs[i + 1];
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (present.emplace(u, v).second) edges.emplace_back(u, v);
  }
  return Graph(n, edges);
}

Graph random_bipartite(Vertex a, Vertex b, double p, Rng& rng) {
  MSRP_REQUIRE(a >= 1 && b >= 1, "both parts must be non-empty");
  GraphBuilder gb(a + b);
  for (Vertex x = 0; x < a; ++x) {
    for (Vertex y = 0; y < b; ++y) {
      if (rng.next_bernoulli(p)) gb.add_edge(x, a + y);
    }
  }
  return gb.build();
}

}  // namespace msrp::gen
