// Structural queries used by generators' tests and the benchmark harness.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/distance.hpp"

namespace msrp {

/// Component id (0-based, in discovery order) per vertex.
std::vector<std::uint32_t> connected_components(const Graph& g);

std::uint32_t num_components(const Graph& g);

bool is_connected(const Graph& g);

/// Exact diameter via BFS from every vertex; kInfDist if disconnected.
/// O(nm) — intended for test/bench-sized graphs.
Dist diameter(const Graph& g);

/// Eccentricity of v (max BFS distance); kInfDist if some vertex unreachable.
Dist eccentricity(const Graph& g, Vertex v);

/// All bridge edges (cut edges) via Tarjan's low-link DFS. A replacement
/// path avoiding a bridge never exists between its two sides.
std::vector<EdgeId> bridges(const Graph& g);

}  // namespace msrp
