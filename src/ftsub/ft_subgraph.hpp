// Multi-source single-fault fault-tolerant BFS subgraph (Parter & Peleg,
// ESA 2013 — reference [26] in the paper's related work).
//
// Goal: a sparse subgraph H of G such that for every source s in S, every
// target t, and every single edge failure e,
//
//   d_H(s, t, e) = d_G(s, t, e).
//
// Parter–Peleg prove that taking, for every (s, t, e), a replacement path
// that diverges from the BFS tree as LATE as possible yields |H| =
// O(sqrt(sigma) n^{3/2}) edges, and that this is tight.
//
// Construction here: per source s and per tree edge e of T_s, run a BFS of
// G - e whose parent choice prefers the original T_s parent (so shortest
// paths hug the tree maximally — the late-divergence rule). Union the
// parent edges of the vertices actually separated by e (the subtree below
// e); vertices outside the subtree keep their T_s paths, which are already
// in H. O(n m) time per source; the point of the module is the *size* of H
// and the preserved distances, both of which tests and EXP-9 measure.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "tree/bfs_tree.hpp"

namespace msrp {

struct FtSubgraph {
  Graph subgraph;                  // H, on the same vertex set as G
  std::vector<EdgeId> kept_edges;  // ids (into the ORIGINAL graph) kept in H
  std::uint64_t edges_considered = 0;
};

/// Builds the single-fault FT-BFS subgraph for the given sources.
FtSubgraph build_ft_subgraph(const Graph& g, const std::vector<Vertex>& sources);

}  // namespace msrp
