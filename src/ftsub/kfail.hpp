// Bounded-failure distances: d(s, t) in G - F for a small edge set F.
//
// The replacement-path oracle answers |F| == 1 in O(1); this module covers
// the |F| <= k tail (k tiny, in practice 2 — service::kMaxKFailEdges) by a
// plain BFS of G that skips the failed edges. That is the honest cost model
// from the paper's discussion of dual failures: no subquadratic structure is
// known for k >= 2 unweighted multi-source replacement paths, so the serving
// stack prices those queries as one bounded BFS each.
//
// The scratch reuses the epoch-stamp idiom of the ftsub late-divergence BFS:
// begin() bumps an epoch instead of clearing arrays, so a batch of k-fail
// queries on one graph costs O(m + n) per query with zero re-zeroing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/distance.hpp"

namespace msrp {

/// Reusable BFS workspace for kfail_distance. One instance per thread;
/// sharing across graphs of different sizes is fine (begin() regrows).
struct KFailScratch {
  std::vector<std::uint32_t> stamp;
  std::vector<Dist> dist;
  std::vector<Vertex> queue;
  std::uint32_t epoch = 0;

  void begin(Vertex n) {
    if (stamp.size() < n) {
      stamp.resize(n, 0);
      dist.resize(n);
    }
    if (++epoch == 0) {  // wrapped: stale stamps could alias, refill once
      std::fill(stamp.begin(), stamp.end(), 0u);
      epoch = 1;
    }
    queue.clear();
  }
  bool visited(Vertex v) const { return stamp[v] == epoch; }
};

/// d(s, t) in G - fails. Requires s, t < g.num_vertices(), every id in
/// `fails` < g.num_edges(), and |fails| small (the BFS is O(m |fails|) in
/// the worst case because each arc scan checks the failure list linearly).
/// Returns kInfDist when t is unreachable after the failures.
Dist kfail_distance(const Graph& g, Vertex s, Vertex t,
                    std::span<const EdgeId> fails, KFailScratch& scratch);

/// Convenience overload with a private scratch.
Dist kfail_distance(const Graph& g, Vertex s, Vertex t,
                    std::span<const EdgeId> fails);

}  // namespace msrp
