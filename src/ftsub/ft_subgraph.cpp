#include "ftsub/ft_subgraph.hpp"

#include <queue>

#include "tree/ancestry.hpp"

namespace msrp {
namespace {

/// BFS of G - skip_edge whose parent assignment prefers the parent the
/// original tree used — the "diverge as late as possible" rule.
void late_divergence_parents(const Graph& g, const BfsTree& ts, EdgeId skip_edge,
                             std::vector<Dist>& dist, std::vector<EdgeId>& parent_edge) {
  const Vertex n = g.num_vertices();
  dist.assign(n, kInfDist);
  parent_edge.assign(n, kNoEdge);
  std::queue<Vertex> q;
  dist[ts.root()] = 0;
  q.push(ts.root());
  while (!q.empty()) {
    const Vertex u = q.front();
    q.pop();
    for (const Arc& a : g.neighbors(u)) {
      if (a.edge == skip_edge) continue;
      if (dist[a.to] == kInfDist) {
        dist[a.to] = dist[u] + 1;
        parent_edge[a.to] = a.edge;
        q.push(a.to);
      } else if (dist[a.to] == dist[u] + 1 && ts.parent_edge(a.to) == a.edge) {
        // An equally short predecessor over the original tree edge: prefer
        // it so the path follows T_s maximally.
        parent_edge[a.to] = a.edge;
      }
    }
  }
}

}  // namespace

FtSubgraph build_ft_subgraph(const Graph& g, const std::vector<Vertex>& sources) {
  MSRP_REQUIRE(!sources.empty(), "need at least one source");
  std::vector<bool> keep(g.num_edges(), false);
  FtSubgraph out;

  std::vector<Dist> dist;
  std::vector<EdgeId> parent_edge;
  for (const Vertex s : sources) {
    const BfsTree ts(g, s);
    const AncestorIndex anc(ts);
    // The BFS tree itself.
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (ts.parent_edge(v) != kNoEdge) keep[ts.parent_edge(v)] = true;
    }
    // Late-divergence replacement parents for every tree-edge failure.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto child = ts.tree_edge_child(g, e);
      if (!child.has_value()) continue;
      late_divergence_parents(g, ts, e, dist, parent_edge);
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        // Only vertices cut off by e (the subtree below it) need new edges;
        // everyone else keeps their original T_s path.
        if (!anc.is_ancestor(*child, v)) continue;
        ++out.edges_considered;
        if (parent_edge[v] != kNoEdge) keep[parent_edge[v]] = true;
      }
    }
  }

  GraphBuilder gb(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (keep[e]) {
      const auto [u, v] = g.endpoints(e);
      gb.add_edge(u, v);
      out.kept_edges.push_back(e);
    }
  }
  out.subgraph = gb.build();
  return out;
}

}  // namespace msrp
