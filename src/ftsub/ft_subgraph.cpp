#include "ftsub/ft_subgraph.hpp"

#include <algorithm>

#include "tree/ancestry.hpp"

namespace msrp {
namespace {

/// Reusable buffers for the per-edge late-divergence BFS. Entries are valid
/// only when their stamp matches the current epoch, so starting a fresh BFS
/// is O(1) instead of two n-sized re-initializations — the builder runs one
/// BFS per tree edge, m of them per source.
struct LateDivergenceScratch {
  std::vector<Dist> dist;
  std::vector<EdgeId> parent_edge;
  std::vector<std::uint32_t> stamp;
  std::vector<Vertex> queue;  // flat BFS queue, reused
  std::uint32_t epoch = 0;

  void begin(Vertex n) {
    if (stamp.size() < n) {
      stamp.resize(n, 0);
      dist.resize(n);
      parent_edge.resize(n);
    }
    if (++epoch == 0) {
      std::fill(stamp.begin(), stamp.end(), 0u);
      epoch = 1;
    }
    queue.clear();
  }

  bool visited(Vertex v) const { return stamp[v] == epoch; }
};

/// BFS of G - skip_edge whose parent assignment prefers the parent the
/// original tree used — the "diverge as late as possible" rule.
void late_divergence_parents(const Graph& g, const BfsTree& ts, EdgeId skip_edge,
                             LateDivergenceScratch& s) {
  s.begin(g.num_vertices());
  s.stamp[ts.root()] = s.epoch;
  s.dist[ts.root()] = 0;
  s.parent_edge[ts.root()] = kNoEdge;
  s.queue.push_back(ts.root());
  for (std::size_t head = 0; head < s.queue.size(); ++head) {
    const Vertex u = s.queue[head];
    for (const Arc& a : g.neighbors(u)) {
      if (a.edge == skip_edge) continue;
      if (!s.visited(a.to)) {
        s.stamp[a.to] = s.epoch;
        s.dist[a.to] = s.dist[u] + 1;
        s.parent_edge[a.to] = a.edge;
        s.queue.push_back(a.to);
      } else if (s.dist[a.to] == s.dist[u] + 1 && ts.parent_edge(a.to) == a.edge) {
        // An equally short predecessor over the original tree edge: prefer
        // it so the path follows T_s maximally.
        s.parent_edge[a.to] = a.edge;
      }
    }
  }
}

}  // namespace

FtSubgraph build_ft_subgraph(const Graph& g, const std::vector<Vertex>& sources) {
  MSRP_REQUIRE(!sources.empty(), "need at least one source");
  std::vector<bool> keep(g.num_edges(), false);
  FtSubgraph out;

  LateDivergenceScratch scratch;
  for (const Vertex s : sources) {
    const BfsTree ts(g, s);
    const AncestorIndex anc(ts);
    // The BFS tree itself.
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (ts.parent_edge(v) != kNoEdge) keep[ts.parent_edge(v)] = true;
    }
    // Late-divergence replacement parents for every tree-edge failure.
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto child = ts.tree_edge_child(g, e);
      if (!child.has_value()) continue;
      late_divergence_parents(g, ts, e, scratch);
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        // Only vertices cut off by e (the subtree below it) need new edges;
        // everyone else keeps their original T_s path.
        if (!anc.is_ancestor(*child, v)) continue;
        ++out.edges_considered;
        if (scratch.visited(v) && scratch.parent_edge[v] != kNoEdge) {
          keep[scratch.parent_edge[v]] = true;
        }
      }
    }
  }

  GraphBuilder gb(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (keep[e]) {
      const auto [u, v] = g.endpoints(e);
      gb.add_edge(u, v);
      out.kept_edges.push_back(e);
    }
  }
  out.subgraph = gb.build();
  return out;
}

}  // namespace msrp
