#include "ftsub/kfail.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace msrp {

namespace {

bool failed(std::span<const EdgeId> fails, EdgeId e) {
  // |fails| <= 2 in practice; a linear scan beats any set structure.
  return std::find(fails.begin(), fails.end(), e) != fails.end();
}

}  // namespace

Dist kfail_distance(const Graph& g, Vertex s, Vertex t,
                    std::span<const EdgeId> fails, KFailScratch& scratch) {
  const Vertex n = g.num_vertices();
  MSRP_REQUIRE(s < n && t < n, "kfail_distance: vertex out of range");
  for (EdgeId e : fails)
    MSRP_REQUIRE(e < g.num_edges(), "kfail_distance: failed edge out of range");
  if (s == t) return 0;

  scratch.begin(n);
  scratch.stamp[s] = scratch.epoch;
  scratch.dist[s] = 0;
  scratch.queue.push_back(s);
  for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
    const Vertex u = scratch.queue[head];
    const Dist du = scratch.dist[u];
    for (const Arc& a : g.neighbors(u)) {
      if (failed(fails, a.edge) || scratch.visited(a.to)) continue;
      if (a.to == t) return du + 1;
      scratch.stamp[a.to] = scratch.epoch;
      scratch.dist[a.to] = du + 1;
      scratch.queue.push_back(a.to);
    }
  }
  return kInfDist;
}

Dist kfail_distance(const Graph& g, Vertex s, Vertex t,
                    std::span<const EdgeId> fails) {
  KFailScratch scratch;
  return kfail_distance(g, s, t, fails, scratch);
}

}  // namespace msrp
