#include "service/oracle_cache.hpp"

#include <bit>
#include <mutex>

#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace msrp::service {

std::uint64_t config_fingerprint(const Config& cfg) {
  // Only fields that affect solver OUTPUT enter the fingerprint. The
  // execution knobs (build_threads, build_pool) are deliberately excluded:
  // the parallel build is bit-identical to the sequential one, so oracles
  // built at different thread counts are interchangeable cache entries.
  std::uint64_t h = fnv::kOffset;
  h = fnv::mix_u64(h, cfg.seed);
  h = fnv::mix_u64(h, std::bit_cast<std::uint64_t>(cfg.oversample));
  h = fnv::mix_u64(h, std::bit_cast<std::uint64_t>(cfg.near_scale));
  h = fnv::mix_u64(h, std::bit_cast<std::uint64_t>(cfg.window_scale));
  h = fnv::mix_u64(h, static_cast<std::uint64_t>(cfg.landmark_rp));
  h = fnv::mix_u64(h, (std::uint64_t{cfg.paper_constants} << 1) | std::uint64_t{cfg.exact});
  return h;
}

std::size_t OracleKeyHash::operator()(const OracleKey& k) const {
  std::uint64_t h = fnv::kOffset;
  h = fnv::mix_u64(h, k.graph_digest);
  h = fnv::mix_u64(h, k.config_fingerprint);
  h = fnv::mix_u64(h, k.sources.size());
  for (const Vertex s : k.sources) h = fnv::mix_u64(h, s);
  return static_cast<std::size_t>(h);
}

OracleCache::OracleCache(std::size_t capacity, std::size_t max_bytes,
                         std::chrono::milliseconds entry_ttl)
    : capacity_(capacity), max_bytes_(max_bytes), entry_ttl_(entry_ttl),
      clock_([] { return std::chrono::steady_clock::now(); }) {
  MSRP_REQUIRE(capacity >= 1, "oracle cache capacity must be >= 1");
}

void OracleCache::set_clock_for_testing(
    std::function<std::chrono::steady_clock::time_point()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

void OracleCache::enable_refresh_ahead(double fraction, TaskRunner runner) {
  MSRP_REQUIRE(fraction > 0.0, "refresh-ahead fraction must be > 0");
  MSRP_REQUIRE(runner != nullptr, "refresh-ahead needs a task runner");
  std::lock_guard<std::mutex> lock(mu_);
  refresh_fraction_ = fraction;
  runner_ = std::move(runner);
}

std::size_t OracleCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::size_t OracleCache::size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::shared_ptr<const Snapshot> OracleCache::find_locked(const OracleKey& key,
                                                         std::function<void()>* refresh_out) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  const auto age = clock_() - it->second->inserted_at;
  if (entry_ttl_.count() > 0 && age >= entry_ttl_) {
    // Aged out: drop the entry and report a miss so get_or_build() refreshes
    // it through the single-flight slot. In-flight holders of the old
    // shared_ptr are unaffected.
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    ++expirations_;
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front, iterator stays valid

  // Refresh-ahead: old enough, refreshable, and not already refreshing —
  // claim the single-flight slot NOW (under the lock, so concurrent hits
  // see it) but hand the task to the caller to start after unlocking: a
  // synchronous test runner executing it here would deadlock on mu_.
  if (refresh_out != nullptr && refresh_fraction_ > 0.0 && entry_ttl_.count() > 0 &&
      it->second->rebuild != nullptr && building_.find(key) == building_.end() &&
      std::chrono::duration<double, std::milli>(age).count() >=
          refresh_fraction_ * static_cast<double>(entry_ttl_.count())) {
    auto prom = std::make_shared<std::promise<std::shared_ptr<const Snapshot>>>();
    building_.emplace(key, prom->get_future().share());
    *refresh_out = [this, key, rebuild = it->second->rebuild, prom] {
      std::shared_ptr<const Snapshot> built;
      try {
        built = rebuild();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          building_.erase(key);
          ++refresh_failures_;
        }
        // Waiters parked on the slot (a cold miss racing this refresh) see
        // the failure; the stale-but-valid entry keeps serving hits.
        prom->set_exception(std::current_exception());
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        insert_locked(key, built, rebuild);  // re-stamps inserted_at
        building_.erase(key);
        ++refreshes_;
      }
      prom->set_value(std::move(built));
    };
  }
  return it->second->oracle;
}

std::shared_ptr<const Snapshot> OracleCache::find(const OracleKey& key) {
  std::function<void()> refresh;
  std::shared_ptr<const Snapshot> got;
  {
    std::lock_guard<std::mutex> lock(mu_);
    got = find_locked(key, &refresh);
  }
  if (refresh) runner_(std::move(refresh));
  return got;
}

void OracleCache::insert_locked(const OracleKey& key, std::shared_ptr<const Snapshot> oracle,
                                Builder rebuild) {
  const std::size_t footprint = oracle ? oracle->footprint_bytes() : 0;
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    it->second->oracle = std::move(oracle);
    it->second->bytes = footprint;
    it->second->inserted_at = clock_();
    if (rebuild) it->second->rebuild = std::move(rebuild);
    bytes_ += footprint;
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_over_budget_locked();
    return;
  }
  lru_.push_front(Entry{key, std::move(oracle), footprint, clock_(), std::move(rebuild)});
  index_.emplace(key, lru_.begin());
  bytes_ += footprint;
  evict_over_budget_locked();
}

void OracleCache::evict_over_budget_locked() {
  // Entry-count cap first, then the byte budget; never evict the entry
  // just touched (the front), so a single over-budget oracle still serves.
  while (lru_.size() > 1 &&
         (lru_.size() > capacity_ || (max_bytes_ != 0 && bytes_ > max_bytes_))) {
    bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

void OracleCache::insert(const OracleKey& key, std::shared_ptr<const Snapshot> oracle) {
  std::lock_guard<std::mutex> lock(mu_);
  insert_locked(key, std::move(oracle));
}

std::shared_ptr<const Snapshot> OracleCache::get_or_build(
    const OracleKey& key, const Builder& build, const BuilderFactory& rebuild_factory) {
  std::promise<std::shared_ptr<const Snapshot>> mine;
  PendingFuture watch;
  std::function<void()> refresh;
  std::shared_ptr<const Snapshot> hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hit = find_locked(key, &refresh);
    if (!hit) {
      auto pending = building_.find(key);
      if (pending != building_.end()) {
        watch = pending->second;  // someone else is building (or refreshing)
      } else {
        building_.emplace(key, mine.get_future().share());
      }
    }
  }
  if (hit) {
    // Start the refresh this hit may have claimed, then serve the current
    // oracle — the caller never waits on the rebuild.
    if (refresh) runner_(std::move(refresh));
    return hit;
  }
  if (watch.valid()) return watch.get();  // rethrows if that build failed

  // We own the build. The pending slot keeps concurrent misses parked and
  // is immune to eviction; the local shared_ptr (and every waiter's future)
  // pins the snapshot even if the LRU evicts it the moment it lands. The
  // catch must release the slot on ANY failure — build or landing — or the
  // key would be poisoned with a broken promise forever.
  //
  // The rebuild factory also runs out here: it typically copies the graph,
  // a cost only cold builds should pay.
  std::shared_ptr<const Snapshot> built;
  try {
    Builder rebuild = rebuild_factory ? rebuild_factory() : Builder{};
    built = build();
    std::lock_guard<std::mutex> lock(mu_);
    insert_locked(key, built, std::move(rebuild));
    building_.erase(key);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      building_.erase(key);
    }
    mine.set_exception(std::current_exception());
    throw;
  }
  mine.set_value(built);
  return built;
}

std::size_t OracleCache::pending_builds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return building_.size();
}

std::uint64_t OracleCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t OracleCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t OracleCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::uint64_t OracleCache::expirations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return expirations_;
}

std::uint64_t OracleCache::refreshes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return refreshes_;
}

std::uint64_t OracleCache::refresh_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return refresh_failures_;
}

}  // namespace msrp::service
