#include "service/shard_process.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <thread>

#include "obs/metrics.hpp"
#include "service/backoff.hpp"
#include "service/shard_channel.hpp"
#include "service/snapshot.hpp"
#include "util/env.hpp"
#include "util/failpoint.hpp"
#include "util/futex.hpp"
#include "util/shm.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif
#if defined(__linux__)
#include <sys/prctl.h>
#include <csignal>
#endif

namespace msrp::service {

std::string shard_channel_name(const std::string& base, std::uint32_t k) {
  return base + ".c" + std::to_string(k);
}

std::string shard_snapshot_name(const std::string& base, std::uint32_t k) {
  return base + ".s" + std::to_string(k);
}

std::string shard_doorbell_name(const std::string& base) { return base + ".d"; }

std::string shard_metrics_name(const std::string& base) { return base + ".m"; }

namespace {

/// Orphan watch: a worker must not outlive its supervisor (it would pin the
/// shm segments forever). On Linux the kernel delivers SIGTERM on parent
/// death; the getppid() poll below is the portable fallback.
void arm_parent_death_signal() {
#if defined(__linux__)
  ::prctl(PR_SET_PDEATHSIG, SIGTERM);
#endif
}

bool parent_alive(long original_ppid) {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<long>(::getppid()) == original_ppid;
#else
  (void)original_ppid;
  return true;
#endif
}

}  // namespace

int run_shard_worker(const ShardWorkerConfig& cfg) {
  try {
    arm_parent_death_signal();
#if defined(__unix__) || defined(__APPLE__)
    const long original_ppid = static_cast<long>(::getppid());
#else
    const long original_ppid = 0;
#endif

    ShmSegment chan_seg =
        ShmSegment::open(shard_channel_name(cfg.base_name, cfg.shard_index),
                         /*writable=*/true);
    ShardChannel* ch = ShardChannel::adopt(chan_seg.data(), chan_seg.size());

    ShmSegment bell_seg =
        ShmSegment::open(shard_doorbell_name(cfg.base_name), /*writable=*/true);
    ShardDoorbell* bell = ShardDoorbell::adopt(bell_seg.data(), bell_seg.size());

    // Shm metrics page, attached tolerantly: a supervisor that placed no
    // page must not keep the worker from serving. The slot is re-found by
    // name, so a respawned worker resumes the same counter — increments
    // survive worker death with no loss or double counting.
    obs::ShmCounterPage metrics_page;
    std::atomic<std::uint64_t>* requests_slot = nullptr;
    try {
      metrics_page = obs::ShmCounterPage::open(shard_metrics_name(cfg.base_name));
      requests_slot = metrics_page.find_or_create(
          "worker." + std::to_string(cfg.shard_index) + ".requests");
    } catch (const std::exception&) {
    }

    const ShardBackoff bo = ShardBackoff::from_env();

    if (MSRP_FAILPOINT("shard_worker.attach_corrupt")) {
      // Tear the shared image so attach-time validation must catch it. XOR
      // is involutory: a later armed spawn flips the byte back, so a
      // respawn cycle can also demonstrate recovery.
      ShmSegment rw = ShmSegment::open(shard_snapshot_name(cfg.base_name, cfg.shard_index),
                                       /*writable=*/true);
      if (rw.size() > 0) {
        static_cast<std::uint8_t*>(rw.data())[rw.size() / 2] ^= 0xff;
      }
    }

    // The snapshot image is attached zero-copy: the oracle's table spans
    // alias the read-only segment, so every worker serves the one copy the
    // supervisor placed. Validation covers the full image by default (the
    // header/meta checksum always, the cells checksum unless
    // MSRP_SHARD_VERIFY_ATTACH=0): a worker must fail fast on a corrupt or
    // torn mapping, not serve garbage from it.
    auto snap_seg = std::make_shared<ShmSegment>(
        ShmSegment::open(shard_snapshot_name(cfg.base_name, cfg.shard_index)));
    const bool verify_cells = env::u64_or("MSRP_SHARD_VERIFY_ATTACH", 1) != 0;
    std::optional<Snapshot> attached;
    try {
      attached.emplace(Snapshot::attach(snap_seg->data(), snap_seg->size(), snap_seg,
                                        {.verify_cells = verify_cells}));
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "shard worker %s.%u: snapshot image rejected at attach: %s\n",
                   cfg.base_name.c_str(), cfg.shard_index, ex.what());
      ch->worker_state().store(ShardChannel::kExited, std::memory_order_release);
      util::futex_wake_u32(ch->worker_state(), 1);
      return kShardWorkerExitBadSnapshot;
    }
    const Snapshot& oracle = *attached;
    const Vertex n = oracle.num_vertices();
    const EdgeId m = oracle.num_edges();
    const std::uint32_t sigma = oracle.num_sources();

    ch->worker_state().store(ShardChannel::kReady, std::memory_order_release);
    // The supervisor may be parked on the state word (wait_worker_ready).
    util::futex_wake_u32(ch->worker_state(), 1);

    const auto ring_back = [&] {
      bell->seq().fetch_add(1, std::memory_order_release);
      util::futex_wake_u32(bell->seq(), 1);
    };

    std::uint64_t idle_spins = 0;
    while (true) {
      bool worked = false;
      ShardRequest req;
      while (ch->try_pop_request(req)) {
        worked = true;
        if (requests_slot != nullptr) {
          requests_slot->fetch_add(1, std::memory_order_relaxed);
        }
        // Crash window 1: the request left the ring but was never answered.
        // Respawn must requeue it from the supervisor's in-flight ledger.
        (void)MSRP_FAILPOINT("shard_worker.pop");
        // The router validates queries against the full oracle before
        // routing; re-clamp here anyway so a corrupted ring can only yield
        // a wrong answer, never an out-of-bounds read.
        const Dist answer = (req.si < sigma && req.t < n && req.e < m)
                                ? oracle.avoiding_at(req.si, req.t, req.e)
                                : kInfDist;
        // Crash window 2: answer computed, never pushed (same requeue
        // obligation, later point of death). Armed with delay:USEC this is
        // the "slow reply near the deadline edge" site.
        (void)MSRP_FAILPOINT("shard_worker.reply");
        ShardResponse resp{req.tag, answer, 0};
        std::uint64_t full_spins = 0;
        while (!ch->try_push_response(resp)) {
          // Response ring full: the supervisor is not draining. Transient
          // while a batch is in flight — but also exactly the state a
          // crashed supervisor leaves behind, so the orphan check must run
          // here too, not just in the idle loop.
          if (ch->stop_flag().load(std::memory_order_acquire) != 0 ||
              ((++full_spins & 1023) == 0 && !parent_alive(original_ppid))) {
            ch->worker_state().store(ShardChannel::kExited, std::memory_order_release);
            util::futex_wake_u32(ch->worker_state(), 1);
            ring_back();
            return 0;
          }
          ring_back();  // remind a parked collector there is work to drain
          std::this_thread::sleep_for(std::chrono::microseconds(10));
        }
      }
      // Lost-wake injection: responses were pushed but the doorbell stays
      // silent — the collector must still make progress off its bounded
      // futex wait (backoff.hpp wait_timeout_us), just slower.
      if (worked && !MSRP_FAILPOINT("shard_worker.lost_wake")) ring_back();
      if (ch->stop_flag().load(std::memory_order_acquire) != 0) break;
      if (worked) {
        idle_spins = 0;
        continue;
      }
      if (++idle_spins <= bo.spin_rounds) continue;  // spin-first fast path
      if (bo.use_doorbell) {
        // Park on the request doorbell: snapshot the word, re-check the
        // real conditions (requests/stop may have landed between the empty
        // pop above and here — the ring always precedes the futex wake on
        // the supervisor side), then wait. The bounded timeout doubles as
        // the orphan-check cadence, so a supervisor that died without
        // raising stop is still noticed within one wait period.
        const std::uint32_t seen = ch->request_doorbell().load(std::memory_order_acquire);
        if (ch->requests_pending() == 0 &&
            ch->stop_flag().load(std::memory_order_acquire) == 0) {
          util::futex_wait_u32(ch->request_doorbell(), seen, bo.wait_timeout_us);
        }
        if (!parent_alive(original_ppid)) break;
      } else {
        // Polling fallback: sleep between polls; check for an orphaned
        // supervisor every ~1024 sleeps.
        if (bo.sleep_us == 0) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(bo.sleep_us));
        }
        if ((idle_spins & 1023) == 0 && !parent_alive(original_ppid)) break;
      }
    }
    ch->worker_state().store(ShardChannel::kExited, std::memory_order_release);
    util::futex_wake_u32(ch->worker_state(), 1);
    ring_back();
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "shard worker %s.%u: %s\n", cfg.base_name.c_str(),
                 cfg.shard_index, ex.what());
    return 1;
  } catch (...) {
    return 1;
  }
}

int shard_worker_main(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    std::fprintf(stderr, "shard worker: bad spec \"%s\" (want <base>:<index>)\n",
                 spec.c_str());
    return 2;
  }
  ShardWorkerConfig cfg;
  cfg.base_name = spec.substr(0, colon);
  try {
    cfg.shard_index = static_cast<std::uint32_t>(std::stoul(spec.substr(colon + 1)));
  } catch (...) {
    std::fprintf(stderr, "shard worker: bad shard index in \"%s\"\n", spec.c_str());
    return 2;
  }
  return run_shard_worker(cfg);
}

}  // namespace msrp::service
