/// \file
/// Idle-wait policy for the shard router's routing loop.
///
/// When a batch is blocked on worker responses the router polls the SPSC
/// rings; how it waits between empty polls is a latency/CPU trade the
/// deployment must own. Busy-spinning keeps per-query round-trips in the
/// hundreds of nanoseconds but burns a core; sleeping frees the core but
/// adds scheduler latency to every stall. The default (64 spin rounds,
/// then 20 us sleeps) favours throughput; latency-sensitive deployments
/// raise spin_rounds or set sleep_us to 0 (pure yield).
///
/// Defaults come from the environment so operators can tune a running
/// binary: MSRP_SHARD_SPIN_ROUNDS and MSRP_SHARD_SLEEP_US. Explicit
/// Options fields (or msrp_serve --shard-spin / --shard-sleep-us) win over
/// the environment.
#pragma once

#include <cstdint>

#include "util/env.hpp"

namespace msrp::service {

struct ShardBackoff {
  /// Empty poll rounds to busy-spin before the loop starts sleeping.
  std::uint32_t spin_rounds = 64;
  /// Sleep between polls once past spin_rounds, in microseconds; 0 means
  /// yield the CPU without a timed sleep (lowest latency that still lets
  /// same-core workers run — the right setting when router and workers
  /// share one CPU).
  std::uint32_t sleep_us = 20;

  /// Compiled-in defaults overridden by MSRP_SHARD_SPIN_ROUNDS /
  /// MSRP_SHARD_SLEEP_US when set.
  static ShardBackoff from_env() {
    ShardBackoff bo;
    bo.spin_rounds = static_cast<std::uint32_t>(
        env::u64_or("MSRP_SHARD_SPIN_ROUNDS", bo.spin_rounds));
    bo.sleep_us =
        static_cast<std::uint32_t>(env::u64_or("MSRP_SHARD_SLEEP_US", bo.sleep_us));
    return bo;
  }
};

}  // namespace msrp::service
