/// \file
/// Idle-wait policy for the shard transport (router collector and workers).
///
/// When the collector is blocked on worker responses — or a worker on new
/// requests — how it waits is a latency/CPU trade the deployment must own.
/// Both sides spin briefly first (sub-microsecond wakeups while traffic is
/// flowing), then park on a futex doorbell in the shared channel
/// (util/futex.hpp): the other side rings after pushing, so an idle shard
/// deployment burns ~0% CPU instead of waking every sleep quantum. Waits
/// are bounded by wait_timeout_us so stop flags, orphaned supervisors, and
/// dead workers are still noticed when a wake is lost to a crash.
///
/// Defaults come from the environment so operators can tune a running
/// binary: MSRP_SHARD_SPIN_ROUNDS, MSRP_SHARD_SLEEP_US,
/// MSRP_SHARD_DOORBELL (0 disables futex parking; falls back to
/// spin-then-sleep polling), and MSRP_SHARD_WAIT_US (futex wait bound).
/// Explicit Options fields (or msrp_serve --shard-spin /
/// --shard-sleep-us) win over the environment.
#pragma once

#include <cstdint>

#include "util/env.hpp"
#include "util/futex.hpp"

namespace msrp::service {

struct ShardBackoff {
  /// Empty poll rounds to busy-spin before parking (doorbell mode) or
  /// sleeping (polling mode).
  std::uint32_t spin_rounds = 64;
  /// Polling-mode sleep between polls once past spin_rounds, in
  /// microseconds; 0 means yield the CPU without a timed sleep (lowest
  /// latency that still lets same-core workers run — the right setting
  /// when router and workers share one CPU).
  std::uint32_t sleep_us = 20;
  /// Park on the shared-memory futex doorbells instead of timed-sleep
  /// polling. On platforms without futex this silently degrades to the
  /// polling behaviour (util/futex.hpp).
  bool use_doorbell = true;
  /// Upper bound on one doorbell park, in microseconds. Bounds how stale a
  /// lost wake (crashed peer) can leave either side; also the cadence of
  /// the collector's worker-death checks while stalled.
  std::uint32_t wait_timeout_us = 10000;

  /// Compiled-in defaults overridden by MSRP_SHARD_SPIN_ROUNDS /
  /// MSRP_SHARD_SLEEP_US / MSRP_SHARD_DOORBELL / MSRP_SHARD_WAIT_US.
  static ShardBackoff from_env() {
    ShardBackoff bo;
    bo.spin_rounds = static_cast<std::uint32_t>(
        env::u64_or("MSRP_SHARD_SPIN_ROUNDS", bo.spin_rounds));
    bo.sleep_us =
        static_cast<std::uint32_t>(env::u64_or("MSRP_SHARD_SLEEP_US", bo.sleep_us));
    bo.use_doorbell = env::u64_or("MSRP_SHARD_DOORBELL", bo.use_doorbell ? 1 : 0) != 0;
    bo.wait_timeout_us = static_cast<std::uint32_t>(
        env::u64_or("MSRP_SHARD_WAIT_US", bo.wait_timeout_us));
    if (bo.wait_timeout_us == 0) bo.wait_timeout_us = 1;  // 0 would mean busy-poll
    return bo;
  }
};

}  // namespace msrp::service
