/// \file
/// Batched replacement-path query serving.
///
/// The solver's preprocessing is O~(m sqrt(n sigma) + sigma n^2); a point
/// query d(s, t, e) is O(1). A serving deployment therefore builds (or
/// snapshot-loads) an oracle once and amortizes it over millions of
/// queries. QueryService packages that split:
///
///   * build()/load() produce immutable Snapshot oracles through an LRU
///     cache keyed by (graph digest, sources, config fingerprint) — a
///     repeat build of the same instance is a cache hit, not a re-solve;
///   * query_batch() answers a span of (s, t, e) queries on a fixed thread
///     pool. The batch is sharded by source: every worker task reads one
///     source's replacement table, so shards touch disjoint table slices
///     and the read path takes no locks (the oracle is immutable; answer
///     slots are disjoint by query index);
///   * submit_batch() is the asynchronous flavour: it returns a
///     std::future<BatchResult> (or invokes a callback) and does everything
///     — the oracle build on a cold cache included — on the pool, so the
///     submitting thread gets its hands back in microseconds while the
///     solve proceeds. The answering stage is counter-driven (the last
///     finishing shard fulfils the promise), so no worker ever waits on
///     shard tasks. The one place a worker does park is a cold submit whose
///     oracle is already being built by another worker: the single-flight
///     cache makes it wait for that solve instead of duplicating it. That
///     wait is always on a build actively running on some worker — the slot
///     only exists while its owner executes — so the pool makes progress
///     even at size 1.
///   * Options::shards > 1 moves the serving out of this process entirely:
///     batches delegate to a ShardRouter (shard_router.hpp) that routes
///     each query to one of K forked worker processes over shared-memory
///     snapshot segments, bit-identical to the in-process path. Routers are
///     created per oracle on first use and kept in a small MRU list.
///
/// Invalid queries are rejected up front — in the calling thread for
/// query_batch, through the future/callback error channel for
/// submit_batch; workers only ever see validated indices.
///
/// docs/ARCHITECTURE.md traces a query's life through every path.
#pragma once

#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "obs/metrics.hpp"
#include "service/backoff.hpp"
#include "service/oracle_cache.hpp"
#include "service/query.hpp"
#include "service/snapshot.hpp"
#include "service/thread_pool.hpp"
#include "service/workloads.hpp"
#include "util/deadline.hpp"

namespace msrp::service {

class ShardRouter;

/// Outcome of one asynchronous batch.
struct BatchResult {
  /// answers[i] corresponds to queries[i]; empty when error is set.
  std::vector<Dist> answers;
  /// The oracle that answered (freshly built or cache-hit). Holding it here
  /// pins it against cache eviction for as long as the result lives.
  std::shared_ptr<const Snapshot> oracle;
  /// Null on success; the build/validation failure otherwise (future-based
  /// callers get the same exception rethrown from future::get instead).
  std::exception_ptr error;
};

/// Invoked exactly once per callback-flavoured submit_batch, from a pool
/// worker thread. Must not block on futures of the same service's pool, and
/// should not throw — an escaping exception cannot trigger a second
/// delivery, but it is lost to the pool's fire-and-forget error slot.
using BatchCallback = std::function<void(BatchResult)>;

/// Outcome of one asynchronous vitality batch (TOP_K_VITAL); same error
/// channel contract as BatchResult.
struct VitalityBatchResult {
  std::vector<VitalityResult> results;  ///< results[i] answers queries[i]
  std::shared_ptr<const Snapshot> oracle;
  std::exception_ptr error;
};
using VitalityCallback = std::function<void(VitalityBatchResult)>;

/// Outcome of one asynchronous Vickrey batch (VICKREY_PRICES).
struct VickreyBatchResult {
  std::vector<VickreyResult> results;
  std::shared_ptr<const Snapshot> oracle;
  std::exception_ptr error;
};
using VickreyCallback = std::function<void(VickreyBatchResult)>;

class QueryService {
 public:
  struct Options {
    /// Worker threads; 0 = hardware concurrency. Cold-cache oracle builds
    /// run their phase loops on this same pool.
    unsigned threads = 0;
    /// Oracle cache capacity, in oracles.
    std::size_t cache_capacity = 4;
    /// Oracle cache byte budget (summed Snapshot footprints; 0 = unlimited).
    std::size_t cache_max_bytes = 0;
    /// Age limit on cached oracles (0 = never expire). An expired entry is
    /// refreshed through the single-flight build path on next use; see
    /// OracleCache. Long-running servers set this to re-pick-up re-saved
    /// snapshots without a restart.
    std::chrono::milliseconds cache_entry_ttl{0};
    /// Refresh-ahead fraction of cache_entry_ttl (0 = off; meaningful in
    /// (0, 1)). A cache hit on an entry older than fraction * TTL kicks a
    /// rebuild on the pool while still serving the current oracle, so a
    /// warmed key never pays a cold build at the TTL boundary. Requires a
    /// nonzero cache_entry_ttl.
    double cache_refresh_ahead = 0.0;
    /// Batches smaller than this answer inline on the calling thread —
    /// below it the fan-out overhead exceeds the O(1)-per-query work.
    std::size_t min_parallel_batch = 2048;
    /// >= 1: serve through the multi-process shard router
    /// (shard_router.hpp) instead of in-process table reads. Each oracle
    /// is sharded across `shards` worker processes over shared-memory v2
    /// snapshot segments (1 = a single worker process — still out of
    /// process); answers are bit-identical to the in-process path. 0
    /// (default) keeps everything in this process.
    unsigned shards = 0;
    /// argv to exec for each shard worker (e.g. {"/path/to/msrp_serve"};
    /// the router appends "--shard-worker <base>:<k>"). Empty = plain fork
    /// without exec. Only meaningful when sharding (shards >= 1).
    std::vector<std::string> shard_worker_argv = {};
    /// Idle-wait policy of the routers' collector and (via the
    /// environment) the workers (shards >= 1); defaults honour the
    /// MSRP_SHARD_* knobs (see backoff.hpp).
    ShardBackoff shard_backoff = ShardBackoff::from_env();
    /// Pin shard worker k to CPU (k mod hardware_concurrency);
    /// Linux-only, shards >= 1.
    bool pin_shard_workers = false;
  };

  QueryService() : QueryService(Options{}) {}
  explicit QueryService(Options opts);

  /// Solves MSRP for (g, sources, cfg) — or returns the cached oracle for
  /// an identical instance — and hands back an immutable snapshot oracle.
  /// Concurrent builds of the same instance are single-flighted.
  std::shared_ptr<const Snapshot> build(const Graph& g, const std::vector<Vertex>& sources,
                                        const Config& cfg = {});

  /// Loads a snapshot from disk into the cache (keyed by its content
  /// digest, so loading the same file twice hits). `opts` selects the
  /// zero-copy mmap path for v2 files.
  std::shared_ptr<const Snapshot> load(const std::string& path,
                                       const Snapshot::LoadOptions& opts = {});

  /// Answers queries[i] into result[i]. Throws std::invalid_argument if any
  /// query names a non-source s, or an out-of-range t or e; no partial
  /// answers are produced in that case. Safe to call from several threads
  /// concurrently: batches share the worker pool but track their own
  /// completion. A non-default `deadline` bounds the wait: the sharded
  /// path hands it to the router (whose collector enforces it mid-flight);
  /// either path throws DeadlineExceeded instead of answering late.
  std::vector<Dist> query_batch(const Snapshot& oracle, std::span<const Query> queries,
                                Deadline deadline = kNoDeadline);

  // ----- async API --------------------------------------------------------

  /// Answers `queries` against an oracle the caller already holds. Returns
  /// immediately; validation, sharding, and answering all run on the pool.
  std::future<BatchResult> submit_batch(std::shared_ptr<const Snapshot> oracle,
                                        std::vector<Query> queries);

  /// Answers `queries` against the oracle for (g, sources, cfg), building
  /// it on the pool first when the cache is cold — the submit itself
  /// returns in microseconds either way.
  std::future<BatchResult> submit_batch(Graph g, std::vector<Vertex> sources, Config cfg,
                                        std::vector<Query> queries);

  /// Callback flavours of the two overloads above; `done` runs on a pool
  /// worker once the batch completes (or fails, with BatchResult::error
  /// set). `deadline` bounds the whole batch: an expired batch fails with
  /// DeadlineExceeded in BatchResult::error instead of waiting — checked
  /// after the oracle resolve and enforced continuously inside the shard
  /// router while answers are in flight.
  void submit_batch(std::shared_ptr<const Snapshot> oracle, std::vector<Query> queries,
                    BatchCallback done, Deadline deadline = kNoDeadline);
  void submit_batch(Graph g, std::vector<Vertex> sources, Config cfg,
                    std::vector<Query> queries, BatchCallback done);

  // ----- workload API (the protocol v3 opcodes; see service/workloads.hpp) --

  /// Top-k most-vital edges of each query's canonical s->t path. Expands
  /// every query into one point query per path edge and answers them
  /// through query_batch — so the sharded path and the in-process path
  /// return byte-identical results — then ranks (vitality desc, position
  /// asc) and truncates to k. Validation (source/target range, 1 <= k <=
  /// kMaxTopKVital) throws before any work, like query_batch.
  std::vector<VitalityResult> vitality_batch(const Snapshot& oracle,
                                             std::span<const VitalityQuery> queries,
                                             Deadline deadline = kNoDeadline);

  /// Vickrey payments along each query's canonical path: price(e) =
  /// d(s,t,e) - d(s,t) in path order, kInfDist for bridges. Same expansion
  /// machinery (and therefore the same bytes on every serving path) as
  /// vitality_batch.
  std::vector<VickreyResult> vickrey_batch(const Snapshot& oracle,
                                           std::span<const VickreyQuery> queries,
                                           Deadline deadline = kNoDeadline);

  /// d(s, t) avoiding each query's failure set F, |F| <= kMaxKFailEdges.
  /// |F| == 1 routes through the point-query path (O(1) oracle reads,
  /// sharded when configured); |F| == 0 is the base distance; |F| == 2
  /// runs a bounded BFS of G - F and therefore needs the graph behind the
  /// oracle — attach_graph() it (build() does so automatically) or the
  /// batch throws std::invalid_argument.
  std::vector<Dist> kfail_batch(const Snapshot& oracle, std::span<const KFailQuery> queries,
                                Deadline deadline = kNoDeadline);

  /// Async flavours: validation, expansion, and answering all run on the
  /// pool; `done` fires exactly once from a worker (error channel on
  /// validation failure, DeadlineExceeded, or a missing attached graph).
  /// These share submit_batch's machinery — the same failpoints, deadline
  /// checks, and shard routing apply.
  void submit_vitality(std::shared_ptr<const Snapshot> oracle,
                       std::vector<VitalityQuery> queries, VitalityCallback done,
                       Deadline deadline = kNoDeadline);
  void submit_vickrey(std::shared_ptr<const Snapshot> oracle,
                      std::vector<VickreyQuery> queries, VickreyCallback done,
                      Deadline deadline = kNoDeadline);
  /// K-fail answers are plain distances, so the callback reuses
  /// BatchResult/BatchCallback.
  void submit_kfail(std::shared_ptr<const Snapshot> oracle, std::vector<KFailQuery> queries,
                    BatchCallback done, Deadline deadline = kNoDeadline);

  /// Attaches the graph behind an oracle digest so 2-edge-failure queries
  /// (a BFS of G - F, not a table read) can be served. build() attaches
  /// automatically; oracles loaded from snapshots need an explicit attach
  /// before |F| == 2 K_FAIL queries work. Attached graphs live in a small
  /// MRU list, so a stream of distinct digests cannot hoard memory.
  void attach_graph(std::uint64_t digest, std::shared_ptr<const Graph> graph);

  /// Graph previously attached for `digest`, or nullptr. Marks the entry
  /// most recently used.
  std::shared_ptr<const Graph> graph_for(std::uint64_t digest);

  /// Runs a closure on the worker pool — the registry layer builds its
  /// registrations through this so they share the serving pool (and its
  /// drain-on-destruction ordering) instead of spawning threads.
  void run_async(std::function<void()> task) { pool_.submit(std::move(task)); }

  unsigned num_threads() const { return pool_.size(); }
  const OracleCache& cache() const { return cache_; }
  /// Mutable access for tests (clock injection on the TTL/refresh paths).
  OracleCache& cache_for_testing() { return cache_; }

  /// Total queries answered since construction (across all batches).
  std::uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }

  /// Router stats for the oracle (nullptr when not sharding or the oracle
  /// has no router yet). Tests use this to assert zero-copy placement.
  std::shared_ptr<const ShardRouter> router(const Snapshot& oracle);

  bool sharding() const { return opts_.shards >= 1; }

 private:
  struct AsyncBatch;

  /// Validated counting-sort of a batch by source index (the in-process
  /// fan-out axis; distinct from the multi-process ShardPlan).
  struct BatchPlan {
    std::vector<std::uint32_t> order;      // query indices, grouped by source
    std::vector<std::size_t> shard_begin;  // sigma+1 prefix bounds into order
  };
  static BatchPlan plan_shards(const Snapshot& oracle, std::span<const Query> queries);
  static void answer_range(const Snapshot& oracle, std::span<const Query> queries,
                           const BatchPlan& plan, std::span<Dist> out, std::uint32_t si,
                           std::size_t lo, std::size_t hi);

  std::future<BatchResult> submit_batch_impl(
      std::function<std::shared_ptr<const Snapshot>()> resolve,
      std::vector<Query> queries, BatchCallback done, Deadline deadline = kNoDeadline);

  /// Returns (creating on first use) the shard router serving `oracle`,
  /// keyed by content digest. Routers are kept in a small LRU so a stream
  /// of distinct oracles cannot accumulate worker processes without bound.
  std::shared_ptr<ShardRouter> router_for(const Snapshot& oracle);

  Options opts_;
  OracleCache cache_;
  // Graphs attached for K_FAIL |F| == 2 service, by oracle content digest,
  // MRU first (bounded; see kMaxAttachedGraphs in the .cpp).
  std::mutex graphs_mu_;
  std::list<std::pair<std::uint64_t, std::shared_ptr<const Graph>>> graphs_;
  // Multi-process shard routers by oracle content digest, MRU first.
  // Declared before pool_: pool tasks route through these, and the pool's
  // destructor drains its queue before the routers shut their workers down.
  std::mutex routers_mu_;
  std::list<std::pair<std::uint64_t, std::shared_ptr<ShardRouter>>> routers_;
  std::atomic<std::uint64_t> queries_served_{0};
  // Declared last so its destructor — which drains queued tasks — runs
  // first: async tasks touch the cache, routers, and counters above.
  ThreadPool pool_;
  // After pool_: unregistered before anything the snapshot callback reads
  // (cache_, queries_served_) is torn down.
  obs::MetricsRegistry::CollectorHandle collector_;
};

}  // namespace msrp::service
