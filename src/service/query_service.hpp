// Batched replacement-path query serving.
//
// The solver's preprocessing is O~(m sqrt(n sigma) + sigma n^2); a point
// query d(s, t, e) is O(1). A serving deployment therefore builds (or
// snapshot-loads) an oracle once and amortizes it over millions of queries.
// QueryService packages that split:
//
//   * build()/load() produce immutable Snapshot oracles through an LRU
//     cache keyed by (graph digest, sources, config fingerprint) — a repeat
//     build of the same instance is a cache hit, not a re-solve;
//   * query_batch() answers a span of (s, t, e) queries on a fixed thread
//     pool. The batch is sharded by source: every worker task reads one
//     source's replacement table, so shards touch disjoint table slices and
//     the read path takes no locks (the oracle is immutable; answer slots
//     are disjoint by query index).
//
// Invalid queries are rejected up front in the calling thread — workers
// only ever see validated indices.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "service/oracle_cache.hpp"
#include "service/snapshot.hpp"
#include "service/thread_pool.hpp"

namespace msrp::service {

/// One point query: length of the shortest s->t path avoiding edge e.
struct Query {
  Vertex s = 0;
  Vertex t = 0;
  EdgeId e = 0;

  friend bool operator==(const Query&, const Query&) = default;
};

class QueryService {
 public:
  struct Options {
    /// Worker threads; 0 = hardware concurrency.
    unsigned threads = 0;
    /// Oracle cache capacity, in oracles.
    std::size_t cache_capacity = 4;
    /// Batches smaller than this answer inline on the calling thread —
    /// below it the fan-out overhead exceeds the O(1)-per-query work.
    std::size_t min_parallel_batch = 2048;
  };

  QueryService() : QueryService(Options{}) {}
  explicit QueryService(Options opts);

  /// Solves MSRP for (g, sources, cfg) — or returns the cached oracle for
  /// an identical instance — and hands back an immutable snapshot oracle.
  std::shared_ptr<const Snapshot> build(const Graph& g, const std::vector<Vertex>& sources,
                                        const Config& cfg = {});

  /// Loads a snapshot from disk into the cache (keyed by its content
  /// digest, so loading the same file twice hits).
  std::shared_ptr<const Snapshot> load(const std::string& path);

  /// Answers queries[i] into result[i]. Throws std::invalid_argument if any
  /// query names a non-source s, or an out-of-range t or e; no partial
  /// answers are produced in that case. Safe to call from several threads
  /// concurrently: batches share the worker pool but track their own
  /// completion.
  std::vector<Dist> query_batch(const Snapshot& oracle, std::span<const Query> queries);

  unsigned num_threads() const { return pool_.size(); }
  const OracleCache& cache() const { return cache_; }

  /// Total queries answered since construction (across all batches).
  std::uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }

 private:
  Options opts_;
  ThreadPool pool_;
  OracleCache cache_;
  std::atomic<std::uint64_t> queries_served_{0};
};

}  // namespace msrp::service
