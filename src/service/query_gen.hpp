/// \file
/// Uniform random query generation against an oracle's dimensions.
///
/// Every surface that load-tests the serving stack — msrp_serve
/// --random-queries, the msrp_client load generator (which only knows the
/// server HELLO, not the oracle), bench rows, test fixtures — wants the
/// same thing: `count` queries with a uniform source, target, and edge.
/// One definition here keeps their sampling identical, so a change to the
/// distribution changes every consumer at once.
#pragma once

#include <span>
#include <vector>

#include "service/query.hpp"
#include "util/rng.hpp"

namespace msrp::service {

/// `count` uniform queries over (sources, n vertices, m edges). Callers
/// own the Rng so repeat batches can continue one stream (or reseed for
/// reproducibility).
inline std::vector<Query> random_query_batch(std::span<const Vertex> sources, Vertex n,
                                             EdgeId m, std::size_t count, Rng& rng) {
  std::vector<Query> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({sources[rng.next_below(sources.size())],
                   static_cast<Vertex>(rng.next_below(n)),
                   static_cast<EdgeId>(rng.next_below(m))});
  }
  return out;
}

}  // namespace msrp::service
