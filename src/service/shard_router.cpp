#include "service/shard_router.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <thread>

#include "util/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MSRP_HAVE_FORK 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#else
#define MSRP_HAVE_FORK 0
#endif

namespace msrp::service {

namespace {

/// Death checks run every 512 no-progress rounds (~10 ms each once the
/// router reaches its sleep backoff); after this many consecutive checks
/// with zero progress (~30 s), a stalled shard is respawned even if its
/// pid probes alive — the safety net against pid reuse and wedged workers.
constexpr std::size_t kStallChecksBeforeForcedRespawn = 3000;

/// Distinct base names even when two routers are built in the same process
/// at the same time (the fuzz suite does exactly that).
std::string make_base_name() {
  static std::atomic<std::uint64_t> counter{0};
#if MSRP_HAVE_FORK
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return "/msrp." + std::to_string(pid) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

bool ShardRouter::supported() {
#if MSRP_HAVE_FORK
  return ShmSegment::supported();
#else
  return false;
#endif
}

ShardRouter::ShardRouter(const Snapshot& oracle, const ShardRouterOptions& opts)
    : opts_(opts), base_name_(make_base_name()) {
  if (!supported()) {
    throw std::runtime_error(
        "shard router: multi-process sharding needs POSIX fork + shared memory");
  }
  MSRP_REQUIRE(opts_.shards >= 1, "shard router: need at least one shard");
  MSRP_REQUIRE(opts_.ring_capacity >= 2 && std::has_single_bit(opts_.ring_capacity),
               "shard router: ring capacity must be a power of two >= 2");

  plan_ = ShardPlan::build(oracle, opts_.shards);
  n_ = oracle.num_vertices();
  m_ = oracle.num_edges();
  source_index_.assign(n_, -1);
  for (std::uint32_t si = 0; si < oracle.num_sources(); ++si) {
    source_index_[oracle.sources()[si]] = static_cast<std::int32_t>(si);
  }

  shards_.resize(plan_.num_shards());
  try {
    for (unsigned k = 0; k < plan_.num_shards(); ++k) place_shard(oracle, k);
    for (unsigned k = 0; k < plan_.num_shards(); ++k) spawn_worker(k);
    for (unsigned k = 0; k < plan_.num_shards(); ++k) wait_worker_ready(k);
  } catch (...) {
    stop_all_workers();  // segments unlink via ~ShmSegment
    throw;
  }
}

ShardRouter::~ShardRouter() { stop_all_workers(); }

void ShardRouter::place_shard(const Snapshot& oracle, unsigned k) {
  Shard& sh = shards_[k];

  // Slice the owned sources out of the full oracle (one transient heap
  // copy of this shard's tables) and encode the v2 image straight into the
  // shared-memory segment — no second heap image of the encoded bytes.
  // Workers (including every respawn) attach the segment zero-copy; after
  // this function the segment holds the only long-lived copy.
  std::vector<std::uint32_t> owned(plan_.end(k) - plan_.begin(k));
  for (std::uint32_t i = 0; i < owned.size(); ++i) owned[i] = plan_.begin(k) + i;
  const Snapshot sliced = oracle.slice(owned);

  sh.snap_seg = ShmSegment::create(shard_snapshot_name(base_name_, k),
                                   sliced.v2_encoded_size());
  sliced.encode_v2_into({sh.snap_seg.data(), sh.snap_seg.size()});

  sh.chan_seg = ShmSegment::create(shard_channel_name(base_name_, k),
                                   ShardChannel::bytes_for(opts_.ring_capacity));
  sh.ch = ShardChannel::init(sh.chan_seg.data(), opts_.ring_capacity, k);

  stats_.segments_placed += 1;
  stats_.bytes_placed += sh.snap_seg.size();
}

void ShardRouter::spawn_worker(unsigned k) {
#if MSRP_HAVE_FORK
  Shard& sh = shards_[k];
  sh.ch->worker_state().store(ShardChannel::kStarting, std::memory_order_release);
  sh.ch->stop_flag().store(0, std::memory_order_release);

  const ::pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("shard router: fork failed");
  if (pid == 0) {
    // Child. Either exec the configured worker binary or serve from the
    // inherited image directly. _exit (not exit) so the parent's atexit
    // hooks and static destructors never run twice.
    if (!opts_.worker_argv.empty()) {
      const std::string spec = base_name_ + ":" + std::to_string(k);
      std::vector<char*> argv;
      argv.reserve(opts_.worker_argv.size() + 3);
      for (const std::string& a : opts_.worker_argv) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      const std::string flag = "--shard-worker";
      argv.push_back(const_cast<char*>(flag.c_str()));
      argv.push_back(const_cast<char*>(spec.c_str()));
      argv.push_back(nullptr);
      ::execvp(argv[0], argv.data());  // execvp: argv[0] may be PATH-relative
      std::fprintf(stderr, "shard router: exec %s failed\n", argv[0]);
      ::_exit(127);
    }
    ::_exit(run_shard_worker({base_name_, k}));
  }
  sh.pid = static_cast<long>(pid);
#else
  (void)k;
  throw std::runtime_error("shard router: fork unavailable");
#endif
}

void ShardRouter::wait_worker_ready(unsigned k) {
  Shard& sh = shards_[k];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.ready_timeout_ms);
  while (sh.ch->worker_state().load(std::memory_order_acquire) != ShardChannel::kReady) {
    if (worker_dead(k)) {
      throw std::runtime_error("shard router: worker " + std::to_string(k) +
                               " exited during startup");
    }
    if (std::chrono::steady_clock::now() > deadline) {
      throw std::runtime_error("shard router: worker " + std::to_string(k) +
                               " not ready in time");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool ShardRouter::worker_dead(unsigned k) {
#if MSRP_HAVE_FORK
  Shard& sh = shards_[k];
  if (sh.pid < 0) return true;
  int status = 0;
  const ::pid_t r = ::waitpid(static_cast<::pid_t>(sh.pid), &status, WNOHANG);
  if (r == 0) return false;  // still running
  if (r < 0 && errno == ECHILD) {
    // Someone else reaped our children (an embedder's SIGCHLD handler, or
    // SIG_IGN auto-reaping). Probe liveness directly — declaring a live
    // worker dead would put two consumers on one SPSC ring.
    if (::kill(static_cast<::pid_t>(sh.pid), 0) == 0) return false;
  }
  sh.pid = -1;  // exited and reaped (by us or by the embedder)
  return true;
#else
  (void)k;
  return true;
#endif
}

void ShardRouter::respawn_worker(unsigned k) {
  Shard& sh = shards_[k];
  // Single-flight by construction: callers hold route_mu_, and worker_dead
  // usually reaped the old pid already. The forced-respawn path (stall
  // deadline, pid-probe fooled by reuse) arrives with pid still set — make
  // sure no old incarnation can touch the rings we are about to reset.
#if MSRP_HAVE_FORK
  if (sh.pid >= 0) {
    ::kill(static_cast<::pid_t>(sh.pid), SIGKILL);
    int status = 0;
    ::waitpid(static_cast<::pid_t>(sh.pid), &status, 0);
    sh.pid = -1;
  }
#endif
  sh.ch->generation().fetch_add(1, std::memory_order_acq_rel);
  sh.ch->reset_rings();
  spawn_worker(k);
  wait_worker_ready(k);
  stats_.respawns += 1;
}

void ShardRouter::stop_all_workers() noexcept {
#if MSRP_HAVE_FORK
  for (Shard& sh : shards_) {
    if (sh.ch != nullptr) sh.ch->stop_flag().store(1, std::memory_order_release);
  }
  for (Shard& sh : shards_) {
    if (sh.pid < 0) continue;
    // Give the worker ~2s to notice the stop flag, then force it.
    int status = 0;
    bool reaped = false;
    for (int i = 0; i < 200; ++i) {
      if (::waitpid(static_cast<::pid_t>(sh.pid), &status, WNOHANG) != 0) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!reaped) {
      ::kill(static_cast<::pid_t>(sh.pid), SIGKILL);
      ::waitpid(static_cast<::pid_t>(sh.pid), &status, 0);
    }
    sh.pid = -1;
  }
#endif
  // ~ShmSegment unmaps and unlinks each owned segment when shards_ dies.
}

std::vector<Dist> ShardRouter::query_batch(std::span<const Query> queries) {
  const unsigned num_shards = plan_.num_shards();

  // Validate and bucket by owning shard before touching any ring. Buckets
  // keep batch order within a shard; tags are batch indices, so the merge
  // is a plain indexed store.
  std::vector<std::deque<std::uint32_t>> pending(num_shards);
  std::vector<std::uint32_t> local_si(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    MSRP_REQUIRE(q.s < n_ && source_index_[q.s] >= 0,
                 "query source is not an oracle source");
    MSRP_REQUIRE(q.t < n_, "query target out of range");
    MSRP_REQUIRE(q.e < m_, "query edge out of range");
    const auto si = static_cast<std::uint32_t>(source_index_[q.s]);
    pending[plan_.shard_of(si)].push_back(static_cast<std::uint32_t>(i));
    local_si[i] = plan_.local_index(si);
  }

  std::vector<Dist> out(queries.size());
  std::size_t remaining = queries.size();

  std::lock_guard<std::mutex> route_lock(route_mu_);
  if (poisoned_) {
    throw std::runtime_error(
        "shard router: poisoned by an earlier unrecoverable worker failure; "
        "destroy and recreate it");
  }
  // Tags pushed to shard k's ring and not yet answered, oldest first. The
  // worker answers in FIFO order, but requeue-after-respawn makes strict
  // FIFO matching too brittle to assert — the merge is tag-indexed anyway.
  std::vector<std::deque<std::uint32_t>> inflight(num_shards);

  try {
    std::size_t idle_rounds = 0;
    std::size_t stalled_checks = 0;  // consecutive death checks with no progress
    while (remaining > 0) {
      bool progress = false;
      for (unsigned k = 0; k < num_shards; ++k) {
        Shard& sh = shards_[k];
        ShardResponse resp;
        while (sh.ch->try_pop_response(resp)) {
          const auto qi = static_cast<std::uint32_t>(resp.tag);
          MSRP_CHECK(qi < out.size(), "shard router: response tag out of range");
          out[qi] = resp.answer;
          --remaining;
          progress = true;
          auto& fl = inflight[k];
          if (!fl.empty() && fl.front() == qi) {
            fl.pop_front();
          } else {
            const auto it = std::find(fl.begin(), fl.end(), qi);
            MSRP_CHECK(it != fl.end(), "shard router: response for unknown tag");
            fl.erase(it);
          }
        }
        while (!pending[k].empty()) {
          const std::uint32_t qi = pending[k].front();
          const Query& q = queries[qi];
          if (!sh.ch->try_push_request({qi, local_si[qi], q.t, q.e, 0})) break;
          pending[k].pop_front();
          inflight[k].push_back(qi);
          progress = true;
        }
      }
      if (progress) {
        idle_rounds = 0;
        stalled_checks = 0;
        continue;
      }
      // No progress: spin briefly for latency, then back off per
      // opts_.backoff (see backoff.hpp for the env knobs), and periodically
      // check whether a stalled shard's worker died under us. A shard that
      // answers nothing for the whole stall deadline is respawned even if
      // the pid still looks alive — waitpid/kill(pid, 0) can be fooled by
      // an embedder auto-reaping children plus pid reuse, and a wedged
      // worker is as gone as a dead one (respawn SIGKILLs the pid first).
      ++idle_rounds;
      if (idle_rounds % 512 == 0) {
        ++stalled_checks;
        for (unsigned k = 0; k < num_shards; ++k) {
          if (inflight[k].empty() && pending[k].empty()) continue;
          if (!worker_dead(k) && stalled_checks < kStallChecksBeforeForcedRespawn) {
            continue;
          }
          // Requeue everything the dead worker still owed us (front of the
          // line, preserving order), reset the rings, and bring up a fresh
          // worker against the already-placed snapshot segment.
          auto& fl = inflight[k];
          for (auto it = fl.rbegin(); it != fl.rend(); ++it) pending[k].push_front(*it);
          fl.clear();
          respawn_worker(k);
          stalled_checks = 0;
        }
      }
      if (idle_rounds > opts_.backoff.spin_rounds) {
        if (opts_.backoff.sleep_us == 0) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(opts_.backoff.sleep_us));
        }
      }
    }
  } catch (...) {
    // An escaping exception (respawn failure, ring-invariant breach) would
    // otherwise strand this batch's requests/responses in the rings and
    // poison every later batch with stale tags. Restore the rings to empty
    // with fresh workers; if that fails too, flag the router unusable.
    recover_after_error();
    throw;
  }

  stats_.queries_routed += queries.size();
  return out;
}

void ShardRouter::recover_after_error() noexcept {
#if MSRP_HAVE_FORK
  for (unsigned k = 0; k < shards_.size(); ++k) {
    Shard& sh = shards_[k];
    try {
      if (sh.pid >= 0) {
        ::kill(static_cast<::pid_t>(sh.pid), SIGKILL);
        int status = 0;
        ::waitpid(static_cast<::pid_t>(sh.pid), &status, 0);
        sh.pid = -1;
      }
      sh.ch->generation().fetch_add(1, std::memory_order_acq_rel);
      sh.ch->reset_rings();
      spawn_worker(k);
      wait_worker_ready(k);
    } catch (...) {
      poisoned_ = true;
    }
  }
#else
  poisoned_ = true;
#endif
}

ShardRouterStats ShardRouter::stats() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return stats_;
}

long ShardRouter::worker_pid(unsigned k) const {
  MSRP_REQUIRE(k < shards_.size(), "shard router: shard index out of range");
  return shards_[k].pid;
}

std::vector<std::string> ShardRouter::segment_names() const {
  std::vector<std::string> names;
  names.reserve(2 * shards_.size());
  for (unsigned k = 0; k < shards_.size(); ++k) {
    names.push_back(shard_snapshot_name(base_name_, k));
    names.push_back(shard_channel_name(base_name_, k));
  }
  return names;
}

}  // namespace msrp::service
