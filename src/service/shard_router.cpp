#include "service/shard_router.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"
#include "util/futex.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MSRP_HAVE_FORK 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#else
#define MSRP_HAVE_FORK 0
#endif
#if defined(__linux__)
#include <sched.h>
#endif

namespace msrp::service {

namespace {

/// After this many consecutive no-progress death checks, a stalled shard
/// is respawned even if its pid probes alive — the safety net against pid
/// reuse and wedged workers. Checks run about every 10 ms once the
/// collector is parked (each bounded doorbell wait doubles as one check),
/// so this is ~30 s.
constexpr std::size_t kStallChecksBeforeForcedRespawn = 3000;

/// Distinct base names even when two routers are built in the same process
/// at the same time (the fuzz suite does exactly that).
std::string make_base_name() {
  static std::atomic<std::uint64_t> counter{0};
#if MSRP_HAVE_FORK
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return "/msrp." + std::to_string(pid) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

/// Bump-then-wake: the bump is what a racing waiter's FUTEX_WAIT compare
/// sees, the wake is for one already parked.
void ring_doorbell(std::atomic<std::uint32_t>& word) {
  word.fetch_add(1, std::memory_order_release);
  util::futex_wake_u32(word, 1);
}

#if defined(__linux__)
void pin_current_thread(unsigned slot) {
  unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) ncpu = 1;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(slot % ncpu, &set);
  ::sched_setaffinity(0, sizeof(set), &set);
}
#else
void pin_current_thread(unsigned) {}
#endif

}  // namespace

bool ShardRouter::supported() {
#if MSRP_HAVE_FORK
  return ShmSegment::supported();
#else
  return false;
#endif
}

ShardRouter::ShardRouter(const Snapshot& oracle, const ShardRouterOptions& opts)
    : opts_(opts), base_name_(make_base_name()) {
  if (!supported()) {
    throw std::runtime_error(
        "shard router: multi-process sharding needs POSIX fork + shared memory");
  }
  MSRP_REQUIRE(opts_.shards >= 1, "shard router: need at least one shard");
  MSRP_REQUIRE(opts_.ring_capacity >= 2 && std::has_single_bit(opts_.ring_capacity),
               "shard router: ring capacity must be a power of two >= 2");

  plan_ = ShardPlan::build(oracle, opts_.shards);
  n_ = oracle.num_vertices();
  m_ = oracle.num_edges();
  source_index_.assign(n_, -1);
  for (std::uint32_t si = 0; si < oracle.num_sources(); ++si) {
    source_index_[oracle.sources()[si]] = static_cast<std::int32_t>(si);
  }

  shards_.resize(plan_.num_shards());
  pending_.resize(plan_.num_shards());
  inflight_.resize(plan_.num_shards());
  try {
    // The doorbell segment must exist before any worker forks: workers
    // open it unconditionally right after the channel.
    bell_seg_ = ShmSegment::create(shard_doorbell_name(base_name_),
                                   ShardDoorbell::bytes_for());
    bell_ = ShardDoorbell::init(bell_seg_.data());
    // The metrics page likewise precedes the first fork: workers attach it
    // (tolerantly) right after the doorbell.
    metrics_page_ = obs::ShmCounterPage::create(shard_metrics_name(base_name_));
    for (unsigned k = 0; k < plan_.num_shards(); ++k) place_shard(oracle, k);
    for (unsigned k = 0; k < plan_.num_shards(); ++k) spawn_worker(k);
    for (unsigned k = 0; k < plan_.num_shards(); ++k) wait_worker_ready(k);
    collector_ = std::thread(&ShardRouter::collector_main, this);
    metrics_collector_ = obs::MetricsRegistry::instance().register_collector(
        [this](obs::MetricsSnapshot& out) {
          ShardRouterStats st;
          {
            std::lock_guard<std::mutex> lock(mu_);
            st = stats_;
          }
          out.counters.push_back({"router.segments_placed", st.segments_placed});
          out.counters.push_back({"router.bytes_placed", st.bytes_placed});
          out.counters.push_back({"router.queries_routed", st.queries_routed});
          out.counters.push_back({"router.batches_routed", st.batches_routed});
          out.counters.push_back({"router.respawns", st.respawns});
          out.counters.push_back({"router.deadlines_expired", st.deadlines_expired});
          out.counters.push_back({"router.ready_wait_us", st.ready_wait_us});
          out.gauges.push_back(
              {"router.peak_inflight_batches",
               static_cast<std::int64_t>(st.peak_inflight_batches)});
          metrics_page_.collect(out, "shard.");
        });
  } catch (...) {
    stop_all_workers();  // segments unlink via ~ShmSegment
    throw;
  }
}

ShardRouter::~ShardRouter() { stop_all_workers(); }

void ShardRouter::place_shard(const Snapshot& oracle, unsigned k) {
  Shard& sh = shards_[k];

  // Slice the owned sources out of the full oracle (one transient heap
  // copy of this shard's tables) and encode the v2 image straight into the
  // shared-memory segment — no second heap image of the encoded bytes.
  // Workers (including every respawn) attach the segment zero-copy; after
  // this function the segment holds the only long-lived copy.
  std::vector<std::uint32_t> owned(plan_.end(k) - plan_.begin(k));
  for (std::uint32_t i = 0; i < owned.size(); ++i) owned[i] = plan_.begin(k) + i;
  const Snapshot sliced = oracle.slice(owned);

  sh.snap_seg = ShmSegment::create(shard_snapshot_name(base_name_, k),
                                   sliced.v2_encoded_size());
  sliced.encode_v2_into({sh.snap_seg.data(), sh.snap_seg.size()});

  sh.chan_seg = ShmSegment::create(shard_channel_name(base_name_, k),
                                   ShardChannel::bytes_for(opts_.ring_capacity));
  sh.ch = ShardChannel::init(sh.chan_seg.data(), opts_.ring_capacity, k);

  stats_.segments_placed += 1;
  stats_.bytes_placed += sh.snap_seg.size();
}

void ShardRouter::spawn_worker(unsigned k) {
  Shard& sh = shards_[k];
  sh.ch->worker_state().store(ShardChannel::kStarting, std::memory_order_release);
  sh.ch->stop_flag().store(0, std::memory_order_release);

  if (opts_.workers_in_process) {
    const bool pin = opts_.pin_workers;
    sh.thr = std::thread([this, k, pin] {
      if (pin) pin_current_thread(k);
      run_shard_worker({base_name_, k});
    });
    return;
  }

#if MSRP_HAVE_FORK
  const ::pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("shard router: fork failed");
  if (pid == 0) {
    // Child. Either exec the configured worker binary or serve from the
    // inherited image directly. _exit (not exit) so the parent's atexit
    // hooks and static destructors never run twice.
    if (opts_.pin_workers) pin_current_thread(k);  // affinity survives exec
    if (!opts_.worker_argv.empty()) {
      const std::string spec = base_name_ + ":" + std::to_string(k);
      std::vector<char*> argv;
      argv.reserve(opts_.worker_argv.size() + 3);
      for (const std::string& a : opts_.worker_argv) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      const std::string flag = "--shard-worker";
      argv.push_back(const_cast<char*>(flag.c_str()));
      argv.push_back(const_cast<char*>(spec.c_str()));
      argv.push_back(nullptr);
      ::execvp(argv[0], argv.data());  // execvp: argv[0] may be PATH-relative
      std::fprintf(stderr, "shard router: exec %s failed\n", argv[0]);
      ::_exit(127);
    }
    ::_exit(run_shard_worker({base_name_, k}));
  }
  std::lock_guard<std::mutex> lk(mu_);
  sh.pid = static_cast<long>(pid);
#else
  (void)k;
  throw std::runtime_error("shard router: fork unavailable");
#endif
}

void ShardRouter::wait_worker_ready(unsigned k) {
  Shard& sh = shards_[k];
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(opts_.ready_timeout_ms);
  // Park on the state word itself: the worker futex-wakes it when storing
  // kReady (or kExited), so the happy path returns within microseconds of
  // the worker coming up instead of on a polling-granularity boundary.
  // Each park is still bounded — a worker killed before it can ring never
  // wakes us, and the death check must keep running.
  std::uint32_t state;
  while ((state = sh.ch->worker_state().load(std::memory_order_acquire)) !=
         ShardChannel::kReady) {
    if (state == ShardChannel::kExited || worker_dead(k)) {
      throw std::runtime_error("shard router: worker " + std::to_string(k) +
                               " exited during startup");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now > deadline) {
      throw std::runtime_error("shard router: worker " + std::to_string(k) +
                               " not ready in time");
    }
    const auto remain_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now).count() + 1);
    util::futex_wait_u32(sh.ch->worker_state(), state,
                         std::min<std::uint64_t>(remain_us, 10000));
  }
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  std::lock_guard<std::mutex> lk(mu_);
  stats_.ready_wait_us += static_cast<std::uint64_t>(waited.count());
}

bool ShardRouter::worker_dead(unsigned k) {
  Shard& sh = shards_[k];
  if (opts_.workers_in_process) {
    if (!sh.thr.joinable()) return true;
    if (sh.ch->worker_state().load(std::memory_order_acquire) == ShardChannel::kExited) {
      sh.thr.join();
      return true;
    }
    return false;
  }
#if MSRP_HAVE_FORK
  long pid;
  {
    std::lock_guard<std::mutex> lk(mu_);
    pid = sh.pid;
  }
  if (pid < 0) return true;
  int status = 0;
  const ::pid_t r = ::waitpid(static_cast<::pid_t>(pid), &status, WNOHANG);
  if (r == 0) return false;  // still running
  if (r < 0 && errno == ECHILD) {
    // Someone else reaped our children (an embedder's SIGCHLD handler, or
    // SIG_IGN auto-reaping). Probe liveness directly — declaring a live
    // worker dead would put two consumers on one SPSC ring.
    if (::kill(static_cast<::pid_t>(pid), 0) == 0) return false;
  }
  std::lock_guard<std::mutex> lk(mu_);
  sh.pid = -1;  // exited and reaped (by us or by the embedder)
  return true;
#else
  (void)k;
  return true;
#endif
}

void ShardRouter::respawn_worker(unsigned k) {
  Shard& sh = shards_[k];
  // Single-flight by construction: only the collector thread respawns, and
  // worker_dead usually reaped the old pid already. The forced-respawn
  // path (stall deadline, pid-probe fooled by reuse) arrives with the pid
  // still set — make sure no old incarnation can touch the rings we are
  // about to reset.
  if (opts_.workers_in_process) {
    if (sh.thr.joinable()) {
      // No SIGKILL for a thread: ask it to stop and wait. A wedged thread
      // would hang here, which the test hook documents as unsupported.
      sh.ch->stop_flag().store(1, std::memory_order_release);
      ring_doorbell(sh.ch->request_doorbell());
      sh.thr.join();
    }
  } else {
#if MSRP_HAVE_FORK
    long pid;
    {
      std::lock_guard<std::mutex> lk(mu_);
      pid = sh.pid;
    }
    if (pid >= 0) {
      ::kill(static_cast<::pid_t>(pid), SIGKILL);
      int status = 0;
      ::waitpid(static_cast<::pid_t>(pid), &status, 0);
      std::lock_guard<std::mutex> lk(mu_);
      sh.pid = -1;
    }
#endif
  }
  // A replacement can die during startup too — a rejected snapshot image,
  // an OOM kill, a crash in attach. Startup death here is cheap to retry,
  // and retrying is strictly better than failing every in-flight batch,
  // so the seat gets a few fresh spawns before the failure counts as
  // sticky and propagates.
  constexpr int kSpawnAttempts = 3;
  for (int attempt = 1;; ++attempt) {
    sh.ch->generation().fetch_add(1, std::memory_order_acq_rel);
    sh.ch->reset_rings();
    spawn_worker(k);
    try {
      wait_worker_ready(k);
      break;
    } catch (const std::runtime_error&) {
      // Reap the failed incarnation so the next spawn starts clean.
#if MSRP_HAVE_FORK
      if (!opts_.workers_in_process) {
        long pid;
        {
          std::lock_guard<std::mutex> lk(mu_);
          pid = sh.pid;
        }
        if (pid >= 0) {
          ::kill(static_cast<::pid_t>(pid), SIGKILL);
          int status = 0;
          ::waitpid(static_cast<::pid_t>(pid), &status, 0);
          std::lock_guard<std::mutex> lk(mu_);
          sh.pid = -1;
        }
      }
#endif
      if (opts_.workers_in_process && sh.thr.joinable()) sh.thr.join();
      if (attempt >= kSpawnAttempts) throw;
      std::lock_guard<std::mutex> lk(mu_);
      stats_.respawns += 1;  // the failed incarnation still counts
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  stats_.respawns += 1;
}

void ShardRouter::stop_all_workers() noexcept {
  // Stop the collector first so nothing below races it on rings or pids.
  {
    std::lock_guard<std::mutex> lk(mu_);
    collector_stop_ = true;
  }
  if (collector_.joinable()) {
    ring_submit_bell();
    collector_.join();
  }

  for (Shard& sh : shards_) {
    if (sh.ch == nullptr) continue;
    sh.ch->stop_flag().store(1, std::memory_order_release);
    // Wake a worker parked on its request doorbell; otherwise it only
    // notices the flag after its bounded wait times out.
    ring_doorbell(sh.ch->request_doorbell());
  }

  if (opts_.workers_in_process) {
    for (Shard& sh : shards_) {
      if (sh.thr.joinable()) sh.thr.join();
    }
    return;
  }

#if MSRP_HAVE_FORK
  // One shared deadline across all pids: every worker was told to stop
  // above, so they wind down concurrently and shutdown costs ~one worker's
  // reaction time, not the sum over shards.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  bool any_alive = true;
  while (any_alive) {
    any_alive = false;
    for (Shard& sh : shards_) {
      if (sh.pid < 0) continue;
      int status = 0;
      if (::waitpid(static_cast<::pid_t>(sh.pid), &status, WNOHANG) != 0) {
        sh.pid = -1;
      } else {
        any_alive = true;
      }
    }
    if (!any_alive || std::chrono::steady_clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (Shard& sh : shards_) {
    if (sh.pid < 0) continue;
    ::kill(static_cast<::pid_t>(sh.pid), SIGKILL);
    int status = 0;
    ::waitpid(static_cast<::pid_t>(sh.pid), &status, 0);
    sh.pid = -1;
  }
#endif
  // ~ShmSegment unmaps and unlinks each owned segment when shards_ dies.
}

std::vector<Dist> ShardRouter::query_batch(std::span<const Query> queries,
                                           Deadline deadline) {
  const unsigned num_shards = plan_.num_shards();
  MSRP_REQUIRE(queries.size() <= 0xffffffffull,
               "shard router: batch exceeds the 2^32 tag-index space");
  if (deadline_expired(deadline)) {
    throw DeadlineExceeded("batch expired before routing");
  }

  // Validate and bucket by owning shard before involving the collector.
  // Buckets keep batch order within a shard; tag indices are batch
  // indices, so the merge is a plain indexed store.
  Batch b;
  b.deadline = deadline;
  b.queries = queries;
  b.local_si.resize(queries.size());
  b.buckets.resize(num_shards);
  b.out.resize(queries.size());
  b.remaining = queries.size();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    MSRP_REQUIRE(q.s < n_ && source_index_[q.s] >= 0,
                 "query source is not an oracle source");
    MSRP_REQUIRE(q.t < n_, "query target out of range");
    MSRP_REQUIRE(q.e < m_, "query edge out of range");
    const auto si = static_cast<std::uint32_t>(source_index_[q.s]);
    b.buckets[plan_.shard_of(si)].push_back(static_cast<std::uint32_t>(i));
    b.local_si[i] = plan_.local_index(si);
  }

  {
    std::unique_lock<std::mutex> lk(mu_);
    if (poisoned_) {
      throw std::runtime_error(
          "shard router: poisoned by an earlier unrecoverable worker failure; "
          "destroy and recreate it");
    }
    if (queries.empty()) {
      stats_.batches_routed += 1;
      return {};
    }
    submitted_.push_back(&b);
  }
  ring_submit_bell();

  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return b.done; });
  }
  if (!b.error.empty()) {
    if (is_deadline_exceeded_message(b.error)) throw DeadlineExceeded(b.error.substr(
        std::min(b.error.size(), kDeadlineExceededPrefix.size() + 2)));
    throw std::runtime_error("shard router: " + b.error);
  }
  return std::move(b.out);
}

void ShardRouter::ring_submit_bell() { ring_doorbell(bell_->seq()); }

void ShardRouter::collector_main() {
  std::size_t idle_rounds = 0;
  std::size_t stalled_checks = 0;  // consecutive death checks with no progress
  bool stop = false;
  while (true) {
    // Snapshot the bell BEFORE polling: any ring that lands after this
    // load makes the futex wait below return immediately, so a wake
    // between "saw nothing to do" and "parked" is never lost.
    const std::uint32_t seen = bell_->seq().load(std::memory_order_acquire);
    try {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stop = collector_stop_;
      }
      if (collector_poll()) {
        idle_rounds = 0;
        stalled_checks = 0;
        continue;
      }
      if (stop) break;

      ++idle_rounds;
      const bool parked_phase = idle_rounds > opts_.backoff.spin_rounds;
      // Death checks cost a waitpid per outstanding shard, so pace them to
      // ~10 ms: in doorbell mode every parked round IS one bounded wait;
      // in polling mode every 512 sleeps.
      const bool check_now = parked_phase && opts_.backoff.use_doorbell
                                 ? true
                                 : (idle_rounds % 512 == 0);
      if (check_now && !active_.empty()) {
        ++stalled_checks;
        for (unsigned k = 0; k < shards_.size(); ++k) {
          if (pending_[k].empty() && inflight_[k].empty()) continue;
          // A shard that answers nothing for the whole stall deadline is
          // respawned even if the pid still looks alive — waitpid or
          // kill(pid, 0) can be fooled by an embedder auto-reaping
          // children plus pid reuse, and a wedged worker is as gone as a
          // dead one (respawn SIGKILLs the pid first).
          if (!worker_dead(k) && stalled_checks < kStallChecksBeforeForcedRespawn) {
            continue;
          }
          requeue_inflight(k);
          respawn_worker(k);
          stalled_checks = 0;
        }
      }
      if (parked_phase) {
        if (opts_.backoff.use_doorbell) {
          util::futex_wait_u32(bell_->seq(), seen, opts_.backoff.wait_timeout_us);
        } else if (opts_.backoff.sleep_us == 0) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(opts_.backoff.sleep_us));
        }
      }
    } catch (const std::exception& ex) {
      // A respawn failure or ring-invariant breach would otherwise strand
      // tags in the rings and mis-merge every later batch. Fail the
      // in-flight batches, restore clean rings + workers; if even that
      // fails the router is poisoned and callers fail fast.
      recover_after_error(ex.what());
      idle_rounds = 0;
      stalled_checks = 0;
    } catch (...) {
      recover_after_error("unknown collector failure");
      idle_rounds = 0;
      stalled_checks = 0;
    }
  }
  // Destruction with callers still blocked is a caller bug, but leave no
  // thread waiting forever.
  fail_all_batches("router destroyed with batches in flight");
}

bool ShardRouter::drain_submissions() {
  std::deque<Batch*> fresh;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fresh.swap(submitted_);
  }
  if (fresh.empty()) return false;
  for (Batch* b : fresh) {
    do {
      b->ns = next_ns_++;
    } while (active_.count(b->ns) != 0);  // 2^32 wrap vs a still-live batch
    active_.emplace(b->ns, b);
    if (b->deadline != kNoDeadline) any_deadline_ = true;
    for (unsigned k = 0; k < shards_.size(); ++k) {
      for (std::uint32_t qi : b->buckets[k]) pending_[k].push_back({b, qi});
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  stats_.peak_inflight_batches =
      std::max<std::uint64_t>(stats_.peak_inflight_batches, active_.size());
  return true;
}

bool ShardRouter::expire_batches() {
  if (!any_deadline_) return false;
  const auto now = std::chrono::steady_clock::now();
  bool any_left = false;
  bool expired_any = false;
  for (auto it = active_.begin(); it != active_.end();) {
    Batch* b = it->second;
    if (b->deadline == kNoDeadline || now < b->deadline) {
      any_left = any_left || b->deadline != kNoDeadline;
      ++it;
      continue;
    }
    // Abandon the batch: purge its unanswered queries everywhere so the
    // deque fronts stay consistent; answers already in the response rings
    // arrive for a namespace no longer active and are dropped by
    // collector_poll. The worker-side work for them is wasted by design —
    // the caller stopped caring at the deadline.
    for (unsigned k = 0; k < shards_.size(); ++k) {
      for (auto* q : {&pending_[k], &inflight_[k]}) {
        q->erase(std::remove_if(q->begin(), q->end(),
                                [&](const Entry& e) { return e.b == b; }),
                 q->end());
      }
    }
    it = active_.erase(it);
    expired_any = true;
    std::lock_guard<std::mutex> lk(mu_);
    b->error = std::string(kDeadlineExceededPrefix) +
               ": batch expired in shard router with " +
               std::to_string(b->remaining) + " answers outstanding";
    b->done = true;
    stats_.deadlines_expired += 1;
    done_cv_.notify_all();
  }
  any_deadline_ = any_left;
  return expired_any;
}

bool ShardRouter::collector_poll() {
  bool progress = drain_submissions();
  progress = expire_batches() || progress;

  for (unsigned k = 0; k < shards_.size(); ++k) {
    Shard& sh = shards_[k];
    ShardResponse resp;
    while (sh.ch->try_pop_response(resp)) {
      progress = true;
      const std::uint32_t ns = tag_namespace(resp.tag);
      const std::uint32_t qi = tag_index(resp.tag);
      const auto it = active_.find(ns);
      if (it == active_.end()) {
        // A late answer for a batch that already expired or failed: its
        // bookkeeping was purged when it completed, so the answer is
        // simply dropped. A namespace that was never issued at all is
        // still an invariant breach.
        MSRP_CHECK(ns < next_ns_, "shard router: response for unknown namespace");
        continue;
      }
      Batch* b = it->second;
      MSRP_CHECK(qi < b->out.size(), "shard router: response tag out of range");
      b->out[qi] = resp.answer;
      --b->remaining;
      auto& fl = inflight_[k];
      if (!fl.empty() && fl.front().b == b && fl.front().qi == qi) {
        fl.pop_front();
      } else {
        const auto fit = std::find_if(fl.begin(), fl.end(), [&](const Entry& e) {
          return e.b == b && e.qi == qi;
        });
        MSRP_CHECK(fit != fl.end(), "shard router: response for unknown tag");
        fl.erase(fit);
      }
      if (b->remaining == 0) {
        active_.erase(ns);
        std::lock_guard<std::mutex> lk(mu_);
        b->done = true;
        stats_.queries_routed += b->queries.size();
        stats_.batches_routed += 1;
        done_cv_.notify_all();
      }
    }

    bool pushed = false;
    auto& pq = pending_[k];
    while (!pq.empty()) {
      const Entry e = pq.front();
      const Query& q = e.b->queries[e.qi];
      if (!sh.ch->try_push_request(
              {make_tag(e.b->ns, e.qi), e.b->local_si[e.qi], q.t, q.e, 0})) {
        break;  // ring full; retry after the worker drains
      }
      pq.pop_front();
      inflight_[k].push_back(e);
      pushed = true;
      progress = true;
    }
    if (pushed) ring_doorbell(sh.ch->request_doorbell());
  }
  return progress;
}

void ShardRouter::requeue_inflight(unsigned k) {
  // Requeue everything the dead worker still owed — across every batch
  // namespace — at the front of the line, preserving order; the rings are
  // reset before the fresh worker attaches, so no tag is lost or doubled.
  auto& fl = inflight_[k];
  for (auto it = fl.rbegin(); it != fl.rend(); ++it) pending_[k].push_front(*it);
  fl.clear();
}

void ShardRouter::fail_all_batches(const std::string& why) {
  std::vector<Batch*> victims;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (Batch* b : submitted_) victims.push_back(b);
    submitted_.clear();
  }
  for (auto& [ns, b] : active_) victims.push_back(b);
  active_.clear();
  for (auto& pq : pending_) pq.clear();
  for (auto& fl : inflight_) fl.clear();
  if (victims.empty()) return;
  std::lock_guard<std::mutex> lk(mu_);
  for (Batch* b : victims) {
    b->error = why;
    b->done = true;
  }
  done_cv_.notify_all();
}

void ShardRouter::recover_after_error(const std::string& why) noexcept {
  try {
    fail_all_batches("unrecoverable failure mid-batch: " + why);
  } catch (...) {
  }
  for (unsigned k = 0; k < shards_.size(); ++k) {
    try {
      respawn_worker(k);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      poisoned_ = true;
    }
  }
}

ShardRouterStats ShardRouter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

long ShardRouter::worker_pid(unsigned k) const {
  MSRP_REQUIRE(k < shards_.size(), "shard router: shard index out of range");
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[k].pid;
}

std::uint64_t ShardRouter::worker_requests_total() const {
  std::uint64_t total = 0;
  for (unsigned k = 0; k < shards_.size(); ++k) {
    const auto* slot =
        metrics_page_.find("worker." + std::to_string(k) + ".requests");
    if (slot != nullptr) total += slot->load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::string> ShardRouter::segment_names() const {
  std::vector<std::string> names;
  names.reserve(2 * shards_.size() + 2);
  names.push_back(shard_doorbell_name(base_name_));
  names.push_back(shard_metrics_name(base_name_));
  for (unsigned k = 0; k < shards_.size(); ++k) {
    names.push_back(shard_snapshot_name(base_name_, k));
    names.push_back(shard_channel_name(base_name_, k));
  }
  return names;
}

}  // namespace msrp::service
