/// \file
/// The point-query type shared by every serving surface.
///
/// Lives in its own header so the shard router and the in-process
/// QueryService (which delegates to the router when sharding is on) can
/// both name it without depending on each other.
#pragma once

#include "graph/graph.hpp"
#include "util/distance.hpp"

namespace msrp::service {

/// One point query: length of the shortest s->t path avoiding edge e.
struct Query {
  Vertex s = 0;
  Vertex t = 0;
  EdgeId e = 0;

  friend bool operator==(const Query&, const Query&) = default;
};

}  // namespace msrp::service
