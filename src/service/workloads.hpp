/// \file
/// Query and result shapes for the served workloads beyond plain d(s,t,e):
/// top-k most-vital edges, Vickrey edge pricing, and k-edge-failure
/// distances. These are the in-process vocabulary shared by the
/// QueryService typed entry points, the wire codec (protocol v3 frames
/// carry exactly these fields), and the differential tests — one
/// definition, so a wire round trip and a local call cannot drift.
///
/// Semantics (all relative to the oracle's canonical BFS trees, so every
/// serving path — in-process, mmap, sharded, wire — answers identically):
///
///   * VitalityQuery(s, t, k): the k edges of the canonical s->t path whose
///     removal hurts most. Each entry carries the edge id, its position on
///     the path (0 = incident to s), and the replacement distance
///     d(s, t, e); vitality is replacement - base (kInfDist for bridges)
///     and entries are ordered by (vitality desc, position asc), exactly
///     like rp::most_vital_edges.
///   * VickreyQuery(s, t): per-edge Vickrey payments along the canonical
///     path. An edge's price is d(s, t, e) - d(s, t) — the detour premium
///     its owner could extract in a second-price auction — kInfDist when
///     the edge is a bridge (monopoly). Prices are in path order.
///   * KFailQuery(s, t, fails): d(s, t) in G - fails for a failure set of
///     at most kMaxKFailEdges edges. |fails| == 1 is answered by the O(1)
///     oracle; |fails| == 2 needs the graph (a bounded BFS via the ftsub
///     machinery); |fails| == 0 degenerates to the base distance.
#pragma once

#include <compare>
#include <cstdint>
#include <vector>

#include "service/query.hpp"
#include "util/distance.hpp"

namespace msrp::service {

/// Most failure sets the serving stack accepts per K_FAIL query. Enforced
/// at wire decode (ProtocolError) and at the service boundary
/// (std::invalid_argument), so no layer below ever sees a larger set.
inline constexpr std::size_t kMaxKFailEdges = 2;

/// Cap on TOP_K_VITAL's k. A path has fewer than n edges, so any larger
/// request is either a typo or an attack on the reply allocator.
inline constexpr std::uint32_t kMaxTopKVital = 1u << 16;

struct VitalityQuery {
  Vertex s = 0;
  Vertex t = 0;
  std::uint32_t k = 0;
  friend bool operator==(const VitalityQuery&, const VitalityQuery&) = default;
};

/// One edge of a vitality answer. `replacement` is d(s, t, edge); the
/// vitality itself (replacement - base, kInfDist for bridges) is derived,
/// not carried — see VitalityResult::vitality_of.
struct VitalityEntry {
  EdgeId edge = kNoEdge;
  std::uint32_t position = 0;  ///< index on the canonical s->t path, 0 at s
  Dist replacement = kInfDist;
  friend bool operator==(const VitalityEntry&, const VitalityEntry&) = default;
};

struct VitalityResult {
  Dist base = kInfDist;  ///< d(s, t); kInfDist when t is unreachable
  /// Top-k entries, (vitality desc, position asc), truncated to k. Empty
  /// when t is unreachable or s == t.
  std::vector<VitalityEntry> edges;

  Dist vitality_of(const VitalityEntry& e) const {
    return e.replacement == kInfDist ? kInfDist : e.replacement - base;
  }
  friend bool operator==(const VitalityResult&, const VitalityResult&) = default;
};

struct VickreyQuery {
  Vertex s = 0;
  Vertex t = 0;
  friend bool operator==(const VickreyQuery&, const VickreyQuery&) = default;
};

/// One priced edge of a Vickrey answer, in canonical path order.
struct VickreyCharge {
  EdgeId edge = kNoEdge;
  Dist price = 0;  ///< d(s,t,edge) - d(s,t); kInfDist = bridge monopoly
  friend bool operator==(const VickreyCharge&, const VickreyCharge&) = default;
};

struct VickreyResult {
  Dist base = kInfDist;  ///< d(s, t); kInfDist when t is unreachable
  std::vector<VickreyCharge> prices;  ///< one per canonical path edge
  friend bool operator==(const VickreyResult&, const VickreyResult&) = default;
};

struct KFailQuery {
  Vertex s = 0;
  Vertex t = 0;
  /// Failed edge ids, |fails| <= kMaxKFailEdges, no duplicates.
  std::vector<EdgeId> fails;
  friend bool operator==(const KFailQuery&, const KFailQuery&) = default;
};

}  // namespace msrp::service
