#include "service/snapshot.hpp"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "service/mmap_file.hpp"
#include "tree/bfs_tree.hpp"
#include "util/failpoint.hpp"
#include "util/fnv.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MSRP_HAVE_FSYNC_SAVE 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace msrp::service {
namespace {

// The v2 read path aliases file bytes as u32/u64 arrays in place.
static_assert(std::endian::native == std::endian::little,
              "snapshot v2 serves little-endian fixed-width sections in place");
static_assert(sizeof(Dist) == 4 && sizeof(Vertex) == 4 && sizeof(EdgeId) == 4,
              "snapshot v2 row layout assumes 4-byte cells and ids");

constexpr char kMagic[8] = {'M', 'S', 'R', 'P', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kV2HeaderBytes = 72;

constexpr std::uint64_t pad8(std::uint64_t v) { return (v + 7) & ~std::uint64_t{7}; }

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

void store_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void store_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }

/// Bounds-checked varint reader over the in-memory v1 image.
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size) : cur_(data), end_(data + size) {}

  std::uint64_t varint() {
    std::uint64_t v = 0;
    std::uint32_t shift = 0;
    while (true) {
      MSRP_REQUIRE(cur_ < end_, "snapshot: truncated varint");
      MSRP_REQUIRE(shift < 64, "snapshot: varint overflow");
      const std::uint8_t byte = *cur_++;
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) return v;
      shift += 7;
    }
  }

  std::uint64_t bounded(std::uint64_t limit, const char* what) {
    const std::uint64_t v = varint();
    MSRP_REQUIRE(v <= limit, what);
    return v;
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - cur_); }

 private:
  const std::uint8_t* cur_;
  const std::uint8_t* end_;
};

}  // namespace

void Snapshot::SourceTable::adopt_owned() {
  dist = dist_store;
  parent = parent_store;
  parent_edge = parent_edge_store;
  row_offset = row_offset_store;
  cells = cells_store;
}

Snapshot Snapshot::capture(const MsrpResult& res) {
  Snapshot snap;
  snap.n_ = res.graph().num_vertices();
  snap.m_ = res.graph().num_edges();
  snap.sources_ = res.sources();
  snap.tables_.resize(snap.sources_.size());

  for (std::uint32_t si = 0; si < snap.sources_.size(); ++si) {
    const Vertex s = snap.sources_[si];
    const BfsTree& tree = res.tree(s);
    SourceTable& tab = snap.tables_[si];
    tab.root = s;
    tab.dist_store.resize(snap.n_);
    tab.parent_store.resize(snap.n_);
    tab.parent_edge_store.resize(snap.n_);
    for (Vertex v = 0; v < snap.n_; ++v) {
      tab.dist_store[v] = tree.dist(v);
      tab.parent_store[v] = tree.parent(v);
      tab.parent_edge_store[v] = tree.parent_edge(v);
    }
    const auto offsets = res.row_offsets(si);
    const auto cells = res.raw_rows(si);
    tab.row_offset_store.assign(offsets.begin(), offsets.end());
    tab.cells_store.assign(cells.begin(), cells.end());
    tab.adopt_owned();
  }
  snap.build_derived();
  snap.content_digest_ = snap.compute_content_digest();
  return snap;
}

Snapshot Snapshot::slice(std::span<const std::uint32_t> source_indices) const {
  MSRP_REQUIRE(!source_indices.empty(), "snapshot slice: no sources");
  Snapshot out;
  out.n_ = n_;
  out.m_ = m_;
  out.sources_.reserve(source_indices.size());
  out.tables_.resize(source_indices.size());
  for (std::size_t i = 0; i < source_indices.size(); ++i) {
    const std::uint32_t si = source_indices[i];
    MSRP_REQUIRE(si < tables_.size(), "snapshot slice: source index out of range");
    const SourceTable& src = tables_[si];
    SourceTable& tab = out.tables_[i];
    out.sources_.push_back(sources_[si]);
    tab.root = src.root;
    tab.dist_store.assign(src.dist.begin(), src.dist.end());
    tab.parent_store.assign(src.parent.begin(), src.parent.end());
    tab.parent_edge_store.assign(src.parent_edge.begin(), src.parent_edge.end());
    tab.row_offset_store.assign(src.row_offset.begin(), src.row_offset.end());
    tab.cells_store.assign(src.cells.begin(), src.cells.end());
    tab.adopt_owned();
  }
  out.build_derived();
  out.content_digest_ = out.compute_content_digest();
  return out;
}

void Snapshot::build_derived() {
  MSRP_REQUIRE(!sources_.empty(), "snapshot: no sources");
  source_index_.assign(n_, -1);
  for (std::uint32_t si = 0; si < sources_.size(); ++si) {
    const Vertex s = sources_[si];
    MSRP_REQUIRE(s < n_, "snapshot: source out of range");
    MSRP_REQUIRE(source_index_[s] < 0, "snapshot: duplicate source");
    source_index_[s] = static_cast<std::int32_t>(si);
  }

  for (SourceTable& tab : tables_) {
    MSRP_REQUIRE(tab.root < n_ && tab.dist[tab.root] == 0,
                 "snapshot: root distance must be 0");
    MSRP_REQUIRE(tab.row_offset[0] == 0, "snapshot: row offsets must start at 0");

    // Derived map: tree edge id -> deeper endpoint. Children lists are kept
    // flat (counting sort by parent) — this runs on every cold v2 load, so
    // it must not pay n small allocations per source.
    tab.edge_child.assign(m_, kNoVertex);
    std::vector<std::uint32_t> child_off(std::size_t{n_} + 1, 0);
    std::size_t reachable = 0;
    for (Vertex v = 0; v < n_; ++v) {
      const Dist d = tab.dist[v];
      // Row accounting first: every avoiding_at() cell read is bounded by
      // these offsets, so they are load-bearing for memory safety.
      const std::uint64_t row_len =
          (d == kInfDist || v == tab.root) ? 0 : std::uint64_t{d};
      MSRP_REQUIRE(tab.row_offset[v + 1] >= tab.row_offset[v] &&
                       tab.row_offset[v + 1] - tab.row_offset[v] == row_len,
                   "snapshot: row length must equal the distance");
      if (d == kInfDist) {
        MSRP_REQUIRE(tab.parent[v] == kNoVertex && tab.parent_edge[v] == kNoEdge,
                     "snapshot: unreachable vertex with a parent");
        continue;
      }
      ++reachable;
      if (v == tab.root) {
        MSRP_REQUIRE(tab.parent[v] == kNoVertex && tab.parent_edge[v] == kNoEdge,
                     "snapshot: root with a parent");
        continue;
      }
      const Vertex p = tab.parent[v];
      const EdgeId pe = tab.parent_edge[v];
      MSRP_REQUIRE(p < n_ && pe < m_, "snapshot: parent out of range");
      MSRP_REQUIRE(tab.dist[p] != kInfDist && tab.dist[p] + 1 == d,
                   "snapshot: parent distance mismatch");
      MSRP_REQUIRE(tab.edge_child[pe] == kNoVertex, "snapshot: edge with two children");
      tab.edge_child[pe] = v;
      ++child_off[std::size_t{p} + 1];
    }
    MSRP_REQUIRE(tab.row_offset[n_] == tab.cells.size(),
                 "snapshot: row accounting mismatch");

    for (Vertex v = 0; v < n_; ++v) child_off[v + 1] += child_off[v];
    std::vector<Vertex> child_buf(child_off[n_]);
    {
      std::vector<std::uint32_t> fill(child_off.begin(), child_off.end() - 1);
      for (Vertex v = 0; v < n_; ++v) {
        if (v == tab.root || tab.dist[v] == kInfDist) continue;
        child_buf[fill[tab.parent[v]]++] = v;
      }
    }

    // DFS entry/exit stamps for the O(1) ancestor test (see tree/ancestry.hpp).
    tab.tin.assign(n_, kNoStamp);
    tab.tout.assign(n_, kNoStamp);
    std::uint32_t stamp = 0;
    std::size_t visited = 0;
    std::vector<std::uint32_t> next(child_off.begin(), child_off.end() - 1);
    std::vector<Vertex> stack{tab.root};
    tab.tin[tab.root] = stamp++;
    ++visited;
    while (!stack.empty()) {
      const Vertex v = stack.back();
      if (next[v] < child_off[std::size_t{v} + 1]) {
        const Vertex c = child_buf[next[v]++];
        tab.tin[c] = stamp++;
        ++visited;
        stack.push_back(c);
      } else {
        tab.tout[v] = stamp++;
        stack.pop_back();
      }
    }
    MSRP_REQUIRE(visited == reachable, "snapshot: tree is not connected to its root");
  }
}

std::uint64_t Snapshot::compute_content_digest() const {
  std::uint64_t digest = fnv::kOffset;
  digest = fnv::mix_u64(digest, n_);
  digest = fnv::mix_u64(digest, m_);
  digest = fnv::mix_u64(digest, sources_.size());
  for (const SourceTable& tab : tables_) {
    digest = fnv::mix_u64(digest, tab.root);
    for (Vertex v = 0; v < n_; ++v) {
      const Dist d = tab.dist[v];
      digest = fnv::mix_u64(digest, d);
      if (d == kInfDist || v == tab.root) continue;
      digest = fnv::mix_u64(digest, tab.parent[v]);
      digest = fnv::mix_u64(digest, tab.parent_edge[v]);
    }
    for (const Dist c : tab.cells) digest = fnv::mix_u64(digest, c);
  }
  return digest;
}

// ------------------------------------------------------------- format v1 ---

std::vector<std::uint8_t> Snapshot::encode_v1() const {
  std::vector<std::uint8_t> out;
  std::size_t cell_total = 0;
  for (const SourceTable& tab : tables_) cell_total += tab.cells.size();
  out.reserve(64 + static_cast<std::size_t>(n_) * sources_.size() * 4 + cell_total * 2);

  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32_le(out, 1);
  put_varint(out, n_);
  put_varint(out, m_);
  put_varint(out, sources_.size());
  for (const SourceTable& tab : tables_) {
    put_varint(out, tab.root);
    for (Vertex v = 0; v < n_; ++v) {
      const Dist d = tab.dist[v];
      if (d == kInfDist) {
        put_varint(out, 0);
        continue;
      }
      put_varint(out, std::uint64_t{d} + 1);
      if (v == tab.root) continue;
      put_varint(out, tab.parent[v]);
      put_varint(out, tab.parent_edge[v]);
      const std::uint64_t off = tab.row_offset[v];
      for (Dist i = 0; i < d; ++i) {
        const Dist cell = tab.cells[off + i];
        put_varint(out, cell == kInfDist ? 0 : std::uint64_t{cell} - d + 1);
      }
    }
  }
  const std::uint64_t checksum =
      fnv::mix_bytes(fnv::kOffset, out.data() + sizeof(kMagic), out.size() - sizeof(kMagic));
  put_u64_le(out, checksum);
  encoded_size_ = out.size();
  return out;
}

Snapshot Snapshot::decode_v1(const std::uint8_t* data, std::size_t size) {
  MSRP_REQUIRE(size >= sizeof(kMagic) + 4 + 8, "snapshot: file too small");

  const std::size_t body_end = size - 8;
  const std::uint64_t stored_checksum = load_u64(data + body_end);
  const std::uint64_t checksum =
      fnv::mix_bytes(fnv::kOffset, data + sizeof(kMagic), body_end - sizeof(kMagic));
  MSRP_REQUIRE(checksum == stored_checksum, "snapshot: checksum mismatch");

  Decoder dec(data + sizeof(kMagic) + 4, body_end - sizeof(kMagic) - 4);
  Snapshot snap;
  snap.n_ = static_cast<Vertex>(dec.bounded(kNoVertex, "snapshot: n too large"));
  snap.m_ = static_cast<EdgeId>(dec.bounded(kNoEdge, "snapshot: m too large"));
  const auto sigma = dec.bounded(snap.n_, "snapshot: more sources than vertices");
  MSRP_REQUIRE(sigma > 0, "snapshot: no sources");
  // Plausibility guards before any header-sized allocation: every vertex
  // record costs at least one byte per source, and m is bounded by the
  // simple-graph maximum — a tiny crafted file cannot claim huge tables.
  MSRP_REQUIRE(dec.remaining() / (std::uint64_t{snap.n_} + 1) >= sigma,
               "snapshot: body too small for claimed dimensions");
  MSRP_REQUIRE(std::uint64_t{snap.m_} <= std::uint64_t{snap.n_} * (snap.n_ - 1) / 2,
               "snapshot: more edges than a simple graph allows");

  snap.sources_.reserve(sigma);
  snap.tables_.resize(sigma);
  for (std::uint64_t si = 0; si < sigma; ++si) {
    SourceTable& tab = snap.tables_[si];
    tab.root = static_cast<Vertex>(dec.bounded(snap.n_ - 1, "snapshot: source out of range"));
    snap.sources_.push_back(tab.root);
    tab.dist_store.assign(snap.n_, kInfDist);
    tab.parent_store.assign(snap.n_, kNoVertex);
    tab.parent_edge_store.assign(snap.n_, kNoEdge);
    tab.row_offset_store.assign(static_cast<std::size_t>(snap.n_) + 1, 0);
    std::uint64_t cell_total = 0;
    for (Vertex v = 0; v < snap.n_; ++v) {
      const std::uint64_t enc = dec.bounded(std::uint64_t{kInfDist}, "snapshot: bad distance");
      tab.row_offset_store[v + 1] = tab.row_offset_store[v];
      if (enc == 0) continue;  // unreachable
      const Dist d = static_cast<Dist>(enc - 1);
      tab.dist_store[v] = d;
      if (v == tab.root) {
        MSRP_REQUIRE(d == 0, "snapshot: nonzero root distance");
        continue;
      }
      MSRP_REQUIRE(d > 0, "snapshot: non-root vertex at distance 0");
      tab.parent_store[v] =
          static_cast<Vertex>(dec.bounded(snap.n_ - 1, "snapshot: parent out of range"));
      MSRP_REQUIRE(snap.m_ > 0, "snapshot: tree edge but m == 0");
      tab.parent_edge_store[v] =
          static_cast<EdgeId>(dec.bounded(snap.m_ - 1, "snapshot: parent edge out of range"));
      cell_total += d;
      tab.row_offset_store[v + 1] = cell_total;
      // Cells are delta-coded against d; the bound keeps cell - 1 + d below
      // kInfDist without any unsigned wrap for out-of-range varints.
      const std::uint64_t max_cell_enc = std::uint64_t{kInfDist} - d;
      for (Dist i = 0; i < d; ++i) {
        const std::uint64_t cell_enc =
            dec.bounded(max_cell_enc, "snapshot: row cell overflows");
        tab.cells_store.push_back(cell_enc == 0 ? kInfDist
                                                : static_cast<Dist>(cell_enc - 1 + d));
      }
    }
    MSRP_REQUIRE(tab.cells_store.size() == cell_total, "snapshot: row accounting mismatch");
    tab.adopt_owned();
  }
  MSRP_REQUIRE(dec.remaining() == 0, "snapshot: trailing bytes");
  snap.build_derived();
  snap.content_digest_ = snap.compute_content_digest();
  snap.encoded_size_ = size;
  return snap;
}

// ------------------------------------------------------------- format v2 ---

std::size_t Snapshot::v2_encoded_size() const {
  std::uint64_t total_cells = 0;
  for (const SourceTable& tab : tables_) total_cells += tab.cells.size();
  const std::uint64_t meta_bytes =
      kV2HeaderBytes + pad8(std::uint64_t{4} * sources_.size()) +
      sources_.size() * (3 * pad8(std::uint64_t{4} * n_) + 8 * (std::uint64_t{n_} + 1));
  return static_cast<std::size_t>(meta_bytes + 4 * total_cells);
}

void Snapshot::encode_v2_into(std::span<std::uint8_t> out) const {
  MSRP_REQUIRE(out.size() == v2_encoded_size(), "snapshot: v2 buffer size mismatch");
  std::uint64_t total_cells = 0;
  for (const SourceTable& tab : tables_) total_cells += tab.cells.size();

  // Fixed-width sections at known offsets: zero the image (padding bytes
  // must be zero), then memcpy each section into place.
  std::uint8_t* p = out.data();
  std::memset(p, 0, out.size());
  std::memcpy(p, kMagic, sizeof(kMagic));
  store_u32(p + 8, 2);
  store_u32(p + 12, kV2HeaderBytes);
  store_u64(p + 16, n_);
  store_u64(p + 24, m_);
  store_u64(p + 32, sources_.size());
  store_u64(p + 40, total_cells);
  store_u64(p + 48, content_digest_);
  // Offsets 56 (meta checksum) and 64 (cells checksum) are patched below.

  std::size_t off = kV2HeaderBytes;
  std::memcpy(p + off, sources_.data(), sources_.size() * 4);
  off += pad8(std::uint64_t{4} * sources_.size());
  for (const SourceTable& tab : tables_) {
    std::memcpy(p + off, tab.dist.data(), std::size_t{n_} * 4);
    off += pad8(std::uint64_t{4} * n_);
    std::memcpy(p + off, tab.parent.data(), std::size_t{n_} * 4);
    off += pad8(std::uint64_t{4} * n_);
    std::memcpy(p + off, tab.parent_edge.data(), std::size_t{n_} * 4);
    off += pad8(std::uint64_t{4} * n_);
    std::memcpy(p + off, tab.row_offset.data(), (std::size_t{n_} + 1) * 8);
    off += (std::uint64_t{n_} + 1) * 8;
  }
  const std::size_t cells_off = off;
  for (const SourceTable& tab : tables_) {
    if (tab.cells.empty()) continue;
    std::memcpy(p + off, tab.cells.data(), tab.cells.size() * 4);
    off += tab.cells.size() * 4;
  }
  MSRP_CHECK(off == out.size(), "snapshot: v2 layout accounting mismatch");

  const std::uint64_t cells_ck =
      fnv::mix_bytes(fnv::kOffset, p + cells_off, out.size() - cells_off);
  store_u64(p + 64, cells_ck);
  std::uint64_t meta_ck = fnv::mix_bytes(fnv::kOffset, p + 16, 40);
  meta_ck = fnv::mix_bytes(meta_ck, p + 64, 8);
  meta_ck = fnv::mix_bytes(meta_ck, p + kV2HeaderBytes, cells_off - kV2HeaderBytes);
  store_u64(p + 56, meta_ck);

  encoded_size_ = out.size();
}

std::vector<std::uint8_t> Snapshot::encode_v2() const {
  std::vector<std::uint8_t> out(v2_encoded_size());
  encode_v2_into(out);
  return out;
}

Snapshot Snapshot::attach_v2(const std::uint8_t* data, std::size_t size,
                             std::shared_ptr<const void> anchor, bool verify_cells,
                             bool mapped) {
  MSRP_REQUIRE(size >= kV2HeaderBytes, "snapshot: file too small");
  MSRP_REQUIRE(load_u32(data + 12) == kV2HeaderBytes, "snapshot: bad v2 header size");
  const std::uint64_t n64 = load_u64(data + 16);
  const std::uint64_t m64 = load_u64(data + 24);
  const std::uint64_t sigma = load_u64(data + 32);
  const std::uint64_t total_cells = load_u64(data + 40);
  const std::uint64_t digest = load_u64(data + 48);
  const std::uint64_t meta_ck = load_u64(data + 56);
  const std::uint64_t cells_ck = load_u64(data + 64);

  MSRP_REQUIRE(n64 > 0 && n64 < kNoVertex, "snapshot: n out of range");
  MSRP_REQUIRE(m64 < kNoEdge, "snapshot: m out of range");
  MSRP_REQUIRE(sigma > 0 && sigma <= n64, "snapshot: bad source count");
  MSRP_REQUIRE(m64 <= n64 * (n64 - 1) / 2, "snapshot: more edges than a simple graph allows");

  // Overflow-safe layout check: every section must fit inside the file, so
  // divide by the per-table footprint rather than multiplying by sigma.
  const std::uint64_t src_bytes = pad8(4 * sigma);
  const std::uint64_t table_bytes = 3 * pad8(4 * n64) + 8 * (n64 + 1);
  MSRP_REQUIRE(size >= kV2HeaderBytes + src_bytes &&
                   (size - kV2HeaderBytes - src_bytes) / table_bytes >= sigma,
               "snapshot: body too small for claimed dimensions");
  const std::uint64_t cells_off = kV2HeaderBytes + src_bytes + sigma * table_bytes;
  MSRP_REQUIRE(total_cells <= (size - cells_off) / 4 &&
                   cells_off + 4 * total_cells == size,
               "snapshot: file size does not match claimed dimensions");

  std::uint64_t want_meta = fnv::mix_bytes(fnv::kOffset, data + 16, 40);
  want_meta = fnv::mix_bytes(want_meta, data + 64, 8);
  want_meta = fnv::mix_bytes(want_meta, data + kV2HeaderBytes, cells_off - kV2HeaderBytes);
  MSRP_REQUIRE(want_meta == meta_ck, "snapshot: metadata checksum mismatch");
  if (verify_cells) {
    const std::uint64_t want_cells =
        fnv::mix_bytes(fnv::kOffset, data + cells_off, static_cast<std::size_t>(4 * total_cells));
    MSRP_REQUIRE(want_cells == cells_ck, "snapshot: cells checksum mismatch");
  }

  Snapshot snap;
  snap.n_ = static_cast<Vertex>(n64);
  snap.m_ = static_cast<EdgeId>(m64);
  const auto* src_ptr = reinterpret_cast<const Vertex*>(data + kV2HeaderBytes);
  snap.sources_.assign(src_ptr, src_ptr + sigma);
  snap.tables_.resize(sigma);

  std::uint64_t off = kV2HeaderBytes + src_bytes;
  std::uint64_t cell_base = 0;
  const auto* cells_ptr = reinterpret_cast<const Dist*>(data + cells_off);
  for (std::uint64_t si = 0; si < sigma; ++si) {
    SourceTable& tab = snap.tables_[si];
    tab.root = snap.sources_[si];
    tab.dist = {reinterpret_cast<const Dist*>(data + off), n64};
    off += pad8(4 * n64);
    tab.parent = {reinterpret_cast<const Vertex*>(data + off), n64};
    off += pad8(4 * n64);
    tab.parent_edge = {reinterpret_cast<const EdgeId*>(data + off), n64};
    off += pad8(4 * n64);
    tab.row_offset = {reinterpret_cast<const std::uint64_t*>(data + off), n64 + 1};
    off += 8 * (n64 + 1);
    const std::uint64_t declared = tab.row_offset[n64];
    MSRP_REQUIRE(declared <= total_cells - cell_base,
                 "snapshot: per-source cell counts exceed the cells section");
    tab.cells = {cells_ptr + cell_base, declared};
    cell_base += declared;
  }
  MSRP_REQUIRE(cell_base == total_cells, "snapshot: per-source cell counts mismatch");

  snap.build_derived();
  snap.content_digest_ = digest;
  snap.encoded_size_ = size;
  snap.mapped_ = mapped;
  snap.anchor_ = std::move(anchor);
  return snap;
}

// ----------------------------------------------------------- entry points ---

Snapshot Snapshot::from_image(const std::uint8_t* data, std::size_t size,
                              std::shared_ptr<const void> anchor, const LoadOptions& opts,
                              bool mapped) {
  MSRP_REQUIRE(size >= sizeof(kMagic) + 4, "snapshot: file too small");
  MSRP_REQUIRE(std::memcmp(data, kMagic, sizeof(kMagic)) == 0, "snapshot: bad magic");
  const std::uint32_t version = load_u32(data + sizeof(kMagic));
  if (version == 1) return decode_v1(data, size);  // decoded copy; anchor not needed
  MSRP_REQUIRE(version == 2, "snapshot: unsupported version");
  return attach_v2(data, size, std::move(anchor), opts.verify_cells, mapped);
}

std::vector<std::uint8_t> Snapshot::encode(SnapshotFormat format) const {
  return format == SnapshotFormat::kV1 ? encode_v1() : encode_v2();
}

Snapshot Snapshot::attach(const std::uint8_t* data, std::size_t size,
                          std::shared_ptr<const void> anchor, const LoadOptions& opts) {
  return from_image(data, size, std::move(anchor), opts, /*mapped=*/true);
}

void Snapshot::write(std::ostream& os, SnapshotFormat format) const {
  const std::vector<std::uint8_t> buf = encode(format);
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
}

Snapshot Snapshot::read(std::istream& is) {
  auto buf = std::make_shared<std::vector<std::uint8_t>>(
      std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>{});
  const std::uint8_t* data = buf->data();
  const std::size_t size = buf->size();
  return from_image(data, size, buf, LoadOptions{}, /*mapped=*/false);
}

void Snapshot::save(const std::string& path, SnapshotFormat format) const {
  // Crash-safe save: write a temp file IN THE TARGET DIRECTORY (rename is
  // only atomic within a filesystem), fsync it, then rename over `path`.
  // A crash at any point leaves either the old file or the complete new
  // one — never a truncated snapshot a later load would choke on.
  const std::vector<std::uint8_t> buf = encode(format);
  const std::string tmp = path + ".tmp." + std::to_string(
#if MSRP_HAVE_FSYNC_SAVE
      static_cast<unsigned long>(::getpid())
#else
      0ul
#endif
  );
#if MSRP_HAVE_FSYNC_SAVE
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw std::runtime_error("cannot open for writing: " + tmp);
  std::size_t off = 0;
  while (off < buf.size()) {
    const ::ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      throw std::runtime_error("write failed: " + tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    throw std::runtime_error("fsync failed: " + tmp);
  }
  ::close(fd);
#else
  {
    std::ofstream f(tmp, std::ios::binary);
    if (!f) throw std::runtime_error("cannot open for writing: " + tmp);
    f.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    f.flush();
    if (!f) {
      std::remove(tmp.c_str());
      throw std::runtime_error("write failed: " + tmp);
    }
  }
#endif
  // crash action: the durable temp file exists but `path` was never
  // replaced — exactly the mid-save power cut the rename protects against.
  (void)MSRP_FAILPOINT("snapshot.save");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("rename failed: " + tmp + " -> " + path);
  }
}

Snapshot Snapshot::load(const std::string& path, const LoadOptions& opts) {
  if (opts.use_mmap) {
    auto map = std::make_shared<MmapFile>(MmapFile::open(path));
    const std::uint8_t* data = map->data();
    const std::size_t size = map->size();
    const bool mapped = map->is_mapped();  // false on the buffered fallback
    return from_image(data, size, map, opts, mapped);
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  f.seekg(0, std::ios::end);
  const std::streamoff len = f.tellg();
  f.seekg(0, std::ios::beg);
  auto buf = std::make_shared<std::vector<std::uint8_t>>(static_cast<std::size_t>(len));
  f.read(reinterpret_cast<char*>(buf->data()), len);
  if (!f) throw std::runtime_error("read failed: " + path);
  const std::uint8_t* data = buf->data();
  const std::size_t size = buf->size();
  return from_image(data, size, buf, opts, /*mapped=*/false);
}

std::size_t Snapshot::footprint_bytes() const {
  std::size_t bytes = sizeof(Snapshot) + sources_.capacity() * sizeof(Vertex) +
                      source_index_.capacity() * sizeof(std::int32_t);
  for (const SourceTable& tab : tables_) {
    bytes += tab.dist.size() * sizeof(Dist) + tab.parent.size() * sizeof(Vertex) +
             tab.parent_edge.size() * sizeof(EdgeId) +
             tab.row_offset.size() * sizeof(std::uint64_t) +
             tab.cells.size() * sizeof(Dist);
    bytes += tab.edge_child.size() * sizeof(Vertex) +
             (tab.tin.size() + tab.tout.size()) * sizeof(std::uint32_t);
  }
  return bytes;
}

// ------------------------------------------------------------ point reads ---

std::uint32_t Snapshot::source_index(Vertex s) const {
  MSRP_REQUIRE(s < n_ && source_index_[s] >= 0, "not a source in the snapshot");
  return static_cast<std::uint32_t>(source_index_[s]);
}

Dist Snapshot::shortest(Vertex s, Vertex t) const {
  const std::uint32_t si = source_index(s);
  MSRP_REQUIRE(t < n_, "target out of range");
  return tables_[si].dist[t];
}

std::span<const Dist> Snapshot::row(Vertex s, Vertex t) const {
  const std::uint32_t si = source_index(s);
  MSRP_REQUIRE(t < n_, "target out of range");
  const SourceTable& tab = tables_[si];
  return {tab.cells.data() + tab.row_offset[t], tab.cells.data() + tab.row_offset[t + 1]};
}

std::vector<EdgeId> Snapshot::canonical_path(Vertex s, Vertex t) const {
  const std::uint32_t si = source_index(s);
  MSRP_REQUIRE(t < n_, "target out of range");
  const SourceTable& tab = tables_[si];
  const Dist dt = tab.dist[t];
  if (dt == kInfDist || dt == 0) return {};
  std::vector<EdgeId> path(dt);
  Vertex v = t;
  for (Dist i = dt; i > 0; --i) {
    path[i - 1] = tab.parent_edge[v];
    v = tab.parent[v];
  }
  return path;
}

Dist Snapshot::avoiding(Vertex s, Vertex t, EdgeId e) const {
  const std::uint32_t si = source_index(s);
  MSRP_REQUIRE(t < n_, "target out of range");
  MSRP_REQUIRE(e < m_, "edge out of range");
  return avoiding_at(si, t, e);
}

}  // namespace msrp::service
