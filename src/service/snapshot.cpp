#include "service/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "tree/bfs_tree.hpp"
#include "util/fnv.hpp"

namespace msrp::service {
namespace {

constexpr char kMagic[8] = {'M', 'S', 'R', 'P', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kVersion = 1;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Bounds-checked varint reader over the in-memory image.
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size) : cur_(data), end_(data + size) {}

  std::uint64_t varint() {
    std::uint64_t v = 0;
    std::uint32_t shift = 0;
    while (true) {
      MSRP_REQUIRE(cur_ < end_, "snapshot: truncated varint");
      MSRP_REQUIRE(shift < 64, "snapshot: varint overflow");
      const std::uint8_t byte = *cur_++;
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) return v;
      shift += 7;
    }
  }

  std::uint64_t bounded(std::uint64_t limit, const char* what) {
    const std::uint64_t v = varint();
    MSRP_REQUIRE(v <= limit, what);
    return v;
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - cur_); }

 private:
  const std::uint8_t* cur_;
  const std::uint8_t* end_;
};

}  // namespace

Snapshot Snapshot::capture(const MsrpResult& res) {
  Snapshot snap;
  snap.n_ = res.graph().num_vertices();
  snap.m_ = res.graph().num_edges();
  snap.sources_ = res.sources();
  snap.tables_.resize(snap.sources_.size());

  for (std::uint32_t si = 0; si < snap.sources_.size(); ++si) {
    const Vertex s = snap.sources_[si];
    const BfsTree& tree = res.tree(s);
    SourceTable& tab = snap.tables_[si];
    tab.root = s;
    tab.dist.resize(snap.n_);
    tab.parent.resize(snap.n_);
    tab.parent_edge.resize(snap.n_);
    for (Vertex v = 0; v < snap.n_; ++v) {
      tab.dist[v] = tree.dist(v);
      tab.parent[v] = tree.parent(v);
      tab.parent_edge[v] = tree.parent_edge(v);
    }
    const auto offsets = res.row_offsets(si);
    const auto cells = res.raw_rows(si);
    tab.row_offset.assign(offsets.begin(), offsets.end());
    tab.cells.assign(cells.begin(), cells.end());
  }
  snap.finalize();
  return snap;
}

void Snapshot::finalize() {
  MSRP_REQUIRE(!sources_.empty(), "snapshot: no sources");
  source_index_.assign(n_, -1);
  for (std::uint32_t si = 0; si < sources_.size(); ++si) {
    const Vertex s = sources_[si];
    MSRP_REQUIRE(s < n_, "snapshot: source out of range");
    MSRP_REQUIRE(source_index_[s] < 0, "snapshot: duplicate source");
    source_index_[s] = static_cast<std::int32_t>(si);
  }

  std::uint64_t digest = fnv::kOffset;
  digest = fnv::mix_u64(digest, n_);
  digest = fnv::mix_u64(digest, m_);
  digest = fnv::mix_u64(digest, sources_.size());

  for (SourceTable& tab : tables_) {
    MSRP_REQUIRE(tab.dist[tab.root] == 0, "snapshot: root distance must be 0");
    digest = fnv::mix_u64(digest, tab.root);

    // Derived map: tree edge id -> deeper endpoint.
    tab.edge_child.assign(m_, kNoVertex);
    std::vector<std::vector<Vertex>> children(n_);
    std::size_t reachable = 0;
    for (Vertex v = 0; v < n_; ++v) {
      const Dist d = tab.dist[v];
      digest = fnv::mix_u64(digest, d);
      if (d == kInfDist) {
        MSRP_REQUIRE(tab.parent[v] == kNoVertex && tab.parent_edge[v] == kNoEdge,
                     "snapshot: unreachable vertex with a parent");
        continue;
      }
      ++reachable;
      if (v == tab.root) {
        MSRP_REQUIRE(tab.parent[v] == kNoVertex && tab.parent_edge[v] == kNoEdge,
                     "snapshot: root with a parent");
        continue;
      }
      const Vertex p = tab.parent[v];
      const EdgeId pe = tab.parent_edge[v];
      MSRP_REQUIRE(p < n_ && pe < m_, "snapshot: parent out of range");
      MSRP_REQUIRE(tab.dist[p] != kInfDist && tab.dist[p] + 1 == d,
                   "snapshot: parent distance mismatch");
      MSRP_REQUIRE(tab.edge_child[pe] == kNoVertex, "snapshot: edge with two children");
      tab.edge_child[pe] = v;
      children[p].push_back(v);
      digest = fnv::mix_u64(digest, p);
      digest = fnv::mix_u64(digest, pe);
    }
    for (const Dist c : tab.cells) digest = fnv::mix_u64(digest, c);

    // DFS entry/exit stamps for the O(1) ancestor test (see tree/ancestry.hpp).
    tab.tin.assign(n_, kNoStamp);
    tab.tout.assign(n_, kNoStamp);
    std::uint32_t stamp = 0;
    std::size_t visited = 0;
    std::vector<std::pair<Vertex, std::uint32_t>> stack{{tab.root, 0}};
    while (!stack.empty()) {
      auto& [v, next_child] = stack.back();
      if (next_child == 0) {
        tab.tin[v] = stamp++;
        ++visited;
      }
      if (next_child < children[v].size()) {
        const Vertex c = children[v][next_child++];
        stack.emplace_back(c, 0);
      } else {
        tab.tout[v] = stamp++;
        stack.pop_back();
      }
    }
    MSRP_REQUIRE(visited == reachable, "snapshot: tree is not connected to its root");
  }
  content_digest_ = digest;
}

std::vector<std::uint8_t> Snapshot::encode() const {
  std::vector<std::uint8_t> out;
  std::size_t cell_total = 0;
  for (const SourceTable& tab : tables_) cell_total += tab.cells.size();
  out.reserve(64 + static_cast<std::size_t>(n_) * sources_.size() * 4 + cell_total * 2);

  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32_le(out, kVersion);
  put_varint(out, n_);
  put_varint(out, m_);
  put_varint(out, sources_.size());
  for (const SourceTable& tab : tables_) {
    put_varint(out, tab.root);
    for (Vertex v = 0; v < n_; ++v) {
      const Dist d = tab.dist[v];
      if (d == kInfDist) {
        put_varint(out, 0);
        continue;
      }
      put_varint(out, std::uint64_t{d} + 1);
      if (v == tab.root) continue;
      put_varint(out, tab.parent[v]);
      put_varint(out, tab.parent_edge[v]);
      const std::uint64_t off = tab.row_offset[v];
      for (Dist i = 0; i < d; ++i) {
        const Dist cell = tab.cells[off + i];
        put_varint(out, cell == kInfDist ? 0 : std::uint64_t{cell} - d + 1);
      }
    }
  }
  const std::uint64_t checksum =
      fnv::mix_bytes(fnv::kOffset, out.data() + sizeof(kMagic), out.size() - sizeof(kMagic));
  put_u64_le(out, checksum);
  encoded_size_ = out.size();
  return out;
}

Snapshot Snapshot::decode(const std::uint8_t* data, std::size_t size) {
  MSRP_REQUIRE(size >= sizeof(kMagic) + 4 + 8, "snapshot: file too small");
  MSRP_REQUIRE(std::memcmp(data, kMagic, sizeof(kMagic)) == 0, "snapshot: bad magic");

  const std::size_t body_end = size - 8;
  std::uint64_t stored_checksum = 0;
  for (int i = 7; i >= 0; --i) stored_checksum = (stored_checksum << 8) | data[body_end + i];
  const std::uint64_t checksum =
      fnv::mix_bytes(fnv::kOffset, data + sizeof(kMagic), body_end - sizeof(kMagic));
  MSRP_REQUIRE(checksum == stored_checksum, "snapshot: checksum mismatch");

  std::uint32_t version = 0;
  for (int i = 3; i >= 0; --i) version = (version << 8) | data[sizeof(kMagic) + i];
  MSRP_REQUIRE(version == kVersion, "snapshot: unsupported version");

  Decoder dec(data + sizeof(kMagic) + 4, body_end - sizeof(kMagic) - 4);
  Snapshot snap;
  snap.n_ = static_cast<Vertex>(dec.bounded(kNoVertex, "snapshot: n too large"));
  snap.m_ = static_cast<EdgeId>(dec.bounded(kNoEdge, "snapshot: m too large"));
  const auto sigma = dec.bounded(snap.n_, "snapshot: more sources than vertices");
  MSRP_REQUIRE(sigma > 0, "snapshot: no sources");
  // Plausibility guards before any header-sized allocation: every vertex
  // record costs at least one byte per source, and m is bounded by the
  // simple-graph maximum — a tiny crafted file cannot claim huge tables.
  MSRP_REQUIRE(dec.remaining() >= sigma * (std::uint64_t{snap.n_} + 1),
               "snapshot: body too small for claimed dimensions");
  MSRP_REQUIRE(std::uint64_t{snap.m_} <= std::uint64_t{snap.n_} * (snap.n_ - 1) / 2,
               "snapshot: more edges than a simple graph allows");

  snap.sources_.reserve(sigma);
  snap.tables_.resize(sigma);
  for (std::uint64_t si = 0; si < sigma; ++si) {
    SourceTable& tab = snap.tables_[si];
    tab.root = static_cast<Vertex>(dec.bounded(snap.n_ - 1, "snapshot: source out of range"));
    snap.sources_.push_back(tab.root);
    tab.dist.assign(snap.n_, kInfDist);
    tab.parent.assign(snap.n_, kNoVertex);
    tab.parent_edge.assign(snap.n_, kNoEdge);
    tab.row_offset.assign(static_cast<std::size_t>(snap.n_) + 1, 0);
    std::uint64_t cell_total = 0;
    for (Vertex v = 0; v < snap.n_; ++v) {
      const std::uint64_t enc = dec.bounded(std::uint64_t{kInfDist}, "snapshot: bad distance");
      tab.row_offset[v + 1] = tab.row_offset[v];
      if (enc == 0) continue;  // unreachable
      const Dist d = static_cast<Dist>(enc - 1);
      tab.dist[v] = d;
      if (v == tab.root) {
        MSRP_REQUIRE(d == 0, "snapshot: nonzero root distance");
        continue;
      }
      MSRP_REQUIRE(d > 0, "snapshot: non-root vertex at distance 0");
      tab.parent[v] =
          static_cast<Vertex>(dec.bounded(snap.n_ - 1, "snapshot: parent out of range"));
      MSRP_REQUIRE(snap.m_ > 0, "snapshot: tree edge but m == 0");
      tab.parent_edge[v] =
          static_cast<EdgeId>(dec.bounded(snap.m_ - 1, "snapshot: parent edge out of range"));
      cell_total += d;
      tab.row_offset[v + 1] = cell_total;
      // Cells are delta-coded against d; the bound keeps cell - 1 + d below
      // kInfDist without any unsigned wrap for out-of-range varints.
      const std::uint64_t max_cell_enc = std::uint64_t{kInfDist} - d;
      for (Dist i = 0; i < d; ++i) {
        const std::uint64_t cell_enc =
            dec.bounded(max_cell_enc, "snapshot: row cell overflows");
        tab.cells.push_back(cell_enc == 0 ? kInfDist
                                          : static_cast<Dist>(cell_enc - 1 + d));
      }
    }
    MSRP_REQUIRE(tab.cells.size() == cell_total, "snapshot: row accounting mismatch");
  }
  MSRP_REQUIRE(dec.remaining() == 0, "snapshot: trailing bytes");
  snap.finalize();
  snap.encoded_size_ = size;
  return snap;
}

void Snapshot::write(std::ostream& os) const {
  const std::vector<std::uint8_t> buf = encode();
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size()));
}

Snapshot Snapshot::read(std::istream& is) {
  std::vector<std::uint8_t> buf(std::istreambuf_iterator<char>(is),
                                std::istreambuf_iterator<char>{});
  return decode(buf.data(), buf.size());
}

void Snapshot::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  const std::vector<std::uint8_t> buf = encode();
  f.write(reinterpret_cast<const char*>(buf.data()), static_cast<std::streamsize>(buf.size()));
  if (!f) throw std::runtime_error("write failed: " + path);
}

Snapshot Snapshot::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  f.seekg(0, std::ios::end);
  const std::streamoff len = f.tellg();
  f.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(len));
  f.read(reinterpret_cast<char*>(buf.data()), len);
  if (!f) throw std::runtime_error("read failed: " + path);
  return decode(buf.data(), buf.size());
}

std::uint32_t Snapshot::source_index(Vertex s) const {
  MSRP_REQUIRE(s < n_ && source_index_[s] >= 0, "not a source in the snapshot");
  return static_cast<std::uint32_t>(source_index_[s]);
}

Dist Snapshot::shortest(Vertex s, Vertex t) const {
  const std::uint32_t si = source_index(s);
  MSRP_REQUIRE(t < n_, "target out of range");
  return tables_[si].dist[t];
}

std::span<const Dist> Snapshot::row(Vertex s, Vertex t) const {
  const std::uint32_t si = source_index(s);
  MSRP_REQUIRE(t < n_, "target out of range");
  const SourceTable& tab = tables_[si];
  return {tab.cells.data() + tab.row_offset[t], tab.cells.data() + tab.row_offset[t + 1]};
}

Dist Snapshot::avoiding(Vertex s, Vertex t, EdgeId e) const {
  const std::uint32_t si = source_index(s);
  MSRP_REQUIRE(t < n_, "target out of range");
  MSRP_REQUIRE(e < m_, "edge out of range");
  return avoiding_at(si, t, e);
}

}  // namespace msrp::service
