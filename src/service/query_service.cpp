#include "service/query_service.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "core/msrp.hpp"
#include "graph/io.hpp"

namespace msrp::service {

QueryService::QueryService(Options opts)
    : opts_(opts), pool_(opts.threads), cache_(opts.cache_capacity) {}

std::shared_ptr<const Snapshot> QueryService::build(const Graph& g,
                                                    const std::vector<Vertex>& sources,
                                                    const Config& cfg) {
  OracleKey key{io::graph_digest(g), sources, config_fingerprint(cfg)};
  return cache_.get_or_build(key, [&] {
    const MsrpResult res = solve_msrp(g, sources, cfg);
    return std::make_shared<const Snapshot>(Snapshot::capture(res));
  });
}

std::shared_ptr<const Snapshot> QueryService::load(const std::string& path) {
  auto snap = std::make_shared<const Snapshot>(Snapshot::load(path));
  // Snapshots carry no (graph, config) identity, so they are cached under
  // their content digest; config_fingerprint 0 keeps the key space disjoint
  // from built oracles (config_fingerprint() never returns 0 in practice).
  OracleKey key{snap->content_digest(), snap->sources(), 0};
  if (auto hit = cache_.find(key)) return hit;
  cache_.insert(key, snap);
  return snap;
}

std::vector<Dist> QueryService::query_batch(const Snapshot& oracle,
                                            std::span<const Query> queries) {
  const Vertex n = oracle.num_vertices();
  const EdgeId m = oracle.num_edges();
  const std::uint32_t sigma = oracle.num_sources();

  // Validate everything before any worker sees the batch, and counting-sort
  // the query indices by source while at it (the sharding axis). The flat
  // `order` array keeps each source's shard contiguous with one allocation —
  // this pass is the only serial work per batch, so it stays lean.
  std::vector<std::uint32_t> si_of(queries.size());
  std::vector<std::size_t> shard_begin(sigma + 1, 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    MSRP_REQUIRE(oracle.is_source(q.s), "query source is not an oracle source");
    MSRP_REQUIRE(q.t < n, "query target out of range");
    MSRP_REQUIRE(q.e < m, "query edge out of range");
    si_of[i] = oracle.source_index(q.s);
    ++shard_begin[si_of[i] + 1];
  }
  for (std::uint32_t si = 0; si < sigma; ++si) shard_begin[si + 1] += shard_begin[si];
  std::vector<std::uint32_t> order(queries.size());
  {
    std::vector<std::size_t> fill(shard_begin.begin(), shard_begin.end() - 1);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      order[fill[si_of[i]]++] = static_cast<std::uint32_t>(i);
    }
  }

  std::vector<Dist> out(queries.size());
  auto answer_range = [&oracle, &queries, &out, &order](std::uint32_t si, std::size_t lo,
                                                        std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      const Query& q = queries[order[j]];
      out[order[j]] = oracle.avoiding_at(si, q.t, q.e);
    }
  };

  if (queries.size() < opts_.min_parallel_batch || pool_.size() <= 1) {
    for (std::uint32_t si = 0; si < sigma; ++si) {
      answer_range(si, shard_begin[si], shard_begin[si + 1]);
    }
  } else {
    // One task per (source, chunk): sharding by source keeps each worker in
    // one source's table; chunking caps shard size so a skewed batch (all
    // queries on one source) still spreads across the pool. Completion is
    // tracked per batch (not via the pool-wide wait_idle) so concurrent
    // query_batch callers sharing the pool never observe each other's
    // tasks or errors.
    const std::size_t chunk =
        std::max<std::size_t>(512, queries.size() / (std::size_t{pool_.size()} * 4));
    struct BatchState {
      std::mutex mu;
      std::condition_variable done_cv;
      std::size_t pending = 0;
    };
    BatchState batch;
    for (std::uint32_t si = 0; si < sigma; ++si) {
      for (std::size_t lo = shard_begin[si]; lo < shard_begin[si + 1]; lo += chunk) {
        const std::size_t hi = std::min(shard_begin[si + 1], lo + chunk);
        {
          std::lock_guard<std::mutex> lock(batch.mu);
          ++batch.pending;
        }
        pool_.submit([&answer_range, &batch, si, lo, hi] {
          answer_range(si, lo, hi);  // touches only validated indices; nothrow
          std::lock_guard<std::mutex> lock(batch.mu);
          if (--batch.pending == 0) batch.done_cv.notify_all();
        });
      }
    }
    std::unique_lock<std::mutex> lock(batch.mu);
    batch.done_cv.wait(lock, [&batch] { return batch.pending == 0; });
  }
  queries_served_.fetch_add(queries.size(), std::memory_order_relaxed);
  return out;
}

}  // namespace msrp::service
