#include "service/query_service.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "core/msrp.hpp"
#include "ftsub/kfail.hpp"
#include "graph/io.hpp"
#include "service/shard_router.hpp"
#include "util/failpoint.hpp"

namespace msrp::service {

/// Worker-process routers a service keeps alive at once; least recently
/// used beyond this are torn down (stopping their workers, unlinking shm).
static constexpr std::size_t kMaxRouters = 4;

/// Graphs kept attached for |F| == 2 K_FAIL service. A graph is a fraction
/// of its oracle's footprint, so this can sit above the oracle cache's
/// default capacity without mattering.
static constexpr std::size_t kMaxAttachedGraphs = 8;

QueryService::QueryService(Options opts)
    : opts_(std::move(opts)),
      cache_(opts_.cache_capacity, opts_.cache_max_bytes, opts_.cache_entry_ttl),
      pool_(opts_.threads) {
  if (opts_.cache_refresh_ahead > 0.0 && opts_.cache_entry_ttl.count() > 0) {
    // Refresh tasks run on the serving pool. pool_ is declared last, so
    // its destructor drains every queued refresh before cache_ dies.
    cache_.enable_refresh_ahead(opts_.cache_refresh_ahead,
                                [this](std::function<void()> task) {
                                  pool_.submit(std::move(task));
                                });
  }
  collector_ = obs::MetricsRegistry::instance().register_collector(
      [this](obs::MetricsSnapshot& out) {
        out.counters.push_back({"service.queries_served", queries_served()});
        out.counters.push_back({"cache.hits", cache_.hits()});
        out.counters.push_back({"cache.misses", cache_.misses()});
        out.counters.push_back({"cache.evictions", cache_.evictions()});
        out.counters.push_back({"cache.expirations", cache_.expirations()});
        out.counters.push_back({"cache.refreshes", cache_.refreshes()});
        out.counters.push_back({"cache.refresh_failures", cache_.refresh_failures()});
        out.gauges.push_back(
            {"cache.pending_builds", static_cast<std::int64_t>(cache_.pending_builds())});
        out.gauges.push_back({"cache.entries", static_cast<std::int64_t>(cache_.size())});
        out.gauges.push_back(
            {"cache.bytes", static_cast<std::int64_t>(cache_.size_bytes())});
      });
}

std::shared_ptr<const Snapshot> QueryService::build(const Graph& g,
                                                    const std::vector<Vertex>& sources,
                                                    const Config& cfg) {
  OracleKey key{io::graph_digest(g), sources, config_fingerprint(cfg)};
  // One solve routine serves both the cold build (borrowing the caller's
  // graph by reference) and the refresh-ahead rebuilder (owning a copy —
  // the caller's graph is long gone when a refresh fires). The pool never
  // enters the cache key: parallel builds are bit-identical to sequential
  // ones, and cold builds running ON a pool worker stay safe because the
  // solver's phase loops use caller-participating parallel_for.
  auto solve = [this, cfg](const Graph& graph, const std::vector<Vertex>& srcs) {
    Config build_cfg = cfg;
    build_cfg.build_pool = &pool_;
    const MsrpResult res = solve_msrp(graph, srcs, build_cfg);
    return std::make_shared<const Snapshot>(Snapshot::capture(res));
  };
  OracleCache::BuilderFactory rebuild_factory;
  if (opts_.cache_refresh_ahead > 0.0 && opts_.cache_entry_ttl.count() > 0) {
    rebuild_factory = [&]() -> OracleCache::Builder {
      // Invoked only on the cold build this call owns: copy the graph
      // once so later refreshes are self-contained.
      auto owned = std::make_shared<const Graph>(g);
      return [solve, owned, srcs = sources] { return solve(*owned, srcs); };
    };
  }
  auto snap = cache_.get_or_build(key, [&] { return solve(g, sources); }, rebuild_factory);
  // 2-edge-failure queries need the graph itself, and the caller is holding
  // it right here — attach a copy on first sight of this oracle so K_FAIL
  // works out of the box for built (as opposed to snapshot-loaded) oracles.
  bool attached;
  {
    std::lock_guard<std::mutex> lock(graphs_mu_);
    attached = std::any_of(graphs_.begin(), graphs_.end(), [&](const auto& entry) {
      return entry.first == snap->content_digest();
    });
  }
  if (!attached) attach_graph(snap->content_digest(), std::make_shared<const Graph>(g));
  return snap;
}

void QueryService::attach_graph(std::uint64_t digest, std::shared_ptr<const Graph> graph) {
  MSRP_REQUIRE(graph != nullptr, "attach_graph: null graph");
  // Destroy an evicted graph outside the lock (freeing a CSR can be a
  // large deallocation).
  std::vector<std::shared_ptr<const Graph>> evicted;
  {
    std::lock_guard<std::mutex> lock(graphs_mu_);
    for (auto it = graphs_.begin(); it != graphs_.end(); ++it) {
      if (it->first == digest) {
        it->second = std::move(graph);
        graphs_.splice(graphs_.begin(), graphs_, it);
        return;
      }
    }
    graphs_.emplace_front(digest, std::move(graph));
    while (graphs_.size() > kMaxAttachedGraphs) {
      evicted.push_back(std::move(graphs_.back().second));
      graphs_.pop_back();
    }
  }
}

std::shared_ptr<const Graph> QueryService::graph_for(std::uint64_t digest) {
  std::lock_guard<std::mutex> lock(graphs_mu_);
  for (auto it = graphs_.begin(); it != graphs_.end(); ++it) {
    if (it->first == digest) {
      graphs_.splice(graphs_.begin(), graphs_, it);
      return it->second;
    }
  }
  return nullptr;
}

std::shared_ptr<const Snapshot> QueryService::load(const std::string& path,
                                                   const Snapshot::LoadOptions& opts) {
  auto snap = std::make_shared<const Snapshot>(Snapshot::load(path, opts));
  // Snapshots carry no (graph, config) identity, so they are cached under
  // their content digest; config_fingerprint 0 keeps the key space disjoint
  // from built oracles (config_fingerprint() never returns 0 in practice).
  OracleKey key{snap->content_digest(), snap->sources(), 0};
  if (auto hit = cache_.find(key)) return hit;
  cache_.insert(key, snap);
  return snap;
}

std::shared_ptr<ShardRouter> QueryService::router_for(const Snapshot& oracle) {
  const std::uint64_t key = oracle.content_digest();
  // Evicted routers are destroyed AFTER the lock drops: a router teardown
  // stops and reaps worker processes (seconds in the worst case), which
  // must not stall other oracles' batches or the stats accessor.
  std::vector<std::shared_ptr<ShardRouter>> evicted;
  {
    std::lock_guard<std::mutex> lock(routers_mu_);
    for (auto it = routers_.begin(); it != routers_.end(); ++it) {
      if (it->first == key) {
        routers_.splice(routers_.begin(), routers_, it);  // mark MRU
        return routers_.front().second;
      }
    }
    // First batch against this oracle: shard it and spawn the workers.
    // Deliberately under the lock so concurrent cold batches share one
    // placement (single flight); routing itself never takes this lock
    // again. The cost is that a cold router on oracle A briefly blocks a
    // cold router on oracle B — acceptable until a workload actually
    // interleaves many distinct sharded oracles.
    ShardRouterOptions router_opts;
    router_opts.shards = opts_.shards;
    router_opts.worker_argv = opts_.shard_worker_argv;
    router_opts.backoff = opts_.shard_backoff;
    router_opts.pin_workers = opts_.pin_shard_workers;
    auto router = std::make_shared<ShardRouter>(oracle, router_opts);
    routers_.emplace_front(key, router);
    while (routers_.size() > kMaxRouters) {
      evicted.push_back(std::move(routers_.back().second));
      routers_.pop_back();
    }
    return router;
  }
}

std::shared_ptr<const ShardRouter> QueryService::router(const Snapshot& oracle) {
  if (!sharding()) return nullptr;
  const std::uint64_t key = oracle.content_digest();
  std::lock_guard<std::mutex> lock(routers_mu_);
  for (const auto& [digest, router] : routers_) {
    if (digest == key) return router;
  }
  return nullptr;
}

QueryService::BatchPlan QueryService::plan_shards(const Snapshot& oracle,
                                                  std::span<const Query> queries) {
  const Vertex n = oracle.num_vertices();
  const EdgeId m = oracle.num_edges();
  const std::uint32_t sigma = oracle.num_sources();

  // Validate everything before any worker sees the batch, and counting-sort
  // the query indices by source while at it (the sharding axis). The flat
  // `order` array keeps each source's shard contiguous with one allocation —
  // this pass is the only serial work per batch, so it stays lean.
  BatchPlan plan;
  std::vector<std::uint32_t> si_of(queries.size());
  plan.shard_begin.assign(sigma + 1, 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    MSRP_REQUIRE(oracle.is_source(q.s), "query source is not an oracle source");
    MSRP_REQUIRE(q.t < n, "query target out of range");
    MSRP_REQUIRE(q.e < m, "query edge out of range");
    si_of[i] = oracle.source_index(q.s);
    ++plan.shard_begin[si_of[i] + 1];
  }
  for (std::uint32_t si = 0; si < sigma; ++si) plan.shard_begin[si + 1] += plan.shard_begin[si];
  plan.order.resize(queries.size());
  std::vector<std::size_t> fill(plan.shard_begin.begin(), plan.shard_begin.end() - 1);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    plan.order[fill[si_of[i]]++] = static_cast<std::uint32_t>(i);
  }
  return plan;
}

void QueryService::answer_range(const Snapshot& oracle, std::span<const Query> queries,
                                const BatchPlan& plan, std::span<Dist> out, std::uint32_t si,
                                std::size_t lo, std::size_t hi) {
  for (std::size_t j = lo; j < hi; ++j) {
    const Query& q = queries[plan.order[j]];
    out[plan.order[j]] = oracle.avoiding_at(si, q.t, q.e);
  }
}

std::vector<Dist> QueryService::query_batch(const Snapshot& oracle,
                                            std::span<const Query> queries,
                                            Deadline deadline) {
  if (sharding()) {
    // Multi-process path: the router validates, routes each query to the
    // worker owning its source, and merges in batch order — bit-identical
    // to the in-process path below. The router's collector enforces the
    // deadline while answers are in flight.
    std::vector<Dist> out = router_for(oracle)->query_batch(queries, deadline);
    queries_served_.fetch_add(queries.size(), std::memory_order_relaxed);
    return out;
  }
  // The in-process path has no unbounded waits (every chunk is O(1) work
  // on an immutable table), so an up-front check suffices.
  if (deadline_expired(deadline)) {
    throw DeadlineExceeded("batch expired before answering");
  }
  const std::uint32_t sigma = oracle.num_sources();
  const BatchPlan plan = plan_shards(oracle, queries);

  std::vector<Dist> out(queries.size());
  if (queries.size() < opts_.min_parallel_batch || pool_.size() <= 1) {
    for (std::uint32_t si = 0; si < sigma; ++si) {
      answer_range(oracle, queries, plan, out, si, plan.shard_begin[si],
                   plan.shard_begin[si + 1]);
    }
  } else {
    // One task per (source, chunk): sharding by source keeps each worker in
    // one source's table; chunking caps shard size so a skewed batch (all
    // queries on one source) still spreads across the pool. Completion is
    // tracked per batch (not via the pool-wide wait_idle) so concurrent
    // query_batch callers sharing the pool never observe each other's
    // tasks or errors.
    const std::size_t chunk =
        std::max<std::size_t>(512, queries.size() / (std::size_t{pool_.size()} * 4));
    struct BatchState {
      std::mutex mu;
      std::condition_variable done_cv;
      std::size_t pending = 0;
    };
    BatchState batch;
    for (std::uint32_t si = 0; si < sigma; ++si) {
      for (std::size_t lo = plan.shard_begin[si]; lo < plan.shard_begin[si + 1]; lo += chunk) {
        const std::size_t hi = std::min(plan.shard_begin[si + 1], lo + chunk);
        {
          std::lock_guard<std::mutex> lock(batch.mu);
          ++batch.pending;
        }
        pool_.submit([&oracle, &queries, &plan, &out, &batch, si, lo, hi] {
          // Touches only validated indices; nothrow.
          answer_range(oracle, queries, plan, out, si, lo, hi);
          std::lock_guard<std::mutex> lock(batch.mu);
          if (--batch.pending == 0) batch.done_cv.notify_all();
        });
      }
    }
    std::unique_lock<std::mutex> lock(batch.mu);
    batch.done_cv.wait(lock, [&batch] { return batch.pending == 0; });
  }
  queries_served_.fetch_add(queries.size(), std::memory_order_relaxed);
  return out;
}

// --------------------------------------------------------------- async API ---

/// Shared state of one in-flight async batch. Lives until the promise or
/// callback has fired; chunk tasks co-own it, so a caller that drops the
/// future early cannot invalidate anything a worker still touches.
struct QueryService::AsyncBatch {
  std::vector<Query> queries;
  BatchPlan plan;
  std::vector<Dist> answers;
  std::shared_ptr<const Snapshot> oracle;  // pins the oracle against eviction
  std::atomic<std::size_t> pending{0};     // unfinished chunk tasks
  std::promise<BatchResult> promise;
  BatchCallback callback;  // non-null => callback flavour, promise unused
  std::atomic<bool> done{false};           // exactly-once delivery latch

  // The latch keeps the once-only contract even if the user callback itself
  // throws mid-delivery: the orchestrator's catch block would otherwise
  // report the batch a second time. A throwing callback's exception then
  // propagates into the pool's fire-and-forget error slot instead.
  void deliver(BatchResult&& result) {
    if (done.exchange(true, std::memory_order_acq_rel)) return;
    if (callback) {
      callback(std::move(result));
    } else {
      promise.set_value(std::move(result));
    }
  }

  void fail(std::exception_ptr err) {
    if (done.exchange(true, std::memory_order_acq_rel)) return;
    if (callback) {
      callback(BatchResult{{}, nullptr, err});
    } else {
      promise.set_exception(err);
    }
  }
};

std::future<BatchResult> QueryService::submit_batch_impl(
    std::function<std::shared_ptr<const Snapshot>()> resolve, std::vector<Query> queries,
    BatchCallback done, Deadline deadline) {
  auto state = std::make_shared<AsyncBatch>();
  state->queries = std::move(queries);
  state->callback = std::move(done);
  std::future<BatchResult> fut;
  if (!state->callback) fut = state->promise.get_future();

  // Everything heavy — the oracle resolve (a cold-cache build is a full
  // MSRP solve), validation, sharding, answering — happens inside pool
  // tasks. This submit only enqueues one closure.
  pool_.submit([this, state, resolve = std::move(resolve), deadline] {
    try {
      state->oracle = resolve();
      // delay action: burns the batch's budget right where a slow cold
      // build or a saturated pool would, so deadline tests are exact.
      (void)MSRP_FAILPOINT("service.answer");
      // The resolve may have been a full cold build, or the batch may have
      // queued behind a saturated pool — either can consume the whole
      // budget before a single answer is computed.
      if (deadline_expired(deadline)) {
        throw DeadlineExceeded("batch expired before answering");
      }
      const Snapshot& oracle = *state->oracle;
      if (sharding()) {
        // The worker processes are the parallelism; routing occupies just
        // this one pool task (and never blocks on other pool tasks, so the
        // no-worker-waits-on-workers pool invariant holds).
        state->answers = router_for(oracle)->query_batch(state->queries, deadline);
        queries_served_.fetch_add(state->queries.size(), std::memory_order_relaxed);
        state->deliver(BatchResult{std::move(state->answers), state->oracle, nullptr});
        return;
      }
      state->plan = plan_shards(oracle, state->queries);
      state->answers.resize(state->queries.size());

      const std::uint32_t sigma = oracle.num_sources();
      const std::size_t total = state->queries.size();
      auto finish = [this, state] {
        queries_served_.fetch_add(state->queries.size(), std::memory_order_relaxed);
        state->deliver(BatchResult{std::move(state->answers), state->oracle, nullptr});
      };

      if (total == 0 || total < opts_.min_parallel_batch || pool_.size() <= 1) {
        for (std::uint32_t si = 0; si < sigma; ++si) {
          answer_range(oracle, state->queries, state->plan, state->answers, si,
                       state->plan.shard_begin[si], state->plan.shard_begin[si + 1]);
        }
        finish();
        return;
      }

      // Fan the shards out as chunk tasks. Nobody waits: the last chunk to
      // finish fulfils the promise, so the pool stays deadlock-free no
      // matter how many async batches are in flight.
      const std::size_t chunk =
          std::max<std::size_t>(512, total / (std::size_t{pool_.size()} * 4));
      std::size_t num_chunks = 0;
      for (std::uint32_t si = 0; si < sigma; ++si) {
        const std::size_t len = state->plan.shard_begin[si + 1] - state->plan.shard_begin[si];
        num_chunks += (len + chunk - 1) / chunk;
      }
      state->pending.store(num_chunks, std::memory_order_relaxed);
      for (std::uint32_t si = 0; si < sigma; ++si) {
        for (std::size_t lo = state->plan.shard_begin[si];
             lo < state->plan.shard_begin[si + 1]; lo += chunk) {
          const std::size_t hi = std::min(state->plan.shard_begin[si + 1], lo + chunk);
          pool_.submit([state, finish, si, lo, hi] {
            // Touches only validated indices; nothrow.
            answer_range(*state->oracle, state->queries, state->plan, state->answers, si,
                         lo, hi);
            if (state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) finish();
          });
        }
      }
    } catch (...) {
      state->fail(std::current_exception());
    }
  });
  return fut;
}

std::future<BatchResult> QueryService::submit_batch(std::shared_ptr<const Snapshot> oracle,
                                                    std::vector<Query> queries) {
  MSRP_REQUIRE(oracle != nullptr, "submit_batch: null oracle");
  return submit_batch_impl([oracle = std::move(oracle)] { return oracle; },
                           std::move(queries), nullptr);
}

std::future<BatchResult> QueryService::submit_batch(Graph g, std::vector<Vertex> sources,
                                                    Config cfg, std::vector<Query> queries) {
  return submit_batch_impl(
      [this, g = std::move(g), sources = std::move(sources), cfg] {
        return build(g, sources, cfg);
      },
      std::move(queries), nullptr);
}

void QueryService::submit_batch(std::shared_ptr<const Snapshot> oracle,
                                std::vector<Query> queries, BatchCallback done,
                                Deadline deadline) {
  MSRP_REQUIRE(oracle != nullptr, "submit_batch: null oracle");
  MSRP_REQUIRE(done != nullptr, "submit_batch: null callback");
  submit_batch_impl([oracle = std::move(oracle)] { return oracle; }, std::move(queries),
                    std::move(done), deadline);
}

void QueryService::submit_batch(Graph g, std::vector<Vertex> sources, Config cfg,
                                std::vector<Query> queries, BatchCallback done) {
  MSRP_REQUIRE(done != nullptr, "submit_batch: null callback");
  submit_batch_impl(
      [this, g = std::move(g), sources = std::move(sources), cfg] {
        return build(g, sources, cfg);
      },
      std::move(queries), std::move(done));
}

// ------------------------------------------------------------- workloads ---

namespace {

/// A vitality/Vickrey batch flattened into point queries: one Query per
/// canonical-path edge, per input query. Assembly reads answers back out by
/// offset, so the point batch can be answered by ANY serving path —
/// in-process, sharded, it does not matter, the bytes are the same.
struct PathExpansion {
  std::vector<Query> points;
  std::vector<std::size_t> offset;         // queries.size()+1 bounds into points
  std::vector<Dist> base;                  // d(s, t) per input query
  std::vector<std::vector<EdgeId>> paths;  // canonical path per input query
};

template <class WorkloadQuery>
PathExpansion expand_paths(const Snapshot& oracle,
                           std::span<const WorkloadQuery> queries) {
  PathExpansion ex;
  ex.offset.reserve(queries.size() + 1);
  ex.offset.push_back(0);
  ex.base.reserve(queries.size());
  ex.paths.reserve(queries.size());
  for (const WorkloadQuery& q : queries) {
    MSRP_REQUIRE(oracle.is_source(q.s), "workload query source is not an oracle source");
    MSRP_REQUIRE(q.t < oracle.num_vertices(), "workload query target out of range");
    ex.base.push_back(oracle.shortest(q.s, q.t));
    ex.paths.push_back(oracle.canonical_path(q.s, q.t));
    for (EdgeId e : ex.paths.back()) ex.points.push_back(Query{q.s, q.t, e});
    ex.offset.push_back(ex.points.size());
  }
  return ex;
}

std::vector<VitalityResult> assemble_vitality(std::span<const VitalityQuery> queries,
                                              const PathExpansion& ex,
                                              std::span<const Dist> answers) {
  std::vector<VitalityResult> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    VitalityResult& r = out[i];
    r.base = ex.base[i];
    const std::vector<EdgeId>& path = ex.paths[i];
    r.edges.resize(path.size());
    for (std::size_t j = 0; j < path.size(); ++j) {
      r.edges[j] = VitalityEntry{path[j], static_cast<std::uint32_t>(j),
                                 answers[ex.offset[i] + j]};
    }
    // base is constant per query, so (vitality desc) == (replacement desc),
    // and kInfDist — a bridge — is already the largest Dist. Same order as
    // rp::most_vital_edges.
    std::sort(r.edges.begin(), r.edges.end(),
              [](const VitalityEntry& a, const VitalityEntry& b) {
                if (a.replacement != b.replacement) return a.replacement > b.replacement;
                return a.position < b.position;
              });
    if (r.edges.size() > queries[i].k) r.edges.resize(queries[i].k);
  }
  return out;
}

std::vector<VickreyResult> assemble_vickrey(std::span<const VickreyQuery> queries,
                                            const PathExpansion& ex,
                                            std::span<const Dist> answers) {
  std::vector<VickreyResult> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    VickreyResult& r = out[i];
    r.base = ex.base[i];
    const std::vector<EdgeId>& path = ex.paths[i];
    r.prices.resize(path.size());
    for (std::size_t j = 0; j < path.size(); ++j) {
      const Dist repl = answers[ex.offset[i] + j];
      r.prices[j] = VickreyCharge{path[j], repl == kInfDist ? kInfDist : repl - r.base};
    }
  }
  return out;
}

void validate_vitality_k(std::span<const VitalityQuery> queries) {
  for (const VitalityQuery& q : queries) {
    MSRP_REQUIRE(q.k >= 1 && q.k <= kMaxTopKVital, "vitality k out of range");
  }
}

/// Validates a K_FAIL batch and answers everything that is NOT a single-
/// edge failure: |F| == 0 from the stored base distance, |F| == 2 by one
/// bounded BFS each. The |F| == 1 queries come back as point queries (with
/// their slots) for the caller to run through the point-query path — sync
/// or async, whichever the caller is.
void split_kfail(QueryService& svc, const Snapshot& oracle,
                 std::span<const KFailQuery> queries, std::vector<Dist>& out,
                 std::vector<Query>& points, std::vector<std::size_t>& point_slot,
                 Deadline deadline) {
  out.assign(queries.size(), kInfDist);
  std::shared_ptr<const Graph> graph;
  KFailScratch scratch;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const KFailQuery& q = queries[i];
    MSRP_REQUIRE(oracle.is_source(q.s), "k-fail query source is not an oracle source");
    MSRP_REQUIRE(q.t < oracle.num_vertices(), "k-fail query target out of range");
    MSRP_REQUIRE(q.fails.size() <= kMaxKFailEdges, "k-fail failure set too large");
    for (std::size_t a = 0; a < q.fails.size(); ++a) {
      MSRP_REQUIRE(q.fails[a] < oracle.num_edges(), "k-fail edge out of range");
      for (std::size_t b = a + 1; b < q.fails.size(); ++b) {
        MSRP_REQUIRE(q.fails[a] != q.fails[b], "k-fail duplicate edge in failure set");
      }
    }
    switch (q.fails.size()) {
      case 0:
        out[i] = oracle.shortest(q.s, q.t);
        break;
      case 1:
        points.push_back(Query{q.s, q.t, q.fails[0]});
        point_slot.push_back(i);
        break;
      default: {
        if (!graph) {
          graph = svc.graph_for(oracle.content_digest());
          MSRP_REQUIRE(graph != nullptr,
                       "k-fail |F| == 2 needs the graph behind the oracle — attach_graph() it");
        }
        if (deadline_expired(deadline)) {
          throw DeadlineExceeded("batch expired before answering");
        }
        out[i] = kfail_distance(*graph, q.s, q.t, q.fails, scratch);
        break;
      }
    }
  }
}

}  // namespace

std::vector<VitalityResult> QueryService::vitality_batch(
    const Snapshot& oracle, std::span<const VitalityQuery> queries, Deadline deadline) {
  validate_vitality_k(queries);
  const PathExpansion ex = expand_paths(oracle, queries);
  const std::vector<Dist> answers = query_batch(oracle, ex.points, deadline);
  return assemble_vitality(queries, ex, answers);
}

std::vector<VickreyResult> QueryService::vickrey_batch(const Snapshot& oracle,
                                                       std::span<const VickreyQuery> queries,
                                                       Deadline deadline) {
  const PathExpansion ex = expand_paths(oracle, queries);
  const std::vector<Dist> answers = query_batch(oracle, ex.points, deadline);
  return assemble_vickrey(queries, ex, answers);
}

std::vector<Dist> QueryService::kfail_batch(const Snapshot& oracle,
                                            std::span<const KFailQuery> queries,
                                            Deadline deadline) {
  std::vector<Dist> out;
  std::vector<Query> points;
  std::vector<std::size_t> point_slot;
  split_kfail(*this, oracle, queries, out, points, point_slot, deadline);
  if (!points.empty()) {
    // query_batch accounts for the point queries itself.
    const std::vector<Dist> answers = query_batch(oracle, points, deadline);
    for (std::size_t j = 0; j < answers.size(); ++j) out[point_slot[j]] = answers[j];
  }
  queries_served_.fetch_add(queries.size() - points.size(), std::memory_order_relaxed);
  return out;
}

void QueryService::submit_vitality(std::shared_ptr<const Snapshot> oracle,
                                   std::vector<VitalityQuery> queries, VitalityCallback done,
                                   Deadline deadline) {
  MSRP_REQUIRE(oracle != nullptr, "submit_vitality: null oracle");
  MSRP_REQUIRE(done != nullptr, "submit_vitality: null callback");
  // Expansion runs on the pool; the resulting point batch chains through
  // submit_batch (counter-driven, nobody blocks), and assembly runs in its
  // callback. Both hops check the deadline and fire "service.answer".
  pool_.submit([this, oracle = std::move(oracle), queries = std::move(queries),
                done = std::move(done), deadline]() mutable {
    try {
      (void)MSRP_FAILPOINT("service.answer");
      if (deadline_expired(deadline)) {
        throw DeadlineExceeded("batch expired before answering");
      }
      validate_vitality_k(queries);
      auto ex = std::make_shared<const PathExpansion>(expand_paths<VitalityQuery>(*oracle, queries));
      auto held = std::make_shared<const std::vector<VitalityQuery>>(std::move(queries));
      std::vector<Query> points = ex->points;
      submit_batch(
          oracle, std::move(points),
          [ex, held, done](BatchResult r) {
            if (r.error) {
              done(VitalityBatchResult{{}, nullptr, r.error});
              return;
            }
            done(VitalityBatchResult{assemble_vitality(*held, *ex, r.answers),
                                     std::move(r.oracle), nullptr});
          },
          deadline);
    } catch (...) {
      done(VitalityBatchResult{{}, nullptr, std::current_exception()});
    }
  });
}

void QueryService::submit_vickrey(std::shared_ptr<const Snapshot> oracle,
                                  std::vector<VickreyQuery> queries, VickreyCallback done,
                                  Deadline deadline) {
  MSRP_REQUIRE(oracle != nullptr, "submit_vickrey: null oracle");
  MSRP_REQUIRE(done != nullptr, "submit_vickrey: null callback");
  pool_.submit([this, oracle = std::move(oracle), queries = std::move(queries),
                done = std::move(done), deadline]() mutable {
    try {
      (void)MSRP_FAILPOINT("service.answer");
      if (deadline_expired(deadline)) {
        throw DeadlineExceeded("batch expired before answering");
      }
      auto ex = std::make_shared<const PathExpansion>(expand_paths<VickreyQuery>(*oracle, queries));
      auto held = std::make_shared<const std::vector<VickreyQuery>>(std::move(queries));
      std::vector<Query> points = ex->points;
      submit_batch(
          oracle, std::move(points),
          [ex, held, done](BatchResult r) {
            if (r.error) {
              done(VickreyBatchResult{{}, nullptr, r.error});
              return;
            }
            done(VickreyBatchResult{assemble_vickrey(*held, *ex, r.answers),
                                    std::move(r.oracle), nullptr});
          },
          deadline);
    } catch (...) {
      done(VickreyBatchResult{{}, nullptr, std::current_exception()});
    }
  });
}

void QueryService::submit_kfail(std::shared_ptr<const Snapshot> oracle,
                                std::vector<KFailQuery> queries, BatchCallback done,
                                Deadline deadline) {
  MSRP_REQUIRE(oracle != nullptr, "submit_kfail: null oracle");
  MSRP_REQUIRE(done != nullptr, "submit_kfail: null callback");
  // The |F| != 1 answers (base reads and bounded BFS) compute right here on
  // the pool task; only the |F| == 1 point queries chain into submit_batch.
  pool_.submit([this, oracle = std::move(oracle), queries = std::move(queries),
                done = std::move(done), deadline]() mutable {
    try {
      (void)MSRP_FAILPOINT("service.answer");
      if (deadline_expired(deadline)) {
        throw DeadlineExceeded("batch expired before answering");
      }
      auto out = std::make_shared<std::vector<Dist>>();
      std::vector<Query> points;
      auto point_slot = std::make_shared<std::vector<std::size_t>>();
      split_kfail(*this, *oracle, queries, *out, points, *point_slot, deadline);
      queries_served_.fetch_add(queries.size() - points.size(), std::memory_order_relaxed);
      if (points.empty()) {
        done(BatchResult{std::move(*out), std::move(oracle), nullptr});
        return;
      }
      submit_batch(
          oracle, std::move(points),
          [out, point_slot, done](BatchResult r) {
            if (r.error) {
              done(BatchResult{{}, nullptr, r.error});
              return;
            }
            for (std::size_t j = 0; j < r.answers.size(); ++j) {
              (*out)[(*point_slot)[j]] = r.answers[j];
            }
            done(BatchResult{std::move(*out), std::move(r.oracle), nullptr});
          },
          deadline);
    } catch (...) {
      done(BatchResult{{}, nullptr, std::current_exception()});
    }
  });
}

}  // namespace msrp::service
