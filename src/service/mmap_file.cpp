#include "service/mmap_file.hpp"

#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define MSRP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MSRP_HAVE_MMAP 0
#include <cstdio>
#endif

namespace msrp::service {

void MmapFile::release() noexcept {
#if MSRP_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
  fallback_.shrink_to_fit();
}

#if MSRP_HAVE_MMAP

MmapFile MmapFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("mmap: cannot open " + path);
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("mmap: cannot stat " + path);
  }
  MmapFile f;
  f.size_ = static_cast<std::size_t>(st.st_size);
  if (f.size_ > 0) {
    void* addr = ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      throw std::runtime_error("mmap: map failed for " + path);
    }
    f.data_ = static_cast<const std::uint8_t*>(addr);
    f.mapped_ = true;
  }
  ::close(fd);  // the mapping keeps its own reference to the file
  return f;
}

#else  // buffered-read fallback for platforms without POSIX mmap

MmapFile MmapFile::open(const std::string& path) {
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (fp == nullptr) throw std::runtime_error("mmap: cannot open " + path);
  MmapFile f;
  const long len = std::fseek(fp, 0, SEEK_END) == 0 ? std::ftell(fp) : -1L;
  if (len < 0) {
    std::fclose(fp);
    throw std::runtime_error("mmap: cannot size " + path);
  }
  if (len > 0) {
    f.fallback_.resize(static_cast<std::size_t>(len));
    std::rewind(fp);
    if (std::fread(f.fallback_.data(), 1, f.fallback_.size(), fp) != f.fallback_.size()) {
      std::fclose(fp);
      throw std::runtime_error("mmap: read failed for " + path);
    }
  }
  std::fclose(fp);
  f.data_ = f.fallback_.data();
  f.size_ = f.fallback_.size();
  return f;
}

#endif

MmapFile::~MmapFile() { release(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && !fallback_.empty()) data_ = fallback_.data();
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && !fallback_.empty()) data_ = fallback_.data();
  }
  return *this;
}

}  // namespace msrp::service
