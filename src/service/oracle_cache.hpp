/// \file
/// LRU cache of solved oracles, keyed by what determines the solve.
///
/// A solve is a pure function of (graph, sources, Config) — the solver is
/// deterministic given its seed — so the cache key is (graph digest,
/// source list, config fingerprint). Values are shared_ptr<const
/// Snapshot>: handing out shared ownership means an oracle evicted
/// mid-flight stays alive for the batches still holding it, which is what
/// makes eviction safe with a lock-free read path.
///
/// The cache itself is mutex-guarded (build/insert/evict are rare and
/// expensive next to a solve); the hot path never touches it — batches run
/// against the Snapshot reference they already hold.
///
/// In-flight builds are single-flighted: the first miss on a key claims a
/// pending slot (a shared_future in a side map), concurrent misses wait on
/// it instead of duplicating the solve, and the slot is immune to LRU
/// eviction until the build lands. Together with the shared_ptr each
/// waiter receives, that guarantees an eviction racing an async build can
/// never drop an oracle a pending future still references.
///
/// Refresh-ahead rides on the same slots: with enable_refresh_ahead(f,
/// runner), a lookup that hits an entry older than f * entry_ttl schedules
/// the entry's stored rebuilder on `runner` (the serving pool) while still
/// returning the current oracle. The rebuild claims the key's single-flight
/// slot, so concurrent hot lookups schedule exactly one refresh — and a
/// cold miss arriving mid-refresh parks on that slot instead of paying its
/// own build. After warmup no request ever observes a cold build across a
/// TTL boundary: the entry is re-stamped before it can expire.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "service/snapshot.hpp"

namespace msrp::service {

/// Stable 64-bit digest of every Config field that affects solver output.
std::uint64_t config_fingerprint(const Config& cfg);

/// Identity of one solved oracle.
struct OracleKey {
  std::uint64_t graph_digest = 0;
  std::vector<Vertex> sources;
  std::uint64_t config_fingerprint = 0;

  friend bool operator==(const OracleKey&, const OracleKey&) = default;
};

struct OracleKeyHash {
  std::size_t operator()(const OracleKey& k) const;
};

class OracleCache {
 public:
  /// Produces one oracle (a full solve or snapshot load).
  using Builder = std::function<std::shared_ptr<const Snapshot>()>;
  /// Produces a self-contained Builder for later refreshes. Invoked at
  /// most once per cold build this cache owns, outside the lock — this is
  /// where the caller copies whatever the rebuild needs (the graph, the
  /// sources) without taxing pure cache hits.
  using BuilderFactory = std::function<Builder()>;
  /// Executes refresh tasks (the serving pool in production, an inline or
  /// manual runner in tests). Called outside the cache lock.
  using TaskRunner = std::function<void(std::function<void()>)>;

  /// `capacity` is in oracles and must be >= 1. `max_bytes` is an
  /// additional budget on the summed Snapshot::footprint_bytes() of the
  /// resident oracles (0 = unlimited): when inserting pushes the total
  /// over, least-recently-used entries are evicted until it fits — so one
  /// large oracle can displace several small ones. The most recent insert
  /// itself is never evicted, even when it alone exceeds the budget
  /// (callers hold a shared_ptr anyway; caching it costs nothing extra).
  ///
  /// `entry_ttl` (zero = never expire) ages entries out of the cache: a
  /// lookup that finds an entry older than the TTL treats it as a miss and
  /// drops it, so the next get_or_build() re-runs the builder — through the
  /// same single-flight `building_` slot as any cold build, meaning one
  /// refresh solve no matter how many threads hit the stale key at once.
  /// Long-running servers use this to pick up re-saved snapshots or to
  /// bound how stale a served oracle can get; batches already holding the
  /// old shared_ptr keep serving it untouched.
  explicit OracleCache(std::size_t capacity, std::size_t max_bytes = 0,
                       std::chrono::milliseconds entry_ttl = {});

  std::size_t capacity() const { return capacity_; }
  std::size_t max_bytes() const { return max_bytes_; }
  std::chrono::milliseconds entry_ttl() const { return entry_ttl_; }
  std::size_t size() const;

  /// Replaces the time source used for TTL stamping/expiry (tests inject a
  /// fake clock to age entries deterministically). Call before concurrent
  /// use; the default is steady_clock::now.
  void set_clock_for_testing(std::function<std::chrono::steady_clock::time_point()> clock);

  /// Turns on refresh-ahead: a hit on an entry older than `fraction` *
  /// entry_ttl (0 < fraction, meaningful below 1) schedules the entry's
  /// stored rebuilder on `runner`, single-flighted through the same slot
  /// as cold builds. Only entries built through get_or_build with a
  /// BuilderFactory can refresh (plain insert()s have no rebuilder). Call
  /// before concurrent use; requires a nonzero entry_ttl to do anything.
  void enable_refresh_ahead(double fraction, TaskRunner runner);

  /// Summed footprint of the resident oracles.
  std::size_t size_bytes() const;

  /// Returns the cached oracle and marks it most-recently-used; nullptr on
  /// miss.
  std::shared_ptr<const Snapshot> find(const OracleKey& key);

  /// Inserts (or replaces) an oracle, evicting the least-recently-used
  /// entry when over capacity.
  void insert(const OracleKey& key, std::shared_ptr<const Snapshot> oracle);

  /// find(), falling back to build() + insert() on a miss. The builder runs
  /// outside the cache lock: a long solve must not block readers of other
  /// entries. Concurrent misses on the same key are single-flighted: one
  /// caller builds, the rest block on its result (and see its exception if
  /// the build fails). The pending entry cannot be evicted mid-build.
  /// `rebuild_factory`, when given, is invoked on the cold build this call
  /// owns (never on hits or parked waits) and the Builder it returns is
  /// stored with the entry for refresh-ahead.
  std::shared_ptr<const Snapshot> get_or_build(const OracleKey& key, const Builder& build,
                                               const BuilderFactory& rebuild_factory = nullptr);

  // Counters (monotonic, for observability and the eviction tests).
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

  /// Entries dropped because they outlived entry_ttl (a subset of misses).
  std::uint64_t expirations() const;

  /// Refresh-ahead rebuilds that landed / failed.
  std::uint64_t refreshes() const;
  std::uint64_t refresh_failures() const;

  /// Builds currently in flight (claimed but not yet landed).
  std::size_t pending_builds() const;

 private:
  struct Entry {
    OracleKey key;
    std::shared_ptr<const Snapshot> oracle;
    std::size_t bytes = 0;  // footprint at insert time (snapshots are immutable)
    std::chrono::steady_clock::time_point inserted_at{};  // TTL stamp
    Builder rebuild;  // refresh-ahead rebuilder; null when not refreshable
  };
  // Most-recently-used at the front; the map points into the list.
  using LruList = std::list<Entry>;
  using PendingFuture = std::shared_future<std::shared_ptr<const Snapshot>>;

  /// On a hit old enough to refresh (and not already refreshing), claims
  /// the key's single-flight slot and writes the refresh task into
  /// `*refresh_out` — the caller MUST run it after releasing mu_.
  std::shared_ptr<const Snapshot> find_locked(const OracleKey& key,
                                              std::function<void()>* refresh_out);
  void insert_locked(const OracleKey& key, std::shared_ptr<const Snapshot> oracle,
                     Builder rebuild = nullptr);
  void evict_over_budget_locked();

  std::size_t capacity_;
  std::size_t max_bytes_;
  std::chrono::milliseconds entry_ttl_{};
  std::function<std::chrono::steady_clock::time_point()> clock_;
  double refresh_fraction_ = 0.0;  // 0 = refresh-ahead off
  TaskRunner runner_;
  std::size_t bytes_ = 0;
  mutable std::mutex mu_;
  LruList lru_;
  std::unordered_map<OracleKey, LruList::iterator, OracleKeyHash> index_;
  // Single-flight slots for in-flight builds; never subject to eviction.
  std::unordered_map<OracleKey, PendingFuture, OracleKeyHash> building_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
  std::uint64_t refreshes_ = 0;
  std::uint64_t refresh_failures_ = 0;
};

}  // namespace msrp::service
