/// \file
/// LRU cache of solved oracles, keyed by what determines the solve.
///
/// A solve is a pure function of (graph, sources, Config) — the solver is
/// deterministic given its seed — so the cache key is (graph digest,
/// source list, config fingerprint). Values are shared_ptr<const
/// Snapshot>: handing out shared ownership means an oracle evicted
/// mid-flight stays alive for the batches still holding it, which is what
/// makes eviction safe with a lock-free read path.
///
/// The cache itself is mutex-guarded (build/insert/evict are rare and
/// expensive next to a solve); the hot path never touches it — batches run
/// against the Snapshot reference they already hold.
///
/// In-flight builds are single-flighted: the first miss on a key claims a
/// pending slot (a shared_future in a side map), concurrent misses wait on
/// it instead of duplicating the solve, and the slot is immune to LRU
/// eviction until the build lands. Together with the shared_ptr each
/// waiter receives, that guarantees an eviction racing an async build can
/// never drop an oracle a pending future still references.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "service/snapshot.hpp"

namespace msrp::service {

/// Stable 64-bit digest of every Config field that affects solver output.
std::uint64_t config_fingerprint(const Config& cfg);

/// Identity of one solved oracle.
struct OracleKey {
  std::uint64_t graph_digest = 0;
  std::vector<Vertex> sources;
  std::uint64_t config_fingerprint = 0;

  friend bool operator==(const OracleKey&, const OracleKey&) = default;
};

struct OracleKeyHash {
  std::size_t operator()(const OracleKey& k) const;
};

class OracleCache {
 public:
  /// `capacity` is in oracles and must be >= 1. `max_bytes` is an
  /// additional budget on the summed Snapshot::footprint_bytes() of the
  /// resident oracles (0 = unlimited): when inserting pushes the total
  /// over, least-recently-used entries are evicted until it fits — so one
  /// large oracle can displace several small ones. The most recent insert
  /// itself is never evicted, even when it alone exceeds the budget
  /// (callers hold a shared_ptr anyway; caching it costs nothing extra).
  ///
  /// `entry_ttl` (zero = never expire) ages entries out of the cache: a
  /// lookup that finds an entry older than the TTL treats it as a miss and
  /// drops it, so the next get_or_build() re-runs the builder — through the
  /// same single-flight `building_` slot as any cold build, meaning one
  /// refresh solve no matter how many threads hit the stale key at once.
  /// Long-running servers use this to pick up re-saved snapshots or to
  /// bound how stale a served oracle can get; batches already holding the
  /// old shared_ptr keep serving it untouched.
  explicit OracleCache(std::size_t capacity, std::size_t max_bytes = 0,
                       std::chrono::milliseconds entry_ttl = {});

  std::size_t capacity() const { return capacity_; }
  std::size_t max_bytes() const { return max_bytes_; }
  std::chrono::milliseconds entry_ttl() const { return entry_ttl_; }
  std::size_t size() const;

  /// Replaces the time source used for TTL stamping/expiry (tests inject a
  /// fake clock to age entries deterministically). Call before concurrent
  /// use; the default is steady_clock::now.
  void set_clock_for_testing(std::function<std::chrono::steady_clock::time_point()> clock);

  /// Summed footprint of the resident oracles.
  std::size_t size_bytes() const;

  /// Returns the cached oracle and marks it most-recently-used; nullptr on
  /// miss.
  std::shared_ptr<const Snapshot> find(const OracleKey& key);

  /// Inserts (or replaces) an oracle, evicting the least-recently-used
  /// entry when over capacity.
  void insert(const OracleKey& key, std::shared_ptr<const Snapshot> oracle);

  /// find(), falling back to build() + insert() on a miss. The builder runs
  /// outside the cache lock: a long solve must not block readers of other
  /// entries. Concurrent misses on the same key are single-flighted: one
  /// caller builds, the rest block on its result (and see its exception if
  /// the build fails). The pending entry cannot be evicted mid-build.
  std::shared_ptr<const Snapshot> get_or_build(
      const OracleKey& key,
      const std::function<std::shared_ptr<const Snapshot>()>& build);

  // Counters (monotonic, for observability and the eviction tests).
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

  /// Entries dropped because they outlived entry_ttl (a subset of misses).
  std::uint64_t expirations() const;

  /// Builds currently in flight (claimed but not yet landed).
  std::size_t pending_builds() const;

 private:
  struct Entry {
    OracleKey key;
    std::shared_ptr<const Snapshot> oracle;
    std::size_t bytes = 0;  // footprint at insert time (snapshots are immutable)
    std::chrono::steady_clock::time_point inserted_at{};  // TTL stamp
  };
  // Most-recently-used at the front; the map points into the list.
  using LruList = std::list<Entry>;
  using PendingFuture = std::shared_future<std::shared_ptr<const Snapshot>>;

  std::shared_ptr<const Snapshot> find_locked(const OracleKey& key);
  void insert_locked(const OracleKey& key, std::shared_ptr<const Snapshot> oracle);
  void evict_over_budget_locked();

  std::size_t capacity_;
  std::size_t max_bytes_;
  std::chrono::milliseconds entry_ttl_{};
  std::function<std::chrono::steady_clock::time_point()> clock_;
  std::size_t bytes_ = 0;
  mutable std::mutex mu_;
  LruList lru_;
  std::unordered_map<OracleKey, LruList::iterator, OracleKeyHash> index_;
  // Single-flight slots for in-flight builds; never subject to eviction.
  std::unordered_map<OracleKey, PendingFuture, OracleKeyHash> building_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t expirations_ = 0;
};

}  // namespace msrp::service
