/// \file
/// Contiguous partition of an oracle's sources across serving shards.
///
/// The multi-process serving transport (shard_router.hpp) carves the
/// snapshot's sigma sources into K contiguous runs of source indices, one
/// per worker process. Contiguity matters twice: each shard's sub-snapshot
/// is then a contiguous slice of the source-major v2 sections, and a query
/// routes with one array lookup (source index -> owning shard). The split
/// is weighted by each source's replacement-table cell count — the quantity
/// that dominates both a shard's memory image and its expected query cost —
/// so a skewed oracle (one high-diameter source with a huge table) does not
/// leave K-1 idle workers behind one hot one.
#pragma once

#include <cstdint>
#include <vector>

#include "service/snapshot.hpp"

namespace msrp::service {

class ShardPlan {
 public:
  ShardPlan() = default;

  /// Partitions `oracle`'s sources into min(shards, sigma) non-empty
  /// contiguous shards, balancing per-source cell counts greedily.
  /// \param oracle  the full snapshot being sharded
  /// \param shards  requested shard count (>= 1; clamped to sigma)
  static ShardPlan build(const Snapshot& oracle, unsigned shards);

  /// Number of shards actually planned (<= requested).
  unsigned num_shards() const { return static_cast<unsigned>(begin_.size()) - 1; }

  /// Source indices [begin(k), end(k)) owned by shard k.
  std::uint32_t begin(unsigned k) const { return begin_[k]; }
  std::uint32_t end(unsigned k) const { return begin_[k + 1]; }

  /// Owning shard of a (global) source index; O(1).
  unsigned shard_of(std::uint32_t source_index) const { return owner_[source_index]; }

  /// A shard worker indexes its sub-snapshot by local source index.
  std::uint32_t local_index(std::uint32_t source_index) const {
    return source_index - begin_[owner_[source_index]];
  }

  /// Summed replacement-table cells owned by shard k (balance diagnostics).
  std::uint64_t shard_cells(unsigned k) const { return cells_[k]; }

 private:
  std::vector<std::uint32_t> begin_;   // num_shards()+1 prefix over source indices
  std::vector<std::uint32_t> owner_;   // sigma; source index -> shard
  std::vector<std::uint64_t> cells_;   // num_shards(); weight actually assigned
};

}  // namespace msrp::service
