// Fixed-size worker pool for the query service.
//
// Deliberately minimal: tasks are fire-and-forget closures, and the only
// synchronization point is wait_idle(), which blocks until every submitted
// task has finished. That matches the batch-serving pattern (submit one
// task per shard, wait, return answers) without futures or per-task
// allocation beyond the closure itself. The first exception a task throws
// is captured and rethrown from wait_idle() so worker errors surface in the
// calling thread instead of terminating the process.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace msrp::service {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(unsigned num_threads = 0);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Never blocks.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running, then rethrows
  /// the first exception any task threw since the last wait_idle().
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait_idle waits for quiescence
  std::size_t in_flight_ = 0;         // queued + running
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace msrp::service
