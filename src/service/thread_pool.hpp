// Fixed-size worker pool for the query service.
//
// Tasks come in two flavours:
//
//   * submit() — fire-and-forget closures; the only synchronization point
//     is wait_idle(), which blocks until every submitted task has finished
//     and rethrows the first exception any of them threw. That matches the
//     synchronous batch-serving pattern (submit one task per shard, wait,
//     return answers).
//   * submit_task() — returns a std::future for the closure's result, for
//     callers that want one task's value or error back without touching the
//     pool-wide wait_idle() channel. (The async batch path in
//     query_service.cpp manages its own completion counter instead: one
//     future per *batch*, not per shard task.)
//
// Tasks must never block on other tasks of the same pool (the async batch
// path is written completion-driven for exactly this reason): with every
// worker parked in a wait there is nobody left to run the task being
// waited for.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace msrp::service {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(unsigned num_threads = 0);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Never blocks.
  void submit(std::function<void()> task);

  /// Enqueues a task and returns a future for its result. Exceptions the
  /// task throws surface through the future (and never through
  /// wait_idle()'s first-error channel).
  template <typename F>
  auto submit_task(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });  // packaged_task captures any exception
    return fut;
  }

  /// Blocks until the queue is empty and no task is running, then rethrows
  /// the first exception any task threw since the last wait_idle().
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait_idle waits for quiescence
  std::size_t in_flight_ = 0;         // queued + running
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace msrp::service
