// The worker pool moved to util/thread_pool.hpp when the oracle *build*
// became a pool consumer too (core code cannot depend on the service
// layer). This shim keeps the historical msrp::service::ThreadPool name
// for the serving-side includes and tests.
#pragma once

#include "util/thread_pool.hpp"

namespace msrp::service {

using msrp::ThreadPool;

}  // namespace msrp::service
