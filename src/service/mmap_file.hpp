// RAII read-only memory mapping of a file.
//
// The v2 snapshot format is laid out so that a mapped file can be served
// directly: MmapFile owns the mapping, Snapshot keeps a shared_ptr to it,
// and the table spans alias the mapped bytes. On platforms without POSIX
// mmap the open() falls back to a buffered read — callers see identical
// semantics (stable bytes for the wrapper's lifetime), just without the
// lazy paging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace msrp::service {

class MmapFile {
 public:
  MmapFile() = default;

  /// Maps `path` read-only; throws std::runtime_error on open/stat/map
  /// failure. Empty files map to a valid zero-length view.
  static MmapFile open(const std::string& path);

  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

  /// True when the bytes come from an actual mmap (as opposed to the
  /// buffered-read fallback); exposed for tests and diagnostics.
  bool is_mapped() const { return mapped_; }

 private:
  /// Unmaps / frees and resets to the empty state.
  void release() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> fallback_;  // owns the bytes when !mapped_
};

}  // namespace msrp::service
