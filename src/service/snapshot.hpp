// Binary snapshot of a solved MSRP oracle.
//
// The text format (core/serialize.hpp) is line-oriented and parses with
// istream tokenization — fine for golden files, too slow for the serving
// path where a multi-gigabyte replacement table must come back in one gulp.
// The snapshot is the build-once/serve-many half of the service layer: a
// versioned binary image decoded from memory with pointer arithmetic.
//
// Two on-disk formats share the magic and the version field:
//
// Format v1 — compact varints (all integers unsigned LEB128 unless noted):
//
//   8 bytes   magic "MSRPSNAP"
//   4 bytes   version (little-endian u32, 1)
//   varint    n, m, sigma
//   sigma x   source section:
//     varint  root vertex
//     n x     vertex record, for v = 0..n-1:
//       varint  0 if v unreachable, else dist(v)+1
//       if reachable and v != root:
//         varint  parent vertex
//         varint  parent edge id
//         dist(v) x varint row cell: 0 for infinity, else cell - dist(v) + 1
//   8 bytes   FNV-1a checksum of everything between the magic and here
//
// Row cells are >= dist(v) (deleting an edge never shortens a path), so the
// delta encoding keeps most cells in one byte — v1 is the smallest file,
// but load cost is proportional to the cell count.
//
// Format v2 — fixed-width, 8-byte-aligned sections, built for mmap serving
// (all integers little-endian; every section starts 8-byte aligned, u32
// arrays zero-padded to the next 8-byte boundary):
//
//   offset  0  8 bytes  magic "MSRPSNAP"
//   offset  8  u32      version (2)
//   offset 12  u32      header bytes (72)
//   offset 16  u64      n, m, sigma, total cell count
//   offset 48  u64      content digest (as computed by capture())
//   offset 56  u64      metadata checksum: FNV-1a over header bytes
//                       [16, 56), bytes [64, 72), and every section except
//                       the cells
//   offset 64  u64      cells checksum: FNV-1a over the cells section
//   offset 72  u32 x sigma       source vertices
//   sigma x   table section:
//     u32 x n    dist   (0xffffffff = unreachable)
//     u32 x n    parent (0xffffffff = root/unreachable)
//     u32 x n    parent edge id (0xffffffff = root/unreachable)
//     u64 x n+1  row-offset prefix sums (per source, 0-based)
//   u32 x total  cells, all sources concatenated in source order
//
// A v2 load maps (or bulk-reads) the file, verifies the metadata checksum
// and the tree/row-offset invariants in O(n + m) per source, and then
// serves straight out of the image — the dominant cells payload is never
// decoded, copied, or (with LoadOptions::verify_cells off) even touched.
// The derived ancestry index (edge_child, DFS stamps) is recomputed from
// the parent arrays on every load path, which is what makes a validated
// snapshot memory-safe to query even if the cells are garbage: every
// avoiding() read is bounded by the validated row-offset table. The stored
// content digest is trusted under the metadata checksum; only v1 loads and
// capture() recompute it from the cells.
//
// Unlike SerializedResult the snapshot also stores the canonical trees, so
// a loaded snapshot answers avoiding(s, t, e) for arbitrary edge ids in
// O(1) with no Graph in hand — exactly the MsrpResult::avoiding contract
// the query service needs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/result.hpp"

namespace msrp::service {

enum class SnapshotFormat : std::uint32_t { kV1 = 1, kV2 = 2 };

struct SnapshotLoadOptions {
  /// Serve a v2 file straight out of a memory mapping instead of bulk-
  /// reading it (v1 files fall back to the buffered decoder either way).
  bool use_mmap = false;
  /// Verify the v2 cells checksum at load time. Off is the zero-copy
  /// fast path: corrupt cells then yield wrong answers, never unsafe
  /// reads (the row-offset table is always validated).
  bool verify_cells = true;
};

class Snapshot {
 public:
  using LoadOptions = SnapshotLoadOptions;

  Snapshot() = default;

  // The tables alias either owned storage or a mapped file; both survive a
  // move (vector moves keep their heap buffers, the anchor is shared), but
  // a memberwise copy would alias the source object's buffers.
  Snapshot(Snapshot&&) noexcept = default;
  Snapshot& operator=(Snapshot&&) noexcept = default;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// Copies the replacement tables and canonical trees out of a solved
  /// result into a self-contained, query-ready oracle.
  static Snapshot capture(const MsrpResult& res);

  /// Encodes into the requested on-disk format (one bulk write).
  void write(std::ostream& os, SnapshotFormat format = SnapshotFormat::kV2) const;

  /// Decodes either format (sniffed from the version field); throws
  /// std::invalid_argument on a bad magic/version, truncation, checksum
  /// mismatch, or inconsistent tables.
  static Snapshot read(std::istream& is);

  /// File wrappers; throw std::runtime_error on I/O failure and
  /// std::invalid_argument on a malformed image.
  void save(const std::string& path, SnapshotFormat format = SnapshotFormat::kV2) const;
  static Snapshot load(const std::string& path, const LoadOptions& opts = {});

  Vertex num_vertices() const { return n_; }
  EdgeId num_edges() const { return m_; }
  const std::vector<Vertex>& sources() const { return sources_; }
  std::uint32_t num_sources() const { return static_cast<std::uint32_t>(sources_.size()); }

  bool is_source(Vertex s) const { return s < n_ && source_index_[s] >= 0; }

  /// Index of source vertex s; throws if s is not a source.
  std::uint32_t source_index(Vertex s) const;

  /// d(s, t); kInfDist if t is unreachable from s.
  Dist shortest(Vertex s, Vertex t) const;

  /// Replacement row for (s, t): d(s, t, e_i) per canonical-path position i.
  std::span<const Dist> row(Vertex s, Vertex t) const;

  /// d(s, t, e) for an arbitrary edge id, O(1); same contract as
  /// MsrpResult::avoiding.
  Dist avoiding(Vertex s, Vertex t, EdgeId e) const;

  /// avoiding() with the source-index lookup and bounds checks hoisted out;
  /// the batched read path calls this once per query.
  Dist avoiding_at(std::uint32_t si, Vertex t, EdgeId e) const {
    const SourceTable& tab = tables_[si];
    const Dist dt = tab.dist[t];
    if (dt == kInfDist) return kInfDist;
    const Vertex child = tab.edge_child[e];
    if (child == kNoVertex || !is_ancestor(tab, child, t)) return dt;
    return tab.cells[tab.row_offset[t] + tab.dist[child] - 1];
  }

  /// Digest of the semantic content (dimensions, sources, trees, cells);
  /// identical for a captured snapshot and its round-tripped copy. Used as
  /// the cache key for snapshots loaded from disk. A v2 load trusts the
  /// digest stored in the (checksummed) header instead of re-reading the
  /// cells.
  std::uint64_t content_digest() const { return content_digest_; }

  /// Size of the encoded form in bytes (0 until written or read once).
  std::size_t encoded_size() const { return encoded_size_; }

  /// Approximate resident size: the primary table sections (cells, trees,
  /// row offsets — owned or mapped alike) plus the derived ancestry index.
  /// The oracle cache's byte budget evicts against this.
  std::size_t footprint_bytes() const;

  /// True when the tables alias a live memory mapping of the source file.
  bool is_mapped() const { return mapped_; }

 private:
  struct SourceTable {
    Vertex root = kNoVertex;
    // Views over the primary arrays; alias the owned *_store vectors for
    // captured/v1/bulk-read snapshots, or the file image for v2 loads.
    std::span<const Dist> dist;                // n; kInfDist = unreachable
    std::span<const Vertex> parent;            // n; kNoVertex for root/unreachable
    std::span<const EdgeId> parent_edge;       // n; kNoEdge for root/unreachable
    std::span<const std::uint64_t> row_offset; // n+1 prefix sums into cells
    std::span<const Dist> cells;               // flat rows
    // Owned storage (empty when the views alias a file image).
    std::vector<Dist> dist_store;
    std::vector<Vertex> parent_store;
    std::vector<EdgeId> parent_edge_store;
    std::vector<std::uint64_t> row_offset_store;
    std::vector<Dist> cells_store;
    // Derived ancestry index; always recomputed on load, never stored.
    std::vector<Vertex> edge_child;            // m; deeper endpoint of tree edge e
    std::vector<std::uint32_t> tin, tout;      // DFS stamps

    /// Points the views at the owned storage (after the vectors are final).
    void adopt_owned();
  };

  static constexpr std::uint32_t kNoStamp = static_cast<std::uint32_t>(-1);

  static bool is_ancestor(const SourceTable& tab, Vertex a, Vertex v) {
    if (tab.tin[a] == kNoStamp || tab.tin[v] == kNoStamp) return false;
    return tab.tin[a] <= tab.tin[v] && tab.tout[v] <= tab.tout[a];
  }

  /// Builds source_index_ and, per table, the derived ancestry index while
  /// validating every invariant avoiding_at() relies on for memory safety
  /// (parent/edge ranges, distance consistency, connectivity, row-offset
  /// accounting). O(sigma * (n + m)); never touches the cells.
  void build_derived();

  /// Folds the full semantic content — cells included — into a digest.
  std::uint64_t compute_content_digest() const;

  std::vector<std::uint8_t> encode_v1() const;
  std::vector<std::uint8_t> encode_v2() const;
  static Snapshot decode_v1(const std::uint8_t* data, std::size_t size);
  /// Builds a snapshot whose tables alias `data`; `anchor` keeps the bytes
  /// alive (a mapping or an owned buffer).
  static Snapshot attach_v2(const std::uint8_t* data, std::size_t size,
                            std::shared_ptr<const void> anchor, bool verify_cells,
                            bool mapped);
  static Snapshot from_image(const std::uint8_t* data, std::size_t size,
                             std::shared_ptr<const void> anchor, const LoadOptions& opts,
                             bool mapped);

  Vertex n_ = 0;
  EdgeId m_ = 0;
  std::vector<Vertex> sources_;
  std::vector<std::int32_t> source_index_;  // n; -1 = not a source
  std::vector<SourceTable> tables_;
  std::uint64_t content_digest_ = 0;
  mutable std::size_t encoded_size_ = 0;  // set by encode/load
  bool mapped_ = false;
  std::shared_ptr<const void> anchor_;  // mapping or buffer the views alias
};

}  // namespace msrp::service
