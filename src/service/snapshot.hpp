/// \file
/// Binary snapshot of a solved MSRP oracle.
///
/// The text format (core/serialize.hpp) is line-oriented and parses with
/// istream tokenization — fine for golden files, too slow for the serving
/// path where a multi-gigabyte replacement table must come back in one
/// gulp. The snapshot is the build-once/serve-many half of the service
/// layer: a versioned binary image decoded from memory with pointer
/// arithmetic.
///
/// Two on-disk formats share the magic and the version field; the
/// byte-exact layouts, checksum coverage, and validation rules are
/// specified in docs/SNAPSHOT_FORMAT.md. In short:
///
///   * v1 — compact LEB128 varints with delta-coded row cells under one
///     trailing FNV-1a checksum. Smallest file; load cost proportional to
///     the cell count (every cell decodes into owned tables).
///   * v2 — fixed-width little-endian sections, 8-byte aligned, under a
///     72-byte checksummed header. Built for zero-copy serving: a load
///     maps (or bulk-reads) the image, verifies the metadata checksum and
///     the tree/row-offset invariants in O(n + m) per source, and serves
///     straight out of the image — the dominant cells payload is never
///     decoded, copied, or (with LoadOptions::verify_cells off) even
///     touched.
///
/// The derived ancestry index (edge_child, DFS stamps) is recomputed from
/// the parent arrays on every load path, which is what makes a validated
/// snapshot memory-safe to query even if the cells are garbage: every
/// avoiding() read is bounded by the validated row-offset table. The
/// stored content digest is trusted under the metadata checksum; only v1
/// loads and capture() recompute it from the cells.
///
/// Unlike SerializedResult the snapshot also stores the canonical trees,
/// so a loaded snapshot answers avoiding(s, t, e) for arbitrary edge ids
/// in O(1) with no Graph in hand — exactly the MsrpResult::avoiding
/// contract the query service needs. The same v2 bytes serve from a file,
/// an owned buffer (encode()/attach()), or a shared-memory segment (the
/// multi-process shard transport; see shard_router.hpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/result.hpp"

namespace msrp::service {

enum class SnapshotFormat : std::uint32_t { kV1 = 1, kV2 = 2 };

struct SnapshotLoadOptions {
  /// Serve a v2 file straight out of a memory mapping instead of bulk-
  /// reading it (v1 files fall back to the buffered decoder either way).
  bool use_mmap = false;
  /// Verify the v2 cells checksum at load time. Off is the zero-copy
  /// fast path: corrupt cells then yield wrong answers, never unsafe
  /// reads (the row-offset table is always validated).
  bool verify_cells = true;
};

class Snapshot {
 public:
  using LoadOptions = SnapshotLoadOptions;

  Snapshot() = default;

  // The tables alias either owned storage or a mapped file; both survive a
  // move (vector moves keep their heap buffers, the anchor is shared), but
  // a memberwise copy would alias the source object's buffers.
  Snapshot(Snapshot&&) noexcept = default;
  Snapshot& operator=(Snapshot&&) noexcept = default;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  /// Copies the replacement tables and canonical trees out of a solved
  /// result into a self-contained, query-ready oracle.
  static Snapshot capture(const MsrpResult& res);

  /// Copies the tables of the given source indices (in the given order)
  /// into a self-contained sub-oracle over the same graph. The slice
  /// answers exactly the queries whose source is in the subset; its content
  /// digest is recomputed over the reduced source set. This is how the
  /// shard router carves one snapshot into per-worker shared-memory images.
  Snapshot slice(std::span<const std::uint32_t> source_indices) const;

  /// Encodes into the requested format and returns the raw image — the
  /// same bytes write() streams to disk, for callers that place snapshots
  /// somewhere other than a file.
  std::vector<std::uint8_t> encode(SnapshotFormat format = SnapshotFormat::kV2) const;

  /// Exact byte size of this snapshot's v2 image (what encode(kV2) would
  /// return), computable without encoding.
  std::size_t v2_encoded_size() const;

  /// Encodes the v2 image directly into `out`, which must be exactly
  /// v2_encoded_size() bytes — how the shard router writes each shard's
  /// image straight into its shared-memory segment with no intermediate
  /// heap buffer.
  void encode_v2_into(std::span<std::uint8_t> out) const;

  /// Serves a snapshot straight out of caller-provided bytes (a v2 image
  /// in shared memory, an embedded blob, ...). The tables alias `data`;
  /// `anchor` keeps the bytes alive for the snapshot's lifetime. Runs the
  /// same validation as load(); is_mapped() is true for the result. v1
  /// images are decoded into owned storage instead (anchor unused).
  static Snapshot attach(const std::uint8_t* data, std::size_t size,
                         std::shared_ptr<const void> anchor, const LoadOptions& opts = {});

  /// Encodes into the requested on-disk format (one bulk write).
  void write(std::ostream& os, SnapshotFormat format = SnapshotFormat::kV2) const;

  /// Decodes either format (sniffed from the version field); throws
  /// std::invalid_argument on a bad magic/version, truncation, checksum
  /// mismatch, or inconsistent tables.
  static Snapshot read(std::istream& is);

  /// File wrappers; throw std::runtime_error on I/O failure and
  /// std::invalid_argument on a malformed image.
  void save(const std::string& path, SnapshotFormat format = SnapshotFormat::kV2) const;
  static Snapshot load(const std::string& path, const LoadOptions& opts = {});

  Vertex num_vertices() const { return n_; }
  EdgeId num_edges() const { return m_; }
  const std::vector<Vertex>& sources() const { return sources_; }
  std::uint32_t num_sources() const { return static_cast<std::uint32_t>(sources_.size()); }

  bool is_source(Vertex s) const { return s < n_ && source_index_[s] >= 0; }

  /// Index of source vertex s; throws if s is not a source.
  std::uint32_t source_index(Vertex s) const;

  /// d(s, t); kInfDist if t is unreachable from s.
  Dist shortest(Vertex s, Vertex t) const;

  /// Replacement row for (s, t): d(s, t, e_i) per canonical-path position i.
  std::span<const Dist> row(Vertex s, Vertex t) const;

  /// Total replacement-table cells of source index si (the weight the shard
  /// planner balances on).
  std::uint64_t cells_for_source(std::uint32_t si) const {
    return tables_[si].cells.size();
  }

  /// d(s, t, e) for an arbitrary edge id, O(1); same contract as
  /// MsrpResult::avoiding.
  Dist avoiding(Vertex s, Vertex t, EdgeId e) const;

  /// Edge ids of the canonical s->t shortest path in path order: element i
  /// is the edge whose deeper endpoint sits at distance i+1 from s — the
  /// same indexing as row(s, t), so row(s, t)[i] == avoiding(s, t, path[i]).
  /// Empty when s == t or t is unreachable; throws if s is not a source or
  /// t is out of range. This is what the vitality and Vickrey workloads
  /// enumerate, and it needs no Graph: the trees stored in the snapshot
  /// carry the parent edges.
  std::vector<EdgeId> canonical_path(Vertex s, Vertex t) const;

  /// avoiding() with the source-index lookup and bounds checks hoisted out;
  /// the batched read path calls this once per query.
  Dist avoiding_at(std::uint32_t si, Vertex t, EdgeId e) const {
    const SourceTable& tab = tables_[si];
    const Dist dt = tab.dist[t];
    if (dt == kInfDist) return kInfDist;
    const Vertex child = tab.edge_child[e];
    if (child == kNoVertex || !is_ancestor(tab, child, t)) return dt;
    return tab.cells[tab.row_offset[t] + tab.dist[child] - 1];
  }

  /// Digest of the semantic content (dimensions, sources, trees, cells);
  /// identical for a captured snapshot and its round-tripped copy. Used as
  /// the cache key for snapshots loaded from disk. A v2 load trusts the
  /// digest stored in the (checksummed) header instead of re-reading the
  /// cells.
  std::uint64_t content_digest() const { return content_digest_; }

  /// Size of the encoded form in bytes (0 until written or read once).
  std::size_t encoded_size() const { return encoded_size_; }

  /// Approximate resident size: the primary table sections (cells, trees,
  /// row offsets — owned or mapped alike) plus the derived ancestry index.
  /// The oracle cache's byte budget evicts against this.
  std::size_t footprint_bytes() const;

  /// True when the tables alias a live memory mapping of the source file.
  bool is_mapped() const { return mapped_; }

 private:
  struct SourceTable {
    Vertex root = kNoVertex;
    // Views over the primary arrays; alias the owned *_store vectors for
    // captured/v1/bulk-read snapshots, or the file image for v2 loads.
    std::span<const Dist> dist;                // n; kInfDist = unreachable
    std::span<const Vertex> parent;            // n; kNoVertex for root/unreachable
    std::span<const EdgeId> parent_edge;       // n; kNoEdge for root/unreachable
    std::span<const std::uint64_t> row_offset; // n+1 prefix sums into cells
    std::span<const Dist> cells;               // flat rows
    // Owned storage (empty when the views alias a file image).
    std::vector<Dist> dist_store;
    std::vector<Vertex> parent_store;
    std::vector<EdgeId> parent_edge_store;
    std::vector<std::uint64_t> row_offset_store;
    std::vector<Dist> cells_store;
    // Derived ancestry index; always recomputed on load, never stored.
    std::vector<Vertex> edge_child;            // m; deeper endpoint of tree edge e
    std::vector<std::uint32_t> tin, tout;      // DFS stamps

    /// Points the views at the owned storage (after the vectors are final).
    void adopt_owned();
  };

  static constexpr std::uint32_t kNoStamp = static_cast<std::uint32_t>(-1);

  static bool is_ancestor(const SourceTable& tab, Vertex a, Vertex v) {
    if (tab.tin[a] == kNoStamp || tab.tin[v] == kNoStamp) return false;
    return tab.tin[a] <= tab.tin[v] && tab.tout[v] <= tab.tout[a];
  }

  /// Builds source_index_ and, per table, the derived ancestry index while
  /// validating every invariant avoiding_at() relies on for memory safety
  /// (parent/edge ranges, distance consistency, connectivity, row-offset
  /// accounting). O(sigma * (n + m)); never touches the cells.
  void build_derived();

  /// Folds the full semantic content — cells included — into a digest.
  std::uint64_t compute_content_digest() const;

  std::vector<std::uint8_t> encode_v1() const;
  std::vector<std::uint8_t> encode_v2() const;
  static Snapshot decode_v1(const std::uint8_t* data, std::size_t size);
  /// Builds a snapshot whose tables alias `data`; `anchor` keeps the bytes
  /// alive (a mapping or an owned buffer).
  static Snapshot attach_v2(const std::uint8_t* data, std::size_t size,
                            std::shared_ptr<const void> anchor, bool verify_cells,
                            bool mapped);
  static Snapshot from_image(const std::uint8_t* data, std::size_t size,
                             std::shared_ptr<const void> anchor, const LoadOptions& opts,
                             bool mapped);

  Vertex n_ = 0;
  EdgeId m_ = 0;
  std::vector<Vertex> sources_;
  std::vector<std::int32_t> source_index_;  // n; -1 = not a source
  std::vector<SourceTable> tables_;
  std::uint64_t content_digest_ = 0;
  mutable std::size_t encoded_size_ = 0;  // set by encode/load
  bool mapped_ = false;
  std::shared_ptr<const void> anchor_;  // mapping or buffer the views alias
};

}  // namespace msrp::service
