// Binary snapshot of a solved MSRP oracle.
//
// The text format (core/serialize.hpp) is line-oriented and parses with
// istream tokenization — fine for golden files, too slow for the serving
// path where a multi-gigabyte replacement table must come back in one gulp.
// The snapshot is the build-once/serve-many half of the service layer: a
// versioned binary image that is written as one contiguous buffer and
// decoded from memory with pointer arithmetic (bulk load, no line splits).
//
// Layout (all integers unsigned LEB128 varints unless noted):
//
//   8 bytes   magic "MSRPSNAP"
//   4 bytes   version (little-endian u32, currently 1)
//   varint    n, m, sigma
//   sigma x   source section:
//     varint  root vertex
//     n x     vertex record, for v = 0..n-1:
//       varint  0 if v unreachable, else dist(v)+1
//       if reachable and v != root:
//         varint  parent vertex
//         varint  parent edge id
//         dist(v) x varint row cell: 0 for infinity, else cell - dist(v) + 1
//   8 bytes   FNV-1a checksum of everything between the magic and here
//
// Row cells are >= dist(v) (deleting an edge never shortens a path), so the
// delta encoding keeps most cells in one byte. Unlike SerializedResult the
// snapshot also stores the canonical trees, so a loaded snapshot answers
// avoiding(s, t, e) for arbitrary edge ids in O(1) with no Graph in hand —
// exactly the MsrpResult::avoiding contract the query service needs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/result.hpp"

namespace msrp::service {

class Snapshot {
 public:
  Snapshot() = default;

  /// Copies the replacement tables and canonical trees out of a solved
  /// result into a self-contained, query-ready oracle.
  static Snapshot capture(const MsrpResult& res);

  /// Encodes into the binary format (one bulk write).
  void write(std::ostream& os) const;

  /// Decodes the binary format; throws std::invalid_argument on a bad
  /// magic/version, truncation, checksum mismatch, or inconsistent tables.
  static Snapshot read(std::istream& is);

  /// File wrappers; throw std::runtime_error on I/O failure.
  void save(const std::string& path) const;
  static Snapshot load(const std::string& path);

  Vertex num_vertices() const { return n_; }
  EdgeId num_edges() const { return m_; }
  const std::vector<Vertex>& sources() const { return sources_; }
  std::uint32_t num_sources() const { return static_cast<std::uint32_t>(sources_.size()); }

  bool is_source(Vertex s) const { return s < n_ && source_index_[s] >= 0; }

  /// Index of source vertex s; throws if s is not a source.
  std::uint32_t source_index(Vertex s) const;

  /// d(s, t); kInfDist if t is unreachable from s.
  Dist shortest(Vertex s, Vertex t) const;

  /// Replacement row for (s, t): d(s, t, e_i) per canonical-path position i.
  std::span<const Dist> row(Vertex s, Vertex t) const;

  /// d(s, t, e) for an arbitrary edge id, O(1); same contract as
  /// MsrpResult::avoiding.
  Dist avoiding(Vertex s, Vertex t, EdgeId e) const;

  /// avoiding() with the source-index lookup and bounds checks hoisted out;
  /// the batched read path calls this once per query.
  Dist avoiding_at(std::uint32_t si, Vertex t, EdgeId e) const {
    const SourceTable& tab = tables_[si];
    const Dist dt = tab.dist[t];
    if (dt == kInfDist) return kInfDist;
    const Vertex child = tab.edge_child[e];
    if (child == kNoVertex || !is_ancestor(tab, child, t)) return dt;
    return tab.cells[tab.row_offset[t] + tab.dist[child] - 1];
  }

  /// Digest of the semantic content (dimensions, sources, trees, cells);
  /// identical for a captured snapshot and its round-tripped copy. Used as
  /// the cache key for snapshots loaded from disk.
  std::uint64_t content_digest() const { return content_digest_; }

  /// Size of the encoded form in bytes (0 until written or read once).
  std::size_t encoded_size() const { return encoded_size_; }

 private:
  struct SourceTable {
    Vertex root = kNoVertex;
    std::vector<Dist> dist;                // n; kInfDist = unreachable
    std::vector<Vertex> parent;            // n; kNoVertex for root/unreachable
    std::vector<EdgeId> parent_edge;       // n; kNoEdge for root/unreachable
    std::vector<Vertex> edge_child;        // m; deeper endpoint of tree edge e
    std::vector<std::uint32_t> tin, tout;  // DFS stamps (derived, not stored)
    std::vector<std::uint64_t> row_offset; // n+1 prefix sums into cells
    std::vector<Dist> cells;               // flat rows
  };

  static constexpr std::uint32_t kNoStamp = static_cast<std::uint32_t>(-1);

  static bool is_ancestor(const SourceTable& tab, Vertex a, Vertex v) {
    if (tab.tin[a] == kNoStamp || tab.tin[v] == kNoStamp) return false;
    return tab.tin[a] <= tab.tin[v] && tab.tout[v] <= tab.tout[a];
  }

  /// Builds the derived members (edge_child, tin/tout, source_index_) and
  /// validates tree consistency; shared by capture() and read().
  void finalize();

  std::vector<std::uint8_t> encode() const;
  static Snapshot decode(const std::uint8_t* data, std::size_t size);

  Vertex n_ = 0;
  EdgeId m_ = 0;
  std::vector<Vertex> sources_;
  std::vector<std::int32_t> source_index_;  // n; -1 = not a source
  std::vector<SourceTable> tables_;
  std::uint64_t content_digest_ = 0;
  mutable std::size_t encoded_size_ = 0;  // set by encode()/decode()
};

}  // namespace msrp::service
