/// \file
/// Lock-free SPSC query transport between the shard router and one worker.
///
/// Each shard gets one shared-memory segment holding a ShardChannel: a
/// control block plus two single-producer/single-consumer rings of
/// fixed-width slots — requests flowing supervisor -> worker, responses
/// flowing back. SPSC is guaranteed structurally: the router serializes its
/// batches (one producer), and each worker is a single-threaded loop (one
/// consumer). Under that discipline a ring needs nothing beyond one
/// acquire/release cursor pair per direction — no CAS, no futex, no
/// syscalls on the hot path; an idle worker backs off to short sleeps.
///
/// Every request tag carries a batch namespace in its high 32 bits and the
/// query's batch index in the low 32 (make_tag/tag_namespace/tag_index);
/// every response echoes it. That is what lets several batches overlap in
/// the rings at once: the router merges completions by (namespace, index)
/// no matter how shards or batches interleave, and can requeue precisely
/// the unanswered tags — across all namespaces — when a worker dies
/// mid-flight (the supervisor then reset()s the rings before the respawned
/// worker attaches).
///
/// Idle waiting is doorbell-based (util/futex.hpp): request_doorbell() is
/// bumped+woken by the supervisor after pushing requests (and on stop), so
/// an idle worker parks in the kernel instead of sleep-polling; workers
/// ring back through the router-global ShardDoorbell segment after pushing
/// responses. The spin-first fast path keeps sub-µs latency while traffic
/// flows.
///
/// The slots and cursors are plain trivially-copyable data + lock-free
/// std::atomic, so the struct can live in zero-initialized shared memory
/// mapped by unrelated processes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "graph/graph.hpp"
#include "util/distance.hpp"

namespace msrp::service {

/// Tags are (batch namespace << 32) | batch index: the namespace names one
/// in-flight batch, the index the query's slot within it. Batches are
/// capped at 2^32 queries by construction.
inline std::uint64_t make_tag(std::uint32_t ns, std::uint32_t index) {
  return (std::uint64_t{ns} << 32) | index;
}
inline std::uint32_t tag_namespace(std::uint64_t tag) {
  return static_cast<std::uint32_t>(tag >> 32);
}
inline std::uint32_t tag_index(std::uint64_t tag) {
  return static_cast<std::uint32_t>(tag);
}

/// One routed point query; `tag` is make_tag(namespace, batch index).
struct ShardRequest {
  std::uint64_t tag = 0;
  std::uint32_t si = 0;  // source index LOCAL to the shard's sub-snapshot
  Vertex t = 0;
  EdgeId e = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(ShardRequest) == 24 && std::is_trivially_copyable_v<ShardRequest>);

/// One answer; echoes the request's tag.
struct ShardResponse {
  std::uint64_t tag = 0;
  Dist answer = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(ShardResponse) == 16 && std::is_trivially_copyable_v<ShardResponse>);

/// A ring cursor on its own cache line (producer and consumer each own one,
/// so neither write ping-pongs the other's line).
struct alignas(64) ShardCursor {
  std::atomic<std::uint64_t> pos;
  char pad_[64 - sizeof(std::atomic<std::uint64_t>)];
};
static_assert(sizeof(ShardCursor) == 64);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "shard channel atomics must be address-free for cross-process use");

class ShardChannel {
 public:
  static constexpr std::uint64_t kMagic = 0x524148'53505253ull;  // "SRPSHAR"

  enum WorkerState : std::uint32_t {
    kStarting = 0,  ///< forked, not yet attached/validated
    kReady = 1,     ///< serving
    kExited = 2,    ///< clean worker exit
  };

  /// Segment size for a channel with `capacity` slots per ring.
  static std::size_t bytes_for(std::uint32_t capacity) {
    return sizeof(ShardChannel) +
           std::size_t{capacity} * (sizeof(ShardRequest) + sizeof(ShardResponse));
  }

  /// Formats a zero-initialized segment as a channel (supervisor side, once).
  static ShardChannel* init(void* mem, std::uint32_t capacity, std::uint32_t shard_index);

  /// Validates a mapped segment's magic/capacity (worker side).
  static ShardChannel* adopt(void* mem, std::size_t bytes);

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t shard_index() const { return shard_index_; }

  // ----- control block ----------------------------------------------------

  std::atomic<std::uint32_t>& worker_state() { return worker_state_; }
  std::atomic<std::uint32_t>& stop_flag() { return stop_flag_; }
  /// Bumped by the supervisor on every respawn (observability/tests).
  std::atomic<std::uint32_t>& generation() { return generation_; }
  /// Doorbell the supervisor rings (bump + futex wake) after pushing
  /// requests or raising the stop flag; an idle worker parks on it.
  std::atomic<std::uint32_t>& request_doorbell() { return request_doorbell_; }

  // ----- rings ------------------------------------------------------------

  bool try_push_request(const ShardRequest& req) {
    return push(req_head_, req_tail_, req_slots(), req);
  }
  bool try_pop_request(ShardRequest& out) {
    return pop(req_head_, req_tail_, req_slots(), out);
  }
  bool try_push_response(const ShardResponse& resp) {
    return push(resp_head_, resp_tail_, resp_slots(), resp);
  }
  bool try_pop_response(ShardResponse& out) {
    return pop(resp_head_, resp_tail_, resp_slots(), out);
  }

  /// Requests sitting in the ring, not yet popped by the worker.
  std::uint64_t requests_pending() const {
    return req_head_.pos.load(std::memory_order_acquire) -
           req_tail_.pos.load(std::memory_order_acquire);
  }

  /// Empties both rings. Supervisor-only, and only while no worker is
  /// attached (respawn path: the previous worker is dead, the next one has
  /// not been forked yet).
  void reset_rings() {
    req_head_.pos.store(0, std::memory_order_relaxed);
    req_tail_.pos.store(0, std::memory_order_relaxed);
    resp_head_.pos.store(0, std::memory_order_relaxed);
    resp_tail_.pos.store(0, std::memory_order_release);
  }

 private:
  template <typename Slot>
  bool push(ShardCursor& head, const ShardCursor& tail, Slot* slots, const Slot& value) {
    const std::uint64_t h = head.pos.load(std::memory_order_relaxed);
    if (h - tail.pos.load(std::memory_order_acquire) >= capacity_) return false;  // full
    slots[h & (capacity_ - 1)] = value;
    head.pos.store(h + 1, std::memory_order_release);
    return true;
  }

  template <typename Slot>
  bool pop(const ShardCursor& head, ShardCursor& tail, const Slot* slots, Slot& out) {
    const std::uint64_t t = tail.pos.load(std::memory_order_relaxed);
    if (t == head.pos.load(std::memory_order_acquire)) return false;  // empty
    out = slots[t & (capacity_ - 1)];
    tail.pos.store(t + 1, std::memory_order_release);
    return true;
  }

  ShardRequest* req_slots() {
    return reinterpret_cast<ShardRequest*>(reinterpret_cast<std::uint8_t*>(this) +
                                           sizeof(ShardChannel));
  }
  ShardResponse* resp_slots() {
    return reinterpret_cast<ShardResponse*>(req_slots() + capacity_);
  }

  std::uint64_t magic_ = 0;
  std::uint32_t capacity_ = 0;     // slots per ring; power of two
  std::uint32_t shard_index_ = 0;
  std::atomic<std::uint32_t> worker_state_;
  std::atomic<std::uint32_t> stop_flag_;
  std::atomic<std::uint32_t> generation_;
  std::atomic<std::uint32_t> request_doorbell_;
  ShardCursor req_head_, req_tail_;    // producer: supervisor / consumer: worker
  ShardCursor resp_head_, resp_tail_;  // producer: worker / consumer: supervisor
  // Followed in the segment by ShardRequest[capacity], ShardResponse[capacity].
};
static_assert(std::is_trivially_destructible_v<ShardChannel>,
              "shard channels are abandoned in shared memory, never destroyed");

/// Router-global completion doorbell, in its own tiny shm segment
/// (shard_doorbell_name). Every worker bumps + wakes `seq` after pushing
/// responses; the collector — which must wait on "any shard completed",
/// something a per-channel word cannot express with one futex — parks here.
/// Submitters bump it too, so a parked collector picks up new batches
/// immediately.
struct ShardDoorbell {
  static constexpr std::uint64_t kMagic = 0x4c4c'45425253ull;  // "SRBELL"

  static std::size_t bytes_for() { return sizeof(ShardDoorbell); }
  /// Formats a zero-initialized segment (supervisor side, once).
  static ShardDoorbell* init(void* mem);
  /// Validates a mapped segment's magic (worker side).
  static ShardDoorbell* adopt(void* mem, std::size_t bytes);

  std::atomic<std::uint32_t>& seq() { return seq_; }

 private:
  std::uint64_t magic_ = 0;
  std::atomic<std::uint32_t> seq_;
  std::uint32_t pad_ = 0;
};
static_assert(std::is_trivially_destructible_v<ShardDoorbell> &&
              std::is_trivially_copyable_v<ShardCursor>);

}  // namespace msrp::service
