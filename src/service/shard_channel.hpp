/// \file
/// Lock-free SPSC query transport between the shard router and one worker.
///
/// Each shard gets one shared-memory segment holding a ShardChannel: a
/// control block plus two single-producer/single-consumer rings of
/// fixed-width slots — requests flowing supervisor -> worker, responses
/// flowing back. SPSC is guaranteed structurally: the router serializes its
/// batches (one producer), and each worker is a single-threaded loop (one
/// consumer). Under that discipline a ring needs nothing beyond one
/// acquire/release cursor pair per direction — no CAS, no futex, no
/// syscalls on the hot path; an idle worker backs off to short sleeps.
///
/// Every request carries the caller's query index as a tag and every
/// response echoes it, so the router can merge answers back into batch
/// order no matter how shards interleave, and can requeue precisely the
/// unanswered tags when a worker dies mid-batch (the supervisor then
/// reset()s the rings before the respawned worker attaches).
///
/// The slots and cursors are plain trivially-copyable data + lock-free
/// std::atomic, so the struct can live in zero-initialized shared memory
/// mapped by unrelated processes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "graph/graph.hpp"
#include "util/distance.hpp"

namespace msrp::service {

/// One routed point query; `tag` is the index in the caller's batch.
struct ShardRequest {
  std::uint64_t tag = 0;
  std::uint32_t si = 0;  // source index LOCAL to the shard's sub-snapshot
  Vertex t = 0;
  EdgeId e = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(ShardRequest) == 24 && std::is_trivially_copyable_v<ShardRequest>);

/// One answer; echoes the request's tag.
struct ShardResponse {
  std::uint64_t tag = 0;
  Dist answer = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(ShardResponse) == 16 && std::is_trivially_copyable_v<ShardResponse>);

/// A ring cursor on its own cache line (producer and consumer each own one,
/// so neither write ping-pongs the other's line).
struct alignas(64) ShardCursor {
  std::atomic<std::uint64_t> pos;
  char pad_[64 - sizeof(std::atomic<std::uint64_t>)];
};
static_assert(sizeof(ShardCursor) == 64);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "shard channel atomics must be address-free for cross-process use");

class ShardChannel {
 public:
  static constexpr std::uint64_t kMagic = 0x524148'53505253ull;  // "SRPSHAR"

  enum WorkerState : std::uint32_t {
    kStarting = 0,  ///< forked, not yet attached/validated
    kReady = 1,     ///< serving
    kExited = 2,    ///< clean worker exit
  };

  /// Segment size for a channel with `capacity` slots per ring.
  static std::size_t bytes_for(std::uint32_t capacity) {
    return sizeof(ShardChannel) +
           std::size_t{capacity} * (sizeof(ShardRequest) + sizeof(ShardResponse));
  }

  /// Formats a zero-initialized segment as a channel (supervisor side, once).
  static ShardChannel* init(void* mem, std::uint32_t capacity, std::uint32_t shard_index);

  /// Validates a mapped segment's magic/capacity (worker side).
  static ShardChannel* adopt(void* mem, std::size_t bytes);

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t shard_index() const { return shard_index_; }

  // ----- control block ----------------------------------------------------

  std::atomic<std::uint32_t>& worker_state() { return worker_state_; }
  std::atomic<std::uint32_t>& stop_flag() { return stop_flag_; }
  /// Bumped by the supervisor on every respawn (observability/tests).
  std::atomic<std::uint32_t>& generation() { return generation_; }

  // ----- rings ------------------------------------------------------------

  bool try_push_request(const ShardRequest& req) {
    return push(req_head_, req_tail_, req_slots(), req);
  }
  bool try_pop_request(ShardRequest& out) {
    return pop(req_head_, req_tail_, req_slots(), out);
  }
  bool try_push_response(const ShardResponse& resp) {
    return push(resp_head_, resp_tail_, resp_slots(), resp);
  }
  bool try_pop_response(ShardResponse& out) {
    return pop(resp_head_, resp_tail_, resp_slots(), out);
  }

  /// Requests sitting in the ring, not yet popped by the worker.
  std::uint64_t requests_pending() const {
    return req_head_.pos.load(std::memory_order_acquire) -
           req_tail_.pos.load(std::memory_order_acquire);
  }

  /// Empties both rings. Supervisor-only, and only while no worker is
  /// attached (respawn path: the previous worker is dead, the next one has
  /// not been forked yet).
  void reset_rings() {
    req_head_.pos.store(0, std::memory_order_relaxed);
    req_tail_.pos.store(0, std::memory_order_relaxed);
    resp_head_.pos.store(0, std::memory_order_relaxed);
    resp_tail_.pos.store(0, std::memory_order_release);
  }

 private:
  template <typename Slot>
  bool push(ShardCursor& head, const ShardCursor& tail, Slot* slots, const Slot& value) {
    const std::uint64_t h = head.pos.load(std::memory_order_relaxed);
    if (h - tail.pos.load(std::memory_order_acquire) >= capacity_) return false;  // full
    slots[h & (capacity_ - 1)] = value;
    head.pos.store(h + 1, std::memory_order_release);
    return true;
  }

  template <typename Slot>
  bool pop(const ShardCursor& head, ShardCursor& tail, const Slot* slots, Slot& out) {
    const std::uint64_t t = tail.pos.load(std::memory_order_relaxed);
    if (t == head.pos.load(std::memory_order_acquire)) return false;  // empty
    out = slots[t & (capacity_ - 1)];
    tail.pos.store(t + 1, std::memory_order_release);
    return true;
  }

  ShardRequest* req_slots() {
    return reinterpret_cast<ShardRequest*>(reinterpret_cast<std::uint8_t*>(this) +
                                           sizeof(ShardChannel));
  }
  ShardResponse* resp_slots() {
    return reinterpret_cast<ShardResponse*>(req_slots() + capacity_);
  }

  std::uint64_t magic_ = 0;
  std::uint32_t capacity_ = 0;     // slots per ring; power of two
  std::uint32_t shard_index_ = 0;
  std::atomic<std::uint32_t> worker_state_;
  std::atomic<std::uint32_t> stop_flag_;
  std::atomic<std::uint32_t> generation_;
  std::uint32_t pad_ = 0;
  ShardCursor req_head_, req_tail_;    // producer: supervisor / consumer: worker
  ShardCursor resp_head_, resp_tail_;  // producer: worker / consumer: supervisor
  // Followed in the segment by ShardRequest[capacity], ShardResponse[capacity].
};
static_assert(std::is_trivially_destructible_v<ShardChannel>,
              "shard channels are abandoned in shared memory, never destroyed");

}  // namespace msrp::service
