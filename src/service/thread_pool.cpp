#include "service/thread_pool.hpp"

#include <utility>

namespace msrp::service {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace msrp::service
