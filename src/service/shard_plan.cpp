#include "service/shard_plan.hpp"

#include <algorithm>

namespace msrp::service {

ShardPlan ShardPlan::build(const Snapshot& oracle, unsigned shards) {
  const std::uint32_t sigma = oracle.num_sources();
  MSRP_REQUIRE(shards >= 1, "shard plan: need at least one shard");
  const unsigned k_total = std::min<unsigned>(shards, sigma);

  std::uint64_t remaining = 0;
  std::vector<std::uint64_t> weight(sigma);
  for (std::uint32_t si = 0; si < sigma; ++si) {
    // +n so that sources with tiny tables (near the root of a star, say)
    // still carry the fixed per-source cost of their tree arrays.
    weight[si] = oracle.cells_for_source(si) + oracle.num_vertices();
    remaining += weight[si];
  }

  // Greedy contiguous split: each shard takes sources until it reaches the
  // average of what is left, but always leaves enough behind for the later
  // shards to be non-empty. Not optimal, but within one source's weight of
  // the balanced partition — good enough for a routing plan.
  ShardPlan plan;
  plan.begin_.reserve(k_total + 1);
  plan.cells_.reserve(k_total);
  plan.owner_.assign(sigma, 0);
  std::uint32_t idx = 0;
  for (unsigned k = 0; k < k_total; ++k) {
    plan.begin_.push_back(idx);
    const unsigned shards_left = k_total - k;
    const std::uint32_t max_end = sigma - (shards_left - 1);
    const std::uint64_t target = (remaining + shards_left - 1) / shards_left;
    std::uint64_t taken = 0;
    while (idx < max_end && (taken == 0 || taken + weight[idx] <= target)) {
      taken += weight[idx];
      plan.owner_[idx] = k;
      ++idx;
    }
    remaining -= taken;
    plan.cells_.push_back(taken);
  }
  plan.begin_.push_back(sigma);
  MSRP_CHECK(idx == sigma, "shard plan: partition must cover every source");
  return plan;
}

}  // namespace msrp::service
