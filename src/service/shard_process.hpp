/// \file
/// Shard worker: the child-process half of multi-process serving.
///
/// A worker attaches two shared-memory segments its supervisor placed —
/// shard_snapshot_name() holds the shard's v2 snapshot image, served
/// zero-copy via Snapshot::attach; shard_channel_name() holds the SPSC
/// request/response rings — flags itself ready, and then answers point
/// queries until the supervisor raises the stop flag or the parent process
/// disappears. The loop is single-threaded by design: that is what makes
/// the channel's single-consumer/single-producer contract structural.
///
/// Workers are spawned two ways (see ShardRouterOptions::worker_argv):
/// plain fork (the child calls run_shard_worker in the parent's image; how
/// tests and library embedders run) or fork+exec of a binary that routes
/// its `--shard-worker <base>:<k>` flag to shard_worker_main (how
/// msrp_serve deploys — each worker is a real, separately-visible OS
/// process with a fresh address space).
#pragma once

#include <cstdint>
#include <string>

namespace msrp::service {

/// Identifies one worker's segments: shared-memory base name + shard index.
struct ShardWorkerConfig {
  std::string base_name;      ///< router-chosen prefix, e.g. "/msrp.4711.1"
  std::uint32_t shard_index = 0;
};

/// Exit code of a worker whose snapshot segment failed attach-time
/// validation (checksum/shape mismatch — a corrupt or torn image). Distinct
/// from 0 (clean stop), 1 (generic failure), 2 (bad --shard-worker spec)
/// and 127 (exec failure) so the supervisor can log it meaningfully. Set
/// MSRP_SHARD_VERIFY_ATTACH=0 to skip the (full-image) cells checksum and
/// only verify the header, as before.
inline constexpr int kShardWorkerExitBadSnapshot = 3;

/// Name of shard k's channel segment: "<base>.c<k>".
std::string shard_channel_name(const std::string& base, std::uint32_t k);
/// Name of shard k's snapshot segment: "<base>.s<k>".
std::string shard_snapshot_name(const std::string& base, std::uint32_t k);
/// Name of the router-global completion-doorbell segment: "<base>.d".
std::string shard_doorbell_name(const std::string& base);
/// Name of the router-global shm metrics page: "<base>.m". Workers publish
/// per-worker counters into it (obs::ShmCounterPage); attach is tolerant on
/// both sides so older images and metrics-free supervisors interoperate.
std::string shard_metrics_name(const std::string& base);

/// Runs a worker to completion in the calling process. Returns a process
/// exit code (0 = clean stop). Never throws.
int run_shard_worker(const ShardWorkerConfig& cfg);

/// Entry point for the exec'd flavour: parses the "<base>:<k>" spec a
/// router appends after `--shard-worker` and runs the worker. Returns the
/// process exit code.
int shard_worker_main(const std::string& spec);

}  // namespace msrp::service
