/// \file
/// Multi-process sharded serving: supervisor side.
///
/// A ShardRouter scales one oracle past a single process. Construction
/// does all the placement work exactly once:
///
///   1. ShardPlan::build partitions the oracle's sources into K contiguous
///      shards, balanced by replacement-table cells;
///   2. for each shard, Snapshot::slice + encode produce a self-contained
///      v2 image of just that shard's sources, written into a named POSIX
///      shared-memory segment (util/shm.hpp) — the only time table bytes
///      are copied;
///   3. a second segment per shard carries the SPSC request/response rings
///      (shard_channel.hpp), plus one tiny router-global segment for the
///      completion doorbell all workers ring;
///   4. one worker process per shard is forked (optionally exec'ing
///      ShardRouterOptions::worker_argv, e.g. `msrp_serve --shard-worker`),
///      attaches the segments, serves the image zero-copy via
///      Snapshot::attach, and flags itself ready.
///
/// query_batch() is pipelined: each call allocates a fresh batch namespace
/// (the high 32 bits of every SPSC tag), buckets its queries by owning
/// shard, hands the batch to the router's collector thread, and blocks on a
/// condition variable until its answers are merged. The collector is the
/// single thread that touches the rings — one producer per request ring,
/// one consumer per response ring, so SPSC stays structural — and it
/// multiplexes every in-flight batch at once: queries from different
/// batches interleave freely in the rings and completions are keyed by
/// (namespace, index). Concurrent callers therefore overlap instead of
/// serializing; results are still bit-identical to the in-process
/// QueryService, it is only the work that moves.
///
/// Worker death is detected by waitpid polling whenever the collector
/// stops making progress. A dead shard is respawned single-flight, its
/// rings are reset, and the unanswered tags of *every* in-flight batch are
/// requeued in order, so batches survive a worker crash with no lost or
/// duplicated answers. The destructor stops the collector and the workers
/// (one shared deadline across all pids), reaps them, and unlinks every
/// segment; ~ShmSegment unlinks even on exception paths.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "service/backoff.hpp"
#include "service/query.hpp"
#include "service/shard_channel.hpp"
#include "service/shard_plan.hpp"
#include "service/shard_process.hpp"
#include "service/snapshot.hpp"
#include "util/deadline.hpp"
#include "util/shm.hpp"

namespace msrp::service {

struct ShardRouterOptions {
  /// Worker processes; clamped to the oracle's source count.
  unsigned shards = 2;
  /// Slots per ring direction (power of two). Also the per-shard cap on
  /// in-flight queries (across all overlapping batches).
  std::uint32_t ring_capacity = 1024;
  /// Non-empty: fork + exec this argv with "--shard-worker <base>:<k>"
  /// appended (production deployment; the child gets a fresh address
  /// space). Empty: plain fork — the child runs run_shard_worker() in the
  /// parent's image. Fork-without-exec from a multithreaded process relies
  /// on the C library making malloc fork-safe (glibc and macOS quiesce the
  /// allocator around fork; both are covered by CI) — embedders whose
  /// processes hold other locks across calls should prefer exec mode.
  std::vector<std::string> worker_argv = {};
  /// How long to wait for a forked worker to flag itself ready.
  unsigned ready_timeout_ms = 30000;
  /// Idle-wait policy for the collector (and, via the environment, the
  /// workers); defaults honour MSRP_SHARD_* (see backoff.hpp).
  ShardBackoff backoff = ShardBackoff::from_env();
  /// Pin worker k to CPU (k mod hardware_concurrency). Set between fork
  /// and exec, so it works for both spawn flavours. Linux-only; a no-op
  /// elsewhere.
  bool pin_workers = false;
  /// Test hook: run each worker as a std::thread in this process instead
  /// of forking. run_shard_worker attaches the same shm segments by name,
  /// so the transport is exercised end to end — but under TSan, which
  /// cannot follow forked children. Forced-respawn of a wedged thread is
  /// not supported in this mode (there is no SIGKILL for a thread).
  bool workers_in_process = false;
};

/// Monotonic counters; see ShardRouter::stats(). `segments_placed` staying
/// at num_shards() across a workload is the "placed once, served
/// zero-copy" guarantee the tests pin down.
struct ShardRouterStats {
  std::uint64_t segments_placed = 0;  ///< snapshot images written to shm
  std::uint64_t bytes_placed = 0;     ///< summed size of those images
  std::uint64_t queries_routed = 0;   ///< answers merged across all batches
  std::uint64_t respawns = 0;         ///< dead workers replaced
  std::uint64_t batches_routed = 0;   ///< query_batch calls completed
  /// High-water mark of batches simultaneously in flight — > 1 proves
  /// pipelining actually overlapped callers (the differential tests
  /// assert this).
  std::uint64_t peak_inflight_batches = 0;
  /// Total time spent blocked in wait_worker_ready, µs. With the futex
  /// path this is dominated by genuine worker startup (fork + attach),
  /// not polling granularity; shard_test asserts it stays sane.
  std::uint64_t ready_wait_us = 0;
  /// Batches failed with DeadlineExceeded by the collector's expiry pass.
  std::uint64_t deadlines_expired = 0;
};

class ShardRouter {
 public:
  /// Shards `oracle` and spawns the workers; throws std::runtime_error if a
  /// worker cannot be spawned or does not come up ready in time. The oracle
  /// is only read during construction (sliced into the segments); the
  /// router keeps its own copies of the routing metadata.
  explicit ShardRouter(const Snapshot& oracle, const ShardRouterOptions& opts = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Answers queries[i] into result[i], routing each query to the shard
  /// owning its source and merging in batch order. Validates every query
  /// up front (same contract as QueryService::query_batch). Thread-safe;
  /// concurrent batches overlap in the rings under distinct tag
  /// namespaces instead of serializing.
  ///
  /// `deadline` bounds the wait: when it passes with answers still owed,
  /// the collector abandons the batch (purging its unanswered queries and
  /// dropping any late ring answers) and this call throws DeadlineExceeded
  /// within one collector wake of the instant — no wait here is unbounded
  /// unless the caller asked for that (kNoDeadline, the default).
  std::vector<Dist> query_batch(std::span<const Query> queries,
                                Deadline deadline = kNoDeadline);

  unsigned num_shards() const { return static_cast<unsigned>(shards_.size()); }
  const ShardPlan& plan() const { return plan_; }
  const std::string& base_name() const { return base_name_; }
  ShardRouterStats stats() const;

  /// OS pid of shard k's worker (tests, diagnostics; -1 if never spawned
  /// or running in-process).
  long worker_pid(unsigned k) const;

  /// Shared-memory names this router owns (tests assert they vanish on
  /// destruction).
  std::vector<std::string> segment_names() const;

  /// Sum of the workers' shm "worker.<k>.requests" counters (0 where shm
  /// metrics are unsupported). Lives in the router-owned metrics page, so
  /// the count survives worker death and respawn exactly.
  std::uint64_t worker_requests_total() const;

  /// Whether this platform can run the multi-process transport at all.
  static bool supported();

 private:
  struct Shard {
    ShmSegment snap_seg;
    ShmSegment chan_seg;
    ShardChannel* ch = nullptr;
    long pid = -1;
    std::thread thr;  // workers_in_process flavour
  };

  /// One query_batch call in flight. Lives on the caller's stack; the
  /// collector borrows it between submission (under mu_) and completion
  /// (done set under mu_ + cv notify), so ownership hand-off is a plain
  /// mutex acquire both ways.
  struct Batch {
    std::uint32_t ns = 0;
    Deadline deadline = kNoDeadline;
    std::span<const Query> queries;
    std::vector<std::uint32_t> local_si;               // per query
    std::vector<std::vector<std::uint32_t>> buckets;   // per shard, batch order
    std::vector<Dist> out;
    std::size_t remaining = 0;
    bool done = false;
    std::string error;  // non-empty => failed
  };

  /// (batch, index-within-batch): the unit the collector moves between its
  /// per-shard pending and inflight queues.
  struct Entry {
    Batch* b = nullptr;
    std::uint32_t qi = 0;
  };

  void place_shard(const Snapshot& oracle, unsigned k);
  void spawn_worker(unsigned k);
  void wait_worker_ready(unsigned k);
  /// True if shard k's worker has exited (reaps it as a side effect).
  bool worker_dead(unsigned k);
  /// Replaces a dead worker; collector-thread only. Bumps the channel
  /// generation so late observers of the old incarnation can tell.
  void respawn_worker(unsigned k);
  void stop_all_workers() noexcept;

  // ----- collector ---------------------------------------------------------

  void collector_main();
  /// One multiplex round over submissions + all shards; returns whether
  /// anything moved. Collector-thread only.
  bool collector_poll();
  /// Moves newly submitted batches into the collector's queues; returns
  /// whether any arrived.
  bool drain_submissions();
  /// Fails every active batch whose deadline has passed, purging its
  /// queries from the pending/inflight queues (late ring answers for it
  /// are then dropped by collector_poll). Collector-thread only; returns
  /// whether any batch expired.
  bool expire_batches();
  void requeue_inflight(unsigned k);
  /// After an exception escaped the collector: fail every in-flight batch,
  /// kill + respawn all workers, and empty the rings so stranded tags
  /// cannot leak into later batches; sets poisoned_ when even that fails.
  void recover_after_error(const std::string& why) noexcept;
  void fail_all_batches(const std::string& why);
  void ring_submit_bell();

  ShardRouterOptions opts_;
  std::string base_name_;
  ShardPlan plan_;
  // Routing metadata copied out of the oracle at construction.
  Vertex n_ = 0;
  EdgeId m_ = 0;
  std::vector<std::int32_t> source_index_;  // n; -1 = not a source
  std::vector<Shard> shards_;
  ShmSegment bell_seg_;
  ShardDoorbell* bell_ = nullptr;
  // Router-owned (created, unlinked on destruction) page the workers
  // publish per-worker counters into across fork()/exec()/respawn.
  obs::ShmCounterPage metrics_page_;

  // Shared submitter/collector state, all under mu_.
  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::deque<Batch*> submitted_;  // handed to the collector, FIFO
  ShardRouterStats stats_;
  bool collector_stop_ = false;
  // Set when post-exception recovery could not restore clean rings +
  // workers; every later batch then fails fast instead of mis-merging.
  bool poisoned_ = false;

  // Collector-thread-only state (no lock): every batch between submission
  // and completion, and where each of its queries currently sits.
  std::unordered_map<std::uint32_t, Batch*> active_;
  std::vector<std::deque<Entry>> pending_;   // per shard, not yet in the ring
  std::vector<std::deque<Entry>> inflight_;  // per shard, in the ring, unanswered
  std::uint32_t next_ns_ = 1;
  // Whether any active batch carries a real deadline — gates the expiry
  // scan so deadline-free workloads pay nothing per poll round.
  bool any_deadline_ = false;

  std::thread collector_;
  // Last member: unregistered (blocking on any in-flight snapshot) before
  // anything the callback reads — stats_ under mu_, metrics_page_ — dies.
  obs::MetricsRegistry::CollectorHandle metrics_collector_;
};

}  // namespace msrp::service
