/// \file
/// Multi-process sharded serving: supervisor side.
///
/// A ShardRouter scales one oracle past a single process. Construction
/// does all the placement work exactly once:
///
///   1. ShardPlan::build partitions the oracle's sources into K contiguous
///      shards, balanced by replacement-table cells;
///   2. for each shard, Snapshot::slice + encode produce a self-contained
///      v2 image of just that shard's sources, written into a named POSIX
///      shared-memory segment (util/shm.hpp) — the only time table bytes
///      are copied;
///   3. a second segment per shard carries the SPSC request/response rings
///      (shard_channel.hpp);
///   4. one worker process per shard is forked (optionally exec'ing
///      ShardRouterOptions::worker_argv, e.g. `msrp_serve --shard-worker`),
///      attaches both segments, serves the image zero-copy via
///      Snapshot::attach, and flags itself ready.
///
/// query_batch() then routes each (s, t, e) to the shard owning s, tags
/// every request with its batch index, and merges responses back in batch
/// order — results are bit-identical to the in-process QueryService, it is
/// only the work that moves. Batches are serialized through an internal
/// mutex (the rings are strictly SPSC); concurrency comes from the K
/// workers draining their rings in parallel, not from concurrent routers.
///
/// Worker death is detected by waitpid polling whenever a batch stops
/// making progress. A dead shard is respawned single-flight (one respawn
/// per observed death, guarded by the routing mutex + a generation
/// counter), its rings are reset, and the unanswered tags are requeued, so
/// a batch survives a worker crash with no lost or duplicated answers.
/// The destructor stops the workers, reaps them, and unlinks every
/// segment; ~ShmSegment unlinks even on exception paths.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "service/backoff.hpp"
#include "service/query.hpp"
#include "service/shard_channel.hpp"
#include "service/shard_plan.hpp"
#include "service/shard_process.hpp"
#include "service/snapshot.hpp"
#include "util/shm.hpp"

namespace msrp::service {

struct ShardRouterOptions {
  /// Worker processes; clamped to the oracle's source count.
  unsigned shards = 2;
  /// Slots per ring direction (power of two). Also the per-shard cap on
  /// in-flight queries.
  std::uint32_t ring_capacity = 1024;
  /// Non-empty: fork + exec this argv with "--shard-worker <base>:<k>"
  /// appended (production deployment; the child gets a fresh address
  /// space). Empty: plain fork — the child runs run_shard_worker() in the
  /// parent's image. Fork-without-exec from a multithreaded process relies
  /// on the C library making malloc fork-safe (glibc and macOS quiesce the
  /// allocator around fork; both are covered by CI) — embedders whose
  /// processes hold other locks across calls should prefer exec mode.
  std::vector<std::string> worker_argv = {};
  /// How long to wait for a forked worker to flag itself ready.
  unsigned ready_timeout_ms = 30000;
  /// Idle-wait policy while a batch is blocked on worker responses;
  /// defaults honour MSRP_SHARD_SPIN_ROUNDS / MSRP_SHARD_SLEEP_US.
  ShardBackoff backoff = ShardBackoff::from_env();
};

/// Monotonic counters; see ShardRouter::stats(). `segments_placed` staying
/// at num_shards() across a workload is the "placed once, served
/// zero-copy" guarantee the tests pin down.
struct ShardRouterStats {
  std::uint64_t segments_placed = 0;  ///< snapshot images written to shm
  std::uint64_t bytes_placed = 0;     ///< summed size of those images
  std::uint64_t queries_routed = 0;   ///< answers merged across all batches
  std::uint64_t respawns = 0;         ///< dead workers replaced
};

class ShardRouter {
 public:
  /// Shards `oracle` and spawns the workers; throws std::runtime_error if a
  /// worker cannot be spawned or does not come up ready in time. The oracle
  /// is only read during construction (sliced into the segments); the
  /// router keeps its own copies of the routing metadata.
  explicit ShardRouter(const Snapshot& oracle, const ShardRouterOptions& opts = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Answers queries[i] into result[i], routing each query to the shard
  /// owning its source and merging in batch order. Validates every query
  /// up front (same contract as QueryService::query_batch). Thread-safe;
  /// concurrent batches are serialized.
  std::vector<Dist> query_batch(std::span<const Query> queries);

  unsigned num_shards() const { return static_cast<unsigned>(shards_.size()); }
  const ShardPlan& plan() const { return plan_; }
  const std::string& base_name() const { return base_name_; }
  ShardRouterStats stats() const;

  /// OS pid of shard k's worker (tests, diagnostics; -1 if never spawned).
  long worker_pid(unsigned k) const;

  /// Shared-memory names this router owns (tests assert they vanish on
  /// destruction).
  std::vector<std::string> segment_names() const;

  /// Whether this platform can run the multi-process transport at all.
  static bool supported();

 private:
  struct Shard {
    ShmSegment snap_seg;
    ShmSegment chan_seg;
    ShardChannel* ch = nullptr;
    long pid = -1;
  };

  void place_shard(const Snapshot& oracle, unsigned k);
  void spawn_worker(unsigned k);
  void wait_worker_ready(unsigned k);
  /// True if shard k's worker has exited (reaps it as a side effect).
  bool worker_dead(unsigned k);
  /// Replaces a dead worker; caller holds route_mu_. Bumps the channel
  /// generation so late observers of the old incarnation can tell.
  void respawn_worker(unsigned k);
  /// After an exception escaped mid-batch: kill + respawn every worker and
  /// empty the rings so stranded tags cannot leak into later batches; sets
  /// poisoned_ when even that fails. Caller holds route_mu_.
  void recover_after_error() noexcept;
  void stop_all_workers() noexcept;

  ShardRouterOptions opts_;
  std::string base_name_;
  ShardPlan plan_;
  // Routing metadata copied out of the oracle at construction.
  Vertex n_ = 0;
  EdgeId m_ = 0;
  std::vector<std::int32_t> source_index_;  // n; -1 = not a source
  std::vector<Shard> shards_;

  mutable std::mutex route_mu_;  // serializes batches => rings stay SPSC
  ShardRouterStats stats_;
  // Set when post-exception recovery could not restore clean rings +
  // workers; every later batch then fails fast instead of mis-merging.
  bool poisoned_ = false;
};

}  // namespace msrp::service
