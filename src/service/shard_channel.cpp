#include "service/shard_channel.hpp"

#include <bit>
#include <new>

#include "util/assert.hpp"

namespace msrp::service {

ShardChannel* ShardChannel::init(void* mem, std::uint32_t capacity,
                                 std::uint32_t shard_index) {
  MSRP_REQUIRE(capacity >= 2 && std::has_single_bit(capacity),
               "shard channel: capacity must be a power of two >= 2");
  // The segment arrives zero-filled from ftruncate; construct the control
  // block in place and stamp the magic last so a concurrently-attaching
  // worker can never adopt a half-initialized channel.
  auto* ch = new (mem) ShardChannel();
  ch->capacity_ = capacity;
  ch->shard_index_ = shard_index;
  ch->worker_state_.store(kStarting, std::memory_order_relaxed);
  ch->stop_flag_.store(0, std::memory_order_relaxed);
  ch->generation_.store(0, std::memory_order_relaxed);
  ch->request_doorbell_.store(0, std::memory_order_relaxed);
  ch->reset_rings();
  ch->magic_ = kMagic;
  return ch;
}

ShardChannel* ShardChannel::adopt(void* mem, std::size_t bytes) {
  MSRP_REQUIRE(bytes >= sizeof(ShardChannel), "shard channel: segment too small");
  auto* ch = static_cast<ShardChannel*>(mem);
  MSRP_REQUIRE(ch->magic_ == kMagic, "shard channel: bad magic");
  MSRP_REQUIRE(ch->capacity_ >= 2 && std::has_single_bit(ch->capacity_),
               "shard channel: corrupt capacity");
  MSRP_REQUIRE(bytes >= bytes_for(ch->capacity_), "shard channel: truncated segment");
  return ch;
}

ShardDoorbell* ShardDoorbell::init(void* mem) {
  auto* bell = new (mem) ShardDoorbell();
  bell->seq_.store(0, std::memory_order_relaxed);
  bell->magic_ = kMagic;
  return bell;
}

ShardDoorbell* ShardDoorbell::adopt(void* mem, std::size_t bytes) {
  MSRP_REQUIRE(bytes >= sizeof(ShardDoorbell), "shard doorbell: segment too small");
  auto* bell = static_cast<ShardDoorbell*>(mem);
  MSRP_REQUIRE(bell->magic_ == kMagic, "shard doorbell: bad magic");
  return bell;
}

}  // namespace msrp::service
