// Multi-source single-edge-fault distance sensitivity oracle.
//
// The paper's related work traces this object through Demetrescu et al. and
// Bernstein–Karger [4] (sigma = n, O~(n^2) space, O(1) query) and Bilo et
// al. [6] / Gupta–Singh [19] (sigma sources). Building such an oracle is
// exactly the MSRP problem plus a query layout: this class materializes the
// solver's output as an O(1)-query structure
//
//   query(s, t, e) = d(s, t, e)   for any s in S, t in V, e in E,
//
// resolving arbitrary (even off-path) edges through the source tree's
// ancestor index. Space is Theta(sum of path lengths) = O(sigma n^2) words
// worst case — the output-size term of Theorem 26.
#pragma once

#include "core/msrp.hpp"

namespace msrp {

class SensitivityOracle {
 public:
  /// Builds the oracle by solving MSRP (O~(m sqrt(n sigma) + sigma n^2)).
  SensitivityOracle(const Graph& g, std::vector<Vertex> sources, const Config& cfg = {})
      : result_(solve_msrp(g, sources, cfg)) {}

  /// O(1). Throws std::invalid_argument if s is not a source.
  Dist query(Vertex s, Vertex t, EdgeId e) const { return result_.avoiding(s, t, e); }

  /// O(1). Distance with no failure.
  Dist distance(Vertex s, Vertex t) const { return result_.shortest(s, t); }

  const std::vector<Vertex>& sources() const { return result_.sources(); }

  /// Number of Dist cells stored (the paper's Omega(sigma n^2) output term).
  std::uint64_t size_cells() const;

  const MsrpResult& result() const { return result_; }

 private:
  MsrpResult result_;
};

}  // namespace msrp
