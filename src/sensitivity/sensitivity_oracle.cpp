#include "sensitivity/sensitivity_oracle.hpp"

namespace msrp {

std::uint64_t SensitivityOracle::size_cells() const {
  std::uint64_t cells = 0;
  const Vertex n = result_.tree(result_.sources().front()).num_vertices();
  for (const Vertex s : result_.sources()) {
    for (Vertex t = 0; t < n; ++t) cells += result_.row(s, t).size();
  }
  return cells;
}

}  // namespace msrp
