// Reference algorithms the paper compares against (and our ground truth).
//
//  * solve_msrp_brute_force — one BFS per (source, tree edge): O(sigma n m).
//    Exact and deterministic; the correctness oracle for every test and the
//    "naive" series in EXP-1/EXP-3.
//  * solve_msrp_per_pair — the "inefficient algorithm" of Section 3: run the
//    classical single-pair replacement-path algorithm [21, 20, 22] for every
//    (s, t) pair: O~(sigma n (m + n)). Exact and deterministic; the
//    crossover baseline in EXP-3.
//
// Both return the same MsrpResult shape as solve_msrp, so harnesses and
// tests can compare rows directly.
#pragma once

#include "core/result.hpp"

namespace msrp {

MsrpResult solve_msrp_brute_force(const Graph& g, const std::vector<Vertex>& sources);

MsrpResult solve_msrp_per_pair(const Graph& g, const std::vector<Vertex>& sources);

}  // namespace msrp
