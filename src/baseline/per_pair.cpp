#include "baseline/baselines.hpp"
#include "rp/single_pair.hpp"

namespace msrp {

MsrpResult solve_msrp_per_pair(const Graph& g, const std::vector<Vertex>& sources) {
  MsrpResult result(g, sources);
  for (std::uint32_t si = 0; si < result.num_sources(); ++si) {
    const Vertex s = sources[si];
    const BfsTree& ts = result.tree(s);
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      if (!ts.reachable(t) || t == s) continue;
      const SinglePairRp rp = replacement_paths(g, ts, t);
      auto row = result.mutable_row(si, t);
      for (std::uint32_t pos = 0; pos < rp.avoiding.size(); ++pos) {
        row[pos] = rp.avoiding[pos];
      }
    }
  }
  return result;
}

}  // namespace msrp
