#include "baseline/baselines.hpp"
#include "rp/oracle.hpp"

namespace msrp {

MsrpResult solve_msrp_brute_force(const Graph& g, const std::vector<Vertex>& sources) {
  MsrpResult result(g, sources);
  for (std::uint32_t si = 0; si < result.num_sources(); ++si) {
    const Vertex s = sources[si];
    const RpOracle oracle(g, s);
    const BfsTree& ts = result.tree(s);
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      if (!ts.reachable(t) || t == s) continue;
      auto row = result.mutable_row(si, t);
      std::uint32_t pos = 0;
      for (const EdgeId e : ts.path_edges(t)) {
        row[pos++] = oracle.distance_avoiding(t, e);
      }
    }
  }
  return result;
}

}  // namespace msrp
