#include "spath/aux_graph.hpp"

#include <algorithm>

namespace msrp {

void AuxGraph::finalize() {
  if (csr_valid_) return;
  // resize+fill instead of assign so a reset() graph reuses its capacity.
  offsets_.resize(static_cast<std::size_t>(num_nodes_) + 1);
  std::fill(offsets_.begin(), offsets_.end(), 0u);
  for (const ArcRec& a : arcs_) ++offsets_[a.from + 1];
  for (std::uint32_t v = 0; v < num_nodes_; ++v) offsets_[v + 1] += offsets_[v];
  out_arcs_.resize(arcs_.size());
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (const ArcRec& a : arcs_) out_arcs_[cursor_[a.from]++] = OutArc{a.to, a.weight};
  csr_valid_ = true;
}

}  // namespace msrp
