#include "spath/dijkstra.hpp"

#include <algorithm>
#include <queue>

namespace msrp {

DijkstraResult dijkstra(AuxGraph& g, AuxNode source) {
  MSRP_REQUIRE(source < g.num_nodes(), "dijkstra source out of range");
  g.finalize();

  DijkstraResult r;
  r.dist.assign(g.num_nodes(), kInfDist);
  r.parent.assign(g.num_nodes(), static_cast<AuxNode>(-1));

  using Item = std::pair<Dist, AuxNode>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  r.dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d != r.dist[v]) continue;  // stale entry
    for (const AuxGraph::OutArc& a : g.out(v)) {
      const Dist nd = sat_add(d, a.weight);
      if (nd < r.dist[a.to]) {
        r.dist[a.to] = nd;
        r.parent[a.to] = v;
        pq.emplace(nd, a.to);
      }
    }
  }
  return r;
}

std::vector<AuxNode> extract_path(const DijkstraResult& r, AuxNode target) {
  MSRP_REQUIRE(target < r.dist.size(), "target out of range");
  if (r.dist[target] == kInfDist) return {};
  std::vector<AuxNode> path;
  for (AuxNode v = target; v != static_cast<AuxNode>(-1); v = r.parent[v]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace msrp
