#include "spath/dijkstra.hpp"

#include <algorithm>

namespace msrp {

void dijkstra(AuxGraph& g, AuxNode source, DijkstraScratch& s) {
  MSRP_REQUIRE(source < g.num_nodes(), "dijkstra source out of range");
  g.finalize();

  s.begin(g.num_nodes());
  s.settle(source, 0, static_cast<AuxNode>(-1));
  s.queue_.push(0, source);
  while (!s.queue_.empty()) {
    const auto [d, v] = s.queue_.pop();
    if (d != s.dist_[v] || s.stamp_[v] != s.epoch_) continue;  // stale entry
    for (const AuxGraph::OutArc& a : g.out(v)) {
      const Dist nd = sat_add(d, a.weight);
      if (nd < s.dist(a.to)) {
        s.settle(a.to, nd, v);
        s.queue_.push(nd, a.to);
      }
    }
  }
}

DijkstraResult dijkstra(AuxGraph& g, AuxNode source) {
  DijkstraScratch s;
  dijkstra(g, source, s);
  DijkstraResult r;
  r.dist.resize(g.num_nodes());
  r.parent.resize(g.num_nodes());
  for (AuxNode v = 0; v < g.num_nodes(); ++v) {
    r.dist[v] = s.dist(v);
    r.parent[v] = s.parent(v);
  }
  return r;
}

std::vector<AuxNode> extract_path(const DijkstraResult& r, AuxNode target) {
  MSRP_REQUIRE(target < r.dist.size(), "target out of range");
  if (r.dist[target] == kInfDist) return {};
  std::vector<AuxNode> path;
  for (AuxNode v = target; v != static_cast<AuxNode>(-1); v = r.parent[v]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace msrp
