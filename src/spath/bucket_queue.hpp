// Monotone integer priority queue (Dial 1969) for the auxiliary Dijkstras.
//
// Every distance the solver's Dijkstras handle is a path length in the
// unweighted base graph — a small integer — so a flat array of buckets
// indexed by distance beats a binary heap: push is an O(1) vector append,
// pop scans forward from a cursor that never moves backwards (Dijkstra
// settles nodes in non-decreasing distance order, so once bucket d is
// drained nothing smaller is ever pushed again).
//
// The bucket array grows on demand to max pushed distance + 1 and keeps its
// capacity across clear(), which is what makes a scratch-arena Dijkstra
// allocation-free in the steady state: after the first few runs every push
// lands in existing storage.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/distance.hpp"

namespace msrp {

class BucketQueue {
 public:
  bool empty() const { return size_ == 0; }

  /// Pushes value `v` with priority `d`. `d` must be finite, and — the
  /// monotonicity contract — not smaller than the last popped priority.
  void push(Dist d, std::uint32_t v) {
    MSRP_DCHECK(d != kInfDist, "bucket queue priorities must be finite");
    MSRP_DCHECK(d >= cursor_, "monotone queue: push below the popped frontier");
    if (d >= buckets_.size()) buckets_.resize(d + 1);
    buckets_[d].push_back(v);
    ++size_;
  }

  /// Pops a value with the minimum priority; empty() must be false.
  /// Within one bucket, values pop in LIFO order — callers (Dijkstra with a
  /// stale-entry guard) must not depend on tie order.
  std::pair<Dist, std::uint32_t> pop() {
    MSRP_DCHECK(size_ > 0, "pop from empty bucket queue");
    while (buckets_[cursor_].empty()) ++cursor_;
    const std::uint32_t v = buckets_[cursor_].back();
    buckets_[cursor_].pop_back();
    --size_;
    return {cursor_, v};
  }

  /// Resets to empty, keeping bucket capacity. O(1) after a fully drained
  /// run; O(touched buckets) otherwise.
  void clear() {
    if (size_ != 0) {
      for (std::size_t d = cursor_; d < buckets_.size() && size_ != 0; ++d) {
        size_ -= buckets_[d].size();
        buckets_[d].clear();
      }
    }
    size_ = 0;
    cursor_ = 0;
  }

 private:
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::size_t size_ = 0;
  Dist cursor_ = 0;
};

}  // namespace msrp
