// Dijkstra over an AuxGraph.
//
// Binary-heap implementation with lazy deletion; distances are Dist with
// kInfDist = unreachable. The auxiliary graphs' weights are path lengths in
// the base graph, so Dist arithmetic never overflows (sat_add guards anyway).
// Also provides shortest-path-with-parents for callers that need to
// enumerate the actual auxiliary path (Section 8.2.1 enumerates small
// replacement paths to test which centers lie on them).
#pragma once

#include <vector>

#include "spath/aux_graph.hpp"

namespace msrp {

struct DijkstraResult {
  std::vector<Dist> dist;       // per aux node
  std::vector<AuxNode> parent;  // predecessor on a shortest path; -1 if none
};

/// Runs Dijkstra from `source`; finalizes the graph if necessary.
DijkstraResult dijkstra(AuxGraph& g, AuxNode source);

/// Reconstructs the node sequence source -> target from a DijkstraResult;
/// empty if target is unreachable.
std::vector<AuxNode> extract_path(const DijkstraResult& r, AuxNode target);

}  // namespace msrp
