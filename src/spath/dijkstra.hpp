// Dijkstra over an AuxGraph.
//
// Two entry points share one engine:
//
//   * dijkstra(g, source) — allocates a fresh DijkstraResult (dist/parent
//     per node). Used where the result object is long-lived (NearSmall keeps
//     the parents for Section 8.2.1's path reconstruction).
//   * dijkstra(g, source, scratch) — runs into a reusable DijkstraScratch:
//     distances and parents live in arrays that are never re-initialized
//     between runs. A per-run epoch stamp marks which entries are current,
//     so "clearing" the arrays is O(1) and a run touches only the nodes it
//     actually reaches. The per-phase auxiliary Dijkstras of Sections 8.1 /
//     8.2.2 / 8.3 run thousands of times per build; this is what makes them
//     allocation-free in the steady state.
//
// The queue is a monotone bucket queue (Dial) rather than a binary heap —
// auxiliary weights are path lengths in the unweighted base graph, so
// priorities are small integers (see bucket_queue.hpp). Stale entries are
// skipped on pop exactly as with the lazy-deletion heap, which keeps
// results independent of tie order inside a bucket.
#pragma once

#include <vector>

#include "spath/aux_graph.hpp"
#include "spath/bucket_queue.hpp"

namespace msrp {

struct DijkstraResult {
  std::vector<Dist> dist;       // per aux node
  std::vector<AuxNode> parent;  // predecessor on a shortest path; -1 if none
};

/// Reusable state for repeated Dijkstra runs. Grows to the largest graph it
/// has seen and is only ever logically cleared (by bumping the epoch), never
/// physically. Read results through dist()/parent() — raw array entries from
/// older epochs are garbage by design.
class DijkstraScratch {
 public:
  /// Distance of `v` in the most recent run; kInfDist if unreached.
  Dist dist(AuxNode v) const { return stamp_[v] == epoch_ ? dist_[v] : kInfDist; }

  /// Predecessor of `v` in the most recent run; -1 for the source and
  /// unreached nodes.
  AuxNode parent(AuxNode v) const {
    return stamp_[v] == epoch_ ? parent_[v] : static_cast<AuxNode>(-1);
  }

 private:
  friend void dijkstra(AuxGraph& g, AuxNode source, DijkstraScratch& scratch);

  /// Starts a new run over `num_nodes` nodes: grows the arrays if needed and
  /// invalidates every previous entry by bumping the epoch.
  void begin(std::uint32_t num_nodes) {
    if (stamp_.size() < num_nodes) {
      stamp_.resize(num_nodes, 0);
      dist_.resize(num_nodes);
      parent_.resize(num_nodes);
    }
    if (++epoch_ == 0) {  // epoch wrapped: re-zero once every 2^32 runs
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
    queue_.clear();
  }

  void settle(AuxNode v, Dist d, AuxNode from) {
    stamp_[v] = epoch_;
    dist_[v] = d;
    parent_[v] = from;
  }

  std::vector<Dist> dist_;
  std::vector<AuxNode> parent_;
  std::vector<std::uint32_t> stamp_;  // entry valid iff stamp == epoch
  std::uint32_t epoch_ = 0;
  BucketQueue queue_;
};

/// Runs Dijkstra from `source` into `scratch`; finalizes the graph if
/// necessary. Afterwards scratch.dist()/parent() describe this run.
void dijkstra(AuxGraph& g, AuxNode source, DijkstraScratch& scratch);

/// Allocating flavour for callers that keep the result object around.
DijkstraResult dijkstra(AuxGraph& g, AuxNode source);

/// Reconstructs the node sequence source -> target from a DijkstraResult;
/// empty if target is unreachable.
std::vector<AuxNode> extract_path(const DijkstraResult& r, AuxNode target);

}  // namespace msrp
