// Growable directed weighted graph for the paper's auxiliary constructions.
//
// Sections 7.1, 8.1, 8.2.2 and 8.3 each build a weighted digraph whose nodes
// are tuples like [t], [t,e], [c,e], [s,r,i] and run Dijkstra from a source
// node. AuxGraph is the shared container: nodes are dense uint32 handles
// allocated by the caller (which keeps its own tuple -> handle maps), arcs
// are stored in forward-star form built lazily before the Dijkstra run.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/distance.hpp"

namespace msrp {

using AuxNode = std::uint32_t;

class AuxGraph {
 public:
  /// Back to the empty graph, keeping all storage capacity — the per-phase
  /// builders construct thousands of auxiliary graphs per solve and reuse
  /// one AuxGraph per thread through BuildScratch.
  void reset() {
    num_nodes_ = 0;
    arcs_.clear();
    csr_valid_ = false;
  }

  AuxNode add_node() { return num_nodes_++; }

  /// Allocates `count` consecutive nodes, returning the first handle.
  AuxNode add_nodes(std::uint32_t count) {
    const AuxNode first = num_nodes_;
    num_nodes_ += count;
    return first;
  }

  void add_arc(AuxNode from, AuxNode to, Dist weight) {
    MSRP_DCHECK(from < num_nodes_ && to < num_nodes_, "aux arc endpoint out of range");
    arcs_.push_back(ArcRec{from, to, weight});
    csr_valid_ = false;
  }

  std::uint32_t num_nodes() const { return num_nodes_; }
  std::size_t num_arcs() const { return arcs_.size(); }

  struct OutArc {
    AuxNode to;
    Dist weight;
  };

  /// Out-arcs of `v`; call finalize() (or let dijkstra do it) first.
  std::span<const OutArc> out(AuxNode v) const {
    MSRP_DCHECK(csr_valid_, "finalize() must run before traversal");
    return {out_arcs_.data() + offsets_[v], out_arcs_.data() + offsets_[v + 1]};
  }

  /// Builds the forward-star index. Idempotent.
  void finalize();

  bool finalized() const { return csr_valid_; }

 private:
  struct ArcRec {
    AuxNode from, to;
    Dist weight;
  };

  std::uint32_t num_nodes_ = 0;
  std::vector<ArcRec> arcs_;
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> cursor_;  // finalize() workspace, kept for reuse
  std::vector<OutArc> out_arcs_;
  bool csr_valid_ = false;
};

}  // namespace msrp
