#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace msrp::obs {

TraceRing::TraceRing(std::uint32_t sample_every_n, std::size_t capacity)
    : every_(sample_every_n), cap_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(cap_);
}

void TraceRing::publish(const TraceSpan& span) {
  std::lock_guard<std::mutex> lk(mu_);
  TraceSpan s = span;
  s.trace_id = published_;
  if (ring_.size() < cap_) {
    ring_.push_back(s);
  } else {
    ring_[published_ % cap_] = s;
  }
  ++published_;
}

std::vector<TraceSpan> TraceRing::dump() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  if (ring_.size() < cap_) {
    out = ring_;
  } else {
    // The ring wrapped: oldest entry sits at published_ % cap_.
    const std::size_t head = published_ % cap_;
    for (std::size_t i = 0; i < cap_; ++i) out.push_back(ring_[(head + i) % cap_]);
  }
  return out;
}

std::uint64_t TraceRing::published() const {
  std::lock_guard<std::mutex> lk(mu_);
  return published_;
}

std::string format_trace_spans(const std::vector<TraceSpan>& spans) {
  std::string out;
  out.reserve(spans.size() * 96 + 64);
  char line[256];
  for (const TraceSpan& s : spans) {
    std::snprintf(line, sizeof(line),
                  "trace=%llu req=%llu type=%u queries=%u start_ns=%llu "
                  "decode_ns=%llu queue_ns=%llu execute_ns=%llu flush_ns=%llu%s\n",
                  static_cast<unsigned long long>(s.trace_id),
                  static_cast<unsigned long long>(s.request_id), s.frame_type, s.queries,
                  static_cast<unsigned long long>(s.start_ns),
                  static_cast<unsigned long long>(s.decode_ns),
                  static_cast<unsigned long long>(s.queue_ns),
                  static_cast<unsigned long long>(s.execute_ns),
                  static_cast<unsigned long long>(s.flush_ns), s.error ? " error=1" : "");
    out += line;
  }
  if (out.empty()) out = "# no sampled spans yet\n";
  return out;
}

}  // namespace msrp::obs
