/// \file
/// Lock-free metrics registry: named monotonic counters, gauges, and
/// fixed-bucket log-linear latency histograms, plus shm-backed counter
/// pages shared with forked shard workers.
///
/// Design constraints, in order:
///
///  1. The hot path (Counter::add, Histogram::record) must cost a couple of
///     relaxed atomic RMWs and nothing else — no locks, no allocation, no
///     branches on registry state. Handles are raw pointers into
///     registry-owned storage that is never freed or moved while the
///     registry lives, so recording threads never synchronize with
///     registration or snapshotting.
///
///  2. Counters and histograms are striped across `kStripes` cache-line-
///     padded cells; each thread picks a stripe once (thread-local
///     round-robin) and hammers only that line. snapshot() sums the
///     stripes — "per-thread sharded cells aggregated on read".
///
///  3. Histograms are mergeable fixed-bucket log-linear (HDR-style): 4
///     sub-buckets per power of two over nanoseconds, exact below 8 ns,
///     ~12.5% relative error above, 136 buckets spanning ~34 s. Quantiles
///     (p50/p90/p99/p999) are derived from the bucket counts; two
///     histograms merge by adding buckets. No floating point on the
///     record path.
///
///  4. Subsystems that already maintain their own atomics (net::Server,
///     FairDispatcher, OracleCache, ShardRouter...) export them through
///     collector callbacks: a registered std::function appends samples
///     during snapshot(). Registration returns an RAII handle;
///     unregistration blocks until no snapshot is mid-callback, so a
///     collector may safely capture `this` of a shorter-lived object.
///
///  5. ShmCounterPage places named u64 slots in a POSIX shared-memory
///     segment (util/shm.hpp) so forked shard workers publish into the
///     supervisor's registry across fork()/exec()/respawn. Slots are
///     claimed lock-free (CAS on a per-slot state word) and survive worker
///     death: a respawned worker re-finds its slot by name and keeps
///     counting — increments are never lost or doubled by the respawn.
///
/// The process-wide registry is `MetricsRegistry::instance()`. Tests may
/// construct private registries; everything here is instance-scoped.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/shm.hpp"

namespace msrp::obs {

/// Steady-clock nanoseconds (monotonic, not epoch-based). The one time
/// source every stage stamp and histogram record uses.
std::uint64_t now_ns();

// ---------------------------------------------------------------------------
// Histogram bucket geometry (shared by the server, the wire snapshot, and
// client-side percentile math — keep in sync with docs/OBSERVABILITY.md).

/// Bucket count: 8 unit buckets (0..7 ns exact) + 4 sub-buckets per octave
/// for octaves 3..34, i.e. up to 2^35 ns ≈ 34.4 s. Larger values clamp
/// into the last bucket (rendered as +Inf's neighbour).
inline constexpr std::size_t kHistogramBuckets = 136;

/// Maps a nanosecond value to its bucket index.
constexpr std::size_t bucket_index(std::uint64_t ns) {
  if (ns < 8) return static_cast<std::size_t>(ns);
  int msb = 63;
  while ((ns >> msb) == 0) --msb;  // constexpr-friendly clz
  const std::uint64_t sub = (ns >> (msb - 2)) & 3;
  const std::size_t idx = static_cast<std::size_t>(msb - 3) * 4 + static_cast<std::size_t>(sub) + 8;
  return idx < kHistogramBuckets ? idx : kHistogramBuckets - 1;
}

/// Exclusive upper edge of bucket `idx` in nanoseconds. The last bucket's
/// edge is the clamp boundary; values above it are still counted there.
constexpr std::uint64_t bucket_upper_ns(std::size_t idx) {
  if (idx < 8) return static_cast<std::uint64_t>(idx) + 1;
  const std::size_t octave = (idx - 8) / 4 + 3;          // msb of the covered range
  const std::uint64_t quarter = (idx - 8) % 4;           // sub-bucket within the octave
  return (std::uint64_t{1} << (octave - 2)) * (5 + quarter);
}

/// Quantile estimate (q in [0,1]) from dense bucket counts: the upper edge
/// of the bucket containing the q-th sample. Returns 0 for empty data.
std::uint64_t quantile_ns(const std::uint64_t* buckets, std::size_t n_buckets, double q);

// ---------------------------------------------------------------------------
// Hot-path handles. Obtained from a MetricsRegistry; valid for its lifetime.

namespace detail {

inline constexpr std::size_t kStripes = 8;  // power of two

struct alignas(64) StripedCell {
  std::atomic<std::uint64_t> v{0};
};

/// Index of the calling thread's stripe (assigned round-robin on first use,
/// shared by every counter/histogram in the process).
std::size_t thread_stripe();

}  // namespace detail

/// Monotonic counter. add() is wait-free: one relaxed fetch_add on the
/// caller's stripe.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    cells_[detail::thread_stripe()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::array<detail::StripedCell, detail::kStripes> cells_{};
};

/// Last-write-wins signed gauge (a level, not a rate).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<std::int64_t> v_{0};
};

/// Log-linear latency histogram over nanoseconds. record() is wait-free:
/// two relaxed fetch_adds (bucket + sum) on the caller's stripe.
class Histogram {
 public:
  void record(std::uint64_t ns) noexcept {
    const std::size_t s = detail::thread_stripe();
    stripes_[s].buckets[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    stripes_[s].sum_ns.fetch_add(ns, std::memory_order_relaxed);
  }

  /// Dense bucket counts summed over stripes (for snapshot/merge/tests).
  void read(std::uint64_t* out_buckets, std::uint64_t& out_count, std::uint64_t& out_sum_ns) const;

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> sum_ns{0};
  };
  std::array<Stripe, detail::kStripes> stripes_{};
};

// ---------------------------------------------------------------------------
// Snapshots: the read-side view every exporter (Prometheus text, STATS
// wire frames, stderr stats lines) renders from.

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;            // base name, e.g. "query_latency"
  std::string label;           // stage label value; empty = unlabelled
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  std::uint64_t quantile(double q) const { return quantile_ns(buckets.data(), buckets.size(), q); }
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;      // sorted by name, duplicates summed
  std::vector<GaugeSample> gauges;          // sorted by name, duplicates summed
  std::vector<HistogramSample> histograms;  // sorted by (name, label)
};

// ---------------------------------------------------------------------------
// Shm-backed counter page: named u64 slots in shared memory, written by
// forked shard workers, read by the supervisor's snapshot.

class ShmCounterPage {
 public:
  static constexpr std::size_t kSlots = 62;
  static constexpr std::size_t kSlotNameBytes = 48;

  ShmCounterPage() = default;

  static bool supported() { return ShmSegment::supported(); }

  /// Computes the page's byte size (create passes it to ShmSegment).
  static std::size_t bytes_for();

  /// Creates (and owns — unlinks on destruction) a fresh page.
  static ShmCounterPage create(const std::string& shm_name);

  /// Attaches an existing page read-write (worker side / reopen).
  static ShmCounterPage open(const std::string& shm_name);

  bool valid() const { return page_ != nullptr; }
  const std::string& shm_name() const { return seg_.name(); }

  /// Finds the slot named `name`, claiming a fresh one if absent. Safe
  /// concurrently from multiple processes (per-slot CAS claim). Returns
  /// nullptr only when the page is full or the name exceeds
  /// kSlotNameBytes-1 bytes. The returned atomic lives in shared memory:
  /// fetch_add from any process, any time.
  std::atomic<std::uint64_t>* find_or_create(std::string_view name);

  /// Find without claiming; nullptr when absent.
  std::atomic<std::uint64_t>* find(std::string_view name) const;

  /// Appends one CounterSample per claimed slot (name prefixed with
  /// `prefix`) — the registry-collector body for a page.
  void collect(MetricsSnapshot& out, const std::string& prefix = {}) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> state;  // 0 free, 1 published, 2 mid-claim
    char name[kSlotNameBytes];
    std::atomic<std::uint64_t> value;
  };
  struct Page {
    std::uint64_t magic;
    Slot slots[kSlots];
  };
  static constexpr std::uint64_t kMagic = 0x6d737270'6f627331ull;  // "msrp" "obs1"

  ShmSegment seg_;
  Page* page_ = nullptr;
};

// ---------------------------------------------------------------------------
// The registry.

class MetricsRegistry {
 public:
  /// Appends samples for a subsystem's own state during snapshot(). Runs
  /// under the registry mutex — keep it cheap (atomic loads + push_back).
  using CollectFn = std::function<void(MetricsSnapshot&)>;

  /// RAII collector registration: destruction unregisters and, because it
  /// takes the registry mutex, blocks until any in-flight snapshot is done
  /// calling the function.
  class CollectorHandle {
   public:
    CollectorHandle() = default;
    CollectorHandle(CollectorHandle&&) noexcept;
    CollectorHandle& operator=(CollectorHandle&&) noexcept;
    CollectorHandle(const CollectorHandle&) = delete;
    CollectorHandle& operator=(const CollectorHandle&) = delete;
    ~CollectorHandle();
    void reset();

   private:
    friend class MetricsRegistry;
    CollectorHandle(MetricsRegistry* reg, std::uint64_t id) : reg_(reg), id_(id) {}
    MetricsRegistry* reg_ = nullptr;
    std::uint64_t id_ = 0;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem publishes into by default.
  static MetricsRegistry& instance();

  /// Find-or-create. The returned pointer is stable for the registry's
  /// lifetime; repeated calls with the same name return the same object.
  /// Not hot-path — resolve handles once, at startup.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name, std::string_view label = {});

  [[nodiscard]] CollectorHandle register_collector(CollectFn fn);

  /// Full aggregated view: owned metrics summed over stripes, collector
  /// callbacks appended, duplicates (same name) summed, sorted by name.
  MetricsSnapshot snapshot() const;

 private:
  friend class CollectorHandle;
  void unregister_collector(std::uint64_t id);

  mutable std::mutex mu_;
  // deque-like stability via unique_ptr: handles are raw pointers.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::tuple<std::string, std::string, std::unique_ptr<Histogram>>> histograms_;
  std::vector<std::pair<std::uint64_t, CollectFn>> collectors_;
  std::uint64_t next_collector_id_ = 1;
};

}  // namespace msrp::obs
