/// \file
/// Sampled query tracing: where did this query's 2 ms go?
///
/// Every request gets its per-stage durations recorded into the registry's
/// latency histograms unconditionally (that is cheap — see metrics.hpp).
/// On top of that, one request in N is *traced*: its TraceSpan — request
/// identity plus the four stage durations — is published into a bounded
/// ring that an operator can dump on demand (GET /traces on the metrics
/// listener, or programmatically via dump()).
///
/// The stage model matches the serving path end to end:
///
///   decode   frame arrival on the loop thread -> batch validated,
///            oracle resolved, handed to the dispatcher
///   queue    dispatcher submit -> the batch wins an inflight slot and
///            starts executing (admission + weighted-fair wait)
///   execute  execution start -> completion callback (pool workers and/or
///            shard round trips)
///   flush    completion posted back to the loop thread -> reply encoded
///            and pushed into the connection's send path
///
/// Sampling is a single atomic tick; an unsampled request costs one
/// fetch_add and no ring traffic. The ring overwrites oldest-first, so a
/// dump shows the most recent ~capacity sampled requests.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace msrp::obs {

struct TraceSpan {
  std::uint64_t trace_id = 0;    // monotonically increasing per sampled span
  std::uint64_t request_id = 0;  // wire frame id (Frame::id)
  std::uint32_t frame_type = 0;  // protocol FrameType of the request
  std::uint32_t queries = 0;     // batch size
  std::uint64_t start_ns = 0;    // now_ns() at decode entry
  std::uint64_t decode_ns = 0;
  std::uint64_t queue_ns = 0;
  std::uint64_t execute_ns = 0;
  std::uint64_t flush_ns = 0;
  bool error = false;  // the reply was an ERROR (incl. deadline exceeded)
};

class TraceRing {
 public:
  /// Samples one request in `sample_every_n` (0 disables sampling
  /// entirely). `capacity` bounds retained spans.
  explicit TraceRing(std::uint32_t sample_every_n, std::size_t capacity = 256);

  /// True when the caller should trace this request. Wait-free.
  bool sample() noexcept {
    if (every_ == 0) return false;
    return tick_.fetch_add(1, std::memory_order_relaxed) % every_ == 0;
  }

  void publish(const TraceSpan& span);

  /// Retained spans, oldest first. Cheap enough for an operator endpoint;
  /// never called on the serving hot path.
  std::vector<TraceSpan> dump() const;

  std::uint32_t sample_every() const { return every_; }
  std::size_t capacity() const { return cap_; }
  std::uint64_t published() const;

 private:
  const std::uint32_t every_;
  const std::size_t cap_;
  std::atomic<std::uint64_t> tick_{0};
  mutable std::mutex mu_;
  std::vector<TraceSpan> ring_;   // ring_[i % cap_], wrapped
  std::uint64_t published_ = 0;   // total spans ever published
};

/// Human-readable dump, one span per line (the /traces body).
std::string format_trace_spans(const std::vector<TraceSpan>& spans);

}  // namespace msrp::obs
