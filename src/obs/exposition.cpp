#include "obs/exposition.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace msrp::obs {

namespace {

bool name_byte_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

/// Seconds with enough digits to round-trip the ns-resolution bucket edges.
void append_seconds(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(ns) / 1e9);
  out += buf;
}

}  // namespace

std::string exposition_name(const std::string& registry_name) {
  std::string out = "msrp_";
  out.reserve(registry_name.size() + 5);
  for (char c : registry_name) out += name_byte_ok(c) ? c : '_';
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);

  for (const CounterSample& c : snap.counters) {
    const std::string base = exposition_name(c.name);
    out += "# TYPE " + base + "_total counter\n";
    out += base + "_total ";
    append_u64(out, c.value);
    out += '\n';
  }

  for (const GaugeSample& g : snap.gauges) {
    const std::string base = exposition_name(g.name);
    out += "# TYPE " + base + " gauge\n";
    out += base + ' ';
    append_i64(out, static_cast<std::int64_t>(g.value));
    out += '\n';
  }

  // Histograms with the same base name but different stage labels form one
  // metric family: one TYPE line, one labelled series set each.
  std::string prev_family;
  for (const HistogramSample& h : snap.histograms) {
    const std::string family = exposition_name(h.name) + "_seconds";
    if (family != prev_family) {
      out += "# TYPE " + family + " histogram\n";
      prev_family = family;
    }
    const std::string label_prefix =
        h.label.empty() ? std::string() : "stage=\"" + h.label + "\"";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      cumulative += h.buckets[b];
      if (h.buckets[b] == 0) continue;  // sparse: omit untouched edges
      out += family + "_bucket{" + label_prefix;
      if (!label_prefix.empty()) out += ',';
      out += "le=\"";
      append_seconds(out, bucket_upper_ns(b));
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += family + "_bucket{" + label_prefix;
    if (!label_prefix.empty()) out += ',';
    out += "le=\"+Inf\"} ";
    append_u64(out, h.count);
    out += '\n';
    out += family + "_sum";
    if (!label_prefix.empty()) out += '{' + label_prefix + '}';
    out += ' ';
    append_seconds(out, h.sum_ns);
    out += '\n';
    out += family + "_count";
    if (!label_prefix.empty()) out += '{' + label_prefix + '}';
    out += ' ';
    append_u64(out, h.count);
    out += '\n';
  }

  return out;
}

std::string render_stats_lines(const MetricsSnapshot& snap) {
  // Group counters and gauges by their dotted prefix so each subsystem
  // prints as one line: "stats server: batches_received=12 ...".
  std::map<std::string, std::string> lines;
  const auto add = [&lines](const std::string& name, const std::string& value) {
    const std::size_t dot = name.find('.');
    const std::string group = dot == std::string::npos ? "misc" : name.substr(0, dot);
    const std::string key = dot == std::string::npos ? name : name.substr(dot + 1);
    std::string& line = lines[group];
    if (!line.empty()) line += ' ';
    line += key + '=' + value;
  };
  for (const CounterSample& c : snap.counters) {
    std::string v;
    append_u64(v, c.value);
    add(c.name, v);
  }
  for (const GaugeSample& g : snap.gauges) {
    std::string v;
    append_i64(v, g.value);
    add(g.name, v);
  }

  std::string out;
  for (const auto& [group, line] : lines) {
    out += "stats " + group + ": " + line + '\n';
  }
  for (const HistogramSample& h : snap.histograms) {
    if (h.count == 0) continue;
    out += "stats " + h.name;
    if (!h.label.empty()) out += '[' + h.label + ']';
    out += ": count=";
    append_u64(out, h.count);
    out += " mean_us=";
    append_u64(out, h.count == 0 ? 0 : h.sum_ns / h.count / 1000);
    out += " p50_us=";
    append_u64(out, h.quantile(0.50) / 1000);
    out += " p90_us=";
    append_u64(out, h.quantile(0.90) / 1000);
    out += " p99_us=";
    append_u64(out, h.quantile(0.99) / 1000);
    out += " p999_us=";
    append_u64(out, h.quantile(0.999) / 1000);
    out += '\n';
  }
  return out;
}

}  // namespace msrp::obs
