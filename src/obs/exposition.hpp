/// \file
/// Renderers over MetricsSnapshot: the Prometheus text exposition served
/// at GET /metrics, and the compact stats lines msrp_serve prints to
/// stderr. One snapshot, one formatting path — every exporter (HTTP, wire
/// STATS, stderr) reads the same registry state.
///
/// Naming: registry names are dotted ("server.batches_received");
/// exposition sanitizes every non-[a-zA-Z0-9_] byte to '_' and prefixes
/// "msrp_". Counters gain the "_total" suffix, histograms are emitted in
/// seconds as "msrp_<name>_seconds" with cumulative "_bucket{le=...}"
/// series, "_sum" and "_count" — the standard Prometheus histogram
/// triplet. A histogram's stage label becomes {stage="..."}.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace msrp::obs {

/// "server.batches_received" -> "msrp_server_batches_received".
std::string exposition_name(const std::string& registry_name);

/// Prometheus text format 0.0.4 (the format every scraper accepts).
std::string render_prometheus(const MetricsSnapshot& snap);

/// Compact `key=value` stats lines (one subsystem prefix per line) for
/// periodic/final stderr telemetry.
std::string render_stats_lines(const MetricsSnapshot& snap);

}  // namespace msrp::obs
