/// \file
/// Minimal HTTP/1.0 observability listener: GET /metrics (Prometheus text
/// exposition), /healthz (liveness), /traces (sampled span dump).
///
/// Deliberately not a web server: one EventLoop (the same epoll reactor
/// the serving front end uses) on its own thread, request parsing limited
/// to the GET request line, every response `Connection: close`. That is
/// exactly what a scraper or a curl-wielding operator needs, and nothing a
/// request smuggler can get creative with. The listener is independent of
/// the serving listener so a wedged serving path can still be inspected.
///
/// Linux-only like the rest of the epoll layer; supported() gates.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace msrp::obs {

class MetricsHttpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral; bound port via port()
  };

  /// True where the epoll event loop exists (Linux).
  static bool supported();

  /// Binds, listens, and starts the loop thread. `traces` may be null
  /// (then /traces reports sampling disabled). Throws on bind failure.
  MetricsHttpServer(MetricsRegistry& registry, TraceRing* traces, const Options& opts);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  const std::string& host() const { return host_; }
  std::uint16_t port() const { return port_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string host_;
  std::uint16_t port_ = 0;
};

}  // namespace msrp::obs
