#include "obs/http_metrics.hpp"

#include <stdexcept>

#include "net/event_loop.hpp"
#include "obs/exposition.hpp"

#if defined(__linux__)
#define MSRP_HAVE_METRICS_HTTP 1
#else
#define MSRP_HAVE_METRICS_HTTP 0
#endif

#if MSRP_HAVE_METRICS_HTTP

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <unordered_map>

namespace msrp::obs {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string http_response(int code, const char* reason, const std::string& body,
                          const char* content_type) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + ' ' + reason + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

struct MetricsHttpServer::Impl {
  MetricsRegistry& registry;
  TraceRing* traces;
  net::EventLoop loop;
  int listen_fd = -1;
  std::thread thread;

  struct Conn {
    std::string in;
    std::string out;
    std::size_t off = 0;
  };
  std::unordered_map<int, Conn> conns;  // loop-thread-only

  Impl(MetricsRegistry& reg, TraceRing* tr) : registry(reg), traces(tr) {}

  ~Impl() {
    loop.stop();
    if (thread.joinable()) thread.join();
    for (auto& [fd, c] : conns) ::close(fd);
    conns.clear();
    if (listen_fd >= 0) ::close(listen_fd);
  }

  void close_conn(int fd) {
    loop.remove_fd(fd);
    ::close(fd);
    conns.erase(fd);
  }

  std::string respond(const std::string& request_line) {
    // "GET <path> HTTP/1.x" — anything else is a 400/404/405.
    const std::size_t sp1 = request_line.find(' ');
    if (sp1 == std::string::npos) return http_response(400, "Bad Request", "bad request\n", "text/plain");
    const std::string method = request_line.substr(0, sp1);
    const std::size_t sp2 = request_line.find(' ', sp1 + 1);
    const std::string path = request_line.substr(
        sp1 + 1, sp2 == std::string::npos ? std::string::npos : sp2 - sp1 - 1);
    if (method != "GET") {
      return http_response(405, "Method Not Allowed", "only GET is served here\n", "text/plain");
    }
    if (path == "/metrics") {
      return http_response(200, "OK", render_prometheus(registry.snapshot()),
                           "text/plain; version=0.0.4; charset=utf-8");
    }
    if (path == "/healthz") {
      return http_response(200, "OK", "ok\n", "text/plain");
    }
    if (path == "/traces") {
      const std::string body = traces == nullptr
                                   ? std::string("# tracing disabled (--trace-sample-n 0)\n")
                                   : format_trace_spans(traces->dump());
      return http_response(200, "OK", body, "text/plain");
    }
    return http_response(404, "Not Found", "try /metrics, /healthz or /traces\n", "text/plain");
  }

  void flush_conn(int fd, Conn& c) {
    while (c.off < c.out.size()) {
      const ssize_t n = ::write(fd, c.out.data() + c.off, c.out.size() - c.off);
      if (n > 0) {
        c.off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        loop.modify_fd(fd, EPOLLOUT);
        return;
      }
      break;  // peer gone — close below
    }
    close_conn(fd);
  }

  void on_conn_event(int fd, std::uint32_t events) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    Conn& c = it->second;
    if (!c.out.empty()) {  // response in flight; only flushing remains
      flush_conn(fd, c);
      return;
    }
    if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
      close_conn(fd);
      return;
    }
    char buf[2048];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        c.in.append(buf, static_cast<std::size_t>(n));
        if (c.in.size() > 16 * 1024) {  // no legitimate scrape request is this big
          close_conn(fd);
          return;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_conn(fd);  // EOF before a full request, or a hard error
      return;
    }
    const std::size_t eol = c.in.find("\r\n");
    if (eol == std::string::npos) return;  // request line not complete yet
    c.out = respond(c.in.substr(0, eol));
    flush_conn(fd, c);
  }

  void on_accept() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN or transient error — epoll will re-arm
      set_nonblocking(fd);
      conns.emplace(fd, Conn{});
      loop.add_fd(fd, EPOLLIN, [this, fd](std::uint32_t ev) { on_conn_event(fd, ev); });
    }
  }
};

bool MetricsHttpServer::supported() { return net::event_loop_supported(); }

MetricsHttpServer::MetricsHttpServer(MetricsRegistry& registry, TraceRing* traces,
                                     const Options& opts)
    : impl_(std::make_unique<Impl>(registry, traces)), host_(opts.host) {
  if (!supported()) {
    throw std::runtime_error("metrics http: event loop unsupported on this platform");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("metrics http: socket() failed");
  impl_->listen_fd = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("metrics http: bad bind address " + opts.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error("metrics http: bind " + opts.host + ':' +
                             std::to_string(opts.port) + " failed: " + std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    throw std::runtime_error("metrics http: listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(fd);
  impl_->loop.add_fd(fd, EPOLLIN, [impl = impl_.get()](std::uint32_t) { impl->on_accept(); });
  impl_->thread = std::thread([impl = impl_.get()] { impl->loop.run(); });
}

MetricsHttpServer::~MetricsHttpServer() = default;

}  // namespace msrp::obs

#else  // !MSRP_HAVE_METRICS_HTTP

namespace msrp::obs {

struct MetricsHttpServer::Impl {};

bool MetricsHttpServer::supported() { return false; }

MetricsHttpServer::MetricsHttpServer(MetricsRegistry&, TraceRing*, const Options&) {
  throw std::runtime_error("metrics http: unsupported on this platform");
}

MetricsHttpServer::~MetricsHttpServer() = default;

}  // namespace msrp::obs

#endif  // MSRP_HAVE_METRICS_HTTP
