#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace msrp::obs {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t quantile_ns(const std::uint64_t* buckets, std::size_t n_buckets, double q) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n_buckets; ++i) total += buckets[i];
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based; q=0 -> first sample's bucket.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < n_buckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return bucket_upper_ns(i);
  }
  return bucket_upper_ns(n_buckets - 1);
}

namespace detail {

std::size_t thread_stripe() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

}  // namespace detail

void Histogram::read(std::uint64_t* out_buckets, std::uint64_t& out_count,
                     std::uint64_t& out_sum_ns) const {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) out_buckets[b] = 0;
  for (const Stripe& s : stripes_) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t c = s.buckets[b].load(std::memory_order_relaxed);
      out_buckets[b] += c;
      count += c;
    }
    sum += s.sum_ns.load(std::memory_order_relaxed);
  }
  out_count = count;
  out_sum_ns = sum;
}

// ---------------------------------------------------------------------------
// ShmCounterPage

std::size_t ShmCounterPage::bytes_for() { return sizeof(Page); }

ShmCounterPage ShmCounterPage::create(const std::string& shm_name) {
  ShmCounterPage p;
  p.seg_ = ShmSegment::create(shm_name, bytes_for());
  p.page_ = reinterpret_cast<Page*>(p.seg_.data());
  // The segment is zero-filled: state 0 == free is the valid empty page.
  p.page_->magic = kMagic;
  return p;
}

ShmCounterPage ShmCounterPage::open(const std::string& shm_name) {
  ShmCounterPage p;
  p.seg_ = ShmSegment::open(shm_name, /*writable=*/true);
  if (p.seg_.size() < bytes_for()) {
    throw std::runtime_error("shm counter page " + shm_name + ": segment too small");
  }
  p.page_ = reinterpret_cast<Page*>(p.seg_.data());
  if (p.page_->magic != kMagic) {
    throw std::runtime_error("shm counter page " + shm_name + ": bad magic");
  }
  return p;
}

std::atomic<std::uint64_t>* ShmCounterPage::find_or_create(std::string_view name) {
  if (page_ == nullptr || name.size() >= kSlotNameBytes) return nullptr;
  for (std::size_t i = 0; i < kSlots; ++i) {
    Slot& s = page_->slots[i];
    std::uint64_t state = s.state.load(std::memory_order_acquire);
    for (;;) {
      if (state == 1) {
        if (std::strncmp(s.name, name.data(), name.size()) == 0 &&
            s.name[name.size()] == '\0') {
          return &s.value;
        }
        break;  // published under another name; next slot
      }
      if (state == 0) {
        // Claim: 0 -> 2, write the name, publish 2 -> 1. A concurrent
        // claimer that loses the CAS re-reads and waits for publication.
        if (s.state.compare_exchange_weak(state, 2, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          std::memset(s.name, 0, kSlotNameBytes);
          std::memcpy(s.name, name.data(), name.size());
          s.state.store(1, std::memory_order_release);
          return &s.value;
        }
        continue;  // state reloaded by the failed CAS
      }
      // state == 2: another process is mid-claim on this slot; spin until
      // it publishes, then compare names.
      state = s.state.load(std::memory_order_acquire);
    }
  }
  return nullptr;  // page full
}

std::atomic<std::uint64_t>* ShmCounterPage::find(std::string_view name) const {
  if (page_ == nullptr || name.size() >= kSlotNameBytes) return nullptr;
  for (std::size_t i = 0; i < kSlots; ++i) {
    Slot& s = page_->slots[i];
    if (s.state.load(std::memory_order_acquire) != 1) continue;
    if (std::strncmp(s.name, name.data(), name.size()) == 0 && s.name[name.size()] == '\0') {
      return &s.value;
    }
  }
  return nullptr;
}

void ShmCounterPage::collect(MetricsSnapshot& out, const std::string& prefix) const {
  if (page_ == nullptr) return;
  for (std::size_t i = 0; i < kSlots; ++i) {
    const Slot& s = page_->slots[i];
    if (s.state.load(std::memory_order_acquire) != 1) continue;
    out.counters.push_back(
        {prefix + s.name, s.value.load(std::memory_order_relaxed)});
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry reg;
  return reg;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) return c.get();
  }
  counters_.emplace_back(std::string(name), std::unique_ptr<Counter>(new Counter()));
  return counters_.back().second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [n, g] : gauges_) {
    if (n == name) return g.get();
  }
  gauges_.emplace_back(std::string(name), std::unique_ptr<Gauge>(new Gauge()));
  return gauges_.back().second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [n, l, h] : histograms_) {
    if (n == name && l == label) return h.get();
  }
  histograms_.emplace_back(std::string(name), std::string(label),
                           std::unique_ptr<Histogram>(new Histogram()));
  return std::get<2>(histograms_.back()).get();
}

MetricsRegistry::CollectorHandle MetricsRegistry::register_collector(CollectFn fn) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return CollectorHandle(this, id);
}

void MetricsRegistry::unregister_collector(std::uint64_t id) {
  std::lock_guard<std::mutex> lk(mu_);
  std::erase_if(collectors_, [id](const auto& p) { return p.first == id; });
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lk(mu_);
    snap.counters.reserve(counters_.size() + 16);
    for (const auto& [n, c] : counters_) snap.counters.push_back({n, c->value()});
    snap.gauges.reserve(gauges_.size() + 8);
    for (const auto& [n, g] : gauges_) snap.gauges.push_back({n, g->value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto& [n, l, h] : histograms_) {
      HistogramSample hs;
      hs.name = n;
      hs.label = l;
      h->read(hs.buckets.data(), hs.count, hs.sum_ns);
      snap.histograms.push_back(std::move(hs));
    }
    // Collectors run under mu_ so CollectorHandle::reset() can guarantee
    // the callback is not mid-flight after it returns.
    for (const auto& [id, fn] : collectors_) fn(snap);
  }

  // Merge duplicates (two subsystems exporting the same name sum into one
  // series — the multi-instance test case) and sort for stable output.
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  {
    std::vector<CounterSample> merged;
    for (auto& c : snap.counters) {
      if (!merged.empty() && merged.back().name == c.name) {
        merged.back().value += c.value;
      } else {
        merged.push_back(std::move(c));
      }
    }
    snap.counters = std::move(merged);
  }
  std::sort(snap.gauges.begin(), snap.gauges.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  {
    std::vector<GaugeSample> merged;
    for (auto& g : snap.gauges) {
      if (!merged.empty() && merged.back().name == g.name) {
        merged.back().value += g.value;
      } else {
        merged.push_back(std::move(g));
      }
    }
    snap.gauges = std::move(merged);
  }
  std::sort(snap.histograms.begin(), snap.histograms.end(), [](const auto& a, const auto& b) {
    return a.name != b.name ? a.name < b.name : a.label < b.label;
  });
  {
    std::vector<HistogramSample> merged;
    for (auto& h : snap.histograms) {
      if (!merged.empty() && merged.back().name == h.name && merged.back().label == h.label) {
        HistogramSample& m = merged.back();
        m.count += h.count;
        m.sum_ns += h.sum_ns;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) m.buckets[b] += h.buckets[b];
      } else {
        merged.push_back(std::move(h));
      }
    }
    snap.histograms = std::move(merged);
  }
  return snap;
}

MetricsRegistry::CollectorHandle::CollectorHandle(CollectorHandle&& other) noexcept
    : reg_(other.reg_), id_(other.id_) {
  other.reg_ = nullptr;
  other.id_ = 0;
}

MetricsRegistry::CollectorHandle& MetricsRegistry::CollectorHandle::operator=(
    CollectorHandle&& other) noexcept {
  if (this != &other) {
    reset();
    reg_ = other.reg_;
    id_ = other.id_;
    other.reg_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

MetricsRegistry::CollectorHandle::~CollectorHandle() { reset(); }

void MetricsRegistry::CollectorHandle::reset() {
  if (reg_ != nullptr) {
    reg_->unregister_collector(id_);
    reg_ = nullptr;
    id_ = 0;
  }
}

}  // namespace msrp::obs
