// Distributed BFS protocols in the CONGEST model.
//
// Flooding BFS: the root announces distance 0; every node adopts the
// smallest announced distance + 1 and re-announces once. Completes in
// eccentricity(root) + 1 rounds with at most one message per edge per
// direction — the textbook O(D)-round building block.
//
// The multi-source variant runs all sources simultaneously; payloads carry
// (source index, distance) so every node also learns its nearest source,
// exactly the information the paper's landmark preprocessing distributes.
#pragma once

#include <vector>

#include "congest/simulator.hpp"
#include "util/distance.hpp"

namespace msrp::congest {

struct BfsOutcome {
  std::vector<Dist> dist;
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;
};

struct MultiSourceBfsOutcome {
  std::vector<Dist> dist;              // to the nearest source
  std::vector<std::uint32_t> nearest;  // index into `sources`; -1 unreachable
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;
};

/// BFS from `root`; `failed` (if valid) models a failed link, i.e. BFS in
/// G - failed.
BfsOutcome distributed_bfs(const Graph& g, Vertex root, EdgeId failed = kNoEdge);

MultiSourceBfsOutcome distributed_multi_source_bfs(const Graph& g,
                                                   const std::vector<Vertex>& sources);

}  // namespace msrp::congest
