#include "congest/bfs.hpp"

#include <algorithm>
#include <bit>

namespace msrp::congest {

BfsOutcome distributed_bfs(const Graph& g, Vertex root, EdgeId failed) {
  MSRP_REQUIRE(root < g.num_vertices(), "root out of range");
  CongestSimulator sim(g);
  if (failed != kNoEdge) sim.fail_edge(failed);

  BfsOutcome out;
  out.dist.assign(g.num_vertices(), kInfDist);
  std::vector<bool> announced(g.num_vertices(), false);

  out.rounds = sim.run(
      [&](Vertex v, std::span<const Inbound> inbox, CongestSimulator::Outbox& ob) {
        // Adopt the best distance heard so far.
        for (const Inbound& msg : inbox) {
          const Dist d = static_cast<Dist>(msg.payload) + 1;
          if (d < out.dist[v]) out.dist[v] = d;
        }
        if (v == root) out.dist[v] = 0;
        // Announce once, the round after the distance settles (in BFS
        // flooding the first heard distance is already optimal).
        if (out.dist[v] != kInfDist && !announced[v]) {
          announced[v] = true;
          for (const Arc& a : g.neighbors(v)) ob.send(a, out.dist[v]);
        }
      },
      2 * g.num_vertices() + 2);
  out.messages = sim.total_messages();
  return out;
}

MultiSourceBfsOutcome distributed_multi_source_bfs(const Graph& g,
                                                   const std::vector<Vertex>& sources) {
  MSRP_REQUIRE(!sources.empty(), "need at least one source");
  CongestSimulator sim(g);
  const auto n = std::max<Vertex>(2, g.num_vertices());
  const auto logn = static_cast<std::uint32_t>(std::bit_width(std::uint32_t{n} - 1));

  MultiSourceBfsOutcome out;
  out.dist.assign(g.num_vertices(), kInfDist);
  out.nearest.assign(g.num_vertices(), static_cast<std::uint32_t>(-1));
  std::vector<bool> announced(g.num_vertices(), false);

  std::vector<std::int32_t> source_of(g.num_vertices(), -1);
  for (std::uint32_t i = 0; i < sources.size(); ++i) {
    MSRP_REQUIRE(sources[i] < g.num_vertices(), "source out of range");
    source_of[sources[i]] = static_cast<std::int32_t>(i);
  }

  // Payload layout: (distance << logn) | source index — 2 log n bits.
  const auto pack = [&](std::uint32_t si, Dist d) -> Payload {
    return (Payload{d} << logn) | si;
  };

  out.rounds = sim.run(
      [&](Vertex v, std::span<const Inbound> inbox, CongestSimulator::Outbox& ob) {
        for (const Inbound& msg : inbox) {
          const auto si = static_cast<std::uint32_t>(msg.payload & ((Payload{1} << logn) - 1));
          const Dist d = static_cast<Dist>(msg.payload >> logn) + 1;
          // Ties break toward the smaller source index for determinism.
          if (d < out.dist[v] || (d == out.dist[v] && si < out.nearest[v])) {
            out.dist[v] = d;
            out.nearest[v] = si;
          }
        }
        if (source_of[v] >= 0) {
          out.dist[v] = 0;
          out.nearest[v] = static_cast<std::uint32_t>(source_of[v]);
        }
        if (out.dist[v] != kInfDist && !announced[v]) {
          announced[v] = true;
          for (const Arc& a : g.neighbors(v)) ob.send(a, pack(out.nearest[v], out.dist[v]));
        }
      },
      2 * g.num_vertices() + 2);
  out.messages = sim.total_messages();
  return out;
}

}  // namespace msrp::congest
