// Round-synchronous CONGEST-model simulator.
//
// The paper appeared at PODC; its algorithm is centralized, but the natural
// distributed substrate (per DESIGN.md's substitution table) is the CONGEST
// model: n nodes, one O(log n)-bit message per edge per direction per
// round. This simulator executes protocols under those rules and meters
// rounds and messages, which grounds the EXP-7 benchmark (round complexity
// of distributed BFS / replacement-path recomputation vs diameter).
//
// Protocols are written as per-node handlers:
//
//   sim.run([&](Vertex v, std::span<const Inbound> inbox, Outbox& out) {
//     ... out.send(neighbor_arc, payload) ...
//   }, max_rounds);
//
// The simulator enforces the model:
//   * a payload must fit in message_bits() (throws otherwise);
//   * at most one message per incident edge per round per direction
//     (throws on the second send over the same arc);
//   * delivery happens at the start of the next round;
//   * execution stops after a round in which no node sent anything (global
//     termination detection is simulator-level omniscience, which is the
//     usual convention for counting rounds).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace msrp::congest {

using Payload = std::uint64_t;

struct Inbound {
  Vertex from;
  EdgeId edge;
  Payload payload;
};

class CongestSimulator {
 public:
  /// message_bits defaults to 2 ceil(log2 n) + 4: two vertex ids plus tag
  /// bits, the budget every protocol in this library fits in.
  explicit CongestSimulator(const Graph& g, std::uint32_t message_bits = 0);

  class Outbox {
   public:
    /// Queues a message over the incident edge `arc` of the current vertex.
    void send(const Arc& arc, Payload payload);

   private:
    friend class CongestSimulator;
    CongestSimulator* sim_ = nullptr;
    Vertex from_ = kNoVertex;
  };

  using Handler = std::function<void(Vertex, std::span<const Inbound>, Outbox&)>;

  /// Runs until a silent round or `max_rounds`. Returns rounds executed
  /// (the silent terminating round is not counted).
  std::uint32_t run(const Handler& handler, std::uint32_t max_rounds);

  std::uint32_t message_bits() const { return message_bits_; }
  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_rounds() const { return total_rounds_; }

  /// Removes an edge from the communication graph (models a link failure;
  /// nodes can no longer exchange messages over it).
  void fail_edge(EdgeId e);
  void restore_edges();

 private:
  void deliver(Vertex from, EdgeId edge, Vertex to, Payload payload);

  const Graph* g_;
  std::uint32_t message_bits_;
  Payload payload_limit_;
  std::vector<std::vector<Inbound>> inbox_, next_inbox_;
  std::vector<bool> edge_failed_;
  // (edge, direction-bit) sends this round, for the one-message rule.
  std::vector<std::uint8_t> sent_this_round_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_rounds_ = 0;
  bool any_sent_ = false;
};

}  // namespace msrp::congest
