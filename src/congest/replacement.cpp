#include "congest/replacement.hpp"

namespace msrp::congest {

ReplacementOutcome distributed_replacement_paths(const Graph& g, Vertex s, Vertex t) {
  MSRP_REQUIRE(s < g.num_vertices() && t < g.num_vertices(), "endpoint out of range");
  ReplacementOutcome out;

  // The canonical path itself comes from one distributed BFS; the simulator
  // is omniscient, so we read the parents off the centralized tree (the
  // distributed version would convergecast them in O(L) extra rounds).
  const BfsTree ts(g, s);
  if (!ts.reachable(t)) return out;
  out.path_edges = ts.path_edges(t);
  {
    const BfsOutcome base = distributed_bfs(g, s);
    out.total_rounds += base.rounds;
    out.total_messages += base.messages;
  }

  for (const EdgeId e : out.path_edges) {
    const BfsOutcome avoid = distributed_bfs(g, s, e);
    out.avoiding.push_back(avoid.dist[t]);
    out.total_rounds += avoid.rounds;
    out.total_messages += avoid.messages;
  }
  return out;
}

}  // namespace msrp::congest
