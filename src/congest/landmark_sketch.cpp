#include "congest/landmark_sketch.hpp"

#include <algorithm>
#include <bit>
#include <queue>

namespace msrp::congest {

LandmarkSketchOutcome distributed_landmark_sketch(const Graph& g,
                                                  const std::vector<Vertex>& landmarks) {
  MSRP_REQUIRE(!landmarks.empty(), "need at least one landmark");
  const Vertex n = g.num_vertices();
  const auto num_l = static_cast<std::uint32_t>(landmarks.size());

  CongestSimulator sim(g);
  const auto logn = static_cast<std::uint32_t>(
      std::bit_width(std::uint32_t{std::max<Vertex>(2, n)} - 1));
  MSRP_REQUIRE(num_l <= (1u << logn), "landmark index exceeds the message budget");

  LandmarkSketchOutcome out;
  out.dist.assign(static_cast<std::size_t>(num_l) * n, kInfDist);
  const auto cell = [&](std::uint32_t li, Vertex v) -> Dist& {
    return out.dist[static_cast<std::size_t>(li) * n + v];
  };

  // Per-node announcement queue: (distance, landmark index), smallest
  // distance first. Entries may be stale; staleness is checked on pop.
  using Item = std::pair<Dist, std::uint32_t>;
  std::vector<std::priority_queue<Item, std::vector<Item>, std::greater<>>> queue(n);
  // The value each landmark index had when last enqueued, to skip stale pops.
  for (std::uint32_t li = 0; li < num_l; ++li) {
    MSRP_REQUIRE(landmarks[li] < n, "landmark out of range");
    cell(li, landmarks[li]) = 0;
    queue[landmarks[li]].emplace(0, li);
  }

  const auto pack = [&](std::uint32_t li, Dist d) -> Payload {
    return (Payload{d} << logn) | li;
  };

  out.rounds = sim.run(
      [&](Vertex v, std::span<const Inbound> inbox, CongestSimulator::Outbox& ob) {
        for (const Inbound& msg : inbox) {
          const auto li = static_cast<std::uint32_t>(msg.payload & ((Payload{1} << logn) - 1));
          const Dist d = static_cast<Dist>(msg.payload >> logn) + 1;
          if (d < cell(li, v)) {
            cell(li, v) = d;
            queue[v].emplace(d, li);
          }
        }
        // Announce the best still-current queued entry (one broadcast per
        // round keeps every edge within its one-message budget).
        while (!queue[v].empty()) {
          const auto [d, li] = queue[v].top();
          if (d != cell(li, v)) {  // superseded by a later improvement
            queue[v].pop();
            continue;
          }
          queue[v].pop();
          for (const Arc& a : g.neighbors(v)) ob.send(a, pack(li, d));
          break;
        }
      },
      16 * (n + num_l) + 16);
  out.messages = sim.total_messages();
  return out;
}

}  // namespace msrp::congest
