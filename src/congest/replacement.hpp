// Distributed replacement-path computation in the CONGEST model.
//
// Given (s, t), the naive distributed strategy the paper's centralized
// algorithm should be compared against: for every edge on the st path, rerun
// a BFS flood in G - e. Round complexity Theta(L * D) for a length-L path —
// the EXP-7 benchmark shows how quickly this grows with the diameter, which
// is exactly the cost the replacement-path literature amortizes away.
//
// The returned rows match the centralized oracle exactly (tests enforce it).
#pragma once

#include <vector>

#include "congest/bfs.hpp"
#include "tree/bfs_tree.hpp"

namespace msrp::congest {

struct ReplacementOutcome {
  std::vector<EdgeId> path_edges;  // canonical st path edges, in order
  std::vector<Dist> avoiding;      // d(s, t, e) per path edge
  std::uint32_t total_rounds = 0;
  std::uint64_t total_messages = 0;
};

/// Computes d(s, t, e) for every edge on the canonical st path by repeated
/// distributed BFS in G - e.
ReplacementOutcome distributed_replacement_paths(const Graph& g, Vertex s, Vertex t);

}  // namespace msrp::congest
