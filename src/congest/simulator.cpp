#include "congest/simulator.hpp"

#include <algorithm>
#include <bit>

namespace msrp::congest {

CongestSimulator::CongestSimulator(const Graph& g, std::uint32_t message_bits) : g_(&g) {
  const auto n = std::max<Vertex>(2, g.num_vertices());
  const auto logn = static_cast<std::uint32_t>(std::bit_width(std::uint32_t{n} - 1));
  message_bits_ = message_bits == 0 ? 2 * logn + 4 : message_bits;
  MSRP_REQUIRE(message_bits_ <= 64, "payloads are stored in 64 bits");
  payload_limit_ = message_bits_ == 64 ? ~Payload{0} : (Payload{1} << message_bits_) - 1;
  inbox_.resize(g.num_vertices());
  next_inbox_.resize(g.num_vertices());
  edge_failed_.assign(g.num_edges(), false);
  sent_this_round_.assign(2 * static_cast<std::size_t>(g.num_edges()), 0);
}

void CongestSimulator::Outbox::send(const Arc& arc, Payload payload) {
  sim_->deliver(from_, arc.edge, arc.to, payload);
}

void CongestSimulator::deliver(Vertex from, EdgeId edge, Vertex to, Payload payload) {
  MSRP_REQUIRE(payload <= payload_limit_, "payload exceeds the CONGEST message budget");
  MSRP_REQUIRE(edge < g_->num_edges(), "unknown edge");
  if (edge_failed_[edge]) return;  // failed link: message silently lost
  const auto [u, v] = g_->endpoints(edge);
  MSRP_REQUIRE((from == u && to == v) || (from == v && to == u),
               "message must travel over an incident edge");
  const std::size_t slot = 2 * static_cast<std::size_t>(edge) + (from == u ? 0 : 1);
  MSRP_REQUIRE(!sent_this_round_[slot], "one message per edge per direction per round");
  sent_this_round_[slot] = 1;
  next_inbox_[to].push_back(Inbound{from, edge, payload});
  ++total_messages_;
  any_sent_ = true;
}

std::uint32_t CongestSimulator::run(const Handler& handler, std::uint32_t max_rounds) {
  std::uint32_t rounds = 0;
  for (; rounds < max_rounds; ++rounds) {
    any_sent_ = false;
    std::fill(sent_this_round_.begin(), sent_this_round_.end(), 0);
    Outbox out;
    out.sim_ = this;
    for (Vertex v = 0; v < g_->num_vertices(); ++v) {
      out.from_ = v;
      handler(v, std::span<const Inbound>(inbox_[v]), out);
    }
    for (Vertex v = 0; v < g_->num_vertices(); ++v) {
      inbox_[v] = std::move(next_inbox_[v]);
      next_inbox_[v].clear();
    }
    if (!any_sent_) break;
    ++total_rounds_;
  }
  return rounds;
}

void CongestSimulator::fail_edge(EdgeId e) {
  MSRP_REQUIRE(e < edge_failed_.size(), "edge out of range");
  edge_failed_[e] = true;
}

void CongestSimulator::restore_edges() {
  std::fill(edge_failed_.begin(), edge_failed_.end(), false);
}

}  // namespace msrp::congest
