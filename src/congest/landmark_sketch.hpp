// Distributed landmark distance sketch — the CONGEST analogue of the
// paper's preprocessing (Section 5: "for each landmark vertex r, find the
// shortest path from r to every other vertex").
//
// All |L| BFS floods run concurrently under the one-message-per-edge-per-
// round rule. Each node keeps, per landmark, the best distance heard, and
// an announcement queue ordered by distance (smallest first — the classic
// pipelining rule that keeps the schedule near O(|L| + D) rounds instead of
// O(|L| * D)). Payloads carry (landmark index, distance): 2 log n bits.
//
// A node may transiently announce a stale (longer) distance if floods
// interleave badly; improvements re-enqueue, and since values only
// decrease, the protocol quiesces with exact distances.
#pragma once

#include <vector>

#include "congest/simulator.hpp"
#include "util/distance.hpp"

namespace msrp::congest {

struct LandmarkSketchOutcome {
  // dist[li * n + v] = d(landmarks[li], v).
  std::vector<Dist> dist;
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;

  Dist at(std::uint32_t li, Vertex v, Vertex n) const {
    return dist[static_cast<std::size_t>(li) * n + v];
  }
};

/// Runs the concurrent pipelined floods. Landmark count must fit the
/// message budget (< n).
LandmarkSketchOutcome distributed_landmark_sketch(const Graph& g,
                                                  const std::vector<Vertex>& landmarks);

}  // namespace msrp::congest
