#include "tree/ancestry.hpp"

namespace msrp {

AncestorIndex::AncestorIndex(const BfsTree& tree) {
  const Vertex n = tree.num_vertices();
  tin_.assign(n, kNoStamp);
  tout_.assign(n, kNoStamp);

  std::vector<std::vector<Vertex>> children(n);
  for (const Vertex v : tree.order()) {
    if (tree.parent(v) != kNoVertex) children[tree.parent(v)].push_back(v);
  }

  struct Frame {
    Vertex v;
    std::size_t next_child;
  };
  std::uint32_t stamp = 0;
  std::vector<Frame> stack{{tree.root(), 0}};
  tin_[tree.root()] = stamp++;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child < children[f.v].size()) {
      const Vertex c = children[f.v][f.next_child++];
      tin_[c] = stamp++;
      stack.push_back({c, 0});
    } else {
      tout_[f.v] = stamp++;
      stack.pop_back();
    }
  }
}

}  // namespace msrp
