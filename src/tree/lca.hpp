// Least-common-ancestor structure over a BfsTree (Lemma 6 of the paper,
// after Bender & Farach-Colton, LATIN 2000).
//
// Euler tour + sparse-table RMQ: O(n log n) build, O(1) lca(). The structure
// also exposes the two O(1) predicates the MSRP pipeline issues millions of
// times:
//   * is_ancestor(a, v)      — a on the canonical root->v path?
//   * edge_on_path(child, t) — tree edge with deeper endpoint `child` on the
//                              canonical root->t path? (== is_ancestor)
//
// Works on BFS forests: vertices unreachable from the root get no Euler
// interval; queries involving them return kNoVertex / false.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/bfs_tree.hpp"

namespace msrp {

class Lca {
 public:
  explicit Lca(const BfsTree& tree);

  /// LCA of x and y; kNoVertex if either is unreachable from the root.
  Vertex lca(Vertex x, Vertex y) const;

  /// True iff a lies on the canonical root->v path (a == v counts).
  bool is_ancestor(Vertex a, Vertex v) const {
    if (tin_[a] == kNoStamp || tin_[v] == kNoStamp) return false;
    return tin_[a] <= tin_[v] && tout_[v] <= tout_[a];
  }

  /// For a tree edge whose deeper endpoint is `child`: is it on root->t?
  bool edge_on_path(Vertex child, Vertex t) const { return is_ancestor(child, t); }

  /// Tree distance between x and y (through their LCA); kInfDist if they
  /// are in different components of the BFS forest.
  Dist tree_distance(Vertex x, Vertex y) const;

 private:
  static constexpr std::uint32_t kNoStamp = static_cast<std::uint32_t>(-1);

  std::uint32_t depth_at(std::uint32_t euler_pos) const { return euler_depth_[euler_pos]; }

  /// Index (into the Euler arrays) of the minimum depth in [l, r].
  std::uint32_t rmq(std::uint32_t l, std::uint32_t r) const;

  const BfsTree* tree_;
  std::vector<std::uint32_t> tin_, tout_;       // Euler-interval stamps
  std::vector<std::uint32_t> first_occ_;        // first Euler occurrence
  std::vector<Vertex> euler_vertex_;
  std::vector<std::uint32_t> euler_depth_;
  std::vector<std::vector<std::uint32_t>> sparse_;  // sparse_[j][i] = argmin over [i, i+2^j)
  std::vector<std::uint32_t> log2_;
};

}  // namespace msrp
