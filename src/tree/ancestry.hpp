// Lightweight O(1) ancestor test over a BfsTree.
//
// The MSRP pipeline issues huge numbers of "is edge e on the canonical
// root->v path?" queries against the trees of every landmark and center
// (Algorithms 3/4, the auxiliary-graph edge guards of Sections 7.1, 8.1,
// 8.2.2, 8.3). All of them reduce to subtree membership, which DFS entry/exit
// stamps answer in O(1) with 8 bytes per vertex — an order of magnitude
// lighter than the full Euler/RMQ Lca, which matters because we keep
// O~(sqrt(n*sigma)) of these structures alive at once.
#pragma once

#include <vector>

#include "tree/bfs_tree.hpp"

namespace msrp {

class AncestorIndex {
 public:
  explicit AncestorIndex(const BfsTree& tree);

  /// True iff a lies on the canonical root->v path (a == v counts).
  /// False if either vertex is unreachable from the root.
  bool is_ancestor(Vertex a, Vertex v) const {
    if (tin_[a] == kNoStamp || tin_[v] == kNoStamp) return false;
    return tin_[a] <= tin_[v] && tout_[v] <= tout_[a];
  }

  /// For a tree edge whose deeper endpoint is `child`: true iff the edge lies
  /// on the canonical root->t path.
  bool edge_on_path(Vertex child, Vertex t) const { return is_ancestor(child, t); }

  /// Raw DFS stamps, for callers that hoist one side of is_ancestor out of
  /// a hot loop (assembly caches each landmark's stamps once per source).
  /// kNoStamp marks unreachable vertices; the root's tin is 0.
  std::uint32_t tin(Vertex v) const { return tin_[v]; }
  std::uint32_t tout(Vertex v) const { return tout_[v]; }

  static constexpr std::uint32_t kNoStamp = static_cast<std::uint32_t>(-1);

 private:
  std::vector<std::uint32_t> tin_, tout_;
};

/// A BFS tree bundled with its ancestor index: the per-root unit the engine
/// keeps for every source, landmark, and center.
struct RootedTree {
  explicit RootedTree(const Graph& g, Vertex root) : tree(g, root), anc(tree) {}

  BfsTree tree;
  AncestorIndex anc;

  Vertex root() const { return tree.root(); }
  Dist dist(Vertex v) const { return tree.dist(v); }

  /// True iff edge e (endpoints u, v) lies on the canonical root->t path.
  /// O(1): e must be a tree edge and its deeper endpoint an ancestor of t.
  bool edge_on_path_to(EdgeId e, Vertex u, Vertex v, Vertex t) const {
    if (tree.parent_edge(u) == e) return anc.is_ancestor(u, t);
    if (tree.parent_edge(v) == e) return anc.is_ancestor(v, t);
    return false;
  }
};

}  // namespace msrp
