#include "tree/bfs_tree.hpp"

#include <algorithm>

namespace msrp {

BfsTree::BfsTree(const Graph& g, Vertex root, EdgeId skip_edge) {
  rebuild(g, root, skip_edge);
}

void BfsTree::rebuild(const Graph& g, Vertex root, EdgeId skip_edge) {
  const Vertex n = g.num_vertices();
  MSRP_REQUIRE(root < n, "BFS root out of range");
  root_ = root;
  if (dist_.size() != n) {
    // First build (or a different graph size): full initialization.
    dist_.assign(n, kInfDist);
    parent_.assign(n, kNoVertex);
    parent_edge_.assign(n, kNoEdge);
    order_.reserve(n);
  } else {
    // Same-size rebuild: the previous order_ lists exactly the vertices with
    // non-default entries, so resetting those is O(touched), not O(n).
    for (const Vertex v : order_) {
      dist_[v] = kInfDist;
      parent_[v] = kNoVertex;
      parent_edge_[v] = kNoEdge;
    }
  }
  order_.clear();

  dist_[root] = 0;
  order_.push_back(root);
  // order_ doubles as the BFS queue: vertices are appended exactly once.
  for (std::size_t head = 0; head < order_.size(); ++head) {
    const Vertex u = order_[head];
    for (const Arc& a : g.neighbors(u)) {
      if (a.edge == skip_edge) continue;
      if (dist_[a.to] == kInfDist) {
        dist_[a.to] = dist_[u] + 1;
        parent_[a.to] = u;
        parent_edge_[a.to] = a.edge;
        order_.push_back(a.to);
      }
    }
  }
}

std::vector<Vertex> BfsTree::path_to(Vertex t) const {
  MSRP_REQUIRE(t < num_vertices(), "vertex out of range");
  if (!reachable(t)) return {};
  std::vector<Vertex> path;
  path.reserve(dist_[t] + 1);
  for (Vertex v = t; v != kNoVertex; v = parent_[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<EdgeId> BfsTree::path_edges(Vertex t) const {
  MSRP_REQUIRE(t < num_vertices(), "vertex out of range");
  if (!reachable(t)) return {};
  std::vector<EdgeId> edges;
  edges.reserve(dist_[t]);
  for (Vertex v = t; parent_[v] != kNoVertex; v = parent_[v]) {
    edges.push_back(parent_edge_[v]);
  }
  std::reverse(edges.begin(), edges.end());
  return edges;
}

bool BfsTree::is_tree_edge(const Graph& g, EdgeId e) const {
  return tree_edge_child(g, e).has_value();
}

std::optional<Vertex> BfsTree::tree_edge_child(const Graph& g, EdgeId e) const {
  MSRP_REQUIRE(e < g.num_edges(), "edge out of range");
  const auto [u, v] = g.endpoints(e);
  if (parent_edge_[u] == e) return u;
  if (parent_edge_[v] == e) return v;
  return std::nullopt;
}

}  // namespace msrp
