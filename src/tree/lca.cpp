#include "tree/lca.hpp"

#include <algorithm>

namespace msrp {

Lca::Lca(const BfsTree& tree) : tree_(&tree) {
  const Vertex n = tree.num_vertices();
  tin_.assign(n, kNoStamp);
  tout_.assign(n, kNoStamp);
  first_occ_.assign(n, kNoStamp);

  // Children lists from parent pointers, in BFS order so the tour is
  // deterministic.
  std::vector<std::vector<Vertex>> children(n);
  for (const Vertex v : tree.order()) {
    if (tree.parent(v) != kNoVertex) children[tree.parent(v)].push_back(v);
  }

  euler_vertex_.reserve(2 * n);
  euler_depth_.reserve(2 * n);

  // Iterative Euler tour of the root's component.
  struct Frame {
    Vertex v;
    std::uint32_t depth;
    std::size_t next_child;
  };
  std::uint32_t stamp = 0;
  std::vector<Frame> stack{{tree.root(), 0, 0}};
  tin_[tree.root()] = stamp++;
  first_occ_[tree.root()] = 0;
  euler_vertex_.push_back(tree.root());
  euler_depth_.push_back(0);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child < children[f.v].size()) {
      const Vertex c = children[f.v][f.next_child++];
      tin_[c] = stamp++;
      first_occ_[c] = static_cast<std::uint32_t>(euler_vertex_.size());
      euler_vertex_.push_back(c);
      euler_depth_.push_back(f.depth + 1);
      stack.push_back({c, f.depth + 1, 0});
    } else {
      tout_[f.v] = stamp++;
      stack.pop_back();
      if (!stack.empty()) {
        // Returning to the parent: record another occurrence.
        const Frame& p = stack.back();
        euler_vertex_.push_back(p.v);
        euler_depth_.push_back(p.depth);
      }
    }
  }

  // Sparse table over euler_depth_.
  const auto len = static_cast<std::uint32_t>(euler_depth_.size());
  log2_.assign(len + 1, 0);
  for (std::uint32_t i = 2; i <= len; ++i) log2_[i] = log2_[i / 2] + 1;
  const std::uint32_t levels = log2_[len] + 1;
  sparse_.assign(levels, std::vector<std::uint32_t>(len));
  for (std::uint32_t i = 0; i < len; ++i) sparse_[0][i] = i;
  for (std::uint32_t j = 1; j < levels; ++j) {
    const std::uint32_t half = 1u << (j - 1);
    for (std::uint32_t i = 0; i + (1u << j) <= len; ++i) {
      const std::uint32_t a = sparse_[j - 1][i];
      const std::uint32_t b = sparse_[j - 1][i + half];
      sparse_[j][i] = euler_depth_[a] <= euler_depth_[b] ? a : b;
    }
  }
}

std::uint32_t Lca::rmq(std::uint32_t l, std::uint32_t r) const {
  MSRP_DCHECK(l <= r && r < euler_depth_.size(), "rmq range invalid");
  const std::uint32_t j = log2_[r - l + 1];
  const std::uint32_t a = sparse_[j][l];
  const std::uint32_t b = sparse_[j][r - (1u << j) + 1];
  return euler_depth_[a] <= euler_depth_[b] ? a : b;
}

Vertex Lca::lca(Vertex x, Vertex y) const {
  MSRP_REQUIRE(x < tin_.size() && y < tin_.size(), "vertex out of range");
  if (first_occ_[x] == kNoStamp || first_occ_[y] == kNoStamp) return kNoVertex;
  std::uint32_t l = first_occ_[x], r = first_occ_[y];
  if (l > r) std::swap(l, r);
  return euler_vertex_[rmq(l, r)];
}

Dist Lca::tree_distance(Vertex x, Vertex y) const {
  const Vertex a = lca(x, y);
  if (a == kNoVertex) return kInfDist;
  return tree_->dist(x) + tree_->dist(y) - 2 * tree_->dist(a);
}

}  // namespace msrp
