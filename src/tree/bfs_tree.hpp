// Canonical BFS shortest-path tree.
//
// The paper fixes a shortest-path tree T_s per source (Section 4) and defines
// every replacement-path instance relative to *that* tree's st paths. We make
// the tree canonical by scanning CSR adjacency (sorted by neighbour id) in
// order and assigning the first-discovered parent, so every component of the
// system — the MSRP pipeline, the MMG single-pair algorithm, the brute-force
// oracle — agrees on which edges lie on the st path.
//
// The tree also answers, in O(1) after an LCA build (see lca.hpp):
//   * dist(v), parent(v), parent_edge(v)
//   * "is edge e on the canonical s->t path?"   (tree-edge + ancestry test)
//   * position of an on-path edge (distance of its far endpoint from s)
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "util/distance.hpp"

namespace msrp {

class BfsTree {
 public:
  /// Runs BFS from `root` over `g`. If `skip_edge` is given that edge is
  /// treated as deleted (used by the brute-force replacement oracle).
  BfsTree(const Graph& g, Vertex root, EdgeId skip_edge = kNoEdge);

  /// Empty tree; rebuild() before use.
  BfsTree() = default;

  /// Re-runs BFS in place, reusing the vectors' capacity. Only the vertices
  /// the *previous* run discovered are re-initialized (they are exactly the
  /// entries of order()), so a rebuild on the same graph costs O(touched)
  /// setup instead of four fresh n-sized allocations — the skip-edge loops
  /// of the brute-force oracle and the FT-subgraph builder rebuild m times
  /// per source.
  void rebuild(const Graph& g, Vertex root, EdgeId skip_edge = kNoEdge);

  Vertex root() const { return root_; }
  Vertex num_vertices() const { return static_cast<Vertex>(dist_.size()); }

  Dist dist(Vertex v) const { return dist_[v]; }
  const std::vector<Dist>& dists() const { return dist_; }

  bool reachable(Vertex v) const { return dist_[v] != kInfDist; }

  /// Parent in the tree; kNoVertex for the root and unreachable vertices.
  Vertex parent(Vertex v) const { return parent_[v]; }

  /// Edge id to the parent; kNoEdge for the root and unreachable vertices.
  EdgeId parent_edge(Vertex v) const { return parent_edge_[v]; }

  /// Vertices in BFS discovery order (root first); unreachable ones absent.
  const std::vector<Vertex>& order() const { return order_; }

  /// The canonical root->t path as a vertex sequence (root first, t last).
  /// Empty if t is unreachable.
  std::vector<Vertex> path_to(Vertex t) const;

  /// Edge ids along the canonical root->t path, in order from the root.
  /// path_edges(t)[i] joins path_to(t)[i] and path_to(t)[i+1].
  std::vector<EdgeId> path_edges(Vertex t) const;

  /// True iff e is a tree edge (parent edge of its deeper endpoint).
  bool is_tree_edge(const Graph& g, EdgeId e) const;

  /// For a tree edge e = (u, v) with dist(u) + 1 == dist(v), returns the
  /// child (deeper) endpoint v; nullopt if e is not a tree edge.
  std::optional<Vertex> tree_edge_child(const Graph& g, EdgeId e) const;

 private:
  Vertex root_ = kNoVertex;
  std::vector<Dist> dist_;
  std::vector<Vertex> parent_;
  std::vector<EdgeId> parent_edge_;
  std::vector<Vertex> order_;
};

}  // namespace msrp
