#include "rp/vitality.hpp"

#include <algorithm>

namespace msrp {

std::vector<VitalEdge> most_vital_edges(const Graph& g, Vertex s, Vertex t,
                                        std::uint32_t k) {
  const BfsTree ts(g, s);
  const SinglePairRp rp = replacement_paths(g, ts, t);
  const Dist base = ts.dist(t);

  std::vector<VitalEdge> out;
  out.reserve(rp.edges.size());
  for (std::uint32_t i = 0; i < rp.edges.size(); ++i) {
    const Dist repl = rp.avoiding[i];
    out.push_back(VitalEdge{rp.edges[i], i, repl,
                            repl == kInfDist ? kInfDist : repl - base});
  }
  std::sort(out.begin(), out.end(), [](const VitalEdge& a, const VitalEdge& b) {
    if (a.vitality != b.vitality) return a.vitality > b.vitality;
    return a.position < b.position;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace msrp
