// Single-pair replacement paths in O((m + n) log n) — the classical
// algorithm of Malik–Mittal–Gupta (OR Letters 1989) / Hershberger–Suri
// (FOCS 2001) that the paper invokes as a black box ([21, 20, 22]) to find
// all replacement paths from a source to each landmark vertex.
//
// Given undirected unweighted G and the canonical shortest path
// P = p_0 .. p_L (s = p_0, t = p_L), it returns |st <> e_i| for every path
// edge e_i = (p_i, p_{i+1}).
//
// Method. Build BFS trees T_s and T_t whose tree paths contain P (our
// canonical BfsTree already guarantees a consistent choice; we additionally
// re-root parents along P — see .cpp). For a vertex v let f(v) = the largest
// index i such that p_i is an ancestor of v in T_s (ancestors of v on P form
// a prefix p_0..p_f(v)), and g(v) = the smallest index j such that p_j is an
// ancestor of v in T_t. Deleting e_i splits T_s into the component of s
// (= vertices with f(v) <= i) and the rest. Any replacement path for e_i
// must use a non-tree "crossing" edge (u, w); MMG show
//
//   |st <> e_i| = min over edges (u,w), f(u) <= i < g(w)
//                 of  d_s(u) + 1 + d_t(w)        (and symmetrically (w,u)).
//
// So each edge contributes a candidate value on an index interval
// [f(u), g(w) - 1]; the answer per index is an interval-minimum stabbing
// query. Solved offline in O(n + m + V) (V = the largest candidate value,
// itself < 2n): counting-sort the candidates by value, then paint each
// interval onto the still-unanswered positions with a union-find
// next-unpainted pointer — every position is painted exactly once, by the
// smallest value covering it. No heap, no comparison sort, and with a
// caller-provided scratch no allocations either.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "tree/bfs_tree.hpp"
#include "util/distance.hpp"

namespace msrp {

struct SinglePairRp {
  std::vector<Vertex> path;    // canonical s..t path (empty if unreachable)
  std::vector<EdgeId> edges;   // path edges, edges[i] = (path[i], path[i+1])
  std::vector<Dist> avoiding;  // avoiding[i] = |st <> edges[i]|
};

/// Reusable buffers for repeated replacement_paths calls (the MSRP engine
/// runs one per (source, landmark) pair). Opaque to callers; a default-
/// constructed instance works for any graph size and grows as needed.
struct SinglePairScratch {
  struct Candidate {
    std::uint32_t start, end;  // inclusive index interval
    Dist value;
  };
  std::vector<std::uint32_t> f;      // divergence index per vertex
  std::vector<Candidate> cand;       // crossing-edge candidates
  std::vector<std::uint32_t> histo;  // counting-sort histogram by value
  std::vector<std::uint32_t> order;  // candidate indices sorted by value
  std::vector<std::uint32_t> next;   // union-find next-unpainted pointers
};

/// Computes all replacement paths for the canonical s->t path.
/// `ts` must be the BfsTree of s over g (callers usually have it already).
SinglePairRp replacement_paths(const Graph& g, const BfsTree& ts, Vertex t);

/// As above, reusing a precomputed BFS tree of t (skips the internal BFS —
/// the MSRP engine already holds one tree per landmark).
SinglePairRp replacement_paths(const Graph& g, const BfsTree& ts, const BfsTree& tt);

/// As above, running all temporary work inside `scratch` (allocation-free
/// in the steady state apart from the returned vectors).
SinglePairRp replacement_paths(const Graph& g, const BfsTree& ts, const BfsTree& tt,
                               SinglePairScratch& scratch);

/// Convenience overload building the BFS tree internally.
SinglePairRp replacement_paths(const Graph& g, Vertex s, Vertex t);

}  // namespace msrp
