#include "rp/oracle.hpp"

namespace msrp {

RpOracle::RpOracle(const Graph& g, Vertex s) : s_(s), ts_(g, s) {
  // One scratch tree rebuilt per tree edge: rebuild() reuses capacity and
  // re-initializes only the vertices the previous BFS touched.
  BfsTree scratch;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!ts_.is_tree_edge(g, e)) continue;
    edge_slot_.put(e, static_cast<std::uint32_t>(dist_avoiding_.size()));
    scratch.rebuild(g, s, e);
    dist_avoiding_.push_back(scratch.dists());
  }
}

Dist RpOracle::distance_avoiding(Vertex v, EdgeId e) const {
  MSRP_REQUIRE(v < ts_.num_vertices(), "vertex out of range");
  const std::uint32_t* slot = edge_slot_.find(e);
  if (slot == nullptr) return ts_.dist(v);  // non-tree edge: paths unaffected
  return dist_avoiding_[*slot][v];
}

std::vector<Dist> RpOracle::replacement_row(Vertex t) const {
  std::vector<Dist> row;
  for (const EdgeId e : ts_.path_edges(t)) row.push_back(distance_avoiding(t, e));
  return row;
}

}  // namespace msrp
