// Brute-force replacement-path oracle: ground truth for tests and benches.
//
// For a source s, the canonical shortest-path tree T_s determines the st
// path for every t. An edge e can lie on some canonical path only if it is
// a tree edge of T_s, so the oracle runs one BFS in G - e per tree edge:
// O(n * (m + n)) per source. Exact and deterministic.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "tree/bfs_tree.hpp"
#include "util/cuckoo_hash.hpp"
#include "util/distance.hpp"

namespace msrp {

class RpOracle {
 public:
  /// Precomputes d(s, v, e) for every tree edge e of T_s and every v.
  RpOracle(const Graph& g, Vertex s);

  Vertex source() const { return s_; }
  const BfsTree& tree() const { return ts_; }

  /// Shortest s->v distance in G - e. `e` may be any edge id; for non-tree
  /// edges the canonical distances are unchanged, so dist(v) is returned.
  Dist distance_avoiding(Vertex v, EdgeId e) const;

  /// |st <> e_i| for every edge e_i on the canonical s->t path, in order.
  std::vector<Dist> replacement_row(Vertex t) const;

 private:
  Vertex s_;
  BfsTree ts_;
  // tree edge id -> index into dist_avoiding_
  CuckooHash<std::uint32_t> edge_slot_;
  std::vector<std::vector<Dist>> dist_avoiding_;
};

}  // namespace msrp
