// Most vital edges (Malik–Mittal–Gupta's original problem, the paper's
// reference [21]): rank the edges of the canonical s->t shortest path by the
// damage their failure causes, vitality(e) = d(s, t, e) - d(s, t).
//
// Bridges have infinite vitality. One O((m + n) log n) replacement-path run
// answers all ranks.
#pragma once

#include <vector>

#include "rp/single_pair.hpp"

namespace msrp {

struct VitalEdge {
  EdgeId edge;
  std::uint32_t position;  // index on the canonical path
  Dist replacement;        // d(s, t, e); kInfDist for bridges
  Dist vitality;           // replacement - d(s, t); kInfDist for bridges
};

/// The k most vital edges of the canonical s->t path (all of them if
/// k >= path length), sorted by decreasing vitality; ties broken by path
/// position (earlier first) for determinism.
std::vector<VitalEdge> most_vital_edges(const Graph& g, Vertex s, Vertex t,
                                        std::uint32_t k);

}  // namespace msrp
