#include "rp/single_pair.hpp"

#include <algorithm>

namespace msrp {
namespace {

// f(v): index of the deepest ancestor of v (in T_s) that lies on the
// canonical s->t path, where path vertices p_j have f = j. Because the path
// is a tree path from the root, the on-path ancestors of any vertex form a
// prefix p_0..p_{f(v)}; deleting path edge e_i = (p_i, p_{i+1}) leaves v in
// the source component iff f(v) <= i.
void divergence_index(const BfsTree& ts, const std::vector<Vertex>& path,
                      std::vector<std::uint32_t>& f) {
  const Vertex n = ts.num_vertices();
  constexpr auto kUnset = static_cast<std::uint32_t>(-1);
  f.assign(n, kUnset);
  for (std::uint32_t j = 0; j < path.size(); ++j) f[path[j]] = j;
  // BFS discovery order guarantees parents are resolved before children.
  for (const Vertex v : ts.order()) {
    if (f[v] != kUnset) continue;  // on-path vertex (or root)
    const Vertex p = ts.parent(v);
    f[v] = (p == kNoVertex) ? 0 : f[p];
  }
}

}  // namespace

SinglePairRp replacement_paths(const Graph& g, const BfsTree& ts, Vertex t) {
  MSRP_REQUIRE(t < g.num_vertices(), "target out of range");
  const BfsTree tt(g, t);
  return replacement_paths(g, ts, tt);
}

SinglePairRp replacement_paths(const Graph& g, const BfsTree& ts, const BfsTree& tt) {
  SinglePairScratch scratch;
  return replacement_paths(g, ts, tt, scratch);
}

SinglePairRp replacement_paths(const Graph& g, const BfsTree& ts, const BfsTree& tt,
                               SinglePairScratch& s) {
  MSRP_REQUIRE(ts.num_vertices() == g.num_vertices(), "tree does not match graph");
  MSRP_REQUIRE(tt.num_vertices() == g.num_vertices(), "target tree does not match graph");
  const Vertex t = tt.root();

  SinglePairRp out;
  out.path = ts.path_to(t);
  if (out.path.size() <= 1) return out;  // unreachable or s == t: no path edges
  out.edges = ts.path_edges(t);
  const auto num_fail = static_cast<std::uint32_t>(out.edges.size());
  out.avoiding.assign(num_fail, kInfDist);

  divergence_index(ts, out.path, s.f);
  const auto& f = s.f;

  // Each edge (x, y) with fmin = min(f(x), f(y)) < fmax = max(f(x), f(y))
  // crosses the cut of every failed index i in [fmin, fmax - 1] and offers
  // the candidate d_s(outside endpoint) + 1 + d_t(inside endpoint). The MMG
  // theorem (see header) says the minimum candidate per index is exact.
  auto& cand = s.cand;
  cand.clear();
  Dist max_value = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [x, y] = g.endpoints(e);
    if (!ts.reachable(x) || !ts.reachable(y)) continue;
    std::uint32_t fx = f[x], fy = f[y];
    Vertex u = x, w = y;  // u outside (smaller f), w inside (larger f)
    if (fx > fy) {
      std::swap(fx, fy);
      std::swap(u, w);
    }
    if (fx == fy) continue;  // never crosses any cut (includes non-path tree edges)
    // Path edge e_j has interval [j, j] and is exactly the failed edge: skip.
    if (fy == fx + 1 && u == out.path[fx] && w == out.path[fy]) continue;
    const Dist value = sat_add(ts.dist(u), sat_add(1, tt.dist(w)));
    if (value == kInfDist) continue;
    cand.push_back({fx, fy - 1, value});
    max_value = std::max(max_value, value);
  }

  // Counting-sort the candidates by value (values are path lengths < 2n),
  // then paint intervals in ascending value order onto the still-unanswered
  // indices: next[i] is the union-find "next unpainted index >= i" pointer,
  // so every index is written exactly once — by its minimum covering value.
  s.histo.assign(static_cast<std::size_t>(max_value) + 2, 0);
  for (const auto& c : cand) ++s.histo[c.value + 1];
  for (std::size_t v = 1; v < s.histo.size(); ++v) s.histo[v] += s.histo[v - 1];
  s.order.resize(cand.size());
  for (std::uint32_t i = 0; i < cand.size(); ++i) s.order[s.histo[cand[i].value]++] = i;

  s.next.resize(num_fail + 1);
  for (std::uint32_t i = 0; i <= num_fail; ++i) s.next[i] = i;
  auto find = [&](std::uint32_t i) {
    std::uint32_t root = i;
    while (s.next[root] != root) root = s.next[root];
    while (s.next[i] != root) {  // path compression
      const std::uint32_t up = s.next[i];
      s.next[i] = root;
      i = up;
    }
    return root;
  };
  for (const std::uint32_t ci : s.order) {
    const auto& c = cand[ci];
    for (std::uint32_t i = find(c.start); i <= c.end; i = find(i + 1)) {
      out.avoiding[i] = c.value;
      s.next[i] = i + 1;
    }
  }
  return out;
}

SinglePairRp replacement_paths(const Graph& g, Vertex s, Vertex t) {
  const BfsTree ts(g, s);
  return replacement_paths(g, ts, t);
}

}  // namespace msrp
