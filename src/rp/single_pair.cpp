#include "rp/single_pair.hpp"

#include <algorithm>
#include <queue>

namespace msrp {
namespace {

// f(v): index of the deepest ancestor of v (in T_s) that lies on the
// canonical s->t path, where path vertices p_j have f = j. Because the path
// is a tree path from the root, the on-path ancestors of any vertex form a
// prefix p_0..p_{f(v)}; deleting path edge e_i = (p_i, p_{i+1}) leaves v in
// the source component iff f(v) <= i.
std::vector<std::uint32_t> divergence_index(const BfsTree& ts,
                                            const std::vector<Vertex>& path) {
  const Vertex n = ts.num_vertices();
  constexpr auto kUnset = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> f(n, kUnset);
  for (std::uint32_t j = 0; j < path.size(); ++j) f[path[j]] = j;
  // BFS discovery order guarantees parents are resolved before children.
  for (const Vertex v : ts.order()) {
    if (f[v] != kUnset) continue;  // on-path vertex (or root)
    const Vertex p = ts.parent(v);
    f[v] = (p == kNoVertex) ? 0 : f[p];
  }
  return f;
}

}  // namespace

SinglePairRp replacement_paths(const Graph& g, const BfsTree& ts, Vertex t) {
  MSRP_REQUIRE(t < g.num_vertices(), "target out of range");
  const BfsTree tt(g, t);
  return replacement_paths(g, ts, tt);
}

SinglePairRp replacement_paths(const Graph& g, const BfsTree& ts, const BfsTree& tt) {
  MSRP_REQUIRE(ts.num_vertices() == g.num_vertices(), "tree does not match graph");
  MSRP_REQUIRE(tt.num_vertices() == g.num_vertices(), "target tree does not match graph");
  const Vertex t = tt.root();

  SinglePairRp out;
  out.path = ts.path_to(t);
  if (out.path.size() <= 1) return out;  // unreachable or s == t: no path edges
  out.edges = ts.path_edges(t);
  const auto num_fail = static_cast<std::uint32_t>(out.edges.size());
  out.avoiding.assign(num_fail, kInfDist);

  const auto f = divergence_index(ts, out.path);

  // Each edge (x, y) with fmin = min(f(x), f(y)) < fmax = max(f(x), f(y))
  // crosses the cut of every failed index i in [fmin, fmax - 1] and offers
  // the candidate d_s(outside endpoint) + 1 + d_t(inside endpoint). The MMG
  // theorem (see header) says the minimum candidate per index is exact.
  struct Candidate {
    std::uint32_t start, end;  // inclusive index interval
    Dist value;
  };
  std::vector<Candidate> cand;
  cand.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [x, y] = g.endpoints(e);
    if (!ts.reachable(x) || !ts.reachable(y)) continue;
    std::uint32_t fx = f[x], fy = f[y];
    Vertex u = x, w = y;  // u outside (smaller f), w inside (larger f)
    if (fx > fy) {
      std::swap(fx, fy);
      std::swap(u, w);
    }
    if (fx == fy) continue;  // never crosses any cut (includes non-path tree edges)
    // Path edge e_j has interval [j, j] and is exactly the failed edge: skip.
    if (fy == fx + 1 && u == out.path[fx] && w == out.path[fy]) continue;
    const Dist value = sat_add(ts.dist(u), sat_add(1, tt.dist(w)));
    if (value == kInfDist) continue;
    cand.push_back(Candidate{fx, fy - 1, value});
  }

  // Sweep failed indices left to right with a lazy min-heap of live
  // candidates: push at interval start, drop at the top when expired.
  std::sort(cand.begin(), cand.end(),
            [](const Candidate& a, const Candidate& b) { return a.start < b.start; });
  struct HeapItem {
    Dist value;
    std::uint32_t end;
    bool operator>(const HeapItem& o) const { return value > o.value; }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  std::size_t next = 0;
  for (std::uint32_t i = 0; i < num_fail; ++i) {
    while (next < cand.size() && cand[next].start == i) {
      heap.push(HeapItem{cand[next].value, cand[next].end});
      ++next;
    }
    while (!heap.empty() && heap.top().end < i) heap.pop();
    if (!heap.empty()) out.avoiding[i] = heap.top().value;
  }
  return out;
}

SinglePairRp replacement_paths(const Graph& g, Vertex s, Vertex t) {
  const BfsTree ts(g, s);
  return replacement_paths(g, ts, t);
}

}  // namespace msrp
