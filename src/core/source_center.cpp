#include "core/source_center.hpp"

#include <algorithm>

#include "core/scratch.hpp"
#include "spath/dijkstra.hpp"

namespace msrp {

SourceCenterTable::SourceCenterTable(const BkContext& ctx)
    : ctx_(&ctx), per_source_(ctx.source_trees.size()) {}

void SourceCenterTable::build_source(std::uint32_t si, BuildScratch& s) {
  const BkContext& ctx = *ctx_;
  const Graph& g = ctx.g;
  const RootedTree& rs = *ctx.source_trees[si];
  const NearSmall& ns = *ctx.near_small[si];
  const Vertex src_vertex = rs.root();
  const std::uint32_t num_c = ctx.num_centers();

  // ---- window edge lists: first W(priority(c)) edges of each cs path -----
  // Flattened into scratch: center ci's entries occupy
  // window[window_base[ci] .. window_base[ci+1]).
  s.window.clear();
  s.window_owner.clear();
  s.window_base.resize(num_c + 1);
  for (std::uint32_t ci = 0; ci < num_c; ++ci) {
    s.window_base[ci] = static_cast<std::uint32_t>(s.window.size());
    const Vertex c = ctx.center_list[ci];
    const Dist depth = rs.dist(c);
    if (depth == kInfDist || depth == 0) continue;
    const Dist wlen = std::min<Dist>(depth, ctx.params.window(ctx.priority(c)));
    Vertex v = c;
    // pos_from_c of the edge above v equals dist(c) - dist(v).
    for (std::uint32_t j = 0; j < wlen; ++j) {
      s.window.push_back({rs.tree.parent_edge(v), v});
      s.window_owner.push_back(ci);
      v = rs.tree.parent(v);
    }
  }
  const auto num_window = static_cast<std::uint32_t>(s.window.size());
  s.window_base[num_c] = num_window;

  // ---- nodes --------------------------------------------------------------
  AuxGraph& aux = s.aux;
  aux.reset();
  aux.add_nodes(num_c);  // [c] nodes use their center index as handle
  const AuxNode first_window = aux.add_nodes(num_window);  // entry i = first_window + i
  const AuxNode src = static_cast<AuxNode>(ctx.center_index[src_vertex]);

  // ---- arcs ---------------------------------------------------------------
  for (std::uint32_t ci = 0; ci < num_c; ++ci) {
    const Vertex c = ctx.center_list[ci];
    if (c != src_vertex && rs.tree.reachable(c)) aux.add_arc(src, ci, rs.dist(c));
  }
  for (std::uint32_t ci = 0; ci < num_c; ++ci) {
    if (s.window_base[ci] == s.window_base[ci + 1]) continue;
    const Vertex c = ctx.center_list[ci];
    const Dist depth = rs.dist(c);
    // Center detour candidates for c: tree lookup, distance, and prune test
    // depend only on (c', c) — hoisted out of the window-entry loop.
    s.eligible.clear();
    for (std::uint32_t cj = 0; cj < num_c; ++cj) {
      if (cj == ci) continue;
      const Vertex c2 = ctx.center_list[cj];
      const RootedTree& rc2 = ctx.pool.existing(c2);
      const Dist dcc = rc2.dist(c);
      if (dcc > ctx.prune_radius(ctx.priority(c2))) continue;
      s.eligible.push_back({cj, c2, dcc, &rc2});
    }
    for (std::uint32_t i = s.window_base[ci]; i < s.window_base[ci + 1]; ++i) {
      const auto [eid, child] = s.window[i];
      const auto [eu, ev] = g.endpoints(eid);
      const AuxNode target = first_window + i;
      const std::uint32_t j = i - s.window_base[ci];
      // Small near-edge replacement path from Section 7.1 (t = c).
      const std::uint32_t pos_from_s = depth - 1 - j;
      const Dist small = ns.value(c, pos_from_s);
      if (small != kInfDist) aux.add_arc(src, target, small);
      // Center detours [c'] -> [c, e].
      for (const auto& cand : s.eligible) {
        if (cand.tree->edge_on_path_to(eid, eu, ev, c)) continue;  // e on c'c
        if (!rs.anc.is_ancestor(child, cand.v)) {                  // e not on sc'
          aux.add_arc(cand.idx, target, cand.dist);
        }
      }
    }
  }
  // Same-edge chains [c', e] -> [c, e]: all ordered pairs sharing an edge.
  for_each_same_edge_pair(s, [&](std::uint32_t pi, std::uint32_t ti) {
    const std::uint32_t ci = s.window_owner[ti];
    const std::uint32_t cj = s.window_owner[pi];
    if (cj == ci) return;
    const Vertex c = ctx.center_list[ci];
    const Vertex c2 = ctx.center_list[cj];
    const RootedTree& rc2 = ctx.pool.existing(c2);
    const Dist dcc = rc2.dist(c);
    if (dcc > ctx.prune_radius(ctx.priority(c2))) return;
    const EdgeId eid = s.window[ti].id;
    const auto [eu, ev] = g.endpoints(eid);
    if (rc2.edge_on_path_to(eid, eu, ev, c)) return;
    aux.add_arc(first_window + pi, first_window + ti, dcc);
  });

  s.stats.bk_source_center_aux_arcs += aux.num_arcs();
  dijkstra(aux, src, s.dij);

  auto& table = per_source_[si];
  for (std::uint32_t ci = 0; ci < num_c; ++ci) {
    for (std::uint32_t i = s.window_base[ci]; i < s.window_base[ci + 1]; ++i) {
      const Dist d = s.dij.dist(first_window + i);
      if (d != kInfDist) table.put(key(ci, i - s.window_base[ci]), d);
    }
  }
}

Dist SourceCenterTable::avoiding(std::uint32_t si, Vertex c, Vertex e_child) const {
  const BkContext& ctx = *ctx_;
  const RootedTree& rs = *ctx.source_trees[si];
  if (!rs.anc.is_ancestor(e_child, c)) return rs.dist(c);  // e off the sc path
  const std::uint32_t pos_from_c = rs.dist(c) - rs.dist(e_child);
  const auto cidx = static_cast<std::uint32_t>(ctx.center_index[c]);
  return per_source_[si].get_or(key(cidx, pos_from_c), kInfDist);
}

}  // namespace msrp
