#include "core/source_center.hpp"

#include <algorithm>
#include <unordered_map>

#include "spath/dijkstra.hpp"

namespace msrp {
namespace {

struct WindowEdge {
  EdgeId id;
  Vertex child;  // deeper endpoint in T_s
};

}  // namespace

SourceCenterTable::SourceCenterTable(const BkContext& ctx)
    : ctx_(&ctx), per_source_(ctx.source_trees.size()) {}

void SourceCenterTable::build_source(std::uint32_t si, MsrpStats& stats) {
  const BkContext& ctx = *ctx_;
  const Graph& g = ctx.g;
  const RootedTree& rs = *ctx.source_trees[si];
  const NearSmall& ns = *ctx.near_small[si];
  const Vertex s = rs.root();
  const std::uint32_t num_c = ctx.num_centers();

  // ---- window edge lists: first W(priority(c)) edges of each cs path -----
  std::vector<std::vector<WindowEdge>> window(num_c);
  for (std::uint32_t ci = 0; ci < num_c; ++ci) {
    const Vertex c = ctx.center_list[ci];
    const Dist depth = rs.dist(c);
    if (depth == kInfDist || depth == 0) continue;
    const Dist wlen = std::min<Dist>(depth, ctx.params.window(ctx.priority(c)));
    auto& edges = window[ci];
    edges.resize(wlen);
    Vertex v = c;
    // pos_from_c of the edge above v equals dist(c) - dist(v).
    for (std::uint32_t j = 0; j < wlen; ++j) {
      edges[j] = {rs.tree.parent_edge(v), v};
      v = rs.tree.parent(v);
    }
  }

  // Edge id -> auxiliary [c, e] nodes that mention it (for [c',e] -> [c,e]).
  std::unordered_map<EdgeId, std::vector<std::pair<std::uint32_t, std::uint32_t>>> by_edge;
  for (std::uint32_t ci = 0; ci < num_c; ++ci) {
    for (std::uint32_t j = 0; j < window[ci].size(); ++j) {
      by_edge[window[ci][j].id].emplace_back(ci, j);
    }
  }

  // ---- nodes --------------------------------------------------------------
  AuxGraph aux;
  aux.add_nodes(num_c);  // [c] nodes use their center index as handle
  std::vector<AuxNode> base(num_c, 0);
  for (std::uint32_t ci = 0; ci < num_c; ++ci) {
    base[ci] = aux.add_nodes(static_cast<std::uint32_t>(window[ci].size()));
  }
  const AuxNode src = static_cast<AuxNode>(ctx.center_index[s]);

  // ---- arcs ---------------------------------------------------------------
  for (std::uint32_t ci = 0; ci < num_c; ++ci) {
    const Vertex c = ctx.center_list[ci];
    if (c != s && rs.tree.reachable(c)) aux.add_arc(src, ci, rs.dist(c));
  }
  for (std::uint32_t ci = 0; ci < num_c; ++ci) {
    const Vertex c = ctx.center_list[ci];
    const Dist depth = rs.dist(c);
    for (std::uint32_t j = 0; j < window[ci].size(); ++j) {
      const auto [eid, child] = window[ci][j];
      const auto [eu, ev] = g.endpoints(eid);
      const AuxNode target = base[ci] + j;
      // Small near-edge replacement path from Section 7.1 (t = c).
      const std::uint32_t pos_from_s = depth - 1 - j;
      const Dist small = ns.value(c, pos_from_s);
      if (small != kInfDist) aux.add_arc(src, target, small);
      // Center detours [c'] -> [c, e].
      for (std::uint32_t cj = 0; cj < num_c; ++cj) {
        if (cj == ci) continue;
        const Vertex c2 = ctx.center_list[cj];
        const RootedTree& rc2 = ctx.pool.existing(c2);
        const Dist dcc = rc2.dist(c);
        if (dcc > ctx.prune_radius(ctx.priority(c2))) continue;
        if (rc2.edge_on_path_to(eid, eu, ev, c)) continue;  // e on c'c
        if (!rs.anc.is_ancestor(child, c2)) {               // e not on sc'
          aux.add_arc(cj, target, dcc);
        }
      }
      // Same-edge chains [c', e] -> [c, e].
      for (const auto& [cj, j2] : by_edge[eid]) {
        if (cj == ci) continue;
        const Vertex c2 = ctx.center_list[cj];
        const RootedTree& rc2 = ctx.pool.existing(c2);
        const Dist dcc = rc2.dist(c);
        if (dcc > ctx.prune_radius(ctx.priority(c2))) continue;
        if (rc2.edge_on_path_to(eid, eu, ev, c)) continue;
        aux.add_arc(base[cj] + j2, target, dcc);
      }
    }
  }

  stats.bk_source_center_aux_arcs += aux.num_arcs();
  const DijkstraResult dij = dijkstra(aux, src);

  auto& table = per_source_[si];
  for (std::uint32_t ci = 0; ci < num_c; ++ci) {
    for (std::uint32_t j = 0; j < window[ci].size(); ++j) {
      const Dist d = dij.dist[base[ci] + j];
      if (d != kInfDist) table.put(key(ci, j), d);
    }
  }
}

Dist SourceCenterTable::avoiding(std::uint32_t si, Vertex c, Vertex e_child) const {
  const BkContext& ctx = *ctx_;
  const RootedTree& rs = *ctx.source_trees[si];
  if (!rs.anc.is_ancestor(e_child, c)) return rs.dist(c);  // e off the sc path
  const std::uint32_t pos_from_c = rs.dist(c) - rs.dist(e_child);
  const auto cidx = static_cast<std::uint32_t>(ctx.center_index[c]);
  return per_source_[si].get_or(key(cidx, pos_from_c), kInfDist);
}

}  // namespace msrp
