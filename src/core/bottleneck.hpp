// Section 8.3, second half: replacement paths avoiding bottleneck edges.
//
// Per source, an auxiliary digraph over the landmarks:
//   nodes [r] per landmark and [s, r, i] per interval of the sr path;
//   [s]        -> [r]        weight |sr|
//   [s]        -> [s, r, i]  weight w[r, B]  (Section 7.1 small value)
//   [s]        -> [s, r, i]  weight MTC(s, r, B)
//   [s]        -> [s, r, i]  weight MTC(s, r', B) + |r'r|  (B on sr', off r'r)
//   [r']       -> [s, r, i]  weight |r'r|   (B off sr' and off r'r)
//   [s, r', j] -> [s, r, i]  weight |r'r|   (B inside interval j of sr',
//                                            off r'r)
// with B = B[s, r, i], the interval's bottleneck edge. Dijkstra from [s]
// computes sr <> B for every interval (Lemma 25); the caller then assembles
//
//   d(s, r, e) = min(MTC(s, r, e), sr <> B[s, r, interval(e)], w[r, e])
//
// per Lemma 24 and writes it into the landmark table.
#pragma once

#include "core/intervals.hpp"

namespace msrp {

struct BuildScratch;  // core/scratch.hpp

/// Runs the bottleneck phase for source `si` and fills that source's rows of
/// `dsr` (positions covered by Section 8's guarantees; rows are min-merged).
/// Independent across sources (each writes only its own dsr rows); all
/// temporaries live in `scratch` (counters included).
void fill_source_rows_bk(const BkContext& ctx, std::uint32_t si,
                         const SourceCenterTable& dsc, const CenterLandmarkTable& dcr,
                         LandmarkRpTable& dsr, BuildScratch& scratch);

}  // namespace msrp
