#include "core/landmark_rp.hpp"

namespace msrp {

LandmarkRpTable::LandmarkRpTable(const Graph& g, std::vector<const RootedTree*> source_trees,
                                 const std::vector<Vertex>& landmark_list)
    : source_trees_(std::move(source_trees)), landmarks_(landmark_list) {
  lidx_.assign(g.num_vertices(), -1);
  for (std::uint32_t i = 0; i < landmarks_.size(); ++i) {
    lidx_[landmarks_[i]] = static_cast<std::int32_t>(i);
  }
  rows_.resize(source_trees_.size() * landmarks_.size());
  // Pre-size rows so mutable_row callers can write by position directly.
  for (std::uint32_t si = 0; si < source_trees_.size(); ++si) {
    const BfsTree& t = source_trees_[si]->tree;
    for (std::uint32_t li = 0; li < landmarks_.size(); ++li) {
      const Dist d = t.dist(landmarks_[li]);
      rows_[si * landmarks_.size() + li].assign(d == kInfDist ? 0 : d, kInfDist);
    }
  }
}

void LandmarkRpTable::fill_mmg(const Graph& g, TreePool* pool) {
  for (std::uint32_t si = 0; si < source_trees_.size(); ++si) {
    const BfsTree& ts = source_trees_[si]->tree;
    for (std::uint32_t li = 0; li < landmarks_.size(); ++li) {
      const Vertex r = landmarks_[li];
      if (!ts.reachable(r) || r == ts.root()) continue;
      if (pool != nullptr) {
        mutable_row(si, li) = replacement_paths(g, ts, pool->at(r).tree).avoiding;
      } else {
        mutable_row(si, li) = replacement_paths(g, ts, r).avoiding;
      }
    }
  }
}

}  // namespace msrp
