#include "core/landmark_rp.hpp"

#include "core/scratch.hpp"
#include "util/thread_pool.hpp"

namespace msrp {

LandmarkRpTable::LandmarkRpTable(const Graph& g, std::vector<const RootedTree*> source_trees,
                                 const std::vector<Vertex>& landmark_list)
    : source_trees_(std::move(source_trees)), landmarks_(landmark_list) {
  lidx_.assign(g.num_vertices(), -1);
  for (std::uint32_t i = 0; i < landmarks_.size(); ++i) {
    lidx_[landmarks_[i]] = static_cast<std::int32_t>(i);
  }
  rows_.resize(source_trees_.size() * landmarks_.size());
  // Pre-size rows so mutable_row callers can write by position directly.
  for (std::uint32_t si = 0; si < source_trees_.size(); ++si) {
    const BfsTree& t = source_trees_[si]->tree;
    for (std::uint32_t li = 0; li < landmarks_.size(); ++li) {
      const Dist d = t.dist(landmarks_[li]);
      rows_[si * landmarks_.size() + li].assign(d == kInfDist ? 0 : d, kInfDist);
    }
  }
}

void LandmarkRpTable::fill_mmg(const Graph& g, TreePool* pool, ThreadPool* exec,
                               ScratchPool* scratches) {
  MSRP_REQUIRE(exec == nullptr || scratches != nullptr,
               "parallel fill_mmg needs a scratch pool");
  // Build any missing landmark trees up front (in parallel if possible):
  // the pair loop below must only ever read the tree pool.
  if (pool != nullptr) pool->ensure(landmarks_, exec);

  const auto num_l = static_cast<std::uint32_t>(landmarks_.size());
  const auto num_pairs = static_cast<std::size_t>(source_trees_.size()) * num_l;
  maybe_parallel_for(exec, num_pairs, [&](std::size_t p, std::size_t slot) {
    const auto si = static_cast<std::uint32_t>(p / num_l);
    const auto li = static_cast<std::uint32_t>(p % num_l);
    const BfsTree& ts = source_trees_[si]->tree;
    const Vertex r = landmarks_[li];
    if (!ts.reachable(r) || r == ts.root()) return;
    if (pool != nullptr) {
      if (scratches != nullptr) {
        mutable_row(si, li) =
            replacement_paths(g, ts, pool->existing(r).tree, scratches->slot(slot).rp)
                .avoiding;
      } else {
        mutable_row(si, li) = replacement_paths(g, ts, pool->existing(r).tree).avoiding;
      }
    } else {
      mutable_row(si, li) = replacement_paths(g, ts, r).avoiding;
    }
  });
}

}  // namespace msrp
