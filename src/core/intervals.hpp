// Section 8.3 support: interval decomposition of sr paths (Definition 15),
// MTC (Definition 17), and bottleneck edges (Definition 23).
//
// The centers on the canonical sr path are scanned into the paper's
// "staircase": walking from s, each next center with strictly higher
// priority is selected until the maximum priority is reached; symmetrically
// from r. Consecutive selected centers delimit the intervals. Because
// sources and landmarks are both forced into C_0 (bk.hpp), the first
// boundary is s itself and the last is r, so every edge lies between two
// proper centers and both MTC terms are always defined:
//
//   MTC(s, r, e) = min( |s c1| + d(c1, r, e),     [8.2.2 table]
//                       d(s, c2, e) + |c2 r| )    [8.1 table]
//
// The bottleneck of an interval is its max-MTC edge (by Lemma 24 the third
// path-cover term is constant per interval, so MTC ranks the edges).
#pragma once

#include "core/bk.hpp"
#include "core/center_landmark.hpp"
#include "core/source_center.hpp"

namespace msrp {

/// Decomposition and per-edge data for one (source, landmark) pair.
struct SrDecomposition {
  // Selected boundary centers: positions on the path (ascending, first is 0
  // = s, last is dist(r) = r) and the center vertices themselves.
  std::vector<std::uint32_t> boundary_pos;
  std::vector<Vertex> boundary_center;

  // Per path-edge position: MTC value and the interval index it lies in.
  std::vector<Dist> mtc;
  std::vector<std::uint32_t> interval_of;

  // Per interval: position of the bottleneck edge (max MTC).
  std::vector<std::uint32_t> bottleneck_pos;

  std::uint32_t num_intervals() const {
    return static_cast<std::uint32_t>(bottleneck_pos.size());
  }
};

/// Builds the decomposition and MTC/bottleneck data for (si, r). `path` is
/// the canonical s..r vertex sequence (at least 2 vertices).
SrDecomposition decompose_sr_path(const BkContext& ctx, std::uint32_t si,
                                  const std::vector<Vertex>& path,
                                  const SourceCenterTable& dsc,
                                  const CenterLandmarkTable& dcr);

}  // namespace msrp
