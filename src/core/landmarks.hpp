// Landmark and center hierarchies (Definition 3, Section 8) and the pool of
// rooted BFS trees shared between them.
//
// L_k and C_k are independent samples of V with probability p_k (Params).
// L additionally contains every source; C_0 additionally contains every
// source. A vertex sampled at several levels has *priority* = its highest
// level (Section 8's "a center is said to have priority k if it lies in C_k").
//
// Every distinct root (source, landmark, or center) needs one BFS tree with
// an ancestor index; a vertex frequently plays several roles, so the trees
// live in a TreePool keyed by root vertex and are built exactly once.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "tree/ancestry.hpp"
#include "util/rng.hpp"

namespace msrp {

class ThreadPool;  // util/thread_pool.hpp

/// One sampled hierarchy (used for both landmarks and centers).
class LevelSets {
 public:
  /// Samples each level with Params::sample_prob; `forced` vertices (the
  /// sources) are added to level 0 and always present.
  LevelSets(const Params& params, const std::vector<Vertex>& forced, Rng& rng);

  /// All members, deduplicated, sorted by vertex id.
  const std::vector<Vertex>& members() const { return members_; }

  /// Members of level k (a vertex can appear in several levels).
  const std::vector<Vertex>& level(std::uint32_t k) const { return levels_[k]; }

  std::uint32_t num_levels() const { return static_cast<std::uint32_t>(levels_.size()); }

  bool contains(Vertex v) const { return priority_[v] >= 0; }

  /// Highest level containing v; -1 if v is not a member.
  std::int32_t priority(Vertex v) const { return priority_[v]; }

 private:
  std::vector<std::vector<Vertex>> levels_;
  std::vector<Vertex> members_;
  std::vector<std::int32_t> priority_;
};

/// Lazily-built cache of RootedTree, one per distinct root.
class TreePool {
 public:
  explicit TreePool(const Graph& g) : g_(&g), slot_(g.num_vertices(), kNoSlot) {}

  /// Returns the tree rooted at v, building it on first use.
  const RootedTree& at(Vertex v);

  /// Returns the tree rooted at v, which must already exist.
  const RootedTree& existing(Vertex v) const;

  /// Builds trees for every vertex in `roots`. With a pool, the (fully
  /// independent) BFS+ancestry builds run in parallel; slot indices are
  /// assigned sequentially first, so the pool's layout — and every tree —
  /// is identical to the sequential build.
  void ensure(const std::vector<Vertex>& roots, ThreadPool* pool = nullptr);

  std::size_t size() const { return trees_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot = static_cast<std::uint32_t>(-1);
  const Graph* g_;
  std::vector<std::uint32_t> slot_;
  // deque-like stability: RootedTree is large, store by unique_ptr
  std::vector<std::unique_ptr<RootedTree>> trees_;
};

}  // namespace msrp
