/// \file
/// Public entry point: the Multiple Source Replacement Path solver
/// (Theorem 26 — the O~(m sqrt(n sigma) + sigma n^2) whp-exact algorithm).
///
/// Usage:
/// \code
///   msrp::Graph g = msrp::gen::connected_gnp(1000, 0.01, rng);
///   msrp::MsrpResult res = msrp::solve_msrp(g, {3, 77, 512});
///   for (msrp::EdgeId e : res.tree(3).path_edges(t))
///     use(res.avoiding(3, t, e));
/// \endcode
///
/// The solver is Monte Carlo: with the default configuration every returned
/// value is the length of a genuine replacement path (never too small) and
/// is exactly optimal with high probability. Config::exact = true switches
/// to a deterministic exact mode (slower; used as a cross-check).
///
/// Builds parallelize over Config::build_threads / Config::build_pool and
/// are bit-identical to sequential runs; see docs/ARCHITECTURE.md for the
/// phase structure and the determinism argument.
#pragma once

#include "core/config.hpp"
#include "core/result.hpp"

namespace msrp {

/// Solves MSRP: for every source s, target t, and edge e on the canonical
/// s->t path, the length of the shortest s->t path avoiding e.
/// \param g        undirected unweighted graph (CSR; not stored in the result)
/// \param sources  distinct source vertices (the result's sigma)
/// \param cfg      solver knobs; the default is the paper's whp-exact mode
/// \return the solved oracle: trees, replacement rows, stats
MsrpResult solve_msrp(const Graph& g, const std::vector<Vertex>& sources,
                      const Config& cfg = {});

/// Single Source Replacement Paths (Theorem 14): the sigma = 1 special case.
MsrpResult solve_ssrp(const Graph& g, Vertex source, const Config& cfg = {});

}  // namespace msrp
