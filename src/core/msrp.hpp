// Public entry point: the Multiple Source Replacement Path solver
// (Theorem 26 — O~(m sqrt(n sigma) + sigma n^2) whp-exact algorithm).
//
// Usage:
//
//   msrp::Graph g = msrp::gen::connected_gnp(1000, 0.01, rng);
//   msrp::MsrpResult res = msrp::solve_msrp(g, {3, 77, 512});
//   for (msrp::EdgeId e : res.tree(3).path_edges(t))
//     use(res.avoiding(3, t, e));
//
// The solver is Monte Carlo: with the default configuration every returned
// value is the length of a genuine replacement path (never too small) and is
// exactly optimal with high probability. Config::exact = true switches to a
// deterministic exact mode (slower; used as a cross-check).
#pragma once

#include "core/config.hpp"
#include "core/result.hpp"

namespace msrp {

/// Solves MSRP for the given sources. Sources must be distinct vertices.
MsrpResult solve_msrp(const Graph& g, const std::vector<Vertex>& sources,
                      const Config& cfg = {});

/// Single Source Replacement Paths (Theorem 14): the sigma = 1 special case.
MsrpResult solve_ssrp(const Graph& g, Vertex source, const Config& cfg = {});

}  // namespace msrp
