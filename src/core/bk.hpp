// Section 8: the Bernstein–Karger adaptation that fills the d(s, r, e)
// landmark table in O~(m sqrt(n sigma) + sigma n^2) total instead of one MMG
// run per (source, landmark) pair.
//
// Pipeline (one call, several phases):
//   8.1  source -> center replacement paths, one auxiliary Dijkstra per
//        source (source_center.cpp);
//   8.2.1 enumeration of small near-edge replacement paths to landmarks,
//        recording the centers they pass through (center_landmark.cpp);
//   8.2.2 center -> landmark replacement paths, one auxiliary Dijkstra per
//        center (center_landmark.cpp);
//   8.3  interval decomposition of every sr path (Definition 15), MTC
//        (Definition 17), bottleneck edges (Definition 23) and the
//        interval-avoiding auxiliary Dijkstra per source (intervals.cpp,
//        bottleneck.cpp).
//
// To close the paper's implicit recursions at the two path ends, both the
// sources and all landmarks are members of C_0 (see DESIGN.md): the first
// interval's term sc1 + (c1 r <> e) is served by the 8.2.2 Dijkstra of the
// center c1 = s, and the last interval's term (s c2 <> e) + c2 r by the 8.1
// Dijkstra with c2 = r.
#pragma once

#include "core/config.hpp"
#include "core/landmark_rp.hpp"
#include "core/landmarks.hpp"
#include "core/near_small.hpp"
#include "core/result.hpp"
#include "util/timer.hpp"

namespace msrp {

class ThreadPool;   // util/thread_pool.hpp
class ScratchPool;  // core/scratch.hpp

/// Everything the Section 8 phases share.
struct BkContext {
  const Graph& g;
  const Params& params;
  TreePool& pool;
  const LevelSets& landmarks;
  const LevelSets& centers;
  std::vector<const RootedTree*> source_trees;        // per source index
  std::vector<const NearSmall*> near_small;           // per source index
  std::vector<Vertex> center_list;                    // dense center ids
  std::vector<std::int32_t> center_index;             // vertex -> center id or -1

  BkContext(const Graph& g_in, const Params& params_in, TreePool& pool_in,
            const LevelSets& landmarks_in, const LevelSets& centers_in,
            std::vector<const RootedTree*> sources,
            std::vector<const NearSmall*> near_small_in);

  std::uint32_t num_centers() const { return static_cast<std::uint32_t>(center_list.size()); }

  /// Highest level of center c (>= 0 for every member of center_list).
  std::uint32_t priority(Vertex c) const {
    return static_cast<std::uint32_t>(centers.priority(c));
  }

  /// Pruning radius for detour candidates routed through vertex v with
  /// sampling priority `prio`: witnesses from Lemmas 9/12/19 sit within
  /// 2^prio * T of the target, so a 2x slack radius keeps them all.
  Dist prune_radius(std::uint32_t prio) const {
    const std::uint64_t r = std::uint64_t{params.near_threshold()} << (prio + 1);
    return r >= kInfDist ? kInfDist - 1 : static_cast<Dist>(r);
  }
};

/// Runs all Section 8 phases and fills `dsr`. Phase timings and auxiliary
/// sizes are accumulated into `stats`. When `pool` is non-null the
/// per-source and per-center loops of every phase run on it, each item on a
/// private scratch from `scratches` (which must have one slot per pool
/// participant); results are bit-identical to the sequential build.
void fill_landmark_rp_bk(BkContext& ctx, LandmarkRpTable& dsr, MsrpStats& stats,
                         PhaseTimers& timers, ThreadPool* pool, ScratchPool& scratches);

}  // namespace msrp
