#include "core/landmarks.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace msrp {

LevelSets::LevelSets(const Params& params, const std::vector<Vertex>& forced, Rng& rng) {
  const Vertex n = params.n();
  priority_.assign(n, -1);
  levels_.resize(params.num_levels() + 1);

  for (std::uint32_t k = 0; k <= params.num_levels(); ++k) {
    const double p = params.sample_prob(k);
    for (Vertex v = 0; v < n; ++v) {
      if (rng.next_bernoulli(p)) {
        levels_[k].push_back(v);
        priority_[v] = std::max(priority_[v], static_cast<std::int32_t>(k));
      }
    }
  }
  for (const Vertex v : forced) {
    MSRP_REQUIRE(v < n, "forced member out of range");
    if (priority_[v] < 0 ||
        std::find(levels_[0].begin(), levels_[0].end(), v) == levels_[0].end()) {
      levels_[0].push_back(v);
    }
    priority_[v] = std::max(priority_[v], 0);
  }
  std::sort(levels_[0].begin(), levels_[0].end());
  levels_[0].erase(std::unique(levels_[0].begin(), levels_[0].end()), levels_[0].end());

  for (Vertex v = 0; v < n; ++v) {
    if (priority_[v] >= 0) members_.push_back(v);
  }
}

const RootedTree& TreePool::at(Vertex v) {
  MSRP_REQUIRE(v < slot_.size(), "root out of range");
  if (slot_[v] == kNoSlot) {
    slot_[v] = static_cast<std::uint32_t>(trees_.size());
    trees_.push_back(std::make_unique<RootedTree>(*g_, v));
  }
  return *trees_[slot_[v]];
}

const RootedTree& TreePool::existing(Vertex v) const {
  MSRP_REQUIRE(v < slot_.size() && slot_[v] != kNoSlot, "tree was never built");
  return *trees_[slot_[v]];
}

void TreePool::ensure(const std::vector<Vertex>& roots, ThreadPool* pool) {
  // Claim slots sequentially (deterministic pool layout), then build the
  // missing trees — each an independent BFS + DFS-stamp pass — in parallel.
  std::vector<std::pair<Vertex, std::uint32_t>> missing;
  for (const Vertex v : roots) {
    MSRP_REQUIRE(v < slot_.size(), "root out of range");
    if (slot_[v] != kNoSlot) continue;
    slot_[v] = static_cast<std::uint32_t>(trees_.size());
    trees_.emplace_back();  // filled below
    missing.emplace_back(v, slot_[v]);
  }
  maybe_parallel_for(pool, missing.size(), [&](std::size_t i, std::size_t) {
    const auto [v, slot] = missing[i];
    trees_[slot] = std::make_unique<RootedTree>(*g_, v);
  });
}

}  // namespace msrp
