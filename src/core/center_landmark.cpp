#include "core/center_landmark.hpp"

#include <algorithm>

#include "core/scratch.hpp"
#include "spath/dijkstra.hpp"

namespace msrp {

CenterLandmarkTable::CenterLandmarkTable(const BkContext& ctx, const LandmarkRpTable& dsr)
    : ctx_(&ctx), dsr_(&dsr), small_via_(ctx.num_centers()), dcr_(ctx.num_centers()) {}

void CenterLandmarkTable::collect_small_via(std::uint32_t si,
                                            std::vector<SmallVia>& out) const {
  const BkContext& ctx = *ctx_;
  const NearSmall& ns = *ctx.near_small[si];
  const RootedTree& rs = *ctx.source_trees[si];
  out.clear();

  for (std::uint32_t li = 0; li < dsr_->num_landmarks(); ++li) {
    const Vertex r = dsr_->landmarks()[li];
    const Dist depth = rs.dist(r);
    if (depth == kInfDist || depth == 0) continue;
    for (std::uint32_t pos = ns.first_near_pos(r); pos < depth; ++pos) {
      const Dist total = ns.value(r, pos);
      if (total == kInfDist) continue;
      const EdgeId eid = ns.near_edge(r, pos).first;
      const std::vector<Vertex> path = ns.reconstruct_path(r, pos);
      MSRP_DCHECK(path.size() == static_cast<std::size_t>(total) + 1,
                  "reconstructed path length mismatch");
      for (std::uint32_t ix = 0; ix < path.size(); ++ix) {
        const std::int32_t cidx = ctx.center_index[path[ix]];
        if (cidx < 0) continue;
        out.push_back(SmallVia{static_cast<std::uint32_t>(cidx), small_key(li, eid),
                               total - ix});
      }
    }
  }
}

void CenterLandmarkTable::merge_small_via(const std::vector<SmallVia>& items) {
  for (const SmallVia& item : items) {
    auto& table = small_via_[item.cidx];
    Dist* cur = table.find(item.key);
    if (cur == nullptr) {
      table.put(item.key, item.suffix);
    } else if (item.suffix < *cur) {
      *cur = item.suffix;
    }
  }
}

void CenterLandmarkTable::build_center(std::uint32_t cidx, BuildScratch& s) {
  const BkContext& ctx = *ctx_;
  const Graph& g = ctx.g;
  const Vertex c = ctx.center_list[cidx];
  const RootedTree& rc = ctx.pool.existing(c);
  const std::uint32_t num_l = dsr_->num_landmarks();
  const Dist wcap = ctx.params.window(ctx.priority(c));

  // ---- window edge lists: first W(k) edges of each cr path ---------------
  // Flattened into scratch: landmark li's entries occupy
  // window[window_base[li] .. window_base[li+1]).
  s.window.clear();
  s.window_owner.clear();
  s.window_base.resize(num_l + 1);
  for (std::uint32_t li = 0; li < num_l; ++li) {
    s.window_base[li] = static_cast<std::uint32_t>(s.window.size());
    const Vertex r = dsr_->landmarks()[li];
    const Dist depth = rc.dist(r);
    if (depth == kInfDist || depth == 0 || r == c) continue;
    const Dist wlen = std::min<Dist>(depth, wcap);
    // Walking up from r yields the path reversed (r first, c last); the
    // window needs positions 0 .. wlen-1, the edges nearest to c (the top
    // of the tree path): position j's deeper endpoint is path[depth-j-1].
    s.path.clear();
    for (Vertex v = r; v != kNoVertex; v = rc.tree.parent(v)) s.path.push_back(v);
    for (std::uint32_t j = 0; j < wlen; ++j) {
      const Vertex child = s.path[depth - j - 1];
      s.window.push_back({rc.tree.parent_edge(child), child});
      s.window_owner.push_back(li);
    }
  }
  const auto num_window = static_cast<std::uint32_t>(s.window.size());
  s.window_base[num_l] = num_window;

  // ---- nodes: [r] = li, [c], then [r, e] in flat window order -------------
  AuxGraph& aux = s.aux;
  aux.reset();
  aux.add_nodes(num_l);
  const AuxNode src = aux.add_node();  // [c]
  const AuxNode first_window = aux.add_nodes(num_window);  // entry i = first_window + i

  // ---- arcs ----------------------------------------------------------------
  for (std::uint32_t li = 0; li < num_l; ++li) {
    const Vertex r = dsr_->landmarks()[li];
    if (r != c && rc.tree.reachable(r)) aux.add_arc(src, li, rc.dist(r));
  }
  const auto& small_table = small_via_[cidx];
  for (std::uint32_t li = 0; li < num_l; ++li) {
    if (s.window_base[li] == s.window_base[li + 1]) continue;
    const Vertex r = dsr_->landmarks()[li];
    // Landmark detour candidates for r: tree lookup, distance, and prune
    // test depend only on (r', r) — hoisted out of the window-entry loop.
    s.eligible.clear();
    for (std::uint32_t lj = 0; lj < num_l; ++lj) {
      if (lj == li) continue;
      const Vertex r2 = dsr_->landmarks()[lj];
      const RootedTree& rr2 = ctx.pool.existing(r2);
      const Dist drr = rr2.dist(r);
      const auto prio2 = static_cast<std::uint32_t>(ctx.landmarks.priority(r2));
      if (drr > ctx.prune_radius(prio2)) continue;
      s.eligible.push_back({lj, r2, drr, &rr2});
    }
    for (std::uint32_t i = s.window_base[li]; i < s.window_base[li + 1]; ++i) {
      const auto [eid, child] = s.window[i];
      const auto [eu, ev] = g.endpoints(eid);
      const AuxNode target = first_window + i;
      // 8.2.1 small replacement path through c.
      if (const Dist* w = small_table.find(small_key(li, eid))) {
        aux.add_arc(src, target, *w);
      }
      // Landmark detours [r'] -> [r, e].
      for (const auto& cand : s.eligible) {
        if (cand.tree->edge_on_path_to(eid, eu, ev, r)) continue;  // e on r'r
        if (!rc.anc.is_ancestor(child, cand.v)) {                  // e not on cr'
          aux.add_arc(cand.idx, target, cand.dist);
        }
      }
    }
  }
  // Same-edge chains [r', e] -> [r, e]: all ordered pairs sharing an edge.
  for_each_same_edge_pair(s, [&](std::uint32_t pi, std::uint32_t ti) {
    const std::uint32_t li = s.window_owner[ti];
    const std::uint32_t lj = s.window_owner[pi];
    if (lj == li) return;
    const Vertex r = dsr_->landmarks()[li];
    const Vertex r2 = dsr_->landmarks()[lj];
    const RootedTree& rr2 = ctx.pool.existing(r2);
    const Dist drr = rr2.dist(r);
    const auto prio2 = static_cast<std::uint32_t>(ctx.landmarks.priority(r2));
    if (drr > ctx.prune_radius(prio2)) return;
    const EdgeId eid = s.window[ti].id;
    const auto [eu, ev] = g.endpoints(eid);
    if (rr2.edge_on_path_to(eid, eu, ev, r)) return;
    aux.add_arc(first_window + pi, first_window + ti, drr);
  });

  s.stats.bk_center_landmark_aux_arcs += aux.num_arcs();
  dijkstra(aux, src, s.dij);

  auto& table = dcr_[cidx];
  for (std::uint32_t li = 0; li < num_l; ++li) {
    for (std::uint32_t i = s.window_base[li]; i < s.window_base[li + 1]; ++i) {
      const Dist d = s.dij.dist(first_window + i);
      if (d != kInfDist) table.put(dcr_key(li, i - s.window_base[li]), d);
    }
  }
}

Dist CenterLandmarkTable::avoiding(Vertex c, Vertex r, EdgeId e, Vertex eu, Vertex ev) const {
  const BkContext& ctx = *ctx_;
  const RootedTree& rc = ctx.pool.existing(c);
  // Deeper endpoint of e in T_c, if e is one of its tree edges.
  Vertex child = kNoVertex;
  if (rc.tree.parent_edge(eu) == e) child = eu;
  if (rc.tree.parent_edge(ev) == e) child = ev;
  if (child == kNoVertex || !rc.anc.is_ancestor(child, r)) return rc.dist(r);
  const std::uint32_t pos_from_c = rc.dist(child) - 1;
  const auto cidx = static_cast<std::uint32_t>(ctx.center_index[c]);
  const auto li = static_cast<std::uint32_t>(dsr_->landmark_index(r));
  return dcr_[cidx].get_or(dcr_key(li, pos_from_c), kInfDist);
}

}  // namespace msrp
