#include "core/center_landmark.hpp"

#include <algorithm>
#include <unordered_map>

#include "spath/dijkstra.hpp"

namespace msrp {
namespace {

struct WindowEdge {
  EdgeId id;
  Vertex child;  // deeper endpoint in T_c
};

}  // namespace

CenterLandmarkTable::CenterLandmarkTable(const BkContext& ctx, const LandmarkRpTable& dsr)
    : ctx_(&ctx), dsr_(&dsr), small_via_(ctx.num_centers()), dcr_(ctx.num_centers()) {}

void CenterLandmarkTable::accumulate_small_via(std::uint32_t si) {
  const BkContext& ctx = *ctx_;
  const NearSmall& ns = *ctx.near_small[si];
  const RootedTree& rs = *ctx.source_trees[si];

  for (std::uint32_t li = 0; li < dsr_->num_landmarks(); ++li) {
    const Vertex r = dsr_->landmarks()[li];
    const Dist depth = rs.dist(r);
    if (depth == kInfDist || depth == 0) continue;
    for (std::uint32_t pos = ns.first_near_pos(r); pos < depth; ++pos) {
      const Dist total = ns.value(r, pos);
      if (total == kInfDist) continue;
      const EdgeId eid = ns.near_edge(r, pos).first;
      const std::vector<Vertex> path = ns.reconstruct_path(r, pos);
      MSRP_DCHECK(path.size() == static_cast<std::size_t>(total) + 1,
                  "reconstructed path length mismatch");
      for (std::uint32_t ix = 0; ix < path.size(); ++ix) {
        const std::int32_t cidx = ctx.center_index[path[ix]];
        if (cidx < 0) continue;
        const Dist suffix = total - ix;
        auto& table = small_via_[cidx];
        const std::uint64_t k = small_key(li, eid);
        Dist* cur = table.find(k);
        if (cur == nullptr) {
          table.put(k, suffix);
        } else if (suffix < *cur) {
          *cur = suffix;
        }
      }
    }
  }
}

void CenterLandmarkTable::build_center(std::uint32_t cidx, MsrpStats& stats) {
  const BkContext& ctx = *ctx_;
  const Graph& g = ctx.g;
  const Vertex c = ctx.center_list[cidx];
  const RootedTree& rc = ctx.pool.existing(c);
  const std::uint32_t num_l = dsr_->num_landmarks();
  const Dist wcap = ctx.params.window(ctx.priority(c));

  // ---- window edge lists: first W(k) edges of each cr path ---------------
  std::vector<std::vector<WindowEdge>> window(num_l);
  for (std::uint32_t li = 0; li < num_l; ++li) {
    const Vertex r = dsr_->landmarks()[li];
    const Dist depth = rc.dist(r);
    if (depth == kInfDist || depth == 0 || r == c) continue;
    const Dist wlen = std::min<Dist>(depth, wcap);
    // Walking up from r yields positions depth-1 .. 0; we need 0 .. wlen-1,
    // i.e. the edges nearest to c (the top of the tree path).
    const std::vector<Vertex> path = rc.tree.path_to(r);
    auto& edges = window[li];
    edges.resize(wlen);
    for (std::uint32_t j = 0; j < wlen; ++j) {
      edges[j] = {rc.tree.parent_edge(path[j + 1]), path[j + 1]};
    }
  }

  std::unordered_map<EdgeId, std::vector<std::pair<std::uint32_t, std::uint32_t>>> by_edge;
  for (std::uint32_t li = 0; li < num_l; ++li) {
    for (std::uint32_t j = 0; j < window[li].size(); ++j) {
      by_edge[window[li][j].id].emplace_back(li, j);
    }
  }

  // ---- nodes: [r] = li, [r, e] follow -------------------------------------
  AuxGraph aux;
  aux.add_nodes(num_l);
  const AuxNode src = aux.add_node();  // [c]
  std::vector<AuxNode> base(num_l, 0);
  for (std::uint32_t li = 0; li < num_l; ++li) {
    base[li] = aux.add_nodes(static_cast<std::uint32_t>(window[li].size()));
  }

  // ---- arcs ----------------------------------------------------------------
  for (std::uint32_t li = 0; li < num_l; ++li) {
    const Vertex r = dsr_->landmarks()[li];
    if (r != c && rc.tree.reachable(r)) aux.add_arc(src, li, rc.dist(r));
  }
  const auto& small_table = small_via_[cidx];
  for (std::uint32_t li = 0; li < num_l; ++li) {
    const Vertex r = dsr_->landmarks()[li];
    for (std::uint32_t j = 0; j < window[li].size(); ++j) {
      const auto [eid, child] = window[li][j];
      const auto [eu, ev] = g.endpoints(eid);
      const AuxNode target = base[li] + j;
      // 8.2.1 small replacement path through c.
      if (const Dist* w = small_table.find(small_key(li, eid))) {
        aux.add_arc(src, target, *w);
      }
      // Landmark detours [r'] -> [r, e].
      for (std::uint32_t lj = 0; lj < num_l; ++lj) {
        if (lj == li) continue;
        const Vertex r2 = dsr_->landmarks()[lj];
        const RootedTree& rr2 = ctx.pool.existing(r2);
        const Dist drr = rr2.dist(r);
        const auto prio2 = static_cast<std::uint32_t>(ctx.landmarks.priority(r2));
        if (drr > ctx.prune_radius(prio2)) continue;
        if (rr2.edge_on_path_to(eid, eu, ev, r)) continue;  // e on r'r
        if (!rc.anc.is_ancestor(child, r2)) {               // e not on cr'
          aux.add_arc(lj, target, drr);
        }
      }
      // Same-edge chains [r', e] -> [r, e].
      for (const auto& [lj, j2] : by_edge[eid]) {
        if (lj == li) continue;
        const Vertex r2 = dsr_->landmarks()[lj];
        const RootedTree& rr2 = ctx.pool.existing(r2);
        const Dist drr = rr2.dist(r);
        const auto prio2 = static_cast<std::uint32_t>(ctx.landmarks.priority(r2));
        if (drr > ctx.prune_radius(prio2)) continue;
        if (rr2.edge_on_path_to(eid, eu, ev, r)) continue;
        aux.add_arc(base[lj] + j2, target, drr);
      }
    }
  }

  stats.bk_center_landmark_aux_arcs += aux.num_arcs();
  const DijkstraResult dij = dijkstra(aux, src);

  auto& table = dcr_[cidx];
  for (std::uint32_t li = 0; li < num_l; ++li) {
    for (std::uint32_t j = 0; j < window[li].size(); ++j) {
      const Dist d = dij.dist[base[li] + j];
      if (d != kInfDist) table.put(dcr_key(li, j), d);
    }
  }
}

Dist CenterLandmarkTable::avoiding(Vertex c, Vertex r, EdgeId e, Vertex eu, Vertex ev) const {
  const BkContext& ctx = *ctx_;
  const RootedTree& rc = ctx.pool.existing(c);
  // Deeper endpoint of e in T_c, if e is one of its tree edges.
  Vertex child = kNoVertex;
  if (rc.tree.parent_edge(eu) == e) child = eu;
  if (rc.tree.parent_edge(ev) == e) child = ev;
  if (child == kNoVertex || !rc.anc.is_ancestor(child, r)) return rc.dist(r);
  const std::uint32_t pos_from_c = rc.dist(child) - 1;
  const auto cidx = static_cast<std::uint32_t>(ctx.center_index[c]);
  const auto li = static_cast<std::uint32_t>(dsr_->landmark_index(r));
  return dcr_[cidx].get_or(dcr_key(li, pos_from_c), kInfDist);
}

}  // namespace msrp
