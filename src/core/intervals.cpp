#include "core/intervals.hpp"

#include <algorithm>

namespace msrp {

SrDecomposition decompose_sr_path(const BkContext& ctx, std::uint32_t si,
                                  const std::vector<Vertex>& path,
                                  const SourceCenterTable& dsc,
                                  const CenterLandmarkTable& dcr) {
  MSRP_REQUIRE(path.size() >= 2, "decomposition needs a non-trivial path");
  const RootedTree& rs = *ctx.source_trees[si];
  const Vertex r = path.back();
  const auto depth = static_cast<std::uint32_t>(path.size() - 1);

  // ---- centers on the path ------------------------------------------------
  struct OnPath {
    std::uint32_t pos;
    Vertex v;
    std::uint32_t prio;
  };
  std::vector<OnPath> centers;
  for (std::uint32_t pos = 0; pos <= depth; ++pos) {
    if (ctx.center_index[path[pos]] >= 0) {
      centers.push_back({pos, path[pos], ctx.priority(path[pos])});
    }
  }
  // s and r are members of C_0, so the list brackets the whole path.
  MSRP_CHECK(!centers.empty() && centers.front().pos == 0 && centers.back().pos == depth,
             "sources and landmarks must be centers");

  // ---- staircase selection (Definition 15) --------------------------------
  std::uint32_t max_prio = 0;
  for (const auto& c : centers) max_prio = std::max(max_prio, c.prio);

  std::vector<std::uint32_t> selected;  // indices into `centers`
  // Ascending from s: next strictly higher priority until the maximum.
  {
    std::uint32_t cur = centers.front().prio;
    selected.push_back(0);
    for (std::uint32_t i = 1; i < centers.size() && cur < max_prio; ++i) {
      if (centers[i].prio > cur) {
        selected.push_back(i);
        cur = centers[i].prio;
      }
    }
  }
  // Descending side, scanned from r.
  {
    std::uint32_t cur = centers.back().prio;
    selected.push_back(static_cast<std::uint32_t>(centers.size() - 1));
    for (std::uint32_t i = static_cast<std::uint32_t>(centers.size() - 1);
         i-- > 0 && cur < max_prio;) {
      if (centers[i].prio > cur) {
        selected.push_back(i);
        cur = centers[i].prio;
      }
    }
  }
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()), selected.end());

  SrDecomposition out;
  for (const std::uint32_t i : selected) {
    out.boundary_pos.push_back(centers[i].pos);
    out.boundary_center.push_back(centers[i].v);
  }

  // ---- per-edge interval + MTC --------------------------------------------
  const auto num_intervals = static_cast<std::uint32_t>(out.boundary_pos.size() - 1);
  out.mtc.assign(depth, kInfDist);
  out.interval_of.assign(depth, 0);
  out.bottleneck_pos.assign(num_intervals, 0);
  std::vector<Dist> bottleneck_val(num_intervals, 0);

  std::uint32_t iv = 0;
  for (std::uint32_t pos = 0; pos < depth; ++pos) {
    while (iv + 1 < num_intervals && out.boundary_pos[iv + 1] <= pos) ++iv;
    out.interval_of[pos] = iv;
    const Vertex c1 = out.boundary_center[iv];
    const Vertex c2 = out.boundary_center[iv + 1];
    const Vertex child = path[pos + 1];
    const EdgeId eid = rs.tree.parent_edge(child);
    const auto [eu, ev] = ctx.g.endpoints(eid);

    const Dist term1 = sat_add(rs.dist(c1), dcr.avoiding(c1, r, eid, eu, ev));
    const Dist term2 = sat_add(dsc.avoiding(si, c2, child), ctx.pool.existing(c2).dist(r));
    const Dist m = std::min(term1, term2);
    out.mtc[pos] = m;

    // Bottleneck: maximal MTC in the interval. The interval's first edge
    // (pos == boundary_pos[iv]) initializes; later edges must beat it.
    if (pos == out.boundary_pos[iv] || m > bottleneck_val[iv]) {
      bottleneck_val[iv] = m;
      out.bottleneck_pos[iv] = pos;
    }
  }
  return out;
}

}  // namespace msrp
