// Per-thread scratch arena for oracle construction.
//
// One BuildScratch serves one worker thread for the whole build: the
// Section 8.1 / 8.2.2 / 8.3 phases construct one auxiliary graph and run
// one Dijkstra per item (source, center, or landmark respectively), and the
// MMG per-pair path runs one replacement_paths per (source, landmark). All
// of that temporary state — the aux graph's arc/CSR storage, the Dijkstra
// distance arrays (epoch-stamped, cleared in O(1)), the flattened window
// bookkeeping, the MMG candidate buffers — lives here and is reused across
// items, so the steady-state build performs no allocation in its hot loops.
//
// Each scratch also carries a private MsrpStats: parallel phase items
// accumulate counters locally and the engine merges the scratches after the
// build. All merged counters are sums, so the result is independent of how
// items were distributed over threads — part of the build's bit-identical
// determinism guarantee.
#pragma once

#include <algorithm>
#include <vector>

#include "core/result.hpp"
#include "rp/single_pair.hpp"
#include "spath/aux_graph.hpp"
#include "spath/dijkstra.hpp"

namespace msrp {

/// One window entry of a Section 8.1 / 8.2.2 auxiliary graph: a tree edge
/// near the top of a canonical path, with its deeper endpoint.
struct WindowEdge {
  EdgeId id;
  Vertex child;
};

struct BuildScratch {
  AuxGraph aux;          // reset() per item, capacity kept
  DijkstraScratch dij;   // epoch-stamped dist/parent arrays + bucket queue
  SinglePairScratch rp;  // MMG per-pair buffers

  // Flattened window lists: owner k's entries are
  // window[window_base[k] .. window_base[k+1]). Because the aux [owner, e]
  // nodes are allocated in the same flat order, the aux handle of entry i is
  // first_window_node + i.
  std::vector<WindowEdge> window;
  std::vector<std::uint32_t> window_base;
  std::vector<std::uint32_t> window_owner;  // entry -> owning landmark/center index

  // Window-entry indices sorted by edge id: entries sharing a failing edge
  // form contiguous runs, replacing the per-item unordered_map<EdgeId, ...>
  // the same-edge chain arcs used to be grouped with.
  std::vector<std::uint32_t> group_order;

  std::vector<Vertex> path;  // reusable canonical-path buffer

  /// Detour candidates surviving the prune-radius filter for one target
  /// (landmark or center): the Section 8 builders hoist the per-candidate
  /// tree lookup + distance + prune test out of their window-entry loops,
  /// which are a factor |window| hotter.
  struct DetourCand {
    std::uint32_t idx;       // dense landmark/center index
    Vertex v;                // the candidate vertex r' / c'
    Dist dist;               // d(r', r) resp. d(c', c)
    const RootedTree* tree;  // T_{r'} / T_{c'}
  };
  std::vector<DetourCand> eligible;

  /// Per-thread counters, merged into the engine's stats after each phase.
  MsrpStats stats;

  /// Folds this scratch's counters into `total` and resets them.
  void merge_stats_into(MsrpStats& total) {
    total.near_small_aux_nodes += stats.near_small_aux_nodes;
    total.near_small_aux_arcs += stats.near_small_aux_arcs;
    total.bk_source_center_aux_arcs += stats.bk_source_center_aux_arcs;
    total.bk_center_landmark_aux_arcs += stats.bk_center_landmark_aux_arcs;
    total.bk_bottleneck_aux_arcs += stats.bk_bottleneck_aux_arcs;
    stats = MsrpStats{};
  }
};

/// Groups the scratch's window entries by failing edge (sorting
/// group_order) and invokes fn(source_entry, target_entry) for every
/// ordered pair of distinct entries sharing an edge — the same-edge chain
/// arcs of the Section 8.1 / 8.2.2 auxiliary graphs. Owner lookups and the
/// detour guards stay with the caller; this replaces the per-item
/// unordered_map<EdgeId, ...> grouping both builders used to duplicate.
template <typename PairFn>
void for_each_same_edge_pair(BuildScratch& s, PairFn&& fn) {
  const auto num_window = static_cast<std::uint32_t>(s.window.size());
  s.group_order.resize(num_window);
  for (std::uint32_t i = 0; i < num_window; ++i) s.group_order[i] = i;
  std::sort(s.group_order.begin(), s.group_order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return s.window[a].id < s.window[b].id;
  });
  for (std::uint32_t lo = 0; lo < num_window;) {
    std::uint32_t hi = lo + 1;
    while (hi < num_window &&
           s.window[s.group_order[hi]].id == s.window[s.group_order[lo]].id) {
      ++hi;
    }
    for (std::uint32_t a = lo; a < hi; ++a) {
      for (std::uint32_t b = lo; b < hi; ++b) {
        if (b != a) fn(s.group_order[b], s.group_order[a]);
      }
    }
    lo = hi;
  }
}

/// The per-thread scratch set for one build: slot 0 belongs to the
/// orchestrating thread, slots 1..k to the pool helpers (ThreadPool's
/// parallel_for hands every participant a stable slot index).
class ScratchPool {
 public:
  explicit ScratchPool(std::size_t slots) : scratches_(slots) {}

  BuildScratch& slot(std::size_t i) { return scratches_[i]; }
  std::size_t size() const { return scratches_.size(); }

  void merge_stats_into(MsrpStats& total) {
    for (BuildScratch& s : scratches_) s.merge_stats_into(total);
  }

 private:
  std::vector<BuildScratch> scratches_;
};

}  // namespace msrp
