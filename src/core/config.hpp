// Tuning knobs for the MSRP algorithm and the parameters derived from them.
//
// The paper's analysis fixes three kinds of quantities (Definition 3,
// Section 5):
//   * sampling probabilities  p_k = 4 / 2^k * sqrt(sigma / n)   for L_k, C_k
//   * the near/far threshold  T   = sqrt(n / sigma) * log n     (edges closer
//     than 2T to t are "near"; k-far edges sit in [2^{k+1} T, 2^{k+2} T))
//   * auxiliary-graph windows W(k) = l * 2^k * T for a "suitably chosen
//     constant l" (Sections 8.1, 8.2.2)
//
// The O~ constants only matter asymptotically; at benchmark sizes the
// literal values (log n oversampling everywhere) make every edge "near" and
// inflate the landmark sets, so Config exposes them:
//   * near_scale scales T (default 2.0; paper_constants switches to log2 n)
//   * oversample multiplies every p_k (exactness insurance for tests)
//   * window_scale is l (default 6, enough for the triangle-inequality slack
//     Lemma 20's proof actually needs; the paper says ">= 2")
//   * exact forces T >= n: every edge is near and every replacement path is
//     "small", so the Section 7.1 Dijkstra alone answers everything
//     deterministically — the algorithm degenerates to an exact (slower)
//     mode used by tests as a randomness-free cross-check.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/distance.hpp"

namespace msrp {

class ThreadPool;  // util/thread_pool.hpp

/// How the table d(s, r, e) (source -> landmark replacement paths) is built.
enum class LandmarkRpMethod {
  /// One MMG single-pair run per (source, landmark): the "inefficient"
  /// O~(m sqrt(n sigma) * sigma) route of Section 3. Simple, deterministic
  /// given the trees, and the fastest at practical sizes.
  kMmgPerPair,
  /// The paper's Bernstein–Karger adaptation (Sections 8.1–8.3): centers,
  /// intervals, MTC and bottleneck auxiliary graphs, O~(m sqrt(n sigma) +
  /// sigma n^2) in theory. Exercised by tests and the EXP-8 ablation.
  kBkAuxGraphs,
};

struct Config {
  std::uint64_t seed = 0x5EEDBA5Eu;
  double oversample = 1.0;
  double near_scale = 2.0;
  double window_scale = 6.0;
  LandmarkRpMethod landmark_rp = LandmarkRpMethod::kMmgPerPair;
  bool paper_constants = false;
  bool exact = false;
  bool collect_phase_timings = true;

  // ---- execution knobs ----------------------------------------------------
  // These control HOW the build runs, never WHAT it computes: the parallel
  // build is bit-identical to the sequential one (every parallel item writes
  // item-private state; shared counters are commutative sums), so none of
  // these fields enter service::config_fingerprint().

  /// Worker threads for the build: 1 = sequential (default), 0 = hardware
  /// concurrency, k = a transient pool of k threads. Ignored when
  /// build_pool is set.
  unsigned build_threads = 1;

  /// External pool to run the build on instead of spawning one (the query
  /// service passes its serving pool, so cold-cache builds use the same
  /// workers as query shards). Not owned; must outlive the solve call.
  ThreadPool* build_pool = nullptr;
};

/// Parameters derived from (n, sigma, Config); one immutable instance per run.
class Params {
 public:
  Params(Vertex n, std::uint32_t sigma, const Config& cfg);

  /// Near/far threshold T: edges with |et| < 2T are near.
  Dist near_threshold() const { return t_; }

  /// Number of sampling levels K: k ranges over [0, K].
  std::uint32_t num_levels() const { return levels_; }

  /// Sampling probability for L_k / C_k.
  double sample_prob(std::uint32_t k) const;

  /// Window W(k): how many leading edges of a priority-k center's path get
  /// auxiliary [*, e] nodes in Sections 8.1 / 8.2.2.
  Dist window(std::uint32_t k) const;

  /// Far bucket of an edge at distance `et` >= 2T from t:
  /// k with 2^{k+1} T <= et < 2^{k+2} T, clamped to num_levels().
  std::uint32_t far_bucket(Dist et) const;

  /// Landmark search radius for bucket k (Algorithm 3): 2^k * T.
  Dist far_radius(std::uint32_t k) const;

  Vertex n() const { return n_; }
  std::uint32_t sigma() const { return sigma_; }

 private:
  Vertex n_;
  std::uint32_t sigma_;
  Dist t_;
  std::uint32_t levels_;
  double base_prob_;
  double window_scale_;
};

}  // namespace msrp
