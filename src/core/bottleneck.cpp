#include "core/bottleneck.hpp"

#include <algorithm>

#include "core/scratch.hpp"
#include "spath/dijkstra.hpp"

namespace msrp {
namespace {

/// path_to into a reused buffer (root first, target last).
void path_into(const BfsTree& t, Vertex target, std::vector<Vertex>& buf) {
  buf.clear();
  for (Vertex v = target; v != kNoVertex; v = t.parent(v)) buf.push_back(v);
  std::reverse(buf.begin(), buf.end());
}

}  // namespace

void fill_source_rows_bk(const BkContext& ctx, std::uint32_t si,
                         const SourceCenterTable& dsc, const CenterLandmarkTable& dcr,
                         LandmarkRpTable& dsr, BuildScratch& s) {
  const Graph& g = ctx.g;
  const RootedTree& rs = *ctx.source_trees[si];
  const NearSmall& ns = *ctx.near_small[si];
  const std::uint32_t num_l = dsr.num_landmarks();

  // ---- decompositions for every reachable landmark ------------------------
  std::vector<SrDecomposition> decomp(num_l);
  std::vector<bool> active(num_l, false);
  for (std::uint32_t li = 0; li < num_l; ++li) {
    const Vertex r = dsr.landmarks()[li];
    const Dist depth = rs.dist(r);
    if (depth == kInfDist || depth == 0) continue;
    path_into(rs.tree, r, s.path);
    decomp[li] = decompose_sr_path(ctx, si, s.path, dsc, dcr);
    active[li] = true;
  }

  // ---- auxiliary graph -----------------------------------------------------
  AuxGraph& aux = s.aux;
  aux.reset();
  const AuxNode src = aux.add_node();  // [s]
  const AuxNode first_r = aux.add_nodes(num_l);
  std::vector<AuxNode> base(num_l, 0);
  for (std::uint32_t li = 0; li < num_l; ++li) {
    base[li] = aux.add_nodes(active[li] ? decomp[li].num_intervals() : 0);
  }

  for (std::uint32_t li = 0; li < num_l; ++li) {
    const Vertex r = dsr.landmarks()[li];
    if (active[li]) aux.add_arc(src, first_r + li, rs.dist(r));
  }

  for (std::uint32_t li = 0; li < num_l; ++li) {
    if (!active[li]) continue;
    const Vertex r = dsr.landmarks()[li];
    const SrDecomposition& dec = decomp[li];
    path_into(rs.tree, r, s.path);
    // Landmark detour candidates for r: tree lookup, distance, and prune
    // test depend only on (r', r) — hoisted out of the interval loop.
    s.eligible.clear();
    for (std::uint32_t lj = 0; lj < num_l; ++lj) {
      if (lj == li || !active[lj]) continue;
      const Vertex r2 = dsr.landmarks()[lj];
      const RootedTree& rr2 = ctx.pool.existing(r2);
      const Dist drr = rr2.dist(r);
      const auto prio2 = static_cast<std::uint32_t>(ctx.landmarks.priority(r2));
      if (drr > ctx.prune_radius(prio2)) continue;
      s.eligible.push_back({lj, r2, drr, &rr2});
    }
    for (std::uint32_t iv = 0; iv < dec.num_intervals(); ++iv) {
      const AuxNode target = base[li] + iv;
      const std::uint32_t bpos = dec.bottleneck_pos[iv];
      // Identify B = B[s, r, iv].
      const Vertex child = s.path[bpos + 1];
      const EdgeId eid = rs.tree.parent_edge(child);
      const auto [eu, ev] = g.endpoints(eid);

      // Small replacement path value and the direct MTC term.
      const Dist small = ns.value(r, bpos);
      if (small != kInfDist) aux.add_arc(src, target, small);
      if (dec.mtc[bpos] != kInfDist) aux.add_arc(src, target, dec.mtc[bpos]);

      // Landmark detours.
      for (const auto& cand : s.eligible) {
        if (cand.tree->edge_on_path_to(eid, eu, ev, r)) continue;  // B on r'r
        if (!rs.anc.is_ancestor(child, cand.v)) {
          // B off sr': the canonical prefix + suffix path.
          aux.add_arc(first_r + cand.idx, target, cand.dist);
        } else {
          // B on sr' at the same position (same tree edge of T_s).
          const std::uint32_t j2 = decomp[cand.idx].interval_of[bpos];
          aux.add_arc(base[cand.idx] + j2, target, cand.dist);
          if (decomp[cand.idx].mtc[bpos] != kInfDist) {
            aux.add_arc(src, target, sat_add(decomp[cand.idx].mtc[bpos], cand.dist));
          }
        }
      }
    }
  }

  s.stats.bk_bottleneck_aux_arcs += aux.num_arcs();
  dijkstra(aux, src, s.dij);

  // ---- assemble d(s, r, e) per Lemma 24 ------------------------------------
  for (std::uint32_t li = 0; li < num_l; ++li) {
    if (!active[li]) continue;
    const Vertex r = dsr.landmarks()[li];
    const SrDecomposition& dec = decomp[li];
    auto& row = dsr.mutable_row(si, li);
    for (std::uint32_t pos = 0; pos < row.size(); ++pos) {
      const Dist via_bottleneck = s.dij.dist(base[li] + dec.interval_of[pos]);
      row[pos] = std::min({row[pos], dec.mtc[pos], via_bottleneck, ns.value(r, pos)});
    }
  }
}

}  // namespace msrp
