// Storage for the preprocessing table d(s, r, e): replacement distances from
// every source to every landmark, for every edge on the canonical sr path.
//
// Both construction methods fill this table:
//   * LandmarkRpMethod::kMmgPerPair — one MMG single-pair run per (s, r)
//     (Section 3's use of [21, 20, 22]);
//   * LandmarkRpMethod::kBkAuxGraphs — the Bernstein–Karger adaptation of
//     Section 8 (source_center.cpp, center_landmark.cpp, intervals.cpp,
//     bottleneck.cpp).
// The far/near assembly phases (Sections 6 and 7) only read it through
// avoiding(), which resolves an arbitrary on-tree edge in O(1).
#pragma once

#include <vector>

#include "core/landmarks.hpp"
#include "rp/single_pair.hpp"

namespace msrp {

class ThreadPool;   // util/thread_pool.hpp
class ScratchPool;  // core/scratch.hpp

class LandmarkRpTable {
 public:
  /// `source_trees[si]` must outlive the table.
  LandmarkRpTable(const Graph& g, std::vector<const RootedTree*> source_trees,
                  const std::vector<Vertex>& landmark_list);

  std::uint32_t num_landmarks() const { return static_cast<std::uint32_t>(landmarks_.size()); }
  const std::vector<Vertex>& landmarks() const { return landmarks_; }

  /// Dense index of landmark r; -1 if r is not a landmark.
  std::int32_t landmark_index(Vertex r) const { return lidx_[r]; }

  /// Row for (source index si, landmark index li): d(s, r, e_pos) indexed by
  /// the position of e on the canonical sr path.
  std::vector<Dist>& mutable_row(std::uint32_t si, std::uint32_t li) {
    return rows_[si * num_landmarks() + li];
  }
  const std::vector<Dist>& row(std::uint32_t si, std::uint32_t li) const {
    return rows_[si * num_landmarks() + li];
  }

  /// d(s, r, e) where e is the tree edge of T_s with deeper endpoint
  /// `e_child` at path position `pos` (= dist_s(e_child) - 1). Returns
  /// dist(s, r) when e is not on the canonical sr path.
  Dist avoiding(std::uint32_t si, std::uint32_t li, Vertex e_child, std::uint32_t pos) const {
    const RootedTree& rs = *source_trees_[si];
    const Vertex r = landmarks_[li];
    if (!rs.anc.is_ancestor(e_child, r)) return rs.dist(r);
    const auto& row = rows_[si * landmarks_.size() + li];
    MSRP_DCHECK(pos < row.size(), "path position out of range");
    return row[pos];
  }

  /// Fills every row with the MMG single-pair algorithm. When `pool` is
  /// given, the per-landmark BFS trees it holds are reused instead of
  /// re-running a BFS from each landmark per pair. When `exec` is given the
  /// (source, landmark) pairs run on it in parallel — each pair writes only
  /// its own row, so the table is bit-identical to the sequential fill;
  /// `scratches` (required with `exec`, one slot per participant) carries
  /// the per-thread MMG buffers.
  void fill_mmg(const Graph& g, TreePool* pool = nullptr, ThreadPool* exec = nullptr,
                ScratchPool* scratches = nullptr);

 private:
  std::vector<const RootedTree*> source_trees_;
  std::vector<Vertex> landmarks_;
  std::vector<std::int32_t> lidx_;
  std::vector<std::vector<Dist>> rows_;  // (si * |L| + li) -> per-position distances
};

}  // namespace msrp
