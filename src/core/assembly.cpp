#include "core/assembly.hpp"

#include <algorithm>

namespace msrp {
namespace {

struct PathEdge {
  EdgeId id;
  Vertex child;  // deeper endpoint (position pos means dist(child) == pos + 1)
};

/// Everything the inner candidate loops need about one landmark r of a
/// level, precomputed once per (source, target-range) call: the tree T_r,
/// r's DFS stamps in T_s (so the per-candidate "is e on the sr path?" test
/// is two integer compares against the hoisted stamps of e's child), the
/// canonical |sr|, and the raw d(s, r, *) row.
struct LevelItem {
  const RootedTree* tree;        // T_r
  std::uint32_t tin_r, tout_r;   // r's stamps in T_s; tin_r == 0 never matches
  Dist dist_sr;                  // d(s, r); kInfDist if unreachable
  const Dist* row;               // dsr row (si, li), indexed by path position
};

/// Level members filtered by distance to the current target.
struct Filtered {
  const LevelItem* item;
  Dist drt;  // d(r, t)
};

}  // namespace

void assemble_source_rows(const Graph& g, std::uint32_t si, const RootedTree& rs,
                          const LevelSets& landmarks, const TreePool& pool,
                          const LandmarkRpTable& dsr, const NearSmall& near_small,
                          const Params& params, MsrpResult& result, Vertex t_begin,
                          Vertex t_end) {
  const BfsTree& ts = rs.tree;
  const Dist t_thresh = params.near_threshold();

  // Hoist the per-landmark invariants out of the per-target loops. If r is
  // unreachable from s its row is empty and must never be read: tin_r = 0
  // can only match a child with tin 0, i.e. the root — which is never the
  // deeper endpoint of a path edge. (r == s lands on the same sentinel and
  // the same correct answer: no edge of the st path lies on the empty ss
  // path, so the candidate falls back to dist_sr = 0.)
  std::vector<std::vector<LevelItem>> level_items(params.num_levels() + 1);
  for (std::uint32_t k = 0; k <= params.num_levels(); ++k) {
    level_items[k].reserve(landmarks.level(k).size());
    for (const Vertex r : landmarks.level(k)) {
      const bool reach = ts.reachable(r);
      const auto li = static_cast<std::uint32_t>(dsr.landmark_index(r));
      level_items[k].push_back(LevelItem{
          &pool.existing(r),
          reach ? rs.anc.tin(r) : 0,
          reach ? rs.anc.tout(r) : 0,
          ts.dist(r),
          dsr.row(si, li).data(),
      });
    }
  }

  std::vector<PathEdge> path_edges;  // reused per target
  std::vector<Filtered> items;       // reused per target / bucket
  for (Vertex t = t_begin; t < t_end; ++t) {
    const Dist depth = ts.dist(t);
    if (depth == kInfDist || depth == 0) continue;
    auto row = result.mutable_row(si, t);

    // Path edges by position, via one parent walk.
    path_edges.resize(depth);
    {
      Vertex v = t;
      for (std::uint32_t pos = depth; pos-- > 0;) {
        path_edges[pos] = {ts.parent_edge(v), v};
        v = ts.parent(v);
      }
    }

    const std::uint32_t first_near = near_small.first_near_pos(t);

    // ---- near edges: small values + Algorithm 4 over L_0 ----------------
    if (first_near < depth) {
      // Filter L_0 once per t: Lemma 12's witness satisfies d(r, t) <= T.
      items.clear();
      for (const LevelItem& it : level_items[0]) {
        const Dist drt = it.tree->dist(t);
        if (drt <= t_thresh) items.push_back({&it, drt});
      }
      for (std::uint32_t pos = first_near; pos < depth; ++pos) {
        Dist best = near_small.value(t, pos);
        const auto [eid, child] = path_edges[pos];
        const auto [eu, ev] = g.endpoints(eid);
        const std::uint32_t tin_c = rs.anc.tin(child);
        const std::uint32_t tout_c = rs.anc.tout(child);
        for (const auto& [it, drt] : items) {
          // Algorithm 4's guard: e must avoid the canonical rt path.
          if (it->tree->edge_on_path_to(eid, eu, ev, t)) continue;
          // d(s, r, e): the stored row cell when e lies on the canonical sr
          // path (ancestor test against the hoisted stamps), |sr| otherwise.
          const Dist avoid = (tin_c <= it->tin_r && it->tout_r <= tout_c)
                                 ? it->row[pos]
                                 : it->dist_sr;
          best = std::min(best, sat_add(avoid, drt));
        }
        row[pos] = std::min(row[pos], best);
      }
    }

    // ---- far edges: Algorithm 3, bucketed by distance from t ------------
    // Edge at position pos has |et| = depth - pos - 1; far means >= 2T.
    // Bucket k covers |et| in [2^{k+1} T, 2^{k+2} T).
    if (first_near > 0) {
      std::int64_t pos = static_cast<std::int64_t>(first_near) - 1;
      for (std::uint32_t k = 0; k <= params.num_levels() && pos >= 0; ++k) {
        const Dist radius = params.far_radius(k);
        // Bucket k's positions: |et| < 2^{k+2} T  <=>  pos > depth - 1 - 2^{k+2} T.
        // The top bucket absorbs everything beyond the sampled levels.
        const std::uint64_t upper_et =
            (k == params.num_levels()) ? std::uint64_t{kInfDist} : std::uint64_t{4} * radius;
        items.clear();
        bool filtered = false;
        for (; pos >= 0; --pos) {
          const Dist et = depth - static_cast<Dist>(pos) - 1;
          if (et >= upper_et) break;  // next bucket
          if (!filtered) {
            filtered = true;
            for (const LevelItem& it : level_items[k]) {
              const Dist drt = it.tree->dist(t);
              if (drt <= radius) items.push_back({&it, drt});
            }
          }
          const Vertex child = path_edges[pos].child;
          const std::uint32_t tin_c = rs.anc.tin(child);
          const std::uint32_t tout_c = rs.anc.tout(child);
          Dist best = row[pos];
          for (const auto& [it, drt] : items) {
            // No on-path check needed: d(r, t) <= 2^k T < 2^{k+1} T <= |et|,
            // so no shortest rt path can cross e (Section 6).
            const Dist avoid = (tin_c <= it->tin_r && it->tout_r <= tout_c)
                                   ? it->row[static_cast<std::uint32_t>(pos)]
                                   : it->dist_sr;
            best = std::min(best, sat_add(avoid, drt));
          }
          row[pos] = best;
        }
      }
    }
  }
}

}  // namespace msrp
