#include "core/assembly.hpp"

#include <algorithm>

namespace msrp {
namespace {

struct PathEdge {
  EdgeId id;
  Vertex child;  // deeper endpoint (position pos means dist(child) == pos + 1)
};

/// Landmark candidates for one (t, level) pair: members of L_k whose true
/// distance to t is within the Algorithm 3 / 4 radius.
struct FilteredLevel {
  std::vector<std::pair<std::uint32_t, Dist>> items;  // (landmark index, d(r, t))
};

}  // namespace

void assemble_source_rows(const Graph& g, std::uint32_t si, const RootedTree& rs,
                          const LevelSets& landmarks, TreePool& pool,
                          const LandmarkRpTable& dsr, const NearSmall& near_small,
                          const Params& params, MsrpResult& result) {
  const Vertex n = g.num_vertices();
  const BfsTree& ts = rs.tree;
  const Dist t_thresh = params.near_threshold();

  std::vector<PathEdge> path_edges;  // reused per target
  for (Vertex t = 0; t < n; ++t) {
    const Dist depth = ts.dist(t);
    if (depth == kInfDist || depth == 0) continue;
    auto row = result.mutable_row(si, t);

    // Path edges by position, via one parent walk.
    path_edges.resize(depth);
    {
      Vertex v = t;
      for (std::uint32_t pos = depth; pos-- > 0;) {
        path_edges[pos] = {ts.parent_edge(v), v};
        v = ts.parent(v);
      }
    }

    const std::uint32_t first_near = near_small.first_near_pos(t);

    // ---- near edges: small values + Algorithm 4 over L_0 ----------------
    if (first_near < depth) {
      // Filter L_0 once per t: Lemma 12's witness satisfies d(r, t) <= T.
      FilteredLevel f0;
      for (const Vertex r : landmarks.level(0)) {
        const Dist drt = pool.existing(r).dist(t);
        if (drt <= t_thresh) {
          f0.items.emplace_back(static_cast<std::uint32_t>(dsr.landmark_index(r)), drt);
        }
      }
      for (std::uint32_t pos = first_near; pos < depth; ++pos) {
        Dist best = near_small.value(t, pos);
        const auto [eid, child] = path_edges[pos];
        const auto [eu, ev] = g.endpoints(eid);
        for (const auto& [li, drt] : f0.items) {
          const Vertex r = dsr.landmarks()[li];
          // Algorithm 4's guard: e must avoid the canonical rt path.
          if (pool.existing(r).edge_on_path_to(eid, eu, ev, t)) continue;
          best = std::min(best, sat_add(dsr.avoiding(si, li, child, pos), drt));
        }
        row[pos] = std::min(row[pos], best);
      }
    }

    // ---- far edges: Algorithm 3, bucketed by distance from t ------------
    // Edge at position pos has |et| = depth - pos - 1; far means >= 2T.
    // Bucket k covers |et| in [2^{k+1} T, 2^{k+2} T).
    if (first_near > 0) {
      std::int64_t pos = static_cast<std::int64_t>(first_near) - 1;
      for (std::uint32_t k = 0; k <= params.num_levels() && pos >= 0; ++k) {
        const Dist radius = params.far_radius(k);
        // Bucket k's positions: |et| < 2^{k+2} T  <=>  pos > depth - 1 - 2^{k+2} T.
        // The top bucket absorbs everything beyond the sampled levels.
        const std::uint64_t upper_et =
            (k == params.num_levels()) ? std::uint64_t{kInfDist} : std::uint64_t{4} * radius;
        FilteredLevel fk;
        bool filtered = false;
        for (; pos >= 0; --pos) {
          const Dist et = depth - static_cast<Dist>(pos) - 1;
          if (et >= upper_et) break;  // next bucket
          if (!filtered) {
            filtered = true;
            for (const Vertex r : landmarks.level(k)) {
              const Dist drt = pool.existing(r).dist(t);
              if (drt <= radius) {
                fk.items.emplace_back(static_cast<std::uint32_t>(dsr.landmark_index(r)), drt);
              }
            }
          }
          const auto [eid, child] = path_edges[pos];
          (void)eid;
          Dist best = row[pos];
          for (const auto& [li, drt] : fk.items) {
            // No on-path check needed: d(r, t) <= 2^k T < 2^{k+1} T <= |et|,
            // so no shortest rt path can cross e (Section 6).
            best = std::min(best, sat_add(dsr.avoiding(si, li, child, pos), drt));
          }
          row[pos] = best;
        }
      }
    }
  }
}

}  // namespace msrp
