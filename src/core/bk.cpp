#include "core/bk.hpp"

#include "core/bottleneck.hpp"
#include "core/center_landmark.hpp"
#include "core/intervals.hpp"
#include "core/scratch.hpp"
#include "core/source_center.hpp"
#include "util/thread_pool.hpp"

namespace msrp {

BkContext::BkContext(const Graph& g_in, const Params& params_in, TreePool& pool_in,
                     const LevelSets& landmarks_in, const LevelSets& centers_in,
                     std::vector<const RootedTree*> sources,
                     std::vector<const NearSmall*> near_small_in)
    : g(g_in),
      params(params_in),
      pool(pool_in),
      landmarks(landmarks_in),
      centers(centers_in),
      source_trees(std::move(sources)),
      near_small(std::move(near_small_in)) {
  center_list = centers.members();
  center_index.assign(g.num_vertices(), -1);
  for (std::uint32_t i = 0; i < center_list.size(); ++i) {
    center_index[center_list[i]] = static_cast<std::int32_t>(i);
  }
  MSRP_REQUIRE(center_list.size() < (1u << 24), "too many centers for key packing");
}

void fill_landmark_rp_bk(BkContext& ctx, LandmarkRpTable& dsr, MsrpStats& stats,
                         PhaseTimers& timers, ThreadPool* pool, ScratchPool& scratches) {
  const auto num_sources = static_cast<std::uint32_t>(ctx.source_trees.size());

  // Every phase below fans its item loop out with maybe_parallel_for: items
  // write item-private tables/rows only, so the dynamic item-to-thread
  // assignment cannot change any value — only the per-thread counters,
  // which are merged (summed) deterministically after the build.

  // 8.1 — source -> center tables.
  SourceCenterTable dsc(ctx);
  {
    auto t = timers.scope("bk_source_center");
    maybe_parallel_for(pool, num_sources, [&](std::size_t si, std::size_t slot) {
      dsc.build_source(static_cast<std::uint32_t>(si), scratches.slot(slot));
    });
  }

  // 8.2.1 — enumerate small replacement paths. The enumeration (path
  // reconstruction per near edge, the expensive half) runs per source in
  // parallel; the min-merge into the shared per-center tables is serial and
  // order-independent (min is commutative).
  CenterLandmarkTable dcr(ctx, dsr);
  {
    auto t = timers.scope("bk_small_enumeration");
    if (pool == nullptr || pool->size() <= 1) {
      // Sequential: stream one source at a time so peak memory stays at a
      // single source's enumeration, as before the collect/merge split.
      std::vector<CenterLandmarkTable::SmallVia> items;
      for (std::uint32_t si = 0; si < num_sources; ++si) {
        dcr.collect_small_via(si, items);
        dcr.merge_small_via(items);
      }
    } else {
      // Parallel: all sources' enumerations coexist until merged (the
      // price of the fan-out); each is freed the moment it lands.
      std::vector<std::vector<CenterLandmarkTable::SmallVia>> collected(num_sources);
      maybe_parallel_for(pool, num_sources, [&](std::size_t si, std::size_t) {
        dcr.collect_small_via(static_cast<std::uint32_t>(si), collected[si]);
      });
      for (auto& items : collected) {
        dcr.merge_small_via(items);
        items = {};
      }
    }
  }

  // 8.2.2 — center -> landmark tables, one auxiliary Dijkstra per center.
  {
    auto t = timers.scope("bk_center_landmark");
    maybe_parallel_for(pool, ctx.num_centers(), [&](std::size_t ci, std::size_t slot) {
      dcr.build_center(static_cast<std::uint32_t>(ci), scratches.slot(slot));
    });
  }

  // 8.3 — intervals, MTC, bottlenecks; writes the final d(s, r, e) rows.
  {
    auto t = timers.scope("bk_bottleneck");
    maybe_parallel_for(pool, num_sources, [&](std::size_t si, std::size_t slot) {
      fill_source_rows_bk(ctx, static_cast<std::uint32_t>(si), dsc, dcr, dsr,
                          scratches.slot(slot));
    });
  }

  scratches.merge_stats_into(stats);
}

}  // namespace msrp
