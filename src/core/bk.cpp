#include "core/bk.hpp"

#include "core/bottleneck.hpp"
#include "core/center_landmark.hpp"
#include "core/intervals.hpp"
#include "core/source_center.hpp"

namespace msrp {

BkContext::BkContext(const Graph& g_in, const Params& params_in, TreePool& pool_in,
                     const LevelSets& landmarks_in, const LevelSets& centers_in,
                     std::vector<const RootedTree*> sources,
                     std::vector<const NearSmall*> near_small_in)
    : g(g_in),
      params(params_in),
      pool(pool_in),
      landmarks(landmarks_in),
      centers(centers_in),
      source_trees(std::move(sources)),
      near_small(std::move(near_small_in)) {
  center_list = centers.members();
  center_index.assign(g.num_vertices(), -1);
  for (std::uint32_t i = 0; i < center_list.size(); ++i) {
    center_index[center_list[i]] = static_cast<std::int32_t>(i);
  }
  MSRP_REQUIRE(center_list.size() < (1u << 24), "too many centers for key packing");
}

void fill_landmark_rp_bk(BkContext& ctx, LandmarkRpTable& dsr, MsrpStats& stats,
                         PhaseTimers& timers) {
  const auto num_sources = static_cast<std::uint32_t>(ctx.source_trees.size());

  // 8.1 — source -> center tables.
  SourceCenterTable dsc(ctx);
  {
    auto t = timers.scope("bk_source_center");
    for (std::uint32_t si = 0; si < num_sources; ++si) dsc.build_source(si, stats);
  }

  // 8.2.1 — enumerate small replacement paths; 8.2.2 — center -> landmark.
  CenterLandmarkTable dcr(ctx, dsr);
  {
    auto t = timers.scope("bk_small_enumeration");
    for (std::uint32_t si = 0; si < num_sources; ++si) dcr.accumulate_small_via(si);
  }
  {
    auto t = timers.scope("bk_center_landmark");
    for (std::uint32_t ci = 0; ci < ctx.num_centers(); ++ci) dcr.build_center(ci, stats);
  }

  // 8.3 — intervals, MTC, bottlenecks; writes the final d(s, r, e) rows.
  {
    auto t = timers.scope("bk_bottleneck");
    for (std::uint32_t si = 0; si < num_sources; ++si) {
      fill_source_rows_bk(ctx, si, dsc, dcr, dsr, stats);
    }
  }
}

}  // namespace msrp
