#include "core/near_small.hpp"

#include <algorithm>

namespace msrp {

NearSmall::NearSmall(const Graph& g, const RootedTree& rs, const Params& params)
    : g_(&g), rs_(&rs) {
  const Vertex n = g.num_vertices();
  const BfsTree& ts = rs.tree;
  const Dist near_span = sat_add(params.near_threshold(), params.near_threshold());

  // Near edges of t are the last min(2T, dist(t)) edges of its path: e at
  // position i has |et| = dist(t) - i - 1 < 2T  <=>  i >= dist(t) - 2T.
  first_pos_.assign(n, 0);
  near_edges_.resize(n);
  base_.assign(n, 0);

  // Nodes [v] use handles 0..n-1; [t, e] handles follow.
  aux_.add_nodes(n);
  for (Vertex t = 0; t < n; ++t) {
    const Dist d = ts.dist(t);
    if (d == kInfDist || d == 0) {
      first_pos_[t] = (d == kInfDist) ? 0 : d;
      continue;
    }
    first_pos_[t] = (d > near_span) ? d - near_span : 0;
    const std::uint32_t count = d - first_pos_[t];
    base_[t] = aux_.add_nodes(count);
    node_vertex_.resize(node_vertex_.size() + count, t);
    // Walk up from t: parent edges give positions d-1, d-2, ...
    auto& edges = near_edges_[t];
    edges.resize(count);
    Vertex v = t;
    for (std::uint32_t pos = d; pos-- > first_pos_[t];) {
      edges[pos - first_pos_[t]] = {ts.parent_edge(v), v};
      v = ts.parent(v);
    }
  }

  // [s] -> [v] with the canonical distance. [v] carries no avoidance
  // obligation; the guards sit on the arcs into [t, e] nodes.
  const Vertex s = ts.root();
  for (Vertex v = 0; v < n; ++v) {
    if (v != s && ts.reachable(v)) aux_.add_arc(s, v, ts.dist(v));
  }

  // For every adjacency (v, t) and every near edge e of t:
  //   [v]    -> [t, e]  if e not on the canonical sv path and (v,t) != e
  //   [v, e] -> [t, e]  if [v, e] exists and (v,t) != e
  for (Vertex t = 0; t < n; ++t) {
    if (!ts.reachable(t)) continue;
    const auto& edges = near_edges_[t];
    for (std::uint32_t j = 0; j < edges.size(); ++j) {
      const auto [eid, child] = edges[j];
      const AuxNode target = base_[t] + j;
      const std::uint32_t pos = first_pos_[t] + j;
      for (const Arc& a : g.neighbors(t)) {
        const Vertex v = a.to;
        if (a.edge == eid || !ts.reachable(v)) continue;  // never traverse e itself
        if (!rs.anc.is_ancestor(child, v)) {
          aux_.add_arc(v, target, 1);
        } else if (is_near(v, pos)) {
          // e is on the sv path (ancestor check) at the same position; the
          // [v, e] node exists iff that position is near for v.
          aux_.add_arc(handle(v, pos), target, 1);
        }
      }
    }
  }

  dij_ = dijkstra(aux_, s);
}

Dist NearSmall::value(Vertex t, std::uint32_t pos) const {
  MSRP_DCHECK(t < first_pos_.size(), "vertex out of range");
  if (!is_near(t, pos)) return kInfDist;
  return dij_.dist[handle(t, pos)];
}

std::pair<EdgeId, Vertex> NearSmall::near_edge(Vertex t, std::uint32_t pos) const {
  MSRP_REQUIRE(is_near(t, pos), "position is not a near edge of t");
  return near_edges_[t][pos - first_pos_[t]];
}

std::vector<Vertex> NearSmall::reconstruct_path(Vertex t, std::uint32_t pos) const {
  if (value(t, pos) == kInfDist) return {};
  const Vertex n = g_->num_vertices();
  // Aux path: [s] -> [v] -> chain of [t', e] nodes. Each [t', e] contributes
  // t'; the leading [v] hop expands to the canonical s..v path.
  std::vector<Vertex> tail;
  AuxNode node = handle(t, pos);
  while (node >= n) {
    tail.push_back(node_vertex_[node - n]);
    node = dij_.parent[node];
  }
  // `node` is now a [v] node (or [s] itself).
  std::vector<Vertex> path = rs_->tree.path_to(static_cast<Vertex>(node));
  path.insert(path.end(), tail.rbegin(), tail.rend());
  return path;
}

}  // namespace msrp
