#include "core/serialize.hpp"

#include <ostream>
#include <sstream>
#include <string>

namespace msrp {
namespace {

constexpr const char* kHeader = "msrp-result 1";

void write_dist(std::ostream& os, Dist d) {
  if (d == kInfDist) {
    os << "inf";
  } else {
    os << d;
  }
}

Dist parse_dist(const std::string& tok) {
  if (tok == "inf") return kInfDist;
  return static_cast<Dist>(std::stoul(tok));
}

}  // namespace

void write_result(std::ostream& os, const MsrpResult& res) {
  os << kHeader << '\n';
  const Vertex n = res.tree(res.sources().front()).num_vertices();
  os << n << ' ' << res.sources().size() << '\n';
  for (const Vertex s : res.sources()) {
    os << "source " << s << '\n';
    for (Vertex t = 0; t < n; ++t) {
      const Dist d = res.shortest(s, t);
      if (d == kInfDist || t == s) continue;
      os << t << ' ' << d;
      for (const Dist rd : res.row(s, t)) {
        os << ' ';
        write_dist(os, rd);
      }
      os << '\n';
    }
  }
}

SerializedResult SerializedResult::read(std::istream& is) {
  SerializedResult out;
  std::string line;
  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };

  MSRP_REQUIRE(next_line() && line == kHeader, "serialized result: bad header");
  MSRP_REQUIRE(next_line(), "serialized result: missing dimensions");
  {
    std::istringstream dims(line);
    std::uint64_t n = 0, sigma = 0;
    MSRP_REQUIRE(static_cast<bool>(dims >> n >> sigma), "serialized result: bad dimensions");
    out.n_ = static_cast<Vertex>(n);
    out.sources_.reserve(sigma);
  }

  std::int32_t current = -1;
  while (next_line()) {
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "source") {
      std::uint64_t s = 0;
      MSRP_REQUIRE(static_cast<bool>(ls >> s) && s < out.n_, "serialized result: bad source");
      out.sources_.push_back(static_cast<Vertex>(s));
      out.shortest_.emplace_back(out.n_, kInfDist);
      out.rows_.emplace_back(out.n_);
      current = static_cast<std::int32_t>(out.sources_.size() - 1);
      out.shortest_[current][out.sources_.back()] = 0;
      continue;
    }
    MSRP_REQUIRE(current >= 0, "serialized result: row before any source");
    const auto t = static_cast<Vertex>(std::stoul(first));
    MSRP_REQUIRE(t < out.n_, "serialized result: target out of range");
    std::string tok;
    MSRP_REQUIRE(static_cast<bool>(ls >> tok), "serialized result: missing distance");
    const Dist d = parse_dist(tok);
    out.shortest_[current][t] = d;
    auto& row = out.rows_[current][t];
    while (ls >> tok) row.push_back(parse_dist(tok));
    MSRP_REQUIRE(d == kInfDist || row.size() == d,
                 "serialized result: row length disagrees with distance");
  }
  return out;
}

std::uint32_t SerializedResult::source_index(Vertex s) const {
  for (std::uint32_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i] == s) return i;
  }
  throw std::invalid_argument("not a source in the serialized result");
}

Dist SerializedResult::shortest(Vertex s, Vertex t) const {
  MSRP_REQUIRE(t < n_, "target out of range");
  return shortest_[source_index(s)][t];
}

std::span<const Dist> SerializedResult::row(Vertex s, Vertex t) const {
  MSRP_REQUIRE(t < n_, "target out of range");
  const auto& r = rows_[source_index(s)][t];
  return {r.data(), r.size()};
}

}  // namespace msrp
