// Query object returned by the MSRP solver.
//
// Holds, for each source s and each vertex t reachable from s, the array of
// replacement distances d(s, t, e_i) indexed by the position i of the failing
// edge e_i on the canonical s->t path (the paper's output: "length of all
// replacement paths from s to t where s in S and t in V").
//
// Rows are stored flat per source (offset table indexed by t), which is the
// Theta(sigma * n^2)-word output representation the second term of
// Theorem 26's running time pays for. avoiding(s, t, e) answers for
// arbitrary edge ids in O(1) via the source tree's ancestor index.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/landmarks.hpp"
#include "util/timer.hpp"

namespace msrp {

/// Sizes and counters recorded during a run (EXP-4 / EXP-8 use these).
struct MsrpStats {
  std::size_t num_landmarks = 0;
  std::size_t num_centers = 0;
  std::size_t num_trees = 0;
  std::vector<std::size_t> landmarks_per_level;
  std::size_t near_small_aux_nodes = 0;
  std::size_t near_small_aux_arcs = 0;
  std::size_t bk_source_center_aux_arcs = 0;
  std::size_t bk_center_landmark_aux_arcs = 0;
  std::size_t bk_bottleneck_aux_arcs = 0;
  std::map<std::string, double> phase_seconds;
};

class MsrpResult {
 public:
  MsrpResult(const Graph& g, std::vector<Vertex> sources);

  const std::vector<Vertex>& sources() const { return sources_; }
  std::uint32_t num_sources() const { return static_cast<std::uint32_t>(sources_.size()); }

  /// The graph the result was solved on (outlives the result by contract).
  const Graph& graph() const { return *g_; }

  /// Index of source vertex s; throws if s is not a source.
  std::uint32_t source_index(Vertex s) const;

  /// Canonical shortest-path distance d(s, t).
  Dist shortest(Vertex s, Vertex t) const { return tree(s).dist(t); }

  /// Replacement distances for every edge on the canonical s->t path, in
  /// path order. Empty if t is unreachable from s or t == s.
  std::span<const Dist> row(Vertex s, Vertex t) const;

  /// d(s, t, e) for an arbitrary edge id: the stored row value when e lies on
  /// the canonical s->t path, d(s, t) otherwise (deleting an off-path edge
  /// leaves the canonical path intact). kInfDist if t is unreachable.
  Dist avoiding(Vertex s, Vertex t, EdgeId e) const;

  /// The canonical tree of s (also exposes the st paths the rows refer to).
  const BfsTree& tree(Vertex s) const { return rooted(s).tree; }
  const RootedTree& rooted(Vertex s) const;

  MsrpStats& stats() { return stats_; }
  const MsrpStats& stats() const { return stats_; }

  // ----- bulk read access (service snapshots copy rows wholesale) ---------

  /// All rows of source index si as one flat array; row_offsets(si) indexes
  /// it: row (si, t) occupies [offsets[t], offsets[t+1]).
  std::span<const Dist> raw_rows(std::uint32_t si) const {
    return {rows_[si].data(), rows_[si].size()};
  }

  /// n+1 prefix sums into raw_rows(si), indexed by target vertex.
  std::span<const std::uint64_t> row_offsets(std::uint32_t si) const {
    return {row_offset_[si].data(), row_offset_[si].size()};
  }

  // ----- engine-facing mutation (rows are written once, then read-only) ----

  /// Mutable access to the row of (source index si, target t).
  std::span<Dist> mutable_row(std::uint32_t si, Vertex t);

  /// Lowers row[pos] of (si, t) to `value` if smaller.
  void relax(std::uint32_t si, Vertex t, std::uint32_t pos, Dist value) {
    Dist& cell = rows_[si][row_offset_[si][t] + pos];
    if (value < cell) cell = value;
  }

 private:
  const Graph* g_;
  std::vector<Vertex> sources_;
  std::vector<std::int32_t> source_index_;          // vertex -> source index or -1
  std::vector<const RootedTree*> source_trees_;     // owned by the engine's pool
  std::vector<std::unique_ptr<RootedTree>> owned_;  // keeps trees alive
  std::vector<std::vector<std::uint64_t>> row_offset_;
  std::vector<std::vector<Dist>> rows_;
  MsrpStats stats_;

  friend class MsrpEngine;
};

}  // namespace msrp
