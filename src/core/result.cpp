#include "core/result.hpp"

#include <algorithm>

namespace msrp {

MsrpResult::MsrpResult(const Graph& g, std::vector<Vertex> sources)
    : g_(&g), sources_(std::move(sources)) {
  MSRP_REQUIRE(!sources_.empty(), "need at least one source");
  const Vertex n = g.num_vertices();
  source_index_.assign(n, -1);
  for (std::uint32_t i = 0; i < sources_.size(); ++i) {
    const Vertex s = sources_[i];
    MSRP_REQUIRE(s < n, "source out of range");
    MSRP_REQUIRE(source_index_[s] < 0, "duplicate source");
    source_index_[s] = static_cast<std::int32_t>(i);
  }

  source_trees_.resize(sources_.size(), nullptr);
  row_offset_.resize(sources_.size());
  rows_.resize(sources_.size());
  for (std::uint32_t si = 0; si < sources_.size(); ++si) {
    auto owned = std::make_unique<RootedTree>(g, sources_[si]);
    source_trees_[si] = owned.get();
    owned_.push_back(std::move(owned));
    const BfsTree& t = source_trees_[si]->tree;
    auto& off = row_offset_[si];
    off.assign(static_cast<std::size_t>(n) + 1, 0);
    for (Vertex v = 0; v < n; ++v) {
      const Dist d = t.dist(v);
      off[v + 1] = off[v] + (d == kInfDist ? 0 : d);
    }
    rows_[si].assign(off[n], kInfDist);
  }
}

std::uint32_t MsrpResult::source_index(Vertex s) const {
  MSRP_REQUIRE(s < source_index_.size() && source_index_[s] >= 0, "not a source");
  return static_cast<std::uint32_t>(source_index_[s]);
}

const RootedTree& MsrpResult::rooted(Vertex s) const {
  return *source_trees_[source_index(s)];
}

std::span<const Dist> MsrpResult::row(Vertex s, Vertex t) const {
  const std::uint32_t si = source_index(s);
  MSRP_REQUIRE(t < g_->num_vertices(), "target out of range");
  const auto& off = row_offset_[si];
  return {rows_[si].data() + off[t], rows_[si].data() + off[t + 1]};
}

std::span<Dist> MsrpResult::mutable_row(std::uint32_t si, Vertex t) {
  const auto& off = row_offset_[si];
  return {rows_[si].data() + off[t], rows_[si].data() + off[t + 1]};
}

Dist MsrpResult::avoiding(Vertex s, Vertex t, EdgeId e) const {
  const std::uint32_t si = source_index(s);
  MSRP_REQUIRE(t < g_->num_vertices(), "target out of range");
  MSRP_REQUIRE(e < g_->num_edges(), "edge out of range");
  const RootedTree& rt = *source_trees_[si];
  if (!rt.tree.reachable(t)) return kInfDist;
  const auto [u, v] = g_->endpoints(e);
  // e lies on the canonical s->t path iff it is a tree edge whose deeper
  // endpoint is an ancestor of t; its row position is dist(child) - 1.
  Vertex child = kNoVertex;
  if (rt.tree.parent_edge(u) == e) child = u;
  if (rt.tree.parent_edge(v) == e) child = v;
  if (child == kNoVertex || !rt.anc.is_ancestor(child, t)) return rt.tree.dist(t);
  const std::uint32_t pos = rt.tree.dist(child) - 1;
  const auto& off = row_offset_[si];
  return rows_[si][off[t] + pos];
}

}  // namespace msrp
