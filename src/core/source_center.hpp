// Section 8.1: replacement paths from each source to each center.
//
// For source s, an auxiliary digraph is built with a node [c] per center and
// nodes [c, e] for the first W(priority(c)) edges of the canonical cs path
// (counted from c). Arc guards ensure every auxiliary path corresponds to a
// genuine e-avoiding walk:
//   [s]  -> [c]     weight |sc|                      (canonical prefix)
//   [s]  -> [c, e]  weight w[c, e]                   (Section 7.1 small RP)
//   [c'] -> [c, e]  weight |c'c|   if e not on sc' and not on c'c
//   [c',e]->[c, e]  weight |c'c|   if e not on c'c   (same failing edge e)
// Dijkstra from [s] then yields d(s, c, e) = dist([c, e]) (Lemma 20).
//
// Candidate arcs from [c'] are pruned to |c'c| <= 2 * 2^priority(c') * T:
// the witnesses Lemma 19 guarantees all sit within half that radius, so the
// prune never discards the path the correctness proof relies on.
#pragma once

#include "core/bk.hpp"
#include "util/cuckoo_hash.hpp"

namespace msrp {

struct BuildScratch;  // core/scratch.hpp

class SourceCenterTable {
 public:
  explicit SourceCenterTable(const BkContext& ctx);

  /// Builds the auxiliary graph for source `si` and runs Dijkstra.
  /// Independent across sources; all temporaries live in `scratch`
  /// (counters included).
  void build_source(std::uint32_t si, BuildScratch& scratch);

  /// d(s, c, e) for the tree edge of T_s with deeper endpoint `e_child`.
  /// Returns |sc| when e is off the canonical sc path, kInfDist when e is
  /// beyond the stored window (callers never need those values).
  Dist avoiding(std::uint32_t si, Vertex c, Vertex e_child) const;

 private:
  static std::uint64_t key(std::uint32_t cidx, std::uint32_t pos_from_c) {
    return (std::uint64_t{cidx} << 32) | pos_from_c;
  }

  const BkContext* ctx_;
  std::vector<CuckooHash<Dist>> per_source_;  // (cidx, pos_from_c) -> distance
};

}  // namespace msrp
