// Text serialization of solver output.
//
// Format (line-oriented, '#' comments allowed on load):
//   msrp-result 1            header + version
//   <n> <sigma>
//   per source s:            "source <s>"
//   per reachable target t:  "<t> <d(s,t)> <row...>"  ("inf" for kInfDist)
//
// The deserialized form is a plain lookup table (SerializedResult), not a
// full MsrpResult — it answers the same row/avoiding queries but does not
// retain the BFS trees. Intended for caching expensive solves and for
// golden-file tests.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/result.hpp"

namespace msrp {

/// Writes every row of `res`.
void write_result(std::ostream& os, const MsrpResult& res);

/// Deserialized replacement table.
class SerializedResult {
 public:
  /// Parses the write_result format; throws std::invalid_argument on
  /// malformed input.
  static SerializedResult read(std::istream& is);

  Vertex num_vertices() const { return n_; }
  const std::vector<Vertex>& sources() const { return sources_; }

  /// d(s, t); kInfDist if unreachable (or t == s: 0).
  Dist shortest(Vertex s, Vertex t) const;

  /// Replacement row for (s, t), positions along the canonical path.
  std::span<const Dist> row(Vertex s, Vertex t) const;

 private:
  std::uint32_t source_index(Vertex s) const;

  Vertex n_ = 0;
  std::vector<Vertex> sources_;
  // per source: per target: shortest + row
  std::vector<std::vector<Dist>> shortest_;
  std::vector<std::vector<std::vector<Dist>>> rows_;
};

}  // namespace msrp
