// Sections 6 and 7: assembling the final replacement rows for one source.
//
// Given the preprocessing products — the landmark hierarchy with its BFS
// trees, the d(s, r, e) table, and the Section 7.1 near-small values — this
// walks every target's canonical path and fills d(s, t, e) for every edge:
//
//   * far edges (Algorithm 3): e in bucket k, scan L_k members r with
//     d(r, t) <= 2^k T; candidate d(s, r, e) + d(r, t). Lemma 9 guarantees a
//     witness whp; the distance filter guarantees r's canonical path to t
//     cannot cross e, so every candidate is realizable.
//   * near edges, small paths: the Section 7.1 Dijkstra value (exact for
//     small paths by Lemma 10, an upper bound otherwise).
//   * near edges, large paths (Algorithm 4): scan L_0 members r with
//     d(r, t) <= T and e not on the canonical rt path (O(1) ancestor check
//     in T_r); candidate d(s, r, e) + d(r, t) (Lemmas 11–13).
//
// Every candidate is the length of a genuine e-avoiding path, so the
// assembled row is always an upper bound on the truth and equals it whp.
#pragma once

#include "core/config.hpp"
#include "core/landmark_rp.hpp"
#include "core/landmarks.hpp"
#include "core/near_small.hpp"
#include "core/result.hpp"

namespace msrp {

/// Fills result rows for source index `si`, targets [t_begin, t_end), from
/// all three candidate classes. Each target's row is independent, so the
/// engine splits a source's targets into chunks and assembles them in
/// parallel — any chunking produces the same rows.
void assemble_source_rows(const Graph& g, std::uint32_t si, const RootedTree& rs,
                          const LevelSets& landmarks, const TreePool& pool,
                          const LandmarkRpTable& dsr, const NearSmall& near_small,
                          const Params& params, MsrpResult& result, Vertex t_begin,
                          Vertex t_end);

}  // namespace msrp
