#include "core/config.hpp"

#include <algorithm>
#include <cmath>

namespace msrp {

Params::Params(Vertex n, std::uint32_t sigma, const Config& cfg)
    : n_(n), sigma_(sigma), window_scale_(cfg.window_scale) {
  MSRP_REQUIRE(n >= 1, "graph must be non-empty");
  MSRP_REQUIRE(sigma >= 1 && sigma <= n, "need 1 <= sigma <= n");
  MSRP_REQUIRE(cfg.oversample > 0, "oversample must be positive");
  MSRP_REQUIRE(cfg.window_scale >= 2.0, "window_scale below the paper's minimum l >= 2");

  const double nd = n, sd = sigma;
  double near_scale = cfg.near_scale;
  if (cfg.paper_constants) near_scale = std::max(1.0, std::log2(nd));
  MSRP_REQUIRE(near_scale > 0, "near_scale must be positive");

  if (cfg.exact) {
    // T >= n makes every edge near and every replacement path small, so the
    // deterministic Section 7.1 Dijkstra answers every query by itself.
    t_ = n;
  } else {
    t_ = std::max<Dist>(1, static_cast<Dist>(std::llround(near_scale * std::sqrt(nd / sd))));
  }

  // k ranges to log2(sqrt(n * sigma)) (Definition 3).
  levels_ = static_cast<std::uint32_t>(std::ceil(std::log2(std::max(2.0, std::sqrt(nd * sd)))));

  base_prob_ = std::min(1.0, cfg.oversample * 4.0 * std::sqrt(sd / nd));
}

double Params::sample_prob(std::uint32_t k) const {
  return std::min(1.0, base_prob_ / static_cast<double>(1u << std::min(k, 31u)));
}

Dist Params::window(std::uint32_t k) const {
  const double w = window_scale_ * std::ldexp(static_cast<double>(t_), static_cast<int>(k));
  if (w >= static_cast<double>(n_)) return n_;  // windows never need to exceed a path length
  return static_cast<Dist>(w);
}

std::uint32_t Params::far_bucket(Dist et) const {
  MSRP_DCHECK(et >= 2 * static_cast<std::uint64_t>(t_), "edge is near, not far");
  // Largest k with 2^{k+1} T <= et.
  std::uint32_t k = 0;
  while (k + 1 <= levels_ && (std::uint64_t{t_} << (k + 2)) <= et) ++k;
  return std::min(k, levels_);
}

Dist Params::far_radius(std::uint32_t k) const {
  const std::uint64_t r = std::uint64_t{t_} << k;
  return r >= kInfDist ? kInfDist - 1 : static_cast<Dist>(r);
}

}  // namespace msrp
