// Section 8.2: replacement paths from each center to each landmark.
//
// 8.2.1 — small near-edge replacement paths from sources to landmarks are
// enumerated (the Section 7.1 Dijkstra retains parents), and for every
// center c found on such a path the length of its c..r suffix is recorded:
// w[c, r, e]. These become [c] -> [r, e] arcs below.
//
// 8.2.2 — per center c (priority k), an auxiliary digraph with node [r] per
// landmark and [r, e] for the first W(k) edges of the canonical cr path:
//   [c]  -> [r]     weight |cr|
//   [c]  -> [r, e]  weight w[c, r, e]                  (from 8.2.1)
//   [r'] -> [r, e]  weight |r'r|  if e not on cr' and not on r'r
//   [r',e]-> [r, e] weight |r'r|  if e not on r'r      (same failing edge)
// Dijkstra from [c] yields d(c, r, e) = dist([r, e]) (Lemma 22). The same
// 2 * 2^priority * T prune as Section 8.1 applies to landmark detours.
#pragma once

#include "core/bk.hpp"
#include "core/landmark_rp.hpp"
#include "util/cuckoo_hash.hpp"

namespace msrp {

class CenterLandmarkTable {
 public:
  CenterLandmarkTable(const BkContext& ctx, const LandmarkRpTable& dsr);

  /// 8.2.1: enumerate the small replacement paths of source `si` and record
  /// center pass-throughs.
  void accumulate_small_via(std::uint32_t si);

  /// 8.2.2: build center c's auxiliary graph and run Dijkstra.
  void build_center(std::uint32_t cidx, MsrpStats& stats);

  /// d(c, r, e) for edge e with endpoints (eu, ev). Returns |cr| when e is
  /// off the canonical cr path, kInfDist beyond the stored window.
  Dist avoiding(Vertex c, Vertex r, EdgeId e, Vertex eu, Vertex ev) const;

 private:
  static std::uint64_t small_key(std::uint32_t lidx, EdgeId e) {
    return (std::uint64_t{lidx} << 32) | e;
  }
  static std::uint64_t dcr_key(std::uint32_t lidx, std::uint32_t pos_from_c) {
    return (std::uint64_t{lidx} << 32) | pos_from_c;
  }

  const BkContext* ctx_;
  const LandmarkRpTable* dsr_;
  std::vector<CuckooHash<Dist>> small_via_;  // per center: (lidx, edge) -> |P[c, r]|
  std::vector<CuckooHash<Dist>> dcr_;        // per center: (lidx, pos)  -> d(c, r, e)
};

}  // namespace msrp
