// Section 8.2: replacement paths from each center to each landmark.
//
// 8.2.1 — small near-edge replacement paths from sources to landmarks are
// enumerated (the Section 7.1 Dijkstra retains parents), and for every
// center c found on such a path the length of its c..r suffix is recorded:
// w[c, r, e]. These become [c] -> [r, e] arcs below.
//
// 8.2.2 — per center c (priority k), an auxiliary digraph with node [r] per
// landmark and [r, e] for the first W(k) edges of the canonical cr path:
//   [c]  -> [r]     weight |cr|
//   [c]  -> [r, e]  weight w[c, r, e]                  (from 8.2.1)
//   [r'] -> [r, e]  weight |r'r|  if e not on cr' and not on r'r
//   [r',e]-> [r, e] weight |r'r|  if e not on r'r      (same failing edge)
// Dijkstra from [c] yields d(c, r, e) = dist([r, e]) (Lemma 22). The same
// 2 * 2^priority * T prune as Section 8.1 applies to landmark detours.
#pragma once

#include "core/bk.hpp"
#include "core/landmark_rp.hpp"
#include "util/cuckoo_hash.hpp"

namespace msrp {

struct BuildScratch;  // core/scratch.hpp

class CenterLandmarkTable {
 public:
  /// One center pass-through observed on a small replacement path (8.2.1):
  /// the c..r suffix length for (center, landmark, failing edge).
  struct SmallVia {
    std::uint32_t cidx;
    std::uint64_t key;  // small_key(landmark index, edge)
    Dist suffix;
  };

  CenterLandmarkTable(const BkContext& ctx, const LandmarkRpTable& dsr);

  /// 8.2.1, gather half: enumerate the small replacement paths of source
  /// `si` into `out` (cleared first). Const — safe to run per source in
  /// parallel; merge_small_via folds the results in afterwards.
  void collect_small_via(std::uint32_t si, std::vector<SmallVia>& out) const;

  /// 8.2.1, merge half: min-merges collected pass-throughs into the
  /// per-center tables. The merge is a min, so the final tables do not
  /// depend on the order sources are merged in.
  void merge_small_via(const std::vector<SmallVia>& items);

  /// Sequential convenience: collect_small_via + merge_small_via for one
  /// source (kept for unit tests and single-threaded callers).
  void accumulate_small_via(std::uint32_t si) {
    std::vector<SmallVia> items;
    collect_small_via(si, items);
    merge_small_via(items);
  }

  /// 8.2.2: build center c's auxiliary graph and run Dijkstra. Independent
  /// across centers; all temporaries live in `scratch` (counters included).
  void build_center(std::uint32_t cidx, BuildScratch& scratch);

  /// d(c, r, e) for edge e with endpoints (eu, ev). Returns |cr| when e is
  /// off the canonical cr path, kInfDist beyond the stored window.
  Dist avoiding(Vertex c, Vertex r, EdgeId e, Vertex eu, Vertex ev) const;

 private:
  static std::uint64_t small_key(std::uint32_t lidx, EdgeId e) {
    return (std::uint64_t{lidx} << 32) | e;
  }
  static std::uint64_t dcr_key(std::uint32_t lidx, std::uint32_t pos_from_c) {
    return (std::uint64_t{lidx} << 32) | pos_from_c;
  }

  const BkContext* ctx_;
  const LandmarkRpTable* dsr_;
  std::vector<CuckooHash<Dist>> small_via_;  // per center: (lidx, edge) -> |P[c, r]|
  std::vector<CuckooHash<Dist>> dcr_;        // per center: (lidx, pos)  -> d(c, r, e)
};

}  // namespace msrp
