// Section 7.1: small replacement paths avoiding near edges, for one source.
//
// Builds the auxiliary graph G_s — nodes [v] for every vertex plus [t, e] for
// every near edge e on the canonical st path — and runs Dijkstra from [s].
// The resulting w[t, e] equals |st <> e| whenever the replacement path is
// "small" (|P| <= |se| + 2T, Lemma 10); for large paths it is still the
// length of a genuine e-avoiding path, i.e. a safe upper bound.
//
// This phase is fully deterministic (no sampling), which is why
// Config::exact — which makes every edge near and every replacement small —
// turns the whole algorithm into an exact one.
//
// The class keeps the Dijkstra parents so Section 8.2.1 can reconstruct the
// actual small replacement paths and enumerate the centers lying on them.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "spath/aux_graph.hpp"
#include "spath/dijkstra.hpp"
#include "tree/ancestry.hpp"

namespace msrp {

class NearSmall {
 public:
  /// `rs` is the source's rooted tree; both must outlive this object.
  NearSmall(const Graph& g, const RootedTree& rs, const Params& params);

  /// First near position on the canonical path to t (positions
  /// [first_near_pos(t), dist(t) - 1] are near). Equals dist(t) when t is
  /// unreachable (no positions).
  std::uint32_t first_near_pos(Vertex t) const { return first_pos_[t]; }

  bool is_near(Vertex t, std::uint32_t pos) const {
    return pos >= first_pos_[t] && pos - first_pos_[t] < near_edges_[t].size();
  }

  /// w[t, e_pos]: Dijkstra distance to [t, e]; kInfDist when the position is
  /// not near or no avoiding path was found.
  Dist value(Vertex t, std::uint32_t pos) const;

  /// Edge id and deeper endpoint of the near path edge of t at `pos`.
  std::pair<EdgeId, Vertex> near_edge(Vertex t, std::uint32_t pos) const;

  /// The actual replacement path (vertex sequence s..t) realizing
  /// value(t, pos); empty when the value is kInfDist.
  std::vector<Vertex> reconstruct_path(Vertex t, std::uint32_t pos) const;

  std::size_t aux_nodes() const { return aux_.num_nodes(); }
  std::size_t aux_arcs() const { return aux_.num_arcs(); }

 private:
  AuxNode handle(Vertex t, std::uint32_t pos) const {
    return base_[t] + (pos - first_pos_[t]);
  }

  const Graph* g_;
  const RootedTree* rs_;
  std::vector<std::uint32_t> first_pos_;
  std::vector<AuxNode> base_;  // first [t, e] handle per t
  // near_edges_[t][pos - first_pos_[t]] = (edge id, deeper endpoint)
  std::vector<std::vector<std::pair<EdgeId, Vertex>>> near_edges_;
  std::vector<Vertex> node_vertex_;  // [t, e] handle - n -> t (path reconstruction)
  AuxGraph aux_;
  DijkstraResult dij_;
};

}  // namespace msrp
