#include "core/msrp.hpp"

#include "core/assembly.hpp"
#include "core/bk.hpp"
#include "core/landmark_rp.hpp"
#include "core/near_small.hpp"

namespace msrp {
namespace {

class MsrpEngine {
 public:
  MsrpEngine(const Graph& g, const std::vector<Vertex>& sources, const Config& cfg)
      : g_(g),
        cfg_(cfg),
        params_(g.num_vertices(), static_cast<std::uint32_t>(sources.size()), cfg),
        pool_(g),
        result_(g, sources) {}

  MsrpResult run() {
    PhaseTimers timers;

    // ---- sampling (Definition 3) + preprocessing BFS trees ---------------
    Rng rng(cfg_.seed);
    {
      auto t = timers.scope("sample+bfs");
      Rng landmark_rng = rng.split();
      Rng center_rng = rng.split();
      landmarks_.emplace(params_, result_.sources(), landmark_rng);
      // C_0 additionally holds all landmarks: it closes the first/last
      // interval recursions of Section 8.3 (see bk.hpp).
      std::vector<Vertex> forced_centers = result_.sources();
      forced_centers.insert(forced_centers.end(), landmarks_->members().begin(),
                            landmarks_->members().end());
      centers_.emplace(params_, forced_centers, center_rng);

      pool_.ensure(landmarks_->members());
      if (cfg_.landmark_rp == LandmarkRpMethod::kBkAuxGraphs) {
        pool_.ensure(centers_->members());
      }
    }

    std::vector<const RootedTree*> source_trees;
    for (const Vertex s : result_.sources()) source_trees.push_back(&result_.rooted(s));

    // ---- d(s, r, e) for landmarks (Section 3 or Section 8) ---------------
    LandmarkRpTable dsr(g_, source_trees, landmarks_->members());
    std::vector<std::unique_ptr<NearSmall>> near_small(result_.num_sources());
    if (cfg_.landmark_rp == LandmarkRpMethod::kMmgPerPair) {
      auto t = timers.scope("landmark_rp_mmg");
      dsr.fill_mmg(g_, &pool_);
    } else {
      {
        auto t = timers.scope("near_small_dijkstra");
        build_near_small(source_trees, near_small);
      }
      std::vector<const NearSmall*> ns_view;
      for (const auto& p : near_small) ns_view.push_back(p.get());
      BkContext ctx(g_, params_, pool_, *landmarks_, *centers_, source_trees, ns_view);
      fill_landmark_rp_bk(ctx, dsr, result_.stats(), timers);
    }

    // ---- Sections 6 + 7: per-target assembly ------------------------------
    for (std::uint32_t si = 0; si < result_.num_sources(); ++si) {
      if (!near_small[si]) {
        auto t = timers.scope("near_small_dijkstra");
        near_small[si] = std::make_unique<NearSmall>(g_, *source_trees[si], params_);
        result_.stats().near_small_aux_nodes += near_small[si]->aux_nodes();
        result_.stats().near_small_aux_arcs += near_small[si]->aux_arcs();
      }
      auto t = timers.scope("assembly");
      assemble_source_rows(g_, si, *source_trees[si], *landmarks_, pool_, dsr,
                           *near_small[si], params_, result_);
      near_small[si].reset();  // free the per-source auxiliary graph early
    }

    // ---- stats ------------------------------------------------------------
    auto& st = result_.stats();
    st.num_landmarks = landmarks_->members().size();
    st.num_centers =
        cfg_.landmark_rp == LandmarkRpMethod::kBkAuxGraphs ? centers_->members().size() : 0;
    st.num_trees = pool_.size() + result_.num_sources();
    for (std::uint32_t k = 0; k < landmarks_->num_levels(); ++k) {
      st.landmarks_per_level.push_back(landmarks_->level(k).size());
    }
    if (cfg_.collect_phase_timings) st.phase_seconds = timers.totals();
    return std::move(result_);
  }

 private:
  void build_near_small(const std::vector<const RootedTree*>& source_trees,
                        std::vector<std::unique_ptr<NearSmall>>& out) {
    for (std::uint32_t si = 0; si < out.size(); ++si) {
      out[si] = std::make_unique<NearSmall>(g_, *source_trees[si], params_);
      result_.stats().near_small_aux_nodes += out[si]->aux_nodes();
      result_.stats().near_small_aux_arcs += out[si]->aux_arcs();
    }
  }

  const Graph& g_;
  Config cfg_;
  Params params_;
  TreePool pool_;
  MsrpResult result_;
  std::optional<LevelSets> landmarks_;
  std::optional<LevelSets> centers_;
};

}  // namespace

MsrpResult solve_msrp(const Graph& g, const std::vector<Vertex>& sources, const Config& cfg) {
  MSRP_REQUIRE(g.num_vertices() >= 1, "graph must be non-empty");
  return MsrpEngine(g, sources, cfg).run();
}

MsrpResult solve_ssrp(const Graph& g, Vertex source, const Config& cfg) {
  return solve_msrp(g, {source}, cfg);
}

}  // namespace msrp
