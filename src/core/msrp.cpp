#include "core/msrp.hpp"

#include <memory>

#include "core/assembly.hpp"
#include "core/bk.hpp"
#include "core/landmark_rp.hpp"
#include "core/near_small.hpp"
#include "core/scratch.hpp"
#include "util/thread_pool.hpp"

namespace msrp {
namespace {

/// Targets per assembly chunk: small enough to spread one source's targets
/// across every worker, large enough to amortize the task claim. Fixed (not
/// derived from the thread count) so the chunking is identical however many
/// threads run — chunks are independent anyway, this just keeps the
/// execution shape easy to reason about.
constexpr Vertex kAssemblyChunk = 1024;

class MsrpEngine {
 public:
  MsrpEngine(const Graph& g, const std::vector<Vertex>& sources, const Config& cfg)
      : g_(g),
        cfg_(cfg),
        params_(g.num_vertices(), static_cast<std::uint32_t>(sources.size()), cfg),
        pool_(g),
        result_(g, sources) {}

  MsrpResult run() {
    PhaseTimers timers;

    // ---- execution resources ---------------------------------------------
    // The parallel build is bit-identical to the sequential one: every
    // parallel item writes item-private rows/tables/slots, and the only
    // shared accumulations are commutative sums merged in a fixed order.
    ThreadPool* exec = cfg_.build_pool;
    std::unique_ptr<ThreadPool> owned_pool;
    if (exec == nullptr && cfg_.build_threads != 1) {
      owned_pool = std::make_unique<ThreadPool>(cfg_.build_threads);
      exec = owned_pool.get();
    }
    if (exec != nullptr && exec->size() <= 1) exec = nullptr;  // sequential anyway
    ScratchPool scratches(exec != nullptr ? exec->max_parallelism() : 1);

    // ---- sampling (Definition 3) + preprocessing BFS trees ---------------
    Rng rng(cfg_.seed);
    {
      auto t = timers.scope("sample+bfs");
      Rng landmark_rng = rng.split();
      Rng center_rng = rng.split();
      landmarks_.emplace(params_, result_.sources(), landmark_rng);
      // C_0 additionally holds all landmarks: it closes the first/last
      // interval recursions of Section 8.3 (see bk.hpp).
      std::vector<Vertex> forced_centers = result_.sources();
      forced_centers.insert(forced_centers.end(), landmarks_->members().begin(),
                            landmarks_->members().end());
      centers_.emplace(params_, forced_centers, center_rng);

      pool_.ensure(landmarks_->members(), exec);
      if (cfg_.landmark_rp == LandmarkRpMethod::kBkAuxGraphs) {
        pool_.ensure(centers_->members(), exec);
      }
    }

    std::vector<const RootedTree*> source_trees;
    for (const Vertex s : result_.sources()) source_trees.push_back(&result_.rooted(s));

    // ---- d(s, r, e) for landmarks (Section 3 or Section 8) ---------------
    LandmarkRpTable dsr(g_, source_trees, landmarks_->members());
    std::vector<std::unique_ptr<NearSmall>> near_small(result_.num_sources());
    if (cfg_.landmark_rp == LandmarkRpMethod::kMmgPerPair) {
      auto t = timers.scope("landmark_rp_mmg");
      dsr.fill_mmg(g_, &pool_, exec, &scratches);
    } else {
      {
        auto t = timers.scope("near_small_dijkstra");
        build_near_small(source_trees, near_small, exec);
      }
      std::vector<const NearSmall*> ns_view;
      for (const auto& p : near_small) ns_view.push_back(p.get());
      BkContext ctx(g_, params_, pool_, *landmarks_, *centers_, source_trees, ns_view);
      fill_landmark_rp_bk(ctx, dsr, result_.stats(), timers, exec, scratches);
    }

    // ---- Sections 6 + 7: per-target assembly ------------------------------
    // Sources stay sequential (the mmg path frees each NearSmall as soon as
    // its source is assembled, bounding peak memory); the per-target rows
    // within a source are chunked across the pool.
    const Vertex n = g_.num_vertices();
    const std::size_t chunks_per_source = (n + kAssemblyChunk - 1) / kAssemblyChunk;
    for (std::uint32_t si = 0; si < result_.num_sources(); ++si) {
      if (!near_small[si]) {
        auto t = timers.scope("near_small_dijkstra");
        near_small[si] = std::make_unique<NearSmall>(g_, *source_trees[si], params_);
        result_.stats().near_small_aux_nodes += near_small[si]->aux_nodes();
        result_.stats().near_small_aux_arcs += near_small[si]->aux_arcs();
      }
      auto t = timers.scope("assembly");
      maybe_parallel_for(exec, chunks_per_source, [&](std::size_t c, std::size_t) {
        const auto t_begin = static_cast<Vertex>(c * kAssemblyChunk);
        const Vertex t_end = std::min<Vertex>(n, t_begin + kAssemblyChunk);
        assemble_source_rows(g_, si, *source_trees[si], *landmarks_, pool_, dsr,
                             *near_small[si], params_, result_, t_begin, t_end);
      });
      near_small[si].reset();  // free the per-source auxiliary graph early
    }

    // ---- stats ------------------------------------------------------------
    auto& st = result_.stats();
    st.num_landmarks = landmarks_->members().size();
    st.num_centers =
        cfg_.landmark_rp == LandmarkRpMethod::kBkAuxGraphs ? centers_->members().size() : 0;
    st.num_trees = pool_.size() + result_.num_sources();
    for (std::uint32_t k = 0; k < landmarks_->num_levels(); ++k) {
      st.landmarks_per_level.push_back(landmarks_->level(k).size());
    }
    if (cfg_.collect_phase_timings) st.phase_seconds = timers.totals();
    return std::move(result_);
  }

 private:
  void build_near_small(const std::vector<const RootedTree*>& source_trees,
                        std::vector<std::unique_ptr<NearSmall>>& out, ThreadPool* exec) {
    // Each NearSmall is one independent auxiliary-graph build + Dijkstra;
    // the counters are summed in source order afterwards.
    maybe_parallel_for(exec, out.size(), [&](std::size_t si, std::size_t) {
      out[si] = std::make_unique<NearSmall>(g_, *source_trees[si], params_);
    });
    for (std::uint32_t si = 0; si < out.size(); ++si) {
      result_.stats().near_small_aux_nodes += out[si]->aux_nodes();
      result_.stats().near_small_aux_arcs += out[si]->aux_arcs();
    }
  }

  const Graph& g_;
  Config cfg_;
  Params params_;
  TreePool pool_;
  MsrpResult result_;
  std::optional<LevelSets> landmarks_;
  std::optional<LevelSets> centers_;
};

}  // namespace

MsrpResult solve_msrp(const Graph& g, const std::vector<Vertex>& sources, const Config& cfg) {
  MSRP_REQUIRE(g.num_vertices() >= 1, "graph must be non-empty");
  return MsrpEngine(g, sources, cfg).run();
}

MsrpResult solve_ssrp(const Graph& g, Vertex source, const Config& cfg) {
  return solve_msrp(g, {source}, cfg);
}

}  // namespace msrp
