#include "bmm/matrix.hpp"

#include <bit>

namespace msrp::bmm {

BoolMatrix BoolMatrix::random(std::uint32_t n, double density, Rng& rng) {
  BoolMatrix m(n);
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint32_t c = 0; c < n; ++c) {
      if (rng.next_bernoulli(density)) m.set(r, c);
    }
  }
  return m;
}

BoolMatrix BoolMatrix::identity(std::uint32_t n) {
  BoolMatrix m(n);
  for (std::uint32_t i = 0; i < n; ++i) m.set(i, i);
  return m;
}

std::uint64_t BoolMatrix::popcount() const {
  std::uint64_t total = 0;
  for (const std::uint64_t w : rows_) total += static_cast<std::uint64_t>(std::popcount(w));
  return total;
}

BoolMatrix BoolMatrix::padded(std::uint32_t n2) const {
  MSRP_REQUIRE(n2 >= n_, "padding cannot shrink the matrix");
  BoolMatrix out(n2);
  for (std::uint32_t r = 0; r < n_; ++r) {
    for (std::uint32_t w = 0; w < words_; ++w) {
      out.row(r)[w] = row(r)[w];
    }
  }
  return out;
}

}  // namespace msrp::bmm
