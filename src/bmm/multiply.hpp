// Combinatorial Boolean matrix multiplication baselines and the Section 9
// reduction through the MSRP solver.
//
// multiply_via_msrp realizes Theorem 28: C = A x B is recovered from
// sqrt(n / sigma) MSRP instances, each a gadget graph with O(n) vertices and
// O(m) edges where sigma sources read off sqrt(n sigma) rows of C via
// replacement-path queries along their "staircase" chunk paths (see
// reduction.cpp for the decoding invariant).
#pragma once

#include "bmm/matrix.hpp"
#include "core/config.hpp"

namespace msrp::bmm {

/// Schoolbook triple loop with early exit. O(n^3) worst case.
BoolMatrix multiply_naive(const BoolMatrix& a, const BoolMatrix& b);

/// Row-OR combinatorial multiply: O(n^2 + nnz(A) * n / 64).
BoolMatrix multiply_bitset(const BoolMatrix& a, const BoolMatrix& b);

/// Theorem 28: multiply via MSRP. `sigma` is the per-gadget source count;
/// inputs are zero-padded to the nearest n' = sigma * q^2. The MSRP config
/// can be overridden (tests pass high oversampling; exact mode makes the
/// whole reduction deterministic).
BoolMatrix multiply_via_msrp(const BoolMatrix& a, const BoolMatrix& b, std::uint32_t sigma,
                             const Config& cfg = Config{});

}  // namespace msrp::bmm
