#include "bmm/multiply.hpp"

namespace msrp::bmm {

BoolMatrix multiply_naive(const BoolMatrix& a, const BoolMatrix& b) {
  MSRP_REQUIRE(a.size() == b.size(), "dimension mismatch");
  const std::uint32_t n = a.size();
  BoolMatrix c(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      for (std::uint32_t k = 0; k < n; ++k) {
        if (a.get(i, k) && b.get(k, j)) {
          c.set(i, j);
          break;
        }
      }
    }
  }
  return c;
}

BoolMatrix multiply_bitset(const BoolMatrix& a, const BoolMatrix& b) {
  MSRP_REQUIRE(a.size() == b.size(), "dimension mismatch");
  const std::uint32_t n = a.size();
  const std::uint32_t words = a.words_per_row();
  BoolMatrix c(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t* ci = c.row(i);
    for (std::uint32_t k = 0; k < n; ++k) {
      if (!a.get(i, k)) continue;
      const std::uint64_t* bk = b.row(k);
      for (std::uint32_t w = 0; w < words; ++w) ci[w] |= bk[w];
    }
  }
  return c;
}

}  // namespace msrp::bmm
