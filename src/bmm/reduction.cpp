#include "bmm/reduction.hpp"

#include <cmath>

#include "bmm/multiply.hpp"
#include "core/msrp.hpp"

namespace msrp::bmm {

ReductionGadget build_reduction_gadget(const BoolMatrix& a, const BoolMatrix& b,
                                       std::uint32_t gadget_index, std::uint32_t sigma,
                                       std::uint32_t q) {
  const std::uint32_t n = a.size();
  MSRP_REQUIRE(b.size() == n, "dimension mismatch");
  const std::uint32_t rows_per_gadget = sigma * q;
  MSRP_REQUIRE((gadget_index + 1) * rows_per_gadget <= n, "gadget beyond matrix rows");

  ReductionGadget out;
  out.q = q;
  out.first_row = gadget_index * rows_per_gadget;

  // Vertex layout: a-block [0, n), b-block [n, 2n), c-block [2n, 3n),
  // then per chunk j: v_j(1..q) followed by its pendant vertices.
  GraphBuilder gb(3 * n);
  const auto a_v = [&](std::uint32_t x) { return static_cast<Vertex>(x); };
  const auto b_v = [&](std::uint32_t x) { return static_cast<Vertex>(n + x); };
  const auto c_v = [&](std::uint32_t x) { return static_cast<Vertex>(2 * n + x); };

  for (std::uint32_t x = 0; x < n; ++x) {
    for (std::uint32_t y = 0; y < n; ++y) {
      if (a.get(x, y)) gb.add_edge(a_v(x), b_v(y));
      if (b.get(x, y)) gb.add_edge(b_v(x), c_v(y));
    }
  }

  struct PendingChunkEdge {
    Vertex u, v;
  };
  std::vector<std::vector<PendingChunkEdge>> chunk_edge_ends(sigma);
  for (std::uint32_t j = 0; j < sigma; ++j) {
    // Chunk path v_j(1) - v_j(2) - ... - v_j(q); source is v_j(q).
    std::vector<Vertex> chunk(q);
    for (std::uint32_t p = 0; p < q; ++p) chunk[p] = gb.add_vertex();
    for (std::uint32_t p = 0; p + 1 < q; ++p) {
      gb.add_edge(chunk[p], chunk[p + 1]);
      chunk_edge_ends[j].push_back({chunk[p], chunk[p + 1]});
    }
    out.sources.push_back(chunk[q - 1]);
    // Pendant from v_j(p) to a(first_row + j*q + p - 1), 2(p-1)+1 edges.
    for (std::uint32_t p = 1; p <= q; ++p) {
      const std::uint32_t row = out.first_row + j * q + (p - 1);
      Vertex prev = chunk[p - 1];
      for (std::uint32_t step = 0; step < 2 * (p - 1); ++step) {
        const Vertex w = gb.add_vertex();
        gb.add_edge(prev, w);
        prev = w;
      }
      gb.add_edge(prev, a_v(row));
    }
  }

  out.graph = gb.build();
  // Resolve chunk edge ids now that the graph is frozen.
  out.chunk_edges.resize(sigma);
  for (std::uint32_t j = 0; j < sigma; ++j) {
    for (const auto& [u, v] : chunk_edge_ends[j]) {
      const EdgeId e = out.graph.find_edge(u, v);
      MSRP_CHECK(e != kNoEdge, "chunk edge vanished");
      out.chunk_edges[j].push_back(e);
    }
  }
  for (std::uint32_t l = 0; l < n; ++l) out.c_vertex.push_back(c_v(l));
  return out;
}

BoolMatrix multiply_via_msrp(const BoolMatrix& a, const BoolMatrix& b, std::uint32_t sigma,
                             const Config& cfg) {
  MSRP_REQUIRE(a.size() == b.size(), "dimension mismatch");
  MSRP_REQUIRE(sigma >= 1, "need at least one source");
  const std::uint32_t n = a.size();
  MSRP_REQUIRE(n >= 1, "empty matrix");

  // Pad to n' = sigma * q^2 >= n (zero rows/columns are inert).
  std::uint32_t q = 1;
  while (sigma * q * q < n) ++q;
  const std::uint32_t n2 = sigma * q * q;
  const BoolMatrix ap = a.padded(n2);
  const BoolMatrix bp = b.padded(n2);
  const std::uint32_t num_gadgets = n2 / (sigma * q);

  BoolMatrix c(n);
  for (std::uint32_t gi = 0; gi < num_gadgets; ++gi) {
    const ReductionGadget gadget = build_reduction_gadget(ap, bp, gi, sigma, q);
    const MsrpResult res = solve_msrp(gadget.graph, gadget.sources, cfg);
    for (std::uint32_t j = 0; j < sigma; ++j) {
      const Vertex s = gadget.sources[j];
      for (std::uint32_t p = 1; p <= q; ++p) {
        const std::uint32_t row = gadget.first_row + j * q + (p - 1);
        if (row >= n) continue;  // padding row
        const Dist target = gadget.target(p);
        for (std::uint32_t l = 0; l < n; ++l) {
          const Vertex cl = gadget.c_vertex[l];
          const Dist d = (p == 1) ? res.shortest(s, cl)
                                  : res.avoiding(s, cl, gadget.chunk_edges[j][p - 2]);
          if (d == target) c.set(row, l);
        }
      }
    }
  }
  return c;
}

}  // namespace msrp::bmm
