// Boolean matrices for the Section 9 lower-bound construction.
//
// Rows are bit-packed (64 columns per word) so the combinatorial baseline
// multiply can OR whole rows — the classic "combinatorial" speedup that
// stays within the BMM conjecture's model (no algebraic matrix
// multiplication).
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace msrp::bmm {

class BoolMatrix {
 public:
  explicit BoolMatrix(std::uint32_t n = 0) : n_(n), words_((n + 63) / 64) {
    rows_.assign(static_cast<std::size_t>(n) * words_, 0);
  }

  static BoolMatrix random(std::uint32_t n, double density, Rng& rng);
  static BoolMatrix identity(std::uint32_t n);

  std::uint32_t size() const { return n_; }

  bool get(std::uint32_t r, std::uint32_t c) const {
    MSRP_DCHECK(r < n_ && c < n_, "index out of range");
    return (rows_[static_cast<std::size_t>(r) * words_ + c / 64] >> (c % 64)) & 1;
  }

  void set(std::uint32_t r, std::uint32_t c, bool value = true) {
    MSRP_DCHECK(r < n_ && c < n_, "index out of range");
    auto& w = rows_[static_cast<std::size_t>(r) * words_ + c / 64];
    const std::uint64_t bit = std::uint64_t{1} << (c % 64);
    w = value ? (w | bit) : (w & ~bit);
  }

  /// Pointer to the packed words of row r (words_per_row() words).
  const std::uint64_t* row(std::uint32_t r) const {
    return rows_.data() + static_cast<std::size_t>(r) * words_;
  }
  std::uint64_t* row(std::uint32_t r) {
    return rows_.data() + static_cast<std::size_t>(r) * words_;
  }

  std::uint32_t words_per_row() const { return words_; }

  /// Number of set bits.
  std::uint64_t popcount() const;

  /// Returns an n2 x n2 copy with zero padding (n2 >= size()).
  BoolMatrix padded(std::uint32_t n2) const;

  friend bool operator==(const BoolMatrix& a, const BoolMatrix& b) {
    return a.n_ == b.n_ && a.rows_ == b.rows_;
  }

 private:
  std::uint32_t n_;
  std::uint32_t words_;
  std::vector<std::uint64_t> rows_;
};

}  // namespace msrp::bmm
