// Section 9 gadget construction: one graph G_i per block of sqrt(n sigma)
// rows of C, read out by sigma sources via replacement-path queries.
//
// Layout of G_i (q = sqrt(n / sigma), rows per source = q):
//   * core: a(0..n-1), b(0..n-1), c(0..n-1); a(x)-b(y) iff A[x][y],
//     b(x)-c(y) iff B[x][y];
//   * per source j in [0, sigma): a chunk path v_j(1..q) whose endpoint
//     v_j(q) is the source;
//   * v_j(p) hangs a pendant path of 2(p-1)+1 edges down to
//     a(first_row + j*q + (p-1)).
//
// Decoding invariant (see DESIGN.md / Theorem 28): from source s_j, pendants
// reachable after deleting chunk edge e_{p-1} are exactly p..q, and the
// pendant lengths make the entry cost D(p) = q + p - 1 strictly increasing,
// so
//
//   C[row(p)][l] = 1  <=>  d(s_j, c(l), e_{p-1}) == D(p) + 2
//
// (with e_0 = "no failure"); wandering paths inside the core cost at least
// two extra edges and can only collide with targets of already-disconnected
// pendants, so the exact-match readout is sound.
#pragma once

#include <vector>

#include "bmm/matrix.hpp"
#include "graph/graph.hpp"
#include "util/distance.hpp"

namespace msrp::bmm {

struct ReductionGadget {
  Graph graph;
  std::uint32_t q = 0;          // rows per source
  std::uint32_t first_row = 0;  // first row of C this gadget covers
  std::vector<Vertex> sources;  // per chunk j
  // chunk_edges[j][p-1] = edge between v_j(p) and v_j(p+1), p = 1..q-1
  std::vector<std::vector<EdgeId>> chunk_edges;
  std::vector<Vertex> c_vertex;  // per column l

  /// The exact-match readout target for row offset p (1-based within a
  /// chunk): D(p) + 2 = q + p + 1.
  Dist target(std::uint32_t p) const { return q + p + 1; }
};

/// Builds gadget i for C = A x B with `sigma` sources. `a` and `b` must be
/// square of size sigma * q * num_gadgets for integral q (callers pad).
ReductionGadget build_reduction_gadget(const BoolMatrix& a, const BoolMatrix& b,
                                       std::uint32_t gadget_index, std::uint32_t sigma,
                                       std::uint32_t q);

}  // namespace msrp::bmm
