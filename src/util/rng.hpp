// Deterministic, seedable pseudo-random number generation.
//
// xoshiro256** (Blackman & Vigna) — fast, high-quality, and fully
// deterministic across platforms, unlike std::mt19937 + std::distributions
// whose outputs vary between standard library implementations. Every sampled
// set in the library (landmarks L_k, centers C_k, generator edges) draws from
// one of these, so whole-pipeline runs reproduce bit-for-bit from a seed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace msrp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) with Lemire rejection; bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bernoulli(double p);

  /// k distinct values sampled uniformly from [0, n) (k <= n), sorted.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n, std::uint32_t k);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-source / per-phase RNGs).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace msrp
