// Precondition / invariant checking for the msrp library.
//
// MSRP_REQUIRE  — public-API precondition; always on; throws std::invalid_argument.
// MSRP_CHECK    — internal invariant; always on; throws std::logic_error.
// MSRP_DCHECK   — debug-only invariant; compiled out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace msrp::detail {

[[noreturn]] inline void fail_require(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void fail_check(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace msrp::detail

#define MSRP_REQUIRE(expr, msg)                                        \
  do {                                                                 \
    if (!(expr)) ::msrp::detail::fail_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define MSRP_CHECK(expr, msg)                                          \
  do {                                                                 \
    if (!(expr)) ::msrp::detail::fail_check(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define MSRP_DCHECK(expr, msg) \
  do {                         \
  } while (false)
#else
#define MSRP_DCHECK(expr, msg) MSRP_CHECK(expr, msg)
#endif
