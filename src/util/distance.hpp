// Distance type and saturating arithmetic.
//
// All shortest-path lengths in the library are Dist (uint32_t); kInfDist
// means "unreachable". Additions go through sat_add so infinity propagates
// without overflow, matching the paper's convention d(s,t,e) = infinity when
// no replacement path exists.
#pragma once

#include <cstdint>
#include <limits>

namespace msrp {

using Dist = std::uint32_t;

inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max();

/// Saturating addition: inf + x == inf, and any overflow clamps to inf.
constexpr Dist sat_add(Dist a, Dist b) {
  if (a == kInfDist || b == kInfDist) return kInfDist;
  const std::uint64_t s = std::uint64_t{a} + std::uint64_t{b};
  return s >= kInfDist ? kInfDist : static_cast<Dist>(s);
}

constexpr Dist sat_add(Dist a, Dist b, Dist c) { return sat_add(sat_add(a, b), c); }

/// True iff the distance denotes a reachable vertex.
constexpr bool is_finite(Dist d) { return d != kInfDist; }

}  // namespace msrp
