// Cuckoo hash table (Pagh & Rodler, J. Algorithms 2004).
//
// The paper (Lemma 5) relies on a hash table with worst-case O(1) lookup and
// expected O(1) insertion to store replacement-path lengths d(s,r,e) keyed by
// (source, vertex, edge) tuples. This is that structure: two tables, two
// independent hash functions, displacement ("cuckoo") insertion with a bounded
// kick chain, and a full rehash with fresh hash seeds when a chain overflows.
//
// Keys are 64-bit (callers pack tuples with pack_key below); values are an
// arbitrary trivially-copyable type. Deletion is supported (needed by tests
// and by callers that rebuild incrementally).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace msrp {

/// Packs up to three 21-bit fields into one 64-bit key. Sufficient for
/// (vertex, vertex, edge-position) tuples up to 2M vertices.
constexpr std::uint64_t pack_key(std::uint64_t a, std::uint64_t b, std::uint64_t c = 0) {
  return (a << 42) | (b << 21) | c;
}

template <typename V>
class CuckooHash {
 public:
  explicit CuckooHash(std::size_t expected = 16, std::uint64_t seed = 0xC0FFEE123456789ULL)
      : seed_(seed) {
    std::size_t cap = 16;
    while (cap < 2 * expected) cap <<= 1;
    init_tables(cap);
  }

  /// Insert or overwrite. Expected O(1); worst case a rehash.
  void put(std::uint64_t key, V value) {
    // Overwrite in place if present (keeps at most one copy of a key).
    if (Slot* s = find_slot(key)) {
      s->value = std::move(value);
      return;
    }
    if ((size_ + 1) * 10 > capacity_ * 9) grow();  // keep load factor under 0.45 per table
    Entry e{key, std::move(value)};
    while (!try_insert(std::move(e), &e)) rehash(capacity_);
    ++size_;
  }

  /// Worst-case O(1): exactly two probes.
  const V* find(std::uint64_t key) const {
    if (const Slot* s = find_slot(key)) return &s->value;
    return nullptr;
  }

  V* find(std::uint64_t key) {
    if (Slot* s = find_slot(key)) return &s->value;
    return nullptr;
  }

  bool contains(std::uint64_t key) const { return find_slot(key) != nullptr; }

  /// Returns the stored value or `fallback` when absent.
  V get_or(std::uint64_t key, V fallback) const {
    const V* v = find(key);
    return v ? *v : fallback;
  }

  /// Removes the key if present; returns whether it was removed.
  bool erase(std::uint64_t key) {
    if (Slot* s = find_slot(key)) {
      s->occupied = false;
      --size_;
      return true;
    }
    return false;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of full-table rehashes triggered by kick-chain overflow (stats).
  std::size_t rehash_count() const { return rehashes_; }

  /// Visit every (key, value) pair; order unspecified.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& t : tables_) {
      for (const auto& s : t) {
        if (s.occupied) fn(s.key, s.value);
      }
    }
  }

 private:
  struct Entry {
    std::uint64_t key;
    V value;
  };
  struct Slot {
    std::uint64_t key = 0;
    V value{};
    bool occupied = false;
  };

  std::uint64_t hash(std::uint64_t key, int which) const {
    // Two independent mixers derived from the table seed (xxhash-style avalanche).
    std::uint64_t h = key + seed_ + (which ? 0x9E3779B97F4A7C15ULL : 0x517CC1B727220A95ULL);
    h ^= h >> 33;
    h *= which ? 0xFF51AFD7ED558CCDULL : 0xC4CEB9FE1A85EC53ULL;
    h ^= h >> 29;
    h *= which ? 0xC4CEB9FE1A85EC53ULL : 0xFF51AFD7ED558CCDULL;
    h ^= h >> 32;
    return h & (capacity_ - 1);
  }

  Slot* find_slot(std::uint64_t key) {
    for (int w = 0; w < 2; ++w) {
      Slot& s = tables_[w][hash(key, w)];
      if (s.occupied && s.key == key) return &s;
    }
    return nullptr;
  }
  const Slot* find_slot(std::uint64_t key) const {
    return const_cast<CuckooHash*>(this)->find_slot(key);
  }

  /// Attempts cuckoo insertion; on kick-chain overflow returns false with the
  /// homeless entry in *left_over.
  bool try_insert(Entry e, Entry* left_over) {
    int which = 0;
    // Kick chain bounded by c*log(capacity); beyond it we declare a cycle.
    const int max_kicks = 8 * (64 - __builtin_clzll(capacity_ | 1));
    for (int kick = 0; kick < max_kicks; ++kick) {
      Slot& s = tables_[which][hash(e.key, which)];
      if (!s.occupied) {
        s.key = e.key;
        s.value = std::move(e.value);
        s.occupied = true;
        return true;
      }
      Entry displaced{s.key, std::move(s.value)};
      s.key = e.key;
      s.value = std::move(e.value);
      e = std::move(displaced);
      which = 1 - which;
    }
    *left_over = std::move(e);
    return false;
  }

  void init_tables(std::size_t cap) {
    capacity_ = cap;
    tables_[0].assign(cap, Slot{});
    tables_[1].assign(cap, Slot{});
  }

  void grow() { rehash(capacity_ * 2); }

  void rehash(std::size_t new_cap) {
    ++rehashes_;
    std::vector<Entry> entries;
    entries.reserve(size_);
    for (auto& t : tables_) {
      for (auto& s : t) {
        if (s.occupied) entries.push_back(Entry{s.key, std::move(s.value)});
      }
    }
    // Retry with a fresh hash seed (breaks the cycle that forced the rehash);
    // if several seeds fail at this capacity, grow and try again.
    int attempts_at_cap = 0;
    while (true) {
      seed_ = seed_ * 6364136223846793005ULL + 1442695040888963407ULL;
      init_tables(new_cap);
      bool ok = true;
      for (auto& e : entries) {
        Entry spill{};
        if (!try_insert(Entry{e.key, e.value}, &spill)) {
          ok = false;
          break;
        }
      }
      if (ok) return;
      if (++attempts_at_cap >= 3) {
        new_cap *= 2;
        attempts_at_cap = 0;
      }
    }
  }

  std::uint64_t seed_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  std::size_t rehashes_ = 0;
  std::vector<Slot> tables_[2];
};

}  // namespace msrp
