// Named failure-injection sites (failpoints).
//
// A failpoint is a compiled-in hook at a fragile seam — a worker about to
// pop a request, a server about to flush a socket, a snapshot save between
// write and rename — that tests and chaos harnesses can arm to misbehave
// on demand: return an error, crash the process, or stall for a while.
// Sites are compiled in only under -DMSRP_FAILPOINTS=ON (the MSRP_FAILPOINT
// macro collapses to `false` otherwise, so production builds carry zero
// overhead and cannot be armed by a stray environment variable).
//
// Arming a site, programmatically or from the environment:
//
//   msrp::fail::set("shard_worker.pop", "crash*1");    // in-process
//   MSRP_FAILPOINTS="shard_worker.pop=crash*1" ./binary  // from outside
//
// The spec grammar is `action[:arg][*max][%every]`:
//
//   off          disarm
//   error        the site takes its failure branch (MSRP_FAILPOINT -> true)
//   crash        std::_Exit(kCrashExitCode) at the site
//   delay:USEC   sleep USEC microseconds, then continue normally
//   *N           fire at most N times (e.g. `crash*1` = one-shot)
//   %K           fire on every K-th hit only (e.g. `delay:500%3`)
//
// Multiple sites: `MSRP_FAILPOINTS="a=crash*1;b=delay:100"` (`;` or `,`).
// The environment is parsed once, on the first hit; set()/clear() override
// it at any time. Configuration survives fork (shared address-space copy)
// and exec (the environment propagates), so shard worker processes can be
// armed from the supervisor's test before it spawns them.
//
// hit() is lock-free on the read path — a fixed table of atomics — so a
// site inside a fork-calling process can never deadlock a child on an
// inherited mutex. docs/RELIABILITY.md catalogs every site in the tree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msrp::fail {

/// Whether failpoint sites are compiled into this build.
#if defined(MSRP_FAILPOINTS)
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/// Exit status of a `crash` action — distinct from every deliberate exit
/// code in the tree, so tests can tell an injected crash from a real one.
inline constexpr int kCrashExitCode = 86;

/// One site evaluation: counts the hit, applies the armed action (crash and
/// delay happen inside), and returns true when the site should take its
/// error branch. Unarmed sites return false in a few atomic loads.
bool hit(const char* name);

/// Arms `name` with `spec` (grammar above). Returns false on a malformed
/// spec (the site is left disarmed rather than half-armed).
bool set(const char* name, const std::string& spec);

/// Disarms one site / every site. Counters are kept (fire_count still
/// reports) until reset by a new set() on the same name.
void clear(const char* name);
void clear_all();

/// Times the armed action actually fired at this site (not mere hits).
std::uint64_t fire_count(const char* name);

/// One site's counters, for metrics export. `name` is interned and never
/// freed, so the pointer outlives every caller.
struct SiteStats {
  const char* name = nullptr;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

/// Counters for every site ever armed in this process (via set() or the
/// environment). Lock-free reads of the fixed table — safe from a metrics
/// collector running concurrently with hit()s.
std::vector<SiteStats> all_sites();

/// Forces (re-)parsing of MSRP_FAILPOINTS from the environment. Called
/// implicitly by the first hit(); exposed for tests that mutate the
/// environment mid-process.
void load_env();

}  // namespace msrp::fail

/// The site macro. Reads as "should this site fail now?":
///
///   if (MSRP_FAILPOINT("server.flush")) { /* injected failure branch */ }
///
/// Sites whose only meaningful actions are crash/delay may ignore the
/// result: `(void)MSRP_FAILPOINT("shard_worker.pop");`
#if defined(MSRP_FAILPOINTS)
#define MSRP_FAILPOINT(name) (::msrp::fail::hit(name))
#else
#define MSRP_FAILPOINT(name) (false)
#endif
