// Wall-clock timing helpers for the benchmark harness and per-phase
// instrumentation (EXP-4 in DESIGN.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace msrp {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time since construction / last reset, in seconds.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase timings; used by Msrp to expose the cost
/// breakdown the paper's analysis predicts (preprocessing, far edges,
/// near-small, near-large, Section 8 sub-phases).
class PhaseTimers {
 public:
  /// RAII scope that adds its lifetime to the named phase.
  class Scope {
   public:
    Scope(PhaseTimers& owner, std::string name)
        : owner_(owner), name_(std::move(name)) {}
    ~Scope() { owner_.add(name_, t_.seconds()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTimers& owner_;
    std::string name_;
    Timer t_;
  };

  Scope scope(std::string name) { return Scope(*this, std::move(name)); }

  void add(const std::string& name, double seconds) { totals_[name] += seconds; }

  double total(const std::string& name) const {
    auto it = totals_.find(name);
    return it == totals_.end() ? 0.0 : it->second;
  }

  const std::map<std::string, double>& totals() const { return totals_; }

  void clear() { totals_.clear(); }

 private:
  std::map<std::string, double> totals_;
};

}  // namespace msrp
