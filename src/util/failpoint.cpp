#include "util/failpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

namespace msrp::fail {
namespace {

enum class Action : int { kOff = 0, kError = 1, kCrash = 2, kDelay = 3 };

// One armed site. hit() reads these fields with plain atomic loads and no
// lock, so a process that forks mid-hit can never hand a child a poisoned
// mutex; only writers (set/clear, rare and test-only) serialize.
struct Point {
  std::atomic<const char*> name{nullptr};  // interned; published last
  std::atomic<int> action{0};
  std::atomic<std::uint64_t> arg{0};        // delay microseconds
  std::atomic<std::uint64_t> every{1};      // fire on every K-th hit
  std::atomic<std::int64_t> remaining{-1};  // fires left; -1 = unlimited
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
};

constexpr std::size_t kMaxPoints = 64;
Point g_points[kMaxPoints];
std::atomic<std::size_t> g_count{0};
// Count of sites currently armed (action != kOff) — the hit() fast path.
std::atomic<int> g_armed{0};
std::mutex g_write_mu;
std::once_flag g_env_once;

Point* find(const char* name) {
  const std::size_t n = g_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const char* pn = g_points[i].name.load(std::memory_order_acquire);
    if (pn != nullptr && std::strcmp(pn, name) == 0) return &g_points[i];
  }
  return nullptr;
}

// Caller holds g_write_mu.
Point* find_or_add_locked(const char* name) {
  if (Point* p = find(name)) return p;
  const std::size_t n = g_count.load(std::memory_order_relaxed);
  if (n >= kMaxPoints) return nullptr;
  Point& p = g_points[n];
  // Names are interned and deliberately never freed: a concurrent hit()
  // may hold the pointer past clear_all().
  char* copy = new char[std::strlen(name) + 1];
  std::strcpy(copy, name);
  p.name.store(copy, std::memory_order_release);
  g_count.store(n + 1, std::memory_order_release);
  return &p;
}

struct ParsedSpec {
  Action action = Action::kOff;
  std::uint64_t arg = 0;
  std::uint64_t every = 1;
  std::int64_t remaining = -1;
};

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

// Grammar: action[:arg][*max][%every], e.g. "crash*1", "delay:500%3".
bool parse_spec(const std::string& spec, ParsedSpec* out) {
  std::string head = spec;
  // Peel *max and %every suffixes (either order).
  for (int pass = 0; pass < 2; ++pass) {
    const std::size_t star = head.find_last_of("*%");
    if (star == std::string::npos) break;
    std::uint64_t v = 0;
    if (!parse_u64(head.substr(star + 1), &v)) return false;
    if (head[star] == '*') {
      out->remaining = static_cast<std::int64_t>(v);
    } else {
      if (v == 0) return false;
      out->every = v;
    }
    head.erase(star);
  }
  const std::size_t colon = head.find(':');
  const std::string action = head.substr(0, colon);
  std::string arg;
  if (colon != std::string::npos) arg = head.substr(colon + 1);
  if (action == "off") {
    out->action = Action::kOff;
    return arg.empty();
  }
  if (action == "error") {
    out->action = Action::kError;
    return arg.empty();
  }
  if (action == "crash") {
    out->action = Action::kCrash;
    return arg.empty();
  }
  if (action == "delay") {
    out->action = Action::kDelay;
    return parse_u64(arg, &out->arg);
  }
  return false;
}

void apply_locked(Point* p, const ParsedSpec& s) {
  const bool was_armed = p->action.load(std::memory_order_relaxed) != 0;
  p->arg.store(s.arg, std::memory_order_relaxed);
  p->every.store(s.every, std::memory_order_relaxed);
  p->remaining.store(s.remaining, std::memory_order_relaxed);
  p->hits.store(0, std::memory_order_relaxed);
  p->fires.store(0, std::memory_order_relaxed);
  p->action.store(static_cast<int>(s.action), std::memory_order_release);
  const bool armed = s.action != Action::kOff;
  if (armed && !was_armed) g_armed.fetch_add(1, std::memory_order_relaxed);
  if (!armed && was_armed) g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void parse_env_locked() {
  const char* env = std::getenv("MSRP_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  std::string all(env);
  std::size_t pos = 0;
  while (pos < all.size()) {
    std::size_t end = all.find_first_of(";,", pos);
    if (end == std::string::npos) end = all.size();
    const std::string item = all.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) continue;  // malformed: skip
    ParsedSpec s;
    if (!parse_spec(item.substr(eq + 1), &s)) continue;
    if (Point* p = find_or_add_locked(item.substr(0, eq).c_str())) apply_locked(p, s);
  }
}

}  // namespace

void load_env() {
  std::lock_guard<std::mutex> lk(g_write_mu);
  parse_env_locked();
}

bool hit(const char* name) {
  std::call_once(g_env_once, load_env);
  if (g_armed.load(std::memory_order_relaxed) == 0) return false;
  Point* p = find(name);
  if (p == nullptr) return false;
  const auto action = static_cast<Action>(p->action.load(std::memory_order_acquire));
  if (action == Action::kOff) return false;
  const std::uint64_t hits = p->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t every = p->every.load(std::memory_order_relaxed);
  if (every > 1 && hits % every != 0) return false;
  // Bounded-fire sites count down; <= 0 means spent. The decrement is not
  // exact under concurrent hits, which is fine for fault injection.
  std::int64_t rem = p->remaining.load(std::memory_order_relaxed);
  if (rem == 0) return false;
  if (rem > 0) p->remaining.fetch_sub(1, std::memory_order_relaxed);
  p->fires.fetch_add(1, std::memory_order_relaxed);
  switch (action) {
    case Action::kError:
      return true;
    case Action::kCrash:
      // _Exit: no atexit handlers, no leak reports, no stack unwind — the
      // closest portable stand-in for a SIGKILL'd process.
      std::_Exit(kCrashExitCode);
    case Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::microseconds(p->arg.load(std::memory_order_relaxed)));
      return false;
    case Action::kOff:
      break;
  }
  return false;
}

bool set(const char* name, const std::string& spec) {
  ParsedSpec s;
  if (!parse_spec(spec, &s)) return false;
  std::lock_guard<std::mutex> lk(g_write_mu);
  Point* p = find_or_add_locked(name);
  if (p == nullptr) return false;
  apply_locked(p, s);
  return true;
}

void clear(const char* name) {
  std::lock_guard<std::mutex> lk(g_write_mu);
  Point* p = find(name);
  if (p == nullptr) return;
  const bool was_armed = p->action.load(std::memory_order_relaxed) != 0;
  p->action.store(static_cast<int>(Action::kOff), std::memory_order_release);
  if (was_armed) g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void clear_all() {
  std::lock_guard<std::mutex> lk(g_write_mu);
  const std::size_t n = g_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    Point& p = g_points[i];
    const bool was_armed = p.action.load(std::memory_order_relaxed) != 0;
    p.action.store(static_cast<int>(Action::kOff), std::memory_order_release);
    if (was_armed) g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::uint64_t fire_count(const char* name) {
  Point* p = find(name);
  return p == nullptr ? 0 : p->fires.load(std::memory_order_relaxed);
}

std::vector<SiteStats> all_sites() {
  std::vector<SiteStats> out;
  const std::size_t n = g_count.load(std::memory_order_acquire);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point& p = g_points[i];
    const char* name = p.name.load(std::memory_order_acquire);
    if (name == nullptr) continue;
    out.push_back({name, p.hits.load(std::memory_order_relaxed),
                   p.fires.load(std::memory_order_relaxed)});
  }
  return out;
}

}  // namespace msrp::fail
