/// \file
/// Cross-process futex wait/wake on 32-bit words in shared memory.
///
/// The shard transport's doorbells are plain `std::atomic<std::uint32_t>`
/// sequence words living in shm segments mapped by supervisor and workers.
/// A waiter snapshots the word, re-checks its real condition, and parks in
/// the kernel with futex(FUTEX_WAIT) only if the word still holds the
/// snapshot; a waker bumps the word and calls futex(FUTEX_WAKE). The
/// classic lost-wakeup race is closed by the kernel's atomic compare inside
/// FUTEX_WAIT: a bump between snapshot and wait makes the wait return
/// immediately (EAGAIN).
///
/// All waits are bounded: callers pass a timeout so death detection (a
/// worker that will never ring again) and stop flags are always observed
/// within one timeout period even if a wake is lost to a crashed peer.
///
/// Non-Linux builds degrade to a timed sleep — semantically identical
/// (every caller loops on its real condition), just with the old
/// polling-grade latency. futex_available() lets callers and tests know
/// which flavour they got.
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>
#include <cerrno>
#include <ctime>
#else
#include <chrono>
#include <thread>
#endif

namespace msrp::util {

/// True when waits park in the kernel (Linux futex); false for the timed
/// sleep fallback.
inline constexpr bool futex_available() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

/// Blocks until `word` no longer holds `expected`, a wake arrives, or
/// `timeout_us` elapses (0 = return immediately). Spurious returns are
/// fine: every caller re-checks its real condition in a loop. The word must
/// live in memory shared by all participating processes (FUTEX is used
/// without the PRIVATE flag).
inline void futex_wait_u32(const std::atomic<std::uint32_t>& word, std::uint32_t expected,
                           std::uint64_t timeout_us) {
#if defined(__linux__)
  if (timeout_us == 0) return;
  ::timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_us / 1000000);
  ts.tv_nsec = static_cast<long>((timeout_us % 1000000) * 1000);
  // FUTEX_WAIT (not _PRIVATE): supervisor and workers are distinct
  // processes sharing the word through shm. EAGAIN (word already changed),
  // EINTR, and ETIMEDOUT all mean "go re-check the condition".
  ::syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(&word), FUTEX_WAIT, expected,
            &ts, nullptr, 0);
#else
  if (word.load(std::memory_order_acquire) != expected) return;
  std::this_thread::sleep_for(std::chrono::microseconds(timeout_us));
#endif
}

/// Wakes up to `count` waiters parked on `word`. Cheap when nobody waits
/// (one syscall, no contention); callers ring unconditionally after bumping
/// the word rather than tracking waiter counts across processes.
inline void futex_wake_u32(std::atomic<std::uint32_t>& word, int count) {
#if defined(__linux__)
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAKE, count, nullptr,
            nullptr, 0);
#else
  (void)word;
  (void)count;
#endif
}

}  // namespace msrp::util
