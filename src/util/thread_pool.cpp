#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace msrp {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

namespace {

/// Shared state of one parallel_for: the claim cursor, the completion count,
/// and the lowest-index failure. Helper tasks co-own it, so a helper that
/// fires only after the loop has drained finds an exhausted cursor and
/// returns without ever touching the (by then destroyed) loop body.
struct LoopState {
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable all_done_cv;
  std::size_t done = 0;  // guarded by mu; caller waits for done == n
  std::size_t error_index = 0;
  std::exception_ptr error;

  /// Claims and runs items until the cursor is exhausted. Failing items are
  /// recorded, not short-circuited: every item runs exactly once, which is
  /// what lets the caller wait for the simple condition done == n with no
  /// cancellation races (errors are rare and the phase result is discarded
  /// on throw anyway).
  std::size_t drain(std::size_t slot) {
    std::size_t completed = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*body)(i, slot);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error || i < error_index) {
          error = std::current_exception();
          error_index = i;
        }
      }
      ++completed;
    }
    return completed;
  }

  void finish(std::size_t completed) {
    if (completed == 0) return;
    std::lock_guard<std::mutex> lock(mu);
    done += completed;
    if (done == n) all_done_cv.notify_all();
  }
};

}  // namespace

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->body = &body;
  state->n = n;

  // One helper per worker (capped by the item count); the caller is the
  // (size()+1)-th participant and starts draining immediately, so the loop
  // completes even if no helper is ever scheduled — the property that makes
  // fan-out from inside a pool task (cold oracle build on the service pool)
  // deadlock-free.
  const std::size_t helpers = std::min<std::size_t>(size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([state, h] { state->finish(state->drain(h + 1)); });
  }
  state->finish(state->drain(0));

  // Every item is claimed and completed by exactly one participant, so
  // done == n both terminates the wait and proves no thread is still inside
  // `body` — late helpers see an exhausted cursor and bail out.
  std::unique_lock<std::mutex> lock(state->mu);
  state->all_done_cv.wait(lock, [&] { return state->done == state->n; });
  if (state->error) {
    std::exception_ptr err = state->error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace msrp
