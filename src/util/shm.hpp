// RAII POSIX shared-memory segment (shm_open + mmap).
//
// The sharded serving transport places each shard's v2 snapshot image and
// its request/response rings in named shared memory so worker processes can
// map them and serve zero-copy (see service/shard_router.hpp). ShmSegment
// owns exactly one mapping; the creating side additionally owns the name
// and shm_unlink()s it on destruction, so a clean supervisor shutdown
// leaves nothing behind in /dev/shm.
//
// On platforms without POSIX shared memory, supported() returns false and
// create()/open() throw std::runtime_error — multi-process sharding is a
// POSIX-only feature, gated at the call sites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace msrp {

class ShmSegment {
 public:
  ShmSegment() = default;

  /// Creates a fresh segment of `size` bytes (zero-filled), mapped
  /// read-write. The name must follow shm_open rules (leading '/', no other
  /// slashes). Fails if a segment of that name already exists — stale names
  /// from a crashed supervisor must be unlinked explicitly. The returned
  /// wrapper is the owner: its destructor unlinks the name.
  static ShmSegment create(const std::string& name, std::size_t size);

  /// Maps an existing segment; read-only unless `writable`. Never takes
  /// ownership of the name.
  static ShmSegment open(const std::string& name, bool writable = false);

  ~ShmSegment();

  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& name() const { return name_; }
  bool valid() const { return data_ != nullptr; }

  /// True when this wrapper will shm_unlink the name on destruction.
  bool owner() const { return owner_; }

  /// True if a segment of that name currently exists (diagnostics/tests).
  static bool exists(const std::string& name);

  /// Unlinks a name without mapping it (crash-recovery cleanup); returns
  /// false when no such segment existed.
  static bool unlink(const std::string& name);

  /// Whether this platform has POSIX shared memory at all.
  static bool supported();

 private:
  void release() noexcept;

  std::string name_;
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool owner_ = false;
};

}  // namespace msrp
