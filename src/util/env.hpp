// Tiny environment-variable parsing helpers for runtime tunables.
//
// Deployment knobs that must be settable without recompiling (or without
// plumbing a flag through an embedder's stack) read their defaults from the
// environment through these; a flag or Options field still wins when set
// explicitly. Malformed values fall back to the compiled-in default rather
// than aborting — a typo in an env var must never take a server down.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace msrp::env {

/// Value of `name` parsed as an unsigned integer; `fallback` when the
/// variable is unset, empty, malformed, or has trailing garbage.
inline std::uint64_t u64_or(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(v);
}

}  // namespace msrp::env
