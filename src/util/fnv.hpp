// FNV-1a 64-bit hashing, shared by every digest in the library (graph
// digest, snapshot content digest/checksum, oracle-cache keys) so the
// constants and byte order are maintained in exactly one place.
#pragma once

#include <cstddef>
#include <cstdint>

namespace msrp::fnv {

inline constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kPrime = 0x100000001b3ULL;

/// Folds `size` raw bytes into h.
constexpr std::uint64_t mix_bytes(std::uint64_t h, const std::uint8_t* data,
                                  std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) h = (h ^ data[i]) * kPrime;
  return h;
}

/// Folds one 64-bit value into h, little-endian byte order.
constexpr std::uint64_t mix_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (v & 0xff)) * kPrime;
    v >>= 8;
  }
  return h;
}

}  // namespace msrp::fnv
