// End-to-end request deadlines.
//
// A deadline is an absolute steady_clock instant past which the system owes
// the caller an answer of "too late" rather than more waiting. It enters at
// the wire (QUERY_BATCH flag bit 1 carries a relative budget in ms, pinned
// to an absolute instant the moment the frame is decoded) and propagates by
// value: Server -> FairDispatcher -> QueryService -> ShardRouter. Each
// stage that can wait checks it; whichever stage notices expiry first fails
// the batch with DeadlineExceeded, which the server maps to an ERROR frame
// whose message begins with kDeadlineExceededPrefix — no new frame type,
// so deadline-unaware clients still parse the reply.
//
// kNoDeadline (time_point::max) means "wait forever", the pre-deadline
// behavior, and is the default everywhere.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace msrp {

using Deadline = std::chrono::steady_clock::time_point;

/// "No deadline": comparisons against it never expire.
inline constexpr Deadline kNoDeadline = Deadline::max();

inline Deadline deadline_after_ms(std::uint64_t ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

inline bool deadline_expired(Deadline d) {
  return d != kNoDeadline && std::chrono::steady_clock::now() >= d;
}

/// Wire-visible marker: ERROR frames for expired batches carry a message
/// starting with this, and the client retry policy keys off it.
inline constexpr std::string_view kDeadlineExceededPrefix = "DEADLINE_EXCEEDED";

inline bool is_deadline_exceeded_message(std::string_view msg) {
  return msg.substr(0, kDeadlineExceededPrefix.size()) == kDeadlineExceededPrefix;
}

class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error(std::string(kDeadlineExceededPrefix)) {}
  explicit DeadlineExceeded(const std::string& detail)
      : std::runtime_error(std::string(kDeadlineExceededPrefix) + ": " + detail) {}
};

}  // namespace msrp
