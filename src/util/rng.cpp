#include "util/rng.hpp"

#include <algorithm>

namespace msrp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& si : s_) si = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  MSRP_REQUIRE(bound > 0, "next_below bound must be positive");
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  while (true) {
    const std::uint64_t x = next_u64();
    const unsigned __int128 mul = static_cast<unsigned __int128>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(mul);
    if (low >= bound || low >= (-bound) % bound) {
      return static_cast<std::uint64_t>(mul >> 64);
    }
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n, std::uint32_t k) {
  MSRP_REQUIRE(k <= n, "cannot sample more elements than the population size");
  // Floyd's algorithm: O(k) expected insertions, then sort for determinism.
  std::vector<std::uint32_t> out;
  out.reserve(k);
  std::vector<bool> taken(n, false);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(next_below(j + 1));
    if (taken[t]) {
      taken[j] = true;
      out.push_back(j);
    } else {
      taken[t] = true;
      out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Rng Rng::split() {
  Rng child(0);
  for (auto& si : child.s_) si = next_u64() | 1ULL;
  return child;
}

}  // namespace msrp
