#include "util/timer.hpp"

// Header-only today; this TU anchors the component in the build so future
// out-of-line additions (e.g. formatted reports) have a home.
