#include "util/shm.hpp"

#include <stdexcept>
#include <utility>

#include "util/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MSRP_HAVE_SHM 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MSRP_HAVE_SHM 0
#endif

namespace msrp {

#if MSRP_HAVE_SHM

bool ShmSegment::supported() { return true; }

ShmSegment ShmSegment::create(const std::string& name, std::size_t size) {
  MSRP_REQUIRE(size > 0, "shm: cannot create an empty segment");
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) throw std::runtime_error("shm: cannot create " + name);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw std::runtime_error("shm: cannot size " + name);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    throw std::runtime_error("shm: map failed for " + name);
  }
  ShmSegment seg;
  seg.name_ = name;
  seg.data_ = static_cast<std::uint8_t*>(addr);
  seg.size_ = size;
  seg.owner_ = true;
  return seg;
}

ShmSegment ShmSegment::open(const std::string& name, bool writable) {
  const int fd = ::shm_open(name.c_str(), writable ? O_RDWR : O_RDONLY, 0);
  if (fd < 0) throw std::runtime_error("shm: cannot open " + name);
  struct ::stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    throw std::runtime_error("shm: cannot stat " + name);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, writable ? (PROT_READ | PROT_WRITE) : PROT_READ,
                      MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) throw std::runtime_error("shm: map failed for " + name);
  ShmSegment seg;
  seg.name_ = name;
  seg.data_ = static_cast<std::uint8_t*>(addr);
  seg.size_ = size;
  seg.owner_ = false;
  return seg;
}

bool ShmSegment::exists(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDONLY, 0);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

bool ShmSegment::unlink(const std::string& name) {
  return ::shm_unlink(name.c_str()) == 0;
}

void ShmSegment::release() noexcept {
  if (data_ != nullptr) ::munmap(data_, size_);
  if (owner_ && !name_.empty()) ::shm_unlink(name_.c_str());
  data_ = nullptr;
  size_ = 0;
  owner_ = false;
  name_.clear();
}

#else  // !MSRP_HAVE_SHM

bool ShmSegment::supported() { return false; }

ShmSegment ShmSegment::create(const std::string& name, std::size_t) {
  throw std::runtime_error("shm: POSIX shared memory unavailable (" + name + ")");
}

ShmSegment ShmSegment::open(const std::string& name, bool) {
  throw std::runtime_error("shm: POSIX shared memory unavailable (" + name + ")");
}

bool ShmSegment::exists(const std::string&) { return false; }
bool ShmSegment::unlink(const std::string&) { return false; }

void ShmSegment::release() noexcept {
  data_ = nullptr;
  size_ = 0;
  owner_ = false;
  name_.clear();
}

#endif

ShmSegment::~ShmSegment() { release(); }

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : name_(std::move(other.name_)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      owner_(std::exchange(other.owner_, false)) {
  other.name_.clear();
}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this != &other) {
    release();
    name_ = std::move(other.name_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    owner_ = std::exchange(other.owner_, false);
    other.name_.clear();
  }
  return *this;
}

}  // namespace msrp
