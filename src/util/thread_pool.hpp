// Fixed-size worker pool shared by the query service and the parallel
// oracle build (Config::build_pool).
//
// Tasks come in three flavours:
//
//   * submit() — fire-and-forget closures; the only synchronization point
//     is wait_idle(), which blocks until every submitted task has finished
//     and rethrows the first exception any of them threw. That matches the
//     synchronous batch-serving pattern (submit one task per shard, wait,
//     return answers).
//   * submit_task() — returns a std::future for the closure's result, for
//     callers that want one task's value or error back without touching the
//     pool-wide wait_idle() channel. (The async batch path in
//     query_service.cpp manages its own completion counter instead: one
//     future per *batch*, not per shard task.)
//   * parallel_for() — a blocking parallel loop in which the CALLING thread
//     participates: items are claimed from a shared atomic cursor by the
//     caller and by helper tasks on the pool, so the loop completes even
//     when every worker is busy (or when the caller itself *is* a pool
//     worker, as in a cold-cache oracle build running on the service pool).
//     This is the one sanctioned way for a pool task to fan out onto its
//     own pool without deadlocking.
//
// Tasks must never block on other tasks of the same pool (the async batch
// path is written completion-driven for exactly this reason): with every
// worker parked in a wait there is nobody left to run the task being
// waited for. parallel_for is safe because the waiter drains the loop
// itself.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace msrp {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(unsigned num_threads = 0);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Never blocks.
  void submit(std::function<void()> task);

  /// Enqueues a task and returns a future for its result. Exceptions the
  /// task throws surface through the future (and never through
  /// wait_idle()'s first-error channel).
  template <typename F>
  auto submit_task(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });  // packaged_task captures any exception
    return fut;
  }

  /// Blocks until the queue is empty and no task is running, then rethrows
  /// the first exception any task threw since the last wait_idle().
  void wait_idle();

  /// Runs body(i, slot) for every i in [0, n), spreading items across the
  /// pool's workers AND the calling thread, then returns once all n items
  /// have finished. `slot` identifies the participant (0 = the caller,
  /// 1..size() = pool helpers) and is stable for that thread across the
  /// whole loop — bodies use it to pick a private scratch arena. Items are
  /// claimed dynamically from an atomic cursor — which partition each
  /// thread ends up with is scheduling-dependent, so bodies must only
  /// write item-private state or accumulate through commutative operations
  /// (sums, mins) for the overall result to be deterministic. Every item
  /// runs exactly once even if some throw; the recorded exception of the
  /// smallest-index failure is rethrown in the caller. Deadlock-free from
  /// inside pool tasks: the caller drains the loop itself if no worker is
  /// free.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Participant count parallel_for may use: the caller plus every worker.
  std::size_t max_parallelism() const { return workers_.size() + 1; }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait_idle waits for quiescence
  std::size_t in_flight_ = 0;         // queued + running
  std::exception_ptr first_error_;
  bool stop_ = false;
};

/// parallel_for through an optional pool: runs sequentially (slot 0) when
/// `pool` is null, has a single worker, or the loop is trivially small. The
/// solver's phase loops all funnel through this so a Config with no pool
/// costs nothing over the pre-parallel code path.
template <typename F>
void maybe_parallel_for(ThreadPool* pool, std::size_t n, F&& body) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i, std::size_t{0});
    return;
  }
  pool->parallel_for(
      n, std::function<void(std::size_t, std::size_t)>(std::forward<F>(body)));
}

}  // namespace msrp
