// Round-trip tests for the solver-output serialization, plus the snapshot
// corruption suite: every single-byte mutation, truncation, or oversized
// header claim against a v1 or v2 binary snapshot must surface as a clean
// exception — never a crash, hang, or huge allocation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/msrp.hpp"
#include "core/serialize.hpp"
#include "graph/generators.hpp"
#include "service/snapshot.hpp"
#include "util/fnv.hpp"

namespace msrp {
namespace {

TEST(Serialize, RoundTripPreservesEveryCell) {
  Rng rng(1);
  const Graph g = gen::connected_gnp(50, 0.1, rng);
  const std::vector<Vertex> sources{0, 25};
  const MsrpResult res = solve_msrp(g, sources);

  std::stringstream ss;
  write_result(ss, res);
  const SerializedResult loaded = SerializedResult::read(ss);

  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.sources(), sources);
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      EXPECT_EQ(loaded.shortest(s, t), res.shortest(s, t)) << "s=" << s << " t=" << t;
      const auto want = res.row(s, t);
      const auto got = loaded.row(s, t);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
    }
  }
}

TEST(Serialize, InfinityCellsSurvive) {
  // Path: every replacement is infinite.
  const Graph g = gen::path(6);
  const MsrpResult res = solve_msrp(g, {0});
  std::stringstream ss;
  write_result(ss, res);
  const SerializedResult loaded = SerializedResult::read(ss);
  for (Vertex t = 1; t < 6; ++t) {
    for (const Dist d : loaded.row(0, t)) EXPECT_EQ(d, kInfDist);
  }
}

TEST(Serialize, UnreachableTargetsOmitted) {
  Graph g(5, {{0, 1}, {3, 4}});
  const MsrpResult res = solve_msrp(g, {0});
  std::stringstream ss;
  write_result(ss, res);
  const SerializedResult loaded = SerializedResult::read(ss);
  EXPECT_EQ(loaded.shortest(0, 3), kInfDist);
  EXPECT_TRUE(loaded.row(0, 3).empty());
  EXPECT_EQ(loaded.shortest(0, 0), 0u);  // self entry synthesized
}

TEST(Serialize, CommentsIgnoredOnLoad) {
  const Graph g = gen::cycle(5);
  const MsrpResult res = solve_msrp(g, {0});
  std::stringstream ss;
  write_result(ss, res);
  std::stringstream with_comments("# produced by test\n" + ss.str());
  const SerializedResult loaded = SerializedResult::read(with_comments);
  EXPECT_EQ(loaded.shortest(0, 2), 2u);
}

TEST(Serialize, MalformedInputsThrow) {
  {
    std::stringstream ss("wrong header\n");
    EXPECT_THROW(SerializedResult::read(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("msrp-result 1\n");
    EXPECT_THROW(SerializedResult::read(ss), std::invalid_argument);  // no dims
  }
  {
    std::stringstream ss("msrp-result 1\n5 1\n3 2 4\n");  // row before source
    EXPECT_THROW(SerializedResult::read(ss), std::invalid_argument);
  }
  {
    // Row length must equal the distance.
    std::stringstream ss("msrp-result 1\n5 1\nsource 0\n3 2 7\n");
    EXPECT_THROW(SerializedResult::read(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("msrp-result 1\n5 1\nsource 9\n");  // source out of range
    EXPECT_THROW(SerializedResult::read(ss), std::invalid_argument);
  }
}

TEST(Serialize, NonSourceQueryThrows) {
  const Graph g = gen::cycle(4);
  const MsrpResult res = solve_msrp(g, {0});
  std::stringstream ss;
  write_result(ss, res);
  const SerializedResult loaded = SerializedResult::read(ss);
  EXPECT_THROW(loaded.shortest(1, 2), std::invalid_argument);
}

// ------------------------------------------------------ snapshot corruption ---

using service::Snapshot;
using service::SnapshotFormat;

std::string snapshot_image(SnapshotFormat format) {
  Rng rng(17);
  const Graph g = gen::connected_gnp(12, 0.3, rng);
  const MsrpResult res = solve_msrp(g, {0, 7});
  std::stringstream ss;
  Snapshot::capture(res).write(ss, format);
  return ss.str();
}

void expect_read_throws(const std::string& image, const char* what) {
  std::stringstream in(image);
  EXPECT_THROW(Snapshot::read(in), std::invalid_argument) << what;
}

// Every single-bit mutation of either format must be detected: the magic,
// version, and header-size fields are validated directly, and everything
// else — padding included — sits under a checksum.
TEST(SnapshotCorruption, EveryByteFlipIsDetectedV1) {
  const std::string image = snapshot_image(SnapshotFormat::kV1);
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::string mutated = image;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    expect_read_throws(mutated, "v1 byte flip survived");
  }
}

TEST(SnapshotCorruption, EveryByteFlipIsDetectedV2) {
  const std::string image = snapshot_image(SnapshotFormat::kV2);
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::string mutated = image;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    expect_read_throws(mutated, "v2 byte flip survived");
  }
}

// The mmap fast path skips the cells checksum by design; flipped metadata
// must still throw, and flipped cells must never produce an unsafe read —
// exercise every query against every mutated-but-loadable file under ASan.
TEST(SnapshotCorruption, MmapPathStaysMemorySafeUnderByteFlips) {
  const std::string image = snapshot_image(SnapshotFormat::kV2);
  const std::string path = testing::TempDir() + "/msrp_corrupt_mmap.snap";
  std::size_t loadable = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::string mutated = image;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    {
      std::ofstream f(path, std::ios::binary);
      f.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    try {
      const Snapshot snap =
          Snapshot::load(path, {.use_mmap = true, .verify_cells = false});
      ++loadable;  // a cells-section flip: wrong answers allowed, crashes not
      for (const Vertex s : snap.sources()) {
        for (Vertex t = 0; t < snap.num_vertices(); ++t) {
          for (EdgeId e = 0; e < snap.num_edges(); ++e) {
            (void)snap.avoiding(s, t, e);
          }
        }
      }
    } catch (const std::invalid_argument&) {
      // metadata flip, rejected cleanly
    }
  }
  std::remove(path.c_str());
  // Sanity: some flips really did land in the (unverified) cells section.
  EXPECT_GT(loadable, 0u);
  // And with verification on, those same files would have been rejected.
  EXPECT_THROW(
      {
        std::string mutated = image;
        mutated[mutated.size() - 2] ^= 0x40;  // last cells bytes
        std::stringstream in(mutated);
        Snapshot::read(in);
      },
      std::invalid_argument);
}

TEST(SnapshotCorruption, EveryTruncationIsDetected) {
  for (const SnapshotFormat format : {SnapshotFormat::kV1, SnapshotFormat::kV2}) {
    const std::string image = snapshot_image(format);
    for (std::size_t len = 0; len < image.size(); ++len) {
      expect_read_throws(image.substr(0, len), "truncation survived");
    }
  }
}

TEST(SnapshotCorruption, OversizedV2HeaderClaimsAreRejectedCheaply) {
  const std::string image = snapshot_image(SnapshotFormat::kV2);
  // Dimension fields live at fixed offsets in the 72-byte v2 header; the
  // size/overflow guards run before any allocation or checksum pass, so a
  // tiny file claiming enormous tables dies fast instead of allocating.
  const auto patch_u64 = [&](std::size_t off, std::uint64_t v) {
    std::string mutated = image;
    for (int b = 0; b < 8; ++b) mutated[off + b] = static_cast<char>(v >> (8 * b));
    return mutated;
  };
  expect_read_throws(patch_u64(16, 1ULL << 40), "huge n");
  expect_read_throws(patch_u64(16, 0), "zero n");
  expect_read_throws(patch_u64(24, 1ULL << 40), "huge m");
  expect_read_throws(patch_u64(32, 1ULL << 40), "huge sigma");
  expect_read_throws(patch_u64(32, 0), "zero sigma");
  expect_read_throws(patch_u64(40, 1ULL << 60), "huge cell count");
  // Near-overflow combination: n and sigma both huge would overflow a naive
  // sigma * table_bytes size computation.
  expect_read_throws(patch_u64(32, (1ULL << 32) - 2), "sigma at vertex-id ceiling");
}

TEST(SnapshotCorruption, OversizedV1HeaderClaimsAreRejectedCheaply) {
  // Hand-craft a v1 image with a valid checksum but absurd dimensions: the
  // plausibility guard (one byte per vertex record minimum) must fire
  // before any table allocation.
  const auto varint = [](std::vector<std::uint8_t>& out, std::uint64_t v) {
    while (v >= 0x80) {
      out.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
  };
  std::vector<std::uint8_t> img;
  for (const char c : {'M', 'S', 'R', 'P', 'S', 'N', 'A', 'P'}) {
    img.push_back(static_cast<std::uint8_t>(c));
  }
  for (int b = 0; b < 4; ++b) img.push_back(b == 0 ? 1 : 0);  // version 1 LE
  varint(img, (1ULL << 32) - 2);  // n at the vertex-id ceiling
  varint(img, (1ULL << 32) - 2);  // m
  varint(img, (1ULL << 32) - 2);  // sigma
  const std::uint64_t ck = fnv::mix_bytes(fnv::kOffset, img.data() + 8, img.size() - 8);
  for (int b = 0; b < 8; ++b) img.push_back(static_cast<std::uint8_t>(ck >> (8 * b)));
  std::stringstream in(std::string(img.begin(), img.end()));
  EXPECT_THROW(Snapshot::read(in), std::invalid_argument);
}

}  // namespace
}  // namespace msrp
