// Round-trip tests for the solver-output serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "core/msrp.hpp"
#include "core/serialize.hpp"
#include "graph/generators.hpp"

namespace msrp {
namespace {

TEST(Serialize, RoundTripPreservesEveryCell) {
  Rng rng(1);
  const Graph g = gen::connected_gnp(50, 0.1, rng);
  const std::vector<Vertex> sources{0, 25};
  const MsrpResult res = solve_msrp(g, sources);

  std::stringstream ss;
  write_result(ss, res);
  const SerializedResult loaded = SerializedResult::read(ss);

  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.sources(), sources);
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      EXPECT_EQ(loaded.shortest(s, t), res.shortest(s, t)) << "s=" << s << " t=" << t;
      const auto want = res.row(s, t);
      const auto got = loaded.row(s, t);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
    }
  }
}

TEST(Serialize, InfinityCellsSurvive) {
  // Path: every replacement is infinite.
  const Graph g = gen::path(6);
  const MsrpResult res = solve_msrp(g, {0});
  std::stringstream ss;
  write_result(ss, res);
  const SerializedResult loaded = SerializedResult::read(ss);
  for (Vertex t = 1; t < 6; ++t) {
    for (const Dist d : loaded.row(0, t)) EXPECT_EQ(d, kInfDist);
  }
}

TEST(Serialize, UnreachableTargetsOmitted) {
  Graph g(5, {{0, 1}, {3, 4}});
  const MsrpResult res = solve_msrp(g, {0});
  std::stringstream ss;
  write_result(ss, res);
  const SerializedResult loaded = SerializedResult::read(ss);
  EXPECT_EQ(loaded.shortest(0, 3), kInfDist);
  EXPECT_TRUE(loaded.row(0, 3).empty());
  EXPECT_EQ(loaded.shortest(0, 0), 0u);  // self entry synthesized
}

TEST(Serialize, CommentsIgnoredOnLoad) {
  const Graph g = gen::cycle(5);
  const MsrpResult res = solve_msrp(g, {0});
  std::stringstream ss;
  write_result(ss, res);
  std::stringstream with_comments("# produced by test\n" + ss.str());
  const SerializedResult loaded = SerializedResult::read(with_comments);
  EXPECT_EQ(loaded.shortest(0, 2), 2u);
}

TEST(Serialize, MalformedInputsThrow) {
  {
    std::stringstream ss("wrong header\n");
    EXPECT_THROW(SerializedResult::read(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("msrp-result 1\n");
    EXPECT_THROW(SerializedResult::read(ss), std::invalid_argument);  // no dims
  }
  {
    std::stringstream ss("msrp-result 1\n5 1\n3 2 4\n");  // row before source
    EXPECT_THROW(SerializedResult::read(ss), std::invalid_argument);
  }
  {
    // Row length must equal the distance.
    std::stringstream ss("msrp-result 1\n5 1\nsource 0\n3 2 7\n");
    EXPECT_THROW(SerializedResult::read(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("msrp-result 1\n5 1\nsource 9\n");  // source out of range
    EXPECT_THROW(SerializedResult::read(ss), std::invalid_argument);
  }
}

TEST(Serialize, NonSourceQueryThrows) {
  const Graph g = gen::cycle(4);
  const MsrpResult res = solve_msrp(g, {0});
  std::stringstream ss;
  write_result(ss, res);
  const SerializedResult loaded = SerializedResult::read(ss);
  EXPECT_THROW(loaded.shortest(1, 2), std::invalid_argument);
}

}  // namespace
}  // namespace msrp
