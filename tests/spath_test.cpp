// AuxGraph + Dijkstra: the weighted-digraph substrate under the paper's
// auxiliary constructions (Sections 7.1, 8.1, 8.2.2, 8.3).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "spath/aux_graph.hpp"
#include "spath/bucket_queue.hpp"
#include "spath/dijkstra.hpp"
#include "tree/bfs_tree.hpp"
#include "util/rng.hpp"

namespace msrp {
namespace {

TEST(BucketQueue, PopsInPriorityOrderUnderMonotonePushes) {
  BucketQueue q;
  EXPECT_TRUE(q.empty());
  q.push(3, 30);
  q.push(1, 10);
  q.push(3, 31);
  auto [d1, v1] = q.pop();
  EXPECT_EQ(d1, 1u);
  EXPECT_EQ(v1, 10u);
  q.push(2, 20);  // >= last popped priority: allowed
  auto [d2, v2] = q.pop();
  EXPECT_EQ(d2, 2u);
  EXPECT_EQ(v2, 20u);
  EXPECT_EQ(q.pop().first, 3u);
  EXPECT_EQ(q.pop().first, 3u);
  EXPECT_TRUE(q.empty());
  q.clear();
  q.push(0, 1);  // cursor reset by clear()
  EXPECT_EQ(q.pop().second, 1u);
}

TEST(Dijkstra, ScratchReuseAcrossGraphsOfDifferentSizes) {
  // One scratch across many runs (shrinking and growing the node count):
  // every run must agree with the allocating entry point. This is the
  // epoch-stamp invariant the per-thread build arenas rely on.
  DijkstraScratch scratch;
  Rng rng(123);
  for (int iter = 0; iter < 30; ++iter) {
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.next_below(40));
    AuxGraph g;
    g.add_nodes(n);
    const std::size_t arcs = rng.next_below(4 * n);
    for (std::size_t a = 0; a < arcs; ++a) {
      g.add_arc(static_cast<AuxNode>(rng.next_below(n)),
                static_cast<AuxNode>(rng.next_below(n)),
                static_cast<Dist>(rng.next_below(50)));
    }
    const DijkstraResult fresh = dijkstra(g, 0);
    dijkstra(g, 0, scratch);
    for (AuxNode v = 0; v < n; ++v) {
      ASSERT_EQ(scratch.dist(v), fresh.dist[v]) << "iter=" << iter << " v=" << v;
      ASSERT_EQ(scratch.parent(v), fresh.parent[v]) << "iter=" << iter << " v=" << v;
    }
  }
}

TEST(AuxGraph, NodeAllocation) {
  AuxGraph g;
  EXPECT_EQ(g.add_node(), 0u);
  EXPECT_EQ(g.add_nodes(3), 1u);
  EXPECT_EQ(g.add_node(), 4u);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(AuxGraph, ForwardStarGrouping) {
  AuxGraph g;
  g.add_nodes(4);
  g.add_arc(0, 1, 5);
  g.add_arc(2, 3, 7);
  g.add_arc(0, 2, 1);
  g.finalize();
  EXPECT_EQ(g.out(0).size(), 2u);
  EXPECT_EQ(g.out(1).size(), 0u);
  EXPECT_EQ(g.out(2).size(), 1u);
  EXPECT_EQ(g.out(2)[0].to, 3u);
  EXPECT_EQ(g.out(2)[0].weight, 7u);
}

TEST(AuxGraph, FinalizeIdempotentAndLazy) {
  AuxGraph g;
  g.add_nodes(2);
  g.add_arc(0, 1, 1);
  EXPECT_FALSE(g.finalized());
  g.finalize();
  EXPECT_TRUE(g.finalized());
  g.finalize();
  EXPECT_TRUE(g.finalized());
  g.add_arc(1, 0, 2);  // invalidates
  EXPECT_FALSE(g.finalized());
}

TEST(Dijkstra, LineOfWeights) {
  AuxGraph g;
  g.add_nodes(4);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 2, 3);
  g.add_arc(2, 3, 4);
  const DijkstraResult r = dijkstra(g, 0);
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(r.dist[1], 2u);
  EXPECT_EQ(r.dist[2], 5u);
  EXPECT_EQ(r.dist[3], 9u);
  const auto path = extract_path(r, 3);
  EXPECT_EQ(path, (std::vector<AuxNode>{0, 1, 2, 3}));
}

TEST(Dijkstra, PrefersCheaperRoute) {
  AuxGraph g;
  g.add_nodes(3);
  g.add_arc(0, 2, 10);
  g.add_arc(0, 1, 3);
  g.add_arc(1, 2, 4);
  const DijkstraResult r = dijkstra(g, 0);
  EXPECT_EQ(r.dist[2], 7u);
  EXPECT_EQ(r.parent[2], 1u);
}

TEST(Dijkstra, UnreachableAndEmptyPath) {
  AuxGraph g;
  g.add_nodes(3);
  g.add_arc(0, 1, 1);
  const DijkstraResult r = dijkstra(g, 0);
  EXPECT_EQ(r.dist[2], kInfDist);
  EXPECT_TRUE(extract_path(r, 2).empty());
  EXPECT_EQ(extract_path(r, 0), (std::vector<AuxNode>{0}));
}

TEST(Dijkstra, ZeroWeightArcs) {
  AuxGraph g;
  g.add_nodes(3);
  g.add_arc(0, 1, 0);
  g.add_arc(1, 2, 0);
  const DijkstraResult r = dijkstra(g, 0);
  EXPECT_EQ(r.dist[2], 0u);
}

TEST(Dijkstra, InfiniteArcStaysUnreachable) {
  AuxGraph g;
  g.add_nodes(2);
  g.add_arc(0, 1, kInfDist);  // "no path" marker must not become reachable
  const DijkstraResult r = dijkstra(g, 0);
  EXPECT_EQ(r.dist[1], kInfDist);
}

TEST(Dijkstra, SourceOutOfRangeThrows) {
  AuxGraph g;
  g.add_nodes(1);
  EXPECT_THROW(dijkstra(g, 5), std::invalid_argument);
}

TEST(Dijkstra, MatchesBfsOnUnitWeights) {
  // On a unit-weight digraph mirroring an undirected graph, Dijkstra must
  // agree with BFS.
  Rng rng(3);
  const Graph ug = gen::connected_gnp(120, 0.05, rng);
  AuxGraph g;
  g.add_nodes(ug.num_vertices());
  for (EdgeId e = 0; e < ug.num_edges(); ++e) {
    const auto [u, v] = ug.endpoints(e);
    g.add_arc(u, v, 1);
    g.add_arc(v, u, 1);
  }
  const DijkstraResult r = dijkstra(g, 7);
  const BfsTree t(ug, 7);
  for (Vertex v = 0; v < ug.num_vertices(); ++v) {
    EXPECT_EQ(r.dist[v], t.dist(v)) << "v=" << v;
  }
}

TEST(Dijkstra, RandomWeightedDigraphAgainstBellmanFord) {
  Rng rng(9);
  const std::uint32_t n = 60;
  AuxGraph g;
  g.add_nodes(n);
  struct ArcRec {
    AuxNode u, v;
    Dist w;
  };
  std::vector<ArcRec> arcs;
  for (int i = 0; i < 400; ++i) {
    const auto u = static_cast<AuxNode>(rng.next_below(n));
    const auto v = static_cast<AuxNode>(rng.next_below(n));
    if (u == v) continue;
    const auto w = static_cast<Dist>(rng.next_below(50));
    g.add_arc(u, v, w);
    arcs.push_back({u, v, w});
  }
  const DijkstraResult r = dijkstra(g, 0);
  // Bellman–Ford reference.
  std::vector<Dist> bf(n, kInfDist);
  bf[0] = 0;
  for (std::uint32_t round = 0; round < n; ++round) {
    for (const auto& a : arcs) {
      bf[a.v] = std::min(bf[a.v], sat_add(bf[a.u], a.w));
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) EXPECT_EQ(r.dist[v], bf[v]) << "v=" << v;
}

TEST(Dijkstra, ParentChainsAreConsistent) {
  Rng rng(11);
  AuxGraph g;
  const std::uint32_t n = 40;
  g.add_nodes(n);
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<AuxNode>(rng.next_below(n));
    const auto v = static_cast<AuxNode>(rng.next_below(n));
    if (u != v) g.add_arc(u, v, static_cast<Dist>(1 + rng.next_below(9)));
  }
  const DijkstraResult r = dijkstra(g, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (r.dist[v] == kInfDist || v == 0) continue;
    const auto path = extract_path(r, v);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), v);
    // Distances strictly increase along the chain.
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_LT(r.dist[path[i - 1]], r.dist[path[i]] + 1);
    }
  }
}

}  // namespace
}  // namespace msrp
