// Pipelined shard transport under ThreadSanitizer.
//
// The fork-based shard_test suite cannot run under TSan (TSan and fork do
// not mix), so this file exercises exactly the concurrency the pipelined
// ShardRouter added — M submitter threads overlapping batches in the SPSC
// rings under distinct tag namespaces, the collector thread multiplexing
// them, and the futex doorbells in between — with workers running as
// in-process std::threads (ShardRouterOptions::workers_in_process). The
// workers attach the same shm segments by name, so the full transport is
// under the sanitizer: rings, doorbells, collector hand-off, stats.
//
// This test IS in the sanitizer CI regex; keep it fork-free.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/msrp.hpp"
#include "graph/generators.hpp"
#include "service/query_service.hpp"
#include "service/shard_router.hpp"
#include "util/futex.hpp"

namespace msrp {
namespace {

using service::Query;
using service::ShardRouter;
using service::ShardRouterOptions;
using service::Snapshot;

std::vector<Query> random_queries(const Snapshot& oracle, std::size_t count,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({oracle.sources()[rng.next_below(oracle.num_sources())],
                   static_cast<Vertex>(rng.next_below(oracle.num_vertices())),
                   static_cast<EdgeId>(rng.next_below(oracle.num_edges()))});
  }
  return out;
}

TEST(ShardPipelineTest, FutexDoorbellWakesPromptly) {
  // Mechanism check: a parked waiter returns as soon as the word is bumped
  // and woken, and a bump racing the park is never lost (the kernel's
  // compare inside FUTEX_WAIT sees it). Measured far below the bounded
  // timeout to prove the wake, not the timeout, ended the wait.
  std::atomic<std::uint32_t> word{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    word.fetch_add(1, std::memory_order_release);
    util::futex_wake_u32(word, 1);
  });
  while (word.load(std::memory_order_acquire) == 0) {
    util::futex_wait_u32(word, 0, 2'000'000);  // 2 s bound; wake must beat it
  }
  waker.join();
  const auto waited = std::chrono::steady_clock::now() - t0;
  if (util::futex_available()) {
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited).count(), 1000)
        << "futex wait appears timeout-bound, not wake-bound";
  }
}

TEST(ShardPipelineTest, OverlappingBatchesMatchInProcess) {
  if (!ShardRouter::supported()) GTEST_SKIP() << "no shm on this platform";
  service::QueryService svc({.threads = 2, .min_parallel_batch = 64});
  Rng rng(0x7E57);
  const Graph g = gen::connected_avg_degree(120, 6.0, rng);
  const std::vector<Vertex> sources{0, 30, 60, 90};
  const auto oracle = svc.build(g, sources);

  constexpr int kBatches = 5;
  std::vector<std::vector<Query>> queries(kBatches);
  std::vector<std::vector<Dist>> want(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    queries[b] = random_queries(*oracle, 1200, 61 + b);
    want[b] = svc.query_batch(*oracle, queries[b]);
  }

  ShardRouterOptions opts;
  opts.shards = 2;
  opts.ring_capacity = 32;  // tiny rings: maximum interleaving pressure
  opts.workers_in_process = true;
  ShardRouter router(*oracle, opts);

  std::vector<std::thread> threads;
  std::vector<std::vector<Dist>> got(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    threads.emplace_back([&, b] { got[b] = router.query_batch(queries[b]); });
  }
  for (auto& t : threads) t.join();
  for (int b = 0; b < kBatches; ++b) {
    EXPECT_EQ(got[b], want[b]) << "batch " << b;
  }
  const auto st = router.stats();
  EXPECT_EQ(st.batches_routed, static_cast<std::uint64_t>(kBatches));
  EXPECT_GT(st.peak_inflight_batches, 1u) << "batches serialized, not pipelined";
}

TEST(ShardPipelineTest, RepeatedBatchesOnOneRouterStayConsistent) {
  if (!ShardRouter::supported()) GTEST_SKIP() << "no shm on this platform";
  service::QueryService svc({.threads = 1});
  Rng rng(0x5EED);
  const Graph g = gen::connected_gnp(60, 0.15, rng);
  const std::vector<Vertex> sources{2, 31};
  const auto oracle = svc.build(g, sources);

  ShardRouterOptions opts;
  opts.shards = 2;
  opts.workers_in_process = true;
  ShardRouter router(*oracle, opts);

  const auto queries = random_queries(*oracle, 800, 71);
  const auto want = svc.query_batch(*oracle, queries);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(router.query_batch(queries), want) << "round " << round;
  }
  EXPECT_EQ(router.stats().respawns, 0u);
}

}  // namespace
}  // namespace msrp
