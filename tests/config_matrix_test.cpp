// Configuration-matrix sweep: the solver must stay exact (vs the brute
// oracle) across the cross product of graph family x sigma x landmark
// method x constant regime. This is the widest single correctness net in
// the suite; each combination runs on its own fixed seed.
#include <gtest/gtest.h>

#include <tuple>

#include "baseline/baselines.hpp"
#include "core/msrp.hpp"
#include "graph/generators.hpp"

namespace msrp {
namespace {

enum class Family : int { kGnp = 0, kGrid, kChords, kBarbell, kTree, kDense };
enum class Regime : int { kDefault = 0, kPaperConstants, kExact, kTightNear };

const char* family_name(Family f) {
  switch (f) {
    case Family::kGnp: return "gnp";
    case Family::kGrid: return "grid";
    case Family::kChords: return "chords";
    case Family::kBarbell: return "barbell";
    case Family::kTree: return "tree";
    default: return "dense";
  }
}

Graph make_family(Family f, Rng& rng) {
  switch (f) {
    case Family::kGnp: return gen::connected_gnp(56, 0.09, rng);
    case Family::kGrid: return gen::grid(7, 8);
    case Family::kChords: return gen::path_with_chords(56, 14, rng);
    case Family::kBarbell: return gen::barbell(7, 5);
    case Family::kTree: return gen::random_tree(48, rng);
    default: return gen::connected_gnp(36, 0.35, rng);
  }
}

Config make_config(Regime r, LandmarkRpMethod method, std::uint64_t seed) {
  Config cfg;
  cfg.seed = seed;
  cfg.landmark_rp = method;
  switch (r) {
    case Regime::kDefault:
      cfg.oversample = 3.0;
      break;
    case Regime::kPaperConstants:
      cfg.paper_constants = true;
      cfg.oversample = 2.0;
      break;
    case Regime::kExact:
      cfg.exact = true;
      break;
    case Regime::kTightNear:
      cfg.near_scale = 1.0;
      cfg.oversample = 4.0;
      break;
  }
  return cfg;
}

using Combo = std::tuple<int /*Family*/, int /*sigma*/, int /*method*/, int /*Regime*/>;

class ConfigMatrixTest : public testing::TestWithParam<Combo> {};

TEST_P(ConfigMatrixTest, ExactAgainstOracle) {
  const auto [fam_i, sigma, method_i, regime_i] = GetParam();
  const auto fam = static_cast<Family>(fam_i);
  const auto method =
      method_i == 0 ? LandmarkRpMethod::kMmgPerPair : LandmarkRpMethod::kBkAuxGraphs;
  const auto regime = static_cast<Regime>(regime_i);

  const std::uint64_t seed =
      1000 * static_cast<std::uint64_t>(fam_i) + 100 * sigma + 10 * method_i + regime_i;
  Rng rng(seed);
  const Graph g = make_family(fam, rng);
  const auto picks =
      rng.sample_without_replacement(g.num_vertices(), static_cast<std::uint32_t>(sigma));
  const std::vector<Vertex> sources(picks.begin(), picks.end());

  const MsrpResult got = solve_msrp(g, sources, make_config(regime, method, seed));
  const MsrpResult want = solve_msrp_brute_force(g, sources);
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      const auto wrow = want.row(s, t);
      const auto grow = got.row(s, t);
      ASSERT_EQ(grow.size(), wrow.size());
      for (std::size_t i = 0; i < wrow.size(); ++i) {
        ASSERT_EQ(grow[i], wrow[i])
            << family_name(fam) << " sigma=" << sigma << " method=" << method_i
            << " regime=" << regime_i << " s=" << s << " t=" << t << " pos=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, ConfigMatrixTest,
                         testing::Combine(testing::Range(0, 6),        // family
                                          testing::Values(1, 3, 6),    // sigma
                                          testing::Values(0, 1),       // method
                                          testing::Range(0, 4)));      // regime

}  // namespace
}  // namespace msrp
