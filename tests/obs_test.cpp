/// \file
/// Unit tests for the observability layer: histogram bucket geometry,
/// striped counters, the registry (find-or-create, collectors, concurrent
/// record-vs-snapshot — the TSan target), shm counter pages across
/// processes, the trace ring, the Prometheus/stderr renderers, the v4
/// STATS frame codec, and the HTTP metrics listener.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "obs/exposition.hpp"
#include "obs/http_metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/shm.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace msrp {
namespace {

// ----- bucket geometry ------------------------------------------------------

TEST(ObsBuckets, ExactBelowEight) {
  for (std::uint64_t ns = 0; ns < 8; ++ns) {
    EXPECT_EQ(obs::bucket_index(ns), ns);
    EXPECT_EQ(obs::bucket_upper_ns(ns), ns + 1);
  }
}

TEST(ObsBuckets, EveryValueLandsBelowItsUpperEdge) {
  // Sweep powers of two and their neighbours across the whole range.
  for (int p = 0; p < 40; ++p) {
    for (std::int64_t d : {-1, 0, 1}) {
      const std::uint64_t ns = (std::uint64_t{1} << p) + static_cast<std::uint64_t>(d);
      const std::size_t idx = obs::bucket_index(ns);
      ASSERT_LT(idx, obs::kHistogramBuckets);
      if (idx + 1 < obs::kHistogramBuckets) {
        EXPECT_LT(ns, obs::bucket_upper_ns(idx)) << "ns=" << ns;
      }
      if (idx > 0) {
        EXPECT_GE(ns, obs::bucket_upper_ns(idx - 1)) << "ns=" << ns;
      }
    }
  }
}

TEST(ObsBuckets, UpperEdgesStrictlyIncrease) {
  for (std::size_t i = 1; i < obs::kHistogramBuckets; ++i) {
    EXPECT_GT(obs::bucket_upper_ns(i), obs::bucket_upper_ns(i - 1)) << i;
  }
}

TEST(ObsBuckets, RelativeErrorBoundedAboveEight) {
  // Log-linear with 4 sub-buckets per octave: the bucket width is at most
  // a quarter of the value's octave, i.e. <= 12.5% relative error once the
  // estimate is the bucket's upper edge.
  for (std::uint64_t ns = 8; ns < (1ull << 30); ns = ns * 5 / 3 + 1) {
    const std::size_t idx = obs::bucket_index(ns);
    if (idx + 1 >= obs::kHistogramBuckets) break;
    const double upper = static_cast<double>(obs::bucket_upper_ns(idx));
    EXPECT_LE(upper / static_cast<double>(ns), 1.0 + 0.25001) << "ns=" << ns;
  }
}

TEST(ObsBuckets, HugeValuesClampIntoLastBucket) {
  EXPECT_EQ(obs::bucket_index(~std::uint64_t{0}), obs::kHistogramBuckets - 1);
}

// ----- counters / gauges / histograms --------------------------------------

TEST(ObsMetrics, CounterSumsAcrossThreads) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("test.adds");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c->add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(ObsMetrics, FindOrCreateReturnsStableHandles) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.counter("a"), reg.counter("a"));
  EXPECT_NE(reg.counter("a"), reg.counter("b"));
  EXPECT_EQ(reg.gauge("g"), reg.gauge("g"));
  EXPECT_EQ(reg.histogram("h", "x"), reg.histogram("h", "x"));
  EXPECT_NE(reg.histogram("h", "x"), reg.histogram("h", "y"));
}

TEST(ObsMetrics, HistogramQuantilesFromKnownData) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.histogram("lat");
  // 90 fast samples at 100ns, 10 slow at ~1ms: p50 must sit near 100ns,
  // p99 near 1ms (within one bucket's 12.5% rounding).
  for (int i = 0; i < 90; ++i) h->record(100);
  for (int i = 0; i < 10; ++i) h->record(1'000'000);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const obs::HistogramSample& s = snap.histograms[0];
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum_ns, 90u * 100 + 10u * 1'000'000);
  EXPECT_GE(s.quantile(0.50), 100u);
  EXPECT_LE(s.quantile(0.50), 112u);
  EXPECT_GE(s.quantile(0.99), 1'000'000u);
  EXPECT_LE(s.quantile(0.99), 1'125'000u);
}

TEST(ObsMetrics, SnapshotSortsAndSumsDuplicates) {
  obs::MetricsRegistry reg;
  reg.counter("z")->add(1);
  reg.counter("a")->add(2);
  // A collector reporting the same name as an owned counter: summed.
  auto handle = reg.register_collector([](obs::MetricsSnapshot& out) {
    out.counters.push_back({"a", 40});
    out.gauges.push_back({"g", 7});
  });
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[0].value, 42u);
  EXPECT_EQ(snap.counters[1].name, "z");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 7);
}

TEST(ObsMetrics, CollectorHandleUnregistersOnDestruction) {
  obs::MetricsRegistry reg;
  {
    auto handle = reg.register_collector(
        [](obs::MetricsSnapshot& out) { out.counters.push_back({"tmp", 1}); });
    EXPECT_EQ(reg.snapshot().counters.size(), 1u);
  }
  EXPECT_EQ(reg.snapshot().counters.size(), 0u);
}

// The TSan job runs this: recording threads hammer a counter and a
// histogram while a reader loops snapshot(). Any missing synchronization
// in the stripe or collector paths shows up as a race report.
TEST(ObsMetrics, ConcurrentRecordAndSnapshotAreClean) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("c");
  obs::Histogram* h = reg.histogram("h", "stage");
  auto handle = reg.register_collector(
      [c](obs::MetricsSnapshot& out) { out.counters.push_back({"echo", c->value()}); });
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      std::uint64_t ns = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        c->add();
        h->record(ns = (ns * 2862933555777941757ull + 3037000493ull) % 1'000'000);
      }
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const obs::MetricsSnapshot snap = reg.snapshot();
    for (const auto& s : snap.counters) {
      if (s.name == "c") {
        EXPECT_GE(s.value, last);  // monotone under concurrent adds
        last = s.value;
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
}

// ----- shm counter pages ----------------------------------------------------

TEST(ObsShmPage, SlotsSurviveReopen) {
  if (!obs::ShmCounterPage::supported()) GTEST_SKIP() << "no POSIX shm";
  const std::string name = "/msrp.obs_test." + std::to_string(::getpid());
  obs::ShmCounterPage owner = obs::ShmCounterPage::create(name);
  auto* slot = owner.find_or_create("worker.0.requests");
  ASSERT_NE(slot, nullptr);
  slot->fetch_add(41);
  {
    // A worker attaching the page by name finds the same slot — this is
    // what respawn does; the count continues, never resets.
    obs::ShmCounterPage worker = obs::ShmCounterPage::open(name);
    auto* again = worker.find_or_create("worker.0.requests");
    ASSERT_NE(again, nullptr);
    again->fetch_add(1);
  }
  EXPECT_EQ(slot->load(), 42u);
  obs::MetricsSnapshot snap;
  owner.collect(snap, "shard.");
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "shard.worker.0.requests");
  EXPECT_EQ(snap.counters[0].value, 42u);
  EXPECT_TRUE(ShmSegment::exists(name));
}

TEST(ObsShmPage, CreateUnlinksOnDestruction) {
  if (!obs::ShmCounterPage::supported()) GTEST_SKIP() << "no POSIX shm";
  const std::string name = "/msrp.obs_test.unlink." + std::to_string(::getpid());
  {
    obs::ShmCounterPage page = obs::ShmCounterPage::create(name);
    EXPECT_TRUE(ShmSegment::exists(name));
  }
  EXPECT_FALSE(ShmSegment::exists(name));
}

TEST(ObsShmPage, RejectsOverlongNamesAndFullPages) {
  if (!obs::ShmCounterPage::supported()) GTEST_SKIP() << "no POSIX shm";
  const std::string name = "/msrp.obs_test.full." + std::to_string(::getpid());
  obs::ShmCounterPage page = obs::ShmCounterPage::create(name);
  EXPECT_EQ(page.find_or_create(std::string(obs::ShmCounterPage::kSlotNameBytes, 'x')),
            nullptr);
  for (std::size_t i = 0; i < obs::ShmCounterPage::kSlots; ++i) {
    ASSERT_NE(page.find_or_create("slot." + std::to_string(i)), nullptr) << i;
  }
  EXPECT_EQ(page.find_or_create("one.too.many"), nullptr);
  EXPECT_EQ(page.find("absent"), nullptr);
}

// ----- trace ring -----------------------------------------------------------

TEST(ObsTrace, SamplesOneInN) {
  obs::TraceRing ring(4);
  int sampled = 0;
  for (int i = 0; i < 100; ++i) sampled += ring.sample() ? 1 : 0;
  EXPECT_EQ(sampled, 25);
}

TEST(ObsTrace, ZeroDisablesSampling) {
  obs::TraceRing ring(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(ring.sample());
}

TEST(ObsTrace, RingKeepsMostRecentSpansInOrder) {
  obs::TraceRing ring(1, /*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    obs::TraceSpan span;
    span.request_id = i;
    ring.publish(span);
  }
  EXPECT_EQ(ring.published(), 10u);
  const std::vector<obs::TraceSpan> spans = ring.dump();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].request_id, 6 + i);  // oldest retained first
    EXPECT_GT(spans[i].trace_id, 0u);       // assigned at publish
  }
  EXPECT_FALSE(obs::format_trace_spans(spans).empty());
}

// ----- renderers ------------------------------------------------------------

TEST(ObsExposition, NameSanitization) {
  EXPECT_EQ(obs::exposition_name("server.batches_received"),
            "msrp_server_batches_received");
  EXPECT_EQ(obs::exposition_name("failpoint.service.answer.fires"),
            "msrp_failpoint_service_answer_fires");
}

TEST(ObsExposition, PrometheusTextShape) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"server.batches_received", 12});
  snap.gauges.push_back({"dispatch.inflight_batches", 3});
  obs::HistogramSample h;
  h.name = "query_latency";
  h.label = "decode";
  h.buckets[obs::bucket_index(100)] = 2;
  h.buckets[obs::bucket_index(1'000'000)] = 1;
  h.count = 3;
  h.sum_ns = 1'000'200;
  snap.histograms.push_back(h);

  const std::string text = obs::render_prometheus(snap);
  EXPECT_NE(text.find("# TYPE msrp_server_batches_received_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("msrp_server_batches_received_total 12\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE msrp_dispatch_inflight_batches gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("msrp_dispatch_inflight_batches 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE msrp_query_latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("msrp_query_latency_seconds_bucket{stage=\"decode\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("msrp_query_latency_seconds_count{stage=\"decode\"} 3\n"),
            std::string::npos);
  // Cumulative bucket counts: the 1ms bucket line carries all 3 samples.
  EXPECT_NE(text.find("\"} 3\nmsrp_query_latency_seconds_bucket{stage=\"decode\",le=\"+Inf\"}"),
            std::string::npos);
}

TEST(ObsExposition, StatsLinesGroupByPrefix) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"server.batches_received", 5});
  snap.counters.push_back({"server.queries_answered", 50});
  snap.gauges.push_back({"cache.entries", 2});
  const std::string text = obs::render_stats_lines(snap);
  EXPECT_NE(text.find("stats server: batches_received=5 queries_answered=50\n"),
            std::string::npos);
  EXPECT_NE(text.find("stats cache: entries=2\n"), std::string::npos);
}

// ----- v4 STATS frame codec -------------------------------------------------

TEST(ObsWire, StatsRequestRoundTrip) {
  std::vector<std::uint8_t> bytes;
  net::append_stats_request(bytes, 77);
  net::FrameDecoder dec;
  dec.feed(bytes);
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, net::FrameType::kStatsRequest);
  EXPECT_EQ(net::decode_stats_request(frame->payload), 77u);
}

TEST(ObsWire, StatsSnapshotRoundTrip) {
  net::StatsSnapshotFrame stats;
  stats.request_id = 9;
  stats.counters.push_back({"server.batches_received", 12});
  stats.counters.push_back({"failpoint.service.answer.fires", 3});
  stats.gauges.push_back({"dispatch.inflight_batches", -1});
  net::StatsHistogram h;
  h.name = "query_latency";
  h.label = "execute";
  h.count = 4;
  h.sum_ns = 123456;
  h.buckets = {{10, 3}, {55, 1}};
  stats.histograms.push_back(h);

  std::vector<std::uint8_t> bytes;
  net::append_stats_snapshot(bytes, stats);
  net::FrameDecoder dec;
  dec.feed(bytes);
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, net::FrameType::kStatsSnapshot);
  const net::StatsSnapshotFrame got = net::decode_stats_snapshot(frame->payload);
  EXPECT_EQ(got.request_id, 9u);
  ASSERT_EQ(got.counters.size(), 2u);
  EXPECT_EQ(got.counters[0].name, "server.batches_received");
  EXPECT_EQ(got.counters[0].value, 12u);
  EXPECT_EQ(got.counters[1].name, "failpoint.service.answer.fires");
  ASSERT_EQ(got.gauges.size(), 1u);
  EXPECT_EQ(got.gauges[0].value, -1);
  ASSERT_EQ(got.histograms.size(), 1u);
  EXPECT_EQ(got.histograms[0].label, "execute");
  EXPECT_EQ(got.histograms[0].count, 4u);
  ASSERT_EQ(got.histograms[0].buckets.size(), 2u);
  EXPECT_EQ(got.histograms[0].buckets[1], (std::pair<std::uint32_t, std::uint64_t>{55, 1}));
}

// ----- HTTP listener --------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)
std::string http_get(const std::string& host, std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}
#endif

TEST(ObsHttp, ServesMetricsHealthzAndTraces) {
#if defined(__unix__) || defined(__APPLE__)
  if (!obs::MetricsHttpServer::supported()) GTEST_SKIP() << "no epoll";
  obs::MetricsRegistry reg;
  reg.counter("server.batches_received")->add(7);
  obs::TraceRing ring(1, 8);
  obs::TraceSpan span;
  span.request_id = 5;
  ring.publish(span);
  obs::MetricsHttpServer http(reg, &ring, {});
  ASSERT_NE(http.port(), 0);

  const std::string metrics = http_get(http.host(), http.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("msrp_server_batches_received_total 7"), std::string::npos);

  const std::string healthz = http_get(http.host(), http.port(), "/healthz");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("ok"), std::string::npos);

  const std::string traces = http_get(http.host(), http.port(), "/traces");
  EXPECT_NE(traces.find("200 OK"), std::string::npos);

  const std::string missing = http_get(http.host(), http.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
#else
  GTEST_SKIP() << "POSIX sockets required";
#endif
}

}  // namespace
}  // namespace msrp
