#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "tree/bfs_tree.hpp"
#include "tree/lca.hpp"

namespace msrp {
namespace {

// ---------------------------------------------------------------- bfs tree

TEST(BfsTree, DistancesOnPathGraph) {
  const Graph g = gen::path(6);
  const BfsTree t(g, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(t.dist(v), v);
  EXPECT_EQ(t.parent(0), kNoVertex);
  EXPECT_EQ(t.parent(3), 2u);
}

TEST(BfsTree, DistancesOnGrid) {
  const Graph g = gen::grid(4, 4);
  const BfsTree t(g, 0);
  for (Vertex r = 0; r < 4; ++r) {
    for (Vertex c = 0; c < 4; ++c) EXPECT_EQ(t.dist(r * 4 + c), r + c);
  }
}

TEST(BfsTree, UnreachableVertices) {
  Graph g(5, {{0, 1}, {3, 4}});
  const BfsTree t(g, 0);
  EXPECT_TRUE(t.reachable(1));
  EXPECT_FALSE(t.reachable(3));
  EXPECT_EQ(t.dist(3), kInfDist);
  EXPECT_EQ(t.parent(3), kNoVertex);
  EXPECT_TRUE(t.path_to(3).empty());
  EXPECT_EQ(t.order().size(), 2u);
}

TEST(BfsTree, PathExtraction) {
  const Graph g = gen::grid(3, 3);
  const BfsTree t(g, 0);
  const auto p = t.path_to(8);
  ASSERT_EQ(p.size(), 5u);  // dist 4
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p.back(), 8u);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    EXPECT_TRUE(g.has_edge(p[i], p[i + 1]));
    EXPECT_EQ(t.dist(p[i + 1]), t.dist(p[i]) + 1);
  }
}

TEST(BfsTree, PathEdgesMatchPath) {
  const Graph g = gen::grid(3, 3);
  const BfsTree t(g, 0);
  const auto p = t.path_to(8);
  const auto e = t.path_edges(8);
  ASSERT_EQ(e.size(), p.size() - 1);
  for (std::size_t i = 0; i < e.size(); ++i) {
    EXPECT_EQ(g.find_edge(p[i], p[i + 1]), e[i]);
  }
}

TEST(BfsTree, CanonicalDeterminism) {
  Rng rng(23);
  const Graph g = gen::connected_gnp(60, 0.1, rng);
  const BfsTree a(g, 5), b(g, 5);
  for (Vertex v = 0; v < 60; ++v) {
    EXPECT_EQ(a.parent(v), b.parent(v));
    EXPECT_EQ(a.parent_edge(v), b.parent_edge(v));
  }
}

TEST(BfsTree, SkipEdgeActsAsDeletion) {
  const Graph g = gen::cycle(6);
  const EdgeId e01 = g.find_edge(0, 1);
  const BfsTree t(g, 0, e01);
  // Without (0,1), vertex 1 is reached the long way round.
  EXPECT_EQ(t.dist(1), 5u);
  EXPECT_EQ(t.dist(3), 3u);
}

TEST(BfsTree, SkipBridgeDisconnects) {
  const Graph g = gen::path(4);
  const BfsTree t(g, 0, g.find_edge(1, 2));
  EXPECT_TRUE(t.reachable(1));
  EXPECT_FALSE(t.reachable(2));
  EXPECT_FALSE(t.reachable(3));
}

TEST(BfsTree, TreeEdgeChild) {
  const Graph g = gen::path(4);
  const BfsTree t(g, 0);
  const EdgeId e = g.find_edge(1, 2);
  ASSERT_TRUE(t.is_tree_edge(g, e));
  EXPECT_EQ(t.tree_edge_child(g, e).value(), 2u);
}

TEST(BfsTree, NonTreeEdgeHasNoChild) {
  const Graph g = gen::cycle(4);
  const BfsTree t(g, 0);
  // Exactly one cycle edge is a non-tree edge.
  int non_tree = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) non_tree += !t.is_tree_edge(g, e);
  EXPECT_EQ(non_tree, 1);
}

TEST(BfsTree, OrderIsBfsOrder) {
  const Graph g = gen::grid(3, 3);
  const BfsTree t(g, 4);  // center
  const auto& ord = t.order();
  ASSERT_EQ(ord.size(), 9u);
  EXPECT_EQ(ord[0], 4u);
  for (std::size_t i = 1; i < ord.size(); ++i) {
    EXPECT_GE(t.dist(ord[i]), t.dist(ord[i - 1]));
  }
}

// --------------------------------------------------------------------- lca

/// Naive LCA by climbing parents.
Vertex naive_lca(const BfsTree& t, Vertex x, Vertex y) {
  if (!t.reachable(x) || !t.reachable(y)) return kNoVertex;
  while (x != y) {
    if (t.dist(x) < t.dist(y)) std::swap(x, y);
    x = t.parent(x);
  }
  return x;
}

class LcaParamTest : public testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(LcaParamTest, MatchesNaiveOnRandomGraphs) {
  const auto [n, p, seed] = GetParam();
  Rng rng(seed);
  const Graph g = gen::connected_gnp(static_cast<Vertex>(n), p, rng);
  const BfsTree t(g, 0);
  const Lca lca(t);
  for (int q = 0; q < 2000; ++q) {
    const auto x = static_cast<Vertex>(rng.next_below(n));
    const auto y = static_cast<Vertex>(rng.next_below(n));
    EXPECT_EQ(lca.lca(x, y), naive_lca(t, x, y)) << "x=" << x << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LcaParamTest,
                         testing::Values(std::make_tuple(2, 0.5, 1),
                                         std::make_tuple(17, 0.2, 2),
                                         std::make_tuple(64, 0.08, 3),
                                         std::make_tuple(200, 0.02, 4),
                                         std::make_tuple(333, 0.01, 5)));

TEST(Lca, SelfAndRoot) {
  const Graph g = gen::grid(3, 3);
  const BfsTree t(g, 0);
  const Lca lca(t);
  EXPECT_EQ(lca.lca(5, 5), 5u);
  EXPECT_EQ(lca.lca(0, 7), 0u);
  EXPECT_TRUE(lca.is_ancestor(0, 8));
  EXPECT_TRUE(lca.is_ancestor(8, 8));
}

TEST(Lca, AncestryOnPath) {
  const Graph g = gen::path(8);
  const BfsTree t(g, 0);
  const Lca lca(t);
  EXPECT_TRUE(lca.is_ancestor(3, 6));
  EXPECT_FALSE(lca.is_ancestor(6, 3));
  EXPECT_EQ(lca.lca(3, 6), 3u);
  EXPECT_TRUE(lca.edge_on_path(3, 7));   // edge (2,3) on 0->7 path
  EXPECT_FALSE(lca.edge_on_path(5, 4));  // edge (4,5) not on 0->4 path
}

TEST(Lca, DisconnectedQueries) {
  Graph g(5, {{0, 1}, {1, 2}, {3, 4}});
  const BfsTree t(g, 0);
  const Lca lca(t);
  EXPECT_EQ(lca.lca(1, 3), kNoVertex);
  EXPECT_FALSE(lca.is_ancestor(0, 3));
  EXPECT_FALSE(lca.is_ancestor(3, 3));  // unreachable: no Euler interval
  EXPECT_EQ(lca.tree_distance(1, 3), kInfDist);
}

TEST(Lca, TreeDistanceMatchesBfsOnTrees) {
  Rng rng(31);
  const Graph g = gen::random_tree(120, rng);
  const BfsTree t(g, 0);
  const Lca lca(t);
  // On a tree, tree_distance equals true graph distance.
  for (int q = 0; q < 500; ++q) {
    const auto x = static_cast<Vertex>(rng.next_below(120));
    const BfsTree tx(g, x);
    const auto y = static_cast<Vertex>(rng.next_below(120));
    EXPECT_EQ(lca.tree_distance(x, y), tx.dist(y));
  }
}

TEST(Lca, SingleVertexGraph) {
  Graph g(1);
  const BfsTree t(g, 0);
  const Lca lca(t);
  EXPECT_EQ(lca.lca(0, 0), 0u);
  EXPECT_EQ(lca.tree_distance(0, 0), 0u);
}

}  // namespace
}  // namespace msrp
