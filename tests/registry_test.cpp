// Tests for the multi-tenant registry layer (src/registry/): the weighted
// round-robin dispatcher's fairness and admission verdicts under manual
// completion, the OracleRegistry lifecycle state machine (admission,
// build, unregister, drain, byte budget), and the OracleCache
// refresh-ahead path under an injected clock — including the acceptance
// property that a warmed key never pays a cold build across a TTL
// boundary. The wire-level counterparts live in net_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "registry/dispatch.hpp"
#include "registry/oracle_registry.hpp"
#include "service/oracle_cache.hpp"
#include "service/query_service.hpp"
#include "util/rng.hpp"

namespace msrp {
namespace {

using registry::DispatchOptions;
using registry::DispatchVerdict;
using registry::FairDispatcher;
using registry::OracleRegistry;
using registry::OracleState;
using registry::RegisterOutcome;
using registry::RegistryOptions;
using service::Query;
using service::Snapshot;

// --------------------------------------------------------- FairDispatcher ---

/// Captures every downstream submit so the test completes batches by hand
/// and observes the exact dispatch order. The tenant is tagged in the
/// batch's first query source (the Submit signature does not carry the
/// digest — production does not need it there).
struct ManualSubmit {
  struct Captured {
    Vertex tag = 0;
    service::BatchCallback done;
  };
  std::deque<Captured> captured;
  bool throw_on_submit = false;

  FairDispatcher::Submit fn() {
    return [this](std::shared_ptr<const Snapshot>, std::vector<Query> queries,
                  service::BatchCallback done, Deadline) {
      if (throw_on_submit) throw std::runtime_error("submit refused");
      captured.push_back({queries.empty() ? Vertex{0} : queries[0].s, std::move(done)});
    };
  }

  /// Completes the oldest dispatched batch (which may synchronously pump
  /// more batches into `captured`) and returns its tenant tag.
  Vertex complete_front() {
    Captured c = std::move(captured.front());
    captured.pop_front();
    c.done(service::BatchResult{});
    return c.tag;
  }
};

std::vector<Query> tagged_batch(Vertex tag) { return {Query{tag, 0, 0}}; }

TEST(FairDispatcher, FastPathDispatchesUnderCaps) {
  ManualSubmit ms;
  FairDispatcher disp(ms.fn(), DispatchOptions{});
  int completions = 0;
  EXPECT_EQ(disp.submit(1, nullptr, tagged_batch(1),
                        [&](service::BatchResult) { ++completions; }),
            DispatchVerdict::kDispatched);
  EXPECT_EQ(disp.inflight_batches(), 1u);
  EXPECT_EQ(disp.tenant_inflight(1), 1u);
  ASSERT_EQ(ms.captured.size(), 1u);
  ms.complete_front();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(disp.inflight_batches(), 0u);
  EXPECT_EQ(disp.dispatched_total(), 1u);
}

TEST(FairDispatcher, PerTenantCapQueuesInFifoOrder) {
  ManualSubmit ms;
  FairDispatcher disp(ms.fn(), {.per_tenant_inflight = 1, .per_tenant_queue = 8,
                                .total_inflight = 8});
  auto noop = [](service::BatchResult) {};
  EXPECT_EQ(disp.submit(1, nullptr, tagged_batch(10), noop), DispatchVerdict::kDispatched);
  EXPECT_EQ(disp.submit(1, nullptr, tagged_batch(11), noop), DispatchVerdict::kQueued);
  EXPECT_EQ(disp.submit(1, nullptr, tagged_batch(12), noop), DispatchVerdict::kQueued);
  EXPECT_EQ(disp.queued_batches(), 2u);

  // Completions drain the tenant's own queue in submission order.
  EXPECT_EQ(ms.complete_front(), 10);
  ASSERT_EQ(ms.captured.size(), 1u);
  EXPECT_EQ(ms.complete_front(), 11);
  ASSERT_EQ(ms.captured.size(), 1u);
  EXPECT_EQ(ms.complete_front(), 12);
  EXPECT_EQ(disp.queued_batches(), 0u);
  EXPECT_EQ(disp.inflight_batches(), 0u);
}

TEST(FairDispatcher, FullQueueAnswersBusyAndNeverRunsTheCallback) {
  ManualSubmit ms;
  FairDispatcher disp(ms.fn(), {.per_tenant_inflight = 1, .per_tenant_queue = 1,
                                .total_inflight = 8});
  auto noop = [](service::BatchResult) {};
  bool busy_callback_ran = false;
  EXPECT_EQ(disp.submit(1, nullptr, tagged_batch(1), noop), DispatchVerdict::kDispatched);
  EXPECT_EQ(disp.submit(1, nullptr, tagged_batch(1), noop), DispatchVerdict::kQueued);
  EXPECT_EQ(disp.submit(1, nullptr, tagged_batch(1),
                        [&](service::BatchResult) { busy_callback_ran = true; }),
            DispatchVerdict::kBusy);
  EXPECT_EQ(disp.busy_rejections(), 1u);

  ms.complete_front();
  ms.complete_front();
  EXPECT_EQ(disp.inflight_batches(), 0u);
  EXPECT_FALSE(busy_callback_ran);
}

// The acceptance fairness property: a tenant with a deep backlog cannot
// starve another. With every cap at 1 the dispatch order is fully
// deterministic, so the test pins it exactly: B's first batch goes out on
// the second completion even though seven A batches were queued before it.
TEST(FairDispatcher, SaturatingTenantCannotStarveAnother) {
  ManualSubmit ms;
  FairDispatcher disp(ms.fn(), {.per_tenant_inflight = 1, .per_tenant_queue = 64,
                                .total_inflight = 1});
  auto noop = [](service::BatchResult) {};
  // Tenant A floods: one dispatched, seven parked.
  EXPECT_EQ(disp.submit(0xA, nullptr, tagged_batch(1), noop), DispatchVerdict::kDispatched);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(disp.submit(0xA, nullptr, tagged_batch(1), noop), DispatchVerdict::kQueued);
  }
  // Tenant B arrives last with two batches.
  EXPECT_EQ(disp.submit(0xB, nullptr, tagged_batch(2), noop), DispatchVerdict::kQueued);
  EXPECT_EQ(disp.submit(0xB, nullptr, tagged_batch(2), noop), DispatchVerdict::kQueued);

  std::vector<Vertex> order;
  while (!ms.captured.empty()) order.push_back(ms.complete_front());
  EXPECT_EQ(order,
            (std::vector<Vertex>{1, 1, 2, 1, 2, 1, 1, 1, 1, 1}));  // B at 3rd and 5th
  EXPECT_EQ(disp.dispatched_total(), 10u);
  EXPECT_EQ(disp.queued_batches(), 0u);
}

TEST(FairDispatcher, WeightGrantsProportionalShare) {
  ManualSubmit ms;
  FairDispatcher disp(ms.fn(), {.per_tenant_inflight = 2, .per_tenant_queue = 64,
                                .total_inflight = 1});
  auto noop = [](service::BatchResult) {};
  EXPECT_EQ(disp.submit(0xA, nullptr, tagged_batch(1), noop, /*weight=*/2),
            DispatchVerdict::kDispatched);
  for (int i = 0; i < 5; ++i) disp.submit(0xA, nullptr, tagged_batch(1), noop, 2);
  for (int i = 0; i < 3; ++i) disp.submit(0xB, nullptr, tagged_batch(2), noop, 1);

  std::vector<Vertex> order;
  while (!ms.captured.empty()) order.push_back(ms.complete_front());
  // Two A grants per ring lap to B's one.
  EXPECT_EQ(order, (std::vector<Vertex>{1, 1, 1, 2, 1, 1, 2, 1, 2}));
}

TEST(FairDispatcher, SubmitExceptionDeliversFailureExactlyOnce) {
  ManualSubmit ms;
  FairDispatcher disp(ms.fn(), DispatchOptions{});
  ms.throw_on_submit = true;
  int failures = 0;
  EXPECT_EQ(disp.submit(1, nullptr, tagged_batch(1),
                        [&](service::BatchResult r) { failures += (r.error != nullptr); }),
            DispatchVerdict::kDispatched);
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(disp.inflight_batches(), 0u);  // bookkeeping rolled back

  // The dispatcher stays healthy for the next submit.
  ms.throw_on_submit = false;
  int completions = 0;
  disp.submit(1, nullptr, tagged_batch(1), [&](service::BatchResult) { ++completions; });
  ms.complete_front();
  EXPECT_EQ(completions, 1);
}

TEST(FairDispatcher, TotalInflightCapBindsAcrossTenants) {
  ManualSubmit ms;
  FairDispatcher disp(ms.fn(), {.per_tenant_inflight = 4, .per_tenant_queue = 8,
                                .total_inflight = 2});
  auto noop = [](service::BatchResult) {};
  EXPECT_EQ(disp.submit(1, nullptr, tagged_batch(1), noop), DispatchVerdict::kDispatched);
  EXPECT_EQ(disp.submit(2, nullptr, tagged_batch(2), noop), DispatchVerdict::kDispatched);
  // Tenant 3 is under its own cap but the pool is full.
  EXPECT_EQ(disp.submit(3, nullptr, tagged_batch(3), noop), DispatchVerdict::kQueued);
  EXPECT_EQ(ms.complete_front(), 1);
  ASSERT_EQ(ms.captured.size(), 2u);  // tenant 3 dispatched by the completion
  EXPECT_EQ(ms.captured.back().tag, 3);
}

// ---------------------------------------------------------- OracleRegistry ---

/// Shared small instance; builds are real solves on the service pool.
struct RegistryFixture {
  Graph g{0};
  std::vector<Vertex> sources{0, 5, 9};
  service::QueryService svc{{.threads = 2, .min_parallel_batch = 64}};

  RegistryFixture() {
    Rng rng(5);
    g = gen::connected_gnp(30, 0.15, rng);
  }

  RegisterOutcome register_and_wait(OracleRegistry& reg, const Graph& graph,
                                    std::vector<Vertex> srcs) {
    std::promise<RegisterOutcome> promise;
    auto future = promise.get_future();
    const bool admitted = reg.register_graph(
        graph.num_vertices(), graph.edges(), std::move(srcs), Config{},
        [&](RegisterOutcome o) { promise.set_value(std::move(o)); });
    EXPECT_TRUE(admitted);
    return future.get();
  }
};

TEST(OracleRegistry, RegisteredOracleMatchesLocalBuild) {
  RegistryFixture fx;
  OracleRegistry reg(fx.svc);
  const RegisterOutcome out = fx.register_and_wait(reg, fx.g, fx.sources);
  ASSERT_EQ(out.state, OracleState::kReady);
  ASSERT_NE(out.oracle, nullptr);

  const auto local = fx.svc.build(fx.g, fx.sources);
  EXPECT_EQ(out.digest, local->content_digest());
  EXPECT_EQ(reg.state(out.digest), OracleState::kReady);
  EXPECT_EQ(reg.resolve(out.digest), out.oracle);
  EXPECT_EQ(reg.tenant_count(), 1u);

  const auto listed = reg.list();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].digest, out.digest);
  EXPECT_EQ(listed[0].num_vertices, fx.g.num_vertices());
  EXPECT_EQ(listed[0].sources, fx.sources);
  EXPECT_GT(listed[0].footprint_bytes, 0u);
}

TEST(OracleRegistry, AdmissionRejectsBeyondMaxTenants) {
  RegistryFixture fx;
  OracleRegistry reg(fx.svc, {.max_tenants = 1});
  const RegisterOutcome first = fx.register_and_wait(reg, fx.g, fx.sources);
  ASSERT_EQ(first.state, OracleState::kReady);

  std::string reason;
  const bool admitted = reg.register_graph(
      fx.g.num_vertices(), fx.g.edges(), {0},  // different sources = new tenant
      Config{}, [](RegisterOutcome) { FAIL() << "rejected registration ran its callback"; },
      &reason);
  EXPECT_FALSE(admitted);
  EXPECT_NE(reason.find("registry full"), std::string::npos);
  EXPECT_EQ(reg.tenant_count(), 1u);
}

TEST(OracleRegistry, InvalidSourcesFailButStayListableUntilDisplaced) {
  RegistryFixture fx;
  OracleRegistry reg(fx.svc, {.max_tenants = 1});
  const RegisterOutcome bad =
      fx.register_and_wait(reg, fx.g, {fx.g.num_vertices() + 7});  // out of range
  EXPECT_EQ(bad.state, OracleState::kFailed);
  EXPECT_FALSE(bad.error.empty());

  // The failure keeps its slot for reason visibility: it is listable,
  // state kFailed, with the build error attached.
  EXPECT_EQ(reg.tenant_count(), 1u);
  const auto listed = reg.list();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].state, OracleState::kFailed);
  EXPECT_FALSE(listed[0].error.empty());

  // But it never blocks admission — a full registry displaces the oldest
  // failure to admit a live registration.
  const RegisterOutcome good = fx.register_and_wait(reg, fx.g, fx.sources);
  EXPECT_EQ(good.state, OracleState::kReady);
  EXPECT_EQ(reg.tenant_count(), 1u);
  EXPECT_EQ(reg.state(good.digest), OracleState::kReady);
}

TEST(OracleRegistry, ReRegisteringTheSameDigestIsIdempotent) {
  RegistryFixture fx;
  OracleRegistry reg(fx.svc);
  const RegisterOutcome a = fx.register_and_wait(reg, fx.g, fx.sources);
  const RegisterOutcome b = fx.register_and_wait(reg, fx.g, fx.sources);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(b.state, OracleState::kReady);
  EXPECT_EQ(reg.tenant_count(), 1u);  // one entry, not two
}

TEST(OracleRegistry, UnregisterLifecycle) {
  RegistryFixture fx;
  OracleRegistry reg(fx.svc);
  EXPECT_EQ(reg.unregister(0xdeadbeef), std::nullopt);  // never registered

  const RegisterOutcome out = fx.register_and_wait(reg, fx.g, fx.sources);
  ASSERT_EQ(out.state, OracleState::kReady);

  // With a batch in flight, unregister drains instead of dropping.
  reg.note_batch(out.digest);
  EXPECT_EQ(reg.unregister(out.digest), OracleState::kExpiring);
  EXPECT_EQ(reg.unregister(out.digest), OracleState::kExpiring);  // idempotent
  EXPECT_EQ(reg.resolve(out.digest), nullptr);  // invisible to new batches
  reg.note_complete(out.digest, 100);
  EXPECT_EQ(reg.state(out.digest), OracleState::kUnknown);  // drained away
  EXPECT_EQ(reg.tenant_count(), 0u);

  // Idle oracles retire immediately.
  const RegisterOutcome again = fx.register_and_wait(reg, fx.g, fx.sources);
  EXPECT_EQ(reg.unregister(again.digest), OracleState::kUnregistered);
  EXPECT_EQ(reg.tenant_count(), 0u);
}

TEST(OracleRegistry, ByteBudgetRejectsAtCompletion) {
  RegistryFixture fx;
  OracleRegistry reg(fx.svc, {.max_tenants = 8, .max_bytes = 1});
  const RegisterOutcome out = fx.register_and_wait(reg, fx.g, fx.sources);
  EXPECT_EQ(out.state, OracleState::kFailed);
  EXPECT_NE(out.error.find("byte budget"), std::string::npos);
  // The rejection is retained as a listable kFailed slot, reason attached.
  EXPECT_EQ(reg.tenant_count(), 1u);
  const auto listed = reg.list();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].state, OracleState::kFailed);
  EXPECT_NE(listed[0].error.find("byte budget"), std::string::npos);
}

TEST(OracleRegistry, RegisterSnapshotPathLoadsAndFailsCleanly) {
  RegistryFixture fx;
  const auto oracle = fx.svc.build(fx.g, fx.sources);
  const std::string path = testing::TempDir() + "/registry_test_oracle.snap";
  oracle->save(path);

  OracleRegistry reg(fx.svc);
  std::promise<RegisterOutcome> ok_promise;
  ASSERT_TRUE(reg.register_snapshot(
      path, [&](RegisterOutcome o) { ok_promise.set_value(std::move(o)); }));
  const RegisterOutcome ok = ok_promise.get_future().get();
  EXPECT_EQ(ok.state, OracleState::kReady);
  EXPECT_EQ(ok.digest, oracle->content_digest());

  std::promise<RegisterOutcome> bad_promise;
  ASSERT_TRUE(reg.register_snapshot(path + ".does-not-exist", [&](RegisterOutcome o) {
    bad_promise.set_value(std::move(o));
  }));
  const RegisterOutcome bad = bad_promise.get_future().get();
  EXPECT_EQ(bad.state, OracleState::kFailed);
  EXPECT_FALSE(bad.error.empty());
  // The good oracle serves; the failure sits beside it as a kFailed slot
  // until the failed-TTL reap (or an unregister) clears it.
  EXPECT_EQ(reg.tenant_count(), 2u);
  EXPECT_EQ(reg.state(ok.digest), OracleState::kReady);
  std::remove(path.c_str());
}

TEST(OracleRegistry, AdoptMakesTheDefaultOracleAFirstClassTenant) {
  RegistryFixture fx;
  const auto oracle = fx.svc.build(fx.g, fx.sources);
  OracleRegistry reg(fx.svc);
  const std::uint64_t digest = reg.adopt(oracle);
  EXPECT_EQ(digest, oracle->content_digest());
  EXPECT_EQ(reg.adopt(oracle), digest);  // idempotent
  EXPECT_EQ(reg.resolve(digest), oracle);
  EXPECT_EQ(reg.tenant_count(), 1u);
}

// ---------------------------------------------------- refresh-ahead cache ---

/// A cache with an injected clock and a manual refresh runner: the test
/// advances time and runs refresh tasks by hand, so every interleaving of
/// TTL, refresh, and eviction is deterministic.
struct RefreshFixture {
  service::QueryService svc{{.threads = 2, .min_parallel_batch = 64}};
  std::shared_ptr<const Snapshot> snap;
  service::OracleCache cache{2, 0, std::chrono::milliseconds(1000)};
  std::vector<std::function<void()>> tasks;  // parked refresh work
  std::chrono::steady_clock::time_point base{};
  std::int64_t now_ms = 0;
  int builds = 0;
  int rebuilds = 0;
  bool rebuild_throws = false;

  RefreshFixture() {
    Rng rng(9);
    const Graph g = gen::connected_gnp(20, 0.2, rng);
    snap = svc.build(g, {0, 3});
    cache.set_clock_for_testing([this] { return base + std::chrono::milliseconds(now_ms); });
    cache.enable_refresh_ahead(0.5, [this](std::function<void()> t) {
      tasks.push_back(std::move(t));
    });
  }

  service::OracleKey key(std::uint64_t graph_digest) {
    return {graph_digest, {0}, 1};
  }

  std::shared_ptr<const Snapshot> lookup(const service::OracleKey& k) {
    return cache.get_or_build(
        k, [this] { ++builds; return snap; },
        [this]() -> service::OracleCache::Builder {
          return [this]() -> std::shared_ptr<const Snapshot> {
            ++rebuilds;
            if (rebuild_throws) throw std::runtime_error("rebuild exploded");
            return snap;
          };
        });
  }

  void run_refreshes() {
    auto pending = std::move(tasks);
    tasks.clear();
    for (auto& t : pending) t();
  }
};

TEST(OracleCacheRefreshAhead, HitPastFractionSchedulesExactlyOneRefresh) {
  RefreshFixture fx;
  const auto k = fx.key(1);
  fx.lookup(k);
  EXPECT_EQ(fx.builds, 1);
  EXPECT_TRUE(fx.tasks.empty());  // fresh entry: nothing to refresh

  fx.now_ms = 600;  // past 0.5 * 1000ms
  fx.lookup(k);
  EXPECT_EQ(fx.tasks.size(), 1u);
  fx.lookup(k);  // concurrent hot lookups single-flight through one slot
  EXPECT_EQ(fx.tasks.size(), 1u);

  fx.run_refreshes();
  EXPECT_EQ(fx.rebuilds, 1);
  EXPECT_EQ(fx.cache.refreshes(), 1u);
  EXPECT_EQ(fx.builds, 1);  // the cold builder never ran again
}

// The acceptance property: after warmup, a key that stays hot never pays a
// cold build at a TTL boundary — the refresh re-stamps the entry first.
TEST(OracleCacheRefreshAhead, WarmKeyNeverColdBuildsAcrossTtlBoundary) {
  RefreshFixture fx;
  const auto k = fx.key(1);
  fx.lookup(k);  // warmup at t=0
  for (std::int64_t t = 600; t <= 6000; t += 600) {
    fx.now_ms = t;  // every step crosses the refresh fraction; t=1200 and
                    // beyond are past the ORIGINAL entry's full TTL
    ASSERT_EQ(fx.lookup(k), fx.snap) << "t=" << t;
    fx.run_refreshes();
  }
  EXPECT_EQ(fx.builds, 1);                  // exactly one cold build, ever
  EXPECT_EQ(fx.cache.expirations(), 0u);    // no entry aged out
  EXPECT_GE(fx.cache.refreshes(), 9u);      // the rebuilds kept it warm
  EXPECT_EQ(fx.cache.misses(), 1u);
}

TEST(OracleCacheRefreshAhead, FailedRefreshKeepsServingAndRetriesLater) {
  RefreshFixture fx;
  const auto k = fx.key(1);
  fx.lookup(k);
  fx.now_ms = 600;
  fx.rebuild_throws = true;
  fx.lookup(k);
  fx.run_refreshes();
  EXPECT_EQ(fx.cache.refresh_failures(), 1u);
  EXPECT_EQ(fx.lookup(k), fx.snap);  // still served from the old entry

  // The single-flight slot was released: the next stale hit schedules a
  // fresh attempt, and a successful one re-stamps the entry.
  fx.rebuild_throws = false;
  fx.lookup(k);
  ASSERT_EQ(fx.tasks.size(), 1u);
  fx.run_refreshes();
  EXPECT_EQ(fx.cache.refreshes(), 1u);
  fx.now_ms = 1400;  // past the original TTL, within the re-stamped one
  fx.lookup(k);
  EXPECT_EQ(fx.builds, 1);
}

TEST(OracleCacheRefreshAhead, IdleKeyStillExpiresAndColdBuilds) {
  RefreshFixture fx;
  const auto k = fx.key(1);
  fx.lookup(k);
  fx.now_ms = 1100;  // no hit crossed the refresh window; TTL elapsed
  fx.lookup(k);
  EXPECT_EQ(fx.builds, 2);  // cold build: refresh-ahead needs hits to help
  EXPECT_EQ(fx.cache.expirations(), 1u);
  EXPECT_TRUE(fx.tasks.empty());
}

TEST(OracleCacheRefreshAhead, EvictionRacingARefreshStaysConsistent) {
  RefreshFixture fx;  // capacity 2
  const auto k1 = fx.key(1);
  fx.lookup(k1);
  fx.now_ms = 600;
  fx.lookup(k1);  // schedules k1's refresh...
  ASSERT_EQ(fx.tasks.size(), 1u);
  fx.lookup(fx.key(2));
  fx.lookup(fx.key(3));  // ...k1 is now the LRU victim and gets evicted
  fx.run_refreshes();    // the refresh lands after the eviction
  EXPECT_LE(fx.cache.size(), fx.cache.capacity());
  EXPECT_NE(fx.lookup(fx.key(3)), nullptr);
  EXPECT_NE(fx.lookup(fx.key(2)), nullptr);
  // Whether the late refresh re-inserted k1 or was dropped, the cache is
  // budget-consistent and every lookup still answers.
  EXPECT_NE(fx.lookup(k1), nullptr);
}

// The same property end to end through QueryService: Options wire the
// refresh runner to the serving pool, so the rebuild happens on a worker
// while the hit returns immediately.
TEST(QueryServiceRefreshAhead, PoolRefreshKeepsRepeatBuildsHitting) {
  service::QueryService svc({.threads = 2,
                             .cache_entry_ttl = std::chrono::milliseconds(1000),
                             .cache_refresh_ahead = 0.5,
                             .min_parallel_batch = 64});
  std::atomic<std::int64_t> now_ms{0};
  const auto base = std::chrono::steady_clock::time_point{};
  svc.cache_for_testing().set_clock_for_testing(
      [&now_ms, base] { return base + std::chrono::milliseconds(now_ms.load()); });

  Rng rng(11);
  const Graph g = gen::connected_gnp(30, 0.15, rng);
  const std::vector<Vertex> sources{0, 5, 9};
  const auto first = svc.build(g, sources);
  EXPECT_EQ(svc.cache().misses(), 1u);

  now_ms = 600;
  const auto second = svc.build(g, sources);  // hit; refresh kicked on the pool
  EXPECT_EQ(second->content_digest(), first->content_digest());
  for (int i = 0; i < 2000 && svc.cache().refreshes() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(svc.cache().refreshes(), 1u);

  now_ms = 1200;  // past the original TTL; the refresh re-stamped the entry
  const auto third = svc.build(g, sources);
  EXPECT_EQ(third->content_digest(), first->content_digest());
  EXPECT_EQ(svc.cache().misses(), 1u);  // never went cold
  EXPECT_EQ(svc.cache().expirations(), 0u);
}

}  // namespace
}  // namespace msrp
