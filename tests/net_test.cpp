// Tests for the network serving layer (src/net/): the frame codec under
// adversarial inputs (truncation, corruption, oversize, splits), and the
// epoll server + client end to end over loopback — byte-identical answers
// vs the in-process QueryService for every serving mode (built oracle,
// zero-copy mmap snapshot, multi-process shards), pipelining, concurrent
// clients, disconnect-mid-batch, backpressure, and graceful shutdown.
// Protocol v2 coverage: wire registration of multiple tenants (the
// differential matrix, scalable via MSRP_FUZZ_TENANTS), digest-targeted
// batches, BUSY admission rejections, unregister lifecycles,
// resend-on-reconnect across a server restart, and adversarial registry
// frames. Multi-loop coverage: SO_REUSEPORT listeners and the
// accept-hand-off fallback serve identically, drain on shutdown, and a
// peer RST mid-reply never raises SIGPIPE. Protocol v3 coverage: the three
// workload opcodes (TOP_K_VITAL, VICKREY_PRICES, K_FAIL) round-trip,
// reject lying counts / out-of-range k / oversized or duplicated failure
// sets, serve byte-identically across every serving mode and pipeline
// mixed with point batches, and the legacy v2 frame shapes stay
// byte-identical under the v3 server (plus an unknown-opcode probe).
// Runs under TSan in CI (loop threads vs pool callbacks vs client
// threads).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "registry/oracle_registry.hpp"
#include "service/query_gen.hpp"
#include "service/query_service.hpp"
#include "service/shard_router.hpp"
#include "util/rng.hpp"

#if defined(__unix__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace msrp {
namespace {

using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::ProtocolError;
using service::Query;
using service::Snapshot;

// Fork-without-exec shard workers and TSan do not mix (the forked child
// inherits the sanitizer's threading state); the multi-process leg of the
// serving-mode matrix is skipped under TSan, like shard_test is.
#if defined(__SANITIZE_THREAD__)
constexpr bool kTsanBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsanBuild = true;
#else
constexpr bool kTsanBuild = false;
#endif
#else
constexpr bool kTsanBuild = false;
#endif

// ----------------------------------------------------------- frame codec ---

std::vector<std::uint8_t> sample_stream() {
  std::vector<std::uint8_t> bytes;
  net::HelloInfo hello;
  hello.oracle_digest = 0x1234567890abcdefULL;
  hello.num_vertices = 100;
  hello.num_edges = 250;
  hello.sources = {0, 17, 41};
  net::append_hello(bytes, hello);
  net::append_query_batch(bytes, 7, std::vector<Query>{{0, 5, 3}, {17, 99, 0}});
  net::append_answer_batch(bytes, 7, std::vector<Dist>{4, kInfDist});
  net::append_error(bytes, 9, "boom");
  return bytes;
}

void expect_sample_frames(std::vector<Frame> frames) {
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  const net::HelloInfo hello = net::decode_hello(frames[0].payload);
  EXPECT_EQ(hello.version, net::kProtocolVersion);
  EXPECT_EQ(hello.oracle_digest, 0x1234567890abcdefULL);
  EXPECT_EQ(hello.num_vertices, 100u);
  EXPECT_EQ(hello.num_edges, 250u);
  EXPECT_EQ(hello.sources, (std::vector<Vertex>{0, 17, 41}));

  EXPECT_EQ(frames[1].type, FrameType::kQueryBatch);
  const net::QueryBatchFrame qb = net::decode_query_batch(frames[1].payload);
  EXPECT_EQ(qb.request_id, 7u);
  EXPECT_EQ(qb.queries, (std::vector<Query>{{0, 5, 3}, {17, 99, 0}}));

  EXPECT_EQ(frames[2].type, FrameType::kAnswerBatch);
  const net::AnswerBatchFrame ab = net::decode_answer_batch(frames[2].payload);
  EXPECT_EQ(ab.request_id, 7u);
  EXPECT_EQ(ab.answers, (std::vector<Dist>{4, kInfDist}));

  EXPECT_EQ(frames[3].type, FrameType::kError);
  const net::ErrorFrame err = net::decode_error(frames[3].payload);
  EXPECT_EQ(err.request_id, 9u);
  EXPECT_EQ(err.message, "boom");
}

TEST(FrameDecoder, RoundTripsEveryFrameType) {
  const auto bytes = sample_stream();
  FrameDecoder dec;
  dec.feed(bytes);
  std::vector<Frame> frames;
  while (auto f = dec.next()) frames.push_back(std::move(*f));
  expect_sample_frames(std::move(frames));
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(FrameDecoder, ReassemblesAcrossArbitrarySplits) {
  const auto bytes = sample_stream();
  // Every prefix split, plus byte-at-a-time: a frame boundary must never be
  // assumed to coincide with a read boundary.
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    FrameDecoder dec;
    std::vector<Frame> frames;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      const std::size_t chunk =
          trial == 0 ? 1 : 1 + rng.next_below(std::min<std::size_t>(37, bytes.size() - pos));
      dec.feed({bytes.data() + pos, std::min(chunk, bytes.size() - pos)});
      pos += chunk;
      while (auto f = dec.next()) frames.push_back(std::move(*f));
    }
    expect_sample_frames(std::move(frames));
  }
}

// ------------------------------------------- adversarial input suite -------

TEST(FrameDecoderAdversarial, TruncatedHeaderYieldsNoFrame) {
  const auto bytes = sample_stream();
  FrameDecoder dec;
  dec.feed({bytes.data(), net::kFrameHeaderBytes - 1});
  EXPECT_FALSE(dec.next().has_value());  // not an error: more bytes may come
  EXPECT_EQ(dec.buffered_bytes(), net::kFrameHeaderBytes - 1);
}

TEST(FrameDecoderAdversarial, TruncatedPayloadYieldsNoFrame) {
  std::vector<std::uint8_t> bytes;
  net::append_query_batch(bytes, 1, std::vector<Query>{{0, 1, 2}});
  FrameDecoder dec;
  dec.feed({bytes.data(), bytes.size() - 1});
  EXPECT_FALSE(dec.next().has_value());
  dec.feed({bytes.data() + bytes.size() - 1, 1});  // last byte completes it
  EXPECT_TRUE(dec.next().has_value());
}

TEST(FrameDecoderAdversarial, BadMagicThrows) {
  auto bytes = sample_stream();
  bytes[0] ^= 0xff;
  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_THROW(dec.next(), ProtocolError);
}

TEST(FrameDecoderAdversarial, ChecksumMismatchThrowsForEveryPayloadByte) {
  std::vector<std::uint8_t> bytes;
  net::append_query_batch(bytes, 42, std::vector<Query>{{1, 2, 3}});
  for (std::size_t i = net::kFrameHeaderBytes; i < bytes.size(); ++i) {
    auto corrupt = bytes;
    corrupt[i] ^= 0x01;
    FrameDecoder dec;
    dec.feed(corrupt);
    EXPECT_THROW(dec.next(), ProtocolError) << "flipped payload byte " << i;
  }
}

TEST(FrameDecoderAdversarial, ZeroLengthBatchIsValid) {
  std::vector<std::uint8_t> bytes;
  net::append_query_batch(bytes, 5, std::vector<Query>{});
  FrameDecoder dec;
  dec.feed(bytes);
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  const net::QueryBatchFrame qb = net::decode_query_batch(frame->payload);
  EXPECT_EQ(qb.request_id, 5u);
  EXPECT_TRUE(qb.queries.empty());
}

TEST(FrameDecoderAdversarial, MaxSizePlusOneFrameRejectedBeforeBuffering) {
  // A header announcing max+1 payload bytes must be refused from the header
  // alone — the decoder never waits for (or allocates) the payload.
  constexpr std::size_t kMax = 4096;
  std::vector<std::uint8_t> frame;
  net::append_error(frame, 1, std::string(kMax + 1, 'x'));
  FrameDecoder dec(kMax);
  dec.feed({frame.data(), net::kFrameHeaderBytes});  // header only
  EXPECT_THROW(dec.next(), ProtocolError);

  // Exactly max-size is accepted (boundary).
  std::vector<std::uint8_t> ok;
  net::append_error(ok, 1, std::string(kMax - 16, 'x'));  // 16 = error fixed fields
  FrameDecoder dec2(kMax);
  dec2.feed(ok);
  EXPECT_TRUE(dec2.next().has_value());
}

TEST(FrameDecoderAdversarial, LyingPayloadCountsThrow) {
  // A checksum-valid frame whose payload counts disagree with its size must
  // be caught by the payload decoders, not read out of bounds.
  std::vector<std::uint8_t> bytes;
  net::append_query_batch(bytes, 1, std::vector<Query>{{0, 1, 2}});
  Frame frame;
  {
    FrameDecoder dec;
    dec.feed(bytes);
    frame = *dec.next();
  }
  auto short_payload = frame.payload;
  short_payload.resize(short_payload.size() - 4);  // count says 1, bytes say less
  EXPECT_THROW(net::decode_query_batch(short_payload), ProtocolError);

  auto long_payload = frame.payload;
  long_payload.push_back(0);  // trailing garbage
  EXPECT_THROW(net::decode_query_batch(long_payload), ProtocolError);
}

TEST(FrameDecoderAdversarial, HugeCountFieldRejectedBeforeAllocating) {
  // A 16-byte payload claiming 2^32 - 1 queries must be refused by the
  // count-vs-payload check, not by a multi-gigabyte reserve() blowing up.
  std::vector<std::uint8_t> payload(16, 0);
  payload[8] = payload[9] = payload[10] = payload[11] = 0xff;  // count, LE
  EXPECT_THROW(net::decode_query_batch(payload), ProtocolError);
  EXPECT_THROW(net::decode_answer_batch(payload), ProtocolError);
  // Same shape for HELLO's source count (offset 24 within its payload).
  std::vector<std::uint8_t> hello(32, 0);
  hello[0] = 1;  // version
  hello[24] = hello[25] = hello[26] = hello[27] = 0xff;  // sigma, LE
  EXPECT_THROW(net::decode_hello(hello), ProtocolError);
}

TEST(FrameDecoderAdversarial, InterleavedPipelinedIdsDecodeInOrder) {
  // Many batches with shuffled request ids back-to-back in one buffer: the
  // decoder must hand them back in wire order with ids intact (the ids, not
  // arrival order, pair answers to requests).
  std::vector<std::uint64_t> ids = {9, 2, 7, 1, 8, 3, 1000000007ULL, 4};
  std::vector<std::uint8_t> bytes;
  for (const std::uint64_t id : ids) {
    net::append_query_batch(
        bytes, id, std::vector<Query>{{static_cast<Vertex>(id % 97), 1, 2}});
  }
  FrameDecoder dec;
  dec.feed(bytes);
  for (const std::uint64_t id : ids) {
    const auto frame = dec.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(net::decode_query_batch(frame->payload).request_id, id);
  }
  EXPECT_FALSE(dec.next().has_value());
}

TEST(FrameDecoder, RoundTripsRegistryFrameTypes) {
  std::vector<std::uint8_t> bytes;
  net::RegisterGraphFrame reg;
  reg.request_id = 3;
  reg.mode = net::RegisterMode::kEdgeList;
  reg.seed = 42;
  reg.num_vertices = 5;
  reg.sources = {0, 2};
  reg.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  net::append_register_graph(bytes, reg);

  net::RegisterGraphFrame by_path;
  by_path.request_id = 4;
  by_path.mode = net::RegisterMode::kSnapshotPath;
  by_path.snapshot_path = "oracles/g.v2.snap";
  net::append_register_graph(bytes, by_path);

  net::RegisterAckFrame ack;
  ack.request_id = 5;
  ack.digest = 0xfeedfaceULL;
  ack.state = registry::OracleState::kReady;
  ack.num_vertices = 5;
  ack.num_edges = 4;
  ack.sources = {0, 2};
  net::append_register_ack(bytes, ack);

  net::append_list_oracles(bytes, 6);

  net::OracleListFrame list;
  list.request_id = 6;
  net::OracleListEntry entry;
  entry.digest = 0xfeedfaceULL;
  entry.state = registry::OracleState::kExpiring;
  entry.num_vertices = 5;
  entry.num_edges = 4;
  entry.inflight_batches = 2;
  entry.queries_answered = 777;
  entry.footprint_bytes = 4096;
  entry.sources = {0, 2};
  list.oracles = {entry};
  net::append_oracle_list(bytes, list);

  net::append_unregister(bytes, 7, 0xfeedfaceULL);
  net::append_busy(bytes, 8, "tenant queue full");
  net::append_query_batch(bytes, 9, std::vector<Query>{{0, 1, 2}}, 0xfeedfaceULL);

  FrameDecoder dec;
  dec.feed(bytes);
  const auto next = [&dec] {
    auto f = dec.next();
    EXPECT_TRUE(f.has_value());
    return std::move(*f);
  };

  Frame f = next();
  EXPECT_EQ(f.type, FrameType::kRegisterGraph);
  const net::RegisterGraphFrame reg2 = net::decode_register_graph(f.payload);
  EXPECT_EQ(reg2.request_id, 3u);
  EXPECT_EQ(reg2.mode, net::RegisterMode::kEdgeList);
  EXPECT_EQ(reg2.seed, 42u);
  EXPECT_EQ(reg2.num_vertices, 5u);
  EXPECT_EQ(reg2.sources, reg.sources);
  EXPECT_EQ(reg2.edges, reg.edges);

  f = next();
  const net::RegisterGraphFrame path2 = net::decode_register_graph(f.payload);
  EXPECT_EQ(path2.request_id, 4u);
  EXPECT_EQ(path2.mode, net::RegisterMode::kSnapshotPath);
  EXPECT_EQ(path2.snapshot_path, "oracles/g.v2.snap");

  f = next();
  EXPECT_EQ(f.type, FrameType::kRegisterAck);
  const net::RegisterAckFrame ack2 = net::decode_register_ack(f.payload);
  EXPECT_EQ(ack2.request_id, 5u);
  EXPECT_EQ(ack2.digest, 0xfeedfaceULL);
  EXPECT_EQ(ack2.state, registry::OracleState::kReady);
  EXPECT_EQ(ack2.num_edges, 4u);
  EXPECT_EQ(ack2.sources, ack.sources);

  f = next();
  EXPECT_EQ(f.type, FrameType::kListOracles);
  EXPECT_EQ(net::decode_list_oracles(f.payload), 6u);

  f = next();
  EXPECT_EQ(f.type, FrameType::kOracleList);
  const net::OracleListFrame list2 = net::decode_oracle_list(f.payload);
  EXPECT_EQ(list2.request_id, 6u);
  ASSERT_EQ(list2.oracles.size(), 1u);
  EXPECT_EQ(list2.oracles[0].digest, 0xfeedfaceULL);
  EXPECT_EQ(list2.oracles[0].state, registry::OracleState::kExpiring);
  EXPECT_EQ(list2.oracles[0].inflight_batches, 2u);
  EXPECT_EQ(list2.oracles[0].queries_answered, 777u);
  EXPECT_EQ(list2.oracles[0].footprint_bytes, 4096u);
  EXPECT_EQ(list2.oracles[0].sources, entry.sources);

  f = next();
  EXPECT_EQ(f.type, FrameType::kUnregister);
  const net::UnregisterFrame un = net::decode_unregister(f.payload);
  EXPECT_EQ(un.request_id, 7u);
  EXPECT_EQ(un.digest, 0xfeedfaceULL);

  f = next();
  EXPECT_EQ(f.type, FrameType::kBusy);
  const net::ErrorFrame busy = net::decode_error(f.payload);  // shared shape
  EXPECT_EQ(busy.request_id, 8u);
  EXPECT_EQ(busy.message, "tenant queue full");

  f = next();
  EXPECT_EQ(f.type, FrameType::kQueryBatch);
  const net::QueryBatchFrame qb = net::decode_query_batch(f.payload);
  EXPECT_EQ(qb.request_id, 9u);
  ASSERT_TRUE(qb.digest.has_value());
  EXPECT_EQ(*qb.digest, 0xfeedfaceULL);
  EXPECT_EQ(qb.queries, (std::vector<Query>{{0, 1, 2}}));

  EXPECT_FALSE(dec.next().has_value());
}

TEST(FrameDecoderAdversarial, LyingRegistryPayloadCountsThrow) {
  // Same discipline as the v1 frames: checksum-valid payloads whose counts
  // disagree with their byte size must throw, never read out of bounds.
  const auto frame_payload = [](auto&& append) {
    std::vector<std::uint8_t> bytes;
    append(bytes);
    FrameDecoder dec;
    dec.feed(bytes);
    return dec.next()->payload;
  };

  net::RegisterGraphFrame reg;
  reg.request_id = 1;
  reg.num_vertices = 4;
  reg.sources = {0, 1};
  reg.edges = {{0, 1}, {1, 2}};
  auto payload = frame_payload(
      [&](std::vector<std::uint8_t>& b) { net::append_register_graph(b, reg); });
  auto shorter = payload;
  shorter.resize(shorter.size() - 4);
  EXPECT_THROW(net::decode_register_graph(shorter), ProtocolError);
  auto longer = payload;
  longer.push_back(0);
  EXPECT_THROW(net::decode_register_graph(longer), ProtocolError);

  net::OracleListFrame list;
  list.oracles.resize(1);
  list.oracles[0].sources = {0, 3};
  payload = frame_payload(
      [&](std::vector<std::uint8_t>& b) { net::append_oracle_list(b, list); });
  shorter = payload;
  shorter.resize(shorter.size() - 2);
  EXPECT_THROW(net::decode_oracle_list(shorter), ProtocolError);

  net::RegisterAckFrame ack;
  ack.sources = {0};
  payload = frame_payload(
      [&](std::vector<std::uint8_t>& b) { net::append_register_ack(b, ack); });
  shorter = payload;
  shorter.resize(shorter.size() - 1);
  EXPECT_THROW(net::decode_register_ack(shorter), ProtocolError);

  payload = frame_payload(
      [](std::vector<std::uint8_t>& b) { net::append_unregister(b, 1, 2); });
  shorter = payload;
  shorter.resize(shorter.size() - 1);
  EXPECT_THROW(net::decode_unregister(shorter), ProtocolError);
}

// ------------------------------------------- v3 workload frames -----------

TEST(FrameDecoder, RoundTripsWorkloadFrameTypes) {
  std::vector<std::uint8_t> bytes;
  const std::vector<service::VitalityQuery> vq{{0, 5, 3}, {17, 99, 1}};
  net::append_vitality_batch(bytes, 21, vq, 0xfeedfaceULL, 250);
  std::vector<service::VitalityResult> vres(2);
  vres[0].base = 4;
  vres[0].edges = {{7, 0, kInfDist}, {9, 2, 6}};
  vres[1].base = kInfDist;
  net::append_vitality_answer(bytes, 21, vres);

  const std::vector<service::VickreyQuery> pq{{0, 5}, {17, 99}};
  net::append_vickrey_batch(bytes, 22, pq);
  std::vector<service::VickreyResult> pres(2);
  pres[0].base = 4;
  pres[0].prices = {{7, 0}, {9, kInfDist}};
  net::append_vickrey_answer(bytes, 22, pres);

  const std::vector<service::KFailQuery> fq{{0, 5, {}}, {1, 6, {3}}, {2, 7, {3, 9}}};
  net::append_kfail_batch(bytes, 23, fq, std::nullopt, 100);
  net::append_kfail_answer(bytes, 23, std::vector<Dist>{4, kInfDist, 9});

  FrameDecoder dec;
  dec.feed(bytes);
  const auto next = [&dec] {
    auto f = dec.next();
    EXPECT_TRUE(f.has_value());
    return std::move(*f);
  };

  Frame f = next();
  EXPECT_EQ(f.type, FrameType::kVitalityBatch);
  const net::VitalityBatchFrame vb = net::decode_vitality_batch(f.payload);
  EXPECT_EQ(vb.request_id, 21u);
  ASSERT_TRUE(vb.digest.has_value());
  EXPECT_EQ(*vb.digest, 0xfeedfaceULL);
  ASSERT_TRUE(vb.deadline_ms.has_value());
  EXPECT_EQ(*vb.deadline_ms, 250u);
  EXPECT_EQ(vb.queries, vq);

  f = next();
  EXPECT_EQ(f.type, FrameType::kVitalityAnswer);
  const net::VitalityAnswerFrame va = net::decode_vitality_answer(f.payload);
  EXPECT_EQ(va.request_id, 21u);
  EXPECT_EQ(va.results, vres);

  f = next();
  EXPECT_EQ(f.type, FrameType::kVickreyBatch);
  const net::VickreyBatchFrame pb = net::decode_vickrey_batch(f.payload);
  EXPECT_EQ(pb.request_id, 22u);
  EXPECT_FALSE(pb.digest.has_value());
  EXPECT_FALSE(pb.deadline_ms.has_value());
  EXPECT_EQ(pb.queries, pq);

  f = next();
  EXPECT_EQ(f.type, FrameType::kVickreyAnswer);
  const net::VickreyAnswerFrame pa = net::decode_vickrey_answer(f.payload);
  EXPECT_EQ(pa.request_id, 22u);
  EXPECT_EQ(pa.results, pres);

  f = next();
  EXPECT_EQ(f.type, FrameType::kKFailBatch);
  const net::KFailBatchFrame fb = net::decode_kfail_batch(f.payload);
  EXPECT_EQ(fb.request_id, 23u);
  EXPECT_FALSE(fb.digest.has_value());
  ASSERT_TRUE(fb.deadline_ms.has_value());
  EXPECT_EQ(*fb.deadline_ms, 100u);
  EXPECT_EQ(fb.queries, fq);

  f = next();
  EXPECT_EQ(f.type, FrameType::kKFailAnswer);
  const net::KFailAnswerFrame fa = net::decode_kfail_answer(f.payload);
  EXPECT_EQ(fa.request_id, 23u);
  EXPECT_EQ(fa.answers, (std::vector<Dist>{4, kInfDist, 9}));

  EXPECT_FALSE(dec.next().has_value());
}

TEST(FrameDecoderAdversarial, WorkloadRequestValidationThrows) {
  // The v3 request decoders reject malformed *requests*, not just
  // malformed bytes: k out of range, an oversized failure set, and a
  // duplicated failed edge are each ProtocolError before any allocation.
  const auto payload_of = [](auto&& append) {
    std::vector<std::uint8_t> bytes;
    append(bytes);
    FrameDecoder dec;
    dec.feed(bytes);
    return dec.next()->payload;
  };

  // k == 0 asks for nothing; the decoder refuses rather than guessing.
  auto payload = payload_of([](std::vector<std::uint8_t>& b) {
    net::append_vitality_batch(b, 1, std::vector<service::VitalityQuery>{{0, 1, 0}});
  });
  EXPECT_THROW(net::decode_vitality_batch(payload), ProtocolError);

  // k just past the cap throws; the cap itself is accepted (boundary).
  payload = payload_of([](std::vector<std::uint8_t>& b) {
    net::append_vitality_batch(
        b, 1, std::vector<service::VitalityQuery>{{0, 1, service::kMaxTopKVital + 1}});
  });
  EXPECT_THROW(net::decode_vitality_batch(payload), ProtocolError);
  payload = payload_of([](std::vector<std::uint8_t>& b) {
    net::append_vitality_batch(
        b, 1, std::vector<service::VitalityQuery>{{0, 1, service::kMaxTopKVital}});
  });
  EXPECT_EQ(net::decode_vitality_batch(payload).queries[0].k, service::kMaxTopKVital);

  // |F| == kMaxKFailEdges + 1 is refused even though the bytes are
  // perfectly self-consistent.
  payload = payload_of([](std::vector<std::uint8_t>& b) {
    net::append_kfail_batch(b, 1, std::vector<service::KFailQuery>{{0, 1, {2, 3, 4}}});
  });
  EXPECT_THROW(net::decode_kfail_batch(payload), ProtocolError);

  // A duplicated edge in F is a contradiction (failing one edge twice), so
  // it is rejected rather than silently deduplicated.
  payload = payload_of([](std::vector<std::uint8_t>& b) {
    net::append_kfail_batch(b, 1, std::vector<service::KFailQuery>{{0, 1, {4, 4}}});
  });
  EXPECT_THROW(net::decode_kfail_batch(payload), ProtocolError);
  payload = payload_of([](std::vector<std::uint8_t>& b) {
    net::append_kfail_batch(b, 1, std::vector<service::KFailQuery>{{0, 1, {4, 5}}});
  });
  EXPECT_EQ(net::decode_kfail_batch(payload).queries[0].fails, (std::vector<EdgeId>{4, 5}));
}

TEST(FrameDecoderAdversarial, LyingWorkloadPayloadCountsThrow) {
  // Same discipline as the v1/v2 frames: checksum-valid payloads whose
  // counts disagree with their byte size must throw, never read out of
  // bounds — for all six workload frame shapes.
  const auto payload_of = [](auto&& append) {
    std::vector<std::uint8_t> bytes;
    append(bytes);
    FrameDecoder dec;
    dec.feed(bytes);
    return dec.next()->payload;
  };
  const auto expect_lying_throws = [](std::vector<std::uint8_t> payload, auto&& decode) {
    auto shorter = payload;
    shorter.resize(shorter.size() - 1);
    EXPECT_THROW(decode(shorter), ProtocolError);
    auto longer = payload;
    longer.push_back(0);
    EXPECT_THROW(decode(longer), ProtocolError);
  };

  expect_lying_throws(
      payload_of([](std::vector<std::uint8_t>& b) {
        net::append_vitality_batch(b, 1, std::vector<service::VitalityQuery>{{0, 1, 2}});
      }),
      [](std::span<const std::uint8_t> p) { return net::decode_vitality_batch(p); });
  std::vector<service::VitalityResult> vres(1);
  vres[0].base = 3;
  vres[0].edges = {{0, 0, 5}};
  expect_lying_throws(
      payload_of([&](std::vector<std::uint8_t>& b) { net::append_vitality_answer(b, 1, vres); }),
      [](std::span<const std::uint8_t> p) { return net::decode_vitality_answer(p); });
  expect_lying_throws(
      payload_of([](std::vector<std::uint8_t>& b) {
        net::append_vickrey_batch(b, 1, std::vector<service::VickreyQuery>{{0, 1}});
      }),
      [](std::span<const std::uint8_t> p) { return net::decode_vickrey_batch(p); });
  std::vector<service::VickreyResult> pres(1);
  pres[0].base = 3;
  pres[0].prices = {{0, 2}};
  expect_lying_throws(
      payload_of([&](std::vector<std::uint8_t>& b) { net::append_vickrey_answer(b, 1, pres); }),
      [](std::span<const std::uint8_t> p) { return net::decode_vickrey_answer(p); });
  expect_lying_throws(
      payload_of([](std::vector<std::uint8_t>& b) {
        net::append_kfail_batch(b, 1, std::vector<service::KFailQuery>{{0, 1, {2}}});
      }),
      [](std::span<const std::uint8_t> p) { return net::decode_kfail_batch(p); });
  expect_lying_throws(
      payload_of([](std::vector<std::uint8_t>& b) {
        net::append_kfail_answer(b, 1, std::vector<Dist>{4});
      }),
      [](std::span<const std::uint8_t> p) { return net::decode_kfail_answer(p); });

  // A 16-byte envelope claiming 2^32 - 1 queries must die on the
  // count-vs-payload check, not on a multi-gigabyte reserve().
  std::vector<std::uint8_t> huge(16, 0);
  huge[8] = huge[9] = huge[10] = huge[11] = 0xff;  // count, LE
  EXPECT_THROW(net::decode_vitality_batch(huge), ProtocolError);
  EXPECT_THROW(net::decode_vickrey_batch(huge), ProtocolError);
  EXPECT_THROW(net::decode_kfail_batch(huge), ProtocolError);
  EXPECT_THROW(net::decode_vitality_answer(huge), ProtocolError);
  EXPECT_THROW(net::decode_vickrey_answer(huge), ProtocolError);
  EXPECT_THROW(net::decode_kfail_answer(huge), ProtocolError);
}

// -------------------------------------------------- loopback end-to-end ---

/// Small deterministic instance shared by the end-to-end tests.
struct NetFixture {
  Graph g{0};
  std::vector<Vertex> sources{0, 11, 29};
  service::QueryService svc{{.threads = 2, .min_parallel_batch = 64}};
  std::shared_ptr<const Snapshot> oracle;

  NetFixture() {
    Rng rng(77);
    g = gen::connected_gnp(60, 0.08, rng);
    oracle = svc.build(g, sources);
  }

  std::vector<Query> random_queries(std::size_t count, std::uint64_t seed) const {
    Rng rng(seed);
    return service::random_query_batch(sources, g.num_vertices(), g.num_edges(), count,
                                       rng);
  }
};

/// Server on an ephemeral loopback port with its run() thread.
struct TestServer {
  net::Server server;
  std::thread thread;

  TestServer(service::QueryService& svc, std::shared_ptr<const Snapshot> oracle,
             net::ServerOptions opts = {})
      : server(svc, std::move(oracle), opts), thread([this] { server.run(); }) {}

  ~TestServer() {
    server.shutdown();
    thread.join();
  }

  net::ClientOptions client_options() const {
    net::ClientOptions copts;
    copts.port = server.port();
    copts.connect_retries = 10;
    return copts;
  }
};

#define SKIP_WITHOUT_EPOLL()                                         \
  do {                                                               \
    if (!net::Server::supported()) GTEST_SKIP() << "epoll required"; \
  } while (false)

TEST(NetServer, HelloCarriesOracleIdentity) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());
  EXPECT_EQ(client.hello().version, net::kProtocolVersion);
  EXPECT_EQ(client.hello().oracle_digest, fx.oracle->content_digest());
  EXPECT_EQ(client.hello().num_vertices, fx.g.num_vertices());
  EXPECT_EQ(client.hello().num_edges, fx.g.num_edges());
  EXPECT_EQ(client.hello().sources, fx.sources);
}

TEST(NetServer, AnswersOverTcpMatchInProcessByteForByte) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  const std::vector<Query> queries = fx.random_queries(3000, 1);
  const std::vector<Dist> want = fx.svc.query_batch(*fx.oracle, queries);

  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());
  EXPECT_EQ(client.query_batch(queries), want);

  const net::ServerStats st = ts.server.stats();
  EXPECT_EQ(st.batches_received, 1u);
  EXPECT_EQ(st.queries_answered, queries.size());
  EXPECT_EQ(st.protocol_errors, 0u);
}

// The acceptance matrix: TCP answers must be byte-identical to the
// in-process path for every serving mode — freshly built, zero-copy mmap
// snapshot, and multi-process shards.
TEST(NetServer, EveryServingModeMatchesInProcess) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  const std::vector<Query> queries = fx.random_queries(2000, 2);
  const std::vector<Dist> want = fx.svc.query_batch(*fx.oracle, queries);

  {  // v2 snapshot served zero-copy from a memory mapping
    const std::string path = testing::TempDir() + "/net_test_oracle.v2.snap";
    fx.oracle->save(path, service::SnapshotFormat::kV2);
    service::QueryService svc({.threads = 2, .min_parallel_batch = 64});
    const auto mapped = svc.load(path, {.use_mmap = true, .verify_cells = false});
    ASSERT_TRUE(mapped->is_mapped());
    TestServer ts(svc, mapped);
    net::Client client(ts.client_options());
    EXPECT_EQ(client.query_batch(queries), want);
  }

  if (!kTsanBuild && service::ShardRouter::supported()) {  // multi-process shards
    service::QueryService svc({.threads = 2, .shards = 2});
    const auto oracle = svc.build(fx.g, fx.sources);
    TestServer ts(svc, oracle);
    net::Client client(ts.client_options());
    EXPECT_EQ(client.query_batch(queries), want);
  }
}

/// Random typed workload batches over the fixture's instance; |F| cycles
/// through 0, 1, and 2 so every K_FAIL serving tier is hit.
struct WorkloadBatches {
  std::vector<service::VitalityQuery> vitality;
  std::vector<service::VickreyQuery> vickrey;
  std::vector<service::KFailQuery> kfail;
};

WorkloadBatches random_workloads(const NetFixture& fx, std::size_t count,
                                 std::uint64_t seed) {
  Rng rng(seed);
  WorkloadBatches out;
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex s = fx.sources[rng.next_below(fx.sources.size())];
    const Vertex t = static_cast<Vertex>(rng.next_below(fx.g.num_vertices()));
    out.vitality.push_back({s, t, 1 + static_cast<std::uint32_t>(rng.next_below(6))});
    out.vickrey.push_back({s, t});
    service::KFailQuery f{s, t, {}};
    while (f.fails.size() < i % (service::kMaxKFailEdges + 1)) {
      const EdgeId e = static_cast<EdgeId>(rng.next_below(fx.g.num_edges()));
      if (std::find(f.fails.begin(), f.fails.end(), e) == f.fails.end()) {
        f.fails.push_back(e);
      }
    }
    out.kfail.push_back(std::move(f));
  }
  return out;
}

// The v3 acceptance matrix, wire leg: all three workload opcodes over TCP
// must be byte-identical to the in-process typed entry points.
TEST(NetServer, WorkloadOpcodesOverTcpMatchInProcess) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  const WorkloadBatches wb = random_workloads(fx, 200, 314);
  const auto vwant = fx.svc.vitality_batch(*fx.oracle, wb.vitality);
  const auto pwant = fx.svc.vickrey_batch(*fx.oracle, wb.vickrey);
  const auto fwant = fx.svc.kfail_batch(*fx.oracle, wb.kfail);

  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());
  EXPECT_EQ(client.vitality_batch(wb.vitality), vwant);
  EXPECT_EQ(client.vickrey_batch(wb.vickrey), pwant);
  EXPECT_EQ(client.kfail_batch(wb.kfail), fwant);

  const net::ServerStats st = ts.server.stats();
  EXPECT_EQ(st.vitality_batches, 1u);
  EXPECT_EQ(st.vickrey_batches, 1u);
  EXPECT_EQ(st.kfail_batches, 1u);
  EXPECT_EQ(st.queries_answered, wb.vitality.size() + wb.vickrey.size() + wb.kfail.size());
  EXPECT_EQ(st.protocol_errors, 0u);
}

// Workload serving-mode matrix: the same typed batches against a zero-copy
// mmap snapshot (graph attached for the |F| == 2 tier) and against
// multi-process shards must produce the same bytes as the built oracle.
TEST(NetServer, WorkloadOpcodesServeEveryMode) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  const WorkloadBatches wb = random_workloads(fx, 150, 315);
  const auto vwant = fx.svc.vitality_batch(*fx.oracle, wb.vitality);
  const auto pwant = fx.svc.vickrey_batch(*fx.oracle, wb.vickrey);
  const auto fwant = fx.svc.kfail_batch(*fx.oracle, wb.kfail);

  {  // v2 snapshot served zero-copy from a memory mapping
    const std::string path = testing::TempDir() + "/net_test_workload.v2.snap";
    fx.oracle->save(path, service::SnapshotFormat::kV2);
    service::QueryService svc({.threads = 2, .min_parallel_batch = 64});
    const auto mapped = svc.load(path, {.use_mmap = true, .verify_cells = false});
    ASSERT_TRUE(mapped->is_mapped());
    svc.attach_graph(mapped->content_digest(), std::make_shared<const Graph>(fx.g));
    TestServer ts(svc, mapped);
    net::Client client(ts.client_options());
    EXPECT_EQ(client.vitality_batch(wb.vitality), vwant);
    EXPECT_EQ(client.vickrey_batch(wb.vickrey), pwant);
    EXPECT_EQ(client.kfail_batch(wb.kfail), fwant);
  }

  if (!kTsanBuild && service::ShardRouter::supported()) {  // multi-process shards
    service::QueryService svc({.threads = 2, .shards = 2});
    const auto oracle = svc.build(fx.g, fx.sources);
    TestServer ts(svc, oracle);
    net::Client client(ts.client_options());
    EXPECT_EQ(client.vitality_batch(wb.vitality), vwant);
    EXPECT_EQ(client.vickrey_batch(wb.vickrey), pwant);
    EXPECT_EQ(client.kfail_batch(wb.kfail), fwant);
  }
}

// A two-edge failure set against a snapshot-only server (no graph behind
// the digest) is a batch error naming attach_graph — and the connection
// keeps serving the tiers that do work.
TEST(NetServer, TwoEdgeKFailWithoutGraphFailsTheBatchNotTheConnection) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  const std::string path = testing::TempDir() + "/net_test_nograph.v2.snap";
  fx.oracle->save(path, service::SnapshotFormat::kV2);
  service::QueryService svc({.threads = 2, .min_parallel_batch = 64});
  const auto mapped = svc.load(path, {.use_mmap = true, .verify_cells = false});
  TestServer ts(svc, mapped);
  net::Client client(ts.client_options());

  const std::vector<service::KFailQuery> two{{fx.sources[0], 5, {0, 1}}};
  try {
    client.kfail_batch(two);
    FAIL() << "expected a batch error";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("attach_graph"), std::string::npos);
  }

  const std::vector<service::KFailQuery> one{{fx.sources[0], 5, {0}}};
  EXPECT_EQ(client.kfail_batch(one), fx.svc.kfail_batch(*fx.oracle, one));
  EXPECT_EQ(ts.server.stats().batch_errors, 1u);
  EXPECT_EQ(ts.server.stats().protocol_errors, 0u);
}

// Point batches and all three workload kinds pipelined on one connection:
// replies pair by (request id, opcode), whatever order completions land in.
TEST(NetServer, PipelinedMixedOpcodesPairByIdAndKind) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());

  constexpr std::size_t kRounds = 4;
  std::vector<std::vector<Query>> points;
  std::vector<WorkloadBatches> loads;
  std::vector<std::uint64_t> point_ids, vit_ids, vic_ids, kf_ids;
  for (std::size_t r = 0; r < kRounds; ++r) {
    points.push_back(fx.random_queries(80 + 13 * r, 700 + r));
    loads.push_back(random_workloads(fx, 40 + 9 * r, 800 + r));
    point_ids.push_back(client.send(points[r]));
    vit_ids.push_back(client.send_vitality(loads[r].vitality));
    vic_ids.push_back(client.send_vickrey(loads[r].vickrey));
    kf_ids.push_back(client.send_kfail(loads[r].kfail));
  }
  EXPECT_EQ(client.inflight(), 4 * kRounds);
  // Collect newest-first, interleaving kinds.
  for (std::size_t r = kRounds; r-- > 0;) {
    EXPECT_EQ(client.wait_kfail(kf_ids[r]), fx.svc.kfail_batch(*fx.oracle, loads[r].kfail))
        << "round " << r;
    EXPECT_EQ(client.wait(point_ids[r]), fx.svc.query_batch(*fx.oracle, points[r]))
        << "round " << r;
    EXPECT_EQ(client.wait_vitality(vit_ids[r]),
              fx.svc.vitality_batch(*fx.oracle, loads[r].vitality))
        << "round " << r;
    EXPECT_EQ(client.wait_vickrey(vic_ids[r]),
              fx.svc.vickrey_batch(*fx.oracle, loads[r].vickrey))
        << "round " << r;
  }
  EXPECT_EQ(client.inflight(), 0u);
}

TEST(NetServer, EmptyBatchAnswersEmpty) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());
  EXPECT_TRUE(client.query_batch(std::vector<Query>{}).empty());
}

TEST(NetServer, PipelinedBatchesCollectByIdInAnyOrder) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());

  constexpr std::size_t kBatches = 12;
  std::vector<std::vector<Query>> batches;
  std::vector<std::uint64_t> ids;
  for (std::size_t b = 0; b < kBatches; ++b) {
    batches.push_back(fx.random_queries(100 + 37 * b, 100 + b));
    ids.push_back(client.send(batches.back()));
  }
  EXPECT_EQ(client.inflight(), kBatches);
  // Collect newest-first: buffered out-of-order answers must pair by id.
  for (std::size_t b = kBatches; b-- > 0;) {
    EXPECT_EQ(client.wait(ids[b]), fx.svc.query_batch(*fx.oracle, batches[b]))
        << "batch " << b;
  }
  EXPECT_EQ(client.inflight(), 0u);
}

TEST(NetServer, TinyPipelineWindowStillDrainsFullBurst) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  // Window of 2 with a 30-batch burst sent before any read: progress must
  // come from completions pumping the decoder backlog, not from new bytes.
  net::ServerOptions sopts;
  sopts.max_inflight_batches = 2;
  TestServer ts(fx.svc, fx.oracle, sopts);
  net::Client client(ts.client_options());

  constexpr std::size_t kBatches = 30;
  std::vector<std::vector<Query>> batches;
  std::vector<std::uint64_t> ids;
  for (std::size_t b = 0; b < kBatches; ++b) {
    batches.push_back(fx.random_queries(64, 200 + b));
    ids.push_back(client.send(batches[b]));
  }
  for (std::size_t b = 0; b < kBatches; ++b) {
    EXPECT_EQ(client.wait(ids[b]), fx.svc.query_batch(*fx.oracle, batches[b]));
  }
}

TEST(NetServer, EdgeTriggeredModeServesIdentically) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  net::ServerOptions sopts;
  sopts.edge_triggered = true;
  TestServer ts(fx.svc, fx.oracle, sopts);
  net::Client client(ts.client_options());
  const std::vector<Query> queries = fx.random_queries(2000, 3);
  EXPECT_EQ(client.query_batch(queries), fx.svc.query_batch(*fx.oracle, queries));
}

TEST(NetServer, InvalidQueryAnswersErrorAndConnectionSurvives) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());

  const Vertex not_a_source = 1;  // fixture sources are {0, 11, 29}
  ASSERT_EQ(std::count(fx.sources.begin(), fx.sources.end(), not_a_source), 0);
  EXPECT_THROW(client.query_batch(std::vector<Query>{{not_a_source, 0, 0}}),
               std::runtime_error);

  // Batch-level failure, not connection-level: the same connection keeps
  // serving valid batches.
  const std::vector<Query> queries = fx.random_queries(200, 4);
  EXPECT_EQ(client.query_batch(queries), fx.svc.query_batch(*fx.oracle, queries));
  EXPECT_EQ(ts.server.stats().batch_errors, 1u);
}

TEST(NetServer, ConcurrentClientsGetConsistentAnswers) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);

  constexpr unsigned kClients = 4;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        net::Client client(ts.client_options());
        for (int round = 0; round < 5; ++round) {
          const auto queries = fx.random_queries(300, 1000 + 17 * c + round);
          const auto want = fx.svc.query_batch(*fx.oracle, queries);
          if (client.query_batch(queries) != want) {
            errors[c] = "answer mismatch";
            return;
          }
        }
      } catch (const std::exception& ex) {
        errors[c] = ex.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (unsigned c = 0; c < kClients; ++c) EXPECT_EQ(errors[c], "") << "client " << c;
}

TEST(NetServer, ClientDisconnectMidBatchLeavesServerServing) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  {
    net::Client doomed(ts.client_options());
    doomed.send(fx.random_queries(5000, 5));
    // Destructor closes the socket with the batch still in flight; the
    // server completes it, finds the connection gone, and drops the reply.
  }
  net::Client client(ts.client_options());
  const std::vector<Query> queries = fx.random_queries(500, 6);
  EXPECT_EQ(client.query_batch(queries), fx.svc.query_batch(*fx.oracle, queries));
}

TEST(NetServer, GracefulShutdownDrainsInFlightBatches) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  auto ts = std::make_unique<TestServer>(fx.svc, fx.oracle);
  net::Client client(ts->client_options());

  // Several batches in flight when shutdown lands: every reply must still
  // arrive (drain semantics), after which the server closes the connection.
  std::vector<std::vector<Query>> batches;
  std::vector<std::uint64_t> ids;
  for (std::size_t b = 0; b < 8; ++b) {
    batches.push_back(fx.random_queries(2000, 300 + b));
    ids.push_back(client.send(batches[b]));
  }
  // Drain covers batches the server has *read*; make sure all 8 were
  // (send() only guarantees kernel-buffer delivery) before shutting down.
  while (ts->server.stats().batches_received < 8) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ts->server.shutdown();
  for (std::size_t b = 0; b < 8; ++b) {
    EXPECT_EQ(client.wait(ids[b]), fx.svc.query_batch(*fx.oracle, batches[b]));
  }
  ts.reset();  // run() has drained; join
  // The drained connection is closed; the next round trip must fail.
  EXPECT_THROW(client.query_batch(fx.random_queries(10, 7)), std::runtime_error);
}

TEST(NetServer, DrainCompletesPromptlyWhenOutputFlushesLate) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  auto ts = std::make_unique<TestServer>(fx.svc, fx.oracle);
  net::Client client(ts->client_options());

  // A reply far larger than the socket buffers, with the client not
  // reading until after shutdown: the final flush happens via EPOLLOUT
  // while draining, and the connection must close the moment it empties —
  // not at the 10 s drain deadline.
  const std::vector<Query> queries = fx.random_queries(1'500'000, 9);
  const std::uint64_t id = client.send(queries);
  while (ts->server.stats().batches_received == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ts->server.shutdown();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(client.wait(id).size(), queries.size());
  ts.reset();  // joins run(); stalls until the drain deadline if broken
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(8));
}

// ----------------------------------------------------- multi-loop accept ---

TEST(NetServerMultiLoop, ReuseportLoopsServeConcurrentClientsIdentically) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  net::ServerOptions sopts;
  sopts.loops = 3;  // all three listeners share the ephemeral port
  TestServer ts(fx.svc, fx.oracle, sopts);

  constexpr unsigned kClients = 6;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        net::Client client(ts.client_options());
        for (int round = 0; round < 4; ++round) {
          const auto queries = fx.random_queries(400, 3000 + 31 * c + round);
          const auto want = fx.svc.query_batch(*fx.oracle, queries);
          if (client.query_batch(queries) != want) {
            errors[c] = "answer mismatch";
            return;
          }
        }
      } catch (const std::exception& ex) {
        errors[c] = ex.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (unsigned c = 0; c < kClients; ++c) EXPECT_EQ(errors[c], "") << "client " << c;
  const net::ServerStats st = ts.server.stats();
  EXPECT_EQ(st.connections_accepted, kClients);
  EXPECT_EQ(st.batches_received, kClients * 4u);
  EXPECT_EQ(st.protocol_errors, 0u);
}

TEST(NetServerMultiLoop, AcceptHandoffFallbackServesIdentically) {
  // force_accept_handoff: loop 0 owns the only listener and posts accepted
  // sockets to the other loops round-robin — the code path platforms
  // without SO_REUSEPORT always take. With 3 loops and 6 clients every
  // loop adopts handed-off connections.
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  net::ServerOptions sopts;
  sopts.loops = 3;
  sopts.force_accept_handoff = true;
  TestServer ts(fx.svc, fx.oracle, sopts);

  constexpr unsigned kClients = 6;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        net::Client client(ts.client_options());
        // Pipeline a few batches so handed-off connections exercise the
        // full submit/complete path, not just one round trip.
        std::vector<std::vector<Query>> batches;
        std::vector<std::uint64_t> ids;
        for (std::size_t b = 0; b < 3; ++b) {
          batches.push_back(fx.random_queries(250, 4000 + 13 * c + b));
          ids.push_back(client.send(batches[b]));
        }
        for (std::size_t b = 0; b < 3; ++b) {
          if (client.wait(ids[b]) != fx.svc.query_batch(*fx.oracle, batches[b])) {
            errors[c] = "answer mismatch";
            return;
          }
        }
      } catch (const std::exception& ex) {
        errors[c] = ex.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (unsigned c = 0; c < kClients; ++c) EXPECT_EQ(errors[c], "") << "client " << c;
  EXPECT_EQ(ts.server.stats().connections_accepted, kClients);
}

TEST(NetServerMultiLoop, GracefulShutdownDrainsEveryLoop) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  net::ServerOptions sopts;
  sopts.loops = 2;
  auto ts = std::make_unique<TestServer>(fx.svc, fx.oracle, sopts);

  // Batches in flight on connections owned by different loops when
  // shutdown lands: every loop must observe the drain and still flush
  // every reply before run() returns.
  constexpr unsigned kClients = 4;
  std::vector<std::unique_ptr<net::Client>> clients;
  std::vector<std::vector<Query>> batches;
  std::vector<std::uint64_t> ids;
  for (unsigned c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<net::Client>(ts->client_options()));
    batches.push_back(fx.random_queries(2000, 5000 + c));
    ids.push_back(clients[c]->send(batches[c]));
  }
  while (ts->server.stats().batches_received < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ts->server.shutdown();
  for (unsigned c = 0; c < kClients; ++c) {
    EXPECT_EQ(clients[c]->wait(ids[c]), fx.svc.query_batch(*fx.oracle, batches[c]))
        << "client " << c;
  }
  ts.reset();  // joins every loop thread; hangs here if one missed the drain
}

TEST(NetServerMultiLoop, EdgeTriggeredMultiLoopServesIdentically) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  net::ServerOptions sopts;
  sopts.loops = 2;
  sopts.edge_triggered = true;
  TestServer ts(fx.svc, fx.oracle, sopts);
  net::Client client(ts.client_options());
  const std::vector<Query> queries = fx.random_queries(2000, 11);
  EXPECT_EQ(client.query_batch(queries), fx.svc.query_batch(*fx.oracle, queries));
}

// --------------------------------------- multi-tenant registry (v2) ---

/// Registry-enabled server on an ephemeral port. The registry member is
/// declared before the server so it outlives it, exactly as production
/// embedders must order the two.
struct RegistryTestServer {
  registry::OracleRegistry registry;
  net::Server server;
  std::thread thread;

  RegistryTestServer(service::QueryService& svc, std::shared_ptr<const Snapshot> oracle,
                     registry::RegistryOptions ropts = {}, net::ServerOptions sopts = {})
      : registry(svc, ropts),
        server(svc, std::move(oracle), &registry, sopts),
        thread([this] { server.run(); }) {}

  ~RegistryTestServer() {
    server.shutdown();
    thread.join();
  }

  net::ClientOptions client_options() const {
    net::ClientOptions copts;
    copts.port = server.port();
    copts.connect_retries = 10;
    return copts;
  }
};

/// Parks every worker of `svc` until the returned promise is fulfilled, so
/// a dispatched batch deterministically stays in flight.
std::promise<void> wedge_pool(service::QueryService& svc) {
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  for (unsigned i = 0; i < svc.num_threads(); ++i) {
    svc.run_async([gate] { gate.wait(); });
  }
  return release;
}

// The acceptance matrix: one listener, several oracles registered purely
// over the wire, interleaved pipelined batches against each — answers must
// be byte-identical to a local QueryService building the same graphs.
// MSRP_FUZZ_TENANTS widens the matrix (2..8 random tenant graphs).
TEST(NetRegistry, WireRegisteredTenantsMatchInProcessByteForByte) {
  SKIP_WITHOUT_EPOLL();
  service::QueryService svc({.threads = 2, .cache_capacity = 12, .min_parallel_batch = 64});
  RegistryTestServer ts(svc, nullptr);  // no default oracle: registry only
  net::Client client(ts.client_options());
  EXPECT_TRUE(client.registry_enabled());
  EXPECT_EQ(client.hello().oracle_digest, 0u);

  std::size_t tenants = 2;
  if (const char* fuzz = std::getenv("MSRP_FUZZ_TENANTS")) {
    tenants = std::clamp<std::size_t>(std::strtoul(fuzz, nullptr, 10), 2, 8);
  }

  service::QueryService local({.threads = 2, .cache_capacity = 12, .min_parallel_batch = 64});
  struct Tenant {
    Graph g{0};
    std::vector<Vertex> sources;
    std::uint64_t digest = 0;
    std::shared_ptr<const Snapshot> oracle;  // the local differential build
  };
  std::vector<Tenant> tens(tenants);
  for (std::size_t i = 0; i < tenants; ++i) {
    Rng rng(500 + i);
    tens[i].g = gen::connected_gnp(static_cast<Vertex>(30 + 5 * i), 0.12, rng);
    tens[i].sources = {0, static_cast<Vertex>(3 + i), static_cast<Vertex>(11 + 2 * i)};
    const net::RegisterAckFrame ack =
        client.register_graph(tens[i].g.num_vertices(), tens[i].g.edges(), tens[i].sources);
    tens[i].oracle = local.build(tens[i].g, tens[i].sources);
    EXPECT_EQ(ack.state, registry::OracleState::kReady);
    EXPECT_EQ(ack.digest, tens[i].oracle->content_digest()) << "tenant " << i;
    EXPECT_EQ(ack.num_vertices, tens[i].g.num_vertices());
    EXPECT_EQ(ack.sources, tens[i].sources);
    tens[i].digest = ack.digest;
  }
  for (std::size_t i = 0; i < tenants; ++i) {
    for (std::size_t j = i + 1; j < tenants; ++j) {
      EXPECT_NE(tens[i].digest, tens[j].digest);
    }
  }

  // Interleave pipelined batches across every tenant on one connection.
  struct Sent {
    std::uint64_t id = 0;
    std::size_t tenant = 0;
    std::vector<Query> queries;
  };
  std::vector<Sent> sent;
  std::size_t total_queries = 0;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < tenants; ++i) {
      Rng rng(900 + 7 * round + i);
      auto queries = service::random_query_batch(tens[i].sources, tens[i].g.num_vertices(),
                                                 tens[i].g.num_edges(), 150 + 31 * round, rng);
      total_queries += queries.size();
      sent.push_back({client.send(queries, tens[i].digest), i, std::move(queries)});
    }
  }
  for (std::size_t s = sent.size(); s-- > 0;) {  // collect newest-first
    EXPECT_EQ(client.wait(sent[s].id),
              local.query_batch(*tens[sent[s].tenant].oracle, sent[s].queries))
        << "batch " << s;
  }

  const auto listed = client.list_oracles();
  ASSERT_EQ(listed.size(), tenants);
  std::uint64_t answered = 0;
  for (const auto& e : listed) {
    EXPECT_EQ(e.state, registry::OracleState::kReady);
    EXPECT_EQ(e.inflight_batches, 0u);
    answered += e.queries_answered;
  }
  EXPECT_EQ(answered, total_queries);
  EXPECT_EQ(ts.server.stats().oracles_registered, tenants);
}

TEST(NetRegistry, DefaultOracleServesV1AndDigestTargetedBatches) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  RegistryTestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());
  EXPECT_TRUE(client.registry_enabled());
  EXPECT_EQ(client.hello().oracle_digest, fx.oracle->content_digest());

  const auto queries = fx.random_queries(500, 21);
  const auto want = fx.svc.query_batch(*fx.oracle, queries);
  EXPECT_EQ(client.query_batch(queries), want);  // v1 shape, no digest
  EXPECT_EQ(client.query_batch(queries, fx.oracle->content_digest()), want);

  // The adopted default is a first-class tenant in LIST_ORACLES.
  const auto listed = client.list_oracles();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].digest, fx.oracle->content_digest());
  EXPECT_EQ(listed[0].queries_answered, 2 * queries.size());
}

TEST(NetRegistry, NoDefaultOracleRejectsUntargetedBatches) {
  SKIP_WITHOUT_EPOLL();
  service::QueryService svc({.threads = 2, .min_parallel_batch = 64});
  RegistryTestServer ts(svc, nullptr);
  net::Client client(ts.client_options());
  try {
    client.query_batch(std::vector<Query>{{0, 0, 0}});
    FAIL() << "expected a batch error";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("no default oracle"), std::string::npos);
  }

  // The connection survives; registering then targeting works.
  Rng rng(81);
  const Graph g = gen::connected_gnp(25, 0.18, rng);
  const auto ack = client.register_graph(g.num_vertices(), g.edges(), std::vector<Vertex>{0, 4});
  ASSERT_EQ(ack.state, registry::OracleState::kReady);
  EXPECT_EQ(client.query_batch(std::vector<Query>{{0, 1, 0}}, ack.digest).size(), 1u);
}

TEST(NetRegistry, UnknownDigestFailsTheBatchNotTheConnection) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  RegistryTestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());

  const auto queries = fx.random_queries(50, 51);
  try {
    client.query_batch(queries, 0xdeadbeefdeadbeefULL);
    FAIL() << "expected a batch error";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("unknown oracle digest"), std::string::npos);
  }
  EXPECT_EQ(client.query_batch(queries), fx.svc.query_batch(*fx.oracle, queries));
  EXPECT_EQ(ts.server.stats().batch_errors, 1u);
  EXPECT_EQ(ts.server.stats().protocol_errors, 0u);
}

// Digest-targeted workload batches against a wire-registered tenant: the
// registry path and the typed opcodes compose.
TEST(NetRegistry, WorkloadBatchesTargetRegisteredTenants) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  RegistryTestServer ts(fx.svc, fx.oracle);
  net::Client client(ts.client_options());

  Rng rng(88);
  const Graph g2 = gen::connected_gnp(35, 0.15, rng);
  const std::vector<Vertex> sources2{0, 7};
  const net::RegisterAckFrame ack =
      client.register_graph(g2.num_vertices(), g2.edges(), sources2);
  ASSERT_EQ(ack.state, registry::OracleState::kReady);

  service::QueryService local({.threads = 2, .min_parallel_batch = 64});
  const auto oracle2 = local.build(g2, sources2);
  ASSERT_EQ(oracle2->content_digest(), ack.digest);

  std::vector<service::VitalityQuery> vq;
  std::vector<service::KFailQuery> fq;
  for (Vertex t = 0; t < g2.num_vertices(); ++t) {
    vq.push_back({0, t, 3});
    fq.push_back({7, t, {static_cast<EdgeId>(t % g2.num_edges()),
                         static_cast<EdgeId>((t + 1) % g2.num_edges())}});
  }
  // The registered tenant's graph lives server-side (register_graph built
  // it there), so even |F| == 2 works over the wire against the digest.
  EXPECT_EQ(client.vitality_batch(vq, ack.digest), local.vitality_batch(*oracle2, vq));
  EXPECT_EQ(client.kfail_batch(fq, ack.digest), local.kfail_batch(*oracle2, fq));

  // An unknown digest fails the workload batch, not the connection.
  try {
    client.vitality_batch(vq, 0xdeadbeefULL);
    FAIL() << "expected a batch error";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("unknown oracle digest"), std::string::npos);
  }
  EXPECT_EQ(client.vitality_batch(vq, ack.digest), local.vitality_batch(*oracle2, vq));
}

TEST(NetRegistry, RegistryDisabledServerStillSpeaksV2Shapes) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);  // single-oracle server, no registry
  net::Client client(ts.client_options());
  EXPECT_FALSE(client.registry_enabled());

  Rng rng(91);
  const Graph g = gen::connected_gnp(20, 0.2, rng);
  try {
    client.register_graph(g.num_vertices(), g.edges(), std::vector<Vertex>{0});
    FAIL() << "expected registration to be refused";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("registry is disabled"), std::string::npos);
  }

  // An explicit digest naming the served oracle is accepted; a foreign one
  // is a batch error that names the limitation.
  const auto queries = fx.random_queries(100, 92);
  EXPECT_EQ(client.query_batch(queries, fx.oracle->content_digest()),
            fx.svc.query_batch(*fx.oracle, queries));
  try {
    client.query_batch(queries, 0x1234);
    FAIL() << "expected a batch error";
  } catch (const std::runtime_error& ex) {
    EXPECT_NE(std::string(ex.what()).find("single-oracle server"), std::string::npos);
  }

  // LIST_ORACLES degrades to a one-row answer for the default oracle.
  const auto listed = client.list_oracles();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].digest, fx.oracle->content_digest());
}

TEST(NetRegistry, AdmissionControlAnswersBusyAndRetrySucceeds) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  net::ServerOptions sopts;
  sopts.dispatch = {.per_tenant_inflight = 1, .per_tenant_queue = 0, .total_inflight = 4};
  RegistryTestServer ts(fx.svc, fx.oracle, {}, sopts);
  net::Client client(ts.client_options());

  // Wedge the pool so the first batch deterministically stays in flight;
  // the second then overflows the zero-length queue.
  std::promise<void> release = wedge_pool(fx.svc);
  const auto b1 = fx.random_queries(200, 41);
  const auto b2 = fx.random_queries(100, 42);
  const std::uint64_t id1 = client.send(b1);
  const std::uint64_t id2 = client.send(b2);
  try {
    client.wait(id2);
    FAIL() << "expected BUSY";
  } catch (const net::BusyError& ex) {
    EXPECT_NE(std::string(ex.what()).find("busy"), std::string::npos);
  }
  release.set_value();
  EXPECT_EQ(client.wait(id1), fx.svc.query_batch(*fx.oracle, b1));
  EXPECT_EQ(ts.server.stats().busy_rejected, 1u);

  // BUSY means "did not run": an identical resend is safe and succeeds.
  EXPECT_EQ(client.query_batch(b2), fx.svc.query_batch(*fx.oracle, b2));
}

TEST(NetRegistry, UnregisterAndReRegisterOverTheWire) {
  SKIP_WITHOUT_EPOLL();
  service::QueryService svc({.threads = 2, .min_parallel_batch = 64});
  RegistryTestServer ts(svc, nullptr);
  net::Client client(ts.client_options());

  Rng rng(61);
  const Graph g = gen::connected_gnp(30, 0.15, rng);
  const std::vector<Vertex> sources{0, 5, 9};
  const auto ack = client.register_graph(g.num_vertices(), g.edges(), sources);
  ASSERT_EQ(ack.state, registry::OracleState::kReady);

  // Re-registering a resident digest is idempotent, not a second tenant.
  const auto dup = client.register_graph(g.num_vertices(), g.edges(), sources);
  EXPECT_EQ(dup.digest, ack.digest);
  EXPECT_EQ(client.list_oracles().size(), 1u);

  Rng qrng(62);
  const auto queries =
      service::random_query_batch(sources, g.num_vertices(), g.num_edges(), 120, qrng);
  const auto want = client.query_batch(queries, ack.digest);
  EXPECT_EQ(want.size(), queries.size());

  const auto gone = client.unregister(ack.digest);
  EXPECT_EQ(gone.state, registry::OracleState::kUnregistered);
  EXPECT_TRUE(client.list_oracles().empty());
  EXPECT_THROW(client.query_batch(queries, ack.digest), std::runtime_error);
  EXPECT_THROW(client.unregister(ack.digest), std::runtime_error);  // unknown now

  // Re-registering the same graph revives the same digest.
  const auto again = client.register_graph(g.num_vertices(), g.edges(), sources);
  EXPECT_EQ(again.digest, ack.digest);
  EXPECT_EQ(client.query_batch(queries, ack.digest), want);
}

TEST(NetRegistry, UnregisterWhileInflightDrainsThenRetires) {
  SKIP_WITHOUT_EPOLL();
  service::QueryService svc({.threads = 2, .min_parallel_batch = 64});
  RegistryTestServer ts(svc, nullptr);
  net::Client client(ts.client_options());

  Rng rng(71);
  const Graph g = gen::connected_gnp(30, 0.15, rng);
  const std::vector<Vertex> sources{0, 5, 9};
  const auto ack = client.register_graph(g.num_vertices(), g.edges(), sources);
  ASSERT_EQ(ack.state, registry::OracleState::kReady);
  Rng qrng(72);
  const auto queries =
      service::random_query_batch(sources, g.num_vertices(), g.num_edges(), 120, qrng);
  const auto want = client.query_batch(queries, ack.digest);  // warm round trip

  // One batch in flight on a wedged pool, then unregister underneath it.
  std::promise<void> release = wedge_pool(svc);
  const std::uint64_t id = client.send(queries, ack.digest);
  while (ts.server.stats().batches_received < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto expiring = client.unregister(ack.digest);
  EXPECT_EQ(expiring.state, registry::OracleState::kExpiring);
  // Invisible to new batches while draining.
  EXPECT_THROW(client.query_batch(queries, ack.digest), std::runtime_error);

  release.set_value();
  EXPECT_EQ(client.wait(id), want);  // the in-flight batch drains with answers
  for (int i = 0; i < 2000 && ts.registry.tenant_count() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ts.registry.tenant_count(), 0u);  // fully retired after the drain
}

TEST(NetRegistry, ResendOnReconnectReplaysPipelinedBatchesAcrossRestart) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  auto tsA = std::make_unique<TestServer>(fx.svc, fx.oracle);
  const std::uint16_t port = tsA->server.port();
  net::ClientOptions copts = tsA->client_options();
  copts.resend_on_reconnect = true;
  net::Client client(copts);

  std::vector<std::vector<Query>> batches;
  std::vector<std::uint64_t> ids;
  for (std::size_t b = 0; b < 2; ++b) {
    batches.push_back(fx.random_queries(150 + 40 * b, 600 + b));
    ids.push_back(client.send(batches[b]));
  }
  while (tsA->server.stats().batches_received < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  tsA.reset();  // the server dies with both batches un-collected

  net::ServerOptions sopts;
  sopts.port = port;
  TestServer tsB(fx.svc, fx.oracle, sopts);  // restart on the same port
  for (std::size_t b = 2; b < 4; ++b) {  // keep pipelining across the outage
    batches.push_back(fx.random_queries(150 + 40 * b, 600 + b));
    ids.push_back(client.send(batches[b]));
  }
  // Every id must resolve with its original answers: the client re-dials
  // and replays whatever the restart swallowed, ids preserved.
  for (std::size_t b = batches.size(); b-- > 0;) {
    EXPECT_EQ(client.wait(ids[b]), fx.svc.query_batch(*fx.oracle, batches[b]))
        << "batch " << b;
  }
  EXPECT_EQ(client.inflight(), 0u);
}

#if defined(__unix__)

/// Raw loopback socket for protocol-violation tests (the Client refuses to
/// send malformed bytes, so speak to the port directly).
struct RawConn {
  int fd = -1;

  explicit RawConn(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof addr), 0);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void send(std::span<const std::uint8_t> bytes) {
    ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
              static_cast<::ssize_t>(bytes.size()));
  }

  /// Reads until EOF and returns every frame the server sent.
  std::vector<Frame> read_all_frames() {
    FrameDecoder dec;
    std::vector<Frame> frames;
    std::uint8_t buf[4096];
    for (;;) {
      const ::ssize_t n = ::read(fd, buf, sizeof buf);
      if (n <= 0) break;
      dec.feed({buf, static_cast<std::size_t>(n)});
      while (auto f = dec.next()) frames.push_back(std::move(*f));
    }
    return frames;
  }

  /// Reads until `want` frames arrived (or EOF), leaving the connection
  /// open — for success-path tests where the server keeps serving.
  std::vector<Frame> read_frames(std::size_t want) {
    FrameDecoder dec;
    std::vector<Frame> frames;
    std::uint8_t buf[4096];
    while (frames.size() < want) {
      const ::ssize_t n = ::read(fd, buf, sizeof buf);
      if (n <= 0) break;
      dec.feed({buf, static_cast<std::size_t>(n)});
      while (auto f = dec.next()) frames.push_back(std::move(*f));
    }
    return frames;
  }
};

TEST(NetServer, GarbageBytesGetErrorFrameThenClose) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  RawConn raw(ts.server.port());
  const std::uint8_t garbage[64] = {0xde, 0xad, 0xbe, 0xef};
  raw.send(garbage);
  const std::vector<Frame> frames = raw.read_all_frames();
  ASSERT_EQ(frames.size(), 2u);  // HELLO, then connection-level ERROR + EOF
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[1].type, FrameType::kError);
  EXPECT_EQ(net::decode_error(frames[1].payload).request_id, 0u);
  EXPECT_EQ(ts.server.stats().protocol_errors, 1u);
}

TEST(NetServer, OversizedFrameHeaderGetsErrorFrameThenClose) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  net::ServerOptions sopts;
  sopts.max_frame_bytes = 4096;
  TestServer ts(fx.svc, fx.oracle, sopts);
  RawConn raw(ts.server.port());
  // Valid magic, payload_len = max+1: rejected from the header alone.
  std::vector<std::uint8_t> header;
  net::append_error(header, 0, "");     // borrow a real header...
  header.resize(net::kFrameHeaderBytes);  // ...keep only the 24 header bytes
  header[4] = 0x01;                     // payload_len = 0x1001 > 4096
  header[5] = 0x10;
  raw.send(header);
  const std::vector<Frame> frames = raw.read_all_frames();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[1].type, FrameType::kError);
  EXPECT_NE(net::decode_error(frames[1].payload).message.find("maximum size"),
            std::string::npos);
}

TEST(NetServer, RequestIdZeroIsRejected) {
  // Id 0 means "the connection" in ERROR frames; a batch using it could
  // never be failed unambiguously, so it is a protocol violation up front.
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  RawConn raw(ts.server.port());
  std::vector<std::uint8_t> bytes;
  net::append_query_batch(bytes, 0, fx.random_queries(5, 8));
  raw.send(bytes);
  const std::vector<Frame> frames = raw.read_all_frames();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[1].type, FrameType::kError);
  const net::ErrorFrame err = net::decode_error(frames[1].payload);
  EXPECT_EQ(err.request_id, 0u);
  EXPECT_NE(err.message.find("reserved"), std::string::npos);
}

TEST(NetServer, NonBatchFrameFromClientIsRejected) {
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  RawConn raw(ts.server.port());
  std::vector<std::uint8_t> bytes;
  net::append_answer_batch(bytes, 1, std::vector<Dist>{1});  // clients must not send this
  raw.send(bytes);
  const std::vector<Frame> frames = raw.read_all_frames();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[1].type, FrameType::kError);
  EXPECT_EQ(net::decode_error(frames[1].payload).request_id, 0u);
}

TEST(NetServer, UnknownOpcodeProbeGetsErrorFrameThenClose) {
  // A forward-compatibility probe: a checksum-valid frame with a type the
  // server does not know (say, a hypothetical v4 opcode) must be answered
  // with a connection-level ERROR naming the allowed opcodes — never
  // silently dropped, never crashing the dispatch switch.
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  RawConn raw(ts.server.port());
  std::vector<std::uint8_t> bytes;
  net::append_query_batch(bytes, 1, fx.random_queries(3, 14));
  bytes[8] = 99;  // frame type (checksum covers the payload, not the header)
  raw.send(bytes);
  const std::vector<Frame> frames = raw.read_all_frames();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[1].type, FrameType::kError);
  const net::ErrorFrame err = net::decode_error(frames[1].payload);
  EXPECT_EQ(err.request_id, 0u);
  EXPECT_NE(err.message.find("unexpected frame type 99"), std::string::npos);
  EXPECT_EQ(ts.server.stats().protocol_errors, 1u);
}

TEST(NetServer, LegacyV2FramesAreByteIdenticalUnderV3Server) {
  // Interop pin: a protocol-v2 client knows nothing of the workload
  // opcodes. Its bytes — a flags==0 QUERY_BATCH — must produce an
  // ANSWER_BATCH that is byte-for-byte what a v2 server would have sent,
  // and the current HELLO must still announce sources/digest in the v1 layout
  // (v2 clients accept any announced version >= their own frames' needs,
  // so the payload shapes are load-bearing, not just the field values).
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  const std::vector<Query> queries = fx.random_queries(120, 15);
  const std::vector<Dist> want = fx.svc.query_batch(*fx.oracle, queries);

  RawConn raw(ts.server.port());
  std::vector<std::uint8_t> bytes;
  net::append_query_batch(bytes, 7, queries);  // exactly a v2 client's bytes
  raw.send(bytes);
  const std::vector<Frame> frames = raw.read_frames(2);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  const net::HelloInfo hello = net::decode_hello(frames[0].payload);
  EXPECT_EQ(hello.version, net::kProtocolVersion);
  EXPECT_GE(hello.version, net::kMinProtocolVersion);
  EXPECT_EQ(hello.sources, fx.sources);

  // Byte-compare the reply against a locally encoded ANSWER_BATCH.
  ASSERT_EQ(frames[1].type, FrameType::kAnswerBatch);
  std::vector<std::uint8_t> expect;
  net::append_answer_batch(expect, 7, want);
  FrameDecoder dec;
  dec.feed(expect);
  EXPECT_EQ(frames[1].payload, dec.next()->payload);
}

TEST(NetServer, PeerResetMidReplyDoesNotKillServer) {
  // SIGPIPE regression test. A client that sends a batch and then
  // hard-resets its socket (SO_LINGER 0 → RST) leaves the server writing a
  // large reply into a dead connection. Every server write uses
  // MSG_NOSIGNAL, so that must surface as a failed send and a closed
  // connection — never a SIGPIPE that kills the process. If the guard
  // regresses, this whole test binary dies here.
  SKIP_WITHOUT_EPOLL();
  NetFixture fx;
  TestServer ts(fx.svc, fx.oracle);
  {
    RawConn raw(ts.server.port());
    // A batch whose reply far exceeds the socket buffers, so the server is
    // still sending when the RST lands.
    std::vector<std::uint8_t> bytes;
    net::append_query_batch(bytes, 1, fx.random_queries(500'000, 12));
    raw.send(bytes);
    while (ts.server.stats().batches_received == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ::linger lg{1, 0};  // close() sends RST instead of FIN
    ASSERT_EQ(::setsockopt(raw.fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg), 0);
  }
  // The server must still be alive and serving.
  while (ts.server.stats().connections_closed == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  net::Client client(ts.client_options());
  const std::vector<Query> queries = fx.random_queries(300, 13);
  EXPECT_EQ(client.query_batch(queries), fx.svc.query_batch(*fx.oracle, queries));
  EXPECT_EQ(ts.server.stats().protocol_errors, 0u);
}

TEST(NetRegistry, TruncatedRegisterUploadLeavesNoTenantBehind) {
  SKIP_WITHOUT_EPOLL();
  service::QueryService svc({.threads = 2, .min_parallel_batch = 64});
  RegistryTestServer ts(svc, nullptr);
  {
    // Half a REGISTER_GRAPH frame, then the uploader vanishes.
    Rng rng(96);
    const Graph g = gen::connected_gnp(30, 0.15, rng);
    net::RegisterGraphFrame reg;
    reg.request_id = 1;
    reg.num_vertices = g.num_vertices();
    reg.sources = {0, 5};
    reg.edges = g.edges();
    std::vector<std::uint8_t> bytes;
    net::append_register_graph(bytes, reg);
    RawConn raw(ts.server.port());
    raw.send(std::span(bytes.data(), bytes.size() / 2));
  }
  while (ts.server.stats().connections_closed < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The partial frame never became a registration — no provisional slot
  // leaked — and the server still serves full uploads.
  EXPECT_EQ(ts.server.stats().oracles_registered, 0u);
  EXPECT_EQ(ts.registry.tenant_count(), 0u);
  net::Client client(ts.client_options());
  Rng rng2(97);
  const Graph g2 = gen::connected_gnp(25, 0.18, rng2);
  const auto ack = client.register_graph(g2.num_vertices(), g2.edges(), std::vector<Vertex>{0, 3});
  EXPECT_EQ(ack.state, registry::OracleState::kReady);
}

TEST(NetRegistry, RegisterRequestIdZeroIsRejected) {
  SKIP_WITHOUT_EPOLL();
  service::QueryService svc({.threads = 2, .min_parallel_batch = 64});
  RegistryTestServer ts(svc, nullptr);
  RawConn raw(ts.server.port());
  net::RegisterGraphFrame reg;
  reg.request_id = 0;  // reserved for connection-level errors
  reg.num_vertices = 3;
  reg.sources = {0};
  reg.edges = {{0, 1}, {1, 2}};
  std::vector<std::uint8_t> bytes;
  net::append_register_graph(bytes, reg);
  raw.send(bytes);
  const std::vector<Frame> frames = raw.read_all_frames();
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[1].type, FrameType::kError);
  const net::ErrorFrame err = net::decode_error(frames[1].payload);
  EXPECT_EQ(err.request_id, 0u);
  EXPECT_NE(err.message.find("reserved"), std::string::npos);
  EXPECT_EQ(ts.registry.tenant_count(), 0u);
}

#endif  // __unix__

}  // namespace
}  // namespace msrp
