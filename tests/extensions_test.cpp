// Extension modules: the Parter–Peleg fault-tolerant BFS subgraph and the
// multi-source distance sensitivity oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/baselines.hpp"
#include "ftsub/ft_subgraph.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sensitivity/sensitivity_oracle.hpp"

namespace msrp {
namespace {

/// d(s, ., e) in `h` must equal the same in `g` for every edge e of g.
/// Edge ids differ between the graphs, so failures are matched by endpoints.
void expect_preserves_replacements(const Graph& g, const Graph& h,
                                   const std::vector<Vertex>& sources) {
  for (const Vertex s : sources) {
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      const EdgeId he = h.find_edge(u, v);  // kNoEdge: e absent from h
      const BfsTree want(g, s, e);
      const BfsTree got(h, s, he);
      for (Vertex t = 0; t < g.num_vertices(); ++t) {
        ASSERT_EQ(got.dist(t), want.dist(t))
            << "s=" << s << " t=" << t << " e=(" << u << "," << v << ")";
      }
    }
  }
}

class FtSubgraphParamTest : public testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(FtSubgraphParamTest, PreservesAllReplacementDistances) {
  const auto [n, p, seed] = GetParam();
  Rng rng(seed);
  const Graph g = gen::connected_gnp(static_cast<Vertex>(n), p, rng);
  const std::vector<Vertex> sources{0, static_cast<Vertex>(n / 2)};
  const FtSubgraph ft = build_ft_subgraph(g, sources);
  expect_preserves_replacements(g, ft.subgraph, sources);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FtSubgraphParamTest,
                         testing::Values(std::make_tuple(24, 0.3, 1),
                                         std::make_tuple(40, 0.15, 2),
                                         std::make_tuple(60, 0.1, 3),
                                         std::make_tuple(60, 0.25, 4)));

TEST(FtSubgraph, StructuredFamilies) {
  Rng rng(9);
  std::vector<Graph> graphs;
  graphs.push_back(gen::grid(5, 6));
  graphs.push_back(gen::cycle(20));
  graphs.push_back(gen::barbell(5, 3));
  graphs.push_back(gen::path_with_chords(40, 10, rng));
  for (const Graph& g : graphs) {
    const std::vector<Vertex> sources{0};
    const FtSubgraph ft = build_ft_subgraph(g, sources);
    expect_preserves_replacements(g, ft.subgraph, sources);
  }
}

TEST(FtSubgraph, SparsifiesDenseGraphs) {
  // On K_n with one source the PP structure keeps O(n^{3/2}) of the
  // Theta(n^2) edges; verify real sparsification happens.
  const Graph g = gen::complete(40);
  const FtSubgraph ft = build_ft_subgraph(g, {0});
  EXPECT_LT(ft.kept_edges.size(), g.num_edges() / 2);
  const double bound = 4.0 * std::pow(40.0, 1.5);
  EXPECT_LE(static_cast<double>(ft.kept_edges.size()), bound);
  expect_preserves_replacements(g, ft.subgraph, {0});
}

TEST(FtSubgraph, SizeBoundOnRandomGraphs) {
  // |H| <= c sqrt(sigma) n^{3/2} (Parter–Peleg [26] as cited by the paper).
  Rng rng(11);
  for (const std::uint32_t sigma : {1u, 2u, 4u}) {
    const Graph g = gen::connected_gnp(100, 0.2, rng);
    std::vector<Vertex> sources;
    for (std::uint32_t i = 0; i < sigma; ++i) sources.push_back(i * 7);
    const FtSubgraph ft = build_ft_subgraph(g, sources);
    const double bound = 4.0 * std::sqrt(sigma) * std::pow(100.0, 1.5);
    EXPECT_LE(static_cast<double>(ft.kept_edges.size()), bound) << "sigma=" << sigma;
    EXPECT_LE(ft.kept_edges.size(), g.num_edges());
  }
}

TEST(FtSubgraph, TreeStaysWhole) {
  Rng rng(13);
  const Graph g = gen::random_tree(30, rng);
  const FtSubgraph ft = build_ft_subgraph(g, {0});
  // A tree has no redundancy: H must be the tree itself.
  EXPECT_EQ(ft.kept_edges.size(), g.num_edges());
}

TEST(FtSubgraph, RequiresSources) {
  Graph g(3, {{0, 1}});
  EXPECT_THROW(build_ft_subgraph(g, {}), std::invalid_argument);
}

// ------------------------------------------------------- sensitivity oracle

TEST(SensitivityOracle, MatchesBruteForceEverywhere) {
  Rng rng(17);
  const Graph g = gen::connected_gnp(48, 0.12, rng);
  const std::vector<Vertex> sources{1, 9, 33};
  Config cfg;
  cfg.oversample = 3.0;
  const SensitivityOracle oracle(g, sources, cfg);
  const MsrpResult want = solve_msrp_brute_force(g, sources);
  for (const Vertex s : sources) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      EXPECT_EQ(oracle.distance(s, t), want.shortest(s, t));
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        EXPECT_EQ(oracle.query(s, t, e), want.avoiding(s, t, e))
            << "s=" << s << " t=" << t << " e=" << e;
      }
    }
  }
}

TEST(SensitivityOracle, SizeAccounting) {
  Rng rng(19);
  const Graph g = gen::connected_gnp(64, 0.1, rng);
  const SensitivityOracle oracle(g, {0, 1});
  std::uint64_t expect = 0;
  for (const Vertex s : {0u, 1u}) {
    for (Vertex t = 0; t < g.num_vertices(); ++t) {
      expect += oracle.result().row(s, t).size();
    }
  }
  EXPECT_EQ(oracle.size_cells(), expect);
  EXPECT_GT(oracle.size_cells(), 0u);
}

TEST(SensitivityOracle, RejectsNonSourceQueries) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  const SensitivityOracle oracle(g, {0});
  EXPECT_THROW(oracle.query(3, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace msrp
